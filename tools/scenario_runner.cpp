// Scenario runner: the strategy A/B harness over declarative synthetic
// workloads. Loads a scenario file (src/workload/scenario.hpp format),
// runs it under the access-tree strategy and the fixed-home baseline on
// the same machine shape and seed, and prints per-phase reports plus the
// A/B comparison table — the paper's access-tree vs fixed-home congestion
// and traffic ratios, measurable on arbitrary synthetic traffic.
//
//   $ scenario_runner scenarios/hotspot.scenario
//   $ DIVA_TOPOLOGY=random-regular scenario_runner scenarios/hotspot.scenario
//   $ scenario_runner scenarios/openloop.scenario --max-p99-us 40000
//   $ scenario_runner scenarios/hotspot.scenario --sweep 2e4:2e6:7
//
// Options:
//   --procs N   machine size (default: the scenario's `procs`, else 64;
//               ignored for graph:<file> shapes, whose size is the file's)
//   --arity N   access-tree arity ℓ ∈ {2, 4, 16}   (default 4)
//   --leaf K    access-tree leaf cluster size      (default 1)
//   --min-availability F
//               gate: fail unless BOTH strategies serve at least fraction
//               F of operations (faulted scenarios; docs/faults.md)
//   --max-p99-us X
//               gate: fail unless BOTH strategies' run-total open-loop
//               p99 latency is at most X µs (docs/serving.md) — the CI
//               gate for committed open-loop scenarios
//   --sweep LO:HI:N
//               saturation sweep (docs/serving.md): instead of running
//               the scenario as written, run N open-loop variants with
//               aggregate Poisson arrivals on a geometric ladder of
//               offered rates from LO to HI req/s, and print the
//               offered-vs-achieved/p99 table per strategy plus
//               machine-readable `SWEEP rung=...` lines (each carrying
//               availability too, so faulted/reconfigured sweeps expose
//               the latency-vs-availability trade-off per rung)
//   --capture-trace <path>
//               record the access-tree run's request stream to <path> in
//               the request-trace format (docs/serving.md `t node op
//               object` lines, times relative to the run start) — the
//               file replays through a `trace` phase
//   --trace-json <path>
//               record the access-tree run as Chrome trace-event JSON
//               (docs/observability.md) — open in Perfetto or
//               chrome://tracing; the fixed-home run is not traced
//   --trace-categories a,b
//               restrict --trace-json to the named categories
//               (txn,serve,migration,repair,reconfig,fault,net,phase;
//               default all)
//   --metrics-out <path>
//               sample the access-tree run's metrics registry on a
//               simulated-time interval and write the long-form time
//               series to <path> — JSON when the path ends in .json,
//               CSV otherwise (docs/observability.md)
//   --sample-interval-us N
//               sampling interval for --metrics-out in simulated µs
//               (default 1000)
//   --report-json
//               after the text reports, print both whole reports as one
//               JSON object {"access_tree":…, "fixed_home":…} — same
//               values as the text tables, one source of truth
//   --help      print this usage to stdout and exit 0
// Shape comes from DIVA_TOPOLOGY (mesh2d | torus2d | hypercube | ring |
// star | random-regular | graph:<path> | hier-<graph shape>), else the
// scenario's own `topology` directive, else mesh2d.
//
// Exit codes: 0 success · 1 a gate (--min-availability / --max-p99-us)
// failed · 2 bad usage · 3 scenario/trace file malformed or unrunnable.
//
// Output is deterministic: same scenario, shape and build → byte-identical
// text (the determinism suite pins one committed scenario by trace hash).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/topology_env.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "serve/trace.hpp"
#include "support/check.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

using namespace diva;

namespace {

const char kUsage[] =
    "usage: %s <scenario-file> [--procs N] [--arity N] [--leaf K]\n"
    "       [--min-availability F] [--max-p99-us X] [--sweep LO:HI:N]\n"
    "       [--capture-trace <path>] [--trace-json <path>]\n"
    "       [--trace-categories a,b] [--metrics-out <path>]\n"
    "       [--sample-interval-us N] [--report-json] [--help]\n"
    "       (machine shape from DIVA_TOPOLOGY; see file header)\n"
    "exit codes: 0 ok, 1 gate failed, 2 bad usage, 3 bad scenario file\n";

int usage(const char* argv0) {
  std::fprintf(stderr, kUsage, argv0);
  return 2;
}

/// rows×cols ≈ square factorization of P, rows ≤ cols (1×P when prime —
/// still a valid mesh).
void gridShape(int procs, int& rows, int& cols) {
  rows = 1;
  for (int r = 1; r * r <= procs; ++r)
    if (procs % r == 0) rows = r;
  cols = procs / rows;
}

/// Parse "LO:HI:N" into a geometric ladder of N offered rates from LO to
/// HI inclusive; empty on malformed input.
std::vector<double> sweepLadder(const std::string& arg) {
  double lo = 0.0, hi = 0.0;
  int n = 0;
  char extra = 0;
  if (std::sscanf(arg.c_str(), "%lf:%lf:%d%c", &lo, &hi, &n, &extra) != 3) return {};
  if (!(lo > 0.0) || !(hi >= lo) || n < 1) return {};
  if (n == 1) return {lo};
  std::vector<double> rungs(static_cast<std::size_t>(n));
  const double step = std::pow(hi / lo, 1.0 / (n - 1));
  double r = lo;
  for (int i = 0; i < n; ++i, r *= step) rungs[static_cast<std::size_t>(i)] = r;
  rungs.back() = hi;  // pin the endpoint against accumulated rounding
  return rungs;
}

/// Run the sweep: N open-loop Poisson variants of `spec` on a geometric
/// rate ladder, both strategies per rung. Prints a human table per
/// strategy (achieved rate and latency percentiles per rung, the knee
/// visible as the widening offered/achieved gap) plus one machine-
/// readable `SWEEP` line per rung for bench tooling to harvest.
int runSweep(const workload::WorkloadSpec& spec, const net::TopologySpec& topo,
             int arity, int leaf, const std::vector<double>& rungs) {
  struct Rung {
    double offered;
    workload::ServeMetrics at;
    workload::ServeMetrics fh;
    double atAvail;
    double fhAvail;
  };
  std::vector<Rung> results;
  results.reserve(rungs.size());
  for (double rate : rungs) {
    const workload::WorkloadSpec open = workload::openLoopAt(spec, rate);
    const workload::WorkloadReport at =
        workload::runOn(topo, RuntimeConfig::accessTree(arity, leaf), open);
    const workload::WorkloadReport fh =
        workload::runOn(topo, RuntimeConfig::fixedHome(), open);
    results.push_back({rate, at.serve, fh.serve, at.availability, fh.availability});
  }
  // Knee detection: on an unsaturated rung, achieved throughput scales
  // with the geometric ladder step q; past the knee it plateaus. A rung
  // is marked saturated when achieved grew by less than a quarter of the
  // ladder step over the previous rung. (Comparing achieved to offered
  // directly would mislabel low load: wall time includes the random
  // arrival tail, so achieved trails nominal offered even when every
  // request is served instantly.)
  const double q = rungs.size() > 1 ? rungs[1] / rungs[0] : 1.0;
  const double growthFloor = 1.0 + (q - 1.0) / 4.0;
  for (const char* strat : {"access-tree", "fixed-home"}) {
    const bool isAt = std::strcmp(strat, "access-tree") == 0;
    std::printf("saturation sweep · %s · offered vs achieved req/s\n", strat);
    std::printf("  %12s %12s %10s %10s %10s %10s\n", "offered/s", "achieved/s",
                "p50 µs", "p90 µs", "p99 µs", "p999 µs");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Rung& r = results[i];
      const workload::ServeMetrics& sv = isAt ? r.at : r.fh;
      const double prev =
          i > 0 ? (isAt ? results[i - 1].at : results[i - 1].fh).achievedPerSec : 0.0;
      const bool knee = i > 0 && sv.achievedPerSec < prev * growthFloor;
      std::printf("  %12.0f %12.0f %10.2f %10.2f %10.2f %10.2f%s\n", r.offered,
                  sv.achievedPerSec, sv.p50Us, sv.p90Us, sv.p99Us, sv.p999Us,
                  knee ? "  << saturated" : "");
    }
    std::printf("\n");
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Rung& r = results[i];
    // Availability rides along on every rung: on a faulted or
    // reconfigured sweep, (p99, availability) pairs per offered rate ARE
    // the latency-vs-availability trade-off curve.
    std::printf("SWEEP rung=%zu offered=%.0f at_achieved=%.0f at_p99_us=%.2f "
                "fh_achieved=%.0f fh_p99_us=%.2f at_avail=%.4f fh_avail=%.4f\n",
                i, r.offered, r.at.achievedPerSec, r.at.p99Us, r.fh.achievedPerSec,
                r.fh.p99Us, r.atAvail, r.fhAvail);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int procsFlag = 0;
  int arity = 4;
  int leaf = 1;
  double minAvailability = -1.0;
  double maxP99Us = -1.0;
  std::string sweepArg;
  std::string capturePath;
  std::string traceJsonPath;
  obs::Cat traceMask = obs::kCatAll;
  std::string metricsPath;
  double sampleIntervalUs = 1000.0;
  bool reportJsonFlag = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intFlag = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return out > 0;
    };
    if (arg == "--help" || arg == "-h") {
      std::printf(kUsage, argv[0]);
      return 0;
    } else if (arg == "--procs") {
      if (!intFlag(procsFlag)) return usage(argv[0]);
    } else if (arg == "--arity") {
      if (!intFlag(arity)) return usage(argv[0]);
    } else if (arg == "--leaf") {
      if (!intFlag(leaf)) return usage(argv[0]);
    } else if (arg == "--min-availability") {
      if (i + 1 >= argc) return usage(argv[0]);
      minAvailability = std::atof(argv[++i]);
      if (minAvailability < 0.0 || minAvailability > 1.0) return usage(argv[0]);
    } else if (arg == "--max-p99-us") {
      if (i + 1 >= argc) return usage(argv[0]);
      maxP99Us = std::atof(argv[++i]);
      if (maxP99Us <= 0.0) return usage(argv[0]);
    } else if (arg == "--sweep") {
      if (i + 1 >= argc) return usage(argv[0]);
      sweepArg = argv[++i];
      if (sweepLadder(sweepArg).empty()) return usage(argv[0]);
    } else if (arg == "--capture-trace") {
      if (i + 1 >= argc) return usage(argv[0]);
      capturePath = argv[++i];
      if (capturePath.empty()) return usage(argv[0]);
    } else if (arg == "--trace-json") {
      if (i + 1 >= argc) return usage(argv[0]);
      traceJsonPath = argv[++i];
      if (traceJsonPath.empty()) return usage(argv[0]);
    } else if (arg == "--trace-categories") {
      if (i + 1 >= argc) return usage(argv[0]);
      try {
        traceMask = obs::parseCategories(argv[++i]);
      } catch (const support::CheckError& e) {
        std::fprintf(stderr, "scenario_runner: %s\n", e.what());
        return usage(argv[0]);
      }
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) return usage(argv[0]);
      metricsPath = argv[++i];
      if (metricsPath.empty()) return usage(argv[0]);
    } else if (arg == "--sample-interval-us") {
      if (i + 1 >= argc) return usage(argv[0]);
      sampleIntervalUs = std::atof(argv[++i]);
      if (!(sampleIntervalUs > 0.0)) return usage(argv[0]);
    } else if (arg == "--report-json") {
      reportJsonFlag = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    const workload::WorkloadSpec spec = workload::loadScenarioFile(path);
    const int procs = procsFlag > 0 ? procsFlag : spec.procs > 0 ? spec.procs : 64;
    int rows = 0, cols = 0;
    gridShape(procs, rows, cols);
    const net::TopologySpec topo =
        net::topologyFromEnv(rows, cols, /*requireGrid=*/false, spec.topology);

    std::printf("scenario '%s' (%s): %d objects × %llu B, %zu phase(s), seed %llu\n",
                spec.name.c_str(), path.c_str(), spec.numObjects,
                static_cast<unsigned long long>(spec.objectBytes), spec.phases.size(),
                static_cast<unsigned long long>(spec.seed));
    std::printf("machine: %s\n\n", topo.describe().c_str());

    if (!sweepArg.empty())
      return runSweep(spec, topo, arity, leaf, sweepLadder(sweepArg));

    // The capture records the access-tree run (the paper's strategy);
    // fixed-home sees the same spec, so either stream replays both.
    serve::Trace captured;
    obs::Tracer tracer;
    obs::Sampler sampler;
    workload::RunOptions atOpts;
    if (!capturePath.empty()) atOpts.captureTrace = &captured;
    if (!traceJsonPath.empty()) {
      atOpts.tracer = &tracer;
      atOpts.traceMask = traceMask;
    }
    if (!metricsPath.empty()) {
      atOpts.sampler = &sampler;
      atOpts.sampleIntervalUs = sampleIntervalUs;
    }
    const workload::WorkloadReport at =
        workload::runOn(topo, RuntimeConfig::accessTree(arity, leaf), spec, atOpts);
    const workload::WorkloadReport fh =
        workload::runOn(topo, RuntimeConfig::fixedHome(), spec);

    if (!traceJsonPath.empty()) {
      std::ofstream out(traceJsonPath);
      DIVA_CHECK_MSG(out.good(), "cannot open trace file '" << traceJsonPath << "'");
      tracer.writeChromeJson(out);
      out.close();
      DIVA_CHECK_MSG(out.good(), "failed writing trace file '" << traceJsonPath << "'");
      std::printf("traced %zu events to %s\n\n", tracer.numRecords(),
                  traceJsonPath.c_str());
    }
    if (!metricsPath.empty()) {
      const bool json = metricsPath.size() >= 5 &&
                        metricsPath.compare(metricsPath.size() - 5, 5, ".json") == 0;
      std::ofstream out(metricsPath);
      DIVA_CHECK_MSG(out.good(), "cannot open metrics file '" << metricsPath << "'");
      if (json)
        sampler.writeJson(out);
      else
        sampler.writeCsv(out);
      out.close();
      DIVA_CHECK_MSG(out.good(), "failed writing metrics file '" << metricsPath << "'");
      std::printf("sampled %zu instants (%zu rows) to %s\n\n", sampler.samplesTaken(),
                  sampler.numRows(), metricsPath.c_str());
    }

    if (!capturePath.empty()) {
      std::ofstream out(capturePath);
      DIVA_CHECK_MSG(out.good(), "cannot open capture file '" << capturePath << "'");
      out << serve::formatTrace(captured);
      out.close();
      DIVA_CHECK_MSG(out.good(), "failed writing capture file '" << capturePath << "'");
      std::printf("captured %zu requests to %s\n\n", captured.requests.size(),
                  capturePath.c_str());
    }

    std::fputs(workload::formatReport(at).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(workload::formatReport(fh).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(workload::formatComparison(at, fh).c_str(), stdout);

    if (reportJsonFlag) {
      std::printf("{\"access_tree\":%s,\"fixed_home\":%s}\n",
                  workload::reportJson(at).c_str(), workload::reportJson(fh).c_str());
    }

    bool ok = true;
    if (minAvailability >= 0.0) {
      for (const workload::WorkloadReport* r : {&at, &fh}) {
        if (r->availability < minAvailability) {
          std::fprintf(stderr,
                       "scenario_runner: %s availability %.4f below floor %.4f\n",
                       r->strategy.c_str(), r->availability, minAvailability);
          ok = false;
        }
      }
    }
    if (maxP99Us > 0.0) {
      for (const workload::WorkloadReport* r : {&at, &fh}) {
        if (!r->serve.active) {
          std::fprintf(stderr,
                       "scenario_runner: --max-p99-us on a scenario with no "
                       "open-loop phase\n");
          ok = false;
        } else if (r->serve.p99Us > maxP99Us) {
          std::fprintf(stderr,
                       "scenario_runner: %s p99 latency %.2f µs above ceiling "
                       "%.2f µs\n",
                       r->strategy.c_str(), r->serve.p99Us, maxP99Us);
          ok = false;
        }
      }
    }
    return ok ? 0 : 1;
  } catch (const support::CheckError& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 3;
  }
}
