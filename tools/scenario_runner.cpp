// Scenario runner: the strategy A/B harness over declarative synthetic
// workloads. Loads a scenario file (src/workload/scenario.hpp format),
// runs it under the access-tree strategy and the fixed-home baseline on
// the same machine shape and seed, and prints per-phase reports plus the
// A/B comparison table — the paper's access-tree vs fixed-home congestion
// and traffic ratios, measurable on arbitrary synthetic traffic.
//
//   $ scenario_runner scenarios/hotspot.scenario
//   $ DIVA_TOPOLOGY=random-regular scenario_runner scenarios/hotspot.scenario
//   $ DIVA_TOPOLOGY=graph:mynet.graph scenario_runner s.scenario --arity 2
//
// Options:
//   --procs N   machine size (default: the scenario's `procs`, else 64;
//               ignored for graph:<file> shapes, whose size is the file's)
//   --arity N   access-tree arity ℓ ∈ {2, 4, 16}   (default 4)
//   --leaf K    access-tree leaf cluster size      (default 1)
//   --min-availability F
//               exit 1 unless BOTH strategies serve at least fraction F of
//               operations (faulted scenarios; docs/faults.md) — the CI
//               gate for committed churn scenarios
// Shape comes from DIVA_TOPOLOGY (mesh2d | torus2d | hypercube | ring |
// star | random-regular | graph:<path>; default mesh2d).
//
// Output is deterministic: same scenario, shape and build → byte-identical
// text (the determinism suite pins one committed scenario by trace hash).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/topology_env.hpp"
#include "support/check.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

using namespace diva;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--procs N] [--arity N] [--leaf K]\n"
               "       [--min-availability F]\n"
               "       (machine shape from DIVA_TOPOLOGY; see file header)\n",
               argv0);
  return 2;
}

/// rows×cols ≈ square factorization of P, rows ≤ cols (1×P when prime —
/// still a valid mesh).
void gridShape(int procs, int& rows, int& cols) {
  rows = 1;
  for (int r = 1; r * r <= procs; ++r)
    if (procs % r == 0) rows = r;
  cols = procs / rows;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int procsFlag = 0;
  int arity = 4;
  int leaf = 1;
  double minAvailability = -1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intFlag = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return out > 0;
    };
    if (arg == "--procs") {
      if (!intFlag(procsFlag)) return usage(argv[0]);
    } else if (arg == "--arity") {
      if (!intFlag(arity)) return usage(argv[0]);
    } else if (arg == "--leaf") {
      if (!intFlag(leaf)) return usage(argv[0]);
    } else if (arg == "--min-availability") {
      if (i + 1 >= argc) return usage(argv[0]);
      minAvailability = std::atof(argv[++i]);
      if (minAvailability < 0.0 || minAvailability > 1.0) return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    const workload::WorkloadSpec spec = workload::loadScenarioFile(path);
    const int procs = procsFlag > 0 ? procsFlag : spec.procs > 0 ? spec.procs : 64;
    int rows = 0, cols = 0;
    gridShape(procs, rows, cols);
    const net::TopologySpec topo = net::topologyFromEnv(rows, cols);

    std::printf("scenario '%s' (%s): %d objects × %llu B, %zu phase(s), seed %llu\n",
                spec.name.c_str(), path.c_str(), spec.numObjects,
                static_cast<unsigned long long>(spec.objectBytes), spec.phases.size(),
                static_cast<unsigned long long>(spec.seed));
    std::printf("machine: %s\n\n", topo.describe().c_str());

    const workload::WorkloadReport at =
        workload::runOn(topo, RuntimeConfig::accessTree(arity, leaf), spec);
    const workload::WorkloadReport fh =
        workload::runOn(topo, RuntimeConfig::fixedHome(), spec);

    std::fputs(workload::formatReport(at).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(workload::formatReport(fh).c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(workload::formatComparison(at, fh).c_str(), stdout);

    if (minAvailability >= 0.0) {
      bool ok = true;
      for (const workload::WorkloadReport* r : {&at, &fh}) {
        if (r->availability < minAvailability) {
          std::fprintf(stderr,
                       "scenario_runner: %s availability %.4f below floor %.4f\n",
                       r->strategy.c_str(), r->availability, minAvailability);
          ok = false;
        }
      }
      if (!ok) return 1;
    }
    return 0;
  } catch (const support::CheckError& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
}
