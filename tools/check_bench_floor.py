#!/usr/bin/env python3
"""Assert a BENCH_engine.json entry stays above generous throughput floors.

CI smoke guard: catches order-of-magnitude engine regressions (an
accidental O(n log n) -> O(n^2), a lost fast path), NOT run-to-run noise —
the floors sit far below every number ever recorded, including the seed
engine on a loaded CI VM.

Usage:
  check_bench_floor.py <bench.json> [label]        (default label: ci-smoke)
  check_bench_floor.py --rss <time-v-output> <max-kb>

The --rss mode parses the "Maximum resident set size (kbytes)" line of a
`/usr/bin/time -v` capture and fails when it exceeds <max-kb> — the CI
memory gate on the 100k-node hierarchical-routing scenario
(docs/routing.md).
"""

import json
import re
import sys


def check_rss(path: str, max_kb: int) -> int:
    with open(path) as f:
        text = f.read()
    m = re.search(r"Maximum resident set size \(kbytes\):\s*(\d+)", text)
    if not m:
        print(f"no 'Maximum resident set size' line in {path}", file=sys.stderr)
        return 2
    rss_kb = int(m.group(1))
    if rss_kb > max_kb:
        print(f"peak RSS {rss_kb:,} KB above gate {max_kb:,} KB", file=sys.stderr)
        return 1
    print(f"peak RSS ok: {rss_kb:,} KB <= {max_kb:,} KB")
    return 0


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "--rss":
        if len(sys.argv) != 4:
            print(__doc__, file=sys.stderr)
            return 2
        return check_rss(sys.argv[2], int(sys.argv[3]))
    path = sys.argv[1]
    label = sys.argv[2] if len(sys.argv) > 2 else "ci-smoke"
    floors = {
        # Seed engine recorded 7.47M events/s and 1.13M msgs/s on the dev
        # box; current numbers are far higher. One order of magnitude of
        # headroom absorbs any plausible CI-VM slowness.
        "events_per_sec": 4_000_000,
        "messages_per_sec": 250_000,
        # Full-protocol-stack churn (synthetic-workload subsystem over the
        # access tree, locks and barriers): ~1.8M msgs/s on the dev box.
        "workload_messages_per_sec": 100_000,
        # Same workload with an enabled all-categories tracer recording
        # spans/instants on the hot path (docs/observability.md); runs
        # within ~2x of the untraced series on the dev box, so a floor
        # half the untraced one catches tracing becoming pathological.
        "workload_traced_messages_per_sec": 50_000,
        # Same workload under link flaps and processor crashes (detour
        # BFS + crash repair on the measured path); runs within a small
        # factor of the fault-free series on the dev box.
        "workload_churn_messages_per_sec": 50_000,
        # Elastic churn: grow/rewire/shrink reconfiguration with live
        # state migration on the measured path (docs/faults.md
        # "Reconfiguration"); ~1.3M msgs/s on the dev box.
        "workload_reconfig_messages_per_sec": 50_000,
        # Open-loop serving driver (scheduled arrivals + latency
        # histogram on the hot path): ~1.4M msgs/s on the dev box.
        "workload_openloop_messages_per_sec": 50_000,
        # Hierarchical landmark-ball routing (docs/routing.md): the same
        # relay churn as graph_messages_per_sec but routed through the
        # compact ball state — within a small factor of the dense series
        # on the dev box.
        "hier_routing_messages_per_sec": 50_000,
        # Raw appendRoute throughput on a 1024-node graph (chain walk +
        # per-hop ball lookups; no message pipeline): ~1M routes/s on
        # the dev box.
        "hier_routing_routes_per_sec": 100_000,
    }
    # Simulated-model property, not host perf: the open-loop bench's
    # run-total p99 latency at 2k req/s (below the knee) is ~29 ms on
    # every box — bit-deterministic — so a ceiling catches protocol or
    # scheduling changes that silently degrade serving latency.
    p99_ceiling_us = 100_000.0
    with open(path) as f:
        doc = json.load(f)
    if label not in doc:
        print(f"label '{label}' missing from {path}", file=sys.stderr)
        return 2
    entry = doc[label]
    failures = [
        f"{key}={entry[key]:,} below floor {floor:,}"
        for key, floor in floors.items()
        if entry[key] < floor
    ]
    p99 = entry.get("workload_openloop_p99_us")
    if p99 is not None and p99 > p99_ceiling_us:
        failures.append(
            f"workload_openloop_p99_us={p99:,} above ceiling {p99_ceiling_us:,}")
    if failures:
        print("bench floor violated: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("bench floors ok: " +
          ", ".join(f"{key}={entry[key]:,}" for key in floors))
    return 0


if __name__ == "__main__":
    sys.exit(main())
