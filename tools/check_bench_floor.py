#!/usr/bin/env python3
"""Assert a BENCH_engine.json entry stays above generous throughput floors.

CI smoke guard: catches order-of-magnitude engine regressions (an
accidental O(n log n) -> O(n^2), a lost fast path), NOT run-to-run noise —
the floors sit far below every number ever recorded, including the seed
engine on a loaded CI VM.

Usage: check_bench_floor.py <bench.json> [label]     (default label: ci-smoke)
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    label = sys.argv[2] if len(sys.argv) > 2 else "ci-smoke"
    floors = {
        # Seed engine recorded 7.47M events/s and 1.13M msgs/s on the dev
        # box; current numbers are far higher. One order of magnitude of
        # headroom absorbs any plausible CI-VM slowness.
        "events_per_sec": 4_000_000,
        "messages_per_sec": 250_000,
        # Full-protocol-stack churn (synthetic-workload subsystem over the
        # access tree, locks and barriers): ~1.8M msgs/s on the dev box.
        "workload_messages_per_sec": 100_000,
        # Same workload under link flaps and processor crashes (detour
        # BFS + crash repair on the measured path); runs within a small
        # factor of the fault-free series on the dev box.
        "workload_churn_messages_per_sec": 50_000,
        # Open-loop serving driver (scheduled arrivals + latency
        # histogram on the hot path): ~1.4M msgs/s on the dev box.
        "workload_openloop_messages_per_sec": 50_000,
    }
    # Simulated-model property, not host perf: the open-loop bench's
    # run-total p99 latency at 2k req/s (below the knee) is ~29 ms on
    # every box — bit-deterministic — so a ceiling catches protocol or
    # scheduling changes that silently degrade serving latency.
    p99_ceiling_us = 100_000.0
    with open(path) as f:
        doc = json.load(f)
    if label not in doc:
        print(f"label '{label}' missing from {path}", file=sys.stderr)
        return 2
    entry = doc[label]
    failures = [
        f"{key}={entry[key]:,} below floor {floor:,}"
        for key, floor in floors.items()
        if entry[key] < floor
    ]
    p99 = entry.get("workload_openloop_p99_us")
    if p99 is not None and p99 > p99_ceiling_us:
        failures.append(
            f"workload_openloop_p99_us={p99:,} above ceiling {p99_ceiling_us:,}")
    if failures:
        print("bench floor violated: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("bench floors ok: " +
          ", ".join(f"{key}={entry[key]:,}" for key in floors))
    return 0


if __name__ == "__main__":
    sys.exit(main())
