#!/usr/bin/env python3
"""Docs hygiene: fail on broken relative links in the repo's *.md files.

Checks every inline markdown link ``[text](target)`` whose target is not
an external URL or a pure in-page anchor, resolving it relative to the
file that contains it. Anchors on relative links are stripped (only file
existence is checked). Exit status 1 lists every broken link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~).*?^\1", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_fences(text: str) -> str:
    """Blank out fenced code blocks (preserving newlines so reported line
    numbers stay correct) — illustrative links in examples are not checked."""
    return FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in {".git", "build", ".claude"} for part in path.parts):
            continue
        yield path


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    broken = []
    checked = 0
    for md in md_files(root):
        text = strip_fences(md.read_text(encoding="utf-8"))
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            checked += 1
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{md.relative_to(root)}:{line}: broken link -> {target}")
    for b in broken:
        print(b)
    print(f"checked {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
