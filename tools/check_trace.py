#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the obs tracer.

CI guard for `scenario_runner --trace-json` output (docs/observability.md):
checks the schema field by field, per-track timestamp monotonicity,
balanced LIFO B/E sync spans per track, and id-matched b/e async spans —
the properties Perfetto needs to render the file and the tracer promises
by construction, so any violation means the tracer (not the run) broke.

Usage:
  check_trace.py <trace.json> [--require cat1,cat2] [--metrics <csv>]

--require fails unless every listed category appears in at least one
event (e.g. `--require reconfig,migration,phase` on the traced elastic
run). --metrics additionally validates a sampler time-series CSV: exact
header, well-typed rows, non-decreasing timestamps.

Exit codes: 0 valid, 1 validation failed, 2 bad usage / unreadable file.
"""

import json
import sys

KNOWN_CATS = {
    "txn", "serve", "migration", "repair", "reconfig", "fault", "net", "phase",
}
KNOWN_PHASES = {"M", "B", "E", "i", "b", "e"}
CSV_HEADER = "time_us,phase,metric,value"


def fail(msg: str) -> int:
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def check_trace(path: str, required: set) -> int:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]

    last_ts = {}      # (pid, tid) -> last timestamp
    sync_depth = {}   # (pid, tid) -> open B count
    async_open = {}   # (cat, name, id) -> open b count
    seen_cats = set()
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown ph {ph!r}")
        if not isinstance(ev.get("pid"), int):
            return fail(f"{where}: missing integer pid")
        if ph == "M":  # metadata carries no timestamp/category
            continue
        if not isinstance(ev.get("tid"), int):
            return fail(f"{where}: missing integer tid")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            return fail(f"{where}: missing numeric ts")
        cat = ev.get("cat")
        if cat not in KNOWN_CATS:
            return fail(f"{where}: unknown cat {cat!r}")
        seen_cats.add(cat)
        if ph != "E" and not isinstance(ev.get("name"), str):
            return fail(f"{where}: missing name")

        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, float("-inf")):
            return fail(f"{where}: ts {ts} decreases on track {track}")
        last_ts[track] = ts

        if ph == "B":
            sync_depth[track] = sync_depth.get(track, 0) + 1
        elif ph == "E":
            depth = sync_depth.get(track, 0) - 1
            if depth < 0:
                return fail(f"{where}: E without open B on track {track}")
            sync_depth[track] = depth
        elif ph == "i":
            if ev.get("s") != "t":
                return fail(f"{where}: instant must carry s=\"t\"")
        elif ph in ("b", "e"):
            if "id" not in ev:
                return fail(f"{where}: async event without id")
            key = (cat, ev["name"], ev["id"])
            if ph == "b":
                async_open[key] = async_open.get(key, 0) + 1
            else:
                n = async_open.get(key, 0) - 1
                if n < 0:
                    return fail(f"{where}: e without open b for {key}")
                async_open[key] = n

    open_sync = {k: v for k, v in sync_depth.items() if v != 0}
    if open_sync:
        return fail(f"unbalanced B/E at end of trace: {open_sync}")
    open_async = {k: v for k, v in async_open.items() if v != 0}
    if open_async:
        return fail(f"unclosed async spans at end of trace: {open_async}")
    missing = required - seen_cats
    if missing:
        return fail(f"required categories absent: {sorted(missing)} "
                    f"(present: {sorted(seen_cats)})")
    print(f"check_trace: {path} ok — {len(events)} events, "
          f"{len(last_ts)} tracks, categories {sorted(seen_cats)}")
    return 0


def check_metrics(path: str) -> int:
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines or lines[0] != CSV_HEADER:
        return fail(f"{path}: first line must be '{CSV_HEADER}'")
    last_t = float("-inf")
    for i, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 4:
            return fail(f"{path}:{i}: expected 4 fields, got {len(parts)}")
        try:
            t = float(parts[0])
            int(parts[1])
            float(parts[3])
        except ValueError as e:
            return fail(f"{path}:{i}: {e}")
        if not parts[2]:
            return fail(f"{path}:{i}: empty metric name")
        if t < last_t:
            return fail(f"{path}:{i}: time {t} decreases")
        last_t = t
    print(f"check_trace: {path} ok — {len(lines) - 1} samples rows")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if not args or args[0].startswith("-"):
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = args[0]
    required = set()
    metrics_path = None
    i = 1
    while i < len(args):
        if args[i] == "--require" and i + 1 < len(args):
            required.update(c for c in args[i + 1].split(",") if c)
            i += 2
        elif args[i] == "--metrics" and i + 1 < len(args):
            metrics_path = args[i + 1]
            i += 2
        else:
            print(__doc__, file=sys.stderr)
            return 2
    unknown = required - KNOWN_CATS
    if unknown:
        print(f"check_trace: unknown --require categories {sorted(unknown)}",
              file=sys.stderr)
        return 2
    rc = check_trace(trace_path, required)
    if rc == 0 and metrics_path is not None:
        rc = check_metrics(metrics_path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
