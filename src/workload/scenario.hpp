#pragma once

#include <string>

#include "workload/workload.hpp"

namespace diva::workload {

// ---------------------------------------------------------------------------
// Scenario text format — the workload twin of the PR 3 graph file format,
// so experiments are declarative files, diffable and committable:
//
//   # comment — '#' starts a comment anywhere on a line; after a
//                directive's declared arguments, any trailing token that
//                is not a comment is an error (blank lines ignored)
//   scenario <name>        (optional; defaults to "file")
//   seed <u64>             (optional; default 1)
//   objects <N> [bytes]    (required; object population, payload size
//                           defaults to 64 simulated bytes)
//   cache <bytes>          (optional; per-processor memory module bound,
//                           0 = unlimited — the default)
//   procs <P>              (optional; suggested machine size for runners,
//                           0 = runner's choice)
//   topology <name>        (optional; suggested network shape by name —
//                           net/topology_env.hpp vocabulary, e.g. mesh2d,
//                           ring, hier-random-regular. Runners use it as
//                           the default shape; DIVA_TOPOLOGY overrides.)
//   phase <name>           (starts a phase; later keys configure it)
//   rounds <n>             (accesses per processor; default 1)
//   reads <fraction>       (P(read) in [0,1]; default 1.0)
//   zipf <s>               (popularity skew exponent; default 0 = uniform;
//                           integral s is bit-stable across platforms)
//   hotshift <objects>     (popularity-ranking rotation — hotspot drift)
//   think <meanUs>         (mean think time, uniform in [0, 2·mean))
//   barrier <0|1>          (synchronize processors at phase end; default 1)
//   fault <offsetUs> <kind> <args...>
//                          (inject a fault `offsetUs` µs after the phase
//                           starts — docs/faults.md. Kinds:
//                             node-down <p>              crash processor p
//                             node-up <p>                recover processor p
//                             link-down <u> <v>          sever link u—v
//                             link-up <u> <v>            restore link u—v
//                             degrade <u> <v> <wM> <lM>  multiply u—v's
//                                      bandwidth cost by wM, latency by lM
//                           Repeatable; endpoints are range-checked against
//                           the machine when the scenario runs.)
//   reconfig <offsetUs> <kind> <args...>
//                          (permanent structural reconfiguration,
//                           docs/faults.md "Reconfiguration" — graph-backed
//                           topologies only. Kinds:
//                             add-node <anchor> [w [lat]]  new node, joined
//                                      to `anchor` by an edge of weight w /
//                                      latency lat (default 1.0 each); its
//                                      id is the current node count
//                             remove-node <p>              retire p forever
//                             add-link <u> <v> [w [lat]]   new edge u—v
//                             remove-link <u> <v>          drop edge u—v
//                           Repeatable; endpoints are validated when the
//                           scenario runs, against the machine's shape at
//                           the event's firing instant — errors carry this
//                           line's number. Removals that would disconnect
//                           the member nodes are rejected.)
//   arrival <kind> <rate> [onUs offUs]
//                          (open-loop arrival process — docs/serving.md.
//                           Kinds: fixed | poisson | burst; `rate` is the
//                           aggregate offered load in requests per
//                           simulated second; burst additionally takes
//                           the on/off window lengths in µs. Phases with
//                           an arrival line run open loop: latency is
//                           measured from the scheduled arrival and
//                           `think` must stay 0.)
//   deadline <us>          (SLO deadline — served requests slower than
//                           this count as late; open-loop phases only)
//   queue <n>              (per-processor backlog bound — requests with
//                           more than n newer requests already due are
//                           shed; open-loop phases only)
//   trace <path>           (replay a request-trace file, docs/serving.md;
//                           relative paths resolve against the scenario
//                           file's directory. The phase's generator keys
//                           — rounds/reads/zipf/hotshift/think/arrival —
//                           must stay at their defaults.)
//
// Phase keys before the first `phase` line are errors, like `edge` before
// `nodes` in the graph format.
// ---------------------------------------------------------------------------

/// Parse the text format; throws CheckError with a line number on errors.
/// The returned spec is validated.
WorkloadSpec parseScenario(const std::string& text);

/// Read a scenario file from disk; throws CheckError if unreadable.
WorkloadSpec loadScenarioFile(const std::string& path);

/// Serialize a WorkloadSpec to the text format (parseScenario round-trips
/// it exactly: parse(format(spec)) == spec).
std::string formatScenario(const WorkloadSpec& spec);

}  // namespace diva::workload
