#include "workload/scenario.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "support/check.hpp"

namespace diva::workload {

namespace {

/// Parse exactly one value of type T from the rest of `ls`; CheckError
/// with the line number and key name otherwise. Mirrors the strict
/// token-at-a-time style of parseGraph. Unsigned fields reject negative
/// literals explicitly — istream extraction would silently wrap them to
/// huge values.
template <typename T>
T parseValue(std::istringstream& ls, int lineNo, const char* key) {
  std::string tok;
  DIVA_CHECK_MSG(static_cast<bool>(ls >> tok),
                 "scenario file line " << lineNo << ": '" << key << "' needs a value");
  if constexpr (std::is_unsigned_v<T>) {
    DIVA_CHECK_MSG(tok[0] != '-', "scenario file line "
                                      << lineNo << ": '" << key
                                      << "' must be non-negative (got '" << tok << "')");
  }
  std::istringstream ts(tok);
  T v{};
  DIVA_CHECK_MSG(static_cast<bool>(ts >> v) && ts.eof(),
                 "scenario file line " << lineNo << ": malformed '" << key << "' value '"
                                       << tok << "'");
  return v;
}

}  // namespace

WorkloadSpec parseScenario(const std::string& text) {
  WorkloadSpec spec;
  spec.name = "file";
  spec.phases.clear();
  bool haveObjects = false;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  PhaseSpec* phase = nullptr;
  auto needPhase = [&](const std::string& key) {
    DIVA_CHECK_MSG(phase != nullptr, "scenario file line " << lineNo << ": '" << key
                                                           << "' before any 'phase'");
  };
  while (std::getline(in, line)) {
    ++lineNo;
    // '#' starts a comment anywhere on the line.
    std::istringstream ls(line.substr(0, line.find('#')));
    std::string word;
    if (!(ls >> word)) continue;
    if (word == "scenario") {
      DIVA_CHECK_MSG(static_cast<bool>(ls >> spec.name),
                     "scenario file line " << lineNo << ": 'scenario' needs a name");
    } else if (word == "seed") {
      spec.seed = parseValue<std::uint64_t>(ls, lineNo, "seed");
    } else if (word == "objects") {
      DIVA_CHECK_MSG(!haveObjects,
                     "scenario file line " << lineNo << ": duplicate 'objects' line");
      haveObjects = true;
      spec.numObjects = parseValue<int>(ls, lineNo, "objects");
      if (!ls.eof() && (ls >> std::ws, ls.peek() != std::istringstream::traits_type::eof()))
        spec.objectBytes = parseValue<std::uint64_t>(ls, lineNo, "object size");
    } else if (word == "cache") {
      spec.cacheBytes = parseValue<std::uint64_t>(ls, lineNo, "cache");
    } else if (word == "procs") {
      spec.procs = parseValue<int>(ls, lineNo, "procs");
    } else if (word == "topology") {
      DIVA_CHECK_MSG(static_cast<bool>(ls >> spec.topology),
                     "scenario file line " << lineNo << ": 'topology' needs a name");
    } else if (word == "phase") {
      PhaseSpec ph;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> ph.name),
                     "scenario file line " << lineNo << ": 'phase' needs a name");
      spec.phases.push_back(ph);
      phase = &spec.phases.back();
    } else if (word == "rounds") {
      needPhase(word);
      phase->rounds = parseValue<int>(ls, lineNo, "rounds");
    } else if (word == "reads") {
      needPhase(word);
      phase->readFraction = parseValue<double>(ls, lineNo, "reads");
    } else if (word == "zipf") {
      needPhase(word);
      phase->zipfS = parseValue<double>(ls, lineNo, "zipf");
    } else if (word == "hotshift") {
      needPhase(word);
      phase->hotShift = parseValue<int>(ls, lineNo, "hotshift");
    } else if (word == "think") {
      needPhase(word);
      phase->thinkMeanUs = parseValue<double>(ls, lineNo, "think");
    } else if (word == "barrier") {
      needPhase(word);
      const int b = parseValue<int>(ls, lineNo, "barrier");
      DIVA_CHECK_MSG(b == 0 || b == 1,
                     "scenario file line " << lineNo << ": 'barrier' must be 0 or 1");
      phase->barrier = b == 1;
    } else if (word == "arrival") {
      needPhase(word);
      std::string kind;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> kind),
                     "scenario file line " << lineNo
                                           << ": 'arrival' needs a kind "
                                              "(fixed/poisson/burst)");
      if (kind == "fixed") {
        phase->arrival.kind = serve::ArrivalSpec::Kind::Fixed;
      } else if (kind == "poisson") {
        phase->arrival.kind = serve::ArrivalSpec::Kind::Poisson;
      } else if (kind == "burst") {
        phase->arrival.kind = serve::ArrivalSpec::Kind::Burst;
      } else {
        DIVA_CHECK_MSG(false, "scenario file line " << lineNo
                                                    << ": unknown arrival kind '" << kind
                                                    << "'");
      }
      phase->arrival.ratePerSec = parseValue<double>(ls, lineNo, "arrival rate");
      if (phase->arrival.kind == serve::ArrivalSpec::Kind::Burst) {
        phase->arrival.burstOnUs = parseValue<double>(ls, lineNo, "burst on-window");
        phase->arrival.burstOffUs = parseValue<double>(ls, lineNo, "burst off-window");
      }
    } else if (word == "deadline") {
      needPhase(word);
      phase->deadlineUs = parseValue<double>(ls, lineNo, "deadline");
    } else if (word == "queue") {
      needPhase(word);
      phase->queueLimit = parseValue<int>(ls, lineNo, "queue");
    } else if (word == "trace") {
      needPhase(word);
      DIVA_CHECK_MSG(static_cast<bool>(ls >> phase->tracePath),
                     "scenario file line " << lineNo << ": 'trace' needs a file path");
    } else if (word == "fault") {
      needPhase(word);
      net::FaultEvent ev;
      ev.offsetUs = parseValue<double>(ls, lineNo, "fault offset");
      DIVA_CHECK_MSG(ev.offsetUs >= 0.0, "scenario file line "
                                             << lineNo << ": fault offset must be >= 0");
      std::string kind;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> kind),
                     "scenario file line " << lineNo << ": 'fault' needs a kind "
                                              "(node-down/node-up/link-down/link-up/"
                                              "degrade)");
      const bool nodeKind = kind == "node-down" || kind == "node-up";
      const bool linkKind =
          kind == "link-down" || kind == "link-up" || kind == "degrade";
      DIVA_CHECK_MSG(nodeKind || linkKind, "scenario file line "
                                               << lineNo << ": unknown fault kind '"
                                               << kind << "'");
      ev.a = parseValue<net::NodeId>(ls, lineNo, "fault endpoint");
      if (nodeKind) {
        // `b` stays at its default: node faults have one endpoint, and
        // leaving it untouched keeps parse(format(spec)) == spec for
        // specs built in code (which leave `b` defaulted too).
        ev.kind = kind == "node-down" ? net::FaultEvent::Kind::NodeDown
                                      : net::FaultEvent::Kind::NodeUp;
      } else {
        ev.b = parseValue<net::NodeId>(ls, lineNo, "fault endpoint");
        if (kind == "degrade") {
          ev.kind = net::FaultEvent::Kind::Degrade;
          ev.weightMul = parseValue<double>(ls, lineNo, "degrade weight multiplier");
          ev.latencyMul = parseValue<double>(ls, lineNo, "degrade latency multiplier");
          DIVA_CHECK_MSG(ev.weightMul > 0.0 && ev.latencyMul > 0.0,
                         "scenario file line "
                             << lineNo << ": degrade multipliers must be positive");
        } else {
          ev.kind = kind == "link-down" ? net::FaultEvent::Kind::LinkDown
                                        : net::FaultEvent::Kind::LinkUp;
        }
      }
      DIVA_CHECK_MSG(ev.a >= 0 && ev.b >= 0,
                     "scenario file line " << lineNo
                                           << ": fault endpoints must be >= 0");
      phase->faults.push_back(ev);
    } else if (word == "reconfig") {
      // Structural reconfiguration (docs/faults.md "Reconfiguration"):
      //   reconfig <offsetUs> add-node <anchor> [weight [latency]]
      //   reconfig <offsetUs> add-link <u> <v> [weight [latency]]
      //   reconfig <offsetUs> remove-node <p>
      //   reconfig <offsetUs> remove-link <u> <v>
      // Endpoints are validated at run time against the machine's shape
      // at the event's firing instant; the line number is carried so
      // those errors point back here.
      needPhase(word);
      net::FaultEvent ev;
      ev.line = lineNo;
      ev.offsetUs = parseValue<double>(ls, lineNo, "reconfig offset");
      DIVA_CHECK_MSG(ev.offsetUs >= 0.0,
                     "scenario file line " << lineNo
                                           << ": reconfig offset must be >= 0");
      std::string kind;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> kind),
                     "scenario file line " << lineNo
                                           << ": 'reconfig' needs a kind (add-node/"
                                              "remove-node/add-link/remove-link)");
      const bool nodeKind = kind == "add-node" || kind == "remove-node";
      const bool linkKind = kind == "add-link" || kind == "remove-link";
      DIVA_CHECK_MSG(nodeKind || linkKind, "scenario file line "
                                               << lineNo << ": unknown reconfig kind '"
                                               << kind << "'");
      ev.a = parseValue<net::NodeId>(ls, lineNo, "reconfig endpoint");
      if (linkKind) ev.b = parseValue<net::NodeId>(ls, lineNo, "reconfig endpoint");
      DIVA_CHECK_MSG(ev.a >= 0 && ev.b >= 0,
                     "scenario file line " << lineNo
                                           << ": reconfig endpoints must be >= 0");
      const bool adds = kind == "add-node" || kind == "add-link";
      if (adds) {
        // Optional new-edge weight and latency (default 1.0 each),
        // carried in the multiplier fields.
        const auto more = [&ls] {
          return !ls.eof() &&
                 (ls >> std::ws, ls.peek() != std::istringstream::traits_type::eof());
        };
        if (more()) ev.weightMul = parseValue<double>(ls, lineNo, "edge weight");
        if (more()) ev.latencyMul = parseValue<double>(ls, lineNo, "edge latency");
        DIVA_CHECK_MSG(ev.weightMul > 0.0 && ev.latencyMul > 0.0,
                       "scenario file line "
                           << lineNo << ": edge weight/latency must be positive");
      }
      ev.kind = kind == "add-node"      ? net::FaultEvent::Kind::AddNode
                : kind == "remove-node" ? net::FaultEvent::Kind::RemoveNode
                : kind == "add-link"    ? net::FaultEvent::Kind::AddLink
                                        : net::FaultEvent::Kind::RemoveLink;
      phase->faults.push_back(ev);
    } else {
      DIVA_CHECK_MSG(false, "scenario file line " << lineNo << ": unknown directive '"
                                                  << word << "'");
    }
    // One consistent policy for every directive: after its declared
    // arguments, anything but a comment is an error — a one-line typo
    // ("rounds 5 reads 0.1") must not silently run a different workload.
    std::string extra;
    DIVA_CHECK_MSG(!(ls >> extra), "scenario file line "
                                       << lineNo << ": unexpected trailing token '"
                                       << extra << "' after '" << word << "'");
  }
  DIVA_CHECK_MSG(haveObjects, "scenario file has no 'objects' line");
  DIVA_CHECK_MSG(!spec.phases.empty(), "scenario file has no 'phase' line");
  spec.validate();
  return spec;
}

WorkloadSpec loadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  DIVA_CHECK_MSG(in.good(), "cannot open scenario file '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  // Parser errors carry line numbers but not the file name (parseScenario
  // also serves in-memory text); add the path so a failing multi-file
  // experiment names its culprit.
  try {
    WorkloadSpec spec = parseScenario(text.str());
    // Resolve relative trace paths against the scenario file's directory,
    // so a committed scenario works no matter the runner's cwd. In-memory
    // parseScenario text has no anchor and keeps paths as written.
    const std::filesystem::path dir = std::filesystem::path(path).parent_path();
    for (PhaseSpec& ph : spec.phases) {
      if (ph.tracePath.empty()) continue;
      if (!dir.empty() && std::filesystem::path(ph.tracePath).is_relative())
        ph.tracePath = (dir / ph.tracePath).string();
      // Preflight: traces are otherwise opened lazily when their phase
      // starts, which buries a typo'd path in mid-run engine output. Fail
      // here, at load, with the resolved path — scenario_runner turns
      // this into a clean exit 3 before anything runs.
      std::ifstream trace(ph.tracePath);
      if (!trace.good())
        throw support::CheckError("phase '" + ph.name +
                                  "': cannot open trace file '" + ph.tracePath + "'");
    }
    return spec;
  } catch (const support::CheckError& e) {
    throw support::CheckError(path + ": " + e.what());
  }
}

std::string formatScenario(const WorkloadSpec& spec) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "scenario " << spec.name << "\n";
  out << "seed " << spec.seed << "\n";
  out << "objects " << spec.numObjects << " " << spec.objectBytes << "\n";
  if (spec.cacheBytes != 0) out << "cache " << spec.cacheBytes << "\n";
  if (spec.procs != 0) out << "procs " << spec.procs << "\n";
  if (!spec.topology.empty()) out << "topology " << spec.topology << "\n";
  for (const PhaseSpec& ph : spec.phases) {
    out << "phase " << ph.name << "\n";
    out << "rounds " << ph.rounds << "\n";
    out << "reads " << ph.readFraction << "\n";
    if (ph.zipfS != 0.0) out << "zipf " << ph.zipfS << "\n";
    if (ph.hotShift != 0) out << "hotshift " << ph.hotShift << "\n";
    if (ph.thinkMeanUs != 0.0) out << "think " << ph.thinkMeanUs << "\n";
    if (!ph.barrier) out << "barrier 0\n";
    if (ph.arrival.open()) {
      out << "arrival " << serve::arrivalKindName(ph.arrival.kind) << " "
          << ph.arrival.ratePerSec;
      if (ph.arrival.kind == serve::ArrivalSpec::Kind::Burst)
        out << " " << ph.arrival.burstOnUs << " " << ph.arrival.burstOffUs;
      out << "\n";
    }
    if (ph.deadlineUs != 0.0) out << "deadline " << ph.deadlineUs << "\n";
    if (ph.queueLimit != 0) out << "queue " << ph.queueLimit << "\n";
    if (!ph.tracePath.empty()) out << "trace " << ph.tracePath << "\n";
    for (const net::FaultEvent& ev : ph.faults) {
      out << (net::isStructural(ev.kind) ? "reconfig " : "fault ") << ev.offsetUs
          << " " << net::faultKindName(ev.kind);
      switch (ev.kind) {
        case net::FaultEvent::Kind::NodeDown:
        case net::FaultEvent::Kind::NodeUp:
        case net::FaultEvent::Kind::RemoveNode:
          out << " " << ev.a;
          break;
        case net::FaultEvent::Kind::LinkDown:
        case net::FaultEvent::Kind::LinkUp:
        case net::FaultEvent::Kind::RemoveLink:
          out << " " << ev.a << " " << ev.b;
          break;
        case net::FaultEvent::Kind::Degrade:
          out << " " << ev.a << " " << ev.b << " " << ev.weightMul << " "
              << ev.latencyMul;
          break;
        case net::FaultEvent::Kind::AddNode:
          out << " " << ev.a;
          if (ev.weightMul != 1.0 || ev.latencyMul != 1.0)
            out << " " << ev.weightMul << " " << ev.latencyMul;
          break;
        case net::FaultEvent::Kind::AddLink:
          out << " " << ev.a << " " << ev.b;
          if (ev.weightMul != 1.0 || ev.latencyMul != 1.0)
            out << " " << ev.weightMul << " " << ev.latencyMul;
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace diva::workload
