#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "serve/latency_histogram.hpp"
#include "serve/trace.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace diva::workload {

namespace {

/// Stream-id constants for SplitMix64::split — one label per purpose, so
/// adding a new consumer can never silently correlate with an old one.
constexpr std::uint64_t kPlacementStream = 0x91ace000u;  // "place"
constexpr std::uint64_t kAccessStream = 0xacce55u;       // "access"

std::string kb(std::uint64_t bytes) { return support::fmt(bytes / 1e3, 1); }

/// Names appear as single whitespace-delimited tokens in scenario files,
/// where '#' starts a comment; anything else could not round-trip
/// through the text format.
bool singleToken(const std::string& s) {
  return !s.empty() && s.find_first_of(" \t\r\n#") == std::string::npos;
}

}  // namespace

void WorkloadSpec::validate() const {
  DIVA_CHECK_MSG(singleToken(name),
                 "workload name '" << name << "' must be one whitespace-free token "
                                      "(scenario files store names as single tokens)");
  for (const PhaseSpec& ph : phases) {
    DIVA_CHECK_MSG(singleToken(ph.name),
                   "workload '" << name << "': phase name '" << ph.name
                                << "' must be one whitespace-free token");
  }
  DIVA_CHECK_MSG(numObjects >= 1,
                 "workload '" << name << "': numObjects must be positive (got "
                              << numObjects << ")");
  DIVA_CHECK_MSG(objectBytes >= 1,
                 "workload '" << name << "': objectBytes must be positive");
  DIVA_CHECK_MSG(procs >= 0, "workload '" << name << "': procs must be >= 0");
  DIVA_CHECK_MSG(topology.empty() || singleToken(topology),
                 "workload '" << name << "': topology name '" << topology
                              << "' must be one whitespace-free token");
  DIVA_CHECK_MSG(!phases.empty(), "workload '" << name << "': needs at least one phase");
  DIVA_CHECK_MSG(phases.size() <= 64,
                 "workload '" << name << "': too many phases (" << phases.size()
                              << " > 64) — per-phase link cells would dominate memory");
  for (const PhaseSpec& ph : phases) {
    DIVA_CHECK_MSG(ph.rounds >= 0, "workload '" << name << "' phase '" << ph.name
                                                << "': rounds must be >= 0");
    DIVA_CHECK_MSG(ph.readFraction >= 0.0 && ph.readFraction <= 1.0,
                   "workload '" << name << "' phase '" << ph.name
                                << "': readFraction must be in [0, 1] (got "
                                << ph.readFraction << ")");
    // Bounded at kMaxZipfExponent so every accepted integral exponent
    // takes the exact-arithmetic weight path (the bit-stability guarantee
    // committed scenarios rely on); beyond it the distribution is
    // degenerate anyway (rank 0 takes everything).
    DIVA_CHECK_MSG(ph.zipfS >= 0.0 && ph.zipfS <= ZipfSampler::kMaxExponent,
                   "workload '" << name << "' phase '" << ph.name
                                << "': zipf exponent must be in [0, "
                                << ZipfSampler::kMaxExponent << "] (got " << ph.zipfS
                                << ")");
    DIVA_CHECK_MSG(ph.hotShift >= 0, "workload '" << name << "' phase '" << ph.name
                                                  << "': hotShift must be >= 0");
    DIVA_CHECK_MSG(ph.thinkMeanUs >= 0.0, "workload '" << name << "' phase '" << ph.name
                                                       << "': think time must be >= 0");
    for (const net::FaultEvent& ev : ph.faults) {
      DIVA_CHECK_MSG(ev.offsetUs >= 0.0, "workload '" << name << "' phase '" << ph.name
                                                      << "': fault offset must be >= 0");
      DIVA_CHECK_MSG(ev.a >= 0 && ev.b >= 0,
                     "workload '" << name << "' phase '" << ph.name
                                  << "': fault endpoints must be >= 0");
      DIVA_CHECK_MSG(ev.weightMul > 0.0 && ev.latencyMul > 0.0,
                     "workload '" << name << "' phase '" << ph.name
                                  << "': degrade multipliers must be positive");
    }
    // Open-loop serving parameters (docs/serving.md).
    const std::string ctx = "workload '" + name + "' phase '" + ph.name + "'";
    ph.arrival.validate(ctx.c_str());
    DIVA_CHECK_MSG(ph.deadlineUs >= 0.0, ctx << ": deadline must be >= 0");
    DIVA_CHECK_MSG(ph.queueLimit >= 0, ctx << ": queue limit must be >= 0");
    DIVA_CHECK_MSG(ph.openLoop() || (ph.deadlineUs == 0.0 && ph.queueLimit == 0),
                   ctx << ": 'deadline'/'queue' only apply to open-loop phases "
                          "(set an 'arrival' or 'trace')");
    if (ph.arrival.open()) {
      // Pacing comes from the arrival schedule; think time would silently
      // stretch service times and muddy the queueing-delay measurement.
      DIVA_CHECK_MSG(ph.thinkMeanUs == 0.0,
                     ctx << ": open-loop phases must not set think time "
                            "(the arrival schedule is the pacing)");
    }
    if (!ph.tracePath.empty()) {
      DIVA_CHECK_MSG(singleToken(ph.tracePath),
                     ctx << ": trace path must be one whitespace-free token");
      DIVA_CHECK_MSG(!ph.arrival.open() && ph.rounds == 1 && ph.readFraction == 1.0 &&
                         ph.zipfS == 0.0 && ph.hotShift == 0 && ph.thinkMeanUs == 0.0,
                     ctx << ": trace phases take arrivals and accesses from the trace "
                            "file — rounds/reads/zipf/hotshift/think/arrival must stay "
                            "at their defaults");
    }
  }
}

support::SplitMix64 accessStream(std::uint64_t seed, int phase, net::NodeId node) {
  return support::SplitMix64(seed)
      .split(kAccessStream)
      .split(static_cast<std::uint64_t>(phase))
      .split(static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
}

ZipfSampler::ZipfSampler(int n, double s) {
  DIVA_CHECK_MSG(n >= 1, "ZipfSampler: population must be positive (got " << n << ")");
  DIVA_CHECK_MSG(s >= 0.0, "ZipfSampler: exponent must be >= 0 (got " << s << ")");
  cdf_.resize(static_cast<std::size_t>(n));
  // Integral exponents by repeated multiplication: IEEE multiplication
  // and division are correctly rounded, so the weights are identical on
  // every platform (overflow to +inf at extreme s/r degrades gracefully
  // to weight 0, still deterministically). This is what lets committed
  // scenarios carry golden trace hashes; WorkloadSpec::validate bounds
  // exponents at kMaxExponent so every accepted integral s lands here.
  const bool integral = s == std::floor(s) && s <= kMaxExponent;
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    double w;
    if (s == 0.0) {
      w = 1.0;
    } else if (integral) {
      double p = 1.0;
      for (int k = 0; k < static_cast<int>(s); ++k) p *= static_cast<double>(r + 1);
      w = 1.0 / p;
    } else {
      w = std::pow(static_cast<double>(r + 1), -s);
    }
    acc += w;
    cdf_[static_cast<std::size_t>(r)] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding: uniform() < 1 always lands
}

int ZipfSampler::operator()(support::SplitMix64& rng) const {
  const double u = rng.uniform();
  return static_cast<int>(std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
}

namespace {

/// Availability retry policy (docs/faults.md): an operation issued while
/// its processor is crashed backs off and retries, then fails. The
/// budget (10 ms) comfortably covers the heal-within-phase churn the
/// committed scenarios script; ops during longer outages count as
/// failed, which is exactly what availability measures.
constexpr double kRetryBackoffUs = 500.0;
constexpr int kMaxOpRetries = 20;

/// One processor's accesses for one phase. The RNG is the per-(phase,
/// processor) split stream; everything else is shared driver state that
/// outlives the phase's engine drain.
///
/// Crash handling: every RNG draw happens unconditionally BEFORE the
/// liveness check, so a faulted run consumes the access stream exactly
/// like a healthy one — crash timing can never shift which objects later
/// rounds touch, and the fault-free path is untouched.
sim::Task<> nodePhase(Machine& m, Runtime& rt, NodeId self, const PhaseSpec& ph,
                      const ZipfSampler& zipf, const std::vector<VarId>& objects,
                      std::uint64_t objectBytes, support::SplitMix64 rng) {
  const int n = static_cast<int>(objects.size());
  for (int round = 0; round < ph.rounds; ++round) {
    if (ph.thinkMeanUs > 0.0)
      co_await m.net.compute(self, rng.uniform(0.0, 2.0 * ph.thinkMeanUs));
    const int rank = zipf(rng);
    const VarId x = objects[static_cast<std::size_t>((rank + ph.hotShift) % n)];
    const bool isRead = rng.uniform() < ph.readFraction;
    if (!m.net.nodeUp(self)) [[unlikely]] {
      bool recovered = false;
      for (int r = 0; r < kMaxOpRetries; ++r) {
        ++m.stats.ops.retriedOps;
        co_await m.engine.delay(kRetryBackoffUs);
        if (m.net.nodeUp(self)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        ++m.stats.ops.failedOps;
        continue;
      }
    }
    if (isRead) {
      (void)co_await rt.read(self, x);
    } else {
      // Writers serialize through the object's lock: concurrent
      // unsynchronized writes to one variable are outside the coherence
      // contract, and lock traffic is part of what a contended
      // write-heavy workload measures.
      co_await rt.lock(self, x);
      co_await rt.write(self, x, makeRawValue(objectBytes));
      co_await rt.unlock(self, x);
    }
  }
  if (ph.barrier) co_await rt.barrier(self);
}

// ---------------------------------------------------------------------------
// Open-loop serving (docs/serving.md). Requests arrive on a pre-generated
// schedule whether or not the system keeps up; each node serves its own
// arrivals FIFO, and latency is measured from the SCHEDULED arrival
// instant, so queueing delay behind a slow service is part of every
// recorded number — the knee this exposes is what closed-loop driving
// structurally cannot see.
// ---------------------------------------------------------------------------

/// One node's share of a phase's offered load. For generated arrivals the
/// content (object, read/write) is drawn from the same per-(phase, node)
/// access stream as the closed loop; for trace replay the parallel
/// content arrays pin it.
struct NodeServePlan {
  std::vector<double> timesUs;        ///< strictly ascending arrival offsets
  std::vector<std::uint8_t> isRead;   ///< trace only (parallel to timesUs)
  std::vector<int> object;            ///< trace only (parallel to timesUs)
};

struct PhaseServePlan {
  bool active = false;
  bool fromTrace = false;
  double offeredPerSec = 0.0;  ///< nominal aggregate injection rate
  std::vector<NodeServePlan> nodes;
};

/// Shared per-phase measurement state. `inFlight` counts requests whose
/// scheduled instant has passed but which are not yet served or shed —
/// the machine-wide backlog, sampled at every arrival for the peak.
struct ServeState {
  serve::LatencyHistogram hist;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t late = 0;
  int inFlight = 0;
  int maxInFlight = 0;
};

/// One processor's open-loop serving of one phase: wait for each
/// scheduled arrival (or pick it up immediately if already due), shed it
/// if the backlog bound says so, then perform the access exactly like the
/// closed-loop driver. RNG draws happen unconditionally before any
/// shed/liveness decision, so drops can never shift which objects later
/// requests touch — the same stream-stability rule nodePhase follows.
sim::Task<> nodeServePhase(Machine& m, Runtime& rt, NodeId self, const PhaseSpec& ph,
                           const ZipfSampler& zipf, const std::vector<VarId>& objects,
                           std::uint64_t objectBytes, support::SplitMix64 rng,
                           const NodeServePlan& plan, sim::Time phaseStart,
                           ServeState& st) {
  const int n = static_cast<int>(objects.size());
  const int count = static_cast<int>(plan.timesUs.size());
  // Trace plans carry their content in the parallel arrays; generated
  // plans draw it from the access stream.
  const bool fromTrace = !plan.object.empty();
  for (int k = 0; k < count; ++k) {
    VarId x;
    bool isRead;
    if (fromTrace) {
      x = objects[static_cast<std::size_t>(plan.object[static_cast<std::size_t>(k)])];
      isRead = plan.isRead[static_cast<std::size_t>(k)] != 0;
    } else {
      const int rank = zipf(rng);
      x = objects[static_cast<std::size_t>((rank + ph.hotShift) % n)];
      isRead = rng.uniform() < ph.readFraction;
    }
    const sim::Time due = phaseStart + plan.timesUs[static_cast<std::size_t>(k)];
    if (due > m.engine.now()) co_await m.engine.delayUntil(due);
    if (ph.queueLimit > 0) {
      // Shed the oldest when the backlog bound is exceeded: more than
      // `queueLimit` newer requests of this node are already due behind
      // this one (their arrival instants have passed while it waited).
      const double nowRel = m.engine.now() - phaseStart;
      const auto begin = plan.timesUs.begin() + k + 1;
      const auto firstNotDue = std::upper_bound(begin, plan.timesUs.end(), nowRel);
      if (static_cast<int>(firstNotDue - begin) > ph.queueLimit) {
        ++st.dropped;
        --st.inFlight;
        continue;
      }
    }
    if (!m.net.nodeUp(self)) [[unlikely]] {
      bool recovered = false;
      for (int r = 0; r < kMaxOpRetries; ++r) {
        ++m.stats.ops.retriedOps;
        co_await m.engine.delay(kRetryBackoffUs);
        if (m.net.nodeUp(self)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        // Lost to the outage: a failure for availability accounting AND
        // a drop for serving accounting (the request was offered and
        // never served).
        ++m.stats.ops.failedOps;
        ++st.dropped;
        --st.inFlight;
        continue;
      }
    }
    if (isRead) {
      (void)co_await rt.read(self, x);
    } else {
      co_await rt.lock(self, x);
      co_await rt.write(self, x, makeRawValue(objectBytes));
      co_await rt.unlock(self, x);
    }
    const double latencyUs = m.engine.now() - due;
    st.hist.record(latencyUs);
    ++st.served;
    if (ph.deadlineUs > 0.0 && latencyUs > ph.deadlineUs) ++st.late;
    --st.inFlight;
  }
  if (ph.barrier) co_await rt.barrier(self);
}

/// Build the per-node offered-load plans for every open-loop phase of
/// `spec` on a `procs`-node machine. Pure function of (spec, procs):
/// generated schedules come from the dedicated arrival streams, trace
/// schedules from the file (node ids and object ids range-checked here,
/// before anything is scheduled).
std::vector<PhaseServePlan> buildServePlans(const WorkloadSpec& spec, int procs) {
  std::vector<PhaseServePlan> plans(spec.phases.size());
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    const PhaseSpec& ph = spec.phases[p];
    if (!ph.openLoop()) continue;
    PhaseServePlan& plan = plans[p];
    plan.active = true;
    plan.nodes.resize(static_cast<std::size_t>(procs));
    if (!ph.tracePath.empty()) {
      plan.fromTrace = true;
      const serve::Trace trace = serve::loadTraceFile(ph.tracePath);
      DIVA_CHECK_MSG(trace.numObjects <= spec.numObjects,
                     "workload '" << spec.name << "' phase '" << ph.name << "': trace '"
                                  << ph.tracePath << "' uses " << trace.numObjects
                                  << " objects but the workload only has "
                                  << spec.numObjects);
      double lastUs = 0.0;
      for (const serve::TraceRequest& req : trace.requests) {
        DIVA_CHECK_MSG(req.node < procs,
                       "workload '" << spec.name << "' phase '" << ph.name
                                    << "': trace node " << req.node
                                    << " out of range for a " << procs
                                    << "-processor machine");
        NodeServePlan& np = plan.nodes[static_cast<std::size_t>(req.node)];
        np.timesUs.push_back(req.timeUs);
        np.isRead.push_back(req.isRead ? 1 : 0);
        np.object.push_back(req.object);
        lastUs = req.timeUs;
      }
      // Per-node strict ascent (the file only guarantees non-decreasing
      // globally): FIFO serving needs distinct instants per node.
      for (NodeServePlan& np : plan.nodes) {
        for (std::size_t i = 1; i < np.timesUs.size(); ++i) {
          if (np.timesUs[i] <= np.timesUs[i - 1])
            np.timesUs[i] = np.timesUs[i - 1] + 1e-9;
        }
      }
      plan.offeredPerSec =
          lastUs > 0.0
              ? static_cast<double>(trace.requests.size()) / lastUs * 1e6
              : 0.0;
    } else {
      for (int node = 0; node < procs; ++node) {
        plan.nodes[static_cast<std::size_t>(node)].timesUs = serve::generateArrivals(
            ph.arrival, ph.rounds, procs, spec.seed, static_cast<int>(p),
            static_cast<net::NodeId>(node));
      }
      // Burst offered load is the time-averaged rate over on+off windows.
      plan.offeredPerSec =
          ph.arrival.kind == serve::ArrivalSpec::Kind::Burst
              ? ph.arrival.ratePerSec * ph.arrival.burstOnUs /
                    (ph.arrival.burstOnUs + ph.arrival.burstOffUs)
              : ph.arrival.ratePerSec;
    }
  }
  return plans;
}

void fillServeMetrics(ServeMetrics& sv, const ServeState& st, double offeredPerSec,
                      double wallUs) {
  sv.active = true;
  sv.offeredPerSec = offeredPerSec;
  sv.achievedPerSec =
      wallUs > 0.0 ? static_cast<double>(st.served) / wallUs * 1e6 : 0.0;
  sv.p50Us = st.hist.p50();
  sv.p90Us = st.hist.p90();
  sv.p99Us = st.hist.p99();
  sv.p999Us = st.hist.p999();
  sv.maxUs = st.hist.max();
  sv.meanUs = st.hist.mean();
  sv.arrived = st.arrived;
  sv.served = st.served;
  sv.dropped = st.dropped;
  sv.late = st.late;
  sv.maxInFlight = st.maxInFlight;
}

}  // namespace

WorkloadSpec openLoopAt(const WorkloadSpec& spec, double ratePerSec) {
  WorkloadSpec open = spec;
  for (PhaseSpec& ph : open.phases) {
    ph.arrival.kind = serve::ArrivalSpec::Kind::Poisson;
    ph.arrival.ratePerSec = ratePerSec;
    ph.arrival.burstOnUs = ph.arrival.burstOffUs = 0.0;
    ph.thinkMeanUs = 0.0;  // pacing comes from the schedule now
    ph.tracePath.clear();
  }
  open.validate();
  return open;
}

WorkloadReport run(Machine& m, Runtime& rt, const WorkloadSpec& spec) {
  spec.validate();
  DIVA_CHECK_MSG(m.engine.idle(), "workload::run requires a quiescent engine");
  const int procs = m.numProcs();
  const int numPhases = static_cast<int>(spec.phases.size());
  m.stats.ensurePhases(numPhases);

  // Fault endpoints can only be range-checked against the actual machine
  // (spec.procs is a suggestion); fail before anything is scheduled.
  bool faulted = false;
  for (const PhaseSpec& ph : spec.phases) {
    for (const net::FaultEvent& ev : ph.faults) {
      faulted = true;
      DIVA_CHECK_MSG(ev.a < procs && ev.b < procs,
                     "workload '" << spec.name << "' phase '" << ph.name << "': fault "
                                  << net::faultKindName(ev.kind) << " endpoint out of "
                                     "range for a " << procs << "-processor machine");
    }
  }

  // Offered-load plans for open-loop phases (generated schedules + trace
  // files), built before anything runs so bad traces fail fast.
  const std::vector<PhaseServePlan> servePlans = buildServePlans(spec, procs);

  const support::SplitMix64 master(spec.seed);

  // Object population: owners drawn from the placement stream (setup is
  // free, as in the figure benches). Every object carries a lock so any
  // processor may write it.
  support::SplitMix64 placement = master.split(kPlacementStream);
  std::vector<VarId> objects;
  objects.reserve(static_cast<std::size_t>(spec.numObjects));
  for (int i = 0; i < spec.numObjects; ++i) {
    const NodeId owner =
        static_cast<NodeId>(placement.below(static_cast<std::uint64_t>(procs)));
    objects.push_back(rt.createVarFree(owner, makeRawValue(spec.objectBytes),
                                       /*withLock=*/true));
  }

  // The report covers exactly this run: measurement state starts clean.
  m.stats.reset(m.engine.now());
  m.stats.setPhase(0, m.engine.now());

  WorkloadReport report;
  report.workload = spec.name;
  report.strategy = rt.strategyName();
  report.topology = m.topo().name();
  report.procs = procs;

  const sim::Time startTime = m.engine.now();
  const std::uint64_t sentBefore = m.net.messagesSent();
  const std::uint64_t reroutedBefore = m.net.reroutedFlights();
  const std::uint64_t parkedBefore = m.net.parkedFlights();

  // Run-total open-loop accumulators (merged across open-loop phases).
  serve::LatencyHistogram totalHist;
  ServeState totalState;
  double openWallUs = 0.0;
  double offeredDotWall = 0.0;

  for (int p = 0; p < numPhases; ++p) {
    const PhaseSpec& ph = spec.phases[static_cast<std::size_t>(p)];
    if (p > 0) m.stats.setPhase(p, m.engine.now());
    const Stats::Counters opsBefore = m.stats.ops;
    const std::uint64_t phaseSentBefore = m.net.messagesSent();

    // Fault offsets are relative to the phase start; an empty plan
    // schedules nothing, so fault-free runs are bit-identical.
    net::scheduleFaultPlan(m.engine, m.net, ph.faults, m.engine.now());

    const PhaseServePlan& servePlan = servePlans[static_cast<std::size_t>(p)];
    ServeState serveState;
    const ZipfSampler zipf(spec.numObjects, ph.zipfS);
    if (servePlan.active) {
      // Arrival markers: one zero-cost event per request at its scheduled
      // instant, queued before the serving coroutines so that at equal
      // timestamps (FIFO among equals) an arrival is counted before it
      // can be picked up — `inFlight` is the machine-wide backlog.
      const sim::Time phaseStart = m.engine.now();
      for (NodeId node = 0; node < procs; ++node) {
        for (const double t : servePlan.nodes[static_cast<std::size_t>(node)].timesUs) {
          m.engine.scheduleAt(phaseStart + t, [&serveState] {
            ++serveState.arrived;
            if (++serveState.inFlight > serveState.maxInFlight)
              serveState.maxInFlight = serveState.inFlight;
          });
        }
      }
      for (NodeId node = 0; node < procs; ++node) {
        sim::spawn(nodeServePhase(m, rt, node, ph, zipf, objects, spec.objectBytes,
                                  accessStream(spec.seed, p, node),
                                  servePlan.nodes[static_cast<std::size_t>(node)],
                                  phaseStart, serveState));
      }
    } else {
      for (NodeId node = 0; node < procs; ++node) {
        sim::spawn(nodePhase(m, rt, node, ph, zipf, objects, spec.objectBytes,
                             accessStream(spec.seed, p, node)));
      }
    }
    // Drain to quiescence: the engine acts as the zero-cost outer clock,
    // so phase boundaries in the stats are exact instants (the in-model
    // barrier above is still part of the measured protocol traffic).
    m.run();

    WorkloadReport::Phase pr;
    pr.name = ph.name;
    pr.wallUs = m.stats.wallUs(p);
    pr.injected = m.net.messagesSent() - phaseSentBefore;
    pr.linkMessages = m.stats.links.totalMessages(p);
    pr.linkBytes = m.stats.links.totalBytes(p);
    pr.congestionMessages = m.stats.links.congestionMessages(p);
    pr.congestionBytes = m.stats.links.congestionBytes(p);
    pr.reads = m.stats.ops.reads - opsBefore.reads;
    pr.readHits = m.stats.ops.readHits - opsBefore.readHits;
    pr.writes = m.stats.ops.writes - opsBefore.writes;
    pr.invalidations = m.stats.ops.invalidations - opsBefore.invalidations;
    pr.locks = m.stats.ops.locks - opsBefore.locks;
    pr.failedOps = m.stats.ops.failedOps - opsBefore.failedOps;
    pr.retriedOps = m.stats.ops.retriedOps - opsBefore.retriedOps;
    pr.recoveryMessages = m.stats.ops.recoveryMessages - opsBefore.recoveryMessages;
    pr.recoveryBytes = m.stats.ops.recoveryBytes - opsBefore.recoveryBytes;
    if (servePlan.active) {
      fillServeMetrics(pr.serve, serveState, servePlan.offeredPerSec, pr.wallUs);
      totalHist.merge(serveState.hist);
      totalState.arrived += serveState.arrived;
      totalState.served += serveState.served;
      totalState.dropped += serveState.dropped;
      totalState.late += serveState.late;
      totalState.maxInFlight = std::max(totalState.maxInFlight, serveState.maxInFlight);
      openWallUs += pr.wallUs;
      offeredDotWall += servePlan.offeredPerSec * pr.wallUs;
    }
    report.phases.push_back(std::move(pr));
  }

  report.completionUs = m.engine.now() - startTime;
  report.injected = m.net.messagesSent() - sentBefore;
  for (const WorkloadReport::Phase& pr : report.phases) {
    report.linkMessages += pr.linkMessages;
    report.linkBytes += pr.linkBytes;
  }
  // Overall congestion: max over links of the link's traffic summed over
  // this run's phases (not the sum of per-phase maxima — different links
  // may peak in different phases).
  report.congestionMessages = m.stats.links.congestionMessages();
  report.congestionBytes = m.stats.links.congestionBytes();

  report.faulted = faulted;
  report.servedOps = m.stats.ops.reads + m.stats.ops.writes;
  report.failedOps = m.stats.ops.failedOps;
  report.retriedOps = m.stats.ops.retriedOps;
  const std::uint64_t attempted = report.servedOps + report.failedOps;
  report.availability =
      attempted ? static_cast<double>(report.servedOps) / static_cast<double>(attempted)
                : 1.0;
  report.recoveryMessages = m.stats.ops.recoveryMessages;
  report.recoveryBytes = m.stats.ops.recoveryBytes;
  report.repairedVars = m.stats.ops.repairedVars;
  report.reroutedFlights = m.net.reroutedFlights() - reroutedBefore;
  report.parkedFlights = m.net.parkedFlights() - parkedBefore;

  if (std::any_of(servePlans.begin(), servePlans.end(),
                  [](const PhaseServePlan& pl) { return pl.active; })) {
    totalState.hist = totalHist;
    fillServeMetrics(report.serve, totalState,
                     openWallUs > 0.0 ? offeredDotWall / openWallUs : 0.0, openWallUs);
  }

  // A faulted run must end with every object intact: nothing lost,
  // nothing dually owned, no repair still parked (docs/faults.md).
  // Fault-free runs skip the sweep — it is O(objects) and the healthy
  // invariants are already pinned by the strategy test suites.
  if (faulted) rt.checkAllInvariants();
  return report;
}

WorkloadReport runOn(const net::TopologySpec& topo, const RuntimeConfig& config,
                     const WorkloadSpec& spec) {
  Machine m(topo);
  RuntimeConfig rc = config;
  rc.seed = spec.seed;
  rc.cacheCapacityBytes = spec.cacheBytes ? spec.cacheBytes : ~0ull;
  Runtime rt(m, rc);
  return run(m, rt, spec);
}

std::string formatReport(const WorkloadReport& r) {
  std::ostringstream out;
  out << "workload '" << r.workload << "' · strategy " << r.strategy << " · "
      << r.topology << " (" << r.procs << " procs)\n";
  support::Table t({"phase", "wall ms", "injected", "link msgs", "link KB", "cong msgs",
                    "cong KB", "reads", "hits", "writes", "invals", "locks"});
  for (const WorkloadReport::Phase& p : r.phases) {
    t.addRow({p.name, support::fmt(p.wallUs / 1e3, 2), std::to_string(p.injected),
              std::to_string(p.linkMessages), kb(p.linkBytes),
              std::to_string(p.congestionMessages), kb(p.congestionBytes),
              std::to_string(p.reads), std::to_string(p.readHits),
              std::to_string(p.writes), std::to_string(p.invalidations),
              std::to_string(p.locks)});
  }
  t.addRow({"total", support::fmt(r.completionUs / 1e3, 2), std::to_string(r.injected),
            std::to_string(r.linkMessages), kb(r.linkBytes),
            std::to_string(r.congestionMessages), kb(r.congestionBytes), "", "", "", "",
            ""});
  t.print(out);
  // SLO table only when some phase ran open loop — closed-loop reports
  // render byte-identically to earlier versions.
  if (r.serve.active) {
    out << "open-loop serving · latency from scheduled arrival (docs/serving.md)\n";
    support::Table st({"phase", "offered/s", "achieved/s", "p50 µs", "p90 µs", "p99 µs",
                       "p999 µs", "max µs", "served", "dropped", "late", "peak infl"});
    auto serveRow = [&st](const std::string& name, const ServeMetrics& sv) {
      st.addRow({name, support::fmt(sv.offeredPerSec, 0),
                 support::fmt(sv.achievedPerSec, 0), support::fmt(sv.p50Us, 2),
                 support::fmt(sv.p90Us, 2), support::fmt(sv.p99Us, 2),
                 support::fmt(sv.p999Us, 2), support::fmt(sv.maxUs, 2),
                 std::to_string(sv.served), std::to_string(sv.dropped),
                 std::to_string(sv.late), std::to_string(sv.maxInFlight)});
    };
    for (const WorkloadReport::Phase& p : r.phases) {
      if (p.serve.active) serveRow(p.name, p.serve);
    }
    serveRow("total", r.serve);
    st.print(out);
  }
  // Availability/recovery section only on faulted runs — a fault-free
  // report renders byte-identically to earlier versions.
  if (r.faulted) {
    out << "availability " << support::fmt(r.availability, 4) << " · served "
        << r.servedOps << " · failed " << r.failedOps << " · retried " << r.retriedOps
        << "\n";
    out << "recovery " << r.recoveryMessages << " msgs · " << kb(r.recoveryBytes)
        << " KB · " << r.repairedVars << " vars repaired · " << r.reroutedFlights
        << " flights rerouted · " << r.parkedFlights << " parked\n";
  }
  return out.str();
}

std::string formatComparison(const WorkloadReport& a, const WorkloadReport& b) {
  auto ratio = [](double x, double y) {
    return y > 0.0 ? support::fmt(x / y, 2) : std::string("n/a");
  };
  std::ostringstream out;
  out << "strategy A/B on " << a.topology << " · workload '" << a.workload << "'\n";
  support::Table t({"metric", a.strategy, b.strategy,
                    "ratio (" + a.strategy + " / " + b.strategy + ")"});
  t.addRow({"completion ms", support::fmt(a.completionUs / 1e3, 2),
            support::fmt(b.completionUs / 1e3, 2),
            ratio(a.completionUs, b.completionUs)});
  t.addRow({"injected messages", std::to_string(a.injected), std::to_string(b.injected),
            ratio(static_cast<double>(a.injected), static_cast<double>(b.injected))});
  t.addRow({"link crossings", std::to_string(a.linkMessages),
            std::to_string(b.linkMessages),
            ratio(static_cast<double>(a.linkMessages),
                  static_cast<double>(b.linkMessages))});
  t.addRow({"link traffic KB", kb(a.linkBytes), kb(b.linkBytes),
            ratio(static_cast<double>(a.linkBytes), static_cast<double>(b.linkBytes))});
  t.addRow({"max-link congestion msgs", std::to_string(a.congestionMessages),
            std::to_string(b.congestionMessages),
            ratio(static_cast<double>(a.congestionMessages),
                  static_cast<double>(b.congestionMessages))});
  t.addRow({"max-link congestion KB", kb(a.congestionBytes), kb(b.congestionBytes),
            ratio(static_cast<double>(a.congestionBytes),
                  static_cast<double>(b.congestionBytes))});
  if (a.serve.active || b.serve.active) {
    t.addRow({"achieved req/s", support::fmt(a.serve.achievedPerSec, 0),
              support::fmt(b.serve.achievedPerSec, 0),
              ratio(a.serve.achievedPerSec, b.serve.achievedPerSec)});
    t.addRow({"p50 latency µs", support::fmt(a.serve.p50Us, 2),
              support::fmt(b.serve.p50Us, 2), ratio(a.serve.p50Us, b.serve.p50Us)});
    t.addRow({"p99 latency µs", support::fmt(a.serve.p99Us, 2),
              support::fmt(b.serve.p99Us, 2), ratio(a.serve.p99Us, b.serve.p99Us)});
    t.addRow({"p999 latency µs", support::fmt(a.serve.p999Us, 2),
              support::fmt(b.serve.p999Us, 2), ratio(a.serve.p999Us, b.serve.p999Us)});
    t.addRow({"dropped requests", std::to_string(a.serve.dropped),
              std::to_string(b.serve.dropped),
              ratio(static_cast<double>(a.serve.dropped),
                    static_cast<double>(b.serve.dropped))});
    t.addRow({"late requests", std::to_string(a.serve.late),
              std::to_string(b.serve.late),
              ratio(static_cast<double>(a.serve.late),
                    static_cast<double>(b.serve.late))});
  }
  if (a.faulted || b.faulted) {
    t.addRow({"availability", support::fmt(a.availability, 4),
              support::fmt(b.availability, 4),
              ratio(a.availability, b.availability)});
    t.addRow({"failed ops", std::to_string(a.failedOps), std::to_string(b.failedOps),
              ratio(static_cast<double>(a.failedOps), static_cast<double>(b.failedOps))});
    t.addRow({"recovery messages", std::to_string(a.recoveryMessages),
              std::to_string(b.recoveryMessages),
              ratio(static_cast<double>(a.recoveryMessages),
                    static_cast<double>(b.recoveryMessages))});
    t.addRow({"recovery KB", kb(a.recoveryBytes), kb(b.recoveryBytes),
              ratio(static_cast<double>(a.recoveryBytes),
                    static_cast<double>(b.recoveryBytes))});
    t.addRow({"vars repaired", std::to_string(a.repairedVars),
              std::to_string(b.repairedVars),
              ratio(static_cast<double>(a.repairedVars),
                    static_cast<double>(b.repairedVars))});
  }
  t.print(out);
  return out.str();
}

}  // namespace diva::workload
