#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/trace.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace diva::workload {

namespace {

/// Stream-id constants for SplitMix64::split — one label per purpose, so
/// adding a new consumer can never silently correlate with an old one.
constexpr std::uint64_t kPlacementStream = 0x91ace000u;  // "place"
constexpr std::uint64_t kAccessStream = 0xacce55u;       // "access"

std::string kb(std::uint64_t bytes) { return support::fmt(bytes / 1e3, 1); }

/// Names appear as single whitespace-delimited tokens in scenario files,
/// where '#' starts a comment; anything else could not round-trip
/// through the text format.
bool singleToken(const std::string& s) {
  return !s.empty() && s.find_first_of(" \t\r\n#") == std::string::npos;
}

}  // namespace

void WorkloadSpec::validate() const {
  DIVA_CHECK_MSG(singleToken(name),
                 "workload name '" << name << "' must be one whitespace-free token "
                                      "(scenario files store names as single tokens)");
  for (const PhaseSpec& ph : phases) {
    DIVA_CHECK_MSG(singleToken(ph.name),
                   "workload '" << name << "': phase name '" << ph.name
                                << "' must be one whitespace-free token");
  }
  DIVA_CHECK_MSG(numObjects >= 1,
                 "workload '" << name << "': numObjects must be positive (got "
                              << numObjects << ")");
  DIVA_CHECK_MSG(objectBytes >= 1,
                 "workload '" << name << "': objectBytes must be positive");
  DIVA_CHECK_MSG(procs >= 0, "workload '" << name << "': procs must be >= 0");
  DIVA_CHECK_MSG(topology.empty() || singleToken(topology),
                 "workload '" << name << "': topology name '" << topology
                              << "' must be one whitespace-free token");
  DIVA_CHECK_MSG(!phases.empty(), "workload '" << name << "': needs at least one phase");
  DIVA_CHECK_MSG(phases.size() <= 64,
                 "workload '" << name << "': too many phases (" << phases.size()
                              << " > 64) — per-phase link cells would dominate memory");
  for (const PhaseSpec& ph : phases) {
    DIVA_CHECK_MSG(ph.rounds >= 0, "workload '" << name << "' phase '" << ph.name
                                                << "': rounds must be >= 0");
    DIVA_CHECK_MSG(ph.readFraction >= 0.0 && ph.readFraction <= 1.0,
                   "workload '" << name << "' phase '" << ph.name
                                << "': readFraction must be in [0, 1] (got "
                                << ph.readFraction << ")");
    // Bounded at kMaxZipfExponent so every accepted integral exponent
    // takes the exact-arithmetic weight path (the bit-stability guarantee
    // committed scenarios rely on); beyond it the distribution is
    // degenerate anyway (rank 0 takes everything).
    DIVA_CHECK_MSG(ph.zipfS >= 0.0 && ph.zipfS <= ZipfSampler::kMaxExponent,
                   "workload '" << name << "' phase '" << ph.name
                                << "': zipf exponent must be in [0, "
                                << ZipfSampler::kMaxExponent << "] (got " << ph.zipfS
                                << ")");
    DIVA_CHECK_MSG(ph.hotShift >= 0, "workload '" << name << "' phase '" << ph.name
                                                  << "': hotShift must be >= 0");
    DIVA_CHECK_MSG(ph.thinkMeanUs >= 0.0, "workload '" << name << "' phase '" << ph.name
                                                       << "': think time must be >= 0");
    for (const net::FaultEvent& ev : ph.faults) {
      DIVA_CHECK_MSG(ev.offsetUs >= 0.0, "workload '" << name << "' phase '" << ph.name
                                                      << "': fault offset must be >= 0");
      DIVA_CHECK_MSG(ev.a >= 0 && ev.b >= 0,
                     "workload '" << name << "' phase '" << ph.name
                                  << "': fault endpoints must be >= 0");
      DIVA_CHECK_MSG(ev.weightMul > 0.0 && ev.latencyMul > 0.0,
                     "workload '" << name << "' phase '" << ph.name
                                  << "': degrade multipliers / new-edge parameters "
                                     "must be positive");
    }
    // Open-loop serving parameters (docs/serving.md).
    const std::string ctx = "workload '" + name + "' phase '" + ph.name + "'";
    ph.arrival.validate(ctx.c_str());
    DIVA_CHECK_MSG(ph.deadlineUs >= 0.0, ctx << ": deadline must be >= 0");
    DIVA_CHECK_MSG(ph.queueLimit >= 0, ctx << ": queue limit must be >= 0");
    DIVA_CHECK_MSG(ph.openLoop() || (ph.deadlineUs == 0.0 && ph.queueLimit == 0),
                   ctx << ": 'deadline'/'queue' only apply to open-loop phases "
                          "(set an 'arrival' or 'trace')");
    if (ph.arrival.open()) {
      // Pacing comes from the arrival schedule; think time would silently
      // stretch service times and muddy the queueing-delay measurement.
      DIVA_CHECK_MSG(ph.thinkMeanUs == 0.0,
                     ctx << ": open-loop phases must not set think time "
                            "(the arrival schedule is the pacing)");
    }
    if (!ph.tracePath.empty()) {
      DIVA_CHECK_MSG(singleToken(ph.tracePath),
                     ctx << ": trace path must be one whitespace-free token");
      DIVA_CHECK_MSG(!ph.arrival.open() && ph.rounds == 1 && ph.readFraction == 1.0 &&
                         ph.zipfS == 0.0 && ph.hotShift == 0 && ph.thinkMeanUs == 0.0,
                     ctx << ": trace phases take arrivals and accesses from the trace "
                            "file — rounds/reads/zipf/hotshift/think/arrival must stay "
                            "at their defaults");
    }
  }
}

support::SplitMix64 accessStream(std::uint64_t seed, int phase, net::NodeId node) {
  return support::SplitMix64(seed)
      .split(kAccessStream)
      .split(static_cast<std::uint64_t>(phase))
      .split(static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
}

ZipfSampler::ZipfSampler(int n, double s) {
  DIVA_CHECK_MSG(n >= 1, "ZipfSampler: population must be positive (got " << n << ")");
  DIVA_CHECK_MSG(s >= 0.0, "ZipfSampler: exponent must be >= 0 (got " << s << ")");
  cdf_.resize(static_cast<std::size_t>(n));
  // Integral exponents by repeated multiplication: IEEE multiplication
  // and division are correctly rounded, so the weights are identical on
  // every platform (overflow to +inf at extreme s/r degrades gracefully
  // to weight 0, still deterministically). This is what lets committed
  // scenarios carry golden trace hashes; WorkloadSpec::validate bounds
  // exponents at kMaxExponent so every accepted integral s lands here.
  const bool integral = s == std::floor(s) && s <= kMaxExponent;
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    double w;
    if (s == 0.0) {
      w = 1.0;
    } else if (integral) {
      double p = 1.0;
      for (int k = 0; k < static_cast<int>(s); ++k) p *= static_cast<double>(r + 1);
      w = 1.0 / p;
    } else {
      w = std::pow(static_cast<double>(r + 1), -s);
    }
    acc += w;
    cdf_[static_cast<std::size_t>(r)] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding: uniform() < 1 always lands
}

int ZipfSampler::operator()(support::SplitMix64& rng) const {
  const double u = rng.uniform();
  return static_cast<int>(std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
}

namespace {

/// Availability retry policy (docs/faults.md): an operation issued while
/// its processor is crashed backs off and retries, then fails. The
/// budget (10 ms) comfortably covers the heal-within-phase churn the
/// committed scenarios script; ops during longer outages count as
/// failed, which is exactly what availability measures.
constexpr double kRetryBackoffUs = 500.0;
constexpr int kMaxOpRetries = 20;

/// " (scenario line N)" when the event came from a scenario file.
std::string atLine(int line) {
  return line > 0 ? " (scenario line " + std::to_string(line) + ")" : std::string();
}

/// Evolving-shape pre-flight (docs/faults.md "Reconfiguration"): replay
/// every phase's fault plan against a model of the machine's shape, in
/// firing order, and validate each event against the shape it will
/// actually meet at run time — endpoint ids against the CURRENT node
/// count (which `add-node` grows), membership for structural endpoints,
/// and `remove-node`/`remove-link` against member connectivity (the
/// routing rebuild would otherwise fail deep inside an engine event).
/// All of this happens before anything is scheduled, with line-numbered
/// errors for scenario-sourced events. The recorded per-phase-start
/// shape sizes spawning and arrival plans: nodes added during a phase
/// join the driver at the next phase boundary.
struct ShapeTimeline {
  bool reconfigured = false;    ///< some phase scripts a structural event
  std::vector<int> phaseProcs;  ///< node-id space at each phase start
  std::vector<std::vector<std::uint8_t>> phaseMember;  ///< membership at phase start
};

ShapeTimeline simulateShape(const WorkloadSpec& spec, const Machine& m) {
  ShapeTimeline tl;
  int count = m.net.numNodes();
  std::vector<std::uint8_t> member(static_cast<std::size_t>(count), 0);
  for (net::NodeId n = 0; n < count; ++n)
    member[static_cast<std::size_t>(n)] = m.net.nodeMember(n) ? 1 : 0;
  // Undirected member↔member edges; nullptr for closed-form shapes,
  // which range-check fine but cannot reconfigure. The committed shape
  // has no edges into already-retired nodes, so the list starts clean.
  const net::GraphSpec* g = m.net.topology().graph();
  std::vector<std::pair<net::NodeId, net::NodeId>> edges;
  if (g != nullptr) {
    edges.reserve(g->edges.size());
    for (const net::GraphSpec::Edge& e : g->edges)
      edges.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  const auto hasEdge = [&edges](net::NodeId u, net::NodeId v) {
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    return std::find(edges.begin(), edges.end(), key) != edges.end();
  };
  // Members still mutually reachable when `skipNode` (or the edge
  // `skipU`—`skipV`) is taken out: DFS over the edge list. O(members ·
  // edges) worst case — fault plans are tiny.
  const auto connectedWithout = [&](net::NodeId skipNode, net::NodeId skipU,
                                    net::NodeId skipV) {
    int want = 0;
    net::NodeId start = -1;
    for (net::NodeId n = 0; n < count; ++n) {
      if (!member[static_cast<std::size_t>(n)] || n == skipNode) continue;
      ++want;
      if (start < 0) start = n;
    }
    if (want <= 1) return true;
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(count), 0);
    std::vector<net::NodeId> stack{start};
    seen[static_cast<std::size_t>(start)] = 1;
    int got = 1;
    while (!stack.empty()) {
      const net::NodeId u = stack.back();
      stack.pop_back();
      for (const auto& [ea, eb] : edges) {
        if (ea == skipU && eb == skipV) continue;
        if (ea == skipNode || eb == skipNode) continue;
        net::NodeId v;
        if (ea == u) {
          v = eb;
        } else if (eb == u) {
          v = ea;
        } else {
          continue;
        }
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = 1;
        ++got;
        stack.push_back(v);
      }
    }
    return got == want;
  };

  for (const PhaseSpec& ph : spec.phases) {
    tl.phaseProcs.push_back(count);
    tl.phaseMember.push_back(member);
    // Events apply in firing order: time-ascending, plan order within an
    // instant (exactly how scheduleFaultPlan delivers them).
    std::vector<const net::FaultEvent*> order;
    order.reserve(ph.faults.size());
    for (const net::FaultEvent& ev : ph.faults) order.push_back(&ev);
    std::stable_sort(order.begin(), order.end(),
                     [](const net::FaultEvent* x, const net::FaultEvent* y) {
                       return x->offsetUs < y->offsetUs;
                     });
    for (const net::FaultEvent* pe : order) {
      const net::FaultEvent& ev = *pe;
      if (!net::isStructural(ev.kind)) {
        DIVA_CHECK_MSG(ev.a < count && ev.b < count,
                       "workload '" << spec.name << "' phase '" << ph.name
                                    << "': fault " << net::faultKindName(ev.kind)
                                    << " endpoint out of range for a " << count
                                    << "-processor machine" << atLine(ev.line));
        continue;
      }
      tl.reconfigured = true;
      DIVA_CHECK_MSG(g != nullptr,
                     "workload '" << spec.name << "' phase '" << ph.name
                                  << "': structural reconfiguration requires a "
                                     "graph-backed topology; '"
                                  << m.topo().name() << "' cannot grow or shrink"
                                  << atLine(ev.line));
      const auto isMember = [&](net::NodeId n) {
        return n >= 0 && n < count && member[static_cast<std::size_t>(n)] != 0;
      };
      switch (ev.kind) {
        case net::FaultEvent::Kind::AddNode: {
          DIVA_CHECK_MSG(isMember(ev.a),
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': add-node anchor " << ev.a
                                      << " is not a member of the " << count
                                      << "-node machine" << atLine(ev.line));
          member.push_back(1);
          edges.emplace_back(ev.a, static_cast<net::NodeId>(count));
          ++count;
          break;
        }
        case net::FaultEvent::Kind::RemoveNode: {
          DIVA_CHECK_MSG(isMember(ev.a),
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': remove-node " << ev.a
                                      << " is not a member of the " << count
                                      << "-node machine" << atLine(ev.line));
          DIVA_CHECK_MSG(connectedWithout(ev.a, -1, -1),
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': remove-node " << ev.a
                                      << " would disconnect the machine"
                                      << atLine(ev.line));
          member[static_cast<std::size_t>(ev.a)] = 0;
          std::erase_if(edges, [&ev](const std::pair<net::NodeId, net::NodeId>& e) {
            return e.first == ev.a || e.second == ev.a;
          });
          break;
        }
        case net::FaultEvent::Kind::AddLink: {
          DIVA_CHECK_MSG(isMember(ev.a) && isMember(ev.b) && ev.a != ev.b,
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': add-link " << ev.a << "—" << ev.b
                                      << " endpoints must be distinct members of the "
                                      << count << "-node machine" << atLine(ev.line));
          DIVA_CHECK_MSG(!hasEdge(ev.a, ev.b),
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': add-link " << ev.a << "—" << ev.b
                                      << " already exists" << atLine(ev.line));
          edges.emplace_back(std::min(ev.a, ev.b), std::max(ev.a, ev.b));
          break;
        }
        case net::FaultEvent::Kind::RemoveLink: {
          DIVA_CHECK_MSG(hasEdge(ev.a, ev.b),
                         "workload '" << spec.name << "' phase '" << ph.name
                                      << "': remove-link " << ev.a << "—" << ev.b
                                      << " is not an edge of the machine"
                                      << atLine(ev.line));
          DIVA_CHECK_MSG(
              connectedWithout(-1, std::min(ev.a, ev.b), std::max(ev.a, ev.b)),
              "workload '" << spec.name << "' phase '" << ph.name << "': remove-link "
                           << ev.a << "—" << ev.b << " would disconnect the machine"
                           << atLine(ev.line));
          std::erase(edges,
                     std::make_pair(std::min(ev.a, ev.b), std::max(ev.a, ev.b)));
          break;
        }
        default:
          break;  // non-structural kinds handled above
      }
    }
  }
  return tl;
}

/// One processor's accesses for one phase. The RNG is the per-(phase,
/// processor) split stream; everything else is shared driver state that
/// outlives the phase's engine drain.
///
/// Crash handling: every RNG draw happens unconditionally BEFORE the
/// liveness check, so a faulted run consumes the access stream exactly
/// like a healthy one — crash timing can never shift which objects later
/// rounds touch, and the fault-free path is untouched.
sim::Task<> nodePhase(Machine& m, Runtime& rt, NodeId self, const PhaseSpec& ph,
                      const ZipfSampler& zipf, const std::vector<VarId>& objects,
                      std::uint64_t objectBytes, support::SplitMix64 rng,
                      sim::Time runStart, serve::Trace* capture) {
  const int n = static_cast<int>(objects.size());
  // Transaction spans on this processor's track (obs/tracer.hpp). The
  // category gate is hoisted: tracing off (or txn filtered out) costs
  // one null test per guarded site and records nothing.
  obs::Tracer* tr = m.net.tracer();
  if (tr != nullptr && !tr->on(obs::kCatTxn)) tr = nullptr;
  for (int round = 0; round < ph.rounds; ++round) {
    if (ph.thinkMeanUs > 0.0)
      co_await m.net.compute(self, rng.uniform(0.0, 2.0 * ph.thinkMeanUs));
    const int rank = zipf(rng);
    const int idx = (rank + ph.hotShift) % n;
    const VarId x = objects[static_cast<std::size_t>(idx)];
    const bool isRead = rng.uniform() < ph.readFraction;
    // A processor that left the machine (reconfig remove-node) stops
    // issuing: its program ends, but it still reports to the phase-end
    // barrier — the aggregation tree spans the phase-START membership
    // until the epoch commits at the boundary. Placed after the draws so
    // retirement timing can never shift the access stream.
    if (!m.net.nodeMember(self)) [[unlikely]] break;
    if (!m.net.nodeUp(self)) [[unlikely]] {
      bool recovered = false;
      for (int r = 0; r < kMaxOpRetries; ++r) {
        ++m.stats.ops.retriedOps;
        co_await m.engine.delay(kRetryBackoffUs);
        if (m.net.nodeUp(self)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        ++m.stats.ops.failedOps;
        continue;
      }
    }
    if (capture != nullptr) [[unlikely]]
      capture->requests.push_back(
          {m.engine.now() - runStart, self, isRead, idx});
    if (isRead) {
      if (tr) tr->begin(obs::kCatTxn, self, "read", idx);
      (void)co_await rt.read(self, x);
      if (tr) tr->end(obs::kCatTxn, self);
    } else {
      // Writers serialize through the object's lock: concurrent
      // unsynchronized writes to one variable are outside the coherence
      // contract, and lock traffic is part of what a contended
      // write-heavy workload measures. The outer span is the whole
      // transaction issue→commit; lock / write / unlock nest inside it.
      if (tr) tr->begin(obs::kCatTxn, self, "write-txn", idx);
      if (tr) tr->begin(obs::kCatTxn, self, "lock");
      co_await rt.lock(self, x);
      if (tr) tr->end(obs::kCatTxn, self);
      if (tr) tr->begin(obs::kCatTxn, self, "write");
      co_await rt.write(self, x, makeRawValue(objectBytes));
      if (tr) tr->end(obs::kCatTxn, self);
      if (tr) tr->begin(obs::kCatTxn, self, "unlock");
      co_await rt.unlock(self, x);
      if (tr) tr->end(obs::kCatTxn, self);
      if (tr) tr->end(obs::kCatTxn, self);
    }
  }
  if (ph.barrier) co_await rt.barrier(self);
}

// ---------------------------------------------------------------------------
// Open-loop serving (docs/serving.md). Requests arrive on a pre-generated
// schedule whether or not the system keeps up; each node serves its own
// arrivals FIFO, and latency is measured from the SCHEDULED arrival
// instant, so queueing delay behind a slow service is part of every
// recorded number — the knee this exposes is what closed-loop driving
// structurally cannot see.
// ---------------------------------------------------------------------------

/// One node's share of a phase's offered load. For generated arrivals the
/// content (object, read/write) is drawn from the same per-(phase, node)
/// access stream as the closed loop; for trace replay the parallel
/// content arrays pin it.
struct NodeServePlan {
  std::vector<double> timesUs;        ///< strictly ascending arrival offsets
  std::vector<std::uint8_t> isRead;   ///< trace only (parallel to timesUs)
  std::vector<int> object;            ///< trace only (parallel to timesUs)
};

struct PhaseServePlan {
  bool active = false;
  bool fromTrace = false;
  double offeredPerSec = 0.0;  ///< nominal aggregate injection rate
  std::vector<NodeServePlan> nodes;
};

/// Shared per-phase measurement state. `inFlight` counts requests whose
/// scheduled instant has passed but which are not yet served or shed —
/// the machine-wide backlog, sampled at every arrival for the peak.
struct ServeState {
  serve::LatencyHistogram hist;
  std::uint64_t arrived = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t late = 0;
  int inFlight = 0;
  int maxInFlight = 0;
};

/// One processor's open-loop serving of one phase: wait for each
/// scheduled arrival (or pick it up immediately if already due), shed it
/// if the backlog bound says so, then perform the access exactly like the
/// closed-loop driver. RNG draws happen unconditionally before any
/// shed/liveness decision, so drops can never shift which objects later
/// requests touch — the same stream-stability rule nodePhase follows.
sim::Task<> nodeServePhase(Machine& m, Runtime& rt, NodeId self, const PhaseSpec& ph,
                           const ZipfSampler& zipf, const std::vector<VarId>& objects,
                           std::uint64_t objectBytes, support::SplitMix64 rng,
                           const NodeServePlan& plan, sim::Time phaseStart,
                           ServeState& st, sim::Time runStart, serve::Trace* capture) {
  const int n = static_cast<int>(objects.size());
  const int count = static_cast<int>(plan.timesUs.size());
  // Serve spans on this processor's track: pickup→completion, with the
  // queueing delay already accrued at pickup as the span argument; shed
  // and outage losses are drop instants.
  obs::Tracer* tr = m.net.tracer();
  if (tr != nullptr && !tr->on(obs::kCatServe)) tr = nullptr;
  // Trace plans carry their content in the parallel arrays; generated
  // plans draw it from the access stream.
  const bool fromTrace = !plan.object.empty();
  for (int k = 0; k < count; ++k) {
    int idx;
    bool isRead;
    if (fromTrace) {
      idx = plan.object[static_cast<std::size_t>(k)];
      isRead = plan.isRead[static_cast<std::size_t>(k)] != 0;
    } else {
      const int rank = zipf(rng);
      idx = (rank + ph.hotShift) % n;
      isRead = rng.uniform() < ph.readFraction;
    }
    const VarId x = objects[static_cast<std::size_t>(idx)];
    const sim::Time due = phaseStart + plan.timesUs[static_cast<std::size_t>(k)];
    if (due > m.engine.now()) co_await m.engine.delayUntil(due);
    if (ph.queueLimit > 0) {
      // Shed the oldest when the backlog bound is exceeded: more than
      // `queueLimit` newer requests of this node are already due behind
      // this one (their arrival instants have passed while it waited).
      const double nowRel = m.engine.now() - phaseStart;
      const auto begin = plan.timesUs.begin() + k + 1;
      const auto firstNotDue = std::upper_bound(begin, plan.timesUs.end(), nowRel);
      if (static_cast<int>(firstNotDue - begin) > ph.queueLimit) {
        ++st.dropped;
        --st.inFlight;
        if (tr) tr->instant(obs::kCatServe, self, "drop-shed", idx);
        continue;
      }
    }
    if (!m.net.nodeMember(self)) [[unlikely]] {
      // The processor has left the machine mid-phase (reconfig
      // remove-node): the rest of its offered load is lost — a failure
      // for availability accounting and a drop for serving accounting,
      // like an outage that never heals.
      ++m.stats.ops.failedOps;
      ++st.dropped;
      --st.inFlight;
      if (tr) tr->instant(obs::kCatServe, self, "drop-retired", idx);
      continue;
    }
    if (!m.net.nodeUp(self)) [[unlikely]] {
      bool recovered = false;
      for (int r = 0; r < kMaxOpRetries; ++r) {
        ++m.stats.ops.retriedOps;
        co_await m.engine.delay(kRetryBackoffUs);
        if (m.net.nodeUp(self)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        // Lost to the outage: a failure for availability accounting AND
        // a drop for serving accounting (the request was offered and
        // never served).
        ++m.stats.ops.failedOps;
        ++st.dropped;
        --st.inFlight;
        if (tr) tr->instant(obs::kCatServe, self, "drop-outage", idx);
        continue;
      }
    }
    if (capture != nullptr) [[unlikely]]
      capture->requests.push_back(
          {m.engine.now() - runStart, self, isRead, idx});
    if (tr)
      tr->begin(obs::kCatServe, self, "serve",
                static_cast<std::int64_t>(m.engine.now() - due));
    if (isRead) {
      (void)co_await rt.read(self, x);
    } else {
      co_await rt.lock(self, x);
      co_await rt.write(self, x, makeRawValue(objectBytes));
      co_await rt.unlock(self, x);
    }
    if (tr) tr->end(obs::kCatServe, self);
    const double latencyUs = m.engine.now() - due;
    st.hist.record(latencyUs);
    ++st.served;
    if (ph.deadlineUs > 0.0 && latencyUs > ph.deadlineUs) ++st.late;
    --st.inFlight;
  }
  if (ph.barrier) co_await rt.barrier(self);
}

/// Build the per-node offered-load plans for every open-loop phase of
/// `spec` on the evolving machine: each phase is sized by the node-id
/// space at ITS start (nodes added mid-phase begin serving next phase,
/// retired ids keep empty plans). Pure function of (spec, timeline):
/// generated schedules come from the dedicated arrival streams — the
/// per-node share is 1/members of the phase — trace schedules from the
/// file (node ids and object ids range-checked here, before anything is
/// scheduled).
std::vector<PhaseServePlan> buildServePlans(const WorkloadSpec& spec,
                                            const ShapeTimeline& tl) {
  std::vector<PhaseServePlan> plans(spec.phases.size());
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    const PhaseSpec& ph = spec.phases[p];
    if (!ph.openLoop()) continue;
    const int procs = tl.phaseProcs[p];
    const std::vector<std::uint8_t>& member = tl.phaseMember[p];
    PhaseServePlan& plan = plans[p];
    plan.active = true;
    plan.nodes.resize(static_cast<std::size_t>(procs));
    if (!ph.tracePath.empty()) {
      plan.fromTrace = true;
      const serve::Trace trace = serve::loadTraceFile(ph.tracePath);
      DIVA_CHECK_MSG(trace.numObjects <= spec.numObjects,
                     "workload '" << spec.name << "' phase '" << ph.name << "': trace '"
                                  << ph.tracePath << "' uses " << trace.numObjects
                                  << " objects but the workload only has "
                                  << spec.numObjects);
      double lastUs = 0.0;
      for (const serve::TraceRequest& req : trace.requests) {
        DIVA_CHECK_MSG(req.node < procs,
                       "workload '" << spec.name << "' phase '" << ph.name
                                    << "': trace node " << req.node
                                    << " out of range for a " << procs
                                    << "-processor machine");
        DIVA_CHECK_MSG(member[static_cast<std::size_t>(req.node)] != 0,
                       "workload '" << spec.name << "' phase '" << ph.name
                                    << "': trace node " << req.node
                                    << " has left the machine by this phase");
        NodeServePlan& np = plan.nodes[static_cast<std::size_t>(req.node)];
        np.timesUs.push_back(req.timeUs);
        np.isRead.push_back(req.isRead ? 1 : 0);
        np.object.push_back(req.object);
        lastUs = req.timeUs;
      }
      // Per-node strict ascent (the file only guarantees non-decreasing
      // globally): FIFO serving needs distinct instants per node.
      for (NodeServePlan& np : plan.nodes) {
        for (std::size_t i = 1; i < np.timesUs.size(); ++i) {
          if (np.timesUs[i] <= np.timesUs[i - 1])
            np.timesUs[i] = np.timesUs[i - 1] + 1e-9;
        }
      }
      plan.offeredPerSec =
          lastUs > 0.0
              ? static_cast<double>(trace.requests.size()) / lastUs * 1e6
              : 0.0;
    } else {
      const int members = static_cast<int>(
          std::count(member.begin(), member.end(), std::uint8_t{1}));
      for (int node = 0; node < procs; ++node) {
        if (!member[static_cast<std::size_t>(node)]) continue;  // retired id
        plan.nodes[static_cast<std::size_t>(node)].timesUs = serve::generateArrivals(
            ph.arrival, ph.rounds, members, spec.seed, static_cast<int>(p),
            static_cast<net::NodeId>(node));
      }
      // Burst offered load is the time-averaged rate over on+off windows.
      plan.offeredPerSec =
          ph.arrival.kind == serve::ArrivalSpec::Kind::Burst
              ? ph.arrival.ratePerSec * ph.arrival.burstOnUs /
                    (ph.arrival.burstOnUs + ph.arrival.burstOffUs)
              : ph.arrival.ratePerSec;
    }
  }
  return plans;
}

void fillServeMetrics(ServeMetrics& sv, const ServeState& st, double offeredPerSec,
                      double wallUs) {
  sv.active = true;
  sv.offeredPerSec = offeredPerSec;
  sv.achievedPerSec =
      wallUs > 0.0 ? static_cast<double>(st.served) / wallUs * 1e6 : 0.0;
  sv.p50Us = st.hist.p50();
  sv.p90Us = st.hist.p90();
  sv.p99Us = st.hist.p99();
  sv.p999Us = st.hist.p999();
  sv.maxUs = st.hist.max();
  sv.meanUs = st.hist.mean();
  sv.arrived = st.arrived;
  sv.served = st.served;
  sv.dropped = st.dropped;
  sv.late = st.late;
  sv.maxInFlight = st.maxInFlight;
}

}  // namespace

WorkloadSpec openLoopAt(const WorkloadSpec& spec, double ratePerSec) {
  WorkloadSpec open = spec;
  for (PhaseSpec& ph : open.phases) {
    ph.arrival.kind = serve::ArrivalSpec::Kind::Poisson;
    ph.arrival.ratePerSec = ratePerSec;
    ph.arrival.burstOnUs = ph.arrival.burstOffUs = 0.0;
    ph.thinkMeanUs = 0.0;  // pacing comes from the schedule now
    ph.tracePath.clear();
  }
  open.validate();
  return open;
}

WorkloadReport run(Machine& m, Runtime& rt, const WorkloadSpec& spec) {
  return run(m, rt, spec, RunOptions{});
}

WorkloadReport run(Machine& m, Runtime& rt, const WorkloadSpec& spec,
                   const RunOptions& opts) {
  spec.validate();
  DIVA_CHECK_MSG(m.engine.idle(), "workload::run requires a quiescent engine");
  const int procs = m.net.numNodes();
  const int numPhases = static_cast<int>(spec.phases.size());
  m.stats.ensurePhases(numPhases);

  // Replay the fault plans against the evolving shape (spec.procs is a
  // suggestion; add-node grows the id space mid-run): every event is
  // validated against the shape it will actually meet, before anything
  // is scheduled. `faulted` tracks transient faults only — structural
  // events are `tl.reconfigured`.
  bool faulted = false;
  for (const PhaseSpec& ph : spec.phases)
    for (const net::FaultEvent& ev : ph.faults)
      if (!net::isStructural(ev.kind)) faulted = true;
  const ShapeTimeline tl = simulateShape(spec, m);

  // Offered-load plans for open-loop phases (generated schedules + trace
  // files), built before anything runs so bad traces fail fast.
  const std::vector<PhaseServePlan> servePlans = buildServePlans(spec, tl);

  serve::Trace* capture = opts.captureTrace;
  if (capture != nullptr) {
    capture->name = spec.name;
    capture->numObjects = spec.numObjects;
    capture->objectBytes = spec.objectBytes;
    capture->requests.clear();
  }

  // Observability taps (obs/): attach the caller's tracer to the machine
  // for the duration of this run — the network and the strategies read
  // it back through Network::tracer() — and drive the caller's sampler
  // across the phase loop. Both null by default, costing nothing.
  obs::Tracer* const tracer = opts.tracer;
  obs::Tracer* const prevTracer = m.net.tracer();
  if (tracer != nullptr) m.net.setTracer(tracer);
  obs::Sampler* const sampler =
      (opts.sampler != nullptr && opts.sampler->enabled()) ? opts.sampler : nullptr;

  const support::SplitMix64 master(spec.seed);

  // Object population: owners drawn from the placement stream (setup is
  // free, as in the figure benches). Every object carries a lock so any
  // processor may write it. The member walk only moves on machines that
  // shrank before this run — on a fresh machine it is the identity, so
  // the classic placement is bit-identical.
  support::SplitMix64 placement = master.split(kPlacementStream);
  std::vector<VarId> objects;
  objects.reserve(static_cast<std::size_t>(spec.numObjects));
  for (int i = 0; i < spec.numObjects; ++i) {
    NodeId owner =
        static_cast<NodeId>(placement.below(static_cast<std::uint64_t>(procs)));
    while (!m.net.nodeMember(owner)) owner = static_cast<NodeId>((owner + 1) % procs);
    objects.push_back(rt.createVarFree(owner, makeRawValue(spec.objectBytes),
                                       /*withLock=*/true));
  }

  // The report covers exactly this run: measurement state starts clean.
  m.stats.reset(m.engine.now());
  m.stats.setPhase(0, m.engine.now());

  WorkloadReport report;
  report.workload = spec.name;
  report.strategy = rt.strategyName();
  report.topology = m.topo().name();
  report.procs = procs;

  const sim::Time startTime = m.engine.now();
  const std::uint64_t sentBefore = m.net.messagesSent();
  const std::uint64_t reroutedBefore = m.net.reroutedFlights();
  const std::uint64_t parkedBefore = m.net.parkedFlights();
  const int epochsBefore = m.net.reconfigEpoch();

  // Run-total open-loop accumulators (merged across open-loop phases).
  serve::LatencyHistogram totalHist;
  ServeState totalState;
  double openWallUs = 0.0;
  double offeredDotWall = 0.0;

  for (int p = 0; p < numPhases; ++p) {
    const PhaseSpec& ph = spec.phases[static_cast<std::size_t>(p)];
    if (p > 0) m.stats.setPhase(p, m.engine.now());
    const Stats::Counters opsBefore = m.stats.ops;
    const std::uint64_t phaseSentBefore = m.net.messagesSent();

    // Phase span on the machine track; phases never overlap, so plain
    // sync begin/end nest trivially.
    obs::Tracer* ptr = tracer;
    if (ptr != nullptr && !ptr->on(obs::kCatPhase)) ptr = nullptr;
    if (ptr != nullptr)
      ptr->beginDyn(obs::kCatPhase, obs::Tracer::kMachineTrack, "phase:" + ph.name);

    // Fault offsets are relative to the phase start; an empty plan
    // schedules nothing, so fault-free runs are bit-identical.
    net::scheduleFaultPlan(m.engine, m.net, ph.faults, m.engine.now());

    const PhaseServePlan& servePlan = servePlans[static_cast<std::size_t>(p)];
    ServeState serveState;
    const ZipfSampler zipf(spec.numObjects, ph.zipfS);
    if (servePlan.active) {
      // Arrival markers: one zero-cost event per request at its scheduled
      // instant, queued before the serving coroutines so that at equal
      // timestamps (FIFO among equals) an arrival is counted before it
      // can be picked up — `inFlight` is the machine-wide backlog.
      const sim::Time phaseStart = m.engine.now();
      const int pprocs = static_cast<int>(servePlan.nodes.size());
      obs::Tracer* atr = tracer;
      if (atr != nullptr && !atr->on(obs::kCatServe)) atr = nullptr;
      for (NodeId node = 0; node < pprocs; ++node) {
        if (!m.net.nodeMember(node)) continue;
        for (const double t : servePlan.nodes[static_cast<std::size_t>(node)].timesUs) {
          m.engine.scheduleAt(phaseStart + t, [&serveState, atr, node] {
            ++serveState.arrived;
            if (++serveState.inFlight > serveState.maxInFlight)
              serveState.maxInFlight = serveState.inFlight;
            if (atr != nullptr) atr->instant(obs::kCatServe, node, "arrive");
          });
        }
      }
      for (NodeId node = 0; node < pprocs; ++node) {
        if (!m.net.nodeMember(node)) continue;
        sim::spawn(nodeServePhase(m, rt, node, ph, zipf, objects, spec.objectBytes,
                                  accessStream(spec.seed, p, node),
                                  servePlan.nodes[static_cast<std::size_t>(node)],
                                  phaseStart, serveState, startTime, capture));
      }
    } else {
      // Member processors at the phase start drive this phase; nodes a
      // reconfig added mid-phase join at the next boundary.
      for (NodeId node = 0; node < m.net.numNodes(); ++node) {
        if (!m.net.nodeMember(node)) continue;
        sim::spawn(nodePhase(m, rt, node, ph, zipf, objects, spec.objectBytes,
                             accessStream(spec.seed, p, node), startTime, capture));
      }
    }
    // Open-loop phases expose the live backlog to the sampler; the gauges
    // borrow `serveState`, so they are truncated again before it dies.
    std::size_t samplerMark = 0;
    if (sampler != nullptr) {
      samplerMark = sampler->registry().mark();
      if (servePlan.active) {
        sampler->registry().gauge("serve/in_flight", [&serveState] {
          return static_cast<double>(serveState.inFlight);
        });
        sampler->registry().gauge("serve/arrived", [&serveState] {
          return static_cast<double>(serveState.arrived);
        });
        sampler->registry().gauge("serve/served", [&serveState] {
          return static_cast<double>(serveState.served);
        });
        sampler->registry().gauge("serve/dropped", [&serveState] {
          return static_cast<double>(serveState.dropped);
        });
      }
      sampler->phaseBegin(p);
    }
    // Drain to quiescence: the engine acts as the zero-cost outer clock,
    // so phase boundaries in the stats are exact instants (the in-model
    // barrier above is still part of the measured protocol traffic).
    m.run();
    if (sampler != nullptr) {
      sampler->phaseEnd();
      sampler->registry().truncate(samplerMark);
    }
    // Commit any structural epoch this phase delivered: sever retiring
    // links and rebuild the lock/barrier trees over the new shape. A
    // no-op on fixed-shape runs.
    rt.completeReconfig();
    if (ptr != nullptr) ptr->end(obs::kCatPhase, obs::Tracer::kMachineTrack);

    WorkloadReport::Phase pr;
    pr.name = ph.name;
    pr.wallUs = m.stats.wallUs(p);
    pr.injected = m.net.messagesSent() - phaseSentBefore;
    pr.linkMessages = m.stats.links.totalMessages(p);
    pr.linkBytes = m.stats.links.totalBytes(p);
    pr.congestionMessages = m.stats.links.congestionMessages(p);
    pr.congestionBytes = m.stats.links.congestionBytes(p);
    pr.reads = m.stats.ops.reads - opsBefore.reads;
    pr.readHits = m.stats.ops.readHits - opsBefore.readHits;
    pr.writes = m.stats.ops.writes - opsBefore.writes;
    pr.invalidations = m.stats.ops.invalidations - opsBefore.invalidations;
    pr.locks = m.stats.ops.locks - opsBefore.locks;
    pr.failedOps = m.stats.ops.failedOps - opsBefore.failedOps;
    pr.retriedOps = m.stats.ops.retriedOps - opsBefore.retriedOps;
    pr.recoveryMessages = m.stats.ops.recoveryMessages - opsBefore.recoveryMessages;
    pr.recoveryBytes = m.stats.ops.recoveryBytes - opsBefore.recoveryBytes;
    if (servePlan.active) {
      fillServeMetrics(pr.serve, serveState, servePlan.offeredPerSec, pr.wallUs);
      totalHist.merge(serveState.hist);
      totalState.arrived += serveState.arrived;
      totalState.served += serveState.served;
      totalState.dropped += serveState.dropped;
      totalState.late += serveState.late;
      totalState.maxInFlight = std::max(totalState.maxInFlight, serveState.maxInFlight);
      openWallUs += pr.wallUs;
      offeredDotWall += servePlan.offeredPerSec * pr.wallUs;
    }
    report.phases.push_back(std::move(pr));
  }

  report.completionUs = m.engine.now() - startTime;
  report.injected = m.net.messagesSent() - sentBefore;
  for (const WorkloadReport::Phase& pr : report.phases) {
    report.linkMessages += pr.linkMessages;
    report.linkBytes += pr.linkBytes;
  }
  // Overall congestion: max over links of the link's traffic summed over
  // this run's phases (not the sum of per-phase maxima — different links
  // may peak in different phases).
  report.congestionMessages = m.stats.links.congestionMessages();
  report.congestionBytes = m.stats.links.congestionBytes();

  report.faulted = faulted;
  report.servedOps = m.stats.ops.reads + m.stats.ops.writes;
  report.failedOps = m.stats.ops.failedOps;
  report.retriedOps = m.stats.ops.retriedOps;
  const std::uint64_t attempted = report.servedOps + report.failedOps;
  report.availability =
      attempted ? static_cast<double>(report.servedOps) / static_cast<double>(attempted)
                : 1.0;
  report.recoveryMessages = m.stats.ops.recoveryMessages;
  report.recoveryBytes = m.stats.ops.recoveryBytes;
  report.repairedVars = m.stats.ops.repairedVars;
  report.reroutedFlights = m.net.reroutedFlights() - reroutedBefore;
  report.parkedFlights = m.net.parkedFlights() - parkedBefore;
  report.reconfigured = tl.reconfigured;
  report.reconfigEpochs =
      static_cast<std::uint64_t>(m.net.reconfigEpoch() - epochsBefore);
  report.migratedVars = m.stats.ops.migratedVars;
  report.migrationMessages = m.stats.ops.migrationMessages;
  report.migrationBytes = m.stats.ops.migrationBytes;
  report.forwardedOps = m.stats.ops.forwardedOps;

  if (std::any_of(servePlans.begin(), servePlans.end(),
                  [](const PhaseServePlan& pl) { return pl.active; })) {
    totalState.hist = totalHist;
    fillServeMetrics(report.serve, totalState,
                     openWallUs > 0.0 ? offeredDotWall / openWallUs : 0.0, openWallUs);
  }

  if (capture != nullptr) {
    // Engine execution is time-ordered, but equal-instant issues from
    // different nodes land in handler order; pin the file to time order
    // (stable, so same-instant requests keep their execution order).
    std::stable_sort(capture->requests.begin(), capture->requests.end(),
                     [](const serve::TraceRequest& a, const serve::TraceRequest& b) {
                       return a.timeUs < b.timeUs;
                     });
  }

  // A faulted or reconfigured run must end with every object intact:
  // nothing lost, nothing dually owned, no repair or migration still
  // parked, every object managed by the CURRENT access tree
  // (docs/faults.md). Fault-free fixed-shape runs skip the sweep — it is
  // O(objects) and the healthy invariants are already pinned by the
  // strategy test suites.
  if (faulted || tl.reconfigured) rt.checkAllInvariants();
  if (tracer != nullptr) m.net.setTracer(prevTracer);
  return report;
}

WorkloadReport runOn(const net::TopologySpec& topo, const RuntimeConfig& config,
                     const WorkloadSpec& spec) {
  return runOn(topo, config, spec, RunOptions{});
}

WorkloadReport runOn(const net::TopologySpec& topo, const RuntimeConfig& config,
                     const WorkloadSpec& spec, const RunOptions& opts) {
  Machine m(topo);
  RuntimeConfig rc = config;
  rc.seed = spec.seed;
  rc.cacheCapacityBytes = spec.cacheBytes ? spec.cacheBytes : ~0ull;
  Runtime rt(m, rc);
  // The machine only exists inside this call, so observers handed in
  // unarmed are armed here against its engine.
  if (opts.tracer != nullptr && !opts.tracer->enabled())
    opts.tracer->enable(m.engine, opts.traceMask);
  if (opts.sampler != nullptr && !opts.sampler->enabled() && opts.sampleIntervalUs > 0.0)
    opts.sampler->configure(m.engine, opts.sampleIntervalUs);
  if (opts.sampler != nullptr && opts.sampler->enabled()) opts.sampler->bindMachine(m);
  return run(m, rt, spec, opts);
}

namespace {

// Column descriptors shared by formatReport (text layout) and
// registerReport (JSON keys): one source of truth, so adding a column
// changes both renderings together. `runCell` is null for columns the
// total row leaves blank.
struct PhaseCol {
  const char* header;  ///< text-table column header
  const char* key;     ///< registry key under phase/<i>/
  double (*num)(const WorkloadReport::Phase& p);      ///< registry value
  std::string (*cell)(const WorkloadReport::Phase& p);  ///< table cell
  std::string (*runCell)(const WorkloadReport& r);    ///< total-row cell
};

const PhaseCol kPhaseCols[] = {
    {"wall ms", "wall_us", [](const WorkloadReport::Phase& p) { return p.wallUs; },
     [](const WorkloadReport::Phase& p) { return support::fmt(p.wallUs / 1e3, 2); },
     [](const WorkloadReport& r) { return support::fmt(r.completionUs / 1e3, 2); }},
    {"injected", "injected",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.injected); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.injected); },
     [](const WorkloadReport& r) { return std::to_string(r.injected); }},
    {"link msgs", "link_messages",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.linkMessages); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.linkMessages); },
     [](const WorkloadReport& r) { return std::to_string(r.linkMessages); }},
    {"link KB", "link_bytes",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.linkBytes); },
     [](const WorkloadReport::Phase& p) { return kb(p.linkBytes); },
     [](const WorkloadReport& r) { return kb(r.linkBytes); }},
    {"cong msgs", "congestion_messages",
     [](const WorkloadReport::Phase& p) {
       return static_cast<double>(p.congestionMessages);
     },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.congestionMessages); },
     [](const WorkloadReport& r) { return std::to_string(r.congestionMessages); }},
    {"cong KB", "congestion_bytes",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.congestionBytes); },
     [](const WorkloadReport::Phase& p) { return kb(p.congestionBytes); },
     [](const WorkloadReport& r) { return kb(r.congestionBytes); }},
    {"reads", "reads",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.reads); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.reads); }, nullptr},
    {"hits", "read_hits",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.readHits); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.readHits); }, nullptr},
    {"writes", "writes",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.writes); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.writes); }, nullptr},
    {"invals", "invalidations",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.invalidations); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.invalidations); },
     nullptr},
    {"locks", "locks",
     [](const WorkloadReport::Phase& p) { return static_cast<double>(p.locks); },
     [](const WorkloadReport::Phase& p) { return std::to_string(p.locks); }, nullptr},
};

struct ServeCol {
  const char* header;  ///< text-table column header
  const char* key;     ///< registry key under .../serve/
  double (*num)(const ServeMetrics& sv);
  std::string (*cell)(const ServeMetrics& sv);
};

const ServeCol kServeCols[] = {
    {"offered/s", "offered_per_sec", [](const ServeMetrics& sv) { return sv.offeredPerSec; },
     [](const ServeMetrics& sv) { return support::fmt(sv.offeredPerSec, 0); }},
    {"achieved/s", "achieved_per_sec",
     [](const ServeMetrics& sv) { return sv.achievedPerSec; },
     [](const ServeMetrics& sv) { return support::fmt(sv.achievedPerSec, 0); }},
    {"p50 µs", "p50_us", [](const ServeMetrics& sv) { return sv.p50Us; },
     [](const ServeMetrics& sv) { return support::fmt(sv.p50Us, 2); }},
    {"p90 µs", "p90_us", [](const ServeMetrics& sv) { return sv.p90Us; },
     [](const ServeMetrics& sv) { return support::fmt(sv.p90Us, 2); }},
    {"p99 µs", "p99_us", [](const ServeMetrics& sv) { return sv.p99Us; },
     [](const ServeMetrics& sv) { return support::fmt(sv.p99Us, 2); }},
    {"p999 µs", "p999_us", [](const ServeMetrics& sv) { return sv.p999Us; },
     [](const ServeMetrics& sv) { return support::fmt(sv.p999Us, 2); }},
    {"max µs", "max_us", [](const ServeMetrics& sv) { return sv.maxUs; },
     [](const ServeMetrics& sv) { return support::fmt(sv.maxUs, 2); }},
    {"served", "served", [](const ServeMetrics& sv) { return static_cast<double>(sv.served); },
     [](const ServeMetrics& sv) { return std::to_string(sv.served); }},
    {"dropped", "dropped",
     [](const ServeMetrics& sv) { return static_cast<double>(sv.dropped); },
     [](const ServeMetrics& sv) { return std::to_string(sv.dropped); }},
    {"late", "late", [](const ServeMetrics& sv) { return static_cast<double>(sv.late); },
     [](const ServeMetrics& sv) { return std::to_string(sv.late); }},
    {"peak infl", "max_in_flight",
     [](const ServeMetrics& sv) { return static_cast<double>(sv.maxInFlight); },
     [](const ServeMetrics& sv) { return std::to_string(sv.maxInFlight); }},
};

}  // namespace

std::string formatReport(const WorkloadReport& r) {
  std::ostringstream out;
  out << "workload '" << r.workload << "' · strategy " << r.strategy << " · "
      << r.topology << " (" << r.procs << " procs)\n";
  std::vector<std::string> headers{"phase"};
  for (const PhaseCol& c : kPhaseCols) headers.emplace_back(c.header);
  support::Table t(headers);
  for (const WorkloadReport::Phase& p : r.phases) {
    std::vector<std::string> row{p.name};
    for (const PhaseCol& c : kPhaseCols) row.push_back(c.cell(p));
    t.addRow(row);
  }
  std::vector<std::string> total{"total"};
  for (const PhaseCol& c : kPhaseCols)
    total.push_back(c.runCell != nullptr ? c.runCell(r) : std::string());
  t.addRow(total);
  t.print(out);
  // SLO table only when some phase ran open loop — closed-loop reports
  // render byte-identically to earlier versions.
  if (r.serve.active) {
    out << "open-loop serving · latency from scheduled arrival (docs/serving.md)\n";
    std::vector<std::string> sheaders{"phase"};
    for (const ServeCol& c : kServeCols) sheaders.emplace_back(c.header);
    support::Table st(sheaders);
    auto serveRow = [&st](const std::string& name, const ServeMetrics& sv) {
      std::vector<std::string> row{name};
      for (const ServeCol& c : kServeCols) row.push_back(c.cell(sv));
      st.addRow(row);
    };
    for (const WorkloadReport::Phase& p : r.phases) {
      if (p.serve.active) serveRow(p.name, p.serve);
    }
    serveRow("total", r.serve);
    st.print(out);
  }
  // Availability/recovery section only on faulted or reconfigured runs —
  // a fault-free fixed-shape report renders byte-identically to earlier
  // versions.
  if (r.faulted || r.reconfigured) {
    out << "availability " << support::fmt(r.availability, 4) << " · served "
        << r.servedOps << " · failed " << r.failedOps << " · retried " << r.retriedOps
        << "\n";
    out << "recovery " << r.recoveryMessages << " msgs · " << kb(r.recoveryBytes)
        << " KB · " << r.repairedVars << " vars repaired · " << r.reroutedFlights
        << " flights rerouted · " << r.parkedFlights << " parked\n";
  }
  if (r.reconfigured) {
    out << "reconfig " << r.reconfigEpochs << " epochs · " << r.migratedVars
        << " vars migrated · " << r.migrationMessages << " migration msgs · "
        << kb(r.migrationBytes) << " KB moved · " << r.forwardedOps
        << " ops forwarded\n";
  }
  return out.str();
}

std::string formatComparison(const WorkloadReport& a, const WorkloadReport& b) {
  auto ratio = [](double x, double y) {
    return y > 0.0 ? support::fmt(x / y, 2) : std::string("n/a");
  };
  std::ostringstream out;
  out << "strategy A/B on " << a.topology << " · workload '" << a.workload << "'\n";
  support::Table t({"metric", a.strategy, b.strategy,
                    "ratio (" + a.strategy + " / " + b.strategy + ")"});
  t.addRow({"completion ms", support::fmt(a.completionUs / 1e3, 2),
            support::fmt(b.completionUs / 1e3, 2),
            ratio(a.completionUs, b.completionUs)});
  t.addRow({"injected messages", std::to_string(a.injected), std::to_string(b.injected),
            ratio(static_cast<double>(a.injected), static_cast<double>(b.injected))});
  t.addRow({"link crossings", std::to_string(a.linkMessages),
            std::to_string(b.linkMessages),
            ratio(static_cast<double>(a.linkMessages),
                  static_cast<double>(b.linkMessages))});
  t.addRow({"link traffic KB", kb(a.linkBytes), kb(b.linkBytes),
            ratio(static_cast<double>(a.linkBytes), static_cast<double>(b.linkBytes))});
  t.addRow({"max-link congestion msgs", std::to_string(a.congestionMessages),
            std::to_string(b.congestionMessages),
            ratio(static_cast<double>(a.congestionMessages),
                  static_cast<double>(b.congestionMessages))});
  t.addRow({"max-link congestion KB", kb(a.congestionBytes), kb(b.congestionBytes),
            ratio(static_cast<double>(a.congestionBytes),
                  static_cast<double>(b.congestionBytes))});
  if (a.serve.active || b.serve.active) {
    t.addRow({"achieved req/s", support::fmt(a.serve.achievedPerSec, 0),
              support::fmt(b.serve.achievedPerSec, 0),
              ratio(a.serve.achievedPerSec, b.serve.achievedPerSec)});
    t.addRow({"p50 latency µs", support::fmt(a.serve.p50Us, 2),
              support::fmt(b.serve.p50Us, 2), ratio(a.serve.p50Us, b.serve.p50Us)});
    t.addRow({"p99 latency µs", support::fmt(a.serve.p99Us, 2),
              support::fmt(b.serve.p99Us, 2), ratio(a.serve.p99Us, b.serve.p99Us)});
    t.addRow({"p999 latency µs", support::fmt(a.serve.p999Us, 2),
              support::fmt(b.serve.p999Us, 2), ratio(a.serve.p999Us, b.serve.p999Us)});
    t.addRow({"dropped requests", std::to_string(a.serve.dropped),
              std::to_string(b.serve.dropped),
              ratio(static_cast<double>(a.serve.dropped),
                    static_cast<double>(b.serve.dropped))});
    t.addRow({"late requests", std::to_string(a.serve.late),
              std::to_string(b.serve.late),
              ratio(static_cast<double>(a.serve.late),
                    static_cast<double>(b.serve.late))});
  }
  if (a.faulted || b.faulted || a.reconfigured || b.reconfigured) {
    t.addRow({"availability", support::fmt(a.availability, 4),
              support::fmt(b.availability, 4),
              ratio(a.availability, b.availability)});
    t.addRow({"failed ops", std::to_string(a.failedOps), std::to_string(b.failedOps),
              ratio(static_cast<double>(a.failedOps), static_cast<double>(b.failedOps))});
    t.addRow({"recovery messages", std::to_string(a.recoveryMessages),
              std::to_string(b.recoveryMessages),
              ratio(static_cast<double>(a.recoveryMessages),
                    static_cast<double>(b.recoveryMessages))});
    t.addRow({"recovery KB", kb(a.recoveryBytes), kb(b.recoveryBytes),
              ratio(static_cast<double>(a.recoveryBytes),
                    static_cast<double>(b.recoveryBytes))});
    t.addRow({"vars repaired", std::to_string(a.repairedVars),
              std::to_string(b.repairedVars),
              ratio(static_cast<double>(a.repairedVars),
                    static_cast<double>(b.repairedVars))});
  }
  if (a.reconfigured || b.reconfigured) {
    t.addRow({"vars migrated", std::to_string(a.migratedVars),
              std::to_string(b.migratedVars),
              ratio(static_cast<double>(a.migratedVars),
                    static_cast<double>(b.migratedVars))});
    t.addRow({"migration messages", std::to_string(a.migrationMessages),
              std::to_string(b.migrationMessages),
              ratio(static_cast<double>(a.migrationMessages),
                    static_cast<double>(b.migrationMessages))});
    t.addRow({"migration KB", kb(a.migrationBytes), kb(b.migrationBytes),
              ratio(static_cast<double>(a.migrationBytes),
                    static_cast<double>(b.migrationBytes))});
    t.addRow({"forwarded ops", std::to_string(a.forwardedOps),
              std::to_string(b.forwardedOps),
              ratio(static_cast<double>(a.forwardedOps),
                    static_cast<double>(b.forwardedOps))});
  }
  t.print(out);
  return out.str();
}

void registerReport(obs::MetricsRegistry& reg, const WorkloadReport& r) {
  reg.text("run/workload", r.workload);
  reg.text("run/strategy", r.strategy);
  reg.text("run/topology", r.topology);
  reg.value("run/procs", static_cast<double>(r.procs));
  reg.value("run/completion_us", r.completionUs);
  reg.value("run/injected", static_cast<double>(r.injected));
  reg.value("run/link_messages", static_cast<double>(r.linkMessages));
  reg.value("run/link_bytes", static_cast<double>(r.linkBytes));
  reg.value("run/congestion_messages", static_cast<double>(r.congestionMessages));
  reg.value("run/congestion_bytes", static_cast<double>(r.congestionBytes));
  reg.value("run/faulted", r.faulted ? 1.0 : 0.0);
  reg.value("run/served_ops", static_cast<double>(r.servedOps));
  reg.value("run/failed_ops", static_cast<double>(r.failedOps));
  reg.value("run/retried_ops", static_cast<double>(r.retriedOps));
  reg.value("run/availability", r.availability);
  reg.value("run/recovery_messages", static_cast<double>(r.recoveryMessages));
  reg.value("run/recovery_bytes", static_cast<double>(r.recoveryBytes));
  reg.value("run/repaired_vars", static_cast<double>(r.repairedVars));
  reg.value("run/rerouted_flights", static_cast<double>(r.reroutedFlights));
  reg.value("run/parked_flights", static_cast<double>(r.parkedFlights));
  reg.value("run/reconfigured", r.reconfigured ? 1.0 : 0.0);
  reg.value("run/reconfig_epochs", static_cast<double>(r.reconfigEpochs));
  reg.value("run/migrated_vars", static_cast<double>(r.migratedVars));
  reg.value("run/migration_messages", static_cast<double>(r.migrationMessages));
  reg.value("run/migration_bytes", static_cast<double>(r.migrationBytes));
  reg.value("run/forwarded_ops", static_cast<double>(r.forwardedOps));
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const WorkloadReport::Phase& p = r.phases[i];
    const std::string base = "phase/" + std::to_string(i) + "/";
    reg.text(base + "name", p.name);
    for (const PhaseCol& c : kPhaseCols) reg.value(base + c.key, c.num(p));
    reg.value(base + "failed_ops", static_cast<double>(p.failedOps));
    reg.value(base + "retried_ops", static_cast<double>(p.retriedOps));
    reg.value(base + "recovery_messages", static_cast<double>(p.recoveryMessages));
    reg.value(base + "recovery_bytes", static_cast<double>(p.recoveryBytes));
    if (p.serve.active) {
      for (const ServeCol& c : kServeCols)
        reg.value(base + "serve/" + c.key, c.num(p.serve));
      reg.value(base + "serve/arrived", static_cast<double>(p.serve.arrived));
      reg.value(base + "serve/mean_us", p.serve.meanUs);
    }
  }
  if (r.serve.active) {
    for (const ServeCol& c : kServeCols)
      reg.value(std::string("serve/") + c.key, c.num(r.serve));
    reg.value("serve/arrived", static_cast<double>(r.serve.arrived));
    reg.value("serve/mean_us", r.serve.meanUs);
  }
}

std::string reportJson(const WorkloadReport& r) {
  obs::MetricsRegistry reg;
  registerReport(reg, r);
  return reg.toJson();
}

}  // namespace diva::workload
