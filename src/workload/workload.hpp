#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/fault.hpp"
#include "serve/arrival.hpp"
#include "support/rng.hpp"

namespace diva::serve {
struct Trace;
}

namespace diva::obs {
class Tracer;
class Sampler;
class MetricsRegistry;
}

namespace diva::workload {

/// One temporal phase of a synthetic workload: every processor performs
/// `rounds` accesses against the shared object population, each access a
/// read with probability `readFraction` (writes serialize through the
/// object's lock — concurrent unsynchronized writes are illegal), the
/// accessed object drawn by Zipf(zipfS) rank skew with the popularity
/// ranking rotated by `hotShift` objects. Rotating the ranking between
/// phases models hotspot drift; changing readFraction models
/// read-mostly → write-heavy shifts. Think time between accesses is
/// drawn uniformly from [0, 2·thinkMeanUs) — arithmetic-only sampling,
/// so committed scenarios stay bit-deterministic across libm versions.
struct PhaseSpec {
  std::string name = "phase";
  int rounds = 1;             ///< accesses per processor
  double readFraction = 1.0;  ///< P(access is a read); rest are locked writes
  double zipfS = 0.0;         ///< popularity skew exponent (0 = uniform)
  int hotShift = 0;           ///< rotation of the popularity ranking
  double thinkMeanUs = 0.0;   ///< mean think time between accesses
  bool barrier = true;        ///< processors synchronize at phase end
  /// Faults AND structural `reconfig` events injected during this phase,
  /// offsets relative to phase start (docs/faults.md). A crashed
  /// processor stops issuing operations (retry, then fail — availability
  /// accounting) until it recovers. Structural events reshape the
  /// machine permanently: nodes added mid-phase start issuing at the
  /// next phase boundary, retired nodes stop at their next access (their
  /// remaining offered load is lost), and every event is validated
  /// before the run starts against the shape it will actually meet.
  /// Phases with faults leave all RNG draws untouched, so the fault-free
  /// access stream is bit-identical.
  net::FaultPlan faults;
  /// Open-loop serving (docs/serving.md). When the arrival kind is not
  /// None the phase runs open loop: each processor issues `rounds`
  /// requests at pre-generated arrival instants regardless of service
  /// progress, and latency is measured from the SCHEDULED arrival —
  /// queueing delay counts. Kind::None (the default) keeps the classic
  /// closed loop; closed-loop runs are byte-identical to before.
  serve::ArrivalSpec arrival;
  /// SLO deadline in µs: served requests whose latency exceeds it count
  /// as `late` in the report (0 = no deadline).
  double deadlineUs = 0.0;
  /// Per-processor backlog bound: a request is shed (counted `dropped`)
  /// when more than this many newer requests are already due behind it
  /// (0 = unbounded queue).
  int queueLimit = 0;
  /// Trace-replay phase (docs/serving.md): arrival times, issuing nodes
  /// and accesses come from this request-trace file instead of the
  /// generator — `rounds`, `zipfS`, `hotShift`, `readFraction`,
  /// `thinkMeanUs` and `arrival` must stay at their defaults.
  std::string tracePath;

  /// True iff this phase runs open loop (generated arrivals or a trace).
  bool openLoop() const { return arrival.open() || !tracePath.empty(); }

  bool operator==(const PhaseSpec&) const = default;
};

/// A complete declarative synthetic workload: an object population plus a
/// sequence of phases. One spec runs unchanged under every strategy and
/// on every topology — exactly what a strategy A/B needs. All randomness
/// derives from `seed` through per-(phase, processor) split streams
/// (support::SplitMix64::split), so the access sequence of a phase is a
/// pure function of (seed, phase index, processor) — independent of
/// machine shape, strategy, and of how many rounds earlier phases ran.
struct WorkloadSpec {
  std::string name = "workload";
  int numObjects = 1;             ///< shared-variable population
  std::uint64_t objectBytes = 64; ///< simulated payload size of each object
  std::uint64_t cacheBytes = 0;   ///< per-processor module bound; 0 = unlimited
  std::uint64_t seed = 1;
  int procs = 0;                  ///< suggested machine size (scenario files); 0 = caller's choice
  /// Suggested network shape by name (net/topology_env.hpp vocabulary,
  /// e.g. "mesh2d", "hier-random-regular"); empty = caller's choice.
  /// Like `procs` it is advisory: scenario_runner honors it unless
  /// DIVA_TOPOLOGY overrides, and run()/runOn() ignore it — the machine
  /// passed in wins.
  std::string topology;
  std::vector<PhaseSpec> phases;

  /// Fail fast on nonsensical parameters; throws CheckError.
  void validate() const;

  bool operator==(const WorkloadSpec&) const = default;
};

/// The access stream of (seed, phase, processor): the RNG that drives
/// every draw (think time, object rank, read-vs-write) of that processor
/// in that phase. A pure function of its arguments — deliberately NOT of
/// earlier phases' contents — so editing one phase of a scenario never
/// perturbs another phase's access sequence (phase-boundary determinism;
/// pinned by tests). Used by the driver; exposed for tests and for
/// external tooling that wants to predict a scenario's accesses.
support::SplitMix64 accessStream(std::uint64_t seed, int phase, net::NodeId node);

/// Samples ranks 0..n-1 with P(r) ∝ 1/(r+1)^s by inverse-CDF lookup;
/// s = 0 is uniform. Integral exponents are computed by exact repeated
/// multiplication (bit-stable across libm versions — committed golden
/// scenarios use those); fractional exponents go through std::pow
/// (deterministic per build, last-ulp differences possible across libms).
class ZipfSampler {
 public:
  /// Largest exponent WorkloadSpec::validate accepts — every integral
  /// exponent up to it uses the exact path (see the constructor).
  static constexpr double kMaxExponent = 64.0;

  ZipfSampler(int n, double s);
  int operator()(support::SplitMix64& rng) const;
  int numRanks() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

/// Open-loop serving measurements of one phase (or of the whole run —
/// the totals merge the per-phase latency histograms, docs/serving.md).
/// Latencies are measured from the scheduled arrival instant, so
/// queueing delay is part of every percentile. `offeredPerSec` is the
/// nominal aggregate injection rate (time-averaged for bursty arrivals,
/// empirical for traces); `achievedPerSec` is served / phase wall time —
/// the gap between the two opens at the saturation knee.
struct ServeMetrics {
  bool active = false;  ///< this phase (or some phase of the run) ran open loop
  double offeredPerSec = 0.0;
  double achievedPerSec = 0.0;
  double p50Us = 0.0;
  double p90Us = 0.0;
  double p99Us = 0.0;
  double p999Us = 0.0;
  double maxUs = 0.0;
  double meanUs = 0.0;
  std::uint64_t arrived = 0;  ///< scheduled requests that reached their instant
  std::uint64_t served = 0;   ///< completed (arrived = served + dropped)
  std::uint64_t dropped = 0;  ///< shed at the queue bound or lost to a down node
  std::uint64_t late = 0;     ///< served, but past the phase's deadline
  int maxInFlight = 0;        ///< peak concurrent requests across the machine

  bool operator==(const ServeMetrics&) const = default;
};

/// Measurements of one workload run, per phase and in total. Congestion
/// is the paper's metric: the maximum over directed links of that link's
/// traffic. `injected` counts messages entering the network (including
/// node-local ones); `linkMessages`/`linkBytes` count per-link crossings,
/// so one multi-hop message contributes once per hop.
struct WorkloadReport {
  struct Phase {
    std::string name;
    double wallUs = 0;
    std::uint64_t injected = 0;
    std::uint64_t linkMessages = 0;
    std::uint64_t linkBytes = 0;
    std::uint64_t congestionMessages = 0;
    std::uint64_t congestionBytes = 0;
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;
    std::uint64_t writes = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t locks = 0;
    // Fault/repair accounting (phases without faults report zeros).
    std::uint64_t failedOps = 0;
    std::uint64_t retriedOps = 0;
    std::uint64_t recoveryMessages = 0;
    std::uint64_t recoveryBytes = 0;
    /// Open-loop serving measurements; `serve.active` is false (and the
    /// struct all zeros) for closed-loop phases.
    ServeMetrics serve;
  };

  std::string workload;
  std::string strategy;
  std::string topology;
  int procs = 0;
  std::vector<Phase> phases;
  double completionUs = 0;
  std::uint64_t injected = 0;
  std::uint64_t linkMessages = 0;
  std::uint64_t linkBytes = 0;
  std::uint64_t congestionMessages = 0;  ///< max over links, all phases summed
  std::uint64_t congestionBytes = 0;
  /// Availability & recovery (docs/faults.md). `faulted` is true iff the
  /// spec injected faults — reports of fault-free runs render exactly as
  /// before. availability = served / (served + failed), 1.0 when no op
  /// ever failed.
  bool faulted = false;
  std::uint64_t servedOps = 0;
  std::uint64_t failedOps = 0;
  std::uint64_t retriedOps = 0;
  double availability = 1.0;
  std::uint64_t recoveryMessages = 0;
  std::uint64_t recoveryBytes = 0;
  std::uint64_t repairedVars = 0;
  std::uint64_t reroutedFlights = 0;
  std::uint64_t parkedFlights = 0;
  /// Structural reconfiguration (docs/faults.md "Reconfiguration").
  /// `reconfigured` is true iff the spec scripts `reconfig` events —
  /// fixed-shape reports render exactly as before.
  bool reconfigured = false;
  std::uint64_t reconfigEpochs = 0;     ///< structural epochs delivered
  std::uint64_t migratedVars = 0;       ///< variables re-homed across epochs
  std::uint64_t migrationMessages = 0;  ///< handoff protocol messages
  std::uint64_t migrationBytes = 0;     ///< payload bytes moved by migration
  std::uint64_t forwardedOps = 0;       ///< ops forwarded during handoff windows
  /// Run-total open-loop metrics: per-phase latency histograms merged
  /// (element-wise bucket addition), counters summed, offered/achieved
  /// time-weighted over the open-loop phases. All zeros when every phase
  /// ran closed loop.
  ServeMetrics serve;
};

/// Optional run()-time hooks.
struct RunOptions {
  /// When non-null, every access the drivers issue is appended as a
  /// request-trace record (serve/trace.hpp format: times relative to the
  /// run start, objects as indices into the spec's population) — the
  /// scenario_runner --capture-trace sink. Header fields are filled from
  /// the spec; requests come out time-sorted, so the trace replays as a
  /// single trace phase.
  serve::Trace* captureTrace = nullptr;
  /// When non-null (and enabled), the run records protocol spans and
  /// instants into this tracer (obs/tracer.hpp): transaction and serve
  /// spans on per-processor tracks, phase extents on the machine track,
  /// plus the network- and strategy-level migration/repair/reconfig/
  /// fault events. Attached to the machine via Network::setTracer for
  /// the duration of the run. Null (the default) costs nothing and the
  /// run is bit-identical — pinned by the golden-hash tests.
  obs::Tracer* tracer = nullptr;
  /// Category mask runOn() arms a not-yet-enabled tracer with (the
  /// machine — and its engine — only exists inside runOn). Callers using
  /// run() on their own machine enable the tracer themselves; an already
  /// enabled tracer is used as-is and this mask is ignored.
  std::uint32_t traceMask = 0xffu;  // obs::kCatAll
  /// When non-null (and configured), the run drives this periodic
  /// time-series sampler (obs/sampler.hpp) across every phase: boundary
  /// samples at phase edges plus interval ticks scheduled as ordinary
  /// engine events. The caller binds the machine (runOn does it for
  /// you); open-loop phases additionally register queue-occupancy
  /// gauges for their duration. Sampling ON can extend each phase's
  /// measured wall time by less than one interval (the final pending
  /// tick); OFF is bit-identical.
  obs::Sampler* sampler = nullptr;
  /// Sample interval runOn() configures a not-yet-armed sampler with,
  /// in simulated µs; <= 0 leaves an unconfigured sampler inert. Like
  /// traceMask, only consulted by runOn().
  double sampleIntervalUs = 0.0;
};

/// Run `spec` on an existing machine/runtime. Creates the object
/// population (free setup), then drives every member processor through
/// the phases; the engine drains between phases, so per-phase metrics
/// have exact boundaries and pending reconfiguration epochs commit at
/// phase boundaries (Runtime::completeReconfig). The runtime's own
/// configuration (strategy, cache bound, seed) is taken as-is —
/// `spec.cacheBytes` only applies through `runOn`. Requires a quiescent
/// engine; leaves it quiescent.
WorkloadReport run(Machine& m, Runtime& rt, const WorkloadSpec& spec);
WorkloadReport run(Machine& m, Runtime& rt, const WorkloadSpec& spec,
                   const RunOptions& opts);

/// Build a machine of shape `topo` and a runtime from `config` (with the
/// spec's seed and cache bound applied), run `spec`, and return the
/// report. The one-call form the A/B harness and tests use.
WorkloadReport runOn(const net::TopologySpec& topo, const RuntimeConfig& config,
                     const WorkloadSpec& spec);
WorkloadReport runOn(const net::TopologySpec& topo, const RuntimeConfig& config,
                     const WorkloadSpec& spec, const RunOptions& opts);

/// Open-loop variant of `spec` for saturation sweeps: every phase's
/// arrival process is replaced by Poisson at aggregate `ratePerSec`
/// (think time cleared — the schedule is the pacing; trace phases become
/// generated), content generation untouched. Each rung of the sweep
/// ladder is one such spec; the returned spec is validated.
WorkloadSpec openLoopAt(const WorkloadSpec& spec, double ratePerSec);

/// Deterministic text rendering of a report (fixed-precision numbers):
/// same seed → byte-identical output.
std::string formatReport(const WorkloadReport& r);

/// Register every field of `r` into a metrics registry under "run/...",
/// "phase/<i>/..." and "serve/..." paths. Driven by the same descriptor
/// tables that lay out formatReport's columns, so the text report and
/// the JSON report are one source of truth (obs/metrics.hpp).
void registerReport(obs::MetricsRegistry& reg, const WorkloadReport& r);

/// The report as nested JSON — registerReport on a fresh registry,
/// rendered by MetricsRegistry::writeJson. Deterministic.
std::string reportJson(const WorkloadReport& r);

/// Strategy A/B table: per-metric columns for `a` and `b` plus the a/b
/// ratio — the access-tree vs fixed-home comparison of the paper, on
/// synthetic traffic. The two reports must come from the same spec.
std::string formatComparison(const WorkloadReport& a, const WorkloadReport& b);

}  // namespace diva::workload
