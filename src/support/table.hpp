#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace diva::support {

/// Fixed-precision number formatting for bench output.
inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline std::string fmtPercent(double ratio, int precision = 0) {
  return fmt(ratio * 100.0, precision) + "%";
}

/// Minimal ASCII table printer used by the figure-reproduction benches so
/// every binary emits the paper's rows in a uniform, diffable format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
      os << '+';
      for (std::size_t c = 0; c < width.size(); ++c)
        os << std::string(width[c] + 2, '-') << '+';
      os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
      }
      os << '\n';
    };
    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace diva::support
