#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace diva::support {

/// Error thrown when an internal invariant of the library is violated.
/// Unlike assert(), these checks stay enabled in release builds: the
/// simulator is a measurement instrument and silently corrupted state
/// would invalidate every number it produces.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace diva::support

/// DIVA_CHECK(cond) / DIVA_CHECK_MSG(cond, "context") — always-on invariant
/// checks. Use at protocol decision points; never on per-event hot paths.
#define DIVA_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) ::diva::support::checkFailed(#cond, __FILE__, __LINE__, \
                                              std::string{});            \
  } while (0)

#define DIVA_CHECK_MSG(cond, msg)                                        \
  do {                                                                   \
    if (!(cond)) ::diva::support::checkFailed(#cond, __FILE__, __LINE__, \
                                              (std::ostringstream{} << msg).str()); \
  } while (0)
