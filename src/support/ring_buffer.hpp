#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace diva::support {

/// FIFO queue over a power-of-two circular buffer. Unlike `std::deque`,
/// which allocates and frees block nodes as the front and back indices
/// walk forward, a drained-and-refilled RingBuffer reuses the same
/// storage forever — which makes mailbox traffic allocation-free in
/// steady state. Grows geometrically when full; never shrinks.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() noexcept = default;

  RingBuffer(RingBuffer&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)),
        cap_(std::exchange(other.cap_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      destroyAll();
      buf_ = std::exchange(other.buf_, nullptr);
      cap_ = std::exchange(other.cap_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  ~RingBuffer() { destroyAll(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    const std::size_t slot = (head_ + size_) & (cap_ - 1);
    T* p = ::new (static_cast<void*>(buf_ + slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_front() {
    buf_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// Move the front element out and pop it.
  T take_front() {
    T v = std::move(front());
    pop_front();
    return v;
  }

 private:
  void grow() {
    const std::size_t cap = cap_ == 0 ? 8 : cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      T& src = buf_[(head_ + i) & (cap_ - 1)];
      ::new (static_cast<void*>(fresh + i)) T(std::move(src));
      src.~T();
    }
    if (buf_ != nullptr) ::operator delete(buf_, std::align_val_t{alignof(T)});
    buf_ = fresh;
    cap_ = cap;
    head_ = 0;
  }

  void destroyAll() noexcept {
    for (std::size_t i = 0; i < size_; ++i) buf_[(head_ + i) & (cap_ - 1)].~T();
    if (buf_ != nullptr) ::operator delete(buf_, std::align_val_t{alignof(T)});
    buf_ = nullptr;
    cap_ = head_ = size_ = 0;
  }

  T* buf_ = nullptr;
  std::size_t cap_ = 0;   // always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace diva::support
