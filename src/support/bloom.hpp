#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace diva::support {

/// Counting Bloom filter over 64-bit keys: a fixed-size probabilistic set
/// supporting add/remove/mayContain with one-sided error. `mayContain`
/// never returns false for a present key (no false negatives — the
/// property protocol hints rely on for correctness); it may return true
/// for an absent key with a rate bounded by the classic (1-e^(-kn/m))^k
/// estimate (property-tested in tests/support_test.cpp).
///
/// Counters are 8-bit and *sticky at saturation*: a counter that reaches
/// 255 is never decremented again. Saturation therefore degrades only the
/// false-positive rate, never the no-false-negative guarantee — the same
/// trade the dariadb storage bloom makes, plus removal support.
class CountingBloom {
 public:
  /// `cells` is rounded up to at least 8; `hashes` ∈ [1, 8].
  explicit CountingBloom(std::size_t cells = 64, int hashes = 3)
      : counters_(cells < 8 ? 8 : cells, 0), hashes_(hashes) {
    DIVA_CHECK_MSG(hashes >= 1 && hashes <= 8,
                   "CountingBloom: hash count must be in [1, 8] (got " << hashes << ")");
  }

  std::size_t numCells() const { return counters_.size(); }
  int numHashes() const { return hashes_; }
  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void add(std::uint64_t key) {
    forEachCell(key, [&](std::size_t i) {
      if (counters_[i] != kSaturated) ++counters_[i];
    });
    ++size_;
  }

  /// Remove one prior `add` of `key`. Removing a key that was never added
  /// is undefined (it can manufacture false negatives for other keys) —
  /// callers pair add/remove exactly, and the strategy invariants check
  /// the pairing at quiescence.
  void remove(std::uint64_t key) {
    DIVA_CHECK_MSG(size_ > 0, "CountingBloom: remove from an empty filter");
    forEachCell(key, [&](std::size_t i) {
      DIVA_CHECK_MSG(counters_[i] > 0,
                     "CountingBloom: remove of a key that was never added");
      if (counters_[i] != kSaturated) --counters_[i];
    });
    --size_;
  }

  /// True if `key` may be in the set; false means definitely absent.
  bool mayContain(std::uint64_t key) const {
    bool all = true;
    forEachCell(key, [&](std::size_t i) { all = all && counters_[i] > 0; });
    return all;
  }

 private:
  static constexpr std::uint8_t kSaturated = 255;

  /// k derived cell indexes via double hashing: h_i = h1 + i·h2 (mod m),
  /// the standard Kirsch–Mitzenmacher construction over one mix64 pass.
  template <typename Fn>
  void forEachCell(std::uint64_t key, Fn&& fn) const {
    const std::uint64_t h = mix64(key);
    const std::uint64_t h1 = h & 0xffffffffull;
    const std::uint64_t h2 = (h >> 32) | 1ull;  // odd → full-period stride
    for (int i = 0; i < hashes_; ++i) {
      fn((h1 + static_cast<std::uint64_t>(i) * h2) % counters_.size());
    }
  }

  std::vector<std::uint8_t> counters_;
  int hashes_;
  std::uint64_t size_ = 0;  ///< adds minus removes (diagnostics/tests)
};

}  // namespace diva::support
