#pragma once

#include <cstdint>

namespace diva::support {

/// Finalizing 64-bit mixer (the SplitMix64 output function). Bijective,
/// avalanche-complete; used both for seeded streams and as a stateless hash
/// so that per-variable randomness (embeddings, homes) is reproducible
/// without storing any per-variable state.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Combine two 64-bit values into one hash. Order-sensitive.
constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2) + b));
}

constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return hashCombine(hashCombine(a, b), c);
}

/// SplitMix64 sequential generator. Small state, passes BigCrush when used
/// as intended (one stream per purpose); all simulator randomness flows
/// through explicitly seeded instances for reproducibility.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform integer in [0, n). Unbiased enough for simulation purposes
  /// (Lemire-style multiply-shift without the rejection loop would bias by
  /// < 2^-32 for the small n we use; we keep the rejection loop anyway).
  std::uint64_t below(std::uint64_t n) {
    if (n <= 1) return 0;
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % n;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Derive an independent child stream without advancing this generator:
  /// the child is seeded from (current state, streamId) through the mixer,
  /// so splits commute with later draws on the parent and the family
  /// {split(0), split(1), …} is as independent as mix64 can make it.
  /// This is what gives the workload generator one deterministic stream
  /// per (node, phase) from a single scenario seed.
  constexpr SplitMix64 split(std::uint64_t streamId) const {
    return SplitMix64(mix64(hashCombine(state_, streamId)));
  }

 private:
  std::uint64_t state_;
};

/// Stateless uniform draw in [0, n) from a hashed key tuple.
inline std::uint64_t hashBelow(std::uint64_t key, std::uint64_t n) {
  if (n <= 1) return 0;
  // 128-bit multiply-shift maps the hash uniformly onto [0, n).
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(mix64(key)) * n) >> 64);
}

}  // namespace diva::support
