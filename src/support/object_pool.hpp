#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace diva::support {

/// Recycling slab pool. Objects are default-constructed once, handed out
/// by `acquire()`, returned by `release()` *without being destroyed*, and
/// reused — so any internal capacity an object accumulates (a spilled
/// route buffer, a grown container) stays warm across uses. Every object
/// the pool ever constructed — including those still "live" at teardown —
/// is destroyed exactly once in the destructor. That last property is
/// what fixes the pending-event leak: if the simulation stops with
/// messages still in flight, their pooled state is reclaimed with the
/// pool instead of dangling from never-run event closures.
///
/// Steady state (release/acquire cycles at a stable high-water mark)
/// performs no heap allocation.
template <typename T, std::size_t SlabSize = 256>
class ObjectPool {
  static_assert(SlabSize > 0);

 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    for (Slab& slab : slabs_) {
      for (std::size_t i = 0; i < slab.used; ++i) slab.data[i].~T();
      ::operator delete(slab.data, std::align_val_t{alignof(T)});
    }
  }

  /// Returns a recycled object (in whatever state its previous user left
  /// it — callers reset the fields they use) or a freshly
  /// default-constructed one.
  T* acquire() {
    if (!free_.empty()) {
      T* p = free_.back();
      free_.pop_back();
      return p;
    }
    if (slabs_.empty() || slabs_.back().used == SlabSize) {
      slabs_.push_back(Slab{
          static_cast<T*>(::operator new(SlabSize * sizeof(T), std::align_val_t{alignof(T)})),
          0});
    }
    Slab& slab = slabs_.back();
    T* p = ::new (static_cast<void*>(slab.data + slab.used)) T();
    ++slab.used;
    return p;
  }

  /// Return an object to the free list. It is not destroyed; it must have
  /// come from this pool's `acquire()`.
  void release(T* p) { free_.push_back(p); }

  /// Pre-construct `n` objects so a burst of that many concurrent
  /// acquires — and the free-list traffic of recycling them — performs
  /// no allocation. Counts from the pool's current state: the `n`
  /// objects are acquired (recycling any free ones first) and released
  /// again, which also grows the free list's capacity to at least `n`.
  void reserve(std::size_t n) {
    std::vector<T*> held;
    held.reserve(n);
    for (std::size_t i = 0; i < n; ++i) held.push_back(acquire());
    for (T* p : held) release(p);
  }

  /// Objects currently constructed (live + free), for diagnostics.
  std::size_t constructedCount() const {
    std::size_t n = 0;
    for (const Slab& slab : slabs_) n += slab.used;
    return n;
  }

 private:
  struct Slab {
    T* data;
    std::size_t used;
  };

  std::vector<Slab> slabs_;
  std::vector<T*> free_;
};

}  // namespace diva::support
