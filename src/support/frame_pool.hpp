#pragma once

#include <array>
#include <cstddef>
#include <new>

namespace diva::support {

/// Size-bucketed freelist for coroutine frames (and other fixed-shape
/// blocks that churn at a stable working-set size). Blocks are rounded up
/// to 64-byte classes; a freed block parks on its class's freelist and the
/// next allocation of that class pops it — so steady-state churn performs
/// zero heap traffic after warm-up. Oversized blocks fall through to the
/// global heap. Everything parked is released on destruction; blocks still
/// outstanding are the caller's to free (the pool never tracks them).
///
/// Single-threaded by design, like the simulator that uses it.
class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooled = 4096;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  ~FramePool() {
    for (FreeNode*& head : buckets_) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

  void* allocate(std::size_t n) {
    const std::size_t b = bucketOf(n);
    if (b >= kNumBuckets) return ::operator new(n);
    if (FreeNode* head = buckets_[b]) {
      buckets_[b] = head->next;
      return head;
    }
    return ::operator new((b + 1) * kGranularity);
  }

  /// `n` must be the size passed to the matching allocate().
  void deallocate(void* p, std::size_t n) {
    const std::size_t b = bucketOf(n);
    if (b >= kNumBuckets) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = buckets_[b];
    buckets_[b] = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kNumBuckets = kMaxPooled / kGranularity;

  static std::size_t bucketOf(std::size_t n) {
    return n == 0 ? 0 : (n - 1) / kGranularity;
  }

  std::array<FreeNode*, kNumBuckets> buckets_{};
};

}  // namespace diva::support
