#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace diva::support {

/// Vector with inline storage for the first `N` elements, used where the
/// common case is small and per-instance heap traffic matters (e.g. the
/// route of an in-flight message: ≤16 hops covers every path on meshes up
/// to 9×9, and larger meshes spill once and then reuse the spilled
/// capacity because `clear()` never releases it).
template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0);

 public:
  SmallVec() noexcept : data_(inlineData()) {}

  SmallVec(SmallVec&& other) noexcept : data_(inlineData()) {
    moveFrom(other);
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      releaseHeap();
      moveFrom(other);
    }
    return *this;
  }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() {
    clear();
    releaseHeap();
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }
  bool empty() const noexcept { return size_ == 0; }
  bool spilled() const noexcept { return data_ != inlineData(); }

  /// Destroys the elements but keeps the current (possibly spilled)
  /// capacity — the property pooled owners rely on for reuse.
  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  /// Destroys every element past the first `n` (no-op when n ≥ size),
  /// keeping capacity like `clear()`. Used to rewrite the tail of a
  /// route in place when a flight detours around a dead link.
  void truncate(std::size_t n) noexcept {
    for (std::size_t i = n; i < size_; ++i) data_[i].~T();
    if (n < size_) size_ = n;
  }

  void reserve(std::size_t cap) {
    if (cap > cap_) grow(cap);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* p = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

 private:
  T* inlineData() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* inlineData() const noexcept { return reinterpret_cast<const T*>(inline_); }

  void grow(std::size_t cap) {
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    releaseHeap();
    data_ = fresh;
    cap_ = cap;
  }

  void releaseHeap() noexcept {
    if (spilled()) ::operator delete(data_, std::align_val_t{alignof(T)});
    data_ = inlineData();
    cap_ = N;
  }

  void moveFrom(SmallVec& other) noexcept {
    if (other.spilled()) {
      data_ = std::exchange(other.data_, other.inlineData());
      size_ = std::exchange(other.size_, 0);
      cap_ = std::exchange(other.cap_, N);
    } else {
      size_ = other.size_;
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    }
  }

  T* data_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace diva::support
