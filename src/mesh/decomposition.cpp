#include "mesh/decomposition.hpp"

namespace diva::mesh {

namespace {
bool validArity(int a) { return a == 2 || a == 4 || a == 16; }
int levelsOf(int arity) { return arity == 2 ? 1 : arity == 4 ? 2 : 4; }
}  // namespace

Decomposition::Decomposition(const Mesh& mesh, Params params)
    : mesh_(&mesh), params_(params) {
  DIVA_CHECK_MSG(validArity(params.arity), "arity must be 2, 4 or 16");
  DIVA_CHECK_MSG(params.leafSize >= 1, "leafSize must be >= 1");
  leafOfProc_.assign(mesh.numNodes(), -1);
  rankOfProc_.assign(mesh.numNodes(), -1);
  nodes_.reserve(static_cast<std::size_t>(2 * mesh.numNodes()));
  build(Submesh{0, 0, mesh.rows(), mesh.cols()}, -1, -1, 0);
  for (NodeId p = 0; p < mesh.numNodes(); ++p)
    DIVA_CHECK_MSG(leafOfProc_[p] >= 0, "processor " << p << " missing a leaf");
  for (int w = 0; w < static_cast<int>(leafOrder_.size()); ++w)
    rankOfProc_[procOfLeaf(leafOrder_[w])] = w;
}

// Paper: "we partition M into two non-overlapping submeshes of size
// ⌈m1/2⌉×m2 and ⌊m1/2⌋×m2" where m1 is the longer side. Ties split rows.
void Decomposition::splitTwoWay(const Submesh& box, Submesh& a, Submesh& b) {
  if (box.rows >= box.cols) {
    const int top = (box.rows + 1) / 2;
    a = Submesh{box.row0, box.col0, top, box.cols};
    b = Submesh{box.row0 + top, box.col0, box.rows - top, box.cols};
  } else {
    const int left = (box.cols + 1) / 2;
    a = Submesh{box.row0, box.col0, box.rows, left};
    b = Submesh{box.row0, box.col0 + left, box.rows, box.cols - left};
  }
}

// Children of an ℓ-ary node: apply `levels` consecutive 2-ary splits and
// collect the fringe (submeshes of size 1 stop splitting early, so a node
// can have fewer than ℓ children near the bottom).
void Decomposition::expandChildren(const Submesh& box, int levels, std::vector<Submesh>& out) {
  if (levels == 0 || box.size() == 1) {
    out.push_back(box);
    return;
  }
  Submesh a, b;
  splitTwoWay(box, a, b);
  expandChildren(a, levels - 1, out);
  expandChildren(b, levels - 1, out);
}

int Decomposition::build(const Submesh& box, int parent, int indexInParent, int depth) {
  const int self = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{box, parent, indexInParent, {}, depth});
  maxDepth_ = std::max(maxDepth_, depth);

  if (box.size() == 1) {
    const NodeId p = mesh_->nodeAt(box.row0, box.col0);
    leafOfProc_[p] = self;
    leafOrder_.push_back(self);
    return self;
  }

  std::vector<Submesh> childBoxes;
  if (box.size() <= params_.leafSize) {
    // ℓ-k-ary termination: one child per processor, in row-major order of
    // the submesh (a canonical left-to-right order for these leaves).
    childBoxes.reserve(static_cast<std::size_t>(box.size()));
    for (int r = box.row0; r < box.row0 + box.rows; ++r)
      for (int c = box.col0; c < box.col0 + box.cols; ++c)
        childBoxes.push_back(Submesh{r, c, 1, 1});
  } else {
    expandChildren(box, levelsOf(params_.arity), childBoxes);
  }

  int idx = 0;
  for (const Submesh& cb : childBoxes) {
    const int child = build(cb, self, idx++, depth + 1);
    nodes_[self].children.push_back(child);
  }
  return self;
}

}  // namespace diva::mesh
