#pragma once

#include <vector>

#include "mesh/mesh.hpp"
#include "net/topology.hpp"

namespace diva::mesh {

/// One hop of a route: the directed link taken and the node it leads to.
/// (Shared with the generic topology layer — `net::MeshTopology` routes
/// by delegating to `appendDimensionOrderRoute` below.)
using Hop = net::Hop;

/// Dimension-by-dimension order routing, exactly as assumed by the paper's
/// analysis and implemented by the GCel's wormhole router: the unique
/// shortest path that first uses edges of dimension 1 (columns, East/West)
/// and then edges of dimension 2 (rows, South/North).
///
/// Appends the hops from `from` to `to` onto `out` (empty when from == to).
/// Templated over the output container so hot-path callers can route
/// straight into reused inline-storage buffers (see `Network::Flight`)
/// without a per-message allocation.
template <typename OutVec>
void appendDimensionOrderRoute(const Mesh& mesh, NodeId from, NodeId to, OutVec& out) {
  // Pure-arithmetic walk: every intermediate hop is valid by construction
  // (we only ever step toward the destination inside the grid), so the
  // generic neighbor()/hasNeighbor() accessors — which re-derive
  // coordinates with an integer division per call — are skipped on this
  // per-message path.
  const Coord src = mesh.coordOf(from);
  const Coord dst = mesh.coordOf(to);
  NodeId cur = from;
  int col = src.col;
  while (col != dst.col) {
    const bool east = col < dst.col;
    const Mesh::Dir d = east ? Mesh::East : Mesh::West;
    const NodeId next = east ? cur + 1 : cur - 1;
    out.push_back(Hop{mesh.linkIndex(cur, d), next});
    cur = next;
    col += east ? 1 : -1;
  }
  int row = src.row;
  const int cols = mesh.cols();
  while (row != dst.row) {
    const bool south = row < dst.row;
    const Mesh::Dir d = south ? Mesh::South : Mesh::North;
    const NodeId next = south ? cur + cols : cur - cols;
    out.push_back(Hop{mesh.linkIndex(cur, d), next});
    cur = next;
    row += south ? 1 : -1;
  }
}

/// Non-template convenience form for analysis/setup code.
void routeDimensionOrder(const Mesh& mesh, NodeId from, NodeId to, std::vector<Hop>& out);

/// Convenience wrapper returning a fresh hop vector.
std::vector<Hop> routeOf(const Mesh& mesh, NodeId from, NodeId to);

}  // namespace diva::mesh
