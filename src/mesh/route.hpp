#pragma once

#include <vector>

#include "mesh/mesh.hpp"

namespace diva::mesh {

/// One hop of a route: the directed link taken and the node it leads to.
struct Hop {
  int link;
  NodeId to;
};

/// Dimension-by-dimension order routing, exactly as assumed by the paper's
/// analysis and implemented by the GCel's wormhole router: the unique
/// shortest path that first uses edges of dimension 1 (columns, East/West)
/// and then edges of dimension 2 (rows, South/North).
///
/// Appends the hops from `from` to `to` onto `out` (empty when from == to).
void routeDimensionOrder(const Mesh& mesh, NodeId from, NodeId to, std::vector<Hop>& out);

/// Convenience wrapper returning a fresh hop vector.
std::vector<Hop> routeOf(const Mesh& mesh, NodeId from, NodeId to);

}  // namespace diva::mesh
