#include "mesh/embedding.hpp"

#include "support/rng.hpp"

namespace diva::mesh {

using support::hashBelow;
using support::hashCombine;

Coord Embedding::coordOf(int treeNode, std::uint64_t varKey) const {
  const Decomposition::Node& n = decomp_->node(treeNode);
  const Submesh& box = n.box;
  if (box.size() == 1) return Coord{box.row0, box.col0};

  if (kind_ == EmbeddingKind::Random) {
    const std::uint64_t key = hashCombine(seed_, varKey, static_cast<std::uint64_t>(treeNode));
    const int r = static_cast<int>(hashBelow(key, static_cast<std::uint64_t>(box.rows)));
    const int c = static_cast<int>(hashBelow(hashCombine(key, 0x5eedull),
                                             static_cast<std::uint64_t>(box.cols)));
    return Coord{box.row0 + r, box.col0 + c};
  }

  // Regular embedding.
  if (n.parent < 0) {
    const std::uint64_t key = hashCombine(seed_, varKey);
    const int r = static_cast<int>(hashBelow(key, static_cast<std::uint64_t>(box.rows)));
    const int c = static_cast<int>(hashBelow(hashCombine(key, 0x5eedull),
                                             static_cast<std::uint64_t>(box.cols)));
    return Coord{box.row0 + r, box.col0 + c};
  }
  const Coord parentPos = coordOf(n.parent, varKey);
  const Submesh& parentBox = decomp_->node(n.parent).box;
  const int i = parentPos.row - parentBox.row0;
  const int j = parentPos.col - parentBox.col0;
  return Coord{box.row0 + i % box.rows, box.col0 + j % box.cols};
}

NodeId Embedding::hostOf(int treeNode, std::uint64_t varKey) const {
  const Coord c = coordOf(treeNode, varKey);
  return decomp_->mesh().nodeAt(c.row, c.col);
}

}  // namespace diva::mesh
