#include "mesh/route.hpp"

namespace diva::mesh {

void routeDimensionOrder(const Mesh& mesh, NodeId from, NodeId to, std::vector<Hop>& out) {
  const Coord src = mesh.coordOf(from);
  const Coord dst = mesh.coordOf(to);
  NodeId cur = from;
  int col = src.col;
  while (col != dst.col) {
    const Mesh::Dir d = col < dst.col ? Mesh::East : Mesh::West;
    out.push_back(Hop{mesh.linkIndex(cur, d), mesh.neighbor(cur, d)});
    cur = out.back().to;
    col += (d == Mesh::East) ? 1 : -1;
  }
  int row = src.row;
  while (row != dst.row) {
    const Mesh::Dir d = row < dst.row ? Mesh::South : Mesh::North;
    out.push_back(Hop{mesh.linkIndex(cur, d), mesh.neighbor(cur, d)});
    cur = out.back().to;
    row += (d == Mesh::South) ? 1 : -1;
  }
}

std::vector<Hop> routeOf(const Mesh& mesh, NodeId from, NodeId to) {
  std::vector<Hop> hops;
  routeDimensionOrder(mesh, from, to, hops);
  return hops;
}

}  // namespace diva::mesh
