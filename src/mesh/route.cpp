#include "mesh/route.hpp"

namespace diva::mesh {

void routeDimensionOrder(const Mesh& mesh, NodeId from, NodeId to, std::vector<Hop>& out) {
  appendDimensionOrderRoute(mesh, from, to, out);
}

std::vector<Hop> routeOf(const Mesh& mesh, NodeId from, NodeId to) {
  std::vector<Hop> hops;
  appendDimensionOrderRoute(mesh, from, to, hops);
  return hops;
}

}  // namespace diva::mesh
