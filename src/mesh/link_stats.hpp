#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/check.hpp"

namespace diva::mesh {

/// Per-directed-link traffic accounting, with optional phase scoping.
///
/// Congestion — the paper's central metric — is the maximum, over all
/// directed links, of the traffic carried by that link. We track both
/// message counts (used for the Barnes–Hut figures, which report
/// "congestion in 10000 messages") and bytes (the natural unit for the
/// matrix-multiplication and sorting ratios). Phases let the Barnes–Hut
/// benches report per-phase congestion (Figures 9 and 10).
class LinkStats {
 public:
  static constexpr int kAllPhases = -1;

  LinkStats(int numLinkSlots, int numPhases)
      : slots_(numLinkSlots), phases_(std::max(1, numPhases)) {
    msgs_.assign(static_cast<std::size_t>(phases_) * slots_, 0);
    bytes_.assign(static_cast<std::size_t>(phases_) * slots_, 0);
  }

  int numPhases() const { return phases_; }
  int currentPhase() const { return phase_; }

  void setPhase(int p) {
    DIVA_CHECK(p >= 0 && p < phases_);
    phase_ = p;
  }

  void record(int link, std::uint64_t wireBytes) {
    const std::size_t i = static_cast<std::size_t>(phase_) * slots_ + link;
    ++msgs_[i];
    bytes_[i] += wireBytes;
  }

  /// Max over links of per-link message count (within one phase, or overall).
  std::uint64_t congestionMessages(int phase = kAllPhases) const {
    return maxOver(msgs_, phase);
  }
  std::uint64_t congestionBytes(int phase = kAllPhases) const {
    return maxOver(bytes_, phase);
  }
  /// Total communication load: sum over links.
  std::uint64_t totalMessages(int phase = kAllPhases) const { return sumOver(msgs_, phase); }
  std::uint64_t totalBytes(int phase = kAllPhases) const { return sumOver(bytes_, phase); }

  std::uint64_t linkMessages(int link, int phase = kAllPhases) const {
    return cellOver(msgs_, link, phase);
  }
  std::uint64_t linkBytes(int link, int phase = kAllPhases) const {
    return cellOver(bytes_, link, phase);
  }

  void reset() {
    std::fill(msgs_.begin(), msgs_.end(), 0);
    std::fill(bytes_.begin(), bytes_.end(), 0);
  }

 private:
  std::uint64_t cellOver(const std::vector<std::uint64_t>& v, int link, int phase) const {
    if (phase != kAllPhases)
      return v[static_cast<std::size_t>(phase) * slots_ + link];
    std::uint64_t s = 0;
    for (int p = 0; p < phases_; ++p) s += v[static_cast<std::size_t>(p) * slots_ + link];
    return s;
  }
  std::uint64_t maxOver(const std::vector<std::uint64_t>& v, int phase) const {
    std::uint64_t best = 0;
    for (int l = 0; l < slots_; ++l) best = std::max(best, cellOver(v, l, phase));
    return best;
  }
  std::uint64_t sumOver(const std::vector<std::uint64_t>& v, int phase) const {
    std::uint64_t s = 0;
    for (int l = 0; l < slots_; ++l) s += cellOver(v, l, phase);
    return s;
  }

  int slots_;
  int phases_;
  int phase_ = 0;
  std::vector<std::uint64_t> msgs_;
  std::vector<std::uint64_t> bytes_;
};

}  // namespace diva::mesh
