#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/check.hpp"

namespace diva::mesh {

/// Per-directed-link traffic accounting, with optional phase scoping.
///
/// Congestion — the paper's central metric — is the maximum, over all
/// directed links, of the traffic carried by that link. We track both
/// message counts (used for the Barnes–Hut figures, which report
/// "congestion in 10000 messages") and bytes (the natural unit for the
/// matrix-multiplication and sorting ratios). Phases let the Barnes–Hut
/// benches report per-phase congestion (Figures 9 and 10).
class LinkStats {
 public:
  static constexpr int kAllPhases = -1;

  LinkStats(int numLinkSlots, int numPhases)
      : slots_(numLinkSlots), phases_(std::max(1, numPhases)) {
    cells_.assign(static_cast<std::size_t>(phases_) * slots_, Cell{});
  }

  int numPhases() const { return phases_; }
  int currentPhase() const { return phase_; }

  void setPhase(int p) {
    DIVA_CHECK(p >= 0 && p < phases_);
    phase_ = p;
  }

  /// Grow the phase dimension to at least `n` phases. The cell layout is
  /// phase-major, so growth appends zeroed cells without moving existing
  /// counts. Lets long multi-phase workloads exceed the default phase
  /// budget the Stats object was built with.
  void ensurePhases(int n) {
    if (n <= phases_) return;
    phases_ = n;
    cells_.resize(static_cast<std::size_t>(phases_) * slots_, Cell{});
  }

  /// Hot path (once per link crossing): message count and byte count live
  /// in one interleaved cell, so recording touches a single cache line.
  void record(int link, std::uint64_t wireBytes) {
    Cell& c = cells_[static_cast<std::size_t>(phase_) * slots_ + link];
    ++c.msgs;
    c.bytes += wireBytes;
  }

  /// Max over links of per-link message count (within one phase, or overall).
  std::uint64_t congestionMessages(int phase = kAllPhases) const {
    return maxOver(&Cell::msgs, phase);
  }
  std::uint64_t congestionBytes(int phase = kAllPhases) const {
    return maxOver(&Cell::bytes, phase);
  }
  /// Total communication load: sum over links.
  std::uint64_t totalMessages(int phase = kAllPhases) const {
    return sumOver(&Cell::msgs, phase);
  }
  std::uint64_t totalBytes(int phase = kAllPhases) const {
    return sumOver(&Cell::bytes, phase);
  }

  std::uint64_t linkMessages(int link, int phase = kAllPhases) const {
    return cellOver(&Cell::msgs, link, phase);
  }
  std::uint64_t linkBytes(int link, int phase = kAllPhases) const {
    return cellOver(&Cell::bytes, link, phase);
  }

  /// Renumber the link dimension after a structural reconfiguration
  /// (docs/faults.md): `oldToNew[l]` is surviving link l's new slot, -1
  /// for removed links (their counts are dropped — a removed link carries
  /// no further traffic, and congestion is recomputed per phase from the
  /// surviving cells). New links start zeroed.
  void remap(const std::vector<int>& oldToNew, int newSlots) {
    DIVA_CHECK(static_cast<int>(oldToNew.size()) == slots_ && newSlots >= 0);
    std::vector<Cell> grown(static_cast<std::size_t>(phases_) * newSlots, Cell{});
    for (int p = 0; p < phases_; ++p)
      for (int l = 0; l < slots_; ++l) {
        const int nl = oldToNew[static_cast<std::size_t>(l)];
        if (nl < 0) continue;
        DIVA_CHECK(nl < newSlots);
        grown[static_cast<std::size_t>(p) * newSlots + nl] =
            cells_[static_cast<std::size_t>(p) * slots_ + l];
      }
    cells_ = std::move(grown);
    slots_ = newSlots;
  }

  void reset() { std::fill(cells_.begin(), cells_.end(), Cell{}); }

 private:
  struct Cell {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  std::uint64_t cellOver(std::uint64_t Cell::* field, int link, int phase) const {
    if (phase != kAllPhases)
      return cells_[static_cast<std::size_t>(phase) * slots_ + link].*field;
    std::uint64_t s = 0;
    for (int p = 0; p < phases_; ++p)
      s += cells_[static_cast<std::size_t>(p) * slots_ + link].*field;
    return s;
  }
  std::uint64_t maxOver(std::uint64_t Cell::* field, int phase) const {
    std::uint64_t best = 0;
    for (int l = 0; l < slots_; ++l) best = std::max(best, cellOver(field, l, phase));
    return best;
  }
  std::uint64_t sumOver(std::uint64_t Cell::* field, int phase) const {
    std::uint64_t s = 0;
    for (int l = 0; l < slots_; ++l) s += cellOver(field, l, phase);
    return s;
  }

  int slots_;
  int phases_;
  int phase_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace diva::mesh
