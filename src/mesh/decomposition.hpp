#pragma once

#include <vector>

#include "mesh/mesh.hpp"

namespace diva::mesh {

/// Axis-aligned submesh (a rectangle of processors).
struct Submesh {
  int row0 = 0;
  int col0 = 0;
  int rows = 0;
  int cols = 0;

  int size() const { return rows * cols; }
  bool contains(Coord c) const {
    return c.row >= row0 && c.row < row0 + rows && c.col >= col0 && c.col < col0 + cols;
  }
  bool operator==(const Submesh&) const = default;
};

/// Hierarchical mesh decomposition and its decomposition tree (paper §2).
///
/// The 2-ary decomposition recursively halves the longer side
/// (⌈m1/2⌉×m2 and ⌊m1/2⌋×m2). The ℓ-ary decomposition for ℓ ∈ {4, 16}
/// skips intermediate levels: each node's children are the submeshes
/// obtained by log2(ℓ) consecutive 2-ary splits. The ℓ-k-ary variant
/// terminates the decomposition at submeshes of size ≤ k; such a node gets
/// one child per processor of its submesh (so k = P reproduces the P-ary
/// tree the paper identifies with the fixed home strategy).
///
/// Leaves correspond 1:1 to processors. `leafOrder()` enumerates them in
/// the tree's left-to-right order — the "numbering of the leaves of the
/// mesh-decomposition tree" that the paper uses to assign logical
/// processor identities for bitonic sorting and the Barnes–Hut costzones.
class Decomposition {
 public:
  struct Params {
    int arity = 4;    ///< ℓ ∈ {2, 4, 16}
    int leafSize = 1; ///< k: terminate at submeshes of ≤ k processors (1 = pure ℓ-ary)
  };

  struct Node {
    Submesh box;
    int parent = -1;            ///< -1 at the root
    int indexInParent = -1;     ///< which child of the parent this node is
    std::vector<int> children;  ///< empty at leaves
    int depth = 0;
    bool isLeaf() const { return children.empty(); }
  };

  Decomposition(const Mesh& mesh, Params params);

  const Mesh& mesh() const { return *mesh_; }
  const Params& params() const { return params_; }

  int root() const { return 0; }
  int numNodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const { return nodes_[i]; }
  int parent(int i) const { return nodes_[i].parent; }
  int depthOf(int i) const { return nodes_[i].depth; }
  int maxDepth() const { return maxDepth_; }

  /// Tree leaf whose submesh is exactly {processor p}.
  int leafOf(NodeId p) const { return leafOfProc_[p]; }

  /// Leaves in left-to-right tree order (size = number of processors).
  /// Entry w is the tree-node index of the w-th leaf.
  const std::vector<int>& leafOrder() const { return leafOrder_; }

  /// The single processor of a leaf node.
  NodeId procOfLeaf(int leaf) const {
    const Submesh& b = nodes_[leaf].box;
    DIVA_CHECK(b.size() == 1);
    return mesh_->nodeAt(b.row0, b.col0);
  }

  /// Logical rank of processor p in leaf order (inverse of leafOrder).
  int rankOf(NodeId p) const { return rankOfProc_[p]; }

  /// Processor with logical rank w in leaf order.
  NodeId procOfRank(int w) const { return procOfLeaf(leafOrder_[w]); }

 private:
  int build(const Submesh& box, int parent, int indexInParent, int depth);
  static void splitTwoWay(const Submesh& box, Submesh& a, Submesh& b);
  static void expandChildren(const Submesh& box, int levels, std::vector<Submesh>& out);

  const Mesh* mesh_;
  Params params_;
  std::vector<Node> nodes_;
  std::vector<int> leafOfProc_;
  std::vector<int> rankOfProc_;
  std::vector<int> leafOrder_;
  int maxDepth_ = 0;
};

}  // namespace diva::mesh
