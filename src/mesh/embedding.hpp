#pragma once

#include <cstdint>

#include "mesh/decomposition.hpp"
#include "net/topology.hpp"

namespace diva::mesh {

/// The embedding kinds are shared with the generic topology layer; on the
/// mesh, `Regular` maps a node whose parent sits at relative position
/// (i, j) of the parent's submesh to relative position
/// (i mod m1, j mod m2) of its own m1×m2 submesh.
using EmbeddingKind = net::EmbeddingKind;

/// Maps access-tree nodes to host processors, one embedding per variable.
///
/// The embedding is a pure function of (seed, variable key, tree node), so
/// no per-variable state is stored — essential when an application creates
/// hundreds of thousands of variables (Barnes–Hut cells and bodies).
class Embedding {
 public:
  Embedding(const Decomposition& decomposition, EmbeddingKind kind, std::uint64_t seed)
      : decomp_(&decomposition), kind_(kind), seed_(seed) {}

  EmbeddingKind kind() const { return kind_; }
  const Decomposition& decomposition() const { return *decomp_; }

  /// Host processor of access-tree node `treeNode` in the access tree of
  /// the variable identified by `varKey`.
  NodeId hostOf(int treeNode, std::uint64_t varKey) const;

 private:
  Coord coordOf(int treeNode, std::uint64_t varKey) const;

  const Decomposition* decomp_;
  EmbeddingKind kind_;
  std::uint64_t seed_;
};

}  // namespace diva::mesh
