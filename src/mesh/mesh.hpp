#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace diva::mesh {

/// Processor identifier: row-major index into the mesh, matching the
/// paper's "processors numbered from 0 to P-1 in row major order".
using NodeId = std::int32_t;

struct Coord {
  int row = 0;
  int col = 0;
  bool operator==(const Coord&) const = default;
};

/// 2-D mesh topology (the Parsytec GCel network shape). Nodes are
/// connected to their 4-neighbourhood; every physical wire is modelled as
/// two directed links (the GCel reaches full bandwidth in both directions
/// simultaneously, which the paper measured explicitly).
class Mesh {
 public:
  enum Dir : int { East = 0, West = 1, South = 2, North = 3 };
  static constexpr int kDirs = 4;

  Mesh(int rows, int cols) : rows_(rows), cols_(cols) {
    DIVA_CHECK_MSG(rows >= 1 && cols >= 1, "mesh sides must be positive");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int numNodes() const { return rows_ * cols_; }

  NodeId nodeAt(int row, int col) const {
    DIVA_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return static_cast<NodeId>(row * cols_ + col);
  }

  Coord coordOf(NodeId n) const {
    DIVA_CHECK(n >= 0 && n < numNodes());
    return Coord{n / cols_, n % cols_};
  }

  bool hasNeighbor(NodeId n, Dir d) const {
    const Coord c = coordOf(n);
    switch (d) {
      case East: return c.col + 1 < cols_;
      case West: return c.col > 0;
      case South: return c.row + 1 < rows_;
      case North: return c.row > 0;
    }
    return false;
  }

  NodeId neighbor(NodeId n, Dir d) const {
    DIVA_CHECK(hasNeighbor(n, d));
    switch (d) {
      case East: return n + 1;
      case West: return n - 1;
      case South: return n + cols_;
      default: return n - cols_;
    }
  }

  /// Directed link identifier: (source node, direction). Slots for
  /// non-existent boundary links exist but are never used; this keeps
  /// link lookup a single multiply-add.
  int linkIndex(NodeId from, Dir d) const { return from * kDirs + static_cast<int>(d); }
  int numLinkSlots() const { return numNodes() * kDirs; }

  /// Manhattan distance between two nodes (length of any shortest path).
  int distance(NodeId a, NodeId b) const {
    const Coord ca = coordOf(a), cb = coordOf(b);
    const int dr = ca.row > cb.row ? ca.row - cb.row : cb.row - ca.row;
    const int dc = ca.col > cb.col ? ca.col - cb.col : cb.col - ca.col;
    return dr + dc;
  }

 private:
  int rows_;
  int cols_;
};

}  // namespace diva::mesh
