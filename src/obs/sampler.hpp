#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace diva {
struct Machine;
}

namespace diva::obs {

/// Periodic time-series sampler, scheduled as ordinary engine events.
///
/// At every sample instant the sampler reads the whole MetricsRegistry
/// (plus, when bound to a Machine, a per-link congestion snapshot of the
/// *current* topology — heatmap-ready) and appends long-form rows
/// `(time_us, phase, metric, value)`. Output is CSV or JSON, chosen by
/// the writer called.
///
/// Scheduling protocol, driven by the workload runner:
///  - phaseBegin(): boundary sample at the phase start, then a tick
///    chain at the configured interval;
///  - each tick samples and reschedules itself — unless the model's
///    event queue has drained, in which case the chain stops silently so
///    the sampler never keeps a finished phase alive;
///  - phaseEnd(): boundary sample at the phase end.
/// So a phase spanning S µs at interval I yields floor(S/I) interior
/// samples plus the two boundaries (fewer interior ones only if the
/// model goes idle early). The sampler is an observer with one caveat:
/// its final pending tick can extend the engine's idle time by up to one
/// interval, so phase wall-clock readings with sampling ON can exceed
/// the sampling-OFF run by < I per phase (sampling OFF is what the
/// golden hashes pin, and stays bit-identical).
class Sampler {
 public:
  /// Arm the sampler: sample every `intervalUs` simulated µs (> 0).
  void configure(sim::Engine& engine, double intervalUs);
  bool enabled() const { return engine_ != nullptr; }

  /// Register the standard machine metrics (engine, network, ops
  /// counters, link aggregates) and enable per-link congestion
  /// snapshots. Call after configure(), before the run.
  void bindMachine(const Machine& m);

  /// Additional metrics (per-phase serve gauges, ...) register here;
  /// use mark()/truncate() for phase-scoped lifetimes.
  MetricsRegistry& registry() { return registry_; }

  void phaseBegin(int phase);
  void phaseEnd();

  std::size_t samplesTaken() const { return samples_; }
  std::size_t numRows() const { return rows_.size(); }

  /// Long-form CSV: `time_us,phase,metric,value` (header row included).
  void writeCsv(std::ostream& out) const;
  /// The same rows as a JSON array of objects.
  void writeJson(std::ostream& out) const;

 private:
  struct Row {
    double t;
    int phase;
    std::string metric;  ///< copied: registry entries may be phase-scoped
    double value;
  };

  void sample();
  void tick();

  sim::Engine* engine_ = nullptr;
  double intervalUs_ = 0.0;
  const Machine* machine_ = nullptr;
  int phase_ = 0;
  bool active_ = false;  ///< between phaseBegin and phaseEnd
  MetricsRegistry registry_;
  std::vector<Row> rows_;
  std::size_t samples_ = 0;
};

}  // namespace diva::obs
