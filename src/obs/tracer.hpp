#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace diva::obs {

/// Trace categories, one bit each. A Tracer records an event only when
/// its category bit is enabled, so the trace volume of a long run is
/// bounded by construction, not by post-filtering.
using Cat = std::uint32_t;
inline constexpr Cat kCatTxn = 1u << 0;        ///< closed-loop transactions (read / lock-write-unlock)
inline constexpr Cat kCatServe = 1u << 1;      ///< open-loop request queue→serve
inline constexpr Cat kCatMigration = 1u << 2;  ///< epoch migration / fixed-home re-homing handoffs
inline constexpr Cat kCatRepair = 1u << 3;     ///< crash-repair salvage & scrub traffic
inline constexpr Cat kCatReconfig = 1u << 4;   ///< structural reconfiguration epochs
inline constexpr Cat kCatFault = 1u << 5;      ///< fault instants (crash/recover, link down/up, degrade)
inline constexpr Cat kCatNet = 1u << 6;        ///< routing events (detours, parked flights)
inline constexpr Cat kCatPhase = 1u << 7;      ///< workload phase extents
inline constexpr Cat kCatAll = 0xffu;
inline constexpr int kNumCats = 8;

/// Category name for the Chrome `cat` field / `--trace-categories` flag;
/// index is the bit position.
const char* catName(int bit);
/// Parse a comma-separated category list ("txn,fault") into a mask;
/// "all" enables everything. Throws CheckError on an unknown name.
Cat parseCategories(const std::string& csv);

/// Simulated-time span/event tracer with per-node tracks, exported as
/// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
///
/// Contract with the simulator: the tracer is a pure observer. It never
/// schedules events, never draws randomness and never touches model
/// state, so a run records identically with tracing on or off — the
/// golden delivery-trace hashes pin this. Disabled (the default), every
/// record call is one mask test and an immediate return: no allocation,
/// no time lookup — the counting-allocator suite proves the steady state
/// stays allocation-free with a disabled tracer compiled into the path.
///
/// Event vocabulary (mirrors the Chrome trace-event `ph` field):
///  - begin()/end(): synchronous duration spans on one track. Callers
///    must nest them LIFO per track — the per-processor workload drivers
///    are sequential coroutines, so their spans nest by construction.
///  - instant(): a point event (faults, drops, detours).
///  - beginAsync()/endAsync(): id-correlated spans with no nesting
///    constraint — used for protocol handoffs (migration, repair) whose
///    begin and end happen on different nodes, with the variable id as
///    the correlation id.
///
/// Timestamps are the engine's simulated clock at record time, so record
/// order is already non-decreasing and per-track timestamps come out
/// monotone without a sort. Names passed as `const char*` must be
/// string literals (they are stored by pointer); dynamically built names
/// go through the interning overloads (cold paths only).
class Tracer {
 public:
  /// The machine-wide track (reconfiguration epochs, phase extents);
  /// node tracks are the non-negative processor ids.
  static constexpr std::int32_t kMachineTrack = -1;

  /// Arm the tracer: record events of the categories in `mask`,
  /// timestamped by `engine`. Pre-sizes the record store so steady
  /// recording only reallocates on unusually large traces.
  void enable(const sim::Engine& engine, Cat mask = kCatAll);
  void disable() { mask_ = 0; }
  bool enabled() const { return mask_ != 0; }
  bool on(Cat c) const { return (mask_ & c) != 0; }

  void begin(Cat c, std::int32_t track, const char* name) {
    if (!on(c)) return;
    push(c, track, name, 'B', kNoAux);
  }
  /// Begin with one numeric argument (rendered as `args:{v:aux}`), e.g.
  /// the queueing delay a serve span starts with.
  void begin(Cat c, std::int32_t track, const char* name, std::int64_t aux) {
    if (!on(c)) return;
    push(c, track, name, 'B', aux);
  }
  /// Interning begin for dynamically built names (phase spans). Cold.
  void beginDyn(Cat c, std::int32_t track, const std::string& name) {
    if (!on(c)) return;
    push(c, track, intern(name), 'B', kNoAux);
  }
  void end(Cat c, std::int32_t track) {
    if (!on(c)) return;
    push(c, track, nullptr, 'E', kNoAux);
  }
  void instant(Cat c, std::int32_t track, const char* name,
               std::int64_t aux = kNoAux) {
    if (!on(c)) return;
    push(c, track, name, 'i', aux);
  }
  void beginAsync(Cat c, std::int32_t track, const char* name, std::int64_t id) {
    if (!on(c)) return;
    push(c, track, name, 'b', id);
  }
  void endAsync(Cat c, std::int32_t track, const char* name, std::int64_t id) {
    if (!on(c)) return;
    push(c, track, name, 'e', id);
  }

  std::size_t numRecords() const { return records_.size(); }
  /// Records of category `c` (tests; linear scan).
  std::size_t numRecords(Cat c) const;
  void clear();

  /// Export as deterministic Chrome trace-event JSON: same run, same
  /// bytes. Tracks become (pid 0, tid track+1) with thread_name
  /// metadata; still-open sync/async spans (a run aborted mid-span) are
  /// closed at the final timestamp so the file always balances.
  void writeChromeJson(std::ostream& out) const;
  std::string toChromeJson() const;

 private:
  static constexpr std::int64_t kNoAux = INT64_MIN;

  struct Record {
    double ts;         ///< simulated µs
    const char* name;  ///< literal or interned; nullptr on 'E'
    std::int64_t aux;  ///< async id / instant arg / kNoAux
    std::int32_t track;
    char ph;           ///< 'B' 'E' 'i' 'b' 'e'
    std::uint8_t cat;  ///< category bit index
  };

  void push(Cat c, std::int32_t track, const char* name, char ph, std::int64_t aux);
  const char* intern(const std::string& name);

  Cat mask_ = 0;
  const sim::Engine* engine_ = nullptr;
  std::vector<Record> records_;
  std::deque<std::string> interned_;  ///< deque: stable addresses across growth
};

}  // namespace diva::obs
