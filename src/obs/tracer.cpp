#include "obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "support/check.hpp"

namespace diva::obs {
namespace {

constexpr const char* kCatNames[kNumCats] = {
    "txn", "serve", "migration", "repair",
    "reconfig", "fault", "net", "phase",
};

/// Chrome tid for a track: node n -> n+1, machine track (-1) -> 0, so
/// every tid is non-negative and the machine track sorts first.
int tid(std::int32_t track) { return track + 1; }

}  // namespace

const char* catName(int bit) {
  DIVA_CHECK(bit >= 0 && bit < kNumCats);
  return kCatNames[bit];
}

Cat parseCategories(const std::string& csv) {
  Cat mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = csv.substr(pos, comma - pos);
    pos = comma + 1;
    DIVA_CHECK_MSG(!tok.empty(), "empty trace category in '" << csv << "'");
    if (tok == "all") {
      mask |= kCatAll;
      continue;
    }
    bool found = false;
    for (int bit = 0; bit < kNumCats; ++bit) {
      if (tok == kCatNames[bit]) {
        mask |= Cat{1} << bit;
        found = true;
        break;
      }
    }
    DIVA_CHECK_MSG(found, "unknown trace category: " + tok);
  }
  return mask;
}

void Tracer::enable(const sim::Engine& engine, Cat mask) {
  engine_ = &engine;
  mask_ = mask & kCatAll;
  if (records_.capacity() < (1u << 16)) records_.reserve(1u << 16);
}

void Tracer::clear() {
  records_.clear();
  interned_.clear();
}

std::size_t Tracer::numRecords(Cat c) const {
  std::size_t n = 0;
  for (const Record& r : records_)
    if ((Cat{1} << r.cat) & c) ++n;
  return n;
}

void Tracer::push(Cat c, std::int32_t track, const char* name, char ph,
                  std::int64_t aux) {
  int bit = 0;
  while (!((c >> bit) & 1u)) ++bit;
  records_.push_back(Record{engine_->now(), name, aux, track, ph,
                            static_cast<std::uint8_t>(bit)});
}

const char* Tracer::intern(const std::string& name) {
  for (const std::string& s : interned_)
    if (s == name) return s.c_str();
  interned_.push_back(name);
  return interned_.back().c_str();
}

void Tracer::writeChromeJson(std::ostream& out) const {
  // JSON-escape a name. Names are ASCII identifiers in practice; this
  // covers the general case anyway.
  auto escape = [](const char* s) {
    std::string r;
    for (; *s; ++s) {
      if (*s == '"' || *s == '\\') r += '\\';
      r += *s;
    }
    return r;
  };
  char ts[32];
  auto fmtTs = [&ts](double t) {
    std::snprintf(ts, sizeof ts, "%.3f", t);
    return ts;
  };

  // Pass 1: collect the tracks that appear (for thread_name metadata)
  // and the end-of-trace timestamp used to auto-close open spans.
  std::set<std::int32_t> tracks;
  double endTs = 0.0;
  for (const Record& r : records_) {
    tracks.insert(r.track);
    endTs = std::max(endTs, r.ts);
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"diva\"}}";
  for (std::int32_t track : tracks) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << tid(track) << ",\"args\":{\"name\":\"";
    if (track == kMachineTrack)
      out << "machine";
    else
      out << "node " << track;
    out << "\"}}";
  }

  // Pass 2: emit records in insertion order (simulated time is
  // non-decreasing by construction), tracking open sync spans per track
  // and open async spans per (cat,name,id) so an aborted run still
  // exports a balanced file.
  std::map<std::int32_t, std::size_t> syncDepth;
  std::map<std::tuple<int, const char*, std::int64_t>,
           std::pair<std::int32_t, std::size_t>>
      asyncOpen;  // -> (last track, open count)
  for (const Record& r : records_) {
    out << ",\n{";
    if (r.ph != 'E')
      out << "\"name\":\"" << escape(r.name) << "\",";
    out << "\"cat\":\"" << kCatNames[r.cat] << "\",\"ph\":\"" << r.ph
        << "\",\"ts\":" << fmtTs(r.ts) << ",\"pid\":0,\"tid\":" << tid(r.track);
    switch (r.ph) {
      case 'B':
        ++syncDepth[r.track];
        if (r.aux != kNoAux) out << ",\"args\":{\"v\":" << r.aux << "}";
        break;
      case 'E':
        if (syncDepth[r.track] > 0) --syncDepth[r.track];
        break;
      case 'i':
        out << ",\"s\":\"t\"";
        if (r.aux != kNoAux) out << ",\"args\":{\"v\":" << r.aux << "}";
        break;
      case 'b': {
        auto& open = asyncOpen[{r.cat, r.name, r.aux}];
        open.first = r.track;
        ++open.second;
        out << ",\"id\":" << r.aux;
        break;
      }
      case 'e': {
        auto& open = asyncOpen[{r.cat, r.name, r.aux}];
        if (open.second > 0) --open.second;
        out << ",\"id\":" << r.aux;
        break;
      }
    }
    out << "}";
  }

  // Auto-close whatever is still open, at the final timestamp.
  for (const auto& [track, depth] : syncDepth) {
    for (std::size_t i = 0; i < depth; ++i)
      out << ",\n{\"ph\":\"E\",\"ts\":" << fmtTs(endTs)
          << ",\"pid\":0,\"tid\":" << tid(track) << "}";
  }
  for (const auto& [key, open] : asyncOpen) {
    const auto& [cat, name, id] = key;
    for (std::size_t i = 0; i < open.second; ++i)
      out << ",\n{\"name\":\"" << escape(name) << "\",\"cat\":\""
          << kCatNames[cat] << "\",\"ph\":\"e\",\"ts\":" << fmtTs(endTs)
          << ",\"pid\":0,\"tid\":" << tid(open.first) << ",\"id\":" << id
          << "}";
  }
  out << "\n]}\n";
}

std::string Tracer::toChromeJson() const {
  std::ostringstream os;
  writeChromeJson(os);
  return os.str();
}

}  // namespace diva::obs
