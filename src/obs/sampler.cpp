#include "obs/sampler.hpp"

#include <cstdio>
#include <ostream>

#include "diva/machine.hpp"
#include "support/check.hpp"

namespace diva::obs {

void Sampler::configure(sim::Engine& engine, double intervalUs) {
  DIVA_CHECK_MSG(intervalUs > 0.0, "sample interval must be positive");
  engine_ = &engine;
  intervalUs_ = intervalUs;
}

void Sampler::bindMachine(const Machine& m) {
  DIVA_CHECK_MSG(enabled(), "Sampler::configure first");
  machine_ = &m;
  const Machine* mp = &m;
  auto& r = registry_;
  r.gauge("engine/events_processed",
          [mp] { return static_cast<double>(mp->engine.eventsProcessed()); });
  r.gauge("engine/pending_events",
          [mp] { return static_cast<double>(mp->engine.pendingEvents()); });
  // Queue occupancy tiers (sim/event_queue.hpp): ring events, sorted
  // front runs, far-future overflow groups.
  r.gauge("engine/queue_ring_events", [mp] {
    return static_cast<double>(mp->engine.queueOccupancy().ringEvents);
  });
  r.gauge("engine/queue_front_runs", [mp] {
    return static_cast<double>(mp->engine.queueOccupancy().frontRuns);
  });
  r.gauge("engine/queue_overflow_groups", [mp] {
    return static_cast<double>(mp->engine.queueOccupancy().overflowGroups);
  });
  r.gauge("net/messages_sent",
          [mp] { return static_cast<double>(mp->net.messagesSent()); });
  r.gauge("net/live_nodes",
          [mp] { return static_cast<double>(mp->net.numLiveNodes()); });
  r.gauge("net/members",
          [mp] { return static_cast<double>(mp->net.numMembers()); });
  // Instantaneous availability: live members / members.
  r.gauge("net/availability", [mp] {
    const int members = mp->net.numMembers();
    return members == 0 ? 0.0
                        : static_cast<double>(mp->net.numLiveNodes()) / members;
  });
  r.gauge("net/rerouted_flights",
          [mp] { return static_cast<double>(mp->net.reroutedFlights()); });
  r.gauge("net/parked_flights",
          [mp] { return static_cast<double>(mp->net.parkedFlights()); });
  r.gauge("net/flights_in_limbo",
          [mp] { return static_cast<double>(mp->net.flightsInLimbo()); });
  r.gauge("net/reconfig_epoch",
          [mp] { return static_cast<double>(mp->net.reconfigEpoch()); });
  // Link aggregates; the per-link heatmap rows are handled in sample()
  // because the link set itself changes across reconfigurations.
  r.gauge("links/congestion_messages", [mp] {
    return static_cast<double>(mp->stats.links.congestionMessages());
  });
  r.gauge("links/congestion_bytes", [mp] {
    return static_cast<double>(mp->stats.links.congestionBytes());
  });
  r.gauge("links/total_messages", [mp] {
    return static_cast<double>(mp->stats.links.totalMessages());
  });
  r.gauge("links/total_bytes", [mp] {
    return static_cast<double>(mp->stats.links.totalBytes());
  });
  const Stats::Counters* ops = &m.stats.ops;
  r.counter("ops/reads", &ops->reads);
  r.counter("ops/read_hits", &ops->readHits);
  r.counter("ops/writes", &ops->writes);
  r.counter("ops/invalidations", &ops->invalidations);
  r.counter("ops/locks", &ops->locks);
  r.counter("ops/failed_ops", &ops->failedOps);
  r.counter("ops/retried_ops", &ops->retriedOps);
  r.counter("ops/repaired_vars", &ops->repairedVars);
  r.counter("ops/recovery_messages", &ops->recoveryMessages);
  r.counter("ops/recovery_bytes", &ops->recoveryBytes);
  // Migration traffic over time: the counters the reconfiguration
  // subsystem charges (docs/faults.md "Reconfiguration").
  r.counter("ops/migrated_vars", &ops->migratedVars);
  r.counter("ops/migration_messages", &ops->migrationMessages);
  r.counter("ops/migration_bytes", &ops->migrationBytes);
  r.counter("ops/forwarded_ops", &ops->forwardedOps);
}

void Sampler::phaseBegin(int phase) {
  DIVA_CHECK_MSG(enabled(), "Sampler::configure first");
  phase_ = phase;
  active_ = true;
  sample();
  engine_->scheduleAt(engine_->now() + intervalUs_, [this] { tick(); });
}

void Sampler::phaseEnd() {
  if (!active_) return;
  active_ = false;
  sample();
}

void Sampler::tick() {
  if (!active_) return;
  // The model has drained: this tick is the only thing that was left in
  // the queue. Stop the chain so the sampler never extends a phase by
  // more than one interval or keeps the engine spinning.
  if (engine_->pendingEvents() == 0) return;
  sample();
  engine_->scheduleAt(engine_->now() + intervalUs_, [this] { tick(); });
}

void Sampler::sample() {
  ++samples_;
  const double t = engine_->now();
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    if (!registry_.isNumeric(i)) continue;
    rows_.push_back(Row{t, phase_, registry_.nameAt(i), registry_.numberAt(i)});
  }
  if (machine_ == nullptr) return;
  // Per-link congestion snapshot, heatmap-ready: one row per live
  // directed link of the *current* topology, named by its endpoints so
  // rows stay comparable across reconfigurations (slot numbers remap).
  const net::Topology& topo = machine_->net.topology();
  const mesh::LinkStats& links = machine_->stats.links;
  char name[48];
  for (net::NodeId n = 0; n < topo.numNodes(); ++n) {
    for (int dir = 0; dir < topo.degree(); ++dir) {
      const net::NodeId nb = topo.neighbor(n, dir);
      if (nb < 0) continue;
      const int link = topo.linkIndex(n, dir);
      std::snprintf(name, sizeof name, "link/%d>%d/messages", n, nb);
      rows_.push_back(Row{t, phase_, name,
                          static_cast<double>(links.linkMessages(link))});
    }
  }
}

void Sampler::writeCsv(std::ostream& out) const {
  out << "time_us,phase,metric,value\n";
  char ts[32];
  for (const Row& r : rows_) {
    std::snprintf(ts, sizeof ts, "%.3f", r.t);
    out << ts << ',' << r.phase << ',' << r.metric << ','
        << jsonNumber(r.value) << '\n';
  }
}

void Sampler::writeJson(std::ostream& out) const {
  out << "[";
  char ts[32];
  bool first = true;
  for (const Row& r : rows_) {
    std::snprintf(ts, sizeof ts, "%.3f", r.t);
    out << (first ? "\n" : ",\n") << "{\"time_us\":" << ts
        << ",\"phase\":" << r.phase << ",\"metric\":\"" << r.metric
        << "\",\"value\":" << jsonNumber(r.value) << "}";
    first = false;
  }
  out << "\n]\n";
}

}  // namespace diva::obs
