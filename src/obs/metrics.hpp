#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace diva::serve {
class LatencyHistogram;
}

namespace diva::obs {

/// Unified, ordered registry of named metrics.
///
/// Names are slash-separated paths ("ops/reads", "phase/0/wall_us");
/// the JSON writer folds the path segments into nested objects (and
/// consecutive integer segments into arrays). Entries come in four
/// flavours:
///  - counter: a borrowed `const uint64_t*` read at sample time — the
///    existing Stats/LinkStats counters register their own storage, no
///    double bookkeeping;
///  - gauge: an arbitrary `double()` callback read at sample time;
///  - value: a number captured at registration (report snapshots);
///  - text: a string captured at registration (names, labels).
/// histogram() is a convenience that expands a serve::LatencyHistogram
/// into count/p50/p90/p99/p999/max/mean gauges.
///
/// Registration is cold-path and may allocate; reading is not required
/// to. mark()/truncate() scope registrations whose referents have phase
/// lifetime (the open-loop in-flight gauge lives exactly one phase).
class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { Counter, Gauge, Value, Text };
  using GaugeFn = std::function<double()>;

  void counter(std::string name, const std::uint64_t* v) {
    entries_.push_back({std::move(name), {}, nullptr, v, 0.0, Kind::Counter});
  }
  void gauge(std::string name, GaugeFn fn) {
    entries_.push_back(
        {std::move(name), {}, std::move(fn), nullptr, 0.0, Kind::Gauge});
  }
  void value(std::string name, double v) {
    entries_.push_back({std::move(name), {}, nullptr, nullptr, v, Kind::Value});
  }
  void text(std::string name, std::string v) {
    entries_.push_back(
        {std::move(name), std::move(v), nullptr, nullptr, 0.0, Kind::Text});
  }
  void histogram(std::string name, const serve::LatencyHistogram* h);

  std::size_t size() const { return entries_.size(); }
  /// Scoped registration: remember the current size, register
  /// phase-lifetime entries, then truncate back before their referents
  /// die.
  std::size_t mark() const { return entries_.size(); }
  void truncate(std::size_t mark) { entries_.resize(mark); }
  void clear() { entries_.clear(); }

  const std::string& nameAt(std::size_t i) const { return entries_[i].name; }
  Kind kindAt(std::size_t i) const { return entries_[i].kind; }
  bool isNumeric(std::size_t i) const { return entries_[i].kind != Kind::Text; }
  double numberAt(std::size_t i) const {
    const Entry& e = entries_[i];
    switch (e.kind) {
      case Kind::Counter: return static_cast<double>(*e.ptr);
      case Kind::Gauge: return e.fn();
      default: return e.num;
    }
  }
  const std::string& textAt(std::size_t i) const { return entries_[i].str; }

  /// Render the registry as nested JSON, reading counters/gauges now.
  /// Deterministic: insertion order, fixed number formatting (integers
  /// without a decimal point, else shortest %.10g).
  void writeJson(std::ostream& out) const;
  std::string toJson() const;

 private:
  struct Entry {
    std::string name;
    std::string str;
    GaugeFn fn;
    const std::uint64_t* ptr;
    double num;
    Kind kind;
  };
  std::vector<Entry> entries_;
};

/// Deterministic JSON number formatting shared by the registry, the
/// sampler and the trace writer: integral values print as integers,
/// everything else as %.10g.
std::string jsonNumber(double v);

}  // namespace diva::obs
