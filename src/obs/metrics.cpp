#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "serve/latency_histogram.hpp"
#include "support/check.hpp"

namespace diva::obs {

std::string jsonNumber(double v) {
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

void MetricsRegistry::histogram(std::string name,
                                const serve::LatencyHistogram* h) {
  gauge(name + "/count", [h] { return static_cast<double>(h->count()); });
  gauge(name + "/p50", [h] { return h->p50(); });
  gauge(name + "/p90", [h] { return h->p90(); });
  gauge(name + "/p99", [h] { return h->p99(); });
  gauge(name + "/p999", [h] { return h->p999(); });
  gauge(name + "/max", [h] { return h->max(); });
  gauge(name + "/mean", [h] { return h->mean(); });
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string r;
  r.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') r += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    r += c;
  }
  return r;
}

/// One (path-split) registry entry flattened for the tree walk.
struct Flat {
  std::vector<std::string> path;
  std::size_t index;  ///< into the registry
};

/// Emit the subtree of entries[lo..hi) that share path[..depth), which
/// is already grouped (registration order preserved; a re-opened group
/// name would emit a duplicate key, so register groups contiguously).
void emitGroup(std::ostream& out, const MetricsRegistry& reg,
               const std::vector<Flat>& flats, std::size_t lo, std::size_t hi,
               std::size_t depth) {
  // Array detection: every child segment at this depth is the integer
  // run 0,1,2,... in order.
  bool isArray = hi > lo;
  std::size_t next = 0;
  for (std::size_t i = lo; i < hi && isArray;) {
    const std::string& seg = flats[i].path[depth];
    if (seg != std::to_string(next)) isArray = false;
    std::size_t j = i;
    while (j < hi && flats[j].path[depth] == seg) ++j;
    i = j;
    ++next;
  }
  out << (isArray ? '[' : '{');
  bool first = true;
  for (std::size_t i = lo; i < hi;) {
    const std::string& seg = flats[i].path[depth];
    std::size_t j = i;
    while (j < hi && flats[j].path[depth] == seg) ++j;
    if (!first) out << ',';
    first = false;
    if (!isArray) out << '"' << jsonEscape(seg) << "\":";
    if (j == i + 1 && flats[i].path.size() == depth + 1) {
      const std::size_t idx = flats[i].index;
      if (reg.isNumeric(idx))
        out << jsonNumber(reg.numberAt(idx));
      else
        out << '"' << jsonEscape(reg.textAt(idx)) << '"';
    } else {
      emitGroup(out, reg, flats, i, j, depth + 1);
    }
    i = j;
  }
  out << (isArray ? ']' : '}');
}

}  // namespace

void MetricsRegistry::writeJson(std::ostream& out) const {
  std::vector<Flat> flats;
  flats.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Flat f;
    f.index = i;
    const std::string& name = entries_[i].name;
    std::size_t pos = 0;
    while (pos <= name.size()) {
      std::size_t slash = name.find('/', pos);
      if (slash == std::string::npos) slash = name.size();
      f.path.push_back(name.substr(pos, slash - pos));
      pos = slash + 1;
    }
    DIVA_CHECK_MSG(!f.path.empty(), "empty metric name");
    flats.push_back(std::move(f));
  }
  if (flats.empty()) {
    out << "{}";
    return;
  }
  emitGroup(out, *this, flats, 0, flats.size(), 0);
}

std::string MetricsRegistry::toJson() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

}  // namespace diva::obs
