#include "serve/arrival.hpp"

#include <bit>

#include "support/check.hpp"

namespace diva::serve {

namespace {

/// Stream label for SplitMix64::split — distinct from the workload's
/// placement/access labels so arrival timing and access content of the
/// same (seed, phase, node) are independent streams.
constexpr std::uint64_t kArrivalStream = 0xa1112a7ull;  // "arriva"

/// ln 2 to double precision (0x1.62e42fefa39efp-1) — a constant, not a
/// libm call, so it is the same bit pattern everywhere.
constexpr double kLn2 = 0.6931471805599453;

/// One exponential inter-arrival draw with the given mean, inverse-CDF:
/// -ln(u) with u uniform in (0, 1]. uniform() returns [0, 1), so 1 - u
/// lies in (0, 1] and the log argument is never zero. The extreme draw
/// (u = 2^-53) gives ≈ 36.7 means — a long but finite gap.
double exponential(support::SplitMix64& rng, double meanUs) {
  return -portableLog(1.0 - rng.uniform()) * meanUs;
}

}  // namespace

double portableLog(double x) {
  DIVA_CHECK_MSG(x > 0.0 && x < 1e300, "portableLog: argument must be in (0, 1e300) "
                                       "(got " << x << ")");
  // Decompose x = m · 2^e with m ∈ [1, 2) straight from the IEEE bits
  // (x > 0 rules out sign; subnormals cannot reach here because the
  // smallest argument we ever see is 2^-53).
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffull) |
                                   0x3ff0000000000000ull);
  // Re-center m into [√½, √2) so |t| ≤ 0.1716 below: halving the odd
  // octave is exact (power of two), and the threshold constant only
  // decides which exact branch runs — determinism is unaffected.
  if (m > 1.4142135623730951) {
    m *= 0.5;
    ++e;
  }
  // ln m = 2 atanh(t) with t = (m-1)/(m+1): the odd series
  // 2t (1 + t²/3 + t⁴/5 + …) truncated at a fixed 10 terms; with
  // t² ≤ 0.0295 the first dropped term is below 2^-100 of the sum, so
  // the truncation never shows in a double.
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;
  double sum = 0.0;
  for (int k = 9; k >= 1; --k) {
    sum = t2 * (1.0 / static_cast<double>(2 * k + 1) + sum);
  }
  return static_cast<double>(e) * kLn2 + 2.0 * t * (1.0 + sum);
}

const char* arrivalKindName(ArrivalSpec::Kind kind) {
  switch (kind) {
    case ArrivalSpec::Kind::None: return "none";
    case ArrivalSpec::Kind::Fixed: return "fixed";
    case ArrivalSpec::Kind::Poisson: return "poisson";
    case ArrivalSpec::Kind::Burst: return "burst";
  }
  return "?";
}

void ArrivalSpec::validate(const char* context) const {
  if (kind == Kind::None) {
    DIVA_CHECK_MSG(ratePerSec == 0.0 && burstOnUs == 0.0 && burstOffUs == 0.0,
                   context << ": closed-loop phases must not set arrival parameters");
    return;
  }
  DIVA_CHECK_MSG(ratePerSec > 0.0, context << ": arrival rate must be positive (got "
                                           << ratePerSec << ")");
  if (kind == Kind::Burst) {
    DIVA_CHECK_MSG(burstOnUs > 0.0 && burstOffUs > 0.0,
                   context << ": burst on/off windows must be positive (got "
                           << burstOnUs << "/" << burstOffUs << ")");
  } else {
    DIVA_CHECK_MSG(burstOnUs == 0.0 && burstOffUs == 0.0,
                   context << ": on/off windows only apply to burst arrivals");
  }
}

std::vector<double> generateArrivals(const ArrivalSpec& spec, int count, int procs,
                                     std::uint64_t seed, int phase, net::NodeId node) {
  spec.validate("generateArrivals");
  DIVA_CHECK_MSG(spec.kind != ArrivalSpec::Kind::None,
                 "generateArrivals: closed-loop phases have no schedule");
  DIVA_CHECK_MSG(count >= 0 && procs >= 1 && node >= 0 && node < procs,
                 "generateArrivals: bad count/procs/node ("
                     << count << "/" << procs << "/" << node << ")");
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(count));
  // Each node carries 1/procs of the aggregate rate.
  const double meanIntervalUs =
      1e6 * static_cast<double>(procs) / spec.ratePerSec;
  switch (spec.kind) {
    case ArrivalSpec::Kind::None:
      break;
    case ArrivalSpec::Kind::Fixed: {
      // Aggregate arrivals exactly 1/rate apart, round-robin across
      // nodes: node n fires at (k·procs + n + 1) / rate — a perfectly
      // paced deterministic stream with no synchronized bursts.
      const double tickUs = 1e6 / spec.ratePerSec;
      for (int k = 0; k < count; ++k) {
        times.push_back(
            (static_cast<double>(k) * static_cast<double>(procs) +
             static_cast<double>(node) + 1.0) *
            tickUs);
      }
      break;
    }
    case ArrivalSpec::Kind::Poisson: {
      support::SplitMix64 rng = support::SplitMix64(seed)
                                    .split(kArrivalStream)
                                    .split(static_cast<std::uint64_t>(phase))
                                    .split(static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(node)));
      double t = 0.0;
      for (int k = 0; k < count; ++k) {
        t += exponential(rng, meanIntervalUs);
        times.push_back(t);
      }
      break;
    }
    case ArrivalSpec::Kind::Burst: {
      // Poisson at the full in-burst rate on the "active time" axis,
      // then mapped onto the wall clock by skipping the deterministic
      // off-windows: active time a lands at
      // wall = ⌊a/on⌋·(on+off) + (a mod on).
      support::SplitMix64 rng = support::SplitMix64(seed)
                                    .split(kArrivalStream)
                                    .split(static_cast<std::uint64_t>(phase))
                                    .split(static_cast<std::uint64_t>(
                                        static_cast<std::uint32_t>(node)));
      double active = 0.0;
      for (int k = 0; k < count; ++k) {
        active += exponential(rng, meanIntervalUs);
        const double windows = static_cast<double>(
            static_cast<std::uint64_t>(active / spec.burstOnUs));
        times.push_back(windows * (spec.burstOnUs + spec.burstOffUs) +
                        (active - windows * spec.burstOnUs));
      }
      break;
    }
  }
  // Strict ascent: exponential draws can be 0 at double precision; nudge
  // duplicates apart so per-node arrivals stay strictly ordered (the
  // driver relies on FIFO processing order within a node).
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) times[i] = times[i - 1] + 1e-9;
  }
  return times;
}

}  // namespace diva::serve
