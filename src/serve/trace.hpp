#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"

namespace diva::serve {

// ---------------------------------------------------------------------------
// Request-trace text format — the open-loop twin of the graph and
// scenario formats (docs/serving.md), so recorded or externally
// generated request streams can drive either strategy:
//
//   # comment — '#' starts a comment anywhere; blank lines ignored
//   trace <name>         (optional; defaults to "file")
//   objects <N> [bytes]  (optional; object-id space and payload size —
//                         when omitted, N is derived as max id + 1 and
//                         the payload defaults to 64 simulated bytes)
//   <t> <node> <op> <object>
//                        (one line per request: arrival time in µs —
//                         non-decreasing over the file — issuing node,
//                         op 'r' or 'w', object id in [0, N))
//
// Like its siblings: line-numbered fail-fast errors, trailing tokens
// rejected, and formatTrace(parseTrace(text)) round-trips exactly.
// ---------------------------------------------------------------------------

/// One replayed request. Arrival times are open-loop injection instants
/// relative to the enclosing phase's start.
struct TraceRequest {
  double timeUs = 0.0;
  net::NodeId node = 0;
  bool isRead = true;
  int object = 0;

  bool operator==(const TraceRequest&) const = default;
};

/// A parsed request trace: name, object-id space, and the requests in
/// file (= time) order.
struct Trace {
  std::string name = "file";
  int numObjects = 0;
  std::uint64_t objectBytes = 64;
  std::vector<TraceRequest> requests;

  bool operator==(const Trace&) const = default;
};

/// Parse the text format; throws CheckError with a line number on errors.
Trace parseTrace(const std::string& text);

/// Read a trace file from disk; throws CheckError (prefixed with the
/// path) if unreadable or malformed.
Trace loadTraceFile(const std::string& path);

/// Serialize to the text format (parseTrace round-trips it exactly).
std::string formatTrace(const Trace& trace);

}  // namespace diva::serve
