#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "support/rng.hpp"

namespace diva::serve {

// ---------------------------------------------------------------------------
// Open-loop arrival schedules (docs/serving.md).
//
// Closed-loop drivers issue the next request when the previous one
// completes, so a slow system quietly slows its own offered load down.
// Open-loop serving inverts that: requests arrive on their own schedule
// whether or not the system keeps up, which is what exposes queueing
// delay and the saturation knee. All injection times are generated UP
// FRONT from split RNG streams — a pure function of (spec, seed, phase,
// node) — so the offered load is bit-deterministic and completely
// independent of service progress.
// ---------------------------------------------------------------------------

/// One phase's arrival process. `ratePerSec` is the AGGREGATE offered
/// load across the whole machine (requests per simulated second); every
/// node carries an equal 1/procs share of it.
struct ArrivalSpec {
  enum class Kind : std::uint8_t {
    None,     ///< closed loop (the pre-serve driver behavior)
    Fixed,    ///< deterministic rate: aggregate arrivals exactly 1/rate apart
    Poisson,  ///< exponential inter-arrivals via inverse CDF (portableLog)
    Burst,    ///< on/off-modulated Poisson: rate during `onUs`, silence for `offUs`
  };

  Kind kind = Kind::None;
  double ratePerSec = 0.0;  ///< aggregate offered load (requests / simulated s)
  double burstOnUs = 0.0;   ///< Burst: length of each active window
  double burstOffUs = 0.0;  ///< Burst: length of each silent window

  bool open() const { return kind != Kind::None; }
  /// Throws CheckError on nonsensical parameters (context names the caller).
  void validate(const char* context) const;

  bool operator==(const ArrivalSpec&) const = default;
};

/// Scenario-format token for a kind ("none"/"fixed"/"poisson"/"burst").
const char* arrivalKindName(ArrivalSpec::Kind kind);

/// Natural logarithm by exponent extraction + a fixed-length atanh series
/// — nothing but IEEE +,-,*,/ (all correctly rounded), so the result is
/// bit-identical on every platform and libm. Accurate to ~1 ulp over
/// (0, 1e300]; requires x > 0 and finite. This is what lets committed
/// open-loop scenarios with Poisson arrivals carry golden trace hashes.
double portableLog(double x);

/// The injection times (µs offsets from the phase start, strictly
/// ascending) of node `node`'s `count` requests under `spec`, on a
/// `procs`-node machine. Randomized kinds draw from the dedicated
/// arrival stream of (seed, phase, node) — split off the same master
/// seed as the workload access streams but under a distinct stream
/// label, so arrival timing can never correlate with access content.
std::vector<double> generateArrivals(const ArrivalSpec& spec, int count, int procs,
                                     std::uint64_t seed, int phase, net::NodeId node);

}  // namespace diva::serve
