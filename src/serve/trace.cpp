#include "serve/trace.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace diva::serve {

namespace {

/// Strict one-token extraction, mirroring the scenario parser: the whole
/// token must consume as a T, and unsigned/id fields reject negatives.
template <typename T>
T parseValue(std::istringstream& ls, int lineNo, const char* what) {
  std::string tok;
  DIVA_CHECK_MSG(static_cast<bool>(ls >> tok),
                 "trace file line " << lineNo << ": missing " << what);
  std::istringstream ts(tok);
  T v{};
  DIVA_CHECK_MSG(static_cast<bool>(ts >> v) && ts.eof(),
                 "trace file line " << lineNo << ": malformed " << what << " '" << tok
                                    << "'");
  return v;
}

void rejectTrailing(std::istringstream& ls, int lineNo, const char* what) {
  std::string extra;
  DIVA_CHECK_MSG(!(ls >> extra), "trace file line " << lineNo
                                                    << ": unexpected trailing token '"
                                                    << extra << "' after " << what);
}

}  // namespace

Trace parseTrace(const std::string& text) {
  Trace trace;
  bool haveObjects = false;
  int maxObject = -1;
  double lastTime = 0.0;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream ls(line.substr(0, line.find('#')));
    std::string word;
    if (!(ls >> word)) continue;
    if (word == "trace") {
      DIVA_CHECK_MSG(static_cast<bool>(ls >> trace.name),
                     "trace file line " << lineNo << ": 'trace' needs a name");
      rejectTrailing(ls, lineNo, "'trace'");
    } else if (word == "objects") {
      DIVA_CHECK_MSG(!haveObjects,
                     "trace file line " << lineNo << ": duplicate 'objects' line");
      haveObjects = true;
      trace.numObjects = parseValue<int>(ls, lineNo, "object count");
      DIVA_CHECK_MSG(trace.numObjects >= 1,
                     "trace file line " << lineNo << ": object count must be positive");
      if (!ls.eof() &&
          (ls >> std::ws, ls.peek() != std::istringstream::traits_type::eof())) {
        trace.objectBytes = parseValue<std::uint64_t>(ls, lineNo, "object size");
        DIVA_CHECK_MSG(trace.objectBytes >= 1,
                       "trace file line " << lineNo << ": object size must be positive");
      }
      rejectTrailing(ls, lineNo, "'objects'");
    } else {
      // A request line: <t> <node> <r|w> <object>. The first token was
      // already consumed as `word` — re-parse it as the arrival time.
      std::istringstream ts(word);
      TraceRequest req;
      DIVA_CHECK_MSG(static_cast<bool>(ts >> req.timeUs) && ts.eof(),
                     "trace file line " << lineNo << ": expected a request line "
                                           "'<t> <node> <r|w> <object>' or a directive, "
                                           "got '" << word << "'");
      DIVA_CHECK_MSG(req.timeUs >= 0.0,
                     "trace file line " << lineNo << ": arrival time must be >= 0");
      DIVA_CHECK_MSG(req.timeUs >= lastTime,
                     "trace file line " << lineNo << ": arrival times must be "
                                           "non-decreasing (" << req.timeUs << " after "
                                           << lastTime << ")");
      lastTime = req.timeUs;
      req.node = parseValue<net::NodeId>(ls, lineNo, "node id");
      DIVA_CHECK_MSG(req.node >= 0, "trace file line " << lineNo
                                                       << ": node id must be >= 0");
      std::string op;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> op),
                     "trace file line " << lineNo << ": missing op ('r' or 'w')");
      DIVA_CHECK_MSG(op == "r" || op == "w",
                     "trace file line " << lineNo << ": op must be 'r' or 'w' (got '"
                                        << op << "')");
      req.isRead = op == "r";
      req.object = parseValue<int>(ls, lineNo, "object id");
      DIVA_CHECK_MSG(req.object >= 0, "trace file line " << lineNo
                                                         << ": object id must be >= 0");
      if (req.object > maxObject) maxObject = req.object;
      rejectTrailing(ls, lineNo, "the request");
      trace.requests.push_back(req);
    }
  }
  if (haveObjects) {
    DIVA_CHECK_MSG(maxObject < trace.numObjects,
                   "trace file: request object id " << maxObject
                                                    << " outside declared population "
                                                    << trace.numObjects);
  } else {
    trace.numObjects = maxObject + 1;
  }
  DIVA_CHECK_MSG(!trace.requests.empty(), "trace file has no request lines");
  return trace;
}

Trace loadTraceFile(const std::string& path) {
  std::ifstream in(path);
  DIVA_CHECK_MSG(in.good(), "cannot open trace file '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parseTrace(text.str());
  } catch (const support::CheckError& e) {
    throw support::CheckError(path + ": " + e.what());
  }
}

std::string formatTrace(const Trace& trace) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "trace " << trace.name << "\n";
  out << "objects " << trace.numObjects << " " << trace.objectBytes << "\n";
  for (const TraceRequest& req : trace.requests) {
    out << req.timeUs << " " << req.node << " " << (req.isRead ? "r" : "w") << " "
        << req.object << "\n";
  }
  return out.str();
}

}  // namespace diva::serve
