#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace diva::serve {

/// Fixed-bucket log-spaced latency histogram.
///
/// 2^kSubBits buckets per octave (power of two) over [2^kMinExp,
/// 2^kMaxExp) µs, plus an underflow and an overflow bucket — all storage
/// is a flat std::array, so recording is index arithmetic into fixed
/// memory: zero heap allocation on the hot path (proven by the
/// counting-allocator harness in tests/alloc_test.cpp), and merging two
/// histograms is element-wise addition. The bucket index comes straight
/// from the IEEE exponent and top mantissa bits — no libm call — so
/// bucketing is bit-deterministic everywhere.
///
/// Sub-buckets split each octave linearly (the mantissa is linear), so a
/// bucket spans 1/8 of its octave — at most 12.5% relative width.
/// Quantiles report the bucket's UPPER bound: conservative by at most
/// one bucket width, which is the right direction for SLO gates.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;            ///< 8 sub-buckets per octave
  static constexpr int kMinExp = -6;            ///< 2^-6 µs ≈ 15.6 ns
  static constexpr int kMaxExp = 26;            ///< 2^26 µs ≈ 67 s
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSub;

  /// Record one latency (µs). Values below the range (including 0 — a
  /// same-instant completion) land in the underflow bucket, values at or
  /// above 2^kMaxExp in the overflow bucket; exact min/max/sum are
  /// tracked alongside so the extremes and the mean stay precise.
  void record(double us) {
    ++count_;
    sum_ += us;
    if (us < min_) min_ = us;
    if (us > max_) max_ = us;
    ++bucket_[indexOf(us)];
  }

  /// Element-wise merge (per-phase histograms into the run total).
  void merge(const LatencyHistogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    for (std::size_t i = 0; i < bucket_.size(); ++i) bucket_[i] += other.bucket_[i];
  }

  /// The q-quantile (q ∈ [0, 1]) as the upper bound of the bucket that
  /// holds the ⌈q·count⌉-th smallest sample. Returns 0 on an empty
  /// histogram; q = 0 returns the exact minimum and samples that landed
  /// in the overflow bucket report the exact maximum (both tracked
  /// precisely), so the tails never silently saturate.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min_;
    // ⌈q·count⌉ without libm: integer arithmetic on the scaled target.
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (static_cast<double>(target) < q * static_cast<double>(count_)) ++target;
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bucket_.size(); ++i) {
      seen += bucket_[i];
      if (seen >= target) {
        const double hi = upperBound(static_cast<int>(i));
        // Clamp to the exact extremes: the top occupied bucket's bound
        // can overshoot max_, and overflow samples have no bound at all.
        return hi > max_ ? max_ : hi;
      }
    }
    return max_;
  }

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  std::uint64_t count() const { return count_; }
  std::uint64_t overflowCount() const { return bucket_[bucket_.size() - 1]; }
  std::uint64_t underflowCount() const { return bucket_[0]; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double sum() const { return sum_; }

  void reset() { *this = LatencyHistogram{}; }

  /// Bucket index of a latency: 0 = underflow, 1..kBuckets = log-spaced
  /// range buckets, kBuckets+1 = overflow. Exposed for tests.
  static int indexOf(double us) {
    if (!(us >= kMinValue())) return 0;  // also catches NaN and negatives
    if (us >= kMaxValue()) return kBuckets + 1;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(us);
    const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    const int sub = static_cast<int>((bits >> (52 - kSubBits)) & (kSub - 1));
    return (exp - kMinExp) * kSub + sub + 1;
  }

  /// Exclusive upper bound of a bucket (µs); +exact max for overflow.
  static double upperBound(int index) {
    if (index <= 0) return kMinValue();
    if (index > kBuckets) return 1e308;  // overflow: callers clamp to max()
    const int exp = (index - 1) / kSub + kMinExp;
    const int sub = (index - 1) % kSub + 1;
    return scalb2(exp) * (1.0 + static_cast<double>(sub) / kSub);
  }

  /// Inclusive lower bound of a bucket (µs).
  static double lowerBound(int index) {
    if (index <= 0) return 0.0;
    if (index > kBuckets) return kMaxValue();
    const int exp = (index - 1) / kSub + kMinExp;
    const int sub = (index - 1) % kSub;
    return scalb2(exp) * (1.0 + static_cast<double>(sub) / kSub);
  }

  static constexpr double kMinValue() { return scalb2(kMinExp); }
  static constexpr double kMaxValue() { return scalb2(kMaxExp); }

 private:
  /// 2^e for the small exponent range we use, without libm.
  static constexpr double scalb2(int e) {
    double v = 1.0;
    for (int i = 0; i < (e < 0 ? -e : e); ++i) v *= 2.0;
    return e < 0 ? 1.0 / v : v;
  }

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 1e308;
  double max_ = -1e308;
  std::array<std::uint64_t, kBuckets + 2> bucket_{};  ///< [under, range..., over]
};

}  // namespace diva::serve
