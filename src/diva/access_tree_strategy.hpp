#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <memory>

#include "diva/cache.hpp"
#include "diva/stats.hpp"
#include "diva/strategy.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/sync.hpp"
#include "support/bloom.hpp"

namespace diva {

/// The access tree strategy (paper §2, based on Maggs et al., FOCS'97).
///
/// Every variable owns an *access tree* — a copy of the topology's
/// hierarchical cluster tree, embedded into the network (each tree node
/// is hosted by a processor of its cluster). The processors holding a
/// copy of the variable always form a connected component of the access
/// tree:
///
///  * READ: the requesting leaf climbs the tree to the nearest node
///    holding a copy; the value returns along the same tree path and a
///    copy is deposited on every tree node of the path.
///  * WRITE: the new value travels to the nearest copy; an invalidation
///    multicast (acknowledged) destroys every other copy; the updated
///    value returns along the path, again depositing copies.
///
/// Data tracking uses one state per (variable, tree node):
///   Copy          — this tree node holds a copy;
///   Down(child)   — no copy here, the copy component lies in `child`'s
///                   subtree (maintained on the whole path from the root
///                   to the component's topmost node);
///   Up (default)  — no information, ask the parent.
/// The component's topmost node is an ancestor of all copy holders, so
/// "climb while Up, then descend along Down to the first Copy" always
/// finds the nearest copy in the tree metric.
///
/// All tree-edge messages travel along the topology's deterministic
/// shortest paths between the host processors; tree nodes co-hosted on
/// one processor communicate by (cheap) local calls, so flatter trees
/// trade congestion for fewer startups — the arity/leaf-size parameters
/// below are the paper's ℓ-k-ary variants.
class AccessTreeStrategy final : public Strategy {
 public:
  struct Params {
    int arity = 4;                        ///< ℓ ∈ {2, 4, 16}
    int leafSize = 1;                     ///< k (1 = pure ℓ-ary)
    net::EmbeddingKind embedding = net::EmbeddingKind::Regular;
    std::uint64_t seed = 1;
  };

  AccessTreeStrategy(net::Network& net, Stats& stats, std::vector<NodeCache>& caches,
                     Params params);

  std::string name() const override;
  sim::Task<Value> read(NodeId p, VarId x) override;
  sim::Task<void> write(NodeId p, VarId x, Value v) override;
  void registerVarFree(VarId x, NodeId owner, Value init) override;
  sim::Task<void> registerVar(VarId x, NodeId owner, Value init) override;
  void destroyVarFree(VarId x) override;
  Value peek(VarId x) const override;
  void checkInvariants(VarId x) const override;
  void handleMessage(net::Message&& msg) override;

  /// The cluster tree every access tree copies (built from the machine
  /// topology's decompose()). After a reconfiguration epoch this is the
  /// *current* tree — variables still parked on a predecessor tree keep
  /// their own context until they migrate (see onReconfig).
  const net::ClusterTree& tree() const {
    return *ctxs_[static_cast<std::size_t>(cur_)].tree;
  }
  const Params& params() const { return params_; }

  /// Try to evict `x` from processor `p`'s cache if the tree invariants
  /// allow it (the copy is a fringe node of its component and not the
  /// last copy). Returns true if evicted.
  bool tryEvict(NodeId p, VarId x) override;

  /// Sparse subtree-copy hint: false means tree node `treeNode`'s subtree
  /// definitely holds no copy of `x`; true means it may. One counting
  /// Bloom filter per tree node (constant memory per node regardless of
  /// the variable population), maintained at every copy birth/death on
  /// the node's root path — pure host-local bookkeeping, so enabling or
  /// querying it never changes protocol traffic. The no-false-negative
  /// side is an invariant checked at quiescence (checkInvariants).
  /// `treeNode` is interpreted on the tree of `x`'s current context.
  bool subtreeMayHoldCopy(std::int32_t treeNode, VarId x) const {
    const auto it = states_.find(x);
    const std::size_t c = it == states_.end() ? static_cast<std::size_t>(cur_)
                                              : static_cast<std::size_t>(it->second.ctx);
    return ctxs_[c].hints[static_cast<std::size_t>(treeNode)].mayContain(x);
  }

  /// Resident bytes of the subtree-copy hint structure (docs/routing.md
  /// memory model), summed over every live tree context.
  std::uint64_t hintBytes() const {
    std::uint64_t total = 0;
    for (const auto& c : ctxs_)
      for (const auto& b : c.hints) total += b.numCells();
    return total;
  }

  void onNodeDown(NodeId p) override;
  void onReconfig() override;

 private:
  /// Per-(variable, tree-node) protocol state.
  struct TreeState {
    enum class Kind : std::uint8_t { Up, Down, Copy };
    Kind kind = Kind::Up;
    std::int32_t downChild = -1;     ///< tree node toward the component (Kind::Down)
    std::uint32_t childCopyMask = 0; ///< children (by indexInParent) holding copies
    bool parentCopy = false;         ///< parent holds a copy
  };

  struct RelayState {
    int pendingAcks = 0;
    std::int32_t ackTo = -1;  ///< tree node to ack once our flood subtree is done
  };

  /// Coordinator state of an in-flight write's invalidation multicast.
  struct InvalCoord {
    int pendingAcks = 0;
    VarId var = kInvalidVar;
    std::uint64_t txn = 0;
    NodeId requester = -1;
    Value value;
    std::vector<std::int32_t> path;
  };

  struct VarState {
    std::unordered_map<std::int32_t, TreeState> nodes;
    std::optional<InvalCoord> coord;  ///< at most one write in flight per variable
    std::unordered_map<std::int32_t, RelayState> relays;
    /// Tree context (index into ctxs_) this variable's access tree lives
    /// on. Equals the strategy's current context except during a
    /// reconfiguration handoff window, when a busy variable keeps
    /// operating on its predecessor tree until it migrates.
    int ctx = 0;
    /// Reads/writes currently in flight anywhere in the system. While
    /// non-zero the variable's copies are not eligible for replacement
    /// (a transaction's path deposits reference them).
    int activeOps = 0;
    /// Version of the last committed write. Read responses carry the
    /// version of the value they serve; a deposit whose version is no
    /// longer current is skipped (the reader still gets the value, it
    /// just leaves no copy behind) — this is what makes reads racing a
    /// concurrent write safe: the read linearizes before the write and
    /// cannot leave a stale copy that survives the write's invalidation.
    std::uint32_t committedVersion = 0;
  };

  /// Protocol message (one fat struct keeps dispatch trivial).
  struct AtBody {
    enum class K : std::uint8_t {
      Climb,     ///< read/write request walking the tree
      Data,      ///< value travelling back along `path`, depositing copies
      Inval,     ///< invalidation flood edge
      InvalAck,  ///< flood acknowledgement edge
      Mark,      ///< creation: mark Down pointers on the root path
      MarkAck,   ///< creation complete
      CopyDrop,  ///< eviction: neighbour lost its copy
      Recover,   ///< repair traffic: salvage/invalidate after a crash
      Migrate,   ///< migration traffic: tree-to-tree handoff across an epoch
    };
    K k = K::Climb;
    VarId var = kInvalidVar;
    std::uint64_t txn = 0;
    NodeId requester = -1;
    std::int32_t atNode = -1;    ///< tree node this message is addressed to
    std::int32_t fromNode = -1;  ///< tree-edge origin (Inval/InvalAck/Mark/CopyDrop)
    bool isWrite = false;
    bool descending = false;
    Value value;
    std::vector<std::int32_t> path;  ///< visited tree nodes, requester leaf first
    std::int32_t idx = 0;            ///< Data: current position in path
    int retries = 0;
    std::uint32_t version = 0;       ///< Data: committed version of `value`
    bool ackHadCopy = true;          ///< InvalAck: sender actually held a copy
    /// Tree context the tree-node ids in this message refer to. Carried
    /// so cost-only messages (Mark, CopyDrop) that survive a migration
    /// can be routed on — or recognised as stale — without consulting
    /// the (possibly already migrated or destroyed) variable state.
    std::int32_t ctx = 0;
  };

  struct PendingOp {
    sim::OneShot<Value>* done = nullptr;
  };

  // --- protocol engine ---
  void onClimb(AtBody&& b);
  void onData(AtBody&& b);
  void onInval(AtBody&& b);
  void onInvalAck(AtBody&& b);
  void onMark(AtBody&& b);
  void onCopyDrop(AtBody&& b);

  void serveAt(std::int32_t node, AtBody&& b);
  void startInvalidation(std::int32_t uNode, AtBody&& b);
  void finishWrite(VarState& vs, InvalCoord&& c);
  void sendData(VarId x, std::uint64_t txn, NodeId requester, bool isWrite, Value v,
                std::vector<std::int32_t> path);
  void depositCopy(VarId x, std::int32_t node, const Value& v,
                   std::int32_t towardServer, std::int32_t towardRequester);
  void forward(AtBody&& b, std::int32_t fromTreeNode, std::int32_t toTreeNode,
               std::uint64_t payloadBytes);
  void maybeEvictAt(NodeId p);

  // --- state helpers ---
  TreeState& stateOf(VarId x, std::int32_t node) { return states_[x].nodes[node]; }
  const TreeState* findState(VarId x, std::int32_t node) const;
  /// The cluster tree of `x`'s current context: tree-node ids in the
  /// variable's directory state are only meaningful against this tree.
  const net::ClusterTree& treeOf(VarId x) const {
    return *ctxs_[static_cast<std::size_t>(states_.at(x).ctx)].tree;
  }
  NodeId hostOf(std::int32_t node, VarId x) const {
    return treeOf(x).hostOf(node, x, params_.embedding, params_.seed);
  }
  bool isParentOf(VarId x, std::int32_t parent, std::int32_t child) const;
  std::uint32_t childBit(VarId x, std::int32_t child) const;
  int copyNeighborCount(VarId x, std::int32_t node) const;
  void clearCopy(VarId x, std::int32_t node);
  void eraseIfDefault(VarId x, std::int32_t node);
  /// Install the one-copy component at `owner`'s leaf and mark the root
  /// path — shared by free registration and crash repair.
  void seedComponent(VarState& vs, VarId x, NodeId owner, Value init);
  /// Subtree-hint maintenance: record one copy of `x` appearing at
  /// (resp. leaving) tree node `node` — updates the Bloom filter of the
  /// node and of every ancestor. Calls pair exactly with Copy-state
  /// births/deaths.
  void hintCopyBorn(VarId x, std::int32_t node);
  void hintCopyDied(VarId x, std::int32_t node);

  // --- crash repair (docs/faults.md) ---
  // Losing an arbitrary subset of a variable's copy component can
  // disconnect it, which no local rule repairs safely; repair therefore
  // wipes the whole component and reseeds a fresh single-copy component
  // (holding the salvaged committed value) at the deterministic
  // next-live successor of the crashed host — invariant-correct by
  // construction, conservative in traffic. Deferred until the variable
  // is quiet, like the fixed-home repair.
  NodeId nextLiveAfter(VarId x, NodeId p) const;
  bool varQuiet(const VarState& vs) const;
  void scheduleRepair(VarId x, NodeId deadNode);
  void drainRepairs(VarId x);
  void repairVar(VarId x, NodeId deadNode);

  // --- epoch migration (docs/faults.md "Reconfiguration") ---
  // A reconfiguration epoch decomposes the network's *target* shape into
  // a fresh cluster tree (a new context). Every variable then migrates:
  // its old-tree component is wiped (hints and caches included) and a
  // single-copy component holding the committed value is reseeded on the
  // new tree at the old topmost host — or its next live member when that
  // host left the machine. Busy variables park in pendingMigrations_ and
  // keep operating on their predecessor tree (requests are forwarded
  // along it) until their last in-flight operation retires.
  void migrateVar(VarId x);
  void sendMigrate(NodeId src, NodeId dst, VarId x, std::uint64_t payloadBytes);

  net::Network& net_;
  Stats& stats_;
  std::vector<NodeCache>& caches_;
  Params params_;
  /// One tree context per machine shape this strategy has managed: the
  /// cluster tree plus its per-tree-node counting Bloom filters ("may
  /// this subtree hold a copy?"; see subtreeMayHoldCopy). Superseded
  /// contexts stay alive until every variable has migrated off them —
  /// and beyond, since external services may hold references to their
  /// trees. ctxs_[cur_] is the context new variables register on.
  struct Ctx {
    std::unique_ptr<net::ClusterTree> tree;
    std::vector<support::CountingBloom> hints;
  };
  std::vector<Ctx> ctxs_;
  int cur_ = 0;
  std::unordered_map<VarId, VarState> states_;
  std::unordered_map<std::uint64_t, PendingOp> pending_;
  std::unordered_map<VarId, std::vector<NodeId>> pendingRepairs_;
  /// Variables whose migration is deferred until they are quiet.
  std::unordered_set<VarId> pendingMigrations_;
  std::uint64_t nextTxn_ = 1;

  static constexpr int kMaxRetries = 64;
};

}  // namespace diva
