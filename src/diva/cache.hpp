#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "diva/types.hpp"

namespace diva {

/// Per-processor memory module acting as a cache for global variables
/// (the COMA view: every memory module is a big cache with LRU
/// replacement). The cache itself is policy-free about *which* entries
/// may be evicted — the data-management strategy decides that, because
/// evicting a copy has protocol consequences (tree connectivity, home
/// copy sets). The cache only tracks recency and byte occupancy.
class NodeCache {
 public:
  struct Entry {
    Value value;
    /// Number of access-tree nodes hosted here that hold a copy (access
    /// tree strategy) or 1 (fixed home strategy).
    int copyCount = 0;
    /// Fixed home strategy: this processor is the variable's owner.
    bool owned = false;
    /// Pinned entries (e.g. a variable's only remaining copy) are never
    /// offered for eviction.
    bool pinned = false;
    std::list<VarId>::iterator lruIt;  ///< position in the LRU list
  };

  explicit NodeCache(std::uint64_t capacityBytes = ~0ull) : capacity_(capacityBytes) {}

  std::uint64_t capacityBytes() const { return capacity_; }
  std::uint64_t usedBytes() const { return used_; }
  bool overCapacity() const { return used_ > capacity_; }
  std::size_t numEntries() const { return map_.size(); }

  /// Look up without touching recency (protocol bookkeeping).
  Entry* peek(VarId v) {
    auto it = map_.find(v);
    return it == map_.end() ? nullptr : &it->second;
  }
  const Entry* peek(VarId v) const {
    auto it = map_.find(v);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Look up and mark as most recently used (application access).
  Entry* touch(VarId v) {
    auto it = map_.find(v);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.end(), lru_, it->second.lruIt);
    return &it->second;
  }

  /// Insert or update an entry; returns it. New entries start with
  /// copyCount 0 — callers adjust it as the protocol dictates.
  Entry& put(VarId v, Value value) {
    auto it = map_.find(v);
    if (it == map_.end()) {
      lru_.push_back(v);
      Entry e;
      e.value = std::move(value);
      e.lruIt = std::prev(lru_.end());
      used_ += e.value ? e.value->size() : 0;
      return map_.emplace(v, std::move(e)).first->second;
    }
    Entry& e = it->second;
    used_ -= e.value ? e.value->size() : 0;
    e.value = std::move(value);
    used_ += e.value ? e.value->size() : 0;
    lru_.splice(lru_.end(), lru_, e.lruIt);
    return e;
  }

  void erase(VarId v) {
    auto it = map_.find(v);
    if (it == map_.end()) return;
    used_ -= it->second.value ? it->second.value->size() : 0;
    lru_.erase(it->second.lruIt);
    map_.erase(it);
  }

  /// Visit entries from least to most recently used until `fn` returns
  /// true (handled) or the list is exhausted. `fn` may erase the entry it
  /// is given (and only that one).
  template <typename Fn>
  bool scanLru(Fn&& fn) {
    for (auto it = lru_.begin(); it != lru_.end();) {
      const VarId v = *it;
      ++it;  // advance before fn possibly erases v
      if (fn(v, map_.find(v)->second)) return true;
    }
    return false;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<VarId, Entry> map_;
  std::list<VarId> lru_;  ///< front = least recently used
};

}  // namespace diva
