#include "diva/lock.hpp"

#include "net/graph_topology.hpp"
#include "support/rng.hpp"

namespace diva {

namespace {
/// Injective (lock, processor) key. A hash here is not good enough:
/// XOR-combining dense lock ids with small processor ids collides, and a
/// collision silently cross-wires two acquisitions.
std::uint64_t waitKey(VarId lock, NodeId p) {
  // Must admit every processor id a graph topology can produce.
  constexpr std::uint64_t kMaxProcs = net::kMaxGraphNodes;
  DIVA_CHECK(static_cast<std::uint64_t>(p) < kMaxProcs);
  return lock * kMaxProcs + static_cast<std::uint64_t>(p);
}
}  // namespace

// ===========================================================================
// TreeLockService (Raymond's algorithm)
// ===========================================================================

TreeLockService::TreeLockService(net::Network& net, Stats& stats,
                                 const net::ClusterTree& tree,
                                 net::EmbeddingKind embedding, std::uint64_t seed)
    : net_(net), stats_(stats), tree_(&tree), embedding_(embedding), seed_(seed) {}

NodeId TreeLockService::hostOf(std::int32_t node, VarId lock) const {
  return tree_->hostOf(node, lock, embedding_, seed_);
}

void TreeLockService::registerLockFree(VarId lock, NodeId creator) {
  anchorProc_[lock] = creator;
}

void TreeLockService::rebuild(const net::ClusterTree& tree) {
  for (const auto& [lock, perNode] : states_)
    for (const auto& [node, st] : perNode)
      DIVA_CHECK_MSG(st.reqQ.empty() && !st.inUse && !st.asked,
                     "lock " << lock << " busy across a reconfiguration epoch");
  tree_ = &tree;
  states_.clear();  // holder pointers are rebuilt lazily against the new tree
  for (auto& [lock, anchor] : anchorProc_) {
    if (tree.leafOf(anchor) >= 0) continue;
    // The anchor left the machine: the token restarts at the next member.
    const int n = net_.numNodes();
    NodeId q = static_cast<NodeId>((anchor + 1) % n);
    while (!net_.nodeMember(q) || tree.leafOf(q) < 0)
      q = static_cast<NodeId>((q + 1) % n);
    anchor = q;
  }
}

std::int32_t TreeLockService::defaultHolderDir(VarId lock, std::int32_t node) const {
  const auto it = anchorProc_.find(lock);
  DIVA_CHECK_MSG(it != anchorProc_.end(), "lock " << lock << " never registered");
  const std::int32_t leaf = tree_->leafOf(it->second);
  DIVA_CHECK_MSG(leaf >= 0, "lock " << lock << "'s anchor is not in the tree");
  if (leaf == node) return kSelf;
  // Token starts at the anchor's leaf: point into the subtree containing
  // it, or to the parent when it lies outside ours.
  const int child = tree_->childToward(node, it->second);
  return child >= 0 ? child : tree_->node(node).parent;
}

TreeLockService::NodeState& TreeLockService::stateOf(VarId lock, std::int32_t node) {
  NodeState& st = states_[lock][node];
  if (st.holderDir == -3) st.holderDir = defaultHolderDir(lock, node);
  return st;
}

sim::Task<void> TreeLockService::acquire(NodeId p, VarId lock) {
  ++stats_.ops.locks;
  sim::OneShot<bool> granted(net_.engine());
  const std::uint64_t key = waitKey(lock, p);
  DIVA_CHECK_MSG(!waiting_.contains(key), "processor already acquiring this lock");
  waiting_[key] = &granted;

  Body b;
  b.k = Body::K::Request;
  b.lock = lock;
  b.atNode = tree_->leafOf(p);
  DIVA_CHECK_MSG(b.atNode >= 0, "requester " << p << " is not in the lock tree");
  b.fromNode = kSelf;
  net_.post(net::Message{p, p, net::kLockChannel, 0, b});

  (void)co_await granted.wait();
  waiting_.erase(key);
  co_return;
}

sim::Task<void> TreeLockService::release(NodeId p, VarId lock) {
  Body b;
  b.k = Body::K::Release;
  b.lock = lock;
  b.atNode = tree_->leafOf(p);
  // Named local rather than a temporary in the co_await expression:
  // GCC 12 double-destroys such temporaries (PR 104031).
  net::Message m{p, p, net::kLockChannel, 0, b};
  co_await net_.send(std::move(m));
  co_return;
}

void TreeLockService::handleMessage(net::Message&& msg) {
  Body b = msg.take<Body>();
  switch (b.k) {
    case Body::K::Request:
      onRequest(b.lock, b.atNode, b.fromNode);
      return;
    case Body::K::Token:
      onToken(b.lock, b.atNode);
      return;
    case Body::K::Release: {
      NodeState& st = stateOf(b.lock, b.atNode);
      DIVA_CHECK_MSG(st.holderDir == kSelf && st.inUse, "release without holding");
      st.inUse = false;
      grantNext(b.lock, b.atNode);
      return;
    }
  }
}

void TreeLockService::send(VarId lock, std::int32_t fromNode, std::int32_t toNode,
                           Body&& b) {
  b.atNode = toNode;
  net_.post(net::Message{hostOf(fromNode, lock), hostOf(toNode, lock),
                         net::kLockChannel, 0, std::move(b)});
}

void TreeLockService::onRequest(VarId lock, std::int32_t node, std::int32_t from) {
  NodeState& st = stateOf(lock, node);
  st.reqQ.push_back(from);
  if (st.holderDir == kSelf) {
    if (!st.inUse) grantNext(lock, node);
    return;
  }
  if (!st.asked) {
    st.asked = true;
    Body b;
    b.k = Body::K::Request;
    b.lock = lock;
    b.fromNode = node;
    send(lock, node, st.holderDir, std::move(b));
  }
}

void TreeLockService::onToken(VarId lock, std::int32_t node) {
  NodeState& st = stateOf(lock, node);
  st.asked = false;
  st.holderDir = kSelf;
  grantNext(lock, node);
}

void TreeLockService::grantNext(VarId lock, std::int32_t node) {
  NodeState& st = stateOf(lock, node);
  DIVA_CHECK(st.holderDir == kSelf && !st.inUse);
  if (st.reqQ.empty()) return;
  const std::int32_t next = st.reqQ.front();
  st.reqQ.pop_front();

  if (next == kSelf) {
    // Local grant: `node` must be the requester's leaf.
    st.inUse = true;
    const NodeId p = tree_->procOfLeaf(node);
    auto it = waiting_.find(waitKey(lock, p));
    DIVA_CHECK_MSG(it != waiting_.end(), "token granted but nobody waits");
    it->second->resolve(true);
    return;
  }

  st.holderDir = next;
  Body tok;
  tok.k = Body::K::Token;
  tok.lock = lock;
  send(lock, node, next, std::move(tok));
  if (!st.reqQ.empty()) {
    st.asked = true;
    Body req;
    req.k = Body::K::Request;
    req.lock = lock;
    req.fromNode = node;
    send(lock, node, next, std::move(req));
  }
}

void TreeLockService::checkIdle(VarId lock) const {
  const auto it = states_.find(lock);
  if (it == states_.end()) return;  // never contended: trivially idle
  for (const auto& [node, st] : it->second) {
    DIVA_CHECK_MSG(st.reqQ.empty(), "pending lock request at tree node " << node);
    DIVA_CHECK_MSG(!st.inUse, "lock still held at tree node " << node);
    DIVA_CHECK_MSG(!st.asked, "dangling lock request at tree node " << node);
  }
}

// ===========================================================================
// CentralLockService
// ===========================================================================

CentralLockService::CentralLockService(net::Network& net, Stats& stats,
                                       std::uint64_t seed)
    : net_(net),
      stats_(stats),
      seed_(seed),
      baseProcs_(static_cast<std::uint64_t>(net.numNodes())) {}

NodeId CentralLockService::homeOf(VarId lock) const {
  // The hash modulus is pinned at construction so the mapping never shifts
  // under growth; when the hashed node has left the machine, the manager
  // role falls to the deterministic next member. (Lock state itself is
  // central to the service, so the home only selects message endpoints.)
  NodeId h = static_cast<NodeId>(
      support::hashBelow(support::hashCombine(seed_, lock, 0x10c4ull), baseProcs_));
  const int n = net_.numNodes();
  while (!net_.nodeMember(h)) h = static_cast<NodeId>((h + 1) % n);
  return h;
}

void CentralLockService::registerLockFree(VarId lock, NodeId /*creator*/) {
  locks_.try_emplace(lock);
}

sim::Task<void> CentralLockService::acquire(NodeId p, VarId lock) {
  ++stats_.ops.locks;
  sim::OneShot<bool> granted(net_.engine());
  const std::uint64_t key = waitKey(lock, p);
  DIVA_CHECK_MSG(!waiting_.contains(key), "processor already acquiring this lock");
  waiting_[key] = &granted;

  Body b;
  b.k = Body::K::Request;
  b.lock = lock;
  b.requester = p;
  net_.post(net::Message{p, homeOf(lock), net::kLockChannel, 0, b});

  (void)co_await granted.wait();
  waiting_.erase(key);
  co_return;
}

sim::Task<void> CentralLockService::release(NodeId p, VarId lock) {
  Body b;
  b.k = Body::K::Release;
  b.lock = lock;
  b.requester = p;
  net::Message m{p, homeOf(lock), net::kLockChannel, 0, b};  // see TreeLockService
  co_await net_.send(std::move(m));
  co_return;
}

void CentralLockService::handleMessage(net::Message&& msg) {
  Body b = msg.take<Body>();
  switch (b.k) {
    case Body::K::Request: {
      LockState& st = locks_.at(b.lock);
      if (st.held) {
        st.queue.push_back(b.requester);
        return;
      }
      st.held = true;
      Body g;
      g.k = Body::K::Grant;
      g.lock = b.lock;
      net_.post(net::Message{msg.dst, b.requester, net::kLockChannel, 0, g});
      return;
    }
    case Body::K::Grant: {
      auto it = waiting_.find(waitKey(b.lock, msg.dst));
      DIVA_CHECK_MSG(it != waiting_.end(), "grant without a waiter");
      it->second->resolve(true);
      return;
    }
    case Body::K::Release: {
      LockState& st = locks_.at(b.lock);
      DIVA_CHECK_MSG(st.held, "release of a free lock");
      if (st.queue.empty()) {
        st.held = false;
        return;
      }
      const NodeId next = st.queue.front();
      st.queue.pop_front();
      Body g;
      g.k = Body::K::Grant;
      g.lock = b.lock;
      net_.post(net::Message{msg.dst, next, net::kLockChannel, 0, g});
      return;
    }
  }
}

void CentralLockService::checkIdle(VarId lock) const {
  const auto it = locks_.find(lock);
  if (it == locks_.end()) return;
  DIVA_CHECK_MSG(!it->second.held, "lock " << lock << " still held");
  DIVA_CHECK_MSG(it->second.queue.empty(), "lock " << lock << " has waiters");
}

}  // namespace diva
