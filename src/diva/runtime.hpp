#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "diva/barrier.hpp"
#include "diva/cache.hpp"
#include "diva/lock.hpp"
#include "diva/machine.hpp"
#include "diva/strategy.hpp"
#include "net/topology.hpp"

namespace diva {

enum class StrategyKind { AccessTree, FixedHome };

/// Everything needed to instantiate one data-management configuration.
/// Validated by the Runtime constructor, which throws a descriptive
/// CheckError on invalid parameters (bad arity/leafSize, or a topology
/// spec that does not match the machine) instead of misbehaving later.
struct RuntimeConfig {
  StrategyKind kind = StrategyKind::AccessTree;
  int arity = 4;      ///< access tree: ℓ ∈ {2, 4, 16}
  int leafSize = 1;   ///< access tree: k (ℓ-k-ary variants), 1 ≤ k ≤ 32
  net::EmbeddingKind embedding = net::EmbeddingKind::Regular;
  std::uint64_t seed = 1;
  std::uint64_t cacheCapacityBytes = ~0ull;  ///< per-processor memory module
  /// Optional: the machine shape this configuration was written for.
  /// When specified it must equal the machine's topology (fail fast on
  /// mismatched experiment setups); left unspecified it matches any.
  net::TopologySpec topology{};

  static RuntimeConfig accessTree(int arity = 4, int leafSize = 1,
                                  std::uint64_t seed = 1) {
    RuntimeConfig c;
    c.kind = StrategyKind::AccessTree;
    c.arity = arity;
    c.leafSize = leafSize;
    c.seed = seed;
    return c;
  }
  static RuntimeConfig fixedHome(std::uint64_t seed = 1) {
    RuntimeConfig c;
    c.kind = StrategyKind::FixedHome;
    c.seed = seed;
    return c;
  }
  /// Builder-style: pin this config to a machine shape.
  RuntimeConfig on(const net::TopologySpec& spec) const {
    RuntimeConfig c = *this;
    c.topology = spec;
    return c;
  }
};

/// The DIVA library facade: fully transparent access to global variables
/// from node programs, plus barriers and locks. One Runtime serves one
/// Machine; node programs are coroutines that co_await its operations.
class Runtime {
 public:
  Runtime(Machine& machine, RuntimeConfig config);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- data management -----------------------------------------------------
  /// Read variable `x` from processor `p` (transparent caching).
  sim::Task<Value> read(NodeId p, VarId x);

  /// Non-suspending read fast path: returns the cached value (charging
  /// the local lookup) or nullptr on a miss — in which case the caller
  /// must fall back to `read`. Lets hot loops (e.g. the Barnes–Hut force
  /// walk, 99% cache hits) avoid a coroutine frame per access.
  const Value* tryReadLocal(NodeId p, VarId x) {
    NodeCache::Entry* e = caches_[p].touch(x);
    if (!e) return nullptr;
    ++machine_.stats.ops.reads;
    ++machine_.stats.ops.readHits;
    machine_.net.reserveCpu(p, machine_.net.cost().cacheHitUs);
    return &e->value;
  }
  /// Write variable `x` from processor `p`; completes after all other
  /// copies are invalidated and the new value is installed at `p`.
  sim::Task<void> write(NodeId p, VarId x, Value v);

  // --- variable lifetime ---------------------------------------------------
  /// Create a variable during (unmeasured) setup: zero simulated cost.
  VarId createVarFree(NodeId owner, Value init, bool withLock = false);
  /// Create a variable during measured execution (costs the registration
  /// protocol, e.g. root-path marking for access trees).
  sim::Task<VarId> createVar(NodeId owner, Value init, bool withLock = false);
  /// Remove a dead variable (simulator memory hygiene; zero cost).
  void destroyVarFree(VarId x);

  // --- synchronization -----------------------------------------------------
  sim::Task<void> barrier(NodeId p);
  sim::Task<void> lock(NodeId p, VarId x);
  sim::Task<void> unlock(NodeId p, VarId x);

  // --- reconfiguration (docs/faults.md "Reconfiguration") ------------------
  /// Commit the pending reconfiguration epoch at a quiescent point: severs
  /// retiring links (installing the target topology in the network) and
  /// rebuilds the lock and barrier trees over it. Idempotent — calling it
  /// with no epoch pending (or twice for one epoch) is a no-op, so
  /// drivers can call it unconditionally between phases. The strategy's
  /// own state migration runs earlier, when the epoch fires (onReconfig);
  /// by quiescence every deferred migration has drained.
  void completeReconfig();

  // --- local compute accounting -------------------------------------------
  /// Charge `us` µs of application compute on `p`'s CPU without
  /// suspending (the reservation delays p's subsequent operations).
  void chargeCompute(NodeId p, double us) {
    if (us <= 0) return;
    machine_.net.reserveCpu(p, us);
    machine_.stats.addCompute(us);
  }
  /// Suspend until `p`'s CPU has drained all charged work.
  auto syncCpu(NodeId p) { return machine_.net.compute(p, 0.0); }

  // --- introspection ---------------------------------------------------
  Value peek(VarId x) const { return strategy_->peek(x); }
  void checkInvariants(VarId x) const { strategy_->checkInvariants(x); }
  void checkAllInvariants() const;
  Strategy& strategy() { return *strategy_; }
  const Strategy& strategy() const { return *strategy_; }
  std::string strategyName() const { return strategy_->name(); }
  Machine& machine() { return machine_; }
  Stats& stats() { return machine_.stats; }
  const RuntimeConfig& config() const { return config_; }
  NodeCache& cacheOf(NodeId p) { return caches_[p]; }
  std::size_t numLiveVars() const { return liveVars_.size(); }

 private:
  void onReconfigEpoch();

  Machine& machine_;
  RuntimeConfig config_;
  std::vector<NodeCache> caches_;
  std::unique_ptr<Strategy> strategy_;
  std::unique_ptr<BarrierService> barrier_;
  std::unique_ptr<LockService> locks_;
  TreeLockService* treeLocks_ = nullptr;  ///< typed view of locks_ (rebuild)
  std::unordered_set<VarId> liveVars_;
  VarId nextVar_ = 1;
  int livenessToken_ = -1;  ///< network liveness listener, removed in ~Runtime
  int reconfigToken_ = -1;  ///< network reconfiguration listener
  int handledProcs_ = 0;    ///< nodes with channel handlers installed
  int committedEpoch_ = 0;  ///< last epoch completeReconfig() committed
};

}  // namespace diva
