#pragma once

#include <string>

#include "diva/types.hpp"
#include "net/message.hpp"
#include "sim/task.hpp"

namespace diva {

using net::NodeId;

/// A dynamic data management strategy: decides how many copies of each
/// global variable exist, where they are placed, and how consistency is
/// maintained. The two implementations are the paper's subject (access
/// tree strategy) and its baseline (fixed home strategy).
///
/// The contract seen by the runtime:
///  * `read` returns the variable's value at the issuing processor,
///    producing whatever protocol traffic the strategy requires;
///  * `write` installs a new value and invalidates all other copies
///    before completing (single-writer coherence);
///  * local cache hits are resolved by the runtime before the strategy
///    is consulted — `read`/`write` here implement the miss paths.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  /// Miss-path read issued by processor `p`.
  virtual sim::Task<Value> read(NodeId p, VarId x) = 0;

  /// Write issued by processor `p` (p may or may not hold a copy).
  virtual sim::Task<void> write(NodeId p, VarId x, Value v) = 0;

  /// Zero-cost registration used during (unmeasured) setup: the variable
  /// exists with a single copy in `owner`'s memory module.
  virtual void registerVarFree(VarId x, NodeId owner, Value init) = 0;

  /// Registration with full protocol cost, for variables created during
  /// the measured computation (e.g. Barnes–Hut cells).
  virtual sim::Task<void> registerVar(VarId x, NodeId owner, Value init) = 0;

  /// Zero-cost teardown (simulator memory management; not measured).
  virtual void destroyVarFree(VarId x) = 0;

  /// The current globally committed value (verification/debug only).
  virtual Value peek(VarId x) const = 0;

  /// Validate every internal invariant for `x`; throws CheckError on
  /// violation. Call only at quiescence (no transactions in flight).
  virtual void checkInvariants(VarId x) const = 0;

  /// Protocol message entry point; the runtime registers this as the
  /// handler for `net::kProtocolChannel` on every node.
  virtual void handleMessage(net::Message&& msg) = 0;

  /// LRU replacement hook: attempt to evict `x` from `p`'s memory module
  /// if the strategy's invariants allow it. Returns true on success.
  virtual bool tryEvict(NodeId p, VarId x) = 0;

  /// Node `p` crashed: its application state (cached copies, directory
  /// authority) is lost and the strategy must repair every variable it
  /// touched — re-home directories, salvage authoritative values, scrub
  /// dead copies — so that no variable is lost or dually owned once the
  /// machine quiesces (docs/faults.md). Repairs for variables with a
  /// transaction in flight are deferred until that variable is quiet.
  /// Default: strategies without fault support ignore liveness.
  virtual void onNodeDown(NodeId p) { (void)p; }

  /// Node `p` recovered (cold caches — crash state was already scrubbed).
  virtual void onNodeUp(NodeId p) { (void)p; }

  /// The machine was structurally reconfigured (nodes/links added or
  /// removed — a new reconfiguration epoch; docs/faults.md). The strategy
  /// must re-run decompose() on the network's *target* shape and migrate
  /// every variable's management state (homes, directories, copy sets,
  /// bloom hints) onto the new tree via cost-charged Migrate messages,
  /// deferring variables with a transaction in flight until they are
  /// quiet (forwarding serves them meanwhile). Default: strategies
  /// without reconfiguration support ignore epochs.
  virtual void onReconfig() {}
};

}  // namespace diva
