#include "diva/access_tree_strategy.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace diva {

namespace {
/// Strategy display names follow the paper's nomenclature: "2-ary",
/// "4-ary", "16-ary" for pure decompositions and "2-4-ary", "4-16-ary",
/// ... for k-terminated ones.
std::string variantName(int arity, int leafSize) {
  std::ostringstream os;
  os << arity;
  if (leafSize > 1) os << '-' << leafSize;
  os << "-ary access tree";
  return os.str();
}
}  // namespace

AccessTreeStrategy::AccessTreeStrategy(net::Network& net, Stats& stats,
                                       std::vector<NodeCache>& caches, Params params)
    : net_(net), stats_(stats), caches_(caches), params_(params) {
  Ctx c;
  c.tree = net.topology().decompose(net::DecompParams{params.arity, params.leafSize});
  c.hints.resize(static_cast<std::size_t>(c.tree->numNodes()));
  ctxs_.push_back(std::move(c));
}

std::string AccessTreeStrategy::name() const {
  return variantName(params_.arity, params_.leafSize);
}

const AccessTreeStrategy::TreeState* AccessTreeStrategy::findState(
    VarId x, std::int32_t node) const {
  const auto vit = states_.find(x);
  if (vit == states_.end()) return nullptr;
  const auto nit = vit->second.nodes.find(node);
  return nit == vit->second.nodes.end() ? nullptr : &nit->second;
}

bool AccessTreeStrategy::isParentOf(VarId x, std::int32_t parent,
                                    std::int32_t child) const {
  return treeOf(x).node(child).parent == parent;
}

std::uint32_t AccessTreeStrategy::childBit(VarId x, std::int32_t child) const {
  const int idx = treeOf(x).node(child).indexInParent;
  DIVA_CHECK(idx >= 0 && idx < 32);
  return 1u << idx;
}

int AccessTreeStrategy::copyNeighborCount(VarId x, std::int32_t node) const {
  const TreeState* st = findState(x, node);
  if (!st) return 0;
  return std::popcount(st->childCopyMask) + (st->parentCopy ? 1 : 0);
}

void AccessTreeStrategy::hintCopyBorn(VarId x, std::int32_t node) {
  Ctx& c = ctxs_[static_cast<std::size_t>(states_.at(x).ctx)];
  for (std::int32_t a = node; a >= 0; a = c.tree->parent(a))
    c.hints[static_cast<std::size_t>(a)].add(x);
}

void AccessTreeStrategy::hintCopyDied(VarId x, std::int32_t node) {
  Ctx& c = ctxs_[static_cast<std::size_t>(states_.at(x).ctx)];
  for (std::int32_t a = node; a >= 0; a = c.tree->parent(a))
    c.hints[static_cast<std::size_t>(a)].remove(x);
}

void AccessTreeStrategy::clearCopy(VarId x, std::int32_t node) {
  const NodeId host = hostOf(node, x);
  NodeCache::Entry* e = caches_[host].peek(x);
  DIVA_CHECK_MSG(e && e->copyCount >= 1, "clearCopy without a cached copy");
  if (--e->copyCount == 0) caches_[host].erase(x);
}

void AccessTreeStrategy::eraseIfDefault(VarId x, std::int32_t node) {
  auto vit = states_.find(x);
  if (vit == states_.end()) return;
  auto nit = vit->second.nodes.find(node);
  if (nit == vit->second.nodes.end()) return;
  const TreeState& st = nit->second;
  if (st.kind == TreeState::Kind::Up && st.childCopyMask == 0 && !st.parentCopy)
    vit->second.nodes.erase(nit);
}

// ---------------------------------------------------------------------------
// Application-facing operations
// ---------------------------------------------------------------------------

sim::Task<Value> AccessTreeStrategy::read(NodeId p, VarId x) {
  // Fast path: the runtime normally filters cache hits, but stay safe.
  if (NodeCache::Entry* e = caches_[p].touch(x)) co_return e->value;

  const std::uint64_t txn = nextTxn_++;
  sim::OneShot<Value> done(net_.engine());
  pending_[txn] = PendingOp{&done};
  VarState& vs = states_.at(x);
  ++vs.activeOps;

  AtBody b;
  b.k = AtBody::K::Climb;
  b.var = x;
  b.txn = txn;
  b.requester = p;
  b.ctx = vs.ctx;
  b.atNode = treeOf(x).leafOf(p);
  NodeId entry = p;
  if (b.atNode < 0) {
    // p joined the machine after this variable's tree was built — the
    // variable is mid-handoff on a superseded context, its migration
    // deferred until it falls quiet. Enter the old tree through a
    // deterministic proxy leaf; the p→proxy hop is the forwarding cost.
    entry = nextLiveAfter(x, p);
    b.requester = entry;
    b.atNode = treeOf(x).leafOf(entry);
    ++stats_.ops.forwardedOps;
  }
  DIVA_CHECK_MSG(b.atNode >= 0, "requester " << p << " is not in variable " << x
                                             << "'s access tree");
  net_.post(net::Message{p, entry, net::kProtocolChannel, 0, std::move(b)});

  Value v = co_await done.wait();
  pending_.erase(txn);
  if (--states_.at(x).activeOps == 0) drainRepairs(x);
  co_return v;
}

sim::Task<void> AccessTreeStrategy::write(NodeId p, VarId x, Value v) {
  const std::uint64_t txn = nextTxn_++;
  sim::OneShot<Value> done(net_.engine());
  pending_[txn] = PendingOp{&done};
  VarState& vs = states_.at(x);
  ++vs.activeOps;

  AtBody b;
  b.k = AtBody::K::Climb;
  b.var = x;
  b.txn = txn;
  b.requester = p;
  b.ctx = vs.ctx;
  b.atNode = treeOf(x).leafOf(p);
  NodeId entry = p;
  if (b.atNode < 0) {
    // Same proxy entry as read(): a node added after this variable's
    // tree was built forwards through a leaf the old tree covers.
    entry = nextLiveAfter(x, p);
    b.requester = entry;
    b.atNode = treeOf(x).leafOf(entry);
    ++stats_.ops.forwardedOps;
  }
  DIVA_CHECK_MSG(b.atNode >= 0, "requester " << p << " is not in variable " << x
                                             << "'s access tree");
  b.isWrite = true;
  b.value = std::move(v);
  net_.post(net::Message{p, entry, net::kProtocolChannel, 0, std::move(b)});

  (void)co_await done.wait();
  pending_.erase(txn);
  if (--states_.at(x).activeOps == 0) drainRepairs(x);
  co_return;
}

void AccessTreeStrategy::seedComponent(VarState& vs, VarId x, NodeId owner,
                                       Value init) {
  const net::ClusterTree& t = *ctxs_[static_cast<std::size_t>(vs.ctx)].tree;
  const std::int32_t leaf = t.leafOf(owner);
  DIVA_CHECK_MSG(leaf >= 0, "owner " << owner << " is not in variable " << x
                                     << "'s access tree");
  TreeState& st = vs.nodes[leaf];
  st.kind = TreeState::Kind::Copy;
  st.downChild = -1;
  hintCopyBorn(x, leaf);
  NodeCache::Entry& e = caches_[owner].put(x, std::move(init));
  e.copyCount = 1;
  // Mark the path from the root to the component (data tracking invariant).
  std::int32_t child = leaf;
  for (std::int32_t a = t.parent(leaf); a >= 0; a = t.parent(a)) {
    TreeState& as = vs.nodes[a];
    as.kind = TreeState::Kind::Down;
    as.downChild = child;
    child = a;
  }
}

void AccessTreeStrategy::registerVarFree(VarId x, NodeId owner, Value init) {
  DIVA_CHECK_MSG(!states_.contains(x), "variable registered twice");
  VarState& vs = states_[x];
  vs.ctx = cur_;
  seedComponent(vs, x, owner, std::move(init));
}

sim::Task<void> AccessTreeStrategy::registerVar(VarId x, NodeId owner, Value init) {
  // The directory state becomes consistent immediately (so racing readers
  // can already track the data), while the root-path marking messages are
  // charged as real traffic hop-by-hop. The creator only pays its local
  // bookkeeping plus the first startup — creation does not block on a
  // root round trip.
  registerVarFree(x, owner, std::move(init));
  const net::ClusterTree& t = treeOf(x);
  const std::int32_t leaf = t.leafOf(owner);
  if (t.parent(leaf) < 0) co_return;  // single-node machine

  AtBody b;
  b.k = AtBody::K::Mark;
  b.var = x;
  b.requester = owner;
  b.ctx = cur_;
  b.atNode = t.parent(leaf);
  b.fromNode = leaf;
  net_.post(net::Message{owner, hostOf(b.atNode, x), net::kProtocolChannel, 0, std::move(b)});
  co_return;
}

void AccessTreeStrategy::destroyVarFree(VarId x) {
  auto it = states_.find(x);
  if (it == states_.end()) return;
  DIVA_CHECK_MSG(!it->second.coord && it->second.relays.empty(),
                 "destroying a variable with a write in flight");
  for (const auto& [node, st] : it->second.nodes) {
    if (st.kind == TreeState::Kind::Copy) {
      hintCopyDied(x, node);
      const NodeId host = hostOf(node, x);
      NodeCache::Entry* e = caches_[host].peek(x);
      if (e && --e->copyCount == 0) caches_[host].erase(x);
    }
  }
  states_.erase(it);
  pendingRepairs_.erase(x);
  pendingMigrations_.erase(x);
}

Value AccessTreeStrategy::peek(VarId x) const {
  const auto it = states_.find(x);
  DIVA_CHECK_MSG(it != states_.end(), "peek of unregistered variable");
  // The topmost copy holder carries the committed value.
  const net::ClusterTree& t = treeOf(x);
  std::int32_t top = -1;
  for (const auto& [node, st] : it->second.nodes)
    if (st.kind == TreeState::Kind::Copy &&
        (top < 0 || t.depthOf(node) < t.depthOf(top)))
      top = node;
  DIVA_CHECK_MSG(top >= 0, "variable has no copies");
  const NodeCache::Entry* e = caches_[hostOf(top, x)].peek(x);
  DIVA_CHECK(e && e->value);
  return e->value;
}

// ---------------------------------------------------------------------------
// Protocol engine
// ---------------------------------------------------------------------------

void AccessTreeStrategy::handleMessage(net::Message&& msg) {
  AtBody b = msg.take<AtBody>();
  switch (b.k) {
    case AtBody::K::Climb: onClimb(std::move(b)); break;
    case AtBody::K::Data: onData(std::move(b)); break;
    case AtBody::K::Inval: onInval(std::move(b)); break;
    case AtBody::K::InvalAck: onInvalAck(std::move(b)); break;
    case AtBody::K::Mark: onMark(std::move(b)); break;
    case AtBody::K::MarkAck: {
      auto it = pending_.find(b.txn);
      DIVA_CHECK(it != pending_.end());
      it->second.done->resolve(Value{});
      break;
    }
    case AtBody::K::CopyDrop: onCopyDrop(std::move(b)); break;
    case AtBody::K::Recover:
      // Cost-only: repair mutates tree state and caches synchronously at
      // drain time (see repairVar); this message charges the salvage and
      // scrub traffic so congestion-during-repair is visible. Arrival
      // closes the repair span its send opened.
      if (obs::Tracer* tr = net_.tracer())
        tr->endAsync(obs::kCatRepair, msg.dst, "repair",
                     static_cast<std::int64_t>(b.var));
      break;
    case AtBody::K::Migrate:
      // Cost-only: migration mutates tree state and caches synchronously
      // at epoch/drain time (see migrateVar); this message charges the
      // handoff traffic so congestion-during-migration is visible.
      // Arrival closes the migration span its send opened.
      if (obs::Tracer* tr = net_.tracer())
        tr->endAsync(obs::kCatMigration, msg.dst, "migrate",
                     static_cast<std::int64_t>(b.var));
      break;
  }
}

void AccessTreeStrategy::forward(AtBody&& b, std::int32_t fromTreeNode,
                                 std::int32_t toTreeNode, std::uint64_t payloadBytes) {
  // Host resolution uses the context stamped into the message, not the
  // variable's current one: a cost-only Mark may still be travelling on a
  // predecessor tree after its variable migrated (or was destroyed).
  const net::ClusterTree& t = *ctxs_[static_cast<std::size_t>(b.ctx)].tree;
  const VarId x = b.var;
  const NodeId src = t.hostOf(fromTreeNode, x, params_.embedding, params_.seed);
  const NodeId dst = t.hostOf(toTreeNode, x, params_.embedding, params_.seed);
  b.atNode = toTreeNode;
  net_.post(net::Message{src, dst, net::kProtocolChannel, payloadBytes, std::move(b)});
}

void AccessTreeStrategy::onClimb(AtBody&& b) {
  const std::int32_t node = b.atNode;
  const TreeState* st = findState(b.var, node);
  const TreeState::Kind kind = st ? st->kind : TreeState::Kind::Up;

  if (kind == TreeState::Kind::Copy) {
    serveAt(node, std::move(b));
    return;
  }
  if (kind == TreeState::Kind::Down) {
    const std::int32_t next = st->downChild;
    b.descending = true;
    b.path.push_back(node);
    const std::uint64_t payload = b.isWrite ? b.value->size() : 0;
    forward(std::move(b), node, next, payload);
    return;
  }
  // Kind::Up — no information here.
  if (b.descending) {
    // A pointer went stale under a concurrent transaction: resume climbing
    // from this node. Bounded by kMaxRetries (races are transient).
    b.descending = false;
    ++b.retries;
    ++stats_.ops.protocolRetries;
    DIVA_CHECK_MSG(b.retries < kMaxRetries, "access tree climb livelock");
  }
  const std::int32_t parent = treeOf(b.var).parent(node);
  DIVA_CHECK_MSG(parent >= 0, "climb reached the root without finding data "
                                  << "(unregistered variable " << b.var << "?)");
  b.path.push_back(node);
  const std::uint64_t payload = b.isWrite ? b.value->size() : 0;
  forward(std::move(b), node, parent, payload);
}

void AccessTreeStrategy::serveAt(std::int32_t node, AtBody&& b) {
  b.path.push_back(node);
  if (!b.isWrite) {
    const NodeId host = hostOf(node, b.var);
    NodeCache::Entry* e = caches_[host].touch(b.var);
    DIVA_CHECK_MSG(e && e->value, "copy holder without cached value");
    sendData(b.var, b.txn, b.requester, false, e->value, std::move(b.path));
    return;
  }
  startInvalidation(node, std::move(b));
}

void AccessTreeStrategy::sendData(VarId x, std::uint64_t txn, NodeId requester,
                                  bool isWrite, Value v,
                                  std::vector<std::int32_t> path) {
  DIVA_CHECK(path.size() >= 2);
  const std::int32_t server = path.back();
  const std::int32_t next = path[path.size() - 2];
  VarState& vs = states_.at(x);
  // The server learns that its path neighbour is about to hold a copy —
  // unless a write is in flight, in which case the deposits downstream
  // will be skipped anyway (versioning) and no mark must be left.
  if (!vs.coord) {
    TreeState& st = stateOf(x, server);
    if (isParentOf(x, next, server)) {
      st.parentCopy = true;
    } else {
      st.childCopyMask |= childBit(x, next);
    }
  }

  AtBody d;
  d.k = AtBody::K::Data;
  d.var = x;
  d.txn = txn;
  d.requester = requester;
  d.ctx = vs.ctx;
  d.isWrite = isWrite;
  d.version = vs.committedVersion;
  d.value = std::move(v);
  d.idx = static_cast<std::int32_t>(path.size()) - 2;
  d.path = std::move(path);
  const std::uint64_t payload = d.value->size();
  forward(std::move(d), server, next, payload);
}

void AccessTreeStrategy::depositCopy(VarId x, std::int32_t node, const Value& v,
                                     std::int32_t towardServer,
                                     std::int32_t towardRequester) {
  TreeState& st = stateOf(x, node);
  const NodeId host = hostOf(node, x);
  if (st.kind != TreeState::Kind::Copy) {
    st.kind = TreeState::Kind::Copy;
    st.downChild = -1;
    hintCopyBorn(x, node);
    NodeCache::Entry* e = caches_[host].peek(x);
    if (e) {
      e->value = v;
      ++e->copyCount;
    } else {
      caches_[host].put(x, v).copyCount = 1;
    }
  } else {
    NodeCache::Entry* e = caches_[host].peek(x);
    DIVA_CHECK(e);
    e->value = v;
  }
  auto mark = [&](std::int32_t nb) {
    if (nb < 0) return;
    if (isParentOf(x, nb, node)) {
      st.parentCopy = true;
    } else {
      st.childCopyMask |= childBit(x, nb);
    }
  };
  mark(towardServer);
  mark(towardRequester);
  maybeEvictAt(host);
}

void AccessTreeStrategy::onData(AtBody&& b) {
  const std::int32_t node = b.path[b.idx];
  DIVA_CHECK(node == b.atNode);
  const VarState& vs = states_.at(b.var);
  // A read response that raced a write delivers its (old) value but must
  // not leave copies behind: the read linearizes before the write.
  const bool depositsEnabled = b.version == vs.committedVersion && !vs.coord;
  if (depositsEnabled) {
    const std::int32_t towardServer = b.path[b.idx + 1];
    const std::int32_t towardRequester = b.idx > 0 ? b.path[b.idx - 1] : -1;
    depositCopy(b.var, node, b.value, towardServer, towardRequester);
  }

  if (b.idx == 0) {
    auto it = pending_.find(b.txn);
    DIVA_CHECK_MSG(it != pending_.end(), "data response for unknown transaction");
    it->second.done->resolve(std::move(b.value));
    return;
  }
  --b.idx;
  const std::int32_t next = b.path[b.idx];
  const std::uint64_t payload = b.value->size();
  forward(std::move(b), node, next, payload);
}

void AccessTreeStrategy::startInvalidation(std::int32_t uNode, AtBody&& b) {
  VarState& vs = states_[b.var];
  DIVA_CHECK_MSG(!vs.coord, "concurrent writes to one variable are not allowed "
                                << "(variable " << b.var << ")");
  TreeState& st = stateOf(b.var, uNode);

  InvalCoord c;
  c.var = b.var;
  c.txn = b.txn;
  c.requester = b.requester;
  c.value = std::move(b.value);
  c.path = std::move(b.path);

  const net::ClusterTree::Node& nd = treeOf(b.var).node(uNode);
  auto flood = [&](std::int32_t nb) {
    AtBody iv;
    iv.k = AtBody::K::Inval;
    iv.var = b.var;
    iv.fromNode = uNode;
    iv.ctx = b.ctx;
    forward(std::move(iv), uNode, nb, 0);
    ++c.pendingAcks;
  };
  if (st.parentCopy) flood(nd.parent);
  std::uint32_t mask = st.childCopyMask;
  while (mask) {
    const int bit = std::countr_zero(mask);
    mask &= mask - 1;
    DIVA_CHECK(bit < static_cast<int>(nd.children.size()));
    flood(nd.children[bit]);
  }
  st.parentCopy = false;
  st.childCopyMask = 0;

  if (c.pendingAcks == 0) {
    finishWrite(vs, std::move(c));
  } else {
    vs.coord.emplace(std::move(c));
  }
}

void AccessTreeStrategy::onInval(AtBody&& b) {
  const std::int32_t node = b.atNode;
  const std::int32_t from = b.fromNode;
  VarState& vs = states_[b.var];
  TreeState& st = vs.nodes[node];
  if (st.kind != TreeState::Kind::Copy) {
    // The copy is already gone (eviction or skipped deposit raced the
    // flood): acknowledge without forwarding, flagging the stale mask so
    // the sender can heal it.
    AtBody ack;
    ack.k = AtBody::K::InvalAck;
    ack.var = b.var;
    ack.fromNode = node;
    ack.ctx = b.ctx;
    ack.ackHadCopy = false;
    forward(std::move(ack), node, from, 0);
    return;
  }
  ++stats_.ops.invalidations;

  const net::ClusterTree::Node& nd = treeOf(b.var).node(node);
  RelayState rs;
  rs.ackTo = from;
  auto flood = [&](std::int32_t nb) {
    if (nb == from) return;
    AtBody iv;
    iv.k = AtBody::K::Inval;
    iv.var = b.var;
    iv.fromNode = node;
    iv.ctx = b.ctx;
    forward(std::move(iv), node, nb, 0);
    ++rs.pendingAcks;
  };
  if (st.parentCopy) flood(nd.parent);
  std::uint32_t mask = st.childCopyMask;
  while (mask) {
    const int bit = std::countr_zero(mask);
    mask &= mask - 1;
    flood(nd.children[bit]);
  }

  // Drop the copy and point toward the writer (restores the root-path
  // marking invariant; see DESIGN.md §5).
  clearCopy(b.var, node);
  hintCopyDied(b.var, node);
  if (from == nd.parent) {
    st.kind = TreeState::Kind::Up;
    st.downChild = -1;
  } else {
    st.kind = TreeState::Kind::Down;
    st.downChild = from;
  }
  st.parentCopy = false;
  st.childCopyMask = 0;

  if (rs.pendingAcks == 0) {
    AtBody ack;
    ack.k = AtBody::K::InvalAck;
    ack.var = b.var;
    ack.fromNode = node;
    ack.ctx = b.ctx;
    forward(std::move(ack), node, from, 0);
    eraseIfDefault(b.var, node);
  } else {
    vs.relays[node] = rs;
  }
}

void AccessTreeStrategy::onInvalAck(AtBody&& b) {
  const std::int32_t node = b.atNode;
  VarState& vs = states_[b.var];
  if (!b.ackHadCopy) {
    // The flood edge pointed at a node without a copy (a read deposit
    // was skipped after the mark was set): heal the stale mask bit.
    TreeState& st = vs.nodes[node];
    if (isParentOf(b.var, b.fromNode, node)) {
      st.parentCopy = false;
    } else {
      st.childCopyMask &= ~childBit(b.var, b.fromNode);
    }
  }
  auto rit = vs.relays.find(node);
  if (rit != vs.relays.end()) {
    if (--rit->second.pendingAcks == 0) {
      AtBody ack;
      ack.k = AtBody::K::InvalAck;
      ack.var = b.var;
      ack.fromNode = node;
      ack.ctx = b.ctx;
      const std::int32_t to = rit->second.ackTo;
      vs.relays.erase(rit);
      forward(std::move(ack), node, to, 0);
      eraseIfDefault(b.var, node);
    }
    return;
  }
  DIVA_CHECK_MSG(vs.coord && vs.coord->path.back() == node,
                 "stray invalidation acknowledgement");
  if (--vs.coord->pendingAcks == 0) {
    InvalCoord c = std::move(*vs.coord);
    vs.coord.reset();
    finishWrite(vs, std::move(c));
  }
}

void AccessTreeStrategy::finishWrite(VarState& vs, InvalCoord&& c) {
  DIVA_CHECK(c.var != kInvalidVar);
  ++vs.committedVersion;
  const std::int32_t u = c.path.back();
  const NodeId host = hostOf(u, c.var);
  NodeCache::Entry* e = caches_[host].peek(c.var);
  DIVA_CHECK_MSG(e && e->copyCount >= 1, "writer target lost its copy");
  e->value = c.value;
  caches_[host].touch(c.var);

  if (c.path.size() == 1) {
    auto it = pending_.find(c.txn);
    DIVA_CHECK(it != pending_.end());
    it->second.done->resolve(std::move(c.value));
    return;
  }
  sendData(c.var, c.txn, c.requester, true, std::move(c.value), std::move(c.path));
}

void AccessTreeStrategy::onMark(AtBody&& b) {
  // Cost-only: the directory was updated at registration; this message
  // stream just accounts for the marking traffic up the root path. The
  // tree is taken from the message's context — the variable may already
  // have migrated off (or been destroyed) while the mark was in flight.
  const std::int32_t node = b.atNode;
  const std::int32_t parent =
      ctxs_[static_cast<std::size_t>(b.ctx)].tree->parent(node);
  if (parent < 0) return;
  b.fromNode = node;
  forward(std::move(b), node, parent, 0);
}

void AccessTreeStrategy::onCopyDrop(AtBody&& b) {
  // Cost-only: the survivor's mask was healed at eviction time (see
  // tryEvict). Kept idempotent for robustness. A drop from a superseded
  // context is stale — the migration wiped that component wholesale.
  auto vit = states_.find(b.var);
  if (vit == states_.end() || vit->second.ctx != b.ctx) return;
  TreeState& st = vit->second.nodes[b.atNode];
  if (isParentOf(b.var, b.fromNode, b.atNode)) {
    st.parentCopy = false;
  } else {
    st.childCopyMask &= ~childBit(b.var, b.fromNode);
  }
}

// ---------------------------------------------------------------------------
// LRU replacement
// ---------------------------------------------------------------------------

bool AccessTreeStrategy::tryEvict(NodeId p, VarId x) {
  NodeCache::Entry* e = caches_[p].peek(x);
  if (!e || e->pinned) return false;
  auto vit = states_.find(x);
  if (vit == states_.end()) return false;
  if (vit->second.coord || !vit->second.relays.empty()) return false;  // write in flight
  if (vit->second.activeOps > 0) return false;  // transaction path references copies

  // S = the tree nodes of x's component hosted at p. Dropping the cache
  // entry removes all of them at once, which is safe exactly when
  //  (a) S is connected within the tree (unique node whose parent ∉ S), and
  //  (b) exactly one copy-edge leaves S — the rest of the component stays
  //      connected, attached at that edge.
  std::vector<std::int32_t> hosted;
  for (const auto& [n, st] : vit->second.nodes)
    if (st.kind == TreeState::Kind::Copy && hostOf(n, x) == p) hosted.push_back(n);
  if (hosted.empty() || static_cast<int>(hosted.size()) != e->copyCount) return false;

  auto inS = [&](std::int32_t n) {
    return std::find(hosted.begin(), hosted.end(), n) != hosted.end();
  };

  const net::ClusterTree& t = treeOf(x);
  int topsInS = 0;
  int boundaryEdges = 0;
  std::int32_t boundaryInside = -1, boundaryOutside = -1;
  for (std::int32_t s : hosted) {
    const TreeState& st = vit->second.nodes.at(s);
    const net::ClusterTree::Node& nd = t.node(s);
    if (nd.parent < 0 || !inS(nd.parent)) ++topsInS;
    if (st.parentCopy && !inS(nd.parent)) {
      ++boundaryEdges;
      boundaryInside = s;
      boundaryOutside = nd.parent;
    }
    std::uint32_t mask = st.childCopyMask;
    while (mask) {
      const int bit = std::countr_zero(mask);
      mask &= mask - 1;
      const std::int32_t ch = nd.children[bit];
      if (!inS(ch)) {
        ++boundaryEdges;
        boundaryInside = s;
        boundaryOutside = ch;
      }
    }
  }
  if (topsInS != 1 || boundaryEdges != 1) return false;  // last copies / interior

  // Masks are may-have-copy over-approximations (racing deposits can be
  // skipped after a mark was set), so verify the surviving neighbour
  // actually holds a copy — otherwise we would evict the last real copy.
  {
    const TreeState* bst = findState(x, boundaryOutside);
    if (!bst || bst->kind != TreeState::Kind::Copy) return false;
  }

  // Is a tree node `a` an ancestor of `b`?
  auto isAncestor = [&](std::int32_t a, std::int32_t b) {
    for (std::int32_t w = t.parent(b); w >= 0; w = t.parent(w))
      if (w == a) return true;
    return false;
  };

  // Re-point every dropped node toward the surviving component.
  for (std::int32_t s : hosted) {
    hintCopyDied(x, s);
    TreeState& st = vit->second.nodes.at(s);
    if (boundaryOutside == s || isAncestor(s, boundaryOutside)) {
      // Survivors hang below: mark Down toward them.
      std::int32_t towards = boundaryOutside;
      for (std::int32_t w = boundaryOutside; w != s; w = t.parent(w)) towards = w;
      st.kind = TreeState::Kind::Down;
      st.downChild = towards;
    } else {
      st.kind = TreeState::Kind::Up;
      st.downChild = -1;
    }
    st.parentCopy = false;
    st.childCopyMask = 0;
  }

  caches_[p].erase(x);
  ++stats_.ops.evictions;

  // Heal the survivor's mask immediately in simulator state (avoiding a
  // window in which another eviction could trust the stale bit); the
  // notification message still travels for its cost.
  {
    TreeState& bst = vit->second.nodes.at(boundaryOutside);
    if (isParentOf(x, boundaryInside, boundaryOutside)) {
      bst.parentCopy = false;
    } else {
      bst.childCopyMask &= ~childBit(x, boundaryInside);
    }
  }
  AtBody drop;
  drop.k = AtBody::K::CopyDrop;
  drop.var = x;
  drop.fromNode = boundaryInside;
  drop.ctx = vit->second.ctx;
  forward(std::move(drop), boundaryInside, boundaryOutside, 0);
  for (std::int32_t s : hosted) eraseIfDefault(x, s);
  return true;
}

void AccessTreeStrategy::maybeEvictAt(NodeId p) {
  NodeCache& cache = caches_[p];
  while (cache.overCapacity()) {
    const bool evicted = cache.scanLru([&](VarId v, NodeCache::Entry&) {
      return tryEvict(p, v);
    });
    if (!evicted) {
      ++stats_.ops.evictionFailures;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash repair (docs/faults.md)
// ---------------------------------------------------------------------------

NodeId AccessTreeStrategy::nextLiveAfter(VarId x, NodeId p) const {
  // The successor must be up, a current member of the machine, and
  // covered by the variable's tree (a node added after that tree was
  // built cannot host a component the old tree's ids describe).
  const net::ClusterTree& t = treeOf(x);
  const int n = net_.numNodes();
  NodeId q = static_cast<NodeId>((p + 1) % n);
  for (int steps = 0; !net_.nodeUp(q) || !net_.nodeMember(q) || t.leafOf(q) < 0;
       q = static_cast<NodeId>((q + 1) % n)) {
    DIVA_CHECK_MSG(++steps <= n, "no live member can host variable " << x);
  }
  return q;
}

bool AccessTreeStrategy::varQuiet(const VarState& vs) const {
  // activeOps covers every read/write from issue to coroutine retirement,
  // which subsumes in-flight Climb/Data; coord/relays cover invalidation
  // floods. Cost-only traffic (Mark/CopyDrop/Recover) never needs quiet.
  return !vs.coord && vs.relays.empty() && vs.activeOps == 0;
}

void AccessTreeStrategy::onNodeDown(NodeId p) {
  // Collect every variable whose copy component touches the dead host —
  // via a hosted Copy tree node or a stray cache entry — and repair in
  // sorted order so traffic is independent of hash-map iteration order.
  std::vector<VarId> affected;
  for (const auto& [x, vs] : states_) {
    bool touches = caches_[p].peek(x) != nullptr;
    for (auto it = vs.nodes.begin(); !touches && it != vs.nodes.end(); ++it)
      touches = it->second.kind == TreeState::Kind::Copy && hostOf(it->first, x) == p;
    if (touches) affected.push_back(x);
  }
  std::sort(affected.begin(), affected.end());
  for (VarId x : affected) scheduleRepair(x, p);
}

void AccessTreeStrategy::scheduleRepair(VarId x, NodeId deadNode) {
  if (varQuiet(states_.at(x))) {
    repairVar(x, deadNode);
    return;
  }
  std::vector<NodeId>& parked = pendingRepairs_[x];
  if (std::find(parked.begin(), parked.end(), deadNode) == parked.end())
    parked.push_back(deadNode);
}

void AccessTreeStrategy::drainRepairs(VarId x) {
  if (pendingRepairs_.empty() && pendingMigrations_.empty()) return;
  if (!varQuiet(states_.at(x))) return;
  const auto it = pendingRepairs_.find(x);
  if (it != pendingRepairs_.end()) {
    std::vector<NodeId> dead = std::move(it->second);
    pendingRepairs_.erase(it);
    // Repair even if the node recovered meanwhile: the crash destroyed its
    // application state, so its pre-crash copies are scrubbed regardless.
    for (NodeId p : dead) repairVar(x, p);
  }
  // A deferred epoch migration runs after the repairs: both require the
  // variable quiet, and repair is defined on the old tree.
  if (pendingMigrations_.erase(x) > 0) migrateVar(x);
}

void AccessTreeStrategy::repairVar(VarId x, NodeId p) {
  VarState& vs = states_.at(x);
  // Salvage the committed value before scrubbing. The dead host's memory
  // module is still reachable by its protocol agent (always-on-agent
  // fault model), which justifies recovering a value whose topmost copy
  // sat at p.
  const Value v = peek(x);
  DIVA_CHECK_MSG(v, "repair of variable " << x << " found no value");

  // Wipe the whole component in sorted tree-node order (determinism:
  // cache LRU mutation order must not depend on hash-map layout).
  std::vector<std::int32_t> copies;
  for (const auto& [n, st] : vs.nodes)
    if (st.kind == TreeState::Kind::Copy) copies.push_back(n);
  std::sort(copies.begin(), copies.end());
  std::vector<NodeId> hosts;
  for (std::int32_t n : copies) {
    hosts.push_back(hostOf(n, x));
    clearCopy(x, n);
    hintCopyDied(x, n);
  }
  vs.nodes.clear();
  caches_[p].erase(x);  // stray safety: a dead node keeps no entry for x

  // Reseed a fresh one-copy component at the deterministic successor.
  const NodeId s = nextLiveAfter(x, p);
  seedComponent(vs, x, s, v);
  ++vs.committedVersion;  // any still-queued deposit version is stale now
  maybeEvictAt(s);
  ++stats_.ops.repairedVars;

  // Charge the repair traffic: the salvaged value streams from the dead
  // host to the seed, each surviving copy host gets a scrub notice, and
  // the root path is re-marked hop by hop (real Mark messages).
  auto recover = [&](NodeId src, NodeId dst, std::uint64_t bytes) {
    ++stats_.ops.recoveryMessages;
    stats_.ops.recoveryBytes += bytes;
    if (obs::Tracer* tr = net_.tracer())
      tr->beginAsync(obs::kCatRepair, src, "repair", static_cast<std::int64_t>(x));
    AtBody r;
    r.k = AtBody::K::Recover;
    r.var = x;
    r.ctx = vs.ctx;
    net_.post(net::Message{src, dst, net::kProtocolChannel, bytes, std::move(r)});
  };
  recover(p, s, v->size());
  std::vector<NodeId> notified;
  for (NodeId h : hosts) {
    if (h == s || h == p) continue;
    if (std::find(notified.begin(), notified.end(), h) != notified.end()) continue;
    notified.push_back(h);
    recover(s, h, 0);
  }
  const net::ClusterTree& t = treeOf(x);
  const std::int32_t leaf = t.leafOf(s);
  if (t.parent(leaf) >= 0) {
    ++stats_.ops.recoveryMessages;
    AtBody m;
    m.k = AtBody::K::Mark;
    m.var = x;
    m.requester = s;
    m.ctx = vs.ctx;
    m.atNode = t.parent(leaf);
    m.fromNode = leaf;
    net_.post(net::Message{s, hostOf(m.atNode, x), net::kProtocolChannel, 0, std::move(m)});
  }
}

// ---------------------------------------------------------------------------
// Epoch migration (docs/faults.md "Reconfiguration")
// ---------------------------------------------------------------------------

void AccessTreeStrategy::onReconfig() {
  // Decompose the *target* shape: during the handoff window the physical
  // network still retains retiring nodes' links (so old-tree traffic and
  // the migration itself can route), but the new tree must only cover
  // the nodes that stay.
  Ctx c;
  c.tree = net_.targetTopology().decompose(
      net::DecompParams{params_.arity, params_.leafSize});
  c.hints.resize(static_cast<std::size_t>(c.tree->numNodes()));
  ctxs_.push_back(std::move(c));
  cur_ = static_cast<int>(ctxs_.size()) - 1;

  // Migrate in sorted variable order so traffic and cache mutation order
  // are independent of hash-map layout.
  std::vector<VarId> vars;
  vars.reserve(states_.size());
  for (const auto& [x, vs] : states_) vars.push_back(x);
  std::sort(vars.begin(), vars.end());
  for (VarId x : vars) {
    if (varQuiet(states_.at(x)) && !pendingRepairs_.contains(x)) {
      migrateVar(x);
    } else {
      // Busy (or repair-parked): the variable keeps operating on its old
      // tree and migrates when its last in-flight op retires.
      pendingMigrations_.insert(x);
    }
  }
}

void AccessTreeStrategy::sendMigrate(NodeId src, NodeId dst, VarId x,
                                     std::uint64_t payloadBytes) {
  ++stats_.ops.migrationMessages;
  stats_.ops.migrationBytes += payloadBytes;
  if (obs::Tracer* tr = net_.tracer())
    tr->beginAsync(obs::kCatMigration, src, "migrate", static_cast<std::int64_t>(x));
  AtBody b;
  b.k = AtBody::K::Migrate;
  b.var = x;
  b.ctx = cur_;
  net_.post(net::Message{src, dst, net::kProtocolChannel, payloadBytes, std::move(b)});
}

void AccessTreeStrategy::migrateVar(VarId x) {
  VarState& vs = states_.at(x);
  if (vs.ctx == cur_) return;  // already on the current tree
  const net::ClusterTree& oldTree = *ctxs_[static_cast<std::size_t>(vs.ctx)].tree;

  // Salvage the committed value from the topmost copy before wiping.
  std::int32_t top = -1;
  for (const auto& [n, st] : vs.nodes)
    if (st.kind == TreeState::Kind::Copy &&
        (top < 0 || oldTree.depthOf(n) < oldTree.depthOf(top)))
      top = n;
  DIVA_CHECK_MSG(top >= 0, "migrating variable " << x << " without copies");
  const NodeId oldHost = hostOf(top, x);
  const NodeCache::Entry* ref = caches_[oldHost].peek(x);
  DIVA_CHECK_MSG(ref && ref->value, "migration of variable " << x
                                        << " found no committed value");
  const Value v = ref->value;

  // Wipe the old-tree component in sorted tree-node order (determinism:
  // cache LRU mutation order must not depend on hash-map layout).
  std::vector<std::int32_t> copies;
  for (const auto& [n, st] : vs.nodes)
    if (st.kind == TreeState::Kind::Copy) copies.push_back(n);
  std::sort(copies.begin(), copies.end());
  for (std::int32_t n : copies) {
    clearCopy(x, n);
    hintCopyDied(x, n);
  }
  vs.nodes.clear();

  // Reseed a single-copy component on the new tree at the old host — or
  // its deterministic next live member when that host left the machine.
  vs.ctx = cur_;
  NodeId owner = oldHost;
  if (!net_.nodeUp(owner) || !net_.nodeMember(owner) ||
      treeOf(x).leafOf(owner) < 0)
    owner = nextLiveAfter(x, oldHost);
  seedComponent(vs, x, owner, v);
  ++vs.committedVersion;  // any still-queued deposit version is stale now
  maybeEvictAt(owner);
  ++stats_.ops.migratedVars;

  // Charge the handoff: the value streams from the old host to the new
  // owner (when it moved) and the new root path is re-marked hop by hop.
  if (owner != oldHost) sendMigrate(oldHost, owner, x, v->size());
  const net::ClusterTree& t = treeOf(x);
  const std::int32_t leaf = t.leafOf(owner);
  if (t.parent(leaf) >= 0) {
    ++stats_.ops.migrationMessages;
    AtBody m;
    m.k = AtBody::K::Mark;
    m.var = x;
    m.requester = owner;
    m.ctx = cur_;
    m.atNode = t.parent(leaf);
    m.fromNode = leaf;
    net_.post(
        net::Message{owner, hostOf(m.atNode, x), net::kProtocolChannel, 0, std::move(m)});
  }
}

// ---------------------------------------------------------------------------
// Invariant checking (tests / debugging)
// ---------------------------------------------------------------------------

void AccessTreeStrategy::checkInvariants(VarId x) const {
  const auto vit = states_.find(x);
  DIVA_CHECK_MSG(vit != states_.end(), "unregistered variable " << x);
  const VarState& vs = vit->second;
  DIVA_CHECK_MSG(!vs.coord, "write still in flight");
  DIVA_CHECK_MSG(vs.relays.empty(), "invalidation relays still in flight");
  DIVA_CHECK_MSG(vs.activeOps == 0, "operations still in flight");
  DIVA_CHECK_MSG(!pendingRepairs_.contains(x),
                 "repair still parked for variable " << x << " at quiescence");
  DIVA_CHECK_MSG(!pendingMigrations_.contains(x),
                 "migration still parked for variable " << x << " at quiescence");
  DIVA_CHECK_MSG(vs.ctx == cur_, "variable " << x
                                             << " still managed by a superseded "
                                                "access tree at quiescence");
  const net::ClusterTree& t = *ctxs_[static_cast<std::size_t>(vs.ctx)].tree;

  // Collect the copy component.
  std::vector<std::int32_t> copies;
  for (const auto& [n, st] : vs.nodes)
    if (st.kind == TreeState::Kind::Copy) copies.push_back(n);
  DIVA_CHECK_MSG(!copies.empty(), "variable " << x << " lost all copies");

  // Unique topmost node; every other copy's parent is also a copy
  // (equivalent to connectivity of a subgraph of a tree).
  auto isCopy = [&](std::int32_t n) {
    const TreeState* st = findState(x, n);
    return st && st->kind == TreeState::Kind::Copy;
  };
  std::int32_t top = copies.front();
  for (std::int32_t n : copies)
    if (t.depthOf(n) < t.depthOf(top)) top = n;
  for (std::int32_t n : copies) {
    if (n == top) continue;
    DIVA_CHECK_MSG(t.parent(n) >= 0 && isCopy(t.parent(n)),
                   "copy component disconnected at tree node " << n);
  }

  // Root-path marking: every strict ancestor of `top` points Down along
  // the path toward `top`; no other node may be in Down state.
  std::vector<std::int32_t> rootPath;
  {
    std::int32_t child = top;
    for (std::int32_t a = t.parent(top); a >= 0; a = t.parent(a)) {
      const TreeState* st = findState(x, a);
      DIVA_CHECK_MSG(st && st->kind == TreeState::Kind::Down && st->downChild == child,
                     "root-path marking broken at tree node " << a);
      rootPath.push_back(a);
      child = a;
    }
  }
  for (const auto& [n, st] : vs.nodes) {
    if (st.kind != TreeState::Kind::Down) continue;
    const bool onRootPath =
        std::find(rootPath.begin(), rootPath.end(), n) != rootPath.end();
    DIVA_CHECK_MSG(onRootPath, "stale Down pointer at tree node " << n);
  }

  // Neighbour masks match the component; caches match the copy counts;
  // all copies agree on one value (coherence at quiescence).
  const NodeCache::Entry* ref = caches_[hostOf(top, x)].peek(x);
  DIVA_CHECK(ref && ref->value);
  std::unordered_map<NodeId, int> hostCounts;
  for (std::int32_t n : copies) {
    const TreeState& st = vs.nodes.at(n);
    const auto& nd = t.node(n);
    // Masks are "may have a copy": they must cover every actual copy
    // neighbour (or invalidation floods would miss copies); stray extra
    // bits from skipped racing deposits are permitted (healed by the
    // next flood) — but only toward nodes that once saw this variable.
    if (nd.parent >= 0 && isCopy(nd.parent))
      DIVA_CHECK_MSG(st.parentCopy, "parentCopy mask missing at " << n);
    std::uint32_t expect = 0;
    for (std::int32_t ch : nd.children)
      if (isCopy(ch)) expect |= childBit(x, ch);
    DIVA_CHECK_MSG((st.childCopyMask & expect) == expect,
                   "childCopyMask incomplete at " << n);
    ++hostCounts[hostOf(n, x)];
  }
  for (const auto& [host, count] : hostCounts) {
    const NodeCache::Entry* e = caches_[host].peek(x);
    DIVA_CHECK_MSG(e, "copy holder " << host << " missing cache entry");
    DIVA_CHECK_MSG(e->copyCount == count, "copyCount mismatch at host " << host);
    DIVA_CHECK_MSG(e->value == ref->value || *e->value == *ref->value,
                   "incoherent copies of variable " << x);
  }

  // Subtree-copy hints never lie in the negative direction: every copy
  // must be visible through the Bloom filter of each of its ancestors
  // (and of its own node). The positive direction is probabilistic and
  // not checked here — false-positive rates are property-tested in
  // tests/support_test.cpp.
  for (std::int32_t n : copies)
    for (std::int32_t a = n; a >= 0; a = t.parent(a))
      DIVA_CHECK_MSG(subtreeMayHoldCopy(a, x),
                     "subtree hint false negative for variable " << x
                         << " at tree node " << a);
}

}  // namespace diva
