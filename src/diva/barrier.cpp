#include "diva/barrier.hpp"

namespace diva {

namespace {
std::uint64_t roundKey(std::int32_t node, std::uint64_t round) {
  return (static_cast<std::uint64_t>(node) << 40) ^ round;
}
}  // namespace

BarrierService::BarrierService(net::Network& net, Stats& stats, std::uint64_t seed)
    : net_(net),
      stats_(stats),
      seed_(seed),
      tree_(net.topology().decompose(net::DecompParams{4, 1})),
      waiting_(net.numNodes(), nullptr),
      nextRound_(net.numNodes(), 0) {}

void BarrierService::rebuild() {
  for (sim::OneShot<bool>* w : waiting_)
    DIVA_CHECK_MSG(w == nullptr, "barrier waiter across a reconfiguration epoch");
  DIVA_CHECK_MSG(counts_.empty(),
                 "barrier arrivals in flight across a reconfiguration epoch");
  tree_ = net_.topology().decompose(net::DecompParams{4, 1});
  waiting_.assign(static_cast<std::size_t>(net_.numNodes()), nullptr);
  nextRound_.assign(static_cast<std::size_t>(net_.numNodes()), 0);
}

sim::Task<void> BarrierService::arrive(NodeId p) {
  ++stats_.ops.barriers;
  const std::uint64_t round = nextRound_[p]++;

  if (tree_->numLeaves() <= 1) co_return;

  sim::OneShot<bool> released(net_.engine());
  DIVA_CHECK_MSG(waiting_[p] == nullptr, "processor re-entered a barrier");
  waiting_[p] = &released;

  const std::int32_t leaf = tree_->leafOf(p);
  DIVA_CHECK_MSG(leaf >= 0, "barrier arrival from processor " << p
                                << ", which is not in the machine");
  Body b;
  b.k = Body::K::Complete;
  b.atNode = tree_->parent(leaf);
  b.round = round;
  net_.post(net::Message{p, hostOf(b.atNode), net::kSyncChannel, 0, b});

  (void)co_await released.wait();
  waiting_[p] = nullptr;
  co_return;
}

void BarrierService::handleMessage(net::Message&& msg) {
  Body b = msg.take<Body>();
  if (b.k == Body::K::Complete) {
    onComplete(b.atNode, b.round);
    return;
  }
  // Release wave.
  const net::ClusterTree::Node& nd = tree_->node(b.atNode);
  if (nd.isLeaf()) {
    const NodeId p = tree_->procOfLeaf(b.atNode);
    DIVA_CHECK_MSG(waiting_[p] != nullptr, "barrier release without a waiter");
    waiting_[p]->resolve(true);
    return;
  }
  releaseSubtree(b.atNode, b.round);
}

void BarrierService::onComplete(std::int32_t node, std::uint64_t round) {
  const net::ClusterTree::Node& nd = tree_->node(node);
  const std::uint64_t key = roundKey(node, round);
  const int have = ++counts_[key];
  if (have < static_cast<int>(nd.children.size())) return;
  counts_.erase(key);
  if (nd.parent < 0) {
    releaseSubtree(node, round);
    return;
  }
  Body b;
  b.k = Body::K::Complete;
  b.atNode = nd.parent;
  b.round = round;
  net_.post(net::Message{hostOf(node), hostOf(nd.parent), net::kSyncChannel, 0, b});
}

void BarrierService::releaseSubtree(std::int32_t node, std::uint64_t round) {
  const net::ClusterTree::Node& nd = tree_->node(node);
  const NodeId src = hostOf(node);
  for (std::int32_t child : nd.children) {
    const net::ClusterTree::Node& cd = tree_->node(child);
    if (cd.isLeaf()) {
      const NodeId p = tree_->procOfLeaf(child);
      Body b;
      b.k = Body::K::Release;
      b.atNode = child;
      b.round = round;
      net_.post(net::Message{src, p, net::kSyncChannel, 0, b});
    } else {
      Body b;
      b.k = Body::K::Release;
      b.atNode = child;
      b.round = round;
      net_.post(net::Message{src, hostOf(child), net::kSyncChannel, 0, b});
    }
  }
}

}  // namespace diva
