#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "diva/stats.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace diva {

using net::NodeId;

/// Barrier synchronization over a decomposition tree (paper §2:
/// "synchronization mechanisms ... are implementations of elegant
/// algorithms that use access trees, too").
///
/// Arrivals aggregate bottom-up: a tree node reports to its parent once
/// all of its children's subtrees have arrived; when the root completes,
/// a release wave broadcasts top-down. All messages are control-sized and
/// travel between the embedded hosts along network routes, so barriers
/// have realistic cost (≈2 messages per tree edge per episode).
class BarrierService {
 public:
  BarrierService(net::Network& net, Stats& stats, std::uint64_t seed);

  /// Block the calling processor until all `P` processors have arrived.
  sim::Task<void> arrive(NodeId p);

  void handleMessage(net::Message&& msg);

  /// Rebuild the aggregation tree over the network's current (committed)
  /// topology after a reconfiguration epoch. Requires an idle barrier —
  /// no waiter and no partial arrival counts — which the quiescent commit
  /// point guarantees. Episode counters restart at zero on the new tree.
  void rebuild();

 private:
  struct Body {
    enum class K : std::uint8_t { Complete, Release } k = K::Complete;
    std::int32_t atNode = -1;
    std::uint64_t round = 0;
  };

  void onComplete(std::int32_t node, std::uint64_t round);
  void releaseSubtree(std::int32_t node, std::uint64_t round);
  NodeId hostOf(std::int32_t node) const {
    return tree_->hostOf(node, kVarKey, net::EmbeddingKind::Regular, seed_);
  }

  static constexpr std::uint64_t kVarKey = 0xBA221E5ull;

  net::Network& net_;
  Stats& stats_;
  std::uint64_t seed_;
  std::unique_ptr<net::ClusterTree> tree_;
  std::unordered_map<std::uint64_t, int> counts_;  ///< (node, round) → arrivals
  std::vector<sim::OneShot<bool>*> waiting_;       ///< per-processor release slot
  std::vector<std::uint64_t> nextRound_;           ///< per-processor episode counter
};

}  // namespace diva
