#pragma once

#include <memory>

#include "diva/stats.hpp"
#include "net/cost_model.hpp"
#include "net/mesh_topology.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace diva {

/// One simulated machine: event engine, network topology, measurement
/// state and the message-passing network. Applications and the DIVA
/// runtime are built on top of a Machine; hand-optimized message-passing
/// baselines use the Machine directly.
struct Machine {
  /// Any topology: `Machine m(net::TopologySpec::torus2d(8, 8));`
  explicit Machine(const net::TopologySpec& spec,
                   net::CostModel cost = net::CostModel::gcel())
      : topology(net::makeTopology(spec)),
        stats(*topology),
        net(engine, *topology, cost, stats.links) {}

  /// 2-D mesh shorthand (the Parsytec GCel network shape of the paper).
  Machine(int rows, int cols, net::CostModel cost = net::CostModel::gcel())
      : Machine(net::TopologySpec::mesh2d(rows, cols), cost) {}

  sim::Engine engine;
  std::unique_ptr<net::Topology> topology;
  Stats stats;
  net::Network net;

  const net::Topology& topo() const { return *topology; }
  int numProcs() const { return topology->numNodes(); }

  /// Grid-coordinate access for 2-D-structured applications (matmul's
  /// block layout, congestion heat maps). Valid for mesh and torus
  /// machines; throws CheckError on shapes without grid coordinates.
  const mesh::Mesh& mesh() const {
    const auto* grid = dynamic_cast<const net::MeshTopology*>(topology.get());
    DIVA_CHECK_MSG(grid != nullptr, "machine topology " << topology->name()
                                                        << " has no 2-D grid coordinates");
    return grid->grid();
  }

  /// Run the simulation to quiescence and close phase accounting.
  sim::Time run() {
    const sim::Time t = engine.run();
    stats.closePhases(t);
    return t;
  }
};

}  // namespace diva
