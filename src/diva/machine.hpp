#pragma once

#include "diva/stats.hpp"
#include "mesh/mesh.hpp"
#include "net/cost_model.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace diva {

/// One simulated machine: event engine, mesh, measurement state and the
/// message-passing network. Applications and the DIVA runtime are built
/// on top of a Machine; hand-optimized message-passing baselines use the
/// Machine directly.
struct Machine {
  Machine(int rows, int cols, net::CostModel cost = net::CostModel::gcel())
      : mesh(rows, cols), stats(mesh), net(engine, mesh, cost, stats.links) {}

  sim::Engine engine;
  mesh::Mesh mesh;
  Stats stats;
  net::Network net;

  int numProcs() const { return mesh.numNodes(); }

  /// Run the simulation to quiescence and close phase accounting.
  sim::Time run() {
    const sim::Time t = engine.run();
    stats.closePhases(t);
    return t;
  }
};

}  // namespace diva
