#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "diva/cache.hpp"
#include "diva/stats.hpp"
#include "diva/strategy.hpp"
#include "net/network.hpp"
#include "sim/sync.hpp"

namespace diva {

/// The fixed home strategy (paper §2): the CC-NUMA-style baseline.
///
/// Every variable is assigned a uniformly random *home* processor which
/// keeps track of the variable's copies and runs the classic ownership
/// scheme (originally for bus-based machines; on a network the home takes
/// the role of the main memory module and invalidates by point-to-point
/// messages instead of bus snooping):
///
///  * the owner of a variable is either a processor or the home;
///  * a write by a non-owner invalidates all copies (home-driven,
///    acknowledged) and transfers ownership to the writer;
///  * a read by a processor without a copy moves a copy from the owner to
///    the home (ownership returns to the home) and a copy to the reader.
///
/// With read-before-write access patterns (true for all three paper
/// applications) this equals a P-ary access tree strategy, which is what
/// makes it the natural comparison point.
class FixedHomeStrategy final : public Strategy {
 public:
  struct Params {
    std::uint64_t seed = 1;
  };

  FixedHomeStrategy(net::Network& net, Stats& stats, std::vector<NodeCache>& caches,
                    Params params);

  std::string name() const override { return "fixed home"; }
  sim::Task<Value> read(NodeId p, VarId x) override;
  sim::Task<void> write(NodeId p, VarId x, Value v) override;
  void registerVarFree(VarId x, NodeId owner, Value init) override;
  sim::Task<void> registerVar(VarId x, NodeId owner, Value init) override;
  void destroyVarFree(VarId x) override;
  Value peek(VarId x) const override;
  void checkInvariants(VarId x) const override;
  void handleMessage(net::Message&& msg) override;
  bool tryEvict(NodeId p, VarId x) override;
  void onNodeDown(NodeId p) override;
  void onReconfig() override;

  /// The home processor of a variable: a uniform hash of the id (modulo
  /// the machine's *construction-time* size, so the mapping is a stable
  /// function for the whole run), unless the re-homing map names a
  /// successor — set when the hash home crashed (deterministic
  /// next-live-member rule) or when a reconfiguration epoch migrated the
  /// home onto the current member set.
  NodeId homeOf(VarId x) const;

 private:
  static constexpr NodeId kHomeOwner = -1;  ///< sentinel: home owns the data

  struct HomeEntry {
    NodeId owner = kHomeOwner;
    std::vector<NodeId> copyHolders;  ///< processors with a valid copy (home excluded)
    bool busy = false;                ///< a transaction is being served
    std::deque<net::Message> queue;   ///< deferred transactions
    // In-flight write coordination:
    int pendingInvalAcks = 0;
    std::uint64_t writeTxn = 0;
    NodeId writer = -1;
  };

  struct FhBody {
    enum class K : std::uint8_t {
      ReadReq,    ///< requester → home
      Fetch,      ///< home → owner
      FetchData,  ///< owner → home (carries the value)
      Data,       ///< home → requester (carries the value)
      WriteReq,   ///< requester → home
      Inval,      ///< home → copy holder
      InvalAck,   ///< copy holder → home
      WriteAck,   ///< home → requester (ownership granted)
      Reg,        ///< creator → home (measured variable creation)
      RegAck,     ///< home → creator
      Drop,       ///< holder → home: copy evicted (LRU replacement)
      Recover,    ///< repair traffic: directory/value salvage after a crash
      Migrate,    ///< migration traffic: home handoff across a reconfig epoch
    };
    K k = K::ReadReq;
    VarId var = kInvalidVar;
    std::uint64_t txn = 0;
    NodeId requester = -1;
    Value value;
  };

  struct PendingOp {
    sim::OneShot<Value>* done = nullptr;
    VarId var = kInvalidVar;   ///< lets repair defer until the op retires
    NodeId issuer = -1;        ///< lets repair scrub a mid-op crasher's copy
  };

  void serveAtHome(net::Message&& msg);
  /// Starts the transaction in `msg` on an idle home entry. Returns true
  /// when it completed synchronously (the caller must then run
  /// finishTransaction to drain the queue); false when it parked waiting
  /// for a Fetch or invalidation acks.
  bool processTransaction(HomeEntry& he, net::Message&& msg);
  void finishTransaction(VarId x);
  void maybeEvictAt(NodeId p);
  void sendBody(NodeId src, NodeId dst, FhBody&& b, std::uint64_t payloadBytes);
  void addCopyHolder(HomeEntry& he, NodeId p);
  void dropCopyHolder(HomeEntry& he, NodeId p);

  // Crash repair (docs/faults.md). A repair scrubs one dead node from one
  // variable: re-home if the hash home died, recover ownership to the
  // home if the owner died, drop dead copies. Runs only while the
  // variable is quiet; otherwise parks in pendingRepairs_ and drains when
  // the last in-flight transaction or pending op retires.
  NodeId nextLiveAfter(NodeId p) const;
  bool varQuiet(VarId x) const;
  void scheduleRepair(VarId x, NodeId deadNode);
  void drainRepairs(VarId x);
  void repairVar(VarId x, NodeId deadNode);
  void sendRecover(NodeId src, NodeId dst, VarId x, std::uint64_t payloadBytes);

  // Epoch migration (docs/faults.md "Reconfiguration"). After a
  // structural epoch, every variable's home target is re-hashed over the
  // *member* set; a variable whose target moved migrates its directory
  // and (when home-owned) its authoritative copy via a cost-charged
  // Migrate message. Busy variables park in pendingMigrations_ and drain
  // when their in-flight transaction retires; meanwhile requests to the
  // old home are forwarded (the serveAtHome mismatch path).
  NodeId memberHomeOf(VarId x) const;
  void assignHome(VarId x);
  bool varNeedsEpochWork(VarId x) const;
  void migrateEpochVar(VarId x);
  void migrateVar(VarId x, NodeId target);
  void sendMigrate(NodeId src, NodeId dst, VarId x, std::uint64_t payloadBytes);

  net::Network& net_;
  Stats& stats_;
  std::vector<NodeCache>& caches_;
  Params params_;
  /// Home-hash modulus, pinned at construction: the machine may grow, but
  /// the base hash mapping must stay a pure function of the variable id.
  std::uint64_t baseProcs_;
  std::unordered_map<VarId, HomeEntry> homes_;
  std::unordered_map<std::uint64_t, PendingOp> pending_;
  /// Vars whose hash home crashed or was migrated across an epoch.
  std::unordered_map<VarId, NodeId> rehome_;
  std::unordered_map<VarId, std::vector<NodeId>> pendingRepairs_;
  std::unordered_map<VarId, NodeId> pendingMigrations_;
  std::uint64_t nextTxn_ = 1;
};

}  // namespace diva
