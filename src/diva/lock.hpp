#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "diva/stats.hpp"
#include "diva/types.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace diva {

using net::NodeId;

/// Mutual exclusion on global variables. Two implementations mirror the
/// two data strategies: token passing on the variable's access tree
/// (Raymond's algorithm — requests and the token travel tree edges, so
/// lock traffic has the same topological locality as the data), and a
/// centralized manager at the variable's home.
class LockService {
 public:
  virtual ~LockService() = default;
  virtual sim::Task<void> acquire(NodeId p, VarId lock) = 0;
  virtual sim::Task<void> release(NodeId p, VarId lock) = 0;
  virtual void registerLockFree(VarId lock, NodeId creator) = 0;
  virtual void handleMessage(net::Message&& msg) = 0;
  /// Quiescence check: no holder, no queued requests (tests).
  virtual void checkIdle(VarId lock) const = 0;
};

/// Raymond's token-based algorithm on the access tree of the lock's
/// variable. Every tree node keeps a pointer toward the token and a FIFO
/// of pending requests; requests climb toward the token, the token flips
/// pointers as it travels back. O(tree depth) messages per acquisition,
/// with locality: contenders in one cluster resolve within it.
class TreeLockService final : public LockService {
 public:
  /// `tree` is the strategy's cluster tree (lock traffic travels the same
  /// access trees as the data); `embedding`/`seed` select the same
  /// per-variable hosts.
  TreeLockService(net::Network& net, Stats& stats, const net::ClusterTree& tree,
                  net::EmbeddingKind embedding, std::uint64_t seed);

  sim::Task<void> acquire(NodeId p, VarId lock) override;
  sim::Task<void> release(NodeId p, VarId lock) override;
  void registerLockFree(VarId lock, NodeId creator) override;
  void handleMessage(net::Message&& msg) override;
  void checkIdle(VarId lock) const override;

  /// Rebind the service to a new cluster tree after a reconfiguration
  /// epoch. Requires every lock idle (called at the quiescent commit
  /// point): token state is rebuilt lazily with each token back at its
  /// lock's anchor leaf; anchors whose processor left the machine move
  /// to the deterministic next member.
  void rebuild(const net::ClusterTree& tree);

 private:
  static constexpr std::int32_t kSelf = -2;  ///< holderDir: token is here / request is local

  struct NodeState {
    std::int32_t holderDir = -3;      ///< tree node toward token; kSelf if here; -3 unset
    bool asked = false;               ///< a request toward the token is outstanding
    bool inUse = false;               ///< leaf only: the local app holds the token
    std::deque<std::int32_t> reqQ;    ///< pending requests (neighbor node or kSelf)
  };
  struct Body {
    enum class K : std::uint8_t { Request, Token, Release } k = K::Request;
    VarId lock = kInvalidVar;
    std::int32_t atNode = -1;
    std::int32_t fromNode = kSelf;
  };

  NodeState& stateOf(VarId lock, std::int32_t node);
  std::int32_t defaultHolderDir(VarId lock, std::int32_t node) const;
  void onRequest(VarId lock, std::int32_t node, std::int32_t from);
  void onToken(VarId lock, std::int32_t node);
  void grantNext(VarId lock, std::int32_t node);
  void send(VarId lock, std::int32_t fromNode, std::int32_t toNode, Body&& b);
  NodeId hostOf(std::int32_t node, VarId lock) const;

  net::Network& net_;
  Stats& stats_;
  const net::ClusterTree* tree_;  ///< swapped by rebuild() across epochs
  net::EmbeddingKind embedding_;
  std::uint64_t seed_;
  std::unordered_map<VarId, std::unordered_map<std::int32_t, NodeState>> states_;
  /// Processor whose leaf holds the token when a lock's state is (re)built
  /// lazily — the creator, until reconfiguration moves it to a member.
  std::unordered_map<VarId, NodeId> anchorProc_;
  std::unordered_map<std::uint64_t, sim::OneShot<bool>*> waiting_;  ///< (lock,proc) → acquire
};

/// Centralized lock manager at the variable's (random) home processor —
/// the natural companion of the fixed home strategy.
class CentralLockService final : public LockService {
 public:
  CentralLockService(net::Network& net, Stats& stats, std::uint64_t seed);

  sim::Task<void> acquire(NodeId p, VarId lock) override;
  sim::Task<void> release(NodeId p, VarId lock) override;
  void registerLockFree(VarId lock, NodeId creator) override;
  void handleMessage(net::Message&& msg) override;
  void checkIdle(VarId lock) const override;

 private:
  struct Body {
    enum class K : std::uint8_t { Request, Grant, Release } k = K::Request;
    VarId lock = kInvalidVar;
    NodeId requester = -1;
  };
  struct LockState {
    bool held = false;
    std::deque<NodeId> queue;
  };

  NodeId homeOf(VarId lock) const;

  net::Network& net_;
  Stats& stats_;
  std::uint64_t seed_;
  /// Home-hash modulus, pinned at construction: the machine may grow, but
  /// the base hash mapping must stay a pure function of the lock id.
  std::uint64_t baseProcs_;
  std::unordered_map<VarId, LockState> locks_;
  std::unordered_map<std::uint64_t, sim::OneShot<bool>*> waiting_;
};

}  // namespace diva
