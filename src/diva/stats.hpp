#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mesh/link_stats.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace diva {

/// Measurement state for one simulated run: per-link traffic (with phase
/// scoping), operation counters, and per-phase simulated wall/compute
/// time. Everything here is an observer — it never influences the run.
class Stats {
 public:
  /// Phases available without growth; `ensurePhases` extends past this.
  static constexpr int kMaxPhases = 8;

  explicit Stats(const net::Topology& topo)
      : links(topo.numLinkSlots(), kMaxPhases),
        computeUs_(kMaxPhases, 0.0),
        wallUs_(kMaxPhases, 0.0) {}

  mesh::LinkStats links;

  struct Counters {
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;     ///< served from the local cache
    std::uint64_t readRemote = 0;
    std::uint64_t writes = 0;
    std::uint64_t writeLocal = 0;   ///< owner/home-free local writes
    std::uint64_t writeRemote = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t barriers = 0;
    std::uint64_t locks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t evictionFailures = 0;
    std::uint64_t protocolRetries = 0;
    // Fault/repair accounting (docs/faults.md); all zero on healthy runs.
    std::uint64_t failedOps = 0;        ///< ops abandoned because the issuer was down
    std::uint64_t retriedOps = 0;       ///< op retries while the issuer was down
    std::uint64_t repairedVars = 0;     ///< per-variable repair actions after crashes
    std::uint64_t recoveryMessages = 0; ///< messages attributable to repair
    std::uint64_t recoveryBytes = 0;    ///< payload bytes moved by repair
    // Reconfiguration accounting (docs/faults.md "Reconfiguration"); all
    // zero on fixed-shape runs.
    std::uint64_t migratedVars = 0;       ///< variables re-homed across epochs
    std::uint64_t migrationMessages = 0;  ///< messages attributable to migration
    std::uint64_t migrationBytes = 0;     ///< payload bytes moved by migration
    std::uint64_t forwardedOps = 0;       ///< ops forwarded during handoff windows
  } ops;

  void setPhase(int p, sim::Time now) {
    wallUs_[phase_] += now - phaseStart_;
    phase_ = p;
    phaseStart_ = now;
    links.setPhase(p);
  }
  int currentPhase() const { return phase_; }
  int numPhases() const { return static_cast<int>(wallUs_.size()); }

  /// Grow phase-scoped storage (link cells, wall/compute accumulators) to
  /// at least `n` phases. Workloads with more phases than kMaxPhases call
  /// this once up front; growth appends zeroed slots, never moves counts.
  void ensurePhases(int n) {
    if (n <= numPhases()) return;
    links.ensurePhases(n);
    computeUs_.resize(static_cast<std::size_t>(n), 0.0);
    wallUs_.resize(static_cast<std::size_t>(n), 0.0);
  }

  /// Charge `us` of application compute to the current phase.
  void addCompute(double us) { computeUs_[phase_] += us; }

  double computeUs(int phase) const { return computeUs_[phase]; }
  double totalComputeUs() const {
    double s = 0;
    for (double v : computeUs_) s += v;
    return s;
  }
  /// Simulated wall time spent while `phase` was current (closed via
  /// setPhase / closePhases).
  double wallUs(int phase) const { return wallUs_[phase]; }

  void closePhases(sim::Time now) {
    wallUs_[phase_] += now - phaseStart_;
    phaseStart_ = now;
  }

  /// Reset all measurements (e.g. after warm-up rounds); keeps the
  /// current phase.
  void reset(sim::Time now) {
    links.reset();
    ops = Counters{};
    std::fill(computeUs_.begin(), computeUs_.end(), 0.0);
    std::fill(wallUs_.begin(), wallUs_.end(), 0.0);
    phaseStart_ = now;
  }

 private:
  int phase_ = 0;
  sim::Time phaseStart_ = 0;
  std::vector<double> computeUs_;
  std::vector<double> wallUs_;
};

}  // namespace diva
