#pragma once

#include <array>
#include <cstdint>

#include "mesh/link_stats.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace diva {

/// Measurement state for one simulated run: per-link traffic (with phase
/// scoping), operation counters, and per-phase simulated wall/compute
/// time. Everything here is an observer — it never influences the run.
class Stats {
 public:
  static constexpr int kMaxPhases = 8;

  explicit Stats(const net::Topology& topo) : links(topo.numLinkSlots(), kMaxPhases) {}

  mesh::LinkStats links;

  struct Counters {
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;     ///< served from the local cache
    std::uint64_t readRemote = 0;
    std::uint64_t writes = 0;
    std::uint64_t writeLocal = 0;   ///< owner/home-free local writes
    std::uint64_t writeRemote = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t barriers = 0;
    std::uint64_t locks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t evictionFailures = 0;
    std::uint64_t protocolRetries = 0;
  } ops;

  void setPhase(int p, sim::Time now) {
    wallUs_[phase_] += now - phaseStart_;
    phase_ = p;
    phaseStart_ = now;
    links.setPhase(p);
  }
  int currentPhase() const { return phase_; }

  /// Charge `us` of application compute to the current phase.
  void addCompute(double us) { computeUs_[phase_] += us; }

  double computeUs(int phase) const { return computeUs_[phase]; }
  double totalComputeUs() const {
    double s = 0;
    for (double v : computeUs_) s += v;
    return s;
  }
  /// Simulated wall time spent while `phase` was current (closed via
  /// setPhase / closePhases).
  double wallUs(int phase) const { return wallUs_[phase]; }

  void closePhases(sim::Time now) {
    wallUs_[phase_] += now - phaseStart_;
    phaseStart_ = now;
  }

  /// Reset all measurements (e.g. after warm-up rounds); keeps the
  /// current phase.
  void reset(sim::Time now) {
    links.reset();
    ops = Counters{};
    computeUs_.fill(0.0);
    wallUs_.fill(0.0);
    phaseStart_ = now;
  }

 private:
  int phase_ = 0;
  sim::Time phaseStart_ = 0;
  std::array<double, kMaxPhases> computeUs_{};
  std::array<double, kMaxPhases> wallUs_{};
};

}  // namespace diva
