#include "diva/runtime.hpp"

#include "diva/access_tree_strategy.hpp"
#include "diva/fixed_home_strategy.hpp"

namespace diva {

Runtime::Runtime(Machine& machine, RuntimeConfig config)
    : machine_(machine), config_(config) {
  // Fail fast on configurations that would otherwise misbehave deep
  // inside the protocol (or silently measure the wrong machine).
  DIVA_CHECK_MSG(config.arity == 2 || config.arity == 4 || config.arity == 16,
                 "RuntimeConfig: arity must be 2, 4 or 16 (got " << config.arity << ")");
  DIVA_CHECK_MSG(config.leafSize >= 1,
                 "RuntimeConfig: leafSize must be positive (got " << config.leafSize
                                                                  << ")");
  DIVA_CHECK_MSG(config.leafSize <= 32,
                 "RuntimeConfig: leafSize must be <= 32 — access-tree child-copy "
                 "masks are 32-bit (got "
                     << config.leafSize << ")");
  if (config.topology.specified()) {
    DIVA_CHECK_MSG(config.topology == machine.topo().spec(),
                   "RuntimeConfig topology " << config.topology.describe()
                                             << " does not match machine topology "
                                             << machine.topo().name());
  }

  caches_.reserve(static_cast<std::size_t>(machine.numProcs()));
  for (int i = 0; i < machine.numProcs(); ++i)
    caches_.emplace_back(config.cacheCapacityBytes);

  if (config.kind == StrategyKind::AccessTree) {
    auto at = std::make_unique<AccessTreeStrategy>(
        machine.net, machine.stats, caches_,
        AccessTreeStrategy::Params{config.arity, config.leafSize, config.embedding,
                                   config.seed});
    // Locks travel the same access trees as the data.
    auto tl = std::make_unique<TreeLockService>(machine.net, machine.stats, at->tree(),
                                                config.embedding, config.seed);
    treeLocks_ = tl.get();
    locks_ = std::move(tl);
    strategy_ = std::move(at);
  } else {
    strategy_ = std::make_unique<FixedHomeStrategy>(
        machine.net, machine.stats, caches_, FixedHomeStrategy::Params{config.seed});
    locks_ = std::make_unique<CentralLockService>(machine.net, machine.stats,
                                                  config.seed);
  }
  barrier_ = std::make_unique<BarrierService>(machine.net, machine.stats, config.seed);

  // Crash/recover transitions drive the strategy's protocol repair
  // (docs/faults.md); never fires on fault-free runs.
  livenessToken_ = machine.net.addLivenessListener([this](NodeId n, bool up) {
    if (up) {
      strategy_->onNodeUp(n);
    } else {
      strategy_->onNodeDown(n);
    }
  });

  for (NodeId n = 0; n < machine.numProcs(); ++n) {
    machine.net.setHandler(n, net::kProtocolChannel,
                           [this](net::Message&& m) { strategy_->handleMessage(std::move(m)); });
    machine.net.setHandler(n, net::kSyncChannel,
                           [this](net::Message&& m) { barrier_->handleMessage(std::move(m)); });
    machine.net.setHandler(n, net::kLockChannel,
                           [this](net::Message&& m) { locks_->handleMessage(std::move(m)); });
  }
  handledProcs_ = machine.numProcs();

  // Structural epochs (add/remove node or link, docs/faults.md
  // "Reconfiguration"); never fires on fixed-shape runs.
  reconfigToken_ = machine.net.addReconfigListener([this] { onReconfigEpoch(); });
}

Runtime::~Runtime() {
  if (livenessToken_ >= 0) machine_.net.removeLivenessListener(livenessToken_);
  if (reconfigToken_ >= 0) machine_.net.removeReconfigListener(reconfigToken_);
}

void Runtime::onReconfigEpoch() {
  // Equip any nodes that just joined: a cold cache plus the runtime's
  // channel handlers, so protocol, barrier and lock traffic can target
  // them from this instant on.
  const int n = machine_.net.numNodes();
  for (int i = static_cast<int>(caches_.size()); i < n; ++i)
    caches_.emplace_back(config_.cacheCapacityBytes);
  for (NodeId p = handledProcs_; p < n; ++p) {
    machine_.net.setHandler(p, net::kProtocolChannel,
                            [this](net::Message&& m) { strategy_->handleMessage(std::move(m)); });
    machine_.net.setHandler(p, net::kSyncChannel,
                            [this](net::Message&& m) { barrier_->handleMessage(std::move(m)); });
    machine_.net.setHandler(p, net::kLockChannel,
                            [this](net::Message&& m) { locks_->handleMessage(std::move(m)); });
  }
  handledProcs_ = n;

  // The strategy migrates its management state onto the new shape's tree
  // (deferring busy variables; forwarding serves them meanwhile).
  strategy_->onReconfig();
}

void Runtime::completeReconfig() {
  const int epoch = machine_.net.reconfigEpoch();
  if (epoch == committedEpoch_) return;
  committedEpoch_ = epoch;
  // Sever retiring links first so the lock/barrier trees are rebuilt over
  // the committed (target) topology.
  machine_.net.commitReconfig();
  if (treeLocks_)
    treeLocks_->rebuild(static_cast<const AccessTreeStrategy&>(*strategy_).tree());
  barrier_->rebuild();
}

sim::Task<Value> Runtime::read(NodeId p, VarId x) {
  ++machine_.stats.ops.reads;
  machine_.net.reserveCpu(p, machine_.net.cost().cacheHitUs);
  if (NodeCache::Entry* e = caches_[p].touch(x)) {
    ++machine_.stats.ops.readHits;
    co_return e->value;
  }
  ++machine_.stats.ops.readRemote;
  co_return co_await strategy_->read(p, x);
}

sim::Task<void> Runtime::write(NodeId p, VarId x, Value v) {
  ++machine_.stats.ops.writes;
  machine_.net.reserveCpu(p, machine_.net.cost().cacheHitUs);
  const NodeCache::Entry* e = caches_[p].peek(x);
  if (e && (e->owned || e->copyCount > 0)) {
    ++machine_.stats.ops.writeLocal;  // nearest copy is local (may still multicast)
  } else {
    ++machine_.stats.ops.writeRemote;
  }
  co_await strategy_->write(p, x, std::move(v));
  co_return;
}

VarId Runtime::createVarFree(NodeId owner, Value init, bool withLock) {
  const VarId x = nextVar_++;
  strategy_->registerVarFree(x, owner, std::move(init));
  if (withLock) locks_->registerLockFree(x, owner);
  liveVars_.insert(x);
  return x;
}

sim::Task<VarId> Runtime::createVar(NodeId owner, Value init, bool withLock) {
  const VarId x = nextVar_++;
  liveVars_.insert(x);
  if (withLock) locks_->registerLockFree(x, owner);
  co_await strategy_->registerVar(x, owner, std::move(init));
  co_return x;
}

void Runtime::destroyVarFree(VarId x) {
  strategy_->destroyVarFree(x);
  liveVars_.erase(x);
}

sim::Task<void> Runtime::barrier(NodeId p) { return barrier_->arrive(p); }

sim::Task<void> Runtime::lock(NodeId p, VarId x) { return locks_->acquire(p, x); }

sim::Task<void> Runtime::unlock(NodeId p, VarId x) { return locks_->release(p, x); }

void Runtime::checkAllInvariants() const {
  for (VarId x : liveVars_) strategy_->checkInvariants(x);
}

}  // namespace diva
