#include "diva/fixed_home_strategy.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace diva {

FixedHomeStrategy::FixedHomeStrategy(net::Network& net, Stats& stats,
                                     std::vector<NodeCache>& caches, Params params)
    : net_(net),
      stats_(stats),
      caches_(caches),
      params_(params),
      baseProcs_(static_cast<std::uint64_t>(net.numNodes())) {}

NodeId FixedHomeStrategy::homeOf(VarId x) const {
  if (!rehome_.empty()) {
    const auto it = rehome_.find(x);
    if (it != rehome_.end()) return it->second;
  }
  return static_cast<NodeId>(support::hashBelow(
      support::hashCombine(params_.seed, x, 0xf1bedull), baseProcs_));
}

NodeId FixedHomeStrategy::memberHomeOf(VarId x) const {
  return net_.memberAt(static_cast<int>(support::hashBelow(
      support::hashCombine(params_.seed, x, 0xf1bedull),
      static_cast<std::uint64_t>(net_.numMembers()))));
}

void FixedHomeStrategy::assignHome(VarId x) {
  // Variables created after an epoch home straight onto the member set —
  // the base hash may name a retired node.
  if (net_.reconfigEpoch() == 0) return;
  const NodeId target = memberHomeOf(x);
  if (target != homeOf(x)) rehome_[x] = target;
}

void FixedHomeStrategy::sendBody(NodeId src, NodeId dst, FhBody&& b,
                                 std::uint64_t payloadBytes) {
  net_.post(net::Message{src, dst, net::kProtocolChannel, payloadBytes, std::move(b)});
}

void FixedHomeStrategy::addCopyHolder(HomeEntry& he, NodeId p) {
  if (std::find(he.copyHolders.begin(), he.copyHolders.end(), p) == he.copyHolders.end())
    he.copyHolders.push_back(p);
}

void FixedHomeStrategy::dropCopyHolder(HomeEntry& he, NodeId p) {
  he.copyHolders.erase(std::remove(he.copyHolders.begin(), he.copyHolders.end(), p),
                       he.copyHolders.end());
}

// ---------------------------------------------------------------------------
// Application-facing operations
// ---------------------------------------------------------------------------

sim::Task<Value> FixedHomeStrategy::read(NodeId p, VarId x) {
  if (NodeCache::Entry* e = caches_[p].touch(x)) co_return e->value;

  const std::uint64_t txn = nextTxn_++;
  sim::OneShot<Value> done(net_.engine());
  pending_[txn] = PendingOp{&done, x, p};

  FhBody b;
  b.k = FhBody::K::ReadReq;
  b.var = x;
  b.txn = txn;
  b.requester = p;
  sendBody(p, homeOf(x), std::move(b), 0);

  Value v = co_await done.wait();
  pending_.erase(txn);
  drainRepairs(x);
  co_return v;
}

sim::Task<void> FixedHomeStrategy::write(NodeId p, VarId x, Value v) {
  NodeCache::Entry* e = caches_[p].touch(x);
  if (e && e->owned) {
    // Owner writes are local (the ownership scheme's whole point).
    e->value = std::move(v);
    co_return;
  }

  const std::uint64_t txn = nextTxn_++;
  sim::OneShot<Value> done(net_.engine());
  pending_[txn] = PendingOp{&done, x, p};

  FhBody b;
  b.k = FhBody::K::WriteReq;
  b.var = x;
  b.txn = txn;
  b.requester = p;
  sendBody(p, homeOf(x), std::move(b), 0);

  (void)co_await done.wait();
  pending_.erase(txn);

  // Ownership granted: install the new value locally.
  NodeCache::Entry& mine = caches_[p].put(x, std::move(v));
  mine.copyCount = 1;
  mine.owned = true;
  maybeEvictAt(p);
  drainRepairs(x);
  co_return;
}

void FixedHomeStrategy::maybeEvictAt(NodeId p) {
  NodeCache& cache = caches_[p];
  while (cache.overCapacity()) {
    const bool evicted =
        cache.scanLru([&](VarId v, NodeCache::Entry&) { return tryEvict(p, v); });
    if (!evicted) {
      ++stats_.ops.evictionFailures;
      return;
    }
  }
}

void FixedHomeStrategy::registerVarFree(VarId x, NodeId owner, Value init) {
  DIVA_CHECK_MSG(!homes_.contains(x), "variable registered twice");
  assignHome(x);
  HomeEntry& he = homes_[x];
  he.owner = owner;
  he.copyHolders = {owner};
  NodeCache::Entry& e = caches_[owner].put(x, std::move(init));
  e.copyCount = 1;
  e.owned = true;
}

sim::Task<void> FixedHomeStrategy::registerVar(VarId x, NodeId owner, Value init) {
  // Directory becomes consistent immediately; the registration message to
  // the home is charged as cost-only traffic (mirrors the access tree's
  // fire-and-forget root-path marking).
  registerVarFree(x, owner, std::move(init));
  FhBody b;
  b.k = FhBody::K::Reg;
  b.var = x;
  b.requester = owner;
  sendBody(owner, homeOf(x), std::move(b), 0);
  co_return;
}

void FixedHomeStrategy::destroyVarFree(VarId x) {
  auto it = homes_.find(x);
  if (it == homes_.end()) return;
  HomeEntry& he = it->second;
  DIVA_CHECK_MSG(!he.busy && he.queue.empty() && he.pendingInvalAcks == 0,
                 "destroying a variable with a transaction in flight");
  for (NodeId p : he.copyHolders) caches_[p].erase(x);
  if (he.owner == kHomeOwner) caches_[homeOf(x)].erase(x);
  homes_.erase(it);
  rehome_.erase(x);
  pendingRepairs_.erase(x);
  pendingMigrations_.erase(x);
}

Value FixedHomeStrategy::peek(VarId x) const {
  const auto it = homes_.find(x);
  DIVA_CHECK_MSG(it != homes_.end(), "peek of unregistered variable");
  const NodeId at = it->second.owner == kHomeOwner ? homeOf(x) : it->second.owner;
  const NodeCache::Entry* e = caches_[at].peek(x);
  DIVA_CHECK(e && e->value);
  return e->value;
}

// ---------------------------------------------------------------------------
// Protocol engine
// ---------------------------------------------------------------------------

void FixedHomeStrategy::handleMessage(net::Message&& msg) {
  const FhBody& peeked = msg.as<FhBody>();
  switch (peeked.k) {
    // Home-side entry points that start a transaction (serialized per var):
    case FhBody::K::ReadReq:
    case FhBody::K::WriteReq:
      serveAtHome(std::move(msg));
      return;
    default:
      break;
  }
  FhBody b = msg.take<FhBody>();
  const NodeId self = msg.dst;
  switch (b.k) {
    case FhBody::K::Fetch: {
      // Owner returns the value to the home and cedes ownership (keeps a
      // valid copy, per the ownership scheme's read rule).
      NodeCache::Entry* e = caches_[self].peek(b.var);
      DIVA_CHECK_MSG(e && e->owned, "fetch at a non-owner");
      e->owned = false;
      FhBody r;
      r.k = FhBody::K::FetchData;
      r.var = b.var;
      r.value = e->value;
      const std::uint64_t bytes = e->value->size();
      sendBody(self, homeOf(b.var), std::move(r), bytes);
      // A retired owner cedes and keeps nothing behind.
      if (!net_.nodeMember(self)) caches_[self].erase(b.var);
      return;
    }
    case FhBody::K::FetchData: {
      HomeEntry& he = homes_.at(b.var);
      DIVA_CHECK(he.busy);
      // The old owner keeps a copy — unless it retired mid-fetch.
      if (net_.nodeMember(he.owner)) addCopyHolder(he, he.owner);
      he.owner = kHomeOwner;
      caches_[self].put(b.var, b.value).copyCount = 1;  // home's copy
      maybeEvictAt(self);
      // Resume the read or write that triggered the fetch.
      DIVA_CHECK(!he.queue.empty());
      net::Message original = std::move(he.queue.front());
      he.queue.pop_front();
      he.busy = false;
      if (processTransaction(he, std::move(original))) finishTransaction(b.var);
      return;
    }
    case FhBody::K::Data: {
      // A retired requester is served but caches nothing (it is no longer
      // in the directory's holder list — see processTransaction).
      if (net_.nodeMember(self)) {
        caches_[self].put(b.var, b.value).copyCount = 1;
        maybeEvictAt(self);
      }
      auto it = pending_.find(b.txn);
      DIVA_CHECK(it != pending_.end());
      it->second.done->resolve(std::move(b.value));
      return;
    }
    case FhBody::K::Inval: {
      // Copies may already be gone if an eviction notice is in flight.
      NodeCache::Entry* e = caches_[self].peek(b.var);
      if (e) {
        DIVA_CHECK_MSG(!e->owned, "invalidating the owner");
        caches_[self].erase(b.var);
      }
      ++stats_.ops.invalidations;
      FhBody ack;
      ack.k = FhBody::K::InvalAck;
      ack.var = b.var;
      sendBody(self, homeOf(b.var), std::move(ack), 0);
      return;
    }
    case FhBody::K::InvalAck: {
      HomeEntry& he = homes_.at(b.var);
      DIVA_CHECK(he.busy && he.pendingInvalAcks > 0);
      if (--he.pendingInvalAcks == 0) {
        he.owner = he.writer;
        he.copyHolders = {he.writer};
        // A writer that retired mid-write still gets ownership (it holds
        // the only current value); park a migration so its retirement
        // drain cedes the value back onto the member set.
        if (!net_.nodeMember(he.writer))
          pendingMigrations_[b.var] = memberHomeOf(b.var);
        FhBody ack;
        ack.k = FhBody::K::WriteAck;
        ack.var = b.var;
        ack.txn = he.writeTxn;
        sendBody(self, he.writer, std::move(ack), 0);
        finishTransaction(b.var);
      }
      return;
    }
    case FhBody::K::WriteAck: {
      auto it = pending_.find(b.txn);
      DIVA_CHECK(it != pending_.end());
      it->second.done->resolve(Value{});
      return;
    }
    case FhBody::K::Reg:
      // Cost-only: the directory entry was installed at registration.
      return;
    case FhBody::K::RegAck: {
      auto it = pending_.find(b.txn);
      DIVA_CHECK(it != pending_.end());
      it->second.done->resolve(Value{});
      return;
    }
    case FhBody::K::Drop:
      // Directory already updated at eviction time (see tryEvict); the
      // message only accounts for the notification traffic.
      return;
    case FhBody::K::Recover:
      // Cost-only: repair mutates directory and caches synchronously at
      // crash/drain time (see repairVar); this message charges the
      // salvage traffic so congestion-during-repair is visible. Arrival
      // closes the repair span its send opened.
      if (obs::Tracer* tr = net_.tracer())
        tr->endAsync(obs::kCatRepair, msg.dst, "repair",
                     static_cast<std::int64_t>(peeked.var));
      return;
    case FhBody::K::Migrate:
      // Cost-only, mirroring Recover: epoch migration moves directory and
      // home copy synchronously (see migrateVar); this message charges
      // the handoff traffic. Arrival closes the migration span its send
      // opened.
      if (obs::Tracer* tr = net_.tracer())
        tr->endAsync(obs::kCatMigration, msg.dst, "migrate",
                     static_cast<std::int64_t>(peeked.var));
      return;
    default:
      DIVA_CHECK_MSG(false, "unhandled fixed-home message kind");
  }
}

void FixedHomeStrategy::serveAtHome(net::Message&& msg) {
  const FhBody& b = msg.as<FhBody>();
  const NodeId home = homeOf(b.var);
  if (msg.dst != home) [[unlikely]] {
    // The request was addressed to a home that was re-homed — by crash
    // repair or by an epoch migration — while the message was in flight:
    // forward to the current home (classic directory-migration
    // forwarding), charged as repair traffic.
    ++stats_.ops.recoveryMessages;
    ++stats_.ops.forwardedOps;
    FhBody fwd = msg.take<FhBody>();
    sendBody(msg.dst, home, std::move(fwd), 0);
    return;
  }
  const VarId x = b.var;
  HomeEntry& he = homes_.at(x);
  if (he.busy) {
    he.queue.push_back(std::move(msg));
    return;
  }
  if (processTransaction(he, std::move(msg))) finishTransaction(x);
}

bool FixedHomeStrategy::processTransaction(HomeEntry& he, net::Message&& msg) {
  FhBody b = msg.take<FhBody>();
  const NodeId home = msg.dst;
  he.busy = true;

  if (he.owner != kHomeOwner && he.owner != b.requester) {
    // A node-owner holds the only current copy. Reads need its value;
    // writes must reclaim ownership before the invalidation round (the
    // owner's copy may not be invalidated in place — it is authoritative
    // until ceded). Both cases: fetch from the owner and park this
    // request at the queue front so FetchData can resume it. This path
    // is what makes *blind* writes (no prior read, e.g. synthetic
    // workloads) safe under the ownership scheme.
    FhBody f;
    f.k = FhBody::K::Fetch;
    f.var = b.var;
    const NodeId owner = he.owner;
    net::Message parked;
    parked.src = msg.src;
    parked.dst = msg.dst;
    parked.channel = msg.channel;
    parked.body = std::move(b);
    he.queue.push_front(std::move(parked));
    sendBody(home, owner, std::move(f), 0);
    return false;
  }

  if (b.k == FhBody::K::ReadReq) {
    // Home (or the requester itself — cannot happen on the miss path)
    // holds a current copy: serve directly.
    NodeCache::Entry* e = caches_[home].touch(b.var);
    DIVA_CHECK_MSG(e && e->value, "home lost its copy");
    FhBody d;
    d.k = FhBody::K::Data;
    d.var = b.var;
    d.txn = b.txn;
    d.value = e->value;
    const std::uint64_t bytes = e->value->size();
    // A requester that retired while its request was in flight still gets
    // its value (the epoch scrub already ran), but keeps no copy.
    if (net_.nodeMember(b.requester)) addCopyHolder(he, b.requester);
    sendBody(home, b.requester, std::move(d), bytes);
    return true;
  }

  DIVA_CHECK(b.k == FhBody::K::WriteReq);
  he.writeTxn = b.txn;
  he.writer = b.requester;
  he.pendingInvalAcks = 0;
  for (NodeId q : he.copyHolders) {
    if (q == b.requester) continue;
    FhBody iv;
    iv.k = FhBody::K::Inval;
    iv.var = b.var;
    sendBody(home, q, std::move(iv), 0);
    ++he.pendingInvalAcks;
  }
  if (he.owner == kHomeOwner) {
    // The home's own copy becomes stale; drop it locally.
    caches_[home].erase(b.var);
  }
  if (he.pendingInvalAcks == 0) {
    he.owner = b.requester;
    he.copyHolders = {b.requester};
    // Same retired-writer handling as the InvalAck completion path.
    if (!net_.nodeMember(b.requester))
      pendingMigrations_[b.var] = memberHomeOf(b.var);
    FhBody ack;
    ack.k = FhBody::K::WriteAck;
    ack.var = b.var;
    ack.txn = b.txn;
    sendBody(home, b.requester, std::move(ack), 0);
    return true;
  }
  return false;
}

void FixedHomeStrategy::finishTransaction(VarId x) {
  HomeEntry& he = homes_.at(x);
  // Iterative drain: at a hotspot home the queue can hold tens of
  // thousands of transactions (one per requesting processor), and most
  // of them — reads served from the home's copy — complete
  // synchronously. A finish→process recursion here burns one stack
  // frame per queued transaction and overflows on large machines.
  for (;;) {
    he.busy = false;
    if (he.queue.empty()) {
      drainRepairs(x);
      return;
    }
    net::Message next = std::move(he.queue.front());
    he.queue.pop_front();
    if (!processTransaction(he, std::move(next))) return;
  }
}

// ---------------------------------------------------------------------------
// LRU replacement
// ---------------------------------------------------------------------------

bool FixedHomeStrategy::tryEvict(NodeId p, VarId x) {
  NodeCache::Entry* e = caches_[p].peek(x);
  if (!e || e->pinned || e->owned) return false;
  const auto it = homes_.find(x);
  if (it == homes_.end()) return false;
  if (it->second.busy) return false;  // don't race an active transaction
  if (p == homeOf(x) && it->second.owner == kHomeOwner) {
    // The home's copy is the authoritative one while the home owns the
    // data; dropping it would orphan the value. Keep it resident.
    return false;
  }
  caches_[p].erase(x);
  // The home's directory is updated by the simulator state directly and
  // the (asynchronous) notification message cost is still charged — this
  // sidesteps transient directory/ack races without losing the traffic.
  dropCopyHolder(it->second, p);
  ++stats_.ops.evictions;
  FhBody drop;
  drop.k = FhBody::K::Drop;
  drop.var = x;
  drop.requester = p;
  sendBody(p, homeOf(x), std::move(drop), 0);
  return true;
}

// ---------------------------------------------------------------------------
// Crash repair (docs/faults.md)
// ---------------------------------------------------------------------------

NodeId FixedHomeStrategy::nextLiveAfter(NodeId p) const {
  const int n = net_.numNodes();
  NodeId q = static_cast<NodeId>((p + 1) % n);
  while (!net_.nodeUp(q) || !net_.nodeMember(q)) q = static_cast<NodeId>((q + 1) % n);
  return q;  // terminates: the network forbids crashing the last live node
}

bool FixedHomeStrategy::varQuiet(VarId x) const {
  const HomeEntry& he = homes_.at(x);
  if (he.busy || !he.queue.empty()) return false;
  // An op that already got its Data/WriteAck still installs a copy at the
  // requester after this point; repair must not run under it. pending_ is
  // bounded by the processor count — a linear scan on the cold path.
  for (const auto& [txn, op] : pending_)
    if (op.var == x) return false;
  return true;
}

void FixedHomeStrategy::onNodeDown(NodeId p) {
  // Collect every variable the dead node touches — as home, owner, copy
  // holder or stray cache entry — and repair in sorted order so the
  // repair traffic is independent of hash-map iteration order.
  std::vector<VarId> affected;
  for (const auto& [x, he] : homes_) {
    const bool touches =
        homeOf(x) == p || he.owner == p ||
        std::find(he.copyHolders.begin(), he.copyHolders.end(), p) !=
            he.copyHolders.end() ||
        caches_[p].peek(x) != nullptr;
    if (touches) affected.push_back(x);
  }
  // An op p issued before crashing will still install a copy at p when it
  // retires; schedule its variable too (the repair defers until then).
  for (const auto& [txn, op] : pending_)
    if (op.issuer == p &&
        std::find(affected.begin(), affected.end(), op.var) == affected.end())
      affected.push_back(op.var);
  std::sort(affected.begin(), affected.end());
  for (VarId x : affected) scheduleRepair(x, p);
}

void FixedHomeStrategy::scheduleRepair(VarId x, NodeId deadNode) {
  if (varQuiet(x)) {
    repairVar(x, deadNode);
    return;
  }
  std::vector<NodeId>& parked = pendingRepairs_[x];
  if (std::find(parked.begin(), parked.end(), deadNode) == parked.end())
    parked.push_back(deadNode);
}

void FixedHomeStrategy::drainRepairs(VarId x) {
  if (!pendingRepairs_.empty()) {
    const auto it = pendingRepairs_.find(x);
    if (it != pendingRepairs_.end() && varQuiet(x)) {
      std::vector<NodeId> dead = std::move(it->second);
      pendingRepairs_.erase(it);
      // Repair even if the node recovered meanwhile: the crash destroyed
      // its application state, so its pre-crash copies are scrubbed
      // regardless.
      for (NodeId p : dead) repairVar(x, p);
    }
  }
  if (!pendingMigrations_.empty()) {
    const auto it = pendingMigrations_.find(x);
    if (it != pendingMigrations_.end() && varQuiet(x)) {
      pendingMigrations_.erase(it);
      migrateEpochVar(x);  // recomputes against the current member set
    }
  }
}

void FixedHomeStrategy::sendRecover(NodeId src, NodeId dst, VarId x,
                                    std::uint64_t payloadBytes) {
  ++stats_.ops.recoveryMessages;
  stats_.ops.recoveryBytes += payloadBytes;
  if (obs::Tracer* tr = net_.tracer())
    tr->beginAsync(obs::kCatRepair, src, "repair", static_cast<std::int64_t>(x));
  FhBody b;
  b.k = FhBody::K::Recover;
  b.var = x;
  sendBody(src, dst, std::move(b), payloadBytes);
}

void FixedHomeStrategy::repairVar(VarId x, NodeId p) {
  HomeEntry& he = homes_.at(x);
  // The last committed value, captured before any scrubbing. The dead
  // node's memory module is still reachable by its protocol agent (the
  // always-on-agent fault model), which is what physically justifies
  // salvaging a value whose only copy sat at p.
  const Value v = peek(x);
  DIVA_CHECK_MSG(v, "repair of variable " << x << " found no value");

  if (homeOf(x) == p) {
    // The home itself died: migrate the directory to the deterministic
    // successor. The home's own copy (when home-owned) moves with it.
    const NodeId s = nextLiveAfter(p);
    rehome_[x] = s;
    std::uint64_t bytes = 0;
    if (he.owner == kHomeOwner) {
      caches_[p].erase(x);
      NodeCache::Entry& e = caches_[s].put(x, v);
      e.copyCount = 1;
      e.owned = false;
      bytes = v->size();
    }
    sendRecover(p, s, x, bytes);
    maybeEvictAt(s);
  }

  const NodeId home = homeOf(x);  // post-migration
  if (he.owner == p) {
    // The owner died holding the only authoritative copy: ownership
    // reverts to the home, which reinstalls the salvaged value.
    he.owner = kHomeOwner;
    dropCopyHolder(he, p);
    caches_[p].erase(x);
    if (!caches_[home].peek(x)) {
      NodeCache::Entry& e = caches_[home].put(x, v);
      e.copyCount = 1;
      e.owned = false;
    }
    sendRecover(p, home, x, v->size());
    maybeEvictAt(home);
  } else if (std::find(he.copyHolders.begin(), he.copyHolders.end(), p) !=
             he.copyHolders.end()) {
    // A plain copy died with the node: drop it from the directory. The
    // notification mirrors the eviction Drop message.
    dropCopyHolder(he, p);
    caches_[p].erase(x);
    sendRecover(p, home, x, 0);
  }
  caches_[p].erase(x);  // stray safety: a dead node keeps no entry for x
  ++stats_.ops.repairedVars;
}

// ---------------------------------------------------------------------------
// Epoch migration (docs/faults.md "Reconfiguration")
// ---------------------------------------------------------------------------

void FixedHomeStrategy::sendMigrate(NodeId src, NodeId dst, VarId x,
                                    std::uint64_t payloadBytes) {
  ++stats_.ops.migrationMessages;
  stats_.ops.migrationBytes += payloadBytes;
  if (obs::Tracer* tr = net_.tracer())
    tr->beginAsync(obs::kCatMigration, src, "migrate", static_cast<std::int64_t>(x));
  FhBody b;
  b.k = FhBody::K::Migrate;
  b.var = x;
  sendBody(src, dst, std::move(b), payloadBytes);
}

void FixedHomeStrategy::migrateVar(VarId x, NodeId target) {
  HomeEntry& he = homes_.at(x);
  const NodeId cur = homeOf(x);
  std::uint64_t bytes = 0;
  if (he.owner == kHomeOwner) {
    // The authoritative home copy moves with the directory. If the old
    // home also sits in the holder list (it read locally while
    // home-owned), its entry stays behind as that plain copy — every
    // copy is current while the home owns the data.
    const Value v = peek(x);
    if (std::find(he.copyHolders.begin(), he.copyHolders.end(), cur) ==
        he.copyHolders.end())
      caches_[cur].erase(x);
    if (!caches_[target].peek(x)) {
      NodeCache::Entry& e = caches_[target].put(x, v);
      e.copyCount = 1;
      e.owned = false;
      bytes = v->size();
    }
  }
  rehome_[x] = target;
  ++stats_.ops.migratedVars;
  sendMigrate(cur, target, x, bytes);
  maybeEvictAt(target);
}

bool FixedHomeStrategy::varNeedsEpochWork(VarId x) const {
  const HomeEntry& he = homes_.at(x);
  if (homeOf(x) != memberHomeOf(x)) return true;
  if (he.owner != kHomeOwner && !net_.nodeMember(he.owner)) return true;
  for (NodeId p : he.copyHolders)
    if (!net_.nodeMember(p)) return true;
  return false;
}

void FixedHomeStrategy::migrateEpochVar(VarId x) {
  HomeEntry& he = homes_.at(x);
  bool moved = false;
  // A retired owner cedes: the authoritative value reverts to home
  // ownership. The retiring node's links (and protocol agent) stay up
  // until commitReconfig, which is what physically justifies the
  // synchronous salvage — the Migrate message charges its traffic.
  if (he.owner != kHomeOwner && !net_.nodeMember(he.owner)) {
    const NodeId r = he.owner;
    const Value v = peek(x);
    he.owner = kHomeOwner;
    dropCopyHolder(he, r);
    caches_[r].erase(x);
    const NodeId home = homeOf(x);
    if (!caches_[home].peek(x)) {
      NodeCache::Entry& e = caches_[home].put(x, v);
      e.copyCount = 1;
      e.owned = false;
    }
    sendMigrate(r, home, x, v->size());
    maybeEvictAt(home);
    moved = true;
  }
  // Retired plain copies leave the directory (mirrors the eviction Drop).
  // A retiring home can sit in its own holder list (it read locally while
  // home-owned): its cache entry is the authoritative home copy, so leave
  // it in place for the re-home below to move.
  for (std::size_t i = he.copyHolders.size(); i-- > 0;) {
    const NodeId p = he.copyHolders[i];
    if (net_.nodeMember(p)) continue;
    dropCopyHolder(he, p);
    if (he.owner != kHomeOwner || p != homeOf(x)) caches_[p].erase(x);
    sendMigrate(p, homeOf(x), x, 0);
    moved = true;
  }
  // The home target re-hashes over the member set.
  const NodeId target = memberHomeOf(x);
  if (homeOf(x) != target) {
    migrateVar(x, target);  // counts the variable itself
    moved = false;
  }
  if (moved) ++stats_.ops.migratedVars;
}

void FixedHomeStrategy::onReconfig() {
  // Every variable re-hashes its home over the new member set and scrubs
  // retired owners/copies; movers migrate in sorted id order so the
  // handoff traffic is independent of hash-map iteration order. Busy
  // variables defer until quiet (their requests forward through the old
  // home meanwhile).
  std::vector<VarId> vars;
  vars.reserve(homes_.size());
  for (const auto& [x, he] : homes_) vars.push_back(x);
  std::sort(vars.begin(), vars.end());
  for (VarId x : vars) {
    if (!varNeedsEpochWork(x)) {
      pendingMigrations_.erase(x);
      continue;
    }
    if (varQuiet(x)) {
      pendingMigrations_.erase(x);
      migrateEpochVar(x);
    } else {
      pendingMigrations_[x] = memberHomeOf(x);  // drain recomputes the target
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

void FixedHomeStrategy::checkInvariants(VarId x) const {
  const auto it = homes_.find(x);
  DIVA_CHECK_MSG(it != homes_.end(), "unregistered variable " << x);
  const HomeEntry& he = it->second;
  DIVA_CHECK_MSG(!he.busy && he.queue.empty() && he.pendingInvalAcks == 0,
                 "transaction still in flight for variable " << x);
  DIVA_CHECK_MSG(!pendingRepairs_.contains(x),
                 "repair still parked for variable " << x << " at quiescence");
  DIVA_CHECK_MSG(!pendingMigrations_.contains(x),
                 "migration still parked for variable " << x << " at quiescence");

  const NodeId home = homeOf(x);
  DIVA_CHECK_MSG(net_.nodeUp(home), "home of variable " << x << " is down");
  DIVA_CHECK_MSG(net_.nodeMember(home), "home of variable " << x << " is retired");
  DIVA_CHECK_MSG(he.owner == kHomeOwner || net_.nodeUp(he.owner),
                 "owner of variable " << x << " is down");
  DIVA_CHECK_MSG(he.owner == kHomeOwner || net_.nodeMember(he.owner),
                 "owner of variable " << x << " is retired");
  const Value ref = peek(x);
  for (NodeId p : he.copyHolders) {
    DIVA_CHECK_MSG(net_.nodeUp(p), "dead copy holder " << p << " for variable " << x);
    DIVA_CHECK_MSG(net_.nodeMember(p),
                   "retired copy holder " << p << " for variable " << x);
    const NodeCache::Entry* e = caches_[p].peek(x);
    DIVA_CHECK_MSG(e && e->value, "copy holder " << p << " missing entry");
    DIVA_CHECK_MSG(e->value == ref || *e->value == *ref, "incoherent copy at " << p);
    DIVA_CHECK_MSG(e->owned == (he.owner == p), "owned flag wrong at " << p);
  }
  if (he.owner == kHomeOwner) {
    const NodeCache::Entry* e = caches_[home].peek(x);
    DIVA_CHECK_MSG(e && e->value, "home owner without home copy");
  } else {
    DIVA_CHECK_MSG(std::find(he.copyHolders.begin(), he.copyHolders.end(), he.owner) !=
                       he.copyHolders.end(),
                   "owner not registered as a copy holder");
  }
}

}  // namespace diva
