#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace diva {

/// Identifier of a global variable (a shared data object).
using VarId = std::uint64_t;
inline constexpr VarId kInvalidVar = ~0ull;

/// Immutable variable value. Copies of a value at different simulated
/// nodes share one host-memory buffer; the *simulated* size is
/// `value->size()` bytes and drives all bandwidth/congestion accounting.
using Bytes = std::vector<std::byte>;
using Value = std::shared_ptr<const Bytes>;

/// A zero-filled payload of `n` simulated bytes (synthetic workload data).
inline Value makeRawValue(std::size_t n) {
  return std::make_shared<const Bytes>(n);
}

/// Wrap a trivially copyable object as a variable value.
template <typename T>
Value makeValue(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto buf = std::make_shared<Bytes>(sizeof(T));
  std::memcpy(buf->data(), &v, sizeof(T));
  return buf;
}

/// Extract a trivially copyable object from a variable value.
template <typename T>
T valueAs(const Value& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  DIVA_CHECK_MSG(v && v->size() == sizeof(T), "value size mismatch");
  T out;
  std::memcpy(&out, v->data(), sizeof(T));
  return out;
}

/// Wrap a vector of trivially copyable elements as a variable value.
template <typename T>
Value makeVecValue(const std::vector<T>& vec) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto buf = std::make_shared<Bytes>(vec.size() * sizeof(T));
  if (!vec.empty()) std::memcpy(buf->data(), vec.data(), buf->size());
  return buf;
}

/// Extract a vector of trivially copyable elements from a variable value.
template <typename T>
std::vector<T> valueAsVec(const Value& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  DIVA_CHECK_MSG(v && v->size() % sizeof(T) == 0, "value size mismatch");
  std::vector<T> out(v->size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), v->data(), v->size());
  return out;
}

}  // namespace diva
