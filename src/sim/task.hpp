#pragma once

#include <concepts>
#include <coroutine>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "support/frame_pool.hpp"

namespace diva::sim {

/// Lazy coroutine task. `Task<T>` is the return type of every simulated
/// activity that can suspend (node programs, DIVA operations). Tasks are
/// cold-start: nothing runs until the task is awaited (or detached via
/// `spawn`). On completion the awaiting coroutine is resumed symmetrically.
///
/// Error model: the simulator is deterministic and single-threaded; an
/// exception escaping a coroutine indicates a bug in the library or the
/// application program, so we fail fast instead of propagating.
template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

/// A coroutine owner that recycles its coroutines' frames: expose a
/// `coroFramePool()` accessor and take the owner as the coroutine's first
/// parameter (e.g. `Network`'s mailbox receive). Frames of such
/// coroutines are drawn from the owner's pool instead of the heap, so
/// awaiting the same operation in a loop stops allocating after warm-up.
template <typename T>
concept HasFramePool = requires(T& t) {
  { t.coroFramePool() } -> std::same_as<support::FramePool&>;
};

/// Every Task frame is prefixed with its origin (pool or heap) and total
/// size, because the frame deallocation function receives no context.
/// The header is padded to the default new alignment, which is also the
/// strictest alignment coroutine frames get from any allocator.
struct FrameHeader {
  support::FramePool* pool;
  std::size_t size;
};
inline constexpr std::size_t kFrameHeaderSize =
    (sizeof(FrameHeader) + __STDCPP_DEFAULT_NEW_ALIGNMENT__ - 1) /
    __STDCPP_DEFAULT_NEW_ALIGNMENT__ * __STDCPP_DEFAULT_NEW_ALIGNMENT__;

inline void* allocFrame(support::FramePool* pool, std::size_t n) {
  const std::size_t total = n + kFrameHeaderSize;
  void* raw = pool != nullptr ? pool->allocate(total) : ::operator new(total);
  *static_cast<FrameHeader*>(raw) = FrameHeader{pool, total};
  return static_cast<std::byte*>(raw) + kFrameHeaderSize;
}

inline void freeFrame(void* p) noexcept {
  void* raw = static_cast<std::byte*>(p) - kFrameHeaderSize;
  const FrameHeader h = *static_cast<FrameHeader*>(raw);
  if (h.pool != nullptr) {
    h.pool->deallocate(raw, h.size);
  } else {
    ::operator delete(raw);
  }
}

struct PromiseBase {
  std::coroutine_handle<> continuation;

  // Frame allocation: overload resolution for a coroutine's frame first
  // tries (size, parameters...); the constrained overload wins exactly
  // when the first parameter is a pool-owning object, everything else
  // falls back to the plain form on the global heap.
  static void* operator new(std::size_t n) { return allocFrame(nullptr, n); }
  template <typename Owner, typename... Args>
    requires HasFramePool<Owner>
  static void* operator new(std::size_t n, Owner& owner, Args&...) {
    return allocFrame(&owner.coroFramePool(), n);
  }
  static void operator delete(void* p) noexcept { freeFrame(p); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  [[noreturn]] void unhandled_exception() noexcept {
    std::fputs("diva::sim: unhandled exception escaped a simulated task\n", stderr);
    std::terminate();
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  friend struct promise_type;
  template <typename>
  friend struct TaskAccess;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() noexcept {}

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// Self-destroying wrapper used by `spawn`: runs eagerly, frame frees
/// itself at completion.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      std::fputs("diva::sim: unhandled exception escaped a detached task\n", stderr);
      std::terminate();
    }
  };
};

inline Detached spawnImpl(Task<void> task) { co_await std::move(task); }

}  // namespace detail

/// Launch a task as an independent simulated activity ("process"). The
/// task starts running immediately (until its first suspension point);
/// its frame is reclaimed automatically when it finishes.
inline void spawn(Task<void> task) { detail::spawnImpl(std::move(task)); }

}  // namespace diva::sim
