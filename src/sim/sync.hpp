#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "support/check.hpp"

namespace diva::sim {

/// Multi-waiter condition: tasks suspend on `wait()`, `notifyAll()` resumes
/// every waiter (as fresh events at the current time, preserving the
/// engine's deterministic ordering — notify never re-enters the notifier).
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_(&engine) {}

  auto wait() { return Awaiter{this}; }

  void notifyAll() {
    while (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->resumeAt(engine_->now(), h);
    }
  }

  void notifyOne() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    engine_->resumeAt(engine_->now(), h);
  }

  std::size_t numWaiters() const { return waiters_.size(); }

 private:
  struct Awaiter {
    Condition* cond;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { cond->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Engine* engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot future: exactly one producer calls `resolve`, exactly one
/// consumer awaits `wait()`. Used to connect protocol completions (which
/// are event-driven) back to the application coroutine that issued the
/// operation. Resolving before the consumer waits is fine.
template <typename T>
class OneShot {
 public:
  explicit OneShot(Engine& engine) : engine_(&engine) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  void resolve(T value) {
    DIVA_CHECK_MSG(!value_.has_value(), "OneShot resolved twice");
    value_.emplace(std::move(value));
    if (waiter_) engine_->resumeAt(engine_->now(), std::exchange(waiter_, nullptr));
  }

  bool resolved() const { return value_.has_value(); }

  auto wait() { return Awaiter{this}; }

 private:
  struct Awaiter {
    OneShot* self;
    bool await_ready() const noexcept { return self->value_.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      DIVA_CHECK_MSG(!self->waiter_, "OneShot awaited twice");
      self->waiter_ = h;
    }
    T await_resume() { return std::move(*self->value_); }
  };

  Engine* engine_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_ = nullptr;
};

/// Join primitive: `add` registered activities call `done` when they
/// finish; `wait()` suspends until the count reaches zero.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : cond_(engine) {}

  void add(int n = 1) { count_ += n; }
  void done() {
    DIVA_CHECK_MSG(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ == 0) cond_.notifyAll();
  }
  int count() const { return count_; }

  auto wait() { return Awaiter{this}; }

 private:
  struct Awaiter {
    WaitGroup* wg;
    bool await_ready() const noexcept { return wg->count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      auto aw = wg->cond_.wait();
      aw.await_suspend(h);
    }
    void await_resume() const noexcept {}
  };
  int count_ = 0;
  Condition cond_;
};

/// Void specialization helper: a one-shot completion signal.
class OneShotEvent {
 public:
  explicit OneShotEvent(Engine& engine) : inner_(engine) {}
  void resolve() { inner_.resolve(true); }
  bool resolved() const { return inner_.resolved(); }
  auto wait() { return WaitAdapter{this}; }

 private:
  struct WaitAdapter {
    OneShotEvent* self;
    bool await_ready() const noexcept { return self->inner_.resolved(); }
    void await_suspend(std::coroutine_handle<> h) { self->waiterShim(h); }
    void await_resume() const noexcept {}
  };
  void waiterShim(std::coroutine_handle<> h) {
    // Delegate to the OneShot awaiter machinery.
    auto aw = inner_.wait();
    aw.await_suspend(h);
  }
  OneShot<bool> inner_;
};

}  // namespace diva::sim
