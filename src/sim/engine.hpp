#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace diva::sim {

/// Single-threaded discrete-event simulation engine.
///
/// Events are (time, sequence, closure) triples processed in strict
/// (time, sequence) order; the sequence number makes simultaneous events
/// deterministic (FIFO among equals). All model code — network transits,
/// protocol handlers, coroutine resumptions — runs inside events, so a
/// run is a pure function of its inputs and seeds.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Valid inside event callbacks and after run().
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  void scheduleAt(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, nextSeq_++, std::move(fn)});
  }

  /// Schedule `fn` `dt` microseconds from now.
  void scheduleAfter(Time dt, std::function<void()> fn) {
    scheduleAt(now_ + dt, std::move(fn));
  }

  /// Resume a suspended coroutine at absolute time `t`.
  void resumeAt(Time t, std::coroutine_handle<> h) {
    scheduleAt(t, [h] { h.resume(); });
  }

  /// Run until the event queue drains. Returns the final simulated time.
  Time run() {
    while (!queue_.empty()) {
      // Moving out of a priority_queue top requires a const_cast; the
      // element is popped immediately after, so this is safe.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ++processed_;
      ev.fn();
    }
    return now_;
  }

  /// Total number of events processed so far (diagnostics / micro-bench).
  std::uint64_t eventsProcessed() const { return processed_; }

  bool idle() const { return queue_.empty(); }

  /// Awaitable that suspends the current task until `now() + dt`.
  auto delay(Time dt) { return DelayAwaiter{this, now_ + dt}; }

  /// Awaitable that suspends the current task until absolute time `t`.
  auto delayUntil(Time t) { return DelayAwaiter{this, t}; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct DelayAwaiter {
    Engine* engine;
    Time when;
    bool await_ready() const noexcept { return when <= engine->now(); }
    void await_suspend(std::coroutine_handle<> h) const { engine->resumeAt(when, h); }
    void await_resume() const noexcept {}
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = kTimeZero;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace diva::sim
