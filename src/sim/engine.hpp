#pragma once

#include <bit>
#include <coroutine>
#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace diva::sim {

/// Single-threaded discrete-event simulation engine.
///
/// Events are processed in strict (time, insertion order) order: among
/// events with equal timestamps, FIFO. All model code — network transits,
/// protocol handlers, coroutine resumptions — runs inside events, so a
/// run is a pure function of its inputs and seeds.
///
/// The pending-event structure lives in `sim::EventQueue` (see
/// event_queue.hpp): a calendar-style bucket ring for the densely
/// clustered near future, with a distinct-timestamp heap + hash front
/// tier for exact ordering and an overflow tier for the far-future tail.
/// Callbacks live in pooled `EventFn` slots (40-byte inline capture
/// storage, see event_fn.hpp), so in steady state — once pools, heaps and
/// table have grown to the simulation's working set — scheduling and
/// dispatching an event allocates nothing, and destroying the engine
/// mid-run reclaims every pending capture.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Valid inside event callbacks and after run().
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  /// The `<=` clamp also normalizes -0.0 to +0.0, preserving the invariant
  /// that timestamps are non-negative doubles (whose raw bit patterns
  /// order the same way as their values).
  template <typename F>
  void scheduleAt(Time t, F&& fn) {
    if (t <= now_) t = now_;
    queue_.push(t, std::forward<F>(fn));
  }

  /// Schedule `fn` `dt` microseconds from now.
  template <typename F>
  void scheduleAfter(Time dt, F&& fn) {
    scheduleAt(now_ + dt, std::forward<F>(fn));
  }

  /// Resume a suspended coroutine at absolute time `t`.
  void resumeAt(Time t, std::coroutine_handle<> h) {
    scheduleAt(t, [h] { h.resume(); });
  }

  /// Pre-size the queue for a known burst of `events` pending events
  /// (worst case: all timestamps distinct): sorted heaps, hash table and
  /// slot/group pools all grow up front (the bucket ring is fixed-size),
  /// so the burst never grows a structure mid-run.
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Run until the event queue drains. Returns the final simulated time.
  Time run() {
    EventFn fn;
    while (!queue_.empty()) {
      // The callback is moved out and its slot recycled before it runs,
      // so it is free to schedule — including at the current time, which
      // re-forms a fresh group behind this one. If it throws (fail-fast
      // checks propagate out of run()), invokeAndReset still destroys
      // the capture and the queue stays consistent.
      std::uint64_t timeBits;
      queue_.popFrontInto(fn, timeBits);
      now_ = std::bit_cast<Time>(timeBits);
      ++processed_;
      fn.invokeAndReset();
    }
    return now_;
  }

  /// Total number of events processed so far (diagnostics / micro-bench).
  std::uint64_t eventsProcessed() const { return processed_; }

  /// Number of events currently pending (diagnostics).
  std::size_t pendingEvents() const { return queue_.pending(); }

  bool idle() const { return queue_.empty(); }

  /// Queue tier traffic and tuned bucket width (diagnostics / bench).
  /// Ring pushes are derived here — every event ever scheduled that went
  /// through neither sorted tier — so the O(1) ring path carries no
  /// counter of its own.
  EventQueue::Stats queueStats() const {
    EventQueue::Stats s = queue_.stats();
    s.ringPushes = processed_ + queue_.pending() - s.sortedPushes - s.overflowPushes;
    return s;
  }

  /// Live queue-tier occupancy (diagnostics / time-series sampling).
  EventQueue::Occupancy queueOccupancy() const { return queue_.occupancy(); }

  /// Awaitable that suspends the current task until `now() + dt`.
  auto delay(Time dt) { return DelayAwaiter{this, now_ + dt}; }

  /// Awaitable that suspends the current task until absolute time `t`.
  auto delayUntil(Time t) { return DelayAwaiter{this, t}; }

 private:
  struct DelayAwaiter {
    Engine* engine;
    Time when;
    bool await_ready() const noexcept { return when <= engine->now(); }
    void await_suspend(std::coroutine_handle<> h) const { engine->resumeAt(when, h); }
    void await_resume() const noexcept {}
  };

  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t processed_ = 0;
};

}  // namespace diva::sim
