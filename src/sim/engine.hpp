#pragma once

#include <bit>
#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"
#include "support/object_pool.hpp"

namespace diva::sim {

/// Single-threaded discrete-event simulation engine.
///
/// Events are processed in strict (time, insertion order) order: among
/// events with equal timestamps, FIFO. All model code — network transits,
/// protocol handlers, coroutine resumptions — runs inside events, so a
/// run is a pure function of its inputs and seeds.
///
/// ## Queue design
///
/// The seed used `std::priority_queue<std::function>`: one heap node per
/// event, a (double, sequence) comparison per sift level, a `const_cast`
/// move-out of `top()`, and a heap allocation for every capture over
/// libstdc++'s 16-byte SBO. Profiling the rework showed the comparison
/// sifts themselves dominate long before allocation does, so the queue
/// exploits the structure of simulation schedules instead: *timestamps
/// repeat heavily* (cost models quantize time — a 500 µs startup, a 5 µs
/// hop — and lock-step protocols resume many actors at the same instant).
///
/// Pending events at the same timestamp form an intrusive FIFO list of
/// pooled callback slots hanging off one "time group"; a hand-rolled
/// binary min-heap orders only the *distinct* timestamps (16-byte POD
/// nodes, one integer compare — the bit pattern of a non-negative double
/// orders identically to its value); an open-addressing hash table maps
/// timestamp → live group so a repeated-time push is O(1) with no heap
/// traffic at all. FIFO-among-equals holds by construction (list append),
/// so no sequence numbers are stored or compared. A schedule of all-
/// distinct timestamps degrades to the plain heap plus one hash probe.
///
/// Callbacks live in `EventFn` slots (48-byte inline capture storage, see
/// event_fn.hpp) drawn from recycling slab pools, so in steady state —
/// once pools, heap and table have grown to the simulation's working
/// set — scheduling and dispatching an event allocates nothing, and
/// destroying the engine mid-run reclaims every pending capture.
class Engine {
 public:
  Engine() {
    heap_.reserve(kInitialCapacity);
    table_.resize(kInitialTableSize);
    tableShift_ = 64 - std::countr_zero(std::uint64_t{kInitialTableSize});
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Valid inside event callbacks and after run().
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  /// The `<=` clamp also normalizes -0.0 to +0.0, preserving the invariant
  /// that timestamps are non-negative doubles (whose raw bit patterns
  /// order the same way as their values).
  template <typename F>
  void scheduleAt(Time t, F&& fn) {
    if (t <= now_) t = now_;
    Slot* slot = slots_.acquire();
    slot->fn.emplace(std::forward<F>(fn));
    slot->next = nullptr;
    enqueue(std::bit_cast<std::uint64_t>(t), slot);
  }

  /// Schedule `fn` `dt` microseconds from now.
  template <typename F>
  void scheduleAfter(Time dt, F&& fn) {
    scheduleAt(now_ + dt, std::forward<F>(fn));
  }

  /// Resume a suspended coroutine at absolute time `t`.
  void resumeAt(Time t, std::coroutine_handle<> h) {
    scheduleAt(t, [h] { h.resume(); });
  }

  /// Pre-size the distinct-timestamp heap for a known burst of scheduling.
  void reserve(std::size_t distinctTimes) { heap_.reserve(distinctTimes); }

  /// Run until the event queue drains. Returns the final simulated time.
  Time run() {
    while (pending_ != 0) {
      // Peek the minimum time group and detach its FIFO head. All queue
      // mutations happen before the callback runs, so the callback is
      // free to schedule — including at the current time, which re-forms
      // a fresh group behind this one.
      const Node top = heap_.front();
      Group* g = top.group;
      Slot* slot = g->head;
      g->head = slot->next;
      if (g->head == nullptr) {
        tableEraseAt(g->tableIdx);
        groups_.release(g);
        heapPopRoot();
      }
      --pending_;
      now_ = std::bit_cast<Time>(top.timeBits);
      ++processed_;
      // Recycle the slot even if the callback throws (fail-fast checks
      // propagate out of run(); the queue stays consistent either way).
      const SlotRelease release{&slots_, slot};
      slot->fn.invokeAndReset();
    }
    return now_;
  }

  /// Total number of events processed so far (diagnostics / micro-bench).
  std::uint64_t eventsProcessed() const { return processed_; }

  /// Number of events currently pending (diagnostics).
  std::size_t pendingEvents() const { return pending_; }

  bool idle() const { return pending_ == 0; }

  /// Awaitable that suspends the current task until `now() + dt`.
  auto delay(Time dt) { return DelayAwaiter{this, now_ + dt}; }

  /// Awaitable that suspends the current task until absolute time `t`.
  auto delayUntil(Time t) { return DelayAwaiter{this, t}; }

 private:
  static constexpr std::size_t kInitialCapacity = 256;
  static constexpr std::size_t kInitialTableSize = 256;  // power of two

  /// One pending event: its callback and the link to the next event
  /// scheduled for the same timestamp (FIFO within the time group).
  struct Slot {
    EventFn fn;
    Slot* next;
  };

  /// All pending events at one distinct timestamp, as an intrusive queue.
  /// Pool-stable: the heap and hash table point at it while it lives.
  /// `tableIdx` tracks the group's current hash-table position (kept up to
  /// date by backward-shift moves and growth) so the pop-side erase needs
  /// no find-walk of its own.
  struct Group {
    Slot* head;
    Slot* tail;
    std::size_t tableIdx;
  };

  /// Heap node: POD, 16 bytes, four per cache line. One node per distinct
  /// pending timestamp; ordering needs a single integer compare.
  struct Node {
    std::uint64_t timeBits;
    Group* group;
  };

  struct TableEntry {
    std::uint64_t key;
    Group* group;  ///< nullptr marks an empty slot
  };

  void enqueue(std::uint64_t timeBits, Slot* slot) {
    ++pending_;
    // One fused probe walk: find the live group for this timestamp or
    // claim the empty slot the walk ends on. (Growing first may be
    // spurious when the key turns out to exist — harmless and rare.)
    if ((tableCount_ + 1) * 2 > table_.size()) tableGrow();
    const std::size_t mask = table_.size() - 1;
    std::size_t i = tableHome(timeBits);
    while (table_[i].group != nullptr) {
      if (table_[i].key == timeBits) {
        Group* g = table_[i].group;
        g->tail->next = slot;
        g->tail = slot;
        return;
      }
      i = (i + 1) & mask;
    }
    Group* g = groups_.acquire();
    g->head = g->tail = slot;
    g->tableIdx = i;
    table_[i] = TableEntry{timeBits, g};
    ++tableCount_;
    heapPush(timeBits, g);
  }

  // --- binary min-heap over distinct timestamps ---

  /// Hole insertion: append a hole at the back, shift larger parents down
  /// into it, then write the new node into place — one move per level.
  void heapPush(std::uint64_t timeBits, Group* g) {
    heap_.emplace_back();
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (timeBits >= heap_[parent].timeBits) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = Node{timeBits, g};
  }

  /// Remove the root via Floyd's trick: sift the hole to the leaf level
  /// choosing the smaller child branchlessly (sibling order is random, a
  /// conditional branch would mispredict half the time), then bubble the
  /// detached last node up from there (almost always 0–2 steps).
  void heapPopRoot() {
    const Node last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child + 1 < n) {
      child += static_cast<std::size_t>(heap_[child + 1].timeBits <
                                        heap_[child].timeBits);
      heap_[hole] = heap_[child];
      hole = child;
      child = 2 * hole + 1;
    }
    if (child < n) {
      heap_[hole] = heap_[child];
      hole = child;
    }
    std::size_t i = hole;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (last.timeBits >= heap_[parent].timeBits) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }

  // --- open-addressing hash: live timestamp → its group ---
  // Linear probing with Fibonacci hashing and backward-shift deletion
  // (no tombstones), so the table only reallocates on growth and steady
  // state is allocation-free.

  std::size_t tableHome(std::uint64_t key) const {
    return (key * 0x9E3779B97F4A7C15ull) >> tableShift_;
  }

  void tableEraseAt(std::size_t i) {
    const std::size_t mask = table_.size() - 1;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (table_[j].group == nullptr) break;
      const std::size_t home = tableHome(table_[j].key);
      // Entry j may fill the hole iff its probe path passes through it.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        table_[hole] = table_[j];
        table_[hole].group->tableIdx = hole;
        hole = j;
      }
    }
    table_[hole].group = nullptr;
    --tableCount_;
  }

  void tableGrow() {
    std::vector<TableEntry> old = std::move(table_);
    table_.assign(old.size() * 2, TableEntry{});
    --tableShift_;
    const std::size_t mask = table_.size() - 1;
    for (const TableEntry& e : old) {
      if (e.group == nullptr) continue;
      std::size_t i = tableHome(e.key);
      while (table_[i].group != nullptr) i = (i + 1) & mask;
      table_[i] = e;
      e.group->tableIdx = i;
    }
  }

  struct SlotRelease {
    support::ObjectPool<Slot, 256>* pool;
    Slot* slot;
    ~SlotRelease() { pool->release(slot); }
  };

  struct DelayAwaiter {
    Engine* engine;
    Time when;
    bool await_ready() const noexcept { return when <= engine->now(); }
    void await_suspend(std::coroutine_handle<> h) const { engine->resumeAt(when, h); }
    void await_resume() const noexcept {}
  };

  std::vector<Node> heap_;          ///< min-heap keyed on distinct timeBits
  std::vector<TableEntry> table_;   ///< timestamp → group, while pending
  int tableShift_ = 0;
  std::size_t tableCount_ = 0;
  /// Slab pools; their teardown destroys any captures still pending when
  /// the engine dies (heap/table/lists hold only raw pointers).
  support::ObjectPool<Slot, 256> slots_;
  support::ObjectPool<Group, 256> groups_;
  std::size_t pending_ = 0;
  Time now_ = kTimeZero;
  std::uint64_t processed_ = 0;
};

}  // namespace diva::sim
