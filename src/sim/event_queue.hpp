#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"
#include "support/object_pool.hpp"

namespace diva::sim {

/// Two-level, calendar-style pending-event queue, tuned for the shape of
/// simulation schedules: timestamps are near-monotone and densely
/// clustered in a window just ahead of the cursor, with a thin far-future
/// tail (long timeouts, phase deadlines).
///
/// ## Tiers
///
///  1. **Sorted front tier** — a flat array of "runs", one per distinct
///     timestamp at the head of the schedule, kept sorted and consumed
///     by index: a run is an intrusive FIFO list of pooled slots plus
///     its timestamp (24 bytes, contiguous — no pointer chasing, no
///     heap sifts, no hash probes). Equal-time pushes append to their
///     run in O(1) via a short search of the live tail, which only ever
///     holds the few distinct times of a single bucket; exhausting a
///     run is one index increment.
///  2. **Bucket ring** — `kNumBuckets` fixed-width time buckets covering
///     a sliding window ahead of the front tier. A push into the window
///     is O(1) with zero timestamp comparisons: compute the bucket index
///     and append to its FIFO list. Buckets are consumed in time order;
///     a consumed bucket's list is redistributed — in insertion order,
///     which preserves FIFO-among-equals by construction — into the
///     front tier's run array.
///  3. **Overflow tier** — events beyond the window land in the PR 1
///     distinct-timestamp structure: a binary min-heap over 16-byte POD
///     nodes (one integer compare — the bit pattern of a non-negative
///     double orders identically to its value) of FIFO "time groups",
///     with an open-addressing hash making repeated-time pushes O(1)
///     appends. Whenever the window slides, whole overflow groups whose
///     time has entered it are spliced — O(1), order-preserving — into
///     their bucket.
///
/// ## Ordering
///
/// Strict (time, insertion order) across all tiers. Correctness does not
/// depend on floating-point precision: the virtual bucket index
/// `floor(t * 1/width)` is a monotone map (IEEE subtraction/multiplication
/// are correctly rounded, hence monotone), so an earlier timestamp can
/// never land in a later bucket; events that share a bucket are ordered
/// exactly by the front tier's integer timestamp compare. Equal
/// timestamps stay FIFO across every tier transition because lists are
/// only ever appended to or spliced whole.
///
/// ## Bucket width
///
/// The width is auto-tuned from the schedule itself: the first
/// `kCalibrationSamples` pushes run entirely through the sorted tier
/// (exactly the PR 1 queue) while the queue observes the spacing between
/// each pushed timestamp and the dispatch cursor. The width then becomes
/// the smallest observed positive spacing — the schedule's quantum, e.g.
/// the hop latency — clamped below by `2·maxSpacing/kNumBuckets` so the
/// window always covers a typical scheduling horizon. A schedule that
/// never yields a positive spacing (all events at one instant) simply
/// never activates the ring and keeps the PR 1 behavior.
///
/// Steady state is allocation-free: callback slots (64 bytes: 40-byte
/// inline capture + ops pointer + FIFO link + timestamp) and time groups
/// recycle through slab pools, the run array recycles its capacity, the
/// overflow heap and hash table only grow, and the ring is a fixed
/// array. Destroying the queue mid-run reclaims every pending capture
/// (the slot pool owns them).
class EventQueue {
 public:
  /// One pending event: its callback, the link to the next event in its
  /// FIFO list (same-time group or ring bucket), and its timestamp.
  struct Slot {
    EventFn fn;
    Slot* next;
    std::uint64_t timeBits;
  };

  /// Tier traffic counters and the tuned width (diagnostics; recorded as
  /// bucket-occupancy stats in BENCH_engine.json). Ring pushes carry no
  /// counter of their own — the O(1) path stays untaxed — and are derived
  /// as `totalPushes - sortedPushes - overflowPushes` (the engine knows
  /// the total as processed + pending; see Engine::queueStats).
  struct Stats {
    double bucketWidthUs = 0.0;  ///< 0 until the ring has calibrated
    std::uint64_t ringPushes = 0;    ///< derived; 0 in the raw queue view
    std::uint64_t sortedPushes = 0;  ///< front tier (incl. pre-calibration)
    std::uint64_t overflowPushes = 0;
    std::uint64_t migratedEvents = 0;  ///< overflow → ring splices
  };

  EventQueue() {
    runs_.reserve(kInitialCapacity);
    overflowHeap_.reserve(kInitialCapacity);
    table_.resize(kInitialTableSize);
    tableMask_ = kInitialTableSize - 1;
    tableShift_ = 64 - std::countr_zero(std::uint64_t{kInitialTableSize});
    ring_.resize(kNumBuckets);
    for (Bucket& b : ring_) {
      b.head = nullptr;
      b.tailLink = &b.head;
    }
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueue `fn` at `t`. Precondition (maintained by the engine): `t` is
  /// non-negative, not NaN, and never earlier than the last popped time.
  template <typename F>
  void push(Time t, F&& fn) {
    Slot* slot = spare_;
    if (slot != nullptr) {
      spare_ = nullptr;
    } else {
      slot = slots_.acquire();
    }
    slot->fn.emplace(std::forward<F>(fn));
    slot->next = nullptr;
    slot->timeBits = std::bit_cast<std::uint64_t>(t);
    ++pending_;
    route(t, slot);
  }

  /// Detach the earliest pending event (FIFO among equals) and move its
  /// callback into `out`. Precondition: `!empty()`. The emptied slot is
  /// stowed as the spare for the next push — the dominant schedule-one-
  /// from-inside-one pattern recycles its cache-hot slot with no pool
  /// traffic at all — and the queue is fully consistent on return, so
  /// the callback is free to push when the caller runs it (including at
  /// the popped time, which re-forms a fresh group behind this one).
  void popFrontInto(EventFn& out, std::uint64_t& timeBitsOut) {
    if (runIdx_ == runs_.size()) refillFront();
    Run& r = runs_[runIdx_];
    Slot* slot = r.head;
    r.head = slot->next;
    runIdx_ += static_cast<std::size_t>(r.head == nullptr);  // run exhausted
    --pending_;
    if (!ringActive_) cursor_ = std::bit_cast<Time>(slot->timeBits);
    timeBitsOut = slot->timeBits;
    out = std::move(slot->fn);
    if (spare_ == nullptr) {
      spare_ = slot;
    } else {
      slots_.release(slot);
    }
  }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }

  /// Pre-size every growable structure for a burst of `events` pending
  /// events (worst case: all timestamps distinct): both sorted heaps, the
  /// hash table, and the slot/group pools. The bucket ring is a fixed
  /// array and never grows. After this, pushing and draining `events`
  /// events performs no allocation even from a cold queue.
  void reserve(std::size_t events) {
    runs_.reserve(events);
    overflowHeap_.reserve(events);
    // The table grows when (count + 1) * 2 exceeds its size; cover the
    // `events`-th insert exactly.
    while (table_.size() < events * 2 + 2) tableGrow();
    slots_.reserve(events);
    groups_.reserve(events);
  }

  const Stats& stats() const { return stats_; }

  /// Live tier occupancy (diagnostics / time-series sampling): events in
  /// the bucket ring, distinct-timestamp runs in the sorted front tier,
  /// and far-future groups in the overflow heap. O(1) — the sorted tiers
  /// are counted in distinct timestamps, not events, precisely so no hot
  /// push/pop pays for a per-event count.
  struct Occupancy {
    std::size_t ringEvents = 0;
    std::size_t frontRuns = 0;
    std::size_t overflowGroups = 0;
  };
  Occupancy occupancy() const {
    return {ringCount_, runs_.size() - runIdx_, overflowHeap_.size()};
  }

 private:
  static constexpr std::size_t kInitialCapacity = 256;
  static constexpr std::size_t kInitialTableSize = 256;  // power of two
  static constexpr std::size_t kNumBuckets = 512;        // power of two
  static constexpr std::size_t kRingMask = kNumBuckets - 1;
  static constexpr int kCalibrationSamples = 256;
  /// Virtual bucket indices are kept far below 2^53 so the double →
  /// integer conversion and the integer arithmetic around it are exact.
  static constexpr double kMaxVb = 1e15;

  /// Front tier: all pending events at one distinct timestamp, as an
  /// intrusive FIFO list tagged with that timestamp. Lives by value in
  /// the sorted run array.
  struct Run {
    std::uint64_t timeBits;
    Slot* head;
    Slot* tail;
  };

  /// Overflow tier: all pending events at one distinct far-future
  /// timestamp, as an intrusive FIFO queue. Pool-stable: the heap and
  /// the hash table point at it while it lives. `tableIdx` tracks the
  /// group's current hash-table position (kept up to date by
  /// backward-shift moves and growth) so erasing needs no find-walk. No
  /// size field: the one consumer that needs a count (overflow → ring
  /// migration, rare) walks the list instead of taxing every push with
  /// its upkeep.
  struct Group {
    Slot* head;
    Slot* tail;
    std::size_t tableIdx;
  };

  /// Heap node: POD, 16 bytes, four per cache line. One node per distinct
  /// pending timestamp; ordering needs a single integer compare.
  struct Node {
    std::uint64_t timeBits;
    Group* group;
  };

  struct TableEntry {
    std::uint64_t key;
    Group* group;  ///< nullptr marks an empty slot
  };

  /// FIFO list with a tail-link pointer: appending is branchless (write
  /// through tailLink, advance it) whether the bucket is empty or not.
  /// `tailLink` points at `head` when empty, else at the last slot's
  /// `next`.
  struct Bucket {
    Slot* head;
    Slot** tailLink;
  };

  void route(Time t, Slot* slot) {
    if (!ringActive_) {
      calibrate(t);
      frontInsert(slot);
      ++stats_.sortedPushes;
      return;
    }
    const double vbD = t * invWidth_;
    if (vbD >= ringEndVbD_) {
      enqueueOverflow(slot->timeBits, slot);
      ++stats_.overflowPushes;
      return;
    }
    // Virtual bucket indices stay below kMaxVb < 2^53, so the signed
    // conversion is exact and compiles to a single instruction (the
    // unsigned conversion is a branchy multi-op sequence on x86-64).
    const std::uint64_t vb =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(vbD));
    if (vb < ringStartVb_) {
      frontInsert(slot);
      ++stats_.sortedPushes;
      return;
    }
    Bucket& b = ring_[(ringHeadIdx_ + (vb - ringStartVb_)) & kRingMask];
    *b.tailLink = slot;
    b.tailLink = &slot->next;
    ++ringCount_;
  }

  /// Pre-activation: observe the spacing between pushed timestamps and
  /// the dispatch cursor; once enough positive samples accumulate, pick
  /// the width and place the ring just past everything already queued
  /// (which all sits in the front tier, so the existing backlog drains
  /// through the exact PR 1 path).
  void calibrate(Time t) {
    const double d = t - cursor_;
    if (d <= 0.0 || !std::isfinite(d)) return;
    if (d < minPosDelta_) minPosDelta_ = d;
    if (d > maxDelta_) maxDelta_ = d;
    if (++samples_ < kCalibrationSamples) return;
    double w = minPosDelta_;
    const double spread = maxDelta_ * 2.0 / static_cast<double>(kNumBuckets);
    if (spread > w) w = spread;
    if (!(w > 0.0) || !std::isfinite(w)) return;  // degenerate; stay sorted
    // Largest queued timestamp: the run array is sorted, so it is the
    // last run's (non-negative doubles order by bit pattern).
    std::uint64_t maxBits = std::bit_cast<std::uint64_t>(t);
    if (runIdx_ < runs_.size() && runs_.back().timeBits > maxBits) {
      maxBits = runs_.back().timeBits;
    }
    const Time maxTime = std::bit_cast<Time>(maxBits);
    while (maxTime / w >= kMaxVb) w *= 1024.0;  // keep vb integer-exact
    width_ = w;
    invWidth_ = 1.0 / w;
    stats_.bucketWidthUs = w;
    ringStartVb_ = static_cast<std::uint64_t>(maxTime * invWidth_) + 1;
    ringEndVbD_ = endOfWindow();
    ringHeadIdx_ = 0;
    ringActive_ = true;
  }

  /// The front tier ran dry but events remain: recycle the run array,
  /// then slide the window, moving the next non-empty bucket into the
  /// front tier and splicing overflow groups whose time has entered the
  /// window into their bucket. Only reachable once the ring is active
  /// (before that, every pending event lives in the front tier).
  void refillFront() {
    runs_.clear();  // every run before runIdx_ was consumed; keep capacity
    runIdx_ = 0;
    while (runs_.empty()) {
      if (ringCount_ == 0) jumpToOverflow();
      Bucket& b = ring_[ringHeadIdx_];
      ++ringStartVb_;
      ringEndVbD_ += 1.0;  // exact: integer-valued doubles below 2^53
      ringHeadIdx_ = (ringHeadIdx_ + 1) & kRingMask;
      if (b.head != nullptr) takeBucket(b);
      migrateOverflow();
    }
  }

  /// Ring and front tier are both empty: everything pending sits in the
  /// overflow heap. Slide the window straight to its minimum. With the
  /// queue's vb-mapped tiers empty this is also the one point where the
  /// width may change freely, which the integer-range guard uses when a
  /// far-future timestamp would push vb past exactness.
  void jumpToOverflow() {
    const Time tMin = std::bit_cast<Time>(overflowHeap_.front().timeBits);
    if (!std::isfinite(tMin)) {
      // Everything left is at t = +infinity — a single timestamp, hence
      // a single FIFO group (reachable e.g. through a zero-bandwidth
      // cost model making a stream time infinite). The virtual-bucket
      // arithmetic below would be NaN-poisoned (inf · 0), so splice the
      // group straight into the front tier instead.
      Group* g = overflowHeap_.front().group;
      Slot* s = g->head;
      while (s != nullptr) {
        Slot* const next = s->next;
        s->next = nullptr;
        frontInsert(s);
        s = next;
      }
      tableEraseAt(g->tableIdx);
      releaseGroup(g);
      heapPopRoot(overflowHeap_);
      return;
    }
    while (tMin * invWidth_ >= kMaxVb) {
      width_ *= 1024.0;
      invWidth_ = 1.0 / width_;
      stats_.bucketWidthUs = width_;
    }
    ringStartVb_ = static_cast<std::uint64_t>(tMin * invWidth_);
    ringEndVbD_ = endOfWindow();
    migrateOverflow();
  }

  double endOfWindow() const {
    return static_cast<double>(static_cast<std::int64_t>(ringStartVb_)) +
           static_cast<double>(kNumBuckets);
  }

  /// Redistribute a consumed bucket's FIFO list into the front tier's
  /// run array. The list is walked in insertion order, so FIFO-among-
  /// equals holds across the tier transition by construction.
  void takeBucket(Bucket& b) {
    Slot* s = b.head;
    b.head = nullptr;
    b.tailLink = &b.head;
    std::size_t taken = 0;
    while (s != nullptr) {
      Slot* const next = s->next;
      s->next = nullptr;
      frontInsert(s);
      ++taken;
      s = next;
    }
    ringCount_ -= taken;
  }

  /// Insert one event into the sorted run array. Equal-time inserts
  /// append to their run (FIFO); new timestamps insert in order. The
  /// live tail [runIdx_, size) is tiny — the distinct times of one
  /// bucket plus any re-entrant pushes — and the two fast paths cover
  /// the dominant shapes (appending at or after the last run).
  void frontInsert(Slot* slot) {
    const std::uint64_t tb = slot->timeBits;
    if (runIdx_ == runs_.size()) {  // live tail empty: recycle the array
      // Resetting here (not just in refillFront) keeps memory O(1) even
      // for schedules that alternate exhaust-run/push without ever
      // refilling — e.g. same-instant re-entrant chains that never
      // calibrate the ring.
      runs_.clear();
      runIdx_ = 0;
      runs_.push_back(Run{tb, slot, slot});
      return;
    }
    Run& last = runs_.back();
    if (last.timeBits == tb) {
      last.tail->next = slot;
      last.tail = slot;
      return;
    }
    if (last.timeBits < tb) {
      runs_.push_back(Run{tb, slot, slot});
      return;
    }
    std::size_t lo = runIdx_;
    std::size_t hi = runs_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (runs_[mid].timeBits < tb) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (runs_[lo].timeBits == tb) {  // lo < size: the back run is later
      Run& r = runs_[lo];
      r.tail->next = slot;
      r.tail = slot;
    } else {
      runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(lo),
                   Run{tb, slot, slot});
    }
  }

  /// Splice every overflow group whose time has entered the window into
  /// its ring bucket: O(1) per group, list order (= insertion order)
  /// preserved.
  void migrateOverflow() {
    while (!overflowHeap_.empty()) {
      const Node n = overflowHeap_.front();
      const double vbD = std::bit_cast<Time>(n.timeBits) * invWidth_;
      if (vbD >= ringEndVbD_) return;
      const std::uint64_t vb =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(vbD));
      // Eager migration keeps every overflow time at or beyond the window
      // end, so vb >= ringStartVb_ always holds; the guard only shields
      // the index arithmetic if that invariant were ever violated.
      const std::uint64_t off = vb >= ringStartVb_ ? vb - ringStartVb_ : 0;
      Group* g = n.group;
      Bucket& b = ring_[(ringHeadIdx_ + off) & kRingMask];
      *b.tailLink = g->head;
      b.tailLink = &g->tail->next;
      std::size_t count = 0;
      for (const Slot* s = g->head; s != nullptr; s = s->next) ++count;
      ringCount_ += count;
      stats_.migratedEvents += count;
      tableEraseAt(g->tableIdx);
      releaseGroup(g);
      heapPopRoot(overflowHeap_);
    }
  }

  /// One fused probe walk: find the live overflow group for this
  /// timestamp or claim the empty slot the walk ends on. (Growing first
  /// may be spurious when the key turns out to exist — harmless and
  /// rare.)
  void enqueueOverflow(std::uint64_t timeBits, Slot* slot) {
    if ((tableCount_ + 1) * 2 > tableMask_ + 1) tableGrow();
    const std::size_t mask = tableMask_;
    std::size_t i = tableHome(timeBits);
    while (table_[i].group != nullptr) {
      if (table_[i].key == timeBits) {
        Group* g = table_[i].group;
        g->tail->next = slot;
        g->tail = slot;
        return;
      }
      i = (i + 1) & mask;
    }
    Group* g = spareGroup_;
    if (g != nullptr) {
      spareGroup_ = nullptr;
    } else {
      g = groups_.acquire();
    }
    g->head = g->tail = slot;
    g->tableIdx = i;
    table_[i] = TableEntry{timeBits, g};
    ++tableCount_;
    heapPush(overflowHeap_, timeBits, g);
  }

  void releaseGroup(Group* g) {
    if (spareGroup_ == nullptr) {
      spareGroup_ = g;
    } else {
      groups_.release(g);
    }
  }

  // --- binary min-heap over distinct overflow timestamps ---

  /// Hole insertion: append a hole at the back, shift larger parents down
  /// into it, then write the new node into place — one move per level.
  static void heapPush(std::vector<Node>& heap, std::uint64_t timeBits, Group* g) {
    heap.emplace_back();
    std::size_t i = heap.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (timeBits >= heap[parent].timeBits) break;
      heap[i] = heap[parent];
      i = parent;
    }
    heap[i] = Node{timeBits, g};
  }

  /// Remove the root via Floyd's trick: sift the hole to the leaf level
  /// choosing the smaller child branchlessly (sibling order is random, a
  /// conditional branch would mispredict half the time), then bubble the
  /// detached last node up from there (almost always 0–2 steps).
  static void heapPopRoot(std::vector<Node>& heap) {
    const Node last = heap.back();
    heap.pop_back();
    const std::size_t n = heap.size();
    if (n == 0) return;
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child + 1 < n) {
      child += static_cast<std::size_t>(heap[child + 1].timeBits <
                                        heap[child].timeBits);
      heap[hole] = heap[child];
      hole = child;
      child = 2 * hole + 1;
    }
    if (child < n) {
      heap[hole] = heap[child];
      hole = child;
    }
    std::size_t i = hole;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (last.timeBits >= heap[parent].timeBits) break;
      heap[i] = heap[parent];
      i = parent;
    }
    heap[i] = last;
  }

  // --- open-addressing hash: live overflow timestamp → its group ---
  // Linear probing with Fibonacci hashing and backward-shift deletion
  // (no tombstones), so the table only reallocates on growth and steady
  // state is allocation-free.

  std::size_t tableHome(std::uint64_t key) const {
    return (key * 0x9E3779B97F4A7C15ull) >> tableShift_;
  }

  void tableEraseAt(std::size_t i) {
    const std::size_t mask = tableMask_;
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (table_[j].group == nullptr) break;
      const std::size_t home = tableHome(table_[j].key);
      // Entry j may fill the hole iff its probe path passes through it.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        table_[hole] = table_[j];
        table_[hole].group->tableIdx = hole;
        hole = j;
      }
    }
    table_[hole].group = nullptr;
    --tableCount_;
  }

  void tableGrow() {
    std::vector<TableEntry> old = std::move(table_);
    table_.assign(old.size() * 2, TableEntry{});
    --tableShift_;
    tableMask_ = table_.size() - 1;
    const std::size_t mask = tableMask_;
    for (const TableEntry& e : old) {
      if (e.group == nullptr) continue;
      std::size_t i = tableHome(e.key);
      while (table_[i].group != nullptr) i = (i + 1) & mask;
      table_[i] = e;
      e.group->tableIdx = i;
    }
  }

  std::vector<Run> runs_;           ///< front tier: sorted, consumed by index
  std::size_t runIdx_ = 0;          ///< first live run in runs_
  std::vector<Node> overflowHeap_;  ///< distinct times beyond the window
  std::vector<TableEntry> table_;   ///< timestamp → group, while pending
  int tableShift_ = 0;
  std::size_t tableMask_ = 0;  ///< table_.size() - 1, cached for the hot probes
  std::size_t tableCount_ = 0;

  std::vector<Bucket> ring_;        ///< kNumBuckets fixed-width time buckets
  std::size_t ringHeadIdx_ = 0;     ///< ring_ index of virtual bucket ringStartVb_
  std::uint64_t ringStartVb_ = 0;   ///< first virtual bucket inside the window
  double ringEndVbD_ = 0.0;         ///< ringStartVb_ + kNumBuckets, as a double
  std::size_t ringCount_ = 0;       ///< events currently in ring buckets
  bool ringActive_ = false;
  double width_ = 0.0;              ///< bucket width, µs
  double invWidth_ = 0.0;

  // Calibration state (dead once ringActive_).
  double minPosDelta_ = std::numeric_limits<double>::infinity();
  double maxDelta_ = 0.0;
  int samples_ = 0;

  /// Slab pools; their teardown destroys any captures still pending when
  /// the queue dies (heaps/table/lists/ring hold only raw pointers — and
  /// the spare slot, whose callback has always been moved out, is also
  /// slab-owned).
  support::ObjectPool<Slot, 256> slots_;
  support::ObjectPool<Group, 256> groups_;
  Slot* spare_ = nullptr;        ///< most recently emptied slot, ready to reuse
  Group* spareGroup_ = nullptr;  ///< ditto for time groups
  std::size_t pending_ = 0;
  Time cursor_ = kTimeZero;  ///< last popped time (calibration reference)
  Stats stats_;
};

}  // namespace diva::sim
