#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace diva::sim {

/// Move-only `void()` callable with small-buffer optimization, built for
/// the event queue: every closure the simulator schedules (a coroutine
/// handle, a `this` pointer plus in-flight state) fits in the 40-byte
/// inline buffer, so pushing an event performs no heap allocation. The
/// size is chosen so a pooled `EventQueue::Slot` (buffer + ops pointer +
/// FIFO link + timestamp) is exactly 64 bytes — one cache line. Larger
/// or throwing-move callables transparently fall back to the heap — they
/// still work, they just pay the allocation the hot path avoids.
///
/// Relocation is vtable-free: a per-type ops table is consulted only for
/// non-trivial captures; trivially-copyable inline captures (the common
/// case — pointers and integers) are moved with a fixed-size memcpy that
/// the compiler unrolls.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 40;

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callback wrapper
    emplace(std::forward<F>(fn));
  }

  /// Construct a callable directly into this (possibly occupied) slot,
  /// avoiding the extra relocation a construct-then-move-assign would pay.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& fn) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kInlinable<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  /// Destroy the stored callable, leaving the slot empty.
  void clear() noexcept { reset(); }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invoke the stored callable. Precondition: non-empty.
  void operator()() { ops_->invoke(buf_); }

  /// Invoke, then destroy the capture and leave the slot empty — the
  /// event-loop epilogue, fused so the ops table is loaded once. The
  /// capture is destroyed even if the callable throws (fail-fast checks
  /// like DIVA_CHECK propagate out of event loops); zero-cost EH keeps
  /// the non-throwing path free.
  void invokeAndReset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    try {
      ops->invoke(buf_);
    } catch (...) {
      if (ops->destroy != nullptr) ops->destroy(buf_);
      throw;
    }
    if (ops->destroy != nullptr) ops->destroy(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct `dst` from `src` and destroy `src`. Null for
    /// trivially-relocatable inline captures: a memcpy suffices.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null when destruction is a no-op.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool kInlinable =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              Fn* s = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*s));
              s->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* self) noexcept {
              std::launder(reinterpret_cast<Fn*>(self))->~Fn();
            },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      nullptr,  // the heap pointer itself relocates via memcpy
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

  void moveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineBytes);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace diva::sim
