#pragma once

namespace diva::sim {

/// Simulated time, in microseconds. A double gives us ~2^53 µs (~285 years)
/// of exactly representable integer microseconds — far beyond any run — and
/// the single-threaded engine evaluates identical expressions in identical
/// order, so runs are bit-reproducible.
using Time = double;

inline constexpr Time kTimeZero = 0.0;

/// Convenience unit helpers (everything internal is µs).
constexpr Time microseconds(double v) { return v; }
constexpr Time milliseconds(double v) { return v * 1e3; }
constexpr Time seconds(double v) { return v * 1e6; }

constexpr double toSeconds(Time t) { return t / 1e6; }
constexpr double toMilliseconds(Time t) { return t / 1e3; }
constexpr double toMinutes(Time t) { return t / 60e6; }

}  // namespace diva::sim
