#pragma once

#include <cstdint>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"

namespace diva::apps::bitonic {

/// Batcher bitonic sorting on P wires with m keys per wire (paper §3.2):
/// each processor simulates one wire; compare-exchange is replaced by a
/// merge&split of the two processors' key blocks (low keys to the lower
/// wire). Wires are assigned to processors in the left-to-right order of
/// the 2-ary decomposition's leaves, giving the circuit the topological
/// locality the access tree strategy exploits.
struct Config {
  int keysPerProc = 1024;  ///< m (paper sweeps 256..16384)
  std::uint64_t seed = 1;
};

struct Result {
  double timeUs = 0;
  std::uint64_t congestionBytes = 0;
  std::uint64_t congestionMessages = 0;
  std::uint64_t totalBytes = 0;
  std::uint64_t totalMessages = 0;
  std::vector<std::uint32_t> keys;  ///< concatenated wire blocks (should be sorted)
};

/// Run on shared variables managed by `rt`'s strategy. Each step reads
/// the partner's block, merges locally, and (barrier-separated) writes
/// the own block back.
Result runDiva(Machine& m, Runtime& rt, const Config& cfg);

/// The paper's hand-optimized baseline: each merge&split step directly
/// exchanges one message pair between the two processors.
Result runHandOptimized(Machine& m, const Config& cfg);

/// The deterministic unsorted input, wire-major (for verification).
std::vector<std::uint32_t> inputKeys(int numProcs, const Config& cfg);

}  // namespace diva::apps::bitonic
