#include "apps/bitonic/bitonic.hpp"

#include <algorithm>
#include <bit>

#include "mesh/decomposition.hpp"
#include "support/rng.hpp"

namespace diva::apps::bitonic {

namespace {

int log2int(int v) {
  DIVA_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(v)),
                 "bitonic sorting needs a power-of-two processor count");
  return std::countr_zero(static_cast<unsigned>(v));
}

/// merge&split: keep the lower or upper half of merge(mine, partner).
std::vector<std::uint32_t> mergeSplit(const std::vector<std::uint32_t>& mine,
                                      const std::vector<std::uint32_t>& partner,
                                      bool keepLower) {
  const std::size_t m = mine.size();
  std::vector<std::uint32_t> out(m);
  if (keepLower) {
    std::size_t a = 0, b = 0;
    for (std::size_t i = 0; i < m; ++i)
      out[i] = (b >= m || (a < m && mine[a] <= partner[b])) ? mine[a++] : partner[b++];
  } else {
    std::size_t a = m, b = m;
    for (std::size_t i = m; i-- > 0;)
      out[i] = (b == 0 || (a > 0 && mine[a - 1] >= partner[b - 1])) ? mine[--a]
                                                                    : partner[--b];
  }
  return out;
}

/// Wire w keeps the lower outputs in step (i, j) iff its i-th bit is 0
/// XOR whether it is the lower wire of the pair.
bool keepsLower(int w, int partner, int phase) {
  const bool ascending = ((w >> phase) & 1) == 0;
  return (w < partner) == ascending;
}

double mergeCost(const net::CostModel& cm, int m) {
  return 2.0 * m * cm.keyOpUs;
}
double localSortCost(const net::CostModel& cm, int m) {
  return static_cast<double>(m) * std::bit_width(static_cast<unsigned>(m)) * cm.keyOpUs;
}

}  // namespace

std::vector<std::uint32_t> inputKeys(int numProcs, const Config& cfg) {
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(numProcs) * cfg.keysPerProc);
  support::SplitMix64 rng(cfg.seed);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next());
  return keys;
}

// ---------------------------------------------------------------------------
// DIVA version
// ---------------------------------------------------------------------------

Result runDiva(Machine& m, Runtime& rt, const Config& cfg) {
  const int P = m.numProcs();
  const int logP = log2int(P);
  const int keys = cfg.keysPerProc;
  const auto order = net::canonicalLeafOrder(m.topo());
  const auto input = inputKeys(P, cfg);

  // One variable per wire, owned by the wire's processor (setup, free).
  std::vector<VarId> wireVar(static_cast<std::size_t>(P));
  for (int w = 0; w < P; ++w) {
    std::vector<std::uint32_t> block(input.begin() + static_cast<std::ptrdiff_t>(w) * keys,
                                     input.begin() + static_cast<std::ptrdiff_t>(w + 1) * keys);
    wireVar[w] = rt.createVarFree(order[w], makeVecValue(block));
  }

  auto program = [](Machine& mm, Runtime& r, int keysN, int logP_, int w, NodeId p,
                    std::vector<VarId>& vars) -> sim::Task<> {
    // Initial local sort.
    auto mine = valueAsVec<std::uint32_t>(*r.tryReadLocal(p, vars[w]));
    std::sort(mine.begin(), mine.end());
    r.chargeCompute(p, localSortCost(mm.net.cost(), keysN));
    co_await r.write(p, vars[w], makeVecValue(mine));
    co_await r.barrier(p);

    for (int phase = 1; phase <= logP_; ++phase) {
      for (int j = phase - 1; j >= 0; --j) {
        const int partner = w ^ (1 << j);
        const Value pv = co_await r.read(p, vars[partner]);
        mine = mergeSplit(mine, valueAsVec<std::uint32_t>(pv),
                          keepsLower(w, partner, phase));
        r.chargeCompute(p, mergeCost(mm.net.cost(), keysN));
        co_await r.barrier(p);  // everyone has read before anyone writes
        co_await r.write(p, vars[w], makeVecValue(mine));
        co_await r.barrier(p);
      }
    }
  };

  for (int w = 0; w < P; ++w) sim::spawn(program(m, rt, keys, logP, w, order[w], wireVar));

  Result res;
  res.timeUs = m.run();
  res.congestionBytes = m.stats.links.congestionBytes();
  res.congestionMessages = m.stats.links.congestionMessages();
  res.totalBytes = m.stats.links.totalBytes();
  res.totalMessages = m.stats.links.totalMessages();
  res.keys.reserve(static_cast<std::size_t>(P) * keys);
  for (int w = 0; w < P; ++w) {
    const auto block = valueAsVec<std::uint32_t>(rt.peek(wireVar[w]));
    res.keys.insert(res.keys.end(), block.begin(), block.end());
  }
  return res;
}

// ---------------------------------------------------------------------------
// Hand-optimized message passing
// ---------------------------------------------------------------------------

Result runHandOptimized(Machine& m, const Config& cfg) {
  const int P = m.numProcs();
  const int logP = log2int(P);
  const int keys = cfg.keysPerProc;
  const auto order = net::canonicalLeafOrder(m.topo());
  const auto input = inputKeys(P, cfg);

  std::vector<std::vector<std::uint32_t>> finals(static_cast<std::size_t>(P));

  auto program = [](Machine& mm, const Config& c, int logP_, int w,
                    const std::vector<mesh::NodeId>& ord,
                    const std::vector<std::uint32_t>& in,
                    std::vector<std::uint32_t>& final) -> sim::Task<> {
    const NodeId p = ord[w];
    const int keysN = c.keysPerProc;
    std::vector<std::uint32_t> mine(in.begin() + static_cast<std::ptrdiff_t>(w) * keysN,
                                    in.begin() + static_cast<std::ptrdiff_t>(w + 1) * keysN);
    std::sort(mine.begin(), mine.end());
    mm.net.reserveCpu(p, localSortCost(mm.net.cost(), keysN));
    mm.stats.addCompute(localSortCost(mm.net.cost(), keysN));

    int step = 0;
    for (int phase = 1; phase <= logP_; ++phase) {
      for (int j = phase - 1; j >= 0; --j, ++step) {
        const int partner = w ^ (1 << j);
        const net::Channel ch = net::kFirstAppChannel + static_cast<net::Channel>(step);
        net::Message out{p, ord[partner], ch,
                         static_cast<std::uint64_t>(keysN) * 4,
                         mine};
        co_await mm.net.send(std::move(out));
        net::Message inMsg = co_await mm.net.recv(p, ch);
        const auto theirs = inMsg.take<std::vector<std::uint32_t>>();
        mine = mergeSplit(mine, theirs, keepsLower(w, partner, phase));
        mm.net.reserveCpu(p, mergeCost(mm.net.cost(), keysN));
        mm.stats.addCompute(mergeCost(mm.net.cost(), keysN));
      }
    }
    co_await mm.net.compute(p, 0.0);
    final = std::move(mine);
  };

  for (int w = 0; w < P; ++w) sim::spawn(program(m, cfg, logP, w, order, input, finals[w]));

  Result res;
  res.timeUs = m.run();
  res.congestionBytes = m.stats.links.congestionBytes();
  res.congestionMessages = m.stats.links.congestionMessages();
  res.totalBytes = m.stats.links.totalBytes();
  res.totalMessages = m.stats.links.totalMessages();
  res.keys.reserve(static_cast<std::size_t>(P) * keys);
  for (auto& block : finals) res.keys.insert(res.keys.end(), block.begin(), block.end());
  return res;
}

}  // namespace diva::apps::bitonic
