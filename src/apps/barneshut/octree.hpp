#pragma once

#include <cstdint>
#include <vector>

#include "apps/barneshut/body.hpp"

namespace diva::apps::barneshut {

/// Bounding cube of a body set: the smallest padded cube containing all
/// positions. Shared by the serial reference and the distributed run so
/// both build identical trees.
struct Cube {
  Vec3 center;
  double halfSize = 1.0;
};
Cube boundingCube(const std::vector<BodyData>& bodies);
Cube combineCubes(const Vec3& lo, const Vec3& hi);

/// Simulation parameters shared by the reference and distributed runs.
struct SimParams {
  double theta = 1.0;   ///< opening criterion: open cell if 2·half/dist ≥ θ
  double dt = 0.025;    ///< leapfrog step
  double eps = 0.05;    ///< Plummer softening
};

/// Sequential Barnes–Hut simulator. Implements exactly the algorithm the
/// distributed application runs — same tree shape (region subdivision is
/// insertion-order independent), same child visit order, same floating
/// point accumulation order — so a distributed run over any strategy must
/// reproduce its positions bit for bit. Also provides a direct O(N²)
/// summation for accuracy tests.
class ReferenceSimulator {
 public:
  ReferenceSimulator(std::vector<BodyData> bodies, SimParams params);

  /// Advance one full time step (build, centre of mass, force, advance).
  void step();

  const std::vector<BodyData>& bodies() const { return bodies_; }
  const std::vector<Vec3>& lastAccelerations() const { return acc_; }

  /// Tree statistics of the most recent step (tests).
  int numCells() const { return static_cast<int>(cells_.size()); }
  int maxDepth() const { return maxDepth_; }
  double totalWork() const;

  /// Direct-summation accelerations for the current positions.
  std::vector<Vec3> directAccelerations() const;

  /// Compute the acceleration on body `i` by walking the current tree
  /// (valid after step(); used by tests to probe the approximation).
  Vec3 treeAcceleration(int i) const;

 private:
  /// child slot encoding: -1 empty, >= 0 cell index, <= -2 body ~(idx).
  static int encodeBody(int body) { return ~body - 1; }
  static int decodeBody(int slot) { return ~(slot + 1); }
  static bool isBodySlot(int slot) { return slot <= -2; }

  struct Cell {
    Vec3 center;
    double half = 0;
    Vec3 com;
    double mass = 0;
    double work = 0;
    int child[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    double childWork[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    int depth = 0;
  };

  void build();
  void insert(int body);
  void computeMass(int cell);
  Vec3 force(int body, double& work) const;

  std::vector<BodyData> bodies_;
  SimParams params_;
  std::vector<Cell> cells_;
  std::vector<Vec3> acc_;
  std::vector<double> work_;
  int maxDepth_ = 0;
};

}  // namespace diva::apps::barneshut
