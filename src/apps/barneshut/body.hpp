#pragma once

#include <cstdint>

#include "apps/barneshut/vec3.hpp"
#include "diva/types.hpp"

namespace diva::apps::barneshut {

/// Shared representation of one body (one global variable per body).
struct BodyData {
  Vec3 pos;
  Vec3 vel;
  double mass = 0;
  /// Interactions computed for this body in the previous force phase —
  /// the costzones work estimate.
  double work = 1.0;
};
static_assert(sizeof(BodyData) == 64);

/// Shared representation of one Barnes–Hut tree cell (one global variable
/// per cell; rebuilt every time step). `child[i]` refers to either a body
/// or a cell variable; `childWork[i]` caches the subtree work below that
/// child (filled by the centre-of-mass pass, consumed by costzones).
struct CellData {
  Vec3 center;
  double halfSize = 0;
  Vec3 com;          ///< centre of mass (after the upward pass)
  double mass = 0;   ///< total mass below
  double workSum = 0;
  VarId child[8] = {kInvalidVar, kInvalidVar, kInvalidVar, kInvalidVar,
                    kInvalidVar, kInvalidVar, kInvalidVar, kInvalidVar};
  double childWork[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(CellData) == 200);

}  // namespace diva::apps::barneshut
