#include "apps/barneshut/octree.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace diva::apps::barneshut {

Cube boundingCube(const std::vector<BodyData>& bodies) {
  DIVA_CHECK(!bodies.empty());
  Vec3 lo = bodies.front().pos, hi = bodies.front().pos;
  for (const auto& b : bodies) {
    lo.x = std::min(lo.x, b.pos.x);
    lo.y = std::min(lo.y, b.pos.y);
    lo.z = std::min(lo.z, b.pos.z);
    hi.x = std::max(hi.x, b.pos.x);
    hi.y = std::max(hi.y, b.pos.y);
    hi.z = std::max(hi.z, b.pos.z);
  }
  return combineCubes(lo, hi);
}

Cube combineCubes(const Vec3& lo, const Vec3& hi) {
  Cube c;
  c.center = (lo + hi) * 0.5;
  const double ext =
      std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-9});
  c.halfSize = ext * 0.5 * 1.05;  // 5% padding keeps boundary bodies inside
  return c;
}

ReferenceSimulator::ReferenceSimulator(std::vector<BodyData> bodies, SimParams params)
    : bodies_(std::move(bodies)), params_(params) {
  acc_.assign(bodies_.size(), Vec3{});
  work_.assign(bodies_.size(), 1.0);
}

void ReferenceSimulator::build() {
  cells_.clear();
  maxDepth_ = 0;
  const Cube cube = boundingCube(bodies_);
  Cell root;
  root.center = cube.center;
  root.half = cube.halfSize;
  cells_.push_back(root);
  for (int i = 0; i < static_cast<int>(bodies_.size()); ++i) insert(i);
}

void ReferenceSimulator::insert(int body) {
  const Vec3 pos = bodies_[static_cast<std::size_t>(body)].pos;
  int cur = 0;
  for (int depth = 0; ; ++depth) {
    DIVA_CHECK_MSG(depth < 128, "octree degenerated (coincident bodies?)");
    maxDepth_ = std::max(maxDepth_, depth + 1);
    Cell& c = cells_[static_cast<std::size_t>(cur)];
    const int oct = octantOf(pos, c.center);
    const int slot = c.child[oct];
    if (slot == -1) {
      c.child[oct] = encodeBody(body);
      return;
    }
    if (!isBodySlot(slot)) {
      cur = slot;
      continue;
    }
    // Two bodies in one octant: grow a chain of cells until they split.
    const int other = decodeBody(slot);
    const Vec3 opos = bodies_[static_cast<std::size_t>(other)].pos;
    Vec3 center = octantCenter(c.center, c.half, oct);
    double half = c.half / 2;
    int chainDepth = depth + 1;
    const int top = static_cast<int>(cells_.size());
    int attachCell = cur;
    int attachOct = oct;
    for (;;) {
      DIVA_CHECK_MSG(chainDepth < 128, "octree degenerated (coincident bodies?)");
      Cell nc;
      nc.center = center;
      nc.half = half;
      nc.depth = chainDepth;
      const int ncIdx = static_cast<int>(cells_.size());
      cells_.push_back(nc);
      // Note: `c` reference may dangle after push_back; re-index.
      cells_[static_cast<std::size_t>(attachCell)].child[attachOct] = ncIdx;
      const int o1 = octantOf(opos, center);
      const int o2 = octantOf(pos, center);
      if (o1 != o2) {
        cells_[static_cast<std::size_t>(ncIdx)].child[o1] = encodeBody(other);
        cells_[static_cast<std::size_t>(ncIdx)].child[o2] = encodeBody(body);
        maxDepth_ = std::max(maxDepth_, chainDepth + 1);
        (void)top;
        return;
      }
      attachCell = ncIdx;
      attachOct = o1;
      center = octantCenter(center, half, o1);
      half /= 2;
      ++chainDepth;
    }
  }
}

void ReferenceSimulator::computeMass(int cell) {
  Cell& c = cells_[static_cast<std::size_t>(cell)];
  Vec3 weighted{};
  double mass = 0;
  double work = 0;
  for (int oct = 0; oct < 8; ++oct) {
    const int slot = c.child[oct];
    if (slot == -1) continue;
    if (isBodySlot(slot)) {
      const auto& b = bodies_[static_cast<std::size_t>(decodeBody(slot))];
      weighted += b.pos * b.mass;
      mass += b.mass;
      c.childWork[oct] = work_[static_cast<std::size_t>(decodeBody(slot))];
    } else {
      computeMass(slot);
      const Cell& ch = cells_[static_cast<std::size_t>(slot)];
      weighted += ch.com * ch.mass;
      mass += ch.mass;
      c.childWork[oct] = ch.work;
    }
    work += c.childWork[oct];
  }
  DIVA_CHECK(mass > 0);
  c.com = weighted * (1.0 / mass);
  c.mass = mass;
  c.work = work;
}

Vec3 ReferenceSimulator::force(int body, double& work) const {
  const Vec3 pos = bodies_[static_cast<std::size_t>(body)].pos;
  Vec3 acc{};
  work = 0;
  // Explicit stack, children pushed in reverse so they pop in octant
  // order — identical accumulation order to the distributed walker.
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int slot = stack.back();
    stack.pop_back();
    if (isBodySlot(slot)) {
      const int ob = decodeBody(slot);
      if (ob == body) continue;
      const auto& b = bodies_[static_cast<std::size_t>(ob)];
      acc += gravity(pos, b.pos, b.mass, params_.eps);
      work += 1;
      continue;
    }
    const Cell& c = cells_[static_cast<std::size_t>(slot)];
    const double dist = (c.com - pos).norm();
    if (2.0 * c.half < params_.theta * dist) {
      acc += gravity(pos, c.com, c.mass, params_.eps);
      work += 1;
      continue;
    }
    for (int oct = 7; oct >= 0; --oct)
      if (c.child[oct] != -1) stack.push_back(c.child[oct]);
  }
  return acc;
}

void ReferenceSimulator::step() {
  build();
  computeMass(0);
  for (int i = 0; i < static_cast<int>(bodies_.size()); ++i)
    acc_[static_cast<std::size_t>(i)] = force(i, work_[static_cast<std::size_t>(i)]);
  for (int i = 0; i < static_cast<int>(bodies_.size()); ++i) {
    auto& b = bodies_[static_cast<std::size_t>(i)];
    b.vel += acc_[static_cast<std::size_t>(i)] * params_.dt;
    b.pos += b.vel * params_.dt;
    b.work = work_[static_cast<std::size_t>(i)];
  }
}

double ReferenceSimulator::totalWork() const {
  return cells_.empty() ? 0.0 : cells_[0].work;
}

std::vector<Vec3> ReferenceSimulator::directAccelerations() const {
  std::vector<Vec3> acc(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i)
    for (std::size_t j = 0; j < bodies_.size(); ++j) {
      if (i == j) continue;
      acc[i] += gravity(bodies_[i].pos, bodies_[j].pos, bodies_[j].mass, params_.eps);
    }
  return acc;
}

Vec3 ReferenceSimulator::treeAcceleration(int i) const {
  double w;
  return force(i, w);
}

}  // namespace diva::apps::barneshut
