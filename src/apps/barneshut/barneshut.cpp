#include "apps/barneshut/barneshut.hpp"

#include <cmath>
#include <limits>
#include <tuple>

#include "apps/barneshut/plummer.hpp"
#include "mesh/decomposition.hpp"

namespace diva::apps::barneshut {

const char* phaseName(int phase) {
  switch (phase) {
    case kTreeBuild: return "tree build";
    case kCenterOfMass: return "center of mass";
    case kPartition: return "costzones";
    case kForce: return "force computation";
    case kAdvance: return "advance";
    case kBoundingBox: return "bounding box";
    default: return "?";
  }
}

namespace {

struct RootInfo {
  VarId rootCell = kInvalidVar;
};

struct BBoxData {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};
};

/// Cross-processor state of one run (the simulator-level container for
/// what would be per-node program state plus the variable id tables).
struct Shared {
  Config cfg;
  Machine* m = nullptr;
  Runtime* rt = nullptr;
  int P = 0;
  std::vector<NodeId> order;  ///< rank → processor (decomposition leaf order)

  VarId rootVar = kInvalidVar;
  VarId maxDepthVar = kInvalidVar;
  std::vector<VarId> depthVar;
  std::vector<VarId> bboxVar;
  VarId firstBody = kInvalidVar;
  int numBodies = 0;

  std::vector<std::vector<VarId>> owned;                      ///< bodies per rank
  std::vector<std::vector<std::pair<VarId, int>>> myCells;    ///< (cell, depth) per rank
  Cube cube;                                                  ///< next step's root cube
  sim::Time measureStart = 0;
  std::uint64_t cellsCreated = 0;

  bool isBody(VarId id) const { return id >= firstBody && id < firstBody + numBodies; }
  int bodyIndex(VarId id) const { return static_cast<int>(id - firstBody); }
};

/// Read helper with the non-suspending fast path for cache hits.
#define BH_READ(out, rtRef, p, id)                          \
  Value out##_owned;                                        \
  const Value* out##_ptr = (rtRef).tryReadLocal((p), (id)); \
  if (!out##_ptr) {                                         \
    out##_owned = co_await (rtRef).read((p), (id));         \
    out##_ptr = &out##_owned;                               \
  }                                                         \
  const Value& out = *out##_ptr;

sim::Task<> insertBody(Shared& sh, int rank, NodeId p, VarId rootCell, VarId bodyVar) {
  Runtime& rt = *sh.rt;
  BH_READ(bodyVal, rt, p, bodyVar);
  const BodyData bd = valueAs<BodyData>(bodyVal);

  VarId cur = rootCell;
  int depth = 0;
  for (;;) {
    DIVA_CHECK_MSG(depth < 128, "octree degenerated (coincident bodies?)");
    rt.chargeCompute(p, sh.m->net.cost().cellVisitUs);
    BH_READ(curVal, rt, p, cur);
    CellData c = valueAs<CellData>(curVal);
    const int oct = octantOf(bd.pos, c.center);
    const VarId slot = c.child[oct];
    if (slot != kInvalidVar && !sh.isBody(slot)) {
      // Cell pointers are immutable once set: descend without locking.
      cur = slot;
      ++depth;
      continue;
    }

    // The slot needs modification: lock, re-read (coherence guarantees a
    // fresh value after the lock), re-check.
    co_await rt.lock(p, cur);
    const Value lockedVal = co_await rt.read(p, cur);
    c = valueAs<CellData>(lockedVal);
    const VarId fresh = c.child[oct];
    if (fresh == kInvalidVar) {
      c.child[oct] = bodyVar;
      co_await rt.write(p, cur, makeValue(c));
      co_await rt.unlock(p, cur);
      co_return;
    }
    if (!sh.isBody(fresh)) {
      co_await rt.unlock(p, cur);
      cur = fresh;
      ++depth;
      continue;
    }

    // Octant already holds a body: grow a chain of cells until the two
    // bodies separate, then publish the chain's top under the lock.
    const Value otherVal = co_await rt.read(p, fresh);
    const BodyData ob = valueAs<BodyData>(otherVal);
    std::vector<std::tuple<Vec3, double, int>> chain;
    Vec3 center = octantCenter(c.center, c.halfSize, oct);
    double half = c.halfSize / 2;
    int d = depth + 1;
    for (;;) {
      DIVA_CHECK_MSG(d < 128, "octree degenerated (coincident bodies?)");
      chain.emplace_back(center, half, d);
      const int o1 = octantOf(ob.pos, center);
      const int o2 = octantOf(bd.pos, center);
      if (o1 != o2) break;
      center = octantCenter(center, half, o1);
      half /= 2;
      ++d;
    }
    VarId below = kInvalidVar;
    for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
      CellData nc;
      nc.center = std::get<0>(chain[static_cast<std::size_t>(i)]);
      nc.halfSize = std::get<1>(chain[static_cast<std::size_t>(i)]);
      if (i == static_cast<int>(chain.size()) - 1) {
        nc.child[octantOf(ob.pos, nc.center)] = fresh;
        nc.child[octantOf(bd.pos, nc.center)] = bodyVar;
      } else {
        nc.child[octantOf(bd.pos, nc.center)] = below;
      }
      below = co_await rt.createVar(p, makeValue(nc), /*withLock=*/true);
      ++sh.cellsCreated;
      sh.myCells[static_cast<std::size_t>(rank)].emplace_back(
          below, std::get<2>(chain[static_cast<std::size_t>(i)]));
    }
    c.child[oct] = below;
    co_await rt.write(p, cur, makeValue(c));
    co_await rt.unlock(p, cur);
    co_return;
  }
}

sim::Task<> computeCellMass(Shared& sh, NodeId p, VarId cellVar) {
  Runtime& rt = *sh.rt;
  BH_READ(cellVal, rt, p, cellVar);
  CellData c = valueAs<CellData>(cellVal);
  Vec3 weighted{};
  double mass = 0, work = 0;
  for (int oct = 0; oct < 8; ++oct) {
    const VarId slot = c.child[oct];
    if (slot == kInvalidVar) continue;
    if (sh.isBody(slot)) {
      BH_READ(bv, rt, p, slot);
      const BodyData b = valueAs<BodyData>(bv);
      weighted += b.pos * b.mass;
      mass += b.mass;
      c.childWork[oct] = b.work;
    } else {
      BH_READ(cv, rt, p, slot);
      const CellData ch = valueAs<CellData>(cv);
      weighted += ch.com * ch.mass;
      mass += ch.mass;
      c.childWork[oct] = ch.workSum;
    }
    work += c.childWork[oct];
    rt.chargeCompute(p, 6 * sh.m->net.cost().flopUs);
  }
  DIVA_CHECK(mass > 0);
  c.com = weighted * (1.0 / mass);
  c.mass = mass;
  c.workSum = work;
  co_await rt.write(p, cellVar, makeValue(c));
}

sim::Task<> costzones(Shared& sh, int rank, NodeId p, VarId rootCell,
                      std::vector<VarId>& out) {
  Runtime& rt = *sh.rt;
  BH_READ(rootVal, rt, p, rootCell);
  const double total = valueAs<CellData>(rootVal).workSum;
  const double lo =
      rank == 0 ? -std::numeric_limits<double>::infinity() : total * rank / sh.P;
  const double hi = rank == sh.P - 1 ? std::numeric_limits<double>::infinity()
                                     : total * (rank + 1) / sh.P;
  out.clear();
  struct Item {
    VarId cell;
    double base;
  };
  std::vector<Item> stack{{rootCell, 0.0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    rt.chargeCompute(p, sh.m->net.cost().cellVisitUs);
    BH_READ(cv, rt, p, it.cell);
    const CellData c = valueAs<CellData>(cv);
    double base = it.base;
    for (int oct = 0; oct < 8; ++oct) {
      const VarId slot = c.child[oct];
      const double w = c.childWork[oct];
      if (slot == kInvalidVar) continue;
      if (sh.isBody(slot)) {
        const double mid = base + w / 2;
        if (lo <= mid && mid < hi) out.push_back(slot);
      } else if (base < hi && base + w > lo) {
        stack.push_back(Item{slot, base});
      }
      base += w;
    }
  }
}

sim::Task<> procMain(Shared& sh, int rank) {
  Machine& m = *sh.m;
  Runtime& rt = *sh.rt;
  const NodeId p = sh.order[static_cast<std::size_t>(rank)];
  const SimParams prm = sh.cfg.params;
  auto& myCells = sh.myCells[static_cast<std::size_t>(rank)];
  auto& owned = sh.owned[static_cast<std::size_t>(rank)];

  for (int step = 0; step < sh.cfg.steps; ++step) {
    co_await rt.barrier(p);
    // Last step's tree is dead: release its variables (free).
    for (const auto& [cell, depth] : myCells) rt.destroyVarFree(cell);
    myCells.clear();

    if (rank == 0) {
      if (step == sh.cfg.warmupSteps && step > 0) {
        m.stats.reset(m.engine.now());
        sh.measureStart = m.engine.now();
      }
      m.stats.setPhase(kTreeBuild, m.engine.now());
      CellData root;
      root.center = sh.cube.center;
      root.halfSize = sh.cube.halfSize;
      const VarId rc = co_await rt.createVar(p, makeValue(root), /*withLock=*/true);
      ++sh.cellsCreated;
      myCells.emplace_back(rc, 0);
      co_await rt.write(p, sh.rootVar, makeValue(RootInfo{rc}));
    }
    co_await rt.barrier(p);

    // ---- Phase 1: load the bodies into the tree ----
    BH_READ(rootInfoVal, rt, p, sh.rootVar);
    const VarId rootCell = valueAs<RootInfo>(rootInfoVal).rootCell;
    for (const VarId b : owned) co_await insertBody(sh, rank, p, rootCell, b);
    co_await rt.barrier(p);

    // ---- Phase 2: upward pass (centres of mass) ----
    if (rank == 0) m.stats.setPhase(kCenterOfMass, m.engine.now());
    std::int64_t localDepth = 0;
    for (const auto& [cell, depth] : myCells)
      localDepth = std::max<std::int64_t>(localDepth, depth);
    co_await rt.write(p, sh.depthVar[static_cast<std::size_t>(rank)],
                      makeValue(localDepth));
    co_await rt.barrier(p);
    if (rank == 0) {
      std::int64_t maxDepth = 0;
      for (int r = 0; r < sh.P; ++r) {
        const Value dv = co_await rt.read(p, sh.depthVar[static_cast<std::size_t>(r)]);
        maxDepth = std::max(maxDepth, valueAs<std::int64_t>(dv));
      }
      co_await rt.write(p, sh.maxDepthVar, makeValue(maxDepth));
    }
    co_await rt.barrier(p);
    BH_READ(maxDepthVal, rt, p, sh.maxDepthVar);
    const std::int64_t maxDepth = valueAs<std::int64_t>(maxDepthVal);
    for (std::int64_t level = maxDepth; level >= 0; --level) {
      for (const auto& [cell, depth] : myCells)
        if (depth == level) co_await computeCellMass(sh, p, cell);
      co_await rt.barrier(p);
    }

    // ---- Phase 3: costzones partitioning ----
    if (rank == 0) m.stats.setPhase(kPartition, m.engine.now());
    co_await costzones(sh, rank, p, rootCell, owned);
    co_await rt.barrier(p);

    // ---- Phase 4: force computation ----
    if (rank == 0) m.stats.setPhase(kForce, m.engine.now());
    std::vector<BodyData> bodyState(owned.size());
    std::vector<Vec3> accs(owned.size());
    std::vector<double> works(owned.size());
    for (std::size_t bi = 0; bi < owned.size(); ++bi) {
      const VarId bv = owned[bi];
      BH_READ(bval, rt, p, bv);
      const BodyData bd = valueAs<BodyData>(bval);
      Vec3 acc{};
      double work = 0;
      std::vector<VarId> stack{rootCell};
      while (!stack.empty()) {
        const VarId id = stack.back();
        stack.pop_back();
        if (sh.isBody(id)) {
          if (id == bv) continue;
          BH_READ(ov, rt, p, id);
          const BodyData ob = valueAs<BodyData>(ov);
          acc += gravity(bd.pos, ob.pos, ob.mass, prm.eps);
          work += 1;
          rt.chargeCompute(p, m.net.cost().bodyForceUs);
          continue;
        }
        BH_READ(cv, rt, p, id);
        const CellData c = valueAs<CellData>(cv);
        rt.chargeCompute(p, m.net.cost().cellVisitUs);
        const double dist = (c.com - bd.pos).norm();
        if (2.0 * c.halfSize < prm.theta * dist) {
          acc += gravity(bd.pos, c.com, c.mass, prm.eps);
          work += 1;
          rt.chargeCompute(p, m.net.cost().bodyForceUs);
          continue;
        }
        for (int oct = 7; oct >= 0; --oct)
          if (c.child[oct] != kInvalidVar) stack.push_back(c.child[oct]);
      }
      bodyState[bi] = bd;
      accs[bi] = acc;
      works[bi] = work;
    }
    co_await rt.barrier(p);

    // ---- Phase 5: advance bodies ----
    if (rank == 0) m.stats.setPhase(kAdvance, m.engine.now());
    BBoxData box;
    for (std::size_t bi = 0; bi < owned.size(); ++bi) {
      BodyData& bd = bodyState[bi];
      bd.vel += accs[bi] * prm.dt;
      bd.pos += bd.vel * prm.dt;
      bd.work = works[bi];
      rt.chargeCompute(p, 12 * m.net.cost().flopUs);
      co_await rt.write(p, owned[bi], makeValue(bd));
      box.lo.x = std::min(box.lo.x, bd.pos.x);
      box.lo.y = std::min(box.lo.y, bd.pos.y);
      box.lo.z = std::min(box.lo.z, bd.pos.z);
      box.hi.x = std::max(box.hi.x, bd.pos.x);
      box.hi.y = std::max(box.hi.y, bd.pos.y);
      box.hi.z = std::max(box.hi.z, bd.pos.z);
    }
    co_await rt.barrier(p);

    // ---- Phase 6: new size of space ----
    if (rank == 0) m.stats.setPhase(kBoundingBox, m.engine.now());
    co_await rt.write(p, sh.bboxVar[static_cast<std::size_t>(rank)], makeValue(box));
    co_await rt.barrier(p);
    if (rank == 0) {
      Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
      for (int r = 0; r < sh.P; ++r) {
        const Value bb = co_await rt.read(p, sh.bboxVar[static_cast<std::size_t>(r)]);
        const BBoxData d = valueAs<BBoxData>(bb);
        lo.x = std::min(lo.x, d.lo.x);
        lo.y = std::min(lo.y, d.lo.y);
        lo.z = std::min(lo.z, d.lo.z);
        hi.x = std::max(hi.x, d.hi.x);
        hi.y = std::max(hi.y, d.hi.y);
        hi.z = std::max(hi.z, d.hi.z);
      }
      sh.cube = combineCubes(lo, hi);
    }
    co_await rt.barrier(p);
  }
}

}  // namespace

Result run(Machine& m, Runtime& rt, const Config& cfg) {
  Shared sh;
  sh.cfg = cfg;
  sh.m = &m;
  sh.rt = &rt;
  sh.P = m.numProcs();
  sh.order = net::canonicalLeafOrder(m.topo());
  sh.numBodies = cfg.numBodies;
  sh.owned.resize(static_cast<std::size_t>(sh.P));
  sh.myCells.resize(static_cast<std::size_t>(sh.P));

  // Setup (unmeasured): service variables, then the body variables.
  sh.rootVar = rt.createVarFree(sh.order[0], makeValue(RootInfo{}));
  sh.maxDepthVar = rt.createVarFree(sh.order[0], makeValue<std::int64_t>(0));
  for (int r = 0; r < sh.P; ++r) {
    sh.depthVar.push_back(
        rt.createVarFree(sh.order[static_cast<std::size_t>(r)], makeValue<std::int64_t>(0)));
    sh.bboxVar.push_back(
        rt.createVarFree(sh.order[static_cast<std::size_t>(r)], makeValue(BBoxData{})));
  }

  const auto bodies = plummerModel(cfg.numBodies, cfg.seed);
  sh.cube = boundingCube(bodies);
  for (int b = 0; b < cfg.numBodies; ++b) {
    const int rank = static_cast<int>(static_cast<std::int64_t>(b) * sh.P / cfg.numBodies);
    const VarId v = rt.createVarFree(sh.order[static_cast<std::size_t>(rank)],
                                     makeValue(bodies[static_cast<std::size_t>(b)]));
    if (b == 0) sh.firstBody = v;
    sh.owned[static_cast<std::size_t>(rank)].push_back(v);
  }

  for (int rank = 0; rank < sh.P; ++rank) sim::spawn(procMain(sh, rank));
  const sim::Time end = m.run();

  Result res;
  res.timeUs = end - sh.measureStart;
  res.congestionMessages = m.stats.links.congestionMessages();
  res.congestionBytes = m.stats.links.congestionBytes();
  res.totalMessages = m.stats.links.totalMessages();
  res.totalBytes = m.stats.links.totalBytes();
  for (int ph = 0; ph < kNumPhases; ++ph) {
    res.phaseWallUs[static_cast<std::size_t>(ph)] = m.stats.wallUs(ph);
    res.phaseCongestionMessages[static_cast<std::size_t>(ph)] =
        m.stats.links.congestionMessages(ph);
    res.phaseCongestionBytes[static_cast<std::size_t>(ph)] =
        m.stats.links.congestionBytes(ph);
    res.phaseComputeUs[static_cast<std::size_t>(ph)] = m.stats.computeUs(ph);
  }
  res.cellsCreated = sh.cellsCreated;
  res.readHits = m.stats.ops.readHits;
  res.reads = m.stats.ops.reads;
  res.finalBodies.reserve(static_cast<std::size_t>(cfg.numBodies));
  for (int b = 0; b < cfg.numBodies; ++b)
    res.finalBodies.push_back(
        valueAs<BodyData>(rt.peek(sh.firstBody + static_cast<VarId>(b))));
  return res;
}

}  // namespace diva::apps::barneshut
