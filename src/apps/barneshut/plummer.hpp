#pragma once

#include <cstdint>
#include <vector>

#include "apps/barneshut/body.hpp"

namespace diva::apps::barneshut {

/// Deterministic Plummer-model initial conditions (the distribution the
/// SPLASH-II BARNES benchmark generates): N equal-mass bodies sampled
/// from a Plummer sphere in virial units (G = M = 1, E = -1/4), with the
/// standard Aarseth radius rescaling 3π/16 and von Neumann rejection
/// sampling for velocities. Centre-of-mass position and momentum are
/// removed.
std::vector<BodyData> plummerModel(int n, std::uint64_t seed);

}  // namespace diva::apps::barneshut
