#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/barneshut/octree.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"

namespace diva::apps::barneshut {

/// The six phases of one Barnes–Hut time step (paper §3.3), used as the
/// stats phase ids for the per-phase congestion/time figures.
enum Phase : int {
  kTreeBuild = 0,
  kCenterOfMass = 1,
  kPartition = 2,
  kForce = 3,
  kAdvance = 4,
  kBoundingBox = 5,
  kNumPhases = 6,
};

const char* phaseName(int phase);

/// Distributed Barnes–Hut N-body simulation on DIVA global variables,
/// adapted from the SPLASH-II BARNES structure: every body and every tree
/// cell is a global variable; cells are re-created each step; per-cell
/// locks guard concurrent tree modification; costzones partitioning
/// (driven by per-body interaction counts) rebalances bodies across
/// processors in decomposition-leaf order every step.
struct Config {
  int numBodies = 4096;
  int steps = 7;         ///< total time steps (paper: 7)
  int warmupSteps = 2;   ///< steps excluded from measurement (paper: 2)
  SimParams params;      ///< θ, dt, eps — shared with ReferenceSimulator
  std::uint64_t seed = 1;
};

struct Result {
  double timeUs = 0;  ///< simulated time of the measured steps
  std::uint64_t congestionMessages = 0;
  std::uint64_t congestionBytes = 0;
  std::uint64_t totalMessages = 0;
  std::uint64_t totalBytes = 0;
  /// Per-phase measured values (indexed by Phase).
  std::array<double, kNumPhases> phaseWallUs{};
  std::array<std::uint64_t, kNumPhases> phaseCongestionMessages{};
  std::array<std::uint64_t, kNumPhases> phaseCongestionBytes{};
  std::array<double, kNumPhases> phaseComputeUs{};
  /// Final body states, in body-id order (bit-identical to the
  /// ReferenceSimulator run with the same inputs).
  std::vector<BodyData> finalBodies;
  std::uint64_t cellsCreated = 0;
  std::uint64_t readHits = 0;
  std::uint64_t reads = 0;
};

/// Run the simulation with whatever strategy `rt` was configured for.
Result run(Machine& m, Runtime& rt, const Config& cfg);

}  // namespace diva::apps::barneshut
