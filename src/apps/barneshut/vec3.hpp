#pragma once

#include <cmath>

namespace diva::apps::barneshut {

/// Minimal 3-vector for the N-body computation.
struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend Vec3 operator*(double s, Vec3 a) { return a *= s; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
  bool operator==(const Vec3&) const = default;
};

/// Octant index of `p` relative to `center` (bit 0: x, bit 1: y, bit 2: z).
inline int octantOf(const Vec3& p, const Vec3& center) {
  return (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0) |
         (p.z >= center.z ? 4 : 0);
}

/// Center of octant `oct` of a cell at `center` with half-size `half`.
inline Vec3 octantCenter(const Vec3& center, double half, int oct) {
  const double q = half / 2;
  return Vec3{center.x + ((oct & 1) ? q : -q), center.y + ((oct & 2) ? q : -q),
              center.z + ((oct & 4) ? q : -q)};
}

/// Softened gravitational acceleration exerted on a body at `at` by mass
/// `mass` at `from` (G = 1; Plummer softening eps).
inline Vec3 gravity(const Vec3& at, const Vec3& from, double mass, double eps) {
  const Vec3 dr = from - at;
  const double d2 = dr.norm2() + eps * eps;
  const double inv = 1.0 / (d2 * std::sqrt(d2));
  return dr * (mass * inv);
}

}  // namespace diva::apps::barneshut
