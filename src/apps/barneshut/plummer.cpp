#include "apps/barneshut/plummer.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace diva::apps::barneshut {

namespace {
/// Uniform point on a sphere of radius r.
Vec3 onSphere(support::SplitMix64& rng, double r) {
  // Marsaglia rejection in the unit ball, projected to the sphere.
  for (;;) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    const double z = rng.uniform(-1.0, 1.0);
    const double n2 = x * x + y * y + z * z;
    if (n2 > 1e-12 && n2 <= 1.0) {
      const double s = r / std::sqrt(n2);
      return Vec3{x * s, y * s, z * s};
    }
  }
}
}  // namespace

std::vector<BodyData> plummerModel(int n, std::uint64_t seed) {
  support::SplitMix64 rng(support::hashCombine(seed, 0x9b0d1e5ull));
  const double rsc = 3.0 * 3.14159265358979323846 / 16.0;  // radius scale
  const double vsc = std::sqrt(1.0 / rsc);                 // velocity scale

  std::vector<BodyData> bodies(static_cast<std::size_t>(n));
  for (auto& b : bodies) {
    b.mass = 1.0 / n;
    // Radius from the inverse cumulative mass distribution, clipped to
    // the 99.9% mass radius to avoid extreme outliers (as SPLASH does).
    double r;
    do {
      const double m = rng.uniform(1e-8, 0.999);
      r = 1.0 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    } while (r > 9.0);
    b.pos = onSphere(rng, rsc * r);

    // Speed via von Neumann rejection: g(q) = q² (1-q²)^{7/2}.
    double q, g;
    do {
      q = rng.uniform(0.0, 1.0);
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double v = q * std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    b.vel = onSphere(rng, vsc * v);
    b.work = 1.0;
  }

  // Remove net momentum and re-centre.
  Vec3 cmPos{}, cmVel{};
  for (const auto& b : bodies) {
    cmPos += b.pos * b.mass;
    cmVel += b.vel * b.mass;
  }
  for (auto& b : bodies) {
    b.pos -= cmPos;  // total mass is 1
    b.vel -= cmVel;
  }
  return bodies;
}

}  // namespace diva::apps::barneshut
