#pragma once

#include <cstdint>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"

namespace diva::apps::matmul {

/// Matrix squaring A := A·A (paper §3.1). The matrix is partitioned into
/// P blocks of `blockInts` integers; processor p(i,j) owns block A[i,j]
/// and computes A[i,j] := Σ_k A[i,k]·A[k,j] with the paper's staggered
/// read schedule (k = (k' + i + j) mod √P, so at most two processors
/// read any block in the same step), then a barrier, then one write.
struct Config {
  int blockInts = 1024;     ///< entries per block (paper sweeps 64..4096)
  bool realCompute = false; ///< actually multiply (correctness tests) vs synthetic payloads
  std::uint64_t seed = 1;
};

struct Result {
  double timeUs = 0;
  std::uint64_t congestionBytes = 0;
  std::uint64_t congestionMessages = 0;
  std::uint64_t totalBytes = 0;
  std::uint64_t totalMessages = 0;
  /// Final matrix in block row-major order (realCompute only).
  std::vector<std::int32_t> matrix;
};

/// Run with dynamic data management (any strategy behind `rt`).
Result runDiva(Machine& m, Runtime& rt, const Config& cfg);

/// The paper's hand-optimized message passing strategy: every block is
/// relayed hop-by-hop along its row and column (four directions), each
/// visited processor keeping a copy. Minimal congestion (m·√P) and
/// ≈2√P startups per node.
Result runHandOptimized(Machine& m, const Config& cfg);

/// Serial reference: returns A·A for an n×n row-major matrix.
std::vector<std::int32_t> serialSquare(const std::vector<std::int32_t>& a, int n);

/// The deterministic input matrix for (mesh, cfg), as used by both runs.
std::vector<std::int32_t> inputMatrix(int meshSide, const Config& cfg);

/// Matrix side length n for a √P×√P mesh with blockInts-entry blocks.
int matrixSide(int meshSide, int blockInts);

}  // namespace diva::apps::matmul
