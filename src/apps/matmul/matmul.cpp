#include "apps/matmul/matmul.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace diva::apps::matmul {

namespace {

int blockSide(int blockInts) {
  const int s = static_cast<int>(std::lround(std::sqrt(blockInts)));
  DIVA_CHECK_MSG(s * s == blockInts, "blockInts must be a perfect square");
  return s;
}

/// H += A·B for s×s row-major blocks.
void blockMultiplyAdd(std::vector<std::int32_t>& h, const std::vector<std::int32_t>& a,
                      const std::vector<std::int32_t>& b, int s) {
  for (int r = 0; r < s; ++r)
    for (int k = 0; k < s; ++k) {
      const std::int32_t av = a[r * s + k];
      for (int c = 0; c < s; ++c) h[r * s + c] += av * b[k * s + c];
    }
}

/// Simulated cost of one block multiply-add: s³ multiply-adds.
double blockMultiplyCost(const net::CostModel& cm, int s) {
  return static_cast<double>(s) * s * s * cm.flopUs;
}

std::vector<std::int32_t> blockOf(const std::vector<std::int32_t>& matrix, int n, int q,
                                  int s, int bi, int bj) {
  std::vector<std::int32_t> out(static_cast<std::size_t>(s) * s);
  for (int r = 0; r < s; ++r)
    for (int c = 0; c < s; ++c) out[r * s + c] = matrix[(bi * s + r) * n + (bj * s + c)];
  (void)q;
  return out;
}

}  // namespace

int matrixSide(int meshSide, int blockInts) { return meshSide * blockSide(blockInts); }

std::vector<std::int32_t> inputMatrix(int meshSide, const Config& cfg) {
  const int n = matrixSide(meshSide, cfg.blockInts);
  std::vector<std::int32_t> a(static_cast<std::size_t>(n) * n);
  support::SplitMix64 rng(cfg.seed);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.below(64)) - 32;
  return a;
}

std::vector<std::int32_t> serialSquare(const std::vector<std::int32_t>& a, int n) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < n; ++k) {
      const std::int32_t av = a[i * n + k];
      for (int j = 0; j < n; ++j) c[i * n + j] += av * a[k * n + j];
    }
  return c;
}

// ---------------------------------------------------------------------------
// DIVA version
// ---------------------------------------------------------------------------

Result runDiva(Machine& m, Runtime& rt, const Config& cfg) {
  DIVA_CHECK_MSG(m.mesh().rows() == m.mesh().cols(), "matmul needs a square mesh");
  const int q = m.mesh().rows();
  const int s = blockSide(cfg.blockInts);
  const int n = q * s;

  // Setup (unmeasured): block variables, initialized at their owners.
  std::vector<std::int32_t> input;
  if (cfg.realCompute) input = inputMatrix(q, cfg);
  std::vector<VarId> vars(static_cast<std::size_t>(q) * q);
  for (int i = 0; i < q; ++i)
    for (int j = 0; j < q; ++j) {
      Value init = cfg.realCompute
                       ? makeVecValue(blockOf(input, n, q, s, i, j))
                       : makeRawValue(static_cast<std::size_t>(cfg.blockInts) * 4);
      vars[i * q + j] = rt.createVarFree(m.mesh().nodeAt(i, j), std::move(init));
    }

  auto program = [](Machine& mm, Runtime& r, const Config& c, int q_, int s_,
                    std::vector<VarId>& av, int i, int j) -> sim::Task<> {
    const NodeId p = mm.mesh().nodeAt(i, j);
    std::vector<std::int32_t> h;
    if (c.realCompute) h.assign(static_cast<std::size_t>(s_) * s_, 0);
    // Read phase: √P staggered steps.
    for (int k0 = 0; k0 < q_; ++k0) {
      const int k = (k0 + i + j) % q_;
      const Value va = co_await r.read(p, av[i * q_ + k]);
      const Value vb = co_await r.read(p, av[k * q_ + j]);
      if (c.realCompute)
        blockMultiplyAdd(h, valueAsVec<std::int32_t>(va), valueAsVec<std::int32_t>(vb), s_);
      r.chargeCompute(p, blockMultiplyCost(mm.net.cost(), s_));
    }
    co_await r.barrier(p);
    // Write phase.
    Value out = c.realCompute ? makeVecValue(h)
                              : makeRawValue(static_cast<std::size_t>(s_) * s_ * 4);
    co_await r.write(p, av[i * q_ + j], std::move(out));
    co_await r.barrier(p);
  };

  for (int i = 0; i < q; ++i)
    for (int j = 0; j < q; ++j) sim::spawn(program(m, rt, cfg, q, s, vars, i, j));

  Result res;
  res.timeUs = m.run();
  res.congestionBytes = m.stats.links.congestionBytes();
  res.congestionMessages = m.stats.links.congestionMessages();
  res.totalBytes = m.stats.links.totalBytes();
  res.totalMessages = m.stats.links.totalMessages();
  if (cfg.realCompute) {
    res.matrix.assign(static_cast<std::size_t>(n) * n, 0);
    for (int i = 0; i < q; ++i)
      for (int j = 0; j < q; ++j) {
        const auto block = valueAsVec<std::int32_t>(rt.peek(vars[i * q + j]));
        for (int r = 0; r < s; ++r)
          for (int c2 = 0; c2 < s; ++c2)
            res.matrix[(i * s + r) * n + (j * s + c2)] = block[r * s + c2];
      }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Hand-optimized message passing
// ---------------------------------------------------------------------------

namespace {

struct HoBlock {
  int origin = 0;  ///< row or column index of the block's owner
  Value data;
};

constexpr net::Channel kEast = net::kFirstAppChannel + 0;
constexpr net::Channel kWest = net::kFirstAppChannel + 1;
constexpr net::Channel kSouth = net::kFirstAppChannel + 2;
constexpr net::Channel kNorth = net::kFirstAppChannel + 3;

/// One relay direction on one processor: inject the own block, then pass
/// through every block arriving from behind, keeping a copy of each.
sim::Task<> relay(Machine& m, NodeId p, net::Channel ch, bool hasNext, NodeId next,
                  int expect, int ownOrigin, Value own, std::vector<Value>& slots,
                  sim::WaitGroup& wg) {
  if (hasNext) {
    net::Message msg{p, next, ch, own->size(), HoBlock{ownOrigin, own}};
    co_await m.net.send(std::move(msg));
  }
  for (int t = 0; t < expect; ++t) {
    net::Message msg = co_await m.net.recv(p, ch);
    HoBlock blk = msg.take<HoBlock>();
    slots[static_cast<std::size_t>(blk.origin)] = blk.data;
    if (hasNext) {
      net::Message fwd{p, next, ch, blk.data->size(), HoBlock{blk.origin, blk.data}};
      co_await m.net.send(std::move(fwd));
    }
  }
  wg.done();
}

}  // namespace

Result runHandOptimized(Machine& m, const Config& cfg) {
  DIVA_CHECK_MSG(m.mesh().rows() == m.mesh().cols(), "matmul needs a square mesh");
  const int q = m.mesh().rows();
  const int s = blockSide(cfg.blockInts);
  const int n = q * s;

  std::vector<std::int32_t> input;
  if (cfg.realCompute) input = inputMatrix(q, cfg);
  // Own block of every processor.
  std::vector<Value> own(static_cast<std::size_t>(q) * q);
  for (int i = 0; i < q; ++i)
    for (int j = 0; j < q; ++j)
      own[i * q + j] = cfg.realCompute
                           ? makeVecValue(blockOf(input, n, q, s, i, j))
                           : makeRawValue(static_cast<std::size_t>(cfg.blockInts) * 4);

  // Collected row/column blocks per processor, and final results.
  struct PerProc {
    std::vector<Value> row;  ///< A[i,*] indexed by column
    std::vector<Value> col;  ///< A[*,j] indexed by row
  };
  std::vector<PerProc> procs(static_cast<std::size_t>(q) * q);
  std::vector<std::vector<std::int32_t>> results(static_cast<std::size_t>(q) * q);

  auto main = [](Machine& mm, const Config& c, int q_, int s_, int i, int j,
                 std::vector<Value>& ownBlocks, PerProc& mine,
                 std::vector<std::int32_t>& result) -> sim::Task<> {
    const NodeId p = mm.mesh().nodeAt(i, j);
    mine.row.assign(static_cast<std::size_t>(q_), Value{});
    mine.col.assign(static_cast<std::size_t>(q_), Value{});
    const Value own = ownBlocks[i * q_ + j];
    mine.row[static_cast<std::size_t>(j)] = own;
    mine.col[static_cast<std::size_t>(i)] = own;

    sim::WaitGroup wg(mm.engine);
    wg.add(4);
    // East-bound blocks originate west of us: expect j of them.
    sim::spawn(relay(mm, p, kEast, j + 1 < q_, j + 1 < q_ ? mm.mesh().nodeAt(i, j + 1) : p,
                     j, j, own, mine.row, wg));
    sim::spawn(relay(mm, p, kWest, j > 0, j > 0 ? mm.mesh().nodeAt(i, j - 1) : p,
                     q_ - 1 - j, j, own, mine.row, wg));
    sim::spawn(relay(mm, p, kSouth, i + 1 < q_, i + 1 < q_ ? mm.mesh().nodeAt(i + 1, j) : p,
                     i, i, own, mine.col, wg));
    sim::spawn(relay(mm, p, kNorth, i > 0, i > 0 ? mm.mesh().nodeAt(i - 1, j) : p,
                     q_ - 1 - i, i, own, mine.col, wg));
    co_await wg.wait();

    // Local compute phase (same staggering and charges as the DIVA run).
    std::vector<std::int32_t> h;
    if (c.realCompute) h.assign(static_cast<std::size_t>(s_) * s_, 0);
    for (int k0 = 0; k0 < q_; ++k0) {
      const int k = (k0 + i + j) % q_;
      if (c.realCompute)
        blockMultiplyAdd(h, valueAsVec<std::int32_t>(mine.row[k]),
                         valueAsVec<std::int32_t>(mine.col[k]), s_);
      mm.net.reserveCpu(p, blockMultiplyCost(mm.net.cost(), s_));
      mm.stats.addCompute(blockMultiplyCost(mm.net.cost(), s_));
    }
    if (c.realCompute) result = std::move(h);
    co_await mm.net.compute(p, 0.0);  // drain charged work into the clock
  };

  for (int i = 0; i < q; ++i)
    for (int j = 0; j < q; ++j)
      sim::spawn(main(m, cfg, q, s, i, j, own, procs[i * q + j], results[i * q + j]));

  Result res;
  res.timeUs = m.run();
  res.congestionBytes = m.stats.links.congestionBytes();
  res.congestionMessages = m.stats.links.congestionMessages();
  res.totalBytes = m.stats.links.totalBytes();
  res.totalMessages = m.stats.links.totalMessages();
  if (cfg.realCompute) {
    res.matrix.assign(static_cast<std::size_t>(n) * n, 0);
    for (int i = 0; i < q; ++i)
      for (int j = 0; j < q; ++j)
        for (int r = 0; r < s; ++r)
          for (int c2 = 0; c2 < s; ++c2)
            res.matrix[(i * s + r) * n + (j * s + c2)] = results[i * q + j][r * s + c2];
  }
  return res;
}

}  // namespace diva::apps::matmul
