#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"

namespace diva::net {

class GraphTopology;

/// Hard bound on generated/parsed graph sizes — far above the dense
/// GraphTopology's own table bound (`GraphTopology::kMaxNodes`), because
/// the hierarchical routing build (net/hier_routing.hpp) consumes the
/// same GraphSpecs at 100k+ nodes.
inline constexpr int kMaxGraphNodes = 1 << 20;

/// Packed adjacency of a GraphSpec, shared by the dense GraphTopology and
/// the hierarchical HierGraphTopology: per-node direction slots order
/// neighbors by ascending id (the deterministic numbering every routing
/// tie-break and the partitioner's BFS rely on), padded to the maximum
/// degree with -1. Construction validates the spec — ids in range, no
/// self-loops or duplicate edges, positive weights/latencies — and throws
/// CheckError otherwise. Connectivity is *not* checked here; each
/// topology's routing build proves it as a side effect.
struct GraphAdjacency {
  GraphAdjacency() = default;
  explicit GraphAdjacency(const GraphSpec& spec);

  int numNodes = 0;
  int degree = 0;                      ///< max node degree = direction slots per node
  std::vector<NodeId> adj;             ///< [n * degree + dir] → neighbor or -1
  std::vector<double> weightOfSlot;    ///< [link slot] → edge weight (1.0 unused)
  std::vector<double> latencyOfSlot;   ///< [link slot] → edge latency (1.0 unused)

  NodeId neighbor(NodeId n, int dir) const {
    return adj[static_cast<std::size_t>(n) * degree + dir];
  }
  double weightOf(NodeId n, int dir) const {
    return weightOfSlot[static_cast<std::size_t>(n) * degree + dir];
  }
};

/// Swappable strategy behind graph `decompose()`: how to split a cluster
/// of a network into two halves. The decomposition tree is built by
/// recursive bisection (ℓ-ary levels fix log2(ℓ) bisections per tree
/// level, exactly like the mesh and hypercube trees), so the partitioner
/// only ever answers the two-way question. It sees the network through
/// the base `Topology` interface (numNodes/degree/neighbor), so the same
/// partitioner serves the dense GraphTopology and the hierarchical
/// HierGraphTopology.
///
/// Contract: `bisect` distributes every node of `cluster` (sorted
/// ascending, size ≥ 2) into `a` and `b`, both non-empty and balanced to
/// within one node (|a| = ⌈|cluster|/2⌉), each returned sorted ascending,
/// deterministically for a given (topology, cluster). Implementations
/// must keep per-call work O(|cluster|·degree), not O(numNodes) — the
/// recursion calls bisect Θ(n) times, and anything per-call-linear in the
/// whole machine turns decomposition quadratic at 100k nodes.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;
  virtual void bisect(const Topology& topo, const std::vector<NodeId>& cluster,
                      std::vector<NodeId>& a, std::vector<NodeId>& b) const = 0;
};

/// Default partitioner: BFS-grown balanced bisection. The half containing
/// the seed is grown breadth-first from a peripheral node of the cluster
/// (the node farthest from the cluster's lowest id, ties to the lowest
/// id), visiting neighbors in ascending-id order; if the cluster is
/// disconnected the growth restarts from the lowest remaining id. Cheap,
/// deterministic, and keeps at least one half connected — good enough
/// cluster locality for the access-tree strategy without an external
/// partitioning library.
class BfsBisectionPartitioner final : public GraphPartitioner {
 public:
  void bisect(const Topology& topo, const std::vector<NodeId>& cluster,
              std::vector<NodeId>& a, std::vector<NodeId>& b) const override;
};

/// Cluster tree of a general graph, built by recursive partitioning. The
/// clusters are arbitrary node sets (sizes need not be powers of the
/// arity, children of one node may differ in size by one or more), which
/// makes this the first non-node-symmetric decomposition in the tree —
/// strategies must not assume uniform cluster sizes, and the tests hold
/// them to that.
class GraphClusterTree final : public ClusterTree {
 public:
  GraphClusterTree(const Topology& topo, DecompParams params,
                   const GraphPartitioner& partitioner);

  NodeId hostOf(int treeNode, std::uint64_t varKey, EmbeddingKind kind,
                std::uint64_t seed) const override;

  /// The processors of a tree node's cluster, sorted ascending. Member
  /// order is what the Regular embedding's "keep the parent's relative
  /// position" rule indexes into.
  const std::vector<NodeId>& members(int treeNode) const { return members_[treeNode]; }

 private:
  int build(const Topology& topo, const GraphPartitioner& partitioner,
            std::vector<NodeId>&& cluster, int parent, int indexInParent, int depth,
            const DecompParams& params);
  void expandChildren(const Topology& topo, const GraphPartitioner& partitioner,
                      std::vector<NodeId>&& cluster, int levels,
                      std::vector<std::vector<NodeId>>& out);

  std::vector<std::vector<NodeId>> members_;  ///< parallel to nodes_
};

/// An arbitrary connected network, routed from precomputed all-pairs
/// tables: construction runs one deterministic shortest-path search per
/// node (Dijkstra over the edge weights; plain BFS when all weights are
/// equal) and stores a dense next-direction table plus the hop count of
/// every chosen route. `appendRoute` then walks the table —
/// arithmetic-and-load only, no allocation beyond the caller's buffer —
/// so general graphs ride the same allocation-free hot path as the
/// closed-form shapes.
///
/// Tie-breaking makes routes deterministic and next-hop-consistent:
/// among weight-optimal next hops, prefer the fewest remaining hops, then
/// the lowest direction slot (direction slots order neighbors by id).
/// Per-edge weights are exposed through `linkWeight`, which the Network
/// folds into its per-link streaming cost.
class GraphTopology final : public Topology {
 public:
  /// Validates the spec (connected, ids in range, no self-loops or
  /// duplicate edges, positive weights, ≤ kMaxNodes nodes) and builds the
  /// routing tables; throws CheckError otherwise. A custom partitioner
  /// may be supplied for decompose(); the default is BFS bisection.
  explicit GraphTopology(std::shared_ptr<const GraphSpec> spec,
                         std::shared_ptr<const GraphPartitioner> partitioner = nullptr);
  explicit GraphTopology(GraphSpec spec,
                         std::shared_ptr<const GraphPartitioner> partitioner = nullptr)
      : GraphTopology(std::make_shared<const GraphSpec>(std::move(spec)),
                      std::move(partitioner)) {}

  /// Dense n×n tables put a practical bound on machine size (4096 nodes ≈
  /// 96 MB of tables); the paper's experiments stop at 1024.
  static constexpr int kMaxNodes = 4096;

  TopologyKind kind() const override { return TopologyKind::Graph; }
  TopologySpec spec() const override { return TopologySpec::graph(spec_); }
  int numNodes() const override { return numNodes_; }
  int degree() const override { return adj_.degree; }

  NodeId neighbor(NodeId n, int dir) const override {
    if (dir < 0 || dir >= adj_.degree) return -1;
    return adj_.neighbor(n, dir);
  }

  NodeId nextHop(NodeId from, NodeId to) const override {
    if (from == to) return from;
    return neighborInDir(from, dirToward(from, to));
  }

  int distance(NodeId a, NodeId b) const override {
    return hops_[static_cast<std::size_t>(a) * numNodes_ + b];
  }

  void appendRoute(NodeId from, NodeId to, RouteVec& out) const override {
    // Table-driven walk: one load per hop for the direction, one for the
    // neighbor. No allocation beyond `out` (whose spilled capacity the
    // Network's recycled flights retain).
    NodeId cur = from;
    while (cur != to) {
      const int dir = dirToward(cur, to);
      const NodeId next = neighborInDir(cur, dir);
      out.push_back(Hop{linkIndex(cur, dir), next});
      cur = next;
    }
  }

  double linkWeight(int link) const override { return adj_.weightOfSlot[link]; }
  double linkLatency(int link) const override { return adj_.latencyOfSlot[link]; }

  /// Weighted length of the deterministic route from `a` to `b` — the
  /// quantity the routing tables minimize. Computed by walking the route
  /// (analysis/tests; not a hot-path query).
  double weightedDistance(NodeId a, NodeId b) const;

  std::unique_ptr<ClusterTree> decompose(DecompParams params) const override {
    return std::make_unique<GraphClusterTree>(*this, params, *partitioner_);
  }

  const GraphSpec& graphSpec() const { return *spec_; }
  const GraphPartitioner& partitioner() const { return *partitioner_; }

  // Structural reconfiguration (docs/faults.md): the Network edits a copy
  // of the current graph and asks for a rebuilt topology of the same kind.
  const GraphSpec* graph() const override { return spec_.get(); }
  std::unique_ptr<Topology> withGraph(GraphSpec g) const override {
    return std::make_unique<GraphTopology>(std::move(g), partitioner_);
  }

 private:
  friend class BfsBisectionPartitioner;
  friend class GraphClusterTree;

  int dirToward(NodeId from, NodeId to) const {
    return nextDir_[static_cast<std::size_t>(from) * numNodes_ + to];
  }
  NodeId neighborInDir(NodeId n, int dir) const { return adj_.neighbor(n, dir); }

  void buildRoutingTables();

  std::shared_ptr<const GraphSpec> spec_;
  std::shared_ptr<const GraphPartitioner> partitioner_;
  int numNodes_ = 0;
  GraphAdjacency adj_;                  ///< packed, id-ordered direction slots
  std::vector<std::int16_t> nextDir_;   ///< [from * n + to] → direction, -1 on diagonal
  std::vector<std::uint16_t> hops_;     ///< [from * n + to] → hop count of the route
};

// ---------------------------------------------------------------------------
// Generators — named instances for benches and tests. All deterministic;
// names embed the parameters so TopologySpec::describe() identifies runs.
// ---------------------------------------------------------------------------

/// Cycle of n ≥ 1 nodes (n = 2 is a single edge). "ring<n>".
GraphSpec ringGraph(int n);

/// Hub node 0 joined to n-1 leaves. "star<n>".
GraphSpec starGraph(int n);

/// Fat-tree-like topology: a complete `arity`-ary tree of `levels` levels
/// whose links get *cheaper* (faster) toward the root — the link into a
/// node at depth d has weight 2^-(levels-1-d), so root links stream
/// 2^(levels-2)× faster than leaf links, mimicking a fat tree's
/// bandwidth doubling per level with plain tree wiring.
/// "fattree<arity>x<levels>".
GraphSpec fatTreeGraph(int arity, int levels);

/// Random d-regular simple connected graph on n nodes via the pairing
/// model (deterministic for a given seed; retries rejected pairings and
/// disconnected outcomes with derived seeds). Requires n·d even, d ≥ 2
/// for n > 2, d < n. "rr<n>d<d>s<seed>".
GraphSpec randomRegularGraph(int n, int d, std::uint64_t seed);

/// rows×cols open mesh as a general graph (node r·cols+c, unit weights).
/// Same shape as the closed-form Mesh2D topology but routed as a graph —
/// the differential corpus uses it to cover mesh-like shapes without the
/// dense table cap. "grid<rows>x<cols>".
GraphSpec gridGraph(int rows, int cols);

// ---------------------------------------------------------------------------
// Text format — lets benches and tests load arbitrary graphs from file:
//
//   # comment (blank lines ignored)
//   graph <name>                    (optional; defaults to "file")
//   nodes <N>                       (required, before any edge)
//   edge <u> <v> [weight [latency]] (one per line; undirected; weight and
//                                    latency default 1.0 — see GraphSpec)
// ---------------------------------------------------------------------------

/// Parse the text format; throws CheckError with a line number on errors.
GraphSpec parseGraph(const std::string& text);

/// Read a graph file from disk; throws CheckError if unreadable.
GraphSpec loadGraphFile(const std::string& path);

/// Serialize a GraphSpec to the text format (parseGraph round-trips it).
std::string formatGraph(const GraphSpec& spec);

}  // namespace diva::net
