#include "net/topology_env.hpp"

#include <cstdlib>

#include "net/graph_topology.hpp"

namespace diva::net {

TopologySpec topologyByName(const std::string& name, int rows, int cols,
                            bool requireGrid) {
  DIVA_CHECK_MSG(rows >= 1 && cols >= 1,
                 "topologyByName: rows/cols must be positive (got " << rows << "x"
                                                                    << cols << ")");
  const int procs = rows * cols;
  if (name == "mesh2d") return TopologySpec::mesh2d(rows, cols);
  if (name == "torus2d") return TopologySpec::torus2d(rows, cols);
  DIVA_CHECK_MSG(!requireGrid, "this workload is grid-structured: the topology must be "
                               "mesh2d or torus2d (got '"
                                   << name << "')");
  if (name == "hypercube") {
    int d = 0;
    while ((1 << d) < procs) ++d;
    DIVA_CHECK_MSG((1 << d) == procs,
                   rows << "x" << cols << " is not a hypercube-compatible size");
    return TopologySpec::hypercube(d);
  }
  if (name == "ring") return TopologySpec::graph(ringGraph(procs));
  if (name == "star") return TopologySpec::graph(starGraph(procs));
  if (name == "random-regular")
    return TopologySpec::graph(randomRegularGraph(procs, 4, 1));
  if (name.rfind("graph:", 0) == 0)
    return TopologySpec::graph(loadGraphFile(name.substr(6)));
  DIVA_CHECK_MSG(false, "unknown topology name '" << name << "'");
  return {};
}

TopologySpec topologyFromEnv(int rows, int cols, bool requireGrid) {
  const char* env = std::getenv("DIVA_TOPOLOGY");
  const std::string name = (env && *env) ? env : "mesh2d";
  return topologyByName(name, rows, cols, requireGrid);
}

}  // namespace diva::net
