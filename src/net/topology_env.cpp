#include "net/topology_env.hpp"

#include <cstdlib>

#include "net/graph_topology.hpp"

namespace diva::net {

TopologySpec topologyByName(const std::string& name, int rows, int cols,
                            bool requireGrid) {
  DIVA_CHECK_MSG(rows >= 1 && cols >= 1,
                 "topologyByName: rows/cols must be positive (got " << rows << "x"
                                                                    << cols << ")");
  const int procs = rows * cols;
  if (name == "mesh2d") return TopologySpec::mesh2d(rows, cols);
  if (name == "torus2d") return TopologySpec::torus2d(rows, cols);
  DIVA_CHECK_MSG(!requireGrid, "this workload is grid-structured: the topology must be "
                               "mesh2d or torus2d (got '"
                                   << name << "')");
  if (name == "hypercube") {
    int d = 0;
    while ((1 << d) < procs) ++d;
    DIVA_CHECK_MSG((1 << d) == procs,
                   rows << "x" << cols << " is not a hypercube-compatible size");
    return TopologySpec::hypercube(d);
  }
  if (name == "ring") return TopologySpec::graph(ringGraph(procs));
  if (name == "star") return TopologySpec::graph(starGraph(procs));
  if (name == "random-regular")
    return TopologySpec::graph(randomRegularGraph(procs, 4, 1));
  if (name.rfind("graph:", 0) == 0)
    return TopologySpec::graph(loadGraphFile(name.substr(6)));
  // hier-* variants: the same graphs under hierarchical (landmark-ball)
  // routing — sparse state, bounded-stretch routes (docs/routing.md).
  if (name.rfind("hier-", 0) == 0) {
    TopologySpec s = topologyByName(name.substr(5), rows, cols, false);
    DIVA_CHECK_MSG(s.kind == TopologyKind::Graph,
                   "hierarchical routing needs a graph shape (got '" << name << "')");
    s.hierArity = 16;
    return s;
  }
  DIVA_CHECK_MSG(false, "unknown topology name '" << name << "'");
  return {};
}

TopologySpec topologyFromEnv(int rows, int cols, bool requireGrid,
                             const std::string& defaultName) {
  const char* env = std::getenv("DIVA_TOPOLOGY");
  const std::string name =
      (env && *env) ? env : (defaultName.empty() ? "mesh2d" : defaultName);
  return topologyByName(name, rows, cols, requireGrid);
}

}  // namespace diva::net
