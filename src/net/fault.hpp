#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace diva::net {

class Network;

// ---------------------------------------------------------------------------
// Scripted fault injection (docs/faults.md).
//
// A FaultPlan is a list of timestamped events applied to the Network
// through the ordinary event queue, so faults interleave with protocol
// traffic deterministically: same plan, same seed, same trace. Events
// carry offsets relative to a base instant chosen by the scheduler (the
// workload driver uses the enclosing phase's start time), which keeps a
// plan reusable across phases and runs.
// ---------------------------------------------------------------------------

/// One scripted fault.
struct FaultEvent {
  enum class Kind : std::uint8_t { LinkDown, LinkUp, NodeDown, NodeUp, Degrade };

  Kind kind = Kind::LinkDown;
  double offsetUs = 0.0;   ///< firing time relative to the plan's base instant
  NodeId a = 0;            ///< the node (node events) or first link endpoint
  NodeId b = 0;            ///< second link endpoint (ignored for node events)
  double weightMul = 1.0;  ///< Degrade: streaming-cost multiplier (1.0 = nominal)
  double latencyMul = 1.0; ///< Degrade: hop-latency multiplier (1.0 = nominal)

  bool operator==(const FaultEvent&) const = default;
};

/// A fault script: events applied at base + offsetUs. Events sharing an
/// instant apply in plan order (the event queue is FIFO within a time).
using FaultPlan = std::vector<FaultEvent>;

/// Scenario-format keyword for a fault kind ("link-down", "node-up", …).
const char* faultKindName(FaultEvent::Kind kind);

/// Apply one fault to the network immediately. Validates endpoints:
/// throws CheckError on out-of-range nodes, non-adjacent link endpoints
/// or non-positive degrade multipliers.
void applyFault(Network& net, const FaultEvent& ev);

/// Schedule every event of `plan` at `base + offsetUs` on the engine.
/// Offsets must be non-negative; application order within an instant is
/// plan order.
void scheduleFaultPlan(sim::Engine& engine, Network& net, const FaultPlan& plan,
                       sim::Time base);

}  // namespace diva::net
