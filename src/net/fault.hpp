#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace diva::net {

class Network;

// ---------------------------------------------------------------------------
// Scripted fault injection (docs/faults.md).
//
// A FaultPlan is a list of timestamped events applied to the Network
// through the ordinary event queue, so faults interleave with protocol
// traffic deterministically: same plan, same seed, same trace. Events
// carry offsets relative to a base instant chosen by the scheduler (the
// workload driver uses the enclosing phase's start time), which keeps a
// plan reusable across phases and runs.
// ---------------------------------------------------------------------------

/// One scripted fault or structural reconfiguration.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    LinkDown,
    LinkUp,
    NodeDown,
    NodeUp,
    Degrade,
    // Structural reconfiguration (scenario keyword `reconfig`, docs/faults.md):
    // permanent shape changes, distinct from the transient crash/recover pairs
    // above. Graph-backed topologies only.
    AddNode,     ///< new node joined by an edge to anchor `a` (weightMul /
                 ///< latencyMul double as the new edge's weight / latency)
    RemoveNode,  ///< retire node `a` permanently (id is never reused)
    AddLink,     ///< new edge a—b (weightMul / latencyMul as weight / latency)
    RemoveLink,  ///< remove edge a—b permanently
  };

  Kind kind = Kind::LinkDown;
  double offsetUs = 0.0;   ///< firing time relative to the plan's base instant
  NodeId a = 0;            ///< the node (node events) or first link endpoint
  NodeId b = 0;            ///< second link endpoint (ignored for node events)
  double weightMul = 1.0;  ///< Degrade: streaming-cost multiplier (1.0 = nominal);
                           ///< AddNode/AddLink: the new edge's weight
  double latencyMul = 1.0; ///< Degrade: hop-latency multiplier (1.0 = nominal);
                           ///< AddNode/AddLink: the new edge's latency
  int line = 0;            ///< scenario source line (0 = not from a scenario);
                           ///< carried for run-time validation messages only

  /// `line` is provenance, not semantics — two plans that apply the same
  /// changes compare equal regardless of where they were parsed from.
  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && offsetUs == o.offsetUs && a == o.a && b == o.b &&
           weightMul == o.weightMul && latencyMul == o.latencyMul;
  }
};

/// True for the permanent shape-changing kinds (`reconfig` directives).
inline bool isStructural(FaultEvent::Kind kind) {
  return kind >= FaultEvent::Kind::AddNode;
}

/// A fault script: events applied at base + offsetUs. Events sharing an
/// instant apply in plan order (the event queue is FIFO within a time).
using FaultPlan = std::vector<FaultEvent>;

/// Scenario-format keyword for a fault kind ("link-down", "node-up", …).
const char* faultKindName(FaultEvent::Kind kind);

/// Apply one fault to the network immediately. Validates endpoints:
/// throws CheckError on out-of-range nodes, non-adjacent link endpoints
/// or non-positive degrade multipliers.
void applyFault(Network& net, const FaultEvent& ev);

/// Schedule every event of `plan` at `base + offsetUs` on the engine.
/// Offsets must be non-negative; application order within an instant is
/// plan order.
void scheduleFaultPlan(sim::Engine& engine, Network& net, const FaultPlan& plan,
                       sim::Time base);

}  // namespace diva::net
