#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mesh/link_stats.hpp"
#include "net/cost_model.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/frame_pool.hpp"
#include "support/object_pool.hpp"
#include "support/ring_buffer.hpp"
#include "support/small_vec.hpp"

namespace diva::net {

/// The message-passing machine: single-CPU nodes joined by the directed
/// links of a pluggable `Topology`, simulated at message granularity.
///
/// Time model (three cost terms, matching the paper's observations):
///  1. *Startups*: each send charges `sendOverheadUs` on the sender's CPU,
///     each accepted message charges `recvOverheadUs` on the receiver's.
///     Every node has one CPU; application compute, send startups and
///     message handling serialize on it (`cpuFreeAt_`).
///  2. *Bandwidth & contention*: a message occupies every directed link of
///     its deterministic shortest path for wireBytes/bandwidth µs (scaled
///     by the topology's per-link weight, 1.0 on homogeneous machines);
///     links are FIFO resources, so contended links queue messages —
///     this is where congestion turns into time.
///  3. *Per-hop latency*: the cut-through router forwards the head after
///     `hopLatencyUs`, letting the payload pipeline across hops (the GCel
///     uses wormhole routing; we model virtual cut-through, i.e. infinite
///     router buffers instead of backpressure).
///
/// Delivery: protocol channels dispatch to registered handlers (event
/// driven); application channels feed per-node mailboxes awaited by node
/// coroutines. Congestion statistics are recorded per link crossing and
/// are completely independent of the time model.
///
/// Hot-path storage: in-flight state (`Flight`, boxed local `Message`s)
/// comes from recycling slab pools owned by the Network, routes are
/// computed by the topology straight into per-flight inline buffers,
/// handler / mailbox dispatch indexes dense per-(channel, node) vectors,
/// and `recv` coroutine frames recycle through a frame pool — so in
/// steady state moving a message end to end allocates nothing.
class Network {
 public:
  using Handler = std::function<void(Message&&)>;

  Network(sim::Engine& engine, const Topology& topology, CostModel cost,
          mesh::LinkStats& stats);

  sim::Engine& engine() { return *engine_; }
  const Topology& topology() const { return *topo_; }
  int numNodes() const { return static_cast<int>(numNodes_); }
  const CostModel& cost() const { return cost_; }
  mesh::LinkStats& stats() { return *stats_; }

  /// Register the protocol handler for (node, channel). Handlers run as
  /// events on the node's CPU after the receive overhead has been charged.
  void setHandler(NodeId node, Channel channel, Handler handler);

  /// Fire-and-forget send from a protocol handler or setup code: charges
  /// the startup on the source CPU and injects the message. Local
  /// messages (src == dst) skip the network and the startup overheads —
  /// they model a plain function call on the host.
  ///
  /// Note: rvalue-reference parameters (rather than by-value) keep
  /// non-trivial temporaries out of coroutine frames, sidestepping a
  /// GCC 12 double-destruction bug with by-value arguments in co_await
  /// full-expressions.
  void post(Message&& msg) { postInternal(std::move(msg)); }

  /// Awaitable send for application coroutines: the caller's coroutine
  /// resumes once the sender CPU has finished the startup (the message
  /// itself continues through the network asynchronously).
  auto send(Message&& msg) {
    const sim::Time resumeAt = postInternal(std::move(msg));
    return engine_->delayUntil(resumeAt);
  }

  /// Receive the next message queued on (node, channel); suspends until
  /// one arrives, then charges the receive overhead on the node's CPU.
  sim::Task<Message> recv(NodeId node, Channel channel);

  /// Charge `dur` µs of local computation on a node's CPU (awaitable).
  auto compute(NodeId node, double dur) {
    return engine_->delayUntil(reserveCpu(node, dur));
  }

  /// Non-blocking CPU charge, for event-driven protocol code.
  sim::Time reserveCpu(NodeId node, double dur) {
    sim::Time& free = cpuFreeAt_[node];
    const sim::Time start = std::max(free, engine_->now());
    free = start + dur;
    return free;
  }

  sim::Time cpuFreeAt(NodeId node) const { return cpuFreeAt_[node]; }

  /// Total messages injected (diagnostics).
  std::uint64_t messagesSent() const { return messagesSent_; }

  // --- liveness & faults (cold path; see docs/faults.md) -------------------
  //
  // Fault model: a crashed node loses its *application* state — the
  // strategies scrub its caches and directories via liveness listeners —
  // but its router and protocol agent keep running (the GCel's wormhole
  // routers are separate from the T805 CPUs), so in-flight protocol
  // exchanges always complete and only *link* state affects routing. A
  // flight that reaches a dead link detours over live links (deterministic
  // BFS, neighbor slots in direction order); with no live path it parks
  // and retries when a link heals — never silently dropped. Everything
  // here is branch-guarded: fault-free runs schedule zero extra events and
  // stay bit-identical.

  bool nodeUp(NodeId n) const { return nodeAlive_[static_cast<std::size_t>(n)] != 0; }
  /// Liveness of the directed link u→v; false when not adjacent.
  bool linkBetweenUp(NodeId u, NodeId v) const;
  int numLiveNodes() const { return liveNodes_; }

  /// Crash (`up == false`) or recover a node, notifying liveness
  /// listeners. Idempotent: re-declaring the current state is a no-op.
  void setNodeUp(NodeId n, bool up);

  /// Fail or heal the undirected link between adjacent nodes u and v —
  /// both directed slots change together. Healing retries parked flights.
  void setLinkUp(NodeId u, NodeId v, bool up);

  /// Scale the link's streaming cost and hop latency (both directions) by
  /// multipliers relative to the *topology's nominal* values, so repeated
  /// degrades never compound and 1.0/1.0 restores the healthy link.
  void degradeLink(NodeId u, NodeId v, double weightMul, double latencyMul);

  /// Liveness listeners observe node crash/recover transitions, invoked
  /// as (node, up) from inside setNodeUp. Returns a removal token.
  using LivenessListener = std::function<void(NodeId, bool)>;
  int addLivenessListener(LivenessListener fn);
  void removeLivenessListener(int token);

  std::uint64_t reroutedFlights() const { return reroutedFlights_; }  ///< detours taken
  std::uint64_t parkedFlights() const { return parkedFlights_; }      ///< park events
  std::size_t flightsInLimbo() const { return limbo_.size(); }        ///< parked now

  // --- structural reconfiguration (cold path; docs/faults.md) --------------
  //
  // Permanent shape changes on graph-backed machines, distinct from the
  // transient crash/recover pairs above. Node ids are append-only: a new
  // node gets the next id, a removed node's id is *retired*, never reused.
  // Membership (who is part of the machine) changes immediately and the
  // coalesced reconfiguration epoch fires at the end of the current
  // instant; the *physical* severing of a retired node's links is deferred
  // to commitReconfig(), called at a quiescent point, so every in-flight
  // message still reaches its destination — nothing is ever dropped.
  // In-flight messages crossing an epoch re-route on the new shape via a
  // per-flight epoch guard (one predictable branch on the hot path;
  // reconfiguration-free runs stay bit-identical).

  /// Nodes currently part of the machine (alive or crashed, not retired).
  int numMembers() const { return static_cast<int>(members_.size()); }
  bool nodeMember(NodeId n) const {
    return static_cast<std::size_t>(n) < nodeMember_.size() &&
           nodeMember_[static_cast<std::size_t>(n)] != 0;
  }
  /// Member with rank `r` in ascending id order (0 ≤ r < numMembers()).
  NodeId memberAt(int r) const { return members_[static_cast<std::size_t>(r)]; }
  const std::vector<NodeId>& members() const { return members_; }
  /// Reconfiguration epochs delivered so far (0 = never reconfigured).
  int reconfigEpoch() const { return reconfigEpoch_; }

  /// Grow the machine by one node, joined to member `anchor` by a fresh
  /// edge of the given weight/latency. The new node's id is returned.
  /// `line` (> 0) tags validation errors with a scenario source line.
  NodeId addNode(NodeId anchor, double weight = 1.0, double latency = 1.0, int line = 0);
  /// Retire member `n` permanently. Rejects removals that would empty or
  /// disconnect the member set. Its links carry in-flight traffic until
  /// commitReconfig().
  void removeNode(NodeId n, int line = 0);
  /// Add an edge between distinct, non-adjacent members.
  void addLink(NodeId u, NodeId v, double weight = 1.0, double latency = 1.0,
               int line = 0);
  /// Remove the edge between members u and v. Rejects cuts that would
  /// disconnect the member set.
  void removeLink(NodeId u, NodeId v, int line = 0);

  /// Physically sever retired nodes' links. Call only at quiescent points
  /// (no in-flight traffic addressed to retired nodes); the workload
  /// driver calls it at phase boundaries via Runtime::completeReconfig().
  /// No-op when nothing is pending.
  void commitReconfig();

  /// The shape strategies should decompose after an epoch: excludes
  /// retired nodes even while their links are still installed for
  /// in-flight traffic. Identical to topology() outside a remove-node
  /// handoff window. Trees built from it stay valid until the *next*
  /// epoch (the Network keeps superseded topologies alive).
  const Topology& targetTopology() const {
    return targetTopo_ ? *targetTopo_ : *topo_;
  }

  /// Reconfiguration listeners run once per coalesced epoch (all
  /// structural events of one instant = one epoch), after the new shape
  /// is installed and routable. Returns a removal token.
  using ReconfigListener = std::function<void()>;
  int addReconfigListener(ReconfigListener fn);
  void removeReconfigListener(int token);

  /// Attach a protocol tracer (nullptr detaches) — see obs/tracer.hpp.
  /// Like the delivery probe, a pure observer that never perturbs the
  /// run: unset (the default) nothing is paid anywhere; set, the *cold*
  /// fault/detour/reconfig paths record instants and epoch spans, and
  /// strategies read it back through tracer() for their own protocol
  /// spans. Per-hop traffic is never traced — link time series come from
  /// the obs::Sampler instead.
  void setTracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Diagnostic tap on message delivery, invoked as (time, dst, channel)
  /// immediately before every handler dispatch / mailbox append. Used by
  /// the determinism regression test to hash the delivery trace; costs
  /// one predictable null check per delivery when unset.
  using DeliveryProbe = std::function<void(sim::Time, NodeId, Channel)>;
  void setDeliveryProbe(DeliveryProbe probe) { deliveryProbe_ = std::move(probe); }

  /// Frame recycling for the `recv` coroutines (see sim/task.hpp).
  support::FramePool& coroFramePool() { return framePool_; }

 private:
  /// In-flight message state, pooled and recycled. Field order is the hot
  /// path's: a hop event reads headReady/idx/wire and one route entry, so
  /// they share the flight's first cache line (with the route's inline
  /// header and first hops right behind); the message — only needed again
  /// at delivery — sits last, its wire size cached in `wire` so the hops
  /// never touch it.
  struct Flight {
    sim::Time headReady = 0;   ///< when the head is ready to enter path[idx]
    std::size_t idx = 0;
    std::uint64_t wire = 0;    ///< payloadBytes + headerBytes, cached at inject
    std::uint32_t epoch = 0;   ///< topoEpoch_ the route was computed against
    RouteVec path;
    Message msg;
  };

  struct Mailbox {
    support::RingBuffer<Message> queue;
    support::RingBuffer<std::coroutine_handle<>> waiters;
  };

  sim::Time postInternal(Message&& msg);
  void hop(Flight* f);
  void dispatchOrEnqueue(Message&& msg);
  /// Directed link slot from → to, or -1 when not adjacent (dir scan —
  /// cold path only).
  int linkSlotToward(NodeId from, NodeId to) const;
  /// Node a flight's head currently sits at (src before the first hop).
  NodeId flightAt(const Flight* f) const {
    return f->idx == 0 ? f->msg.src : f->path[f->idx - 1].to;
  }
  void rerouteOrPark(Flight* f);
  void retryParked();
  /// Static (not a member) so the Network is the coroutine's first
  /// parameter: that is what routes the frame into `coroFramePool()`.
  static sim::Task<Message> recvOn(Network& net, NodeId node, Channel channel);

  // Structural reconfiguration internals (network.cpp has the epoch walk).
  void ensureElastic(int line);
  bool membersConnectedWithout(NodeId dropNode, NodeId dropU, NodeId dropV) const;
  void scheduleReconfigNotify();
  void deliverReconfig();
  /// Swap in a rebuilt topology: carries per-link FIFO backlog, liveness
  /// and degrade state across by (from, to) endpoint pair, remaps the
  /// congestion counters, grows the per-node tables and re-strides the
  /// dispatch tables on node growth, then bumps topoEpoch_ and retries
  /// parked flights. Only from outside a handler.
  void installTopology(std::unique_ptr<Topology> built);

  /// Dense dispatch slot for (node, channel). Channel-major layout —
  /// `channel * numNodes + node` — so discovering a new channel appends a
  /// block of slots without disturbing existing indices (important:
  /// suspended `recv` coroutines hold slot indices across awaits).
  std::size_t slotOf(NodeId node, Channel channel) const {
    return static_cast<std::size_t>(channel) * numNodes_ + static_cast<std::size_t>(node);
  }
  std::size_t mailboxSlot(NodeId node, Channel channel);

  sim::Engine* engine_;
  const Topology* topo_;
  CostModel cost_;
  mesh::LinkStats* stats_;
  std::size_t numNodes_;
  std::vector<sim::Time> cpuFreeAt_;
  std::vector<sim::Time> linkFreeAt_;
  /// Per-link µs-per-byte = topology linkWeight / CostModel bandwidth,
  /// cached at construction so heterogeneous links cost one load and one
  /// multiply per hop (no virtual call on the hot path).
  std::vector<double> linkUsPerByte_;
  /// Per-link hop latency = topology linkLatency × CostModel hopLatencyUs,
  /// cached for the same reason (exactly hopLatencyUs on homogeneous
  /// machines, so existing models are numerically unchanged).
  std::vector<double> linkHopLatencyUs_;
  std::vector<Handler> handlers_;   ///< channel-major, empty = unregistered
  std::vector<Mailbox> mailboxes_;  ///< channel-major
  Channel handlerChannels_ = 0;     ///< channels covered by handlers_
  Channel mailboxChannels_ = 0;     ///< channels covered by mailboxes_
  int dispatchDepth_ = 0;           ///< handlers currently executing
  support::ObjectPool<Flight> flightPool_;
  support::ObjectPool<Message> messagePool_;
  support::FramePool framePool_;
  std::uint64_t messagesSent_ = 0;
  DeliveryProbe deliveryProbe_;  ///< empty unless a trace consumer taps in
  obs::Tracer* tracer_ = nullptr;
  std::vector<std::int64_t> openEpochSpans_;  ///< epoch ids between deliver & commit

  // Fault state. linkAlive_/nodeAlive_ are all-ones on a healthy machine;
  // the hot path reads linkAlive_ once per hop, everything else below is
  // touched only by fault events.
  std::vector<std::uint8_t> linkAlive_;
  std::vector<std::uint8_t> nodeAlive_;
  int liveNodes_ = 0;
  std::vector<Flight*> limbo_;  ///< parked flights awaiting a live path
  std::vector<LivenessListener> livenessListeners_;  ///< token-indexed; removed = empty
  std::uint64_t reroutedFlights_ = 0;
  std::uint64_t parkedFlights_ = 0;
  // BFS scratch for detours, kept allocated across reroutes.
  std::vector<NodeId> bfsPrevNode_;
  std::vector<int> bfsPrevLink_;
  std::vector<NodeId> bfsQueue_;

  // Structural reconfiguration state. All of it idle (and the epoch
  // counters zero) on machines that never reconfigure.
  std::uint32_t topoEpoch_ = 0;    ///< bumped per installTopology; guards flights
  int reconfigEpoch_ = 0;          ///< delivered epochs (listener batches)
  bool elastic_ = false;           ///< currentSpec_ captured from the topology
  bool notifyScheduled_ = false;   ///< coalesced epoch event pending this instant
  GraphSpec currentSpec_;          ///< the logical target graph (members only)
  std::vector<GraphSpec::Edge> retainedEdges_;  ///< retiring nodes' edges, kept
                                                ///< installed until commit
  std::vector<NodeId> retiring_;   ///< removed, links not yet severed
  std::vector<std::uint8_t> nodeMember_;  ///< 1 = member, 0 = retired
  std::vector<NodeId> members_;           ///< member ids, ascending
  std::vector<ReconfigListener> reconfigListeners_;  ///< token-indexed
  std::vector<std::unique_ptr<Topology>> ownedTopos_;  ///< rebuilt shapes, kept
                                                       ///< alive for old trees
  std::unique_ptr<Topology> targetTopo_;  ///< see targetTopology()
};

}  // namespace diva::net
