#pragma once

#include <any>
#include <cstdint>
#include <utility>

#include "net/topology.hpp"

namespace diva::net {

/// Mailbox/handler channel. Low values are reserved by the library;
/// applications may use any value ≥ kFirstAppChannel.
using Channel = std::uint32_t;
inline constexpr Channel kProtocolChannel = 0;  ///< DIVA data-management traffic
inline constexpr Channel kSyncChannel = 1;      ///< barrier synchronization
inline constexpr Channel kLockChannel = 2;      ///< distributed locks
inline constexpr Channel kFirstAppChannel = 16;

/// A simulated network message. `body` carries the model-level payload
/// (shared, zero-copy); `payloadBytes` is the *simulated* wire size that
/// drives bandwidth and congestion accounting — the two are deliberately
/// decoupled so a 16 KB matrix block costs 16 KB on the wire while being
/// a shared_ptr in host memory.
struct Message {
  NodeId src = -1;
  NodeId dst = -1;
  Channel channel = kProtocolChannel;
  std::uint64_t payloadBytes = 0;
  std::any body;

  template <typename T>
  const T& as() const {
    const T* p = std::any_cast<T>(&body);
    DIVA_CHECK_MSG(p != nullptr, "message body type mismatch");
    return *p;
  }

  template <typename T>
  T take() {
    T* p = std::any_cast<T>(&body);
    DIVA_CHECK_MSG(p != nullptr, "message body type mismatch");
    return std::move(*p);
  }
};

}  // namespace diva::net
