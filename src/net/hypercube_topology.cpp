#include "net/hypercube_topology.hpp"

#include <bit>

#include "support/rng.hpp"

namespace diva::net {

namespace {
bool validArity(int a) { return a == 2 || a == 4 || a == 16; }
int levelsOf(int arity) { return arity == 2 ? 1 : arity == 4 ? 2 : 4; }
}  // namespace

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

HypercubeTopology::HypercubeTopology(int dims) : dims_(dims) {
  DIVA_CHECK_MSG(dims >= 0 && dims <= 20, "hypercube dimension out of range");
}

int HypercubeTopology::distance(NodeId a, NodeId b) const {
  return std::popcount(static_cast<std::uint32_t>(a ^ b));
}

NodeId HypercubeTopology::nextHop(NodeId from, NodeId to) const {
  if (from == to) return from;
  const int bit = std::countr_zero(static_cast<std::uint32_t>(from ^ to));
  return from ^ (NodeId{1} << bit);
}

void HypercubeTopology::appendRoute(NodeId from, NodeId to, RouteVec& out) const {
  // Pure-arithmetic e-cube walk: flip differing bits lowest-first. At most
  // `dims_` hops, so routes stay within the inline buffer up to 2^16 nodes.
  NodeId cur = from;
  NodeId diff = from ^ to;
  while (diff != 0) {
    const int bit = std::countr_zero(static_cast<std::uint32_t>(diff));
    const NodeId next = cur ^ (NodeId{1} << bit);
    out.push_back(Hop{linkIndex(cur, bit), next});
    cur = next;
    diff &= diff - 1;
  }
}

// ---------------------------------------------------------------------------
// Cluster tree
// ---------------------------------------------------------------------------

HypercubeClusterTree::HypercubeClusterTree(int dims, DecompParams params)
    : dims_(dims) {
  DIVA_CHECK_MSG(validArity(params.arity), "arity must be 2, 4 or 16");
  DIVA_CHECK_MSG(params.leafSize >= 1, "leafSize must be >= 1");
  nodes_.reserve(static_cast<std::size_t>(2) << dims);
  build(Cube{0, dims}, -1, -1, 0, params);
  finalize(1 << dims);
}

// Children of an ℓ-ary node: fix `levels` further dimensions (highest
// first) and collect the fringe; subcubes that run out of free dimensions
// stop splitting early, so a node can have fewer than ℓ children near the
// bottom — just like the mesh decomposition.
void HypercubeClusterTree::expandChildren(const Cube& cube, int levels,
                                          std::vector<Cube>& out) {
  if (levels == 0 || cube.freeDims == 0) {
    out.push_back(cube);
    return;
  }
  const int half = cube.freeDims - 1;
  expandChildren(Cube{cube.base, half}, levels - 1, out);
  expandChildren(Cube{static_cast<NodeId>(cube.base + (NodeId{1} << half)), half},
                 levels - 1, out);
}

int HypercubeClusterTree::build(const Cube& cube, int parent, int indexInParent,
                                int depth, const DecompParams& params) {
  const int self = static_cast<int>(nodes_.size());
  const int size = 1 << cube.freeDims;
  nodes_.push_back(Node{parent, indexInParent, {}, depth, size});
  cubes_.push_back(cube);
  leafProc_.push_back(size == 1 ? cube.base : -1);

  if (size == 1) return self;

  std::vector<Cube> childCubes;
  if (size <= params.leafSize) {
    // ℓ-k-ary termination: one child per processor, in id order.
    childCubes.reserve(static_cast<std::size_t>(size));
    for (NodeId p = cube.base; p < cube.base + size; ++p)
      childCubes.push_back(Cube{p, 0});
  } else {
    expandChildren(cube, levelsOf(params.arity), childCubes);
  }

  int idx = 0;
  for (const Cube& cb : childCubes) {
    const int child = build(cb, self, idx++, depth + 1, params);
    nodes_[self].children.push_back(child);
  }
  return self;
}

NodeId HypercubeClusterTree::hostOf(int treeNode, std::uint64_t varKey,
                                    EmbeddingKind kind, std::uint64_t seed) const {
  const Cube& c = cubes_[treeNode];
  const NodeId count = NodeId{1} << c.freeDims;
  if (count == 1) return c.base;

  if (kind == EmbeddingKind::Random) {
    const std::uint64_t key =
        support::hashCombine(seed, varKey, static_cast<std::uint64_t>(treeNode));
    return c.base +
           static_cast<NodeId>(support::hashBelow(key, static_cast<std::uint64_t>(count)));
  }

  // Regular embedding: the root is uniform; every other node keeps its
  // parent's relative position within the subcube (the free low bits of
  // the parent's host), the hypercube analogue of the paper's
  // (i mod m1, j mod m2) rule.
  const Node& nd = nodes_[treeNode];
  if (nd.parent < 0) {
    const std::uint64_t key = support::hashCombine(seed, varKey);
    return c.base +
           static_cast<NodeId>(support::hashBelow(key, static_cast<std::uint64_t>(count)));
  }
  const NodeId parentHost = hostOf(nd.parent, varKey, kind, seed);
  return c.base + ((parentHost - cubes_[nd.parent].base) & (count - 1));
}

}  // namespace diva::net
