#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/small_vec.hpp"

namespace diva::net {

/// Processor identifier: dense index 0..P-1. The numbering convention is
/// topology-specific (row-major for grids, binary for hypercubes).
using NodeId = std::int32_t;

/// One hop of a route: the directed link taken and the node it leads to.
struct Hop {
  int link;
  NodeId to;

  bool operator==(const Hop&) const = default;
};

/// Inline route buffer used on the per-message hot path: routes are
/// computed in place, and 16 inline hops cover every shortest path on the
/// machine sizes the paper studies (spills reuse their capacity).
using RouteVec = support::SmallVec<Hop, 16>;

/// How access-tree nodes are mapped to host processors (paper §2).
enum class EmbeddingKind {
  /// Theoretical embedding from the competitive analysis: every tree node
  /// is mapped independently and uniformly at random to one of the
  /// processors of its cluster.
  Random,
  /// Practical embedding from the paper: the root is mapped uniformly at
  /// random, every other node preserves its parent's relative position
  /// within the child cluster. This shortens expected tree-edge routes.
  Regular,
};

/// Parameters of the hierarchical decomposition (paper §2): ℓ-ary trees
/// for ℓ ∈ {2, 4, 16}, optionally terminated at clusters of ≤ `leafSize`
/// processors, which then get one child per processor (ℓ-k-ary variants).
struct DecompParams {
  int arity = 4;
  int leafSize = 1;
};

/// The network shapes a Machine can simulate.
enum class TopologyKind { Mesh2D, Torus2D, Hypercube, Graph };

const char* topologyKindName(TopologyKind kind);

/// An arbitrary network as an undirected weighted graph: the value-type
/// input of `GraphTopology` (src/net/graph_topology.hpp). Nodes are the
/// dense ids 0..numNodes-1; every edge becomes a pair of directed links.
/// A weight is the *relative cost* of streaming a byte across the edge
/// (1.0 = the CostModel's nominal link; 0.5 = a link twice as fast), so
/// heterogeneous bandwidths plug into the one-parameter cost model
/// without changing it. The latency term is the analogous relative
/// per-hop router latency (1.0 = the CostModel's nominal hopLatencyUs;
/// 3.0 = a link whose head takes three times as long to forward — a long
/// wide-area hop). Routing minimizes the bandwidth-weighted path length;
/// latency shapes the time axis only, never route choice or congestion.
///
/// Generators (ring/star/fat-tree/random-regular) and the text file
/// format live in graph_topology.hpp.
struct GraphSpec {
  struct Edge {
    NodeId u = 0;
    NodeId v = 0;
    double weight = 1.0;   ///< relative per-byte streaming cost
    double latency = 1.0;  ///< relative per-hop head-forwarding latency
    bool operator==(const Edge&) const = default;
  };

  std::string name;  ///< used by TopologySpec::describe()
  int numNodes = 0;
  std::vector<Edge> edges;
  /// Permit degree-0 nodes. Normal graphs must be connected (the routing
  /// build proves it and fails fast otherwise); an *elastic* machine that
  /// removed nodes mid-run keeps their ids as retired, edgeless entries —
  /// this flag exempts exactly those from the connectivity proof. Set
  /// only by the Network's reconfiguration path (docs/faults.md).
  bool allowIsolated = false;

  bool operator==(const GraphSpec&) const = default;
};

/// Value-type description of a topology, used to construct machines and
/// to validate that a RuntimeConfig matches the machine it runs on.
/// `a`/`b` are rows/cols for the 2-D grids; `a` is the dimension count
/// for hypercubes (b unused). a == 0 means "unspecified". General graphs
/// carry their structure in `graphSpec` (shared, never mutated).
struct TopologySpec {
  TopologyKind kind = TopologyKind::Mesh2D;
  int a = 0;
  int b = 0;
  std::shared_ptr<const GraphSpec> graphSpec;  ///< set iff kind == Graph
  /// 0 = dense all-pairs routing (the default; bit-identical to every
  /// pre-hierarchical run). > 0 = hierarchical landmark-ball routing
  /// (net/hier_routing.hpp) with a routing tree of this arity — the same
  /// graph, sparse routing state, non-shortest (bounded-stretch) routes.
  /// Only meaningful with kind == Graph.
  int hierArity = 0;

  static TopologySpec mesh2d(int rows, int cols) {
    return TopologySpec{TopologyKind::Mesh2D, rows, cols, nullptr};
  }
  static TopologySpec torus2d(int rows, int cols) {
    return TopologySpec{TopologyKind::Torus2D, rows, cols, nullptr};
  }
  static TopologySpec hypercube(int dims) {
    return TopologySpec{TopologyKind::Hypercube, dims, 0, nullptr};
  }
  static TopologySpec graph(GraphSpec g) {
    TopologySpec s;
    s.kind = TopologyKind::Graph;
    s.a = g.numNodes;
    s.graphSpec = std::make_shared<const GraphSpec>(std::move(g));
    return s;
  }
  static TopologySpec graph(std::shared_ptr<const GraphSpec> g) {
    TopologySpec s;
    s.kind = TopologyKind::Graph;
    s.a = g ? g->numNodes : 0;
    s.graphSpec = std::move(g);
    return s;
  }
  static TopologySpec hierGraph(GraphSpec g, int arity = 16) {
    TopologySpec s = graph(std::move(g));
    s.hierArity = arity;
    return s;
  }
  static TopologySpec hierGraph(std::shared_ptr<const GraphSpec> g, int arity = 16) {
    TopologySpec s = graph(std::move(g));
    s.hierArity = arity;
    return s;
  }

  /// A default-constructed spec (mesh2d with no dimensions) means
  /// "unspecified — match any machine"; every constructible spec,
  /// including the 1-node hypercube(0), counts as specified.
  bool specified() const { return kind != TopologyKind::Mesh2D || a > 0; }
  /// Structural equality: graph specs compare by contents, not identity,
  /// so a RuntimeConfig pinned to a regenerated-but-identical graph still
  /// matches its machine. Dense and hierarchical builds of the same graph
  /// are different machines (routes differ), so hierArity participates.
  bool operator==(const TopologySpec& o) const {
    if (kind != o.kind || a != o.a || b != o.b || hierArity != o.hierArity) return false;
    if (graphSpec == o.graphSpec) return true;
    return graphSpec && o.graphSpec && *graphSpec == *o.graphSpec;
  }
  std::string describe() const;
};

/// Topology-agnostic hierarchical cluster tree — the generalization of the
/// paper's mesh-decomposition tree that the access-tree strategy, barrier
/// and tree locks consume. Leaves correspond 1:1 to processors;
/// `leafOrder()` enumerates them in the tree's left-to-right order (the
/// numbering applications use to assign logical processor identities).
///
/// Concrete trees are produced by `Topology::decompose()` and keep the
/// geometry needed to embed tree nodes onto processors; a tree must not
/// outlive the topology that created it.
class ClusterTree {
 public:
  struct Node {
    int parent = -1;            ///< -1 at the root
    int indexInParent = -1;     ///< which child of the parent this node is
    std::vector<int> children;  ///< empty at leaves
    int depth = 0;
    int size = 0;               ///< processors in this cluster
    bool isLeaf() const { return children.empty(); }
  };

  virtual ~ClusterTree() = default;

  int root() const { return 0; }
  int numNodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const { return nodes_[i]; }
  int parent(int i) const { return nodes_[i].parent; }
  int depthOf(int i) const { return nodes_[i].depth; }
  int maxDepth() const { return maxDepth_; }
  int numProcs() const { return static_cast<int>(leafOfProc_.size()); }

  /// Tree leaf whose cluster is exactly {processor p}, or -1 when the
  /// tree does not cover p (a retired processor of an elastic machine, or
  /// a processor added after this tree was built).
  int leafOf(NodeId p) const {
    return p >= 0 && p < numProcs() ? leafOfProc_[p] : -1;
  }

  /// Processors actually covered by leaves (== numProcs() except on trees
  /// built over a reconfigured machine with retired processors).
  int numLeaves() const { return static_cast<int>(leafOrder_.size()); }

  /// The single processor of a leaf node.
  NodeId procOfLeaf(int leaf) const {
    DIVA_CHECK(leafProc_[leaf] >= 0);
    return leafProc_[leaf];
  }

  /// Leaves in left-to-right tree order (size = number of processors).
  const std::vector<int>& leafOrder() const { return leafOrder_; }

  /// Logical rank of processor p in leaf order (inverse of leafOrder).
  int rankOf(NodeId p) const { return rankOfProc_[p]; }

  /// Processor with logical rank w in leaf order.
  NodeId procOfRank(int w) const { return procOfLeaf(leafOrder_[w]); }

  /// Child of `treeNode` whose subtree contains processor p, or -1 when
  /// p lies outside `treeNode`'s cluster. Generic replacement for the
  /// "which quadrant contains this coordinate" query.
  int childToward(int treeNode, NodeId p) const;

  /// Host processor of tree node `treeNode` in the access tree of the
  /// variable identified by `varKey`. Pure function of its arguments, so
  /// no per-variable state exists — essential when applications create
  /// hundreds of thousands of variables.
  virtual NodeId hostOf(int treeNode, std::uint64_t varKey, EmbeddingKind kind,
                        std::uint64_t seed) const = 0;

 protected:
  /// Builders append `nodes_`/`leafProc_` and then call finalize(), which
  /// derives the per-processor leaf/rank tables and checks that leaves
  /// partition the processor set.
  void finalize(int numProcs);

  std::vector<Node> nodes_;
  std::vector<NodeId> leafProc_;  ///< per tree node: its processor, -1 unless leaf
  std::vector<int> leafOfProc_;
  std::vector<int> rankOfProc_;
  std::vector<int> leafOrder_;
  int maxDepth_ = 0;
};

/// A network shape: the load-bearing abstraction between the simulated
/// machine and everything above it. A Topology defines the node set, the
/// directed-link slot numbering used by the cost model and congestion
/// accounting, deterministic oblivious routing, and the hierarchical
/// decomposition the data-management strategies build their trees from.
///
/// Routing contract: `appendRoute` emits a unique deterministic valid
/// path from `from` to `to` (empty when equal); the hop count always
/// equals `distance(from, to)`, and `nextHop` returns the first node of
/// that path. The closed-form shapes and dense GraphTopology route
/// shortest paths; HierGraphTopology trades shortest for sparse routing
/// state and guarantees only a bounded stretch (docs/routing.md).
/// Implementations must keep `appendRoute` allocation-free apart from
/// the output buffer — it runs once per simulated message.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual TopologyKind kind() const = 0;
  virtual TopologySpec spec() const = 0;
  std::string name() const { return spec().describe(); }

  virtual int numNodes() const = 0;

  /// Directed-link slots per node. Slots for links that do not exist at a
  /// boundary are allocated but never used: link lookup stays a single
  /// multiply-add.
  virtual int degree() const = 0;
  int numLinkSlots() const { return numNodes() * degree(); }
  int linkIndex(NodeId from, int dir) const { return from * degree() + dir; }

  /// Neighbor of `n` along direction slot `dir`, or -1 when absent.
  virtual NodeId neighbor(NodeId n, int dir) const = 0;

  /// First node after `from` on the route to `to` (`from` when equal).
  virtual NodeId nextHop(NodeId from, NodeId to) const = 0;

  /// Length of the route from `a` to `b` in hops.
  virtual int distance(NodeId a, NodeId b) const = 0;

  /// Append the deterministic shortest route onto `out` (see contract
  /// above). Hot path: must not allocate beyond `out` itself.
  virtual void appendRoute(NodeId from, NodeId to, RouteVec& out) const = 0;

  /// Relative streaming cost of directed link slot `link`: a message
  /// occupies the link for weight × wireBytes / CostModel::bytesPerUs.
  /// 1.0 everywhere for the homogeneous machines; general graphs report
  /// their per-edge weights here. Queried once per link at Network
  /// construction (cached into a dense table), never on the hot path.
  virtual double linkWeight(int link) const {
    (void)link;
    return 1.0;
  }

  /// Relative per-hop latency of directed link slot `link`: the router
  /// forwards a message head after latency × CostModel::hopLatencyUs.
  /// 1.0 on the homogeneous machines; general graphs report their
  /// per-edge latency terms here. Like `linkWeight`, queried once per
  /// link at Network construction and cached — never on the hot path.
  /// Latency never influences routing or congestion, only the time axis.
  virtual double linkLatency(int link) const {
    (void)link;
    return 1.0;
  }

  /// Build the hierarchical cluster tree for `params`. The returned tree
  /// references this topology and must not outlive it.
  virtual std::unique_ptr<ClusterTree> decompose(DecompParams params) const = 0;

  /// Structural reconfiguration support (docs/faults.md). Graph-backed
  /// topologies expose their current graph and can rebuild themselves
  /// over an edited copy of it; closed-form shapes return null — the
  /// Network rejects reconfiguration on them with a clear error.
  virtual const GraphSpec* graph() const { return nullptr; }
  /// A fresh topology of the same kind (same routing mode, partitioner,
  /// hier arity) over `g`. Null when unsupported.
  virtual std::unique_ptr<Topology> withGraph(GraphSpec g) const {
    (void)g;
    return nullptr;
  }
};

/// Construct a topology from its spec; throws CheckError on invalid
/// dimensions (non-positive grid sides, hypercube dims outside [0, 20]).
std::unique_ptr<Topology> makeTopology(const TopologySpec& spec);

/// The canonical 2-ary leaf order of a topology, used to assign logical
/// processor numbers consistently across all strategies (so that every
/// strategy runs the *same* workload and only data management differs).
std::vector<NodeId> canonicalLeafOrder(const Topology& topo);

/// Convenience: route as a fresh vector (analysis/tests, not hot path).
std::vector<Hop> routeOf(const Topology& topo, NodeId from, NodeId to);

}  // namespace diva::net
