#include "net/torus_topology.hpp"

namespace diva::net {

namespace {

/// Signed per-dimension step plan: how many hops, and in which of the two
/// ring directions. Forward = increasing coordinate (East/South).
struct RingPlan {
  int count;
  bool forward;
};

RingPlan planRing(int from, int to, int size) {
  int fwd = to - from;
  if (fwd < 0) fwd += size;
  // Shorter way around; a tie (fwd == size/2 on even rings) goes forward
  // so routes stay deterministic.
  if (fwd * 2 <= size) return RingPlan{fwd, true};
  return RingPlan{size - fwd, false};
}

}  // namespace

int TorusTopology::distance(NodeId a, NodeId b) const {
  const mesh::Coord ca = grid_.coordOf(a), cb = grid_.coordOf(b);
  return planRing(ca.col, cb.col, grid_.cols()).count +
         planRing(ca.row, cb.row, grid_.rows()).count;
}

void TorusTopology::appendRoute(NodeId from, NodeId to, RouteVec& out) const {
  // Arithmetic-only dimension-order walk (columns then rows), mirroring
  // the mesh hot path: no allocation beyond the caller's buffer.
  const int rows = grid_.rows(), cols = grid_.cols();
  const mesh::Coord src = grid_.coordOf(from), dst = grid_.coordOf(to);
  NodeId cur = from;

  const RingPlan colPlan = planRing(src.col, dst.col, cols);
  int col = src.col;
  for (int i = 0; i < colPlan.count; ++i) {
    const int nc = colPlan.forward ? (col + 1) % cols : (col + cols - 1) % cols;
    const NodeId next = cur + (nc - col);  // same row
    const auto d = colPlan.forward ? mesh::Mesh::East : mesh::Mesh::West;
    out.push_back(Hop{linkIndex(cur, d), next});
    cur = next;
    col = nc;
  }

  const RingPlan rowPlan = planRing(src.row, dst.row, rows);
  int row = src.row;
  for (int i = 0; i < rowPlan.count; ++i) {
    const int nr = rowPlan.forward ? (row + 1) % rows : (row + rows - 1) % rows;
    const NodeId next = cur + (nr - row) * cols;
    const auto d = rowPlan.forward ? mesh::Mesh::South : mesh::Mesh::North;
    out.push_back(Hop{linkIndex(cur, d), next});
    cur = next;
    row = nr;
  }
}

NodeId TorusTopology::nextHop(NodeId from, NodeId to) const {
  if (from == to) return from;
  const int rows = grid_.rows(), cols = grid_.cols();
  const mesh::Coord src = grid_.coordOf(from), dst = grid_.coordOf(to);
  if (src.col != dst.col) {
    const RingPlan p = planRing(src.col, dst.col, cols);
    const int nc = p.forward ? (src.col + 1) % cols : (src.col + cols - 1) % cols;
    return from + (nc - src.col);
  }
  const RingPlan p = planRing(src.row, dst.row, rows);
  const int nr = p.forward ? (src.row + 1) % rows : (src.row + rows - 1) % rows;
  return from + (nr - src.row) * cols;
}

}  // namespace diva::net
