#pragma once

#include <memory>

#include "mesh/decomposition.hpp"
#include "mesh/embedding.hpp"
#include "mesh/mesh.hpp"
#include "mesh/route.hpp"
#include "net/topology.hpp"

namespace diva::net {

/// Cluster tree of a 2-D grid: wraps the paper's mesh decomposition (the
/// recursive halving of the longer side) and its submesh-relative
/// embeddings, so strategies built on the generic API behave exactly like
/// the original mesh-specific code path.
class MeshClusterTree final : public ClusterTree {
 public:
  MeshClusterTree(const mesh::Mesh& grid, DecompParams params)
      : decomp_(grid, mesh::Decomposition::Params{params.arity, params.leafSize}) {
    const int n = decomp_.numNodes();
    nodes_.resize(static_cast<std::size_t>(n));
    leafProc_.assign(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      const mesh::Decomposition::Node& d = decomp_.node(i);
      nodes_[i] = Node{d.parent, d.indexInParent, d.children, d.depth, d.box.size()};
      if (d.isLeaf()) leafProc_[i] = decomp_.procOfLeaf(i);
    }
    finalize(grid.numNodes());
  }

  NodeId hostOf(int treeNode, std::uint64_t varKey, EmbeddingKind kind,
                std::uint64_t seed) const override {
    // Embedding is a stateless pure function of (decomposition, kind,
    // seed); constructing it per call is three pointer stores.
    return mesh::Embedding(decomp_, kind, seed).hostOf(treeNode, varKey);
  }

  const mesh::Decomposition& decomposition() const { return decomp_; }

 private:
  mesh::Decomposition decomp_;
};

/// The 2-D mesh of the Parsytec GCel — the paper's machine. Dimension-order
/// routing (columns then rows) with arithmetic-only route expansion; this
/// is the hot-path topology and must stay allocation-free.
class MeshTopology : public Topology {
 public:
  MeshTopology(int rows, int cols) : grid_(rows, cols) {}

  /// Grid-coordinate access for 2-D-structured applications (matmul's
  /// block layout, congestion heat maps).
  const mesh::Mesh& grid() const { return grid_; }

  TopologyKind kind() const override { return TopologyKind::Mesh2D; }
  TopologySpec spec() const override {
    return TopologySpec::mesh2d(grid_.rows(), grid_.cols());
  }
  int numNodes() const override { return grid_.numNodes(); }
  int degree() const override { return mesh::Mesh::kDirs; }

  NodeId neighbor(NodeId n, int dir) const override {
    if (dir < 0 || dir >= mesh::Mesh::kDirs) return -1;
    const auto d = static_cast<mesh::Mesh::Dir>(dir);
    return grid_.hasNeighbor(n, d) ? grid_.neighbor(n, d) : -1;
  }

  NodeId nextHop(NodeId from, NodeId to) const override {
    const mesh::Coord src = grid_.coordOf(from), dst = grid_.coordOf(to);
    if (src.col != dst.col) return src.col < dst.col ? from + 1 : from - 1;
    if (src.row != dst.row)
      return src.row < dst.row ? from + grid_.cols() : from - grid_.cols();
    return from;
  }

  int distance(NodeId a, NodeId b) const override { return grid_.distance(a, b); }

  void appendRoute(NodeId from, NodeId to, RouteVec& out) const override {
    mesh::appendDimensionOrderRoute(grid_, from, to, out);
  }

  std::unique_ptr<ClusterTree> decompose(DecompParams params) const override {
    return std::make_unique<MeshClusterTree>(grid_, params);
  }

 protected:
  mesh::Mesh grid_;
};

}  // namespace diva::net
