#include "net/graph_topology.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/rng.hpp"

namespace diva::net {

namespace {

bool validArity(int a) { return a == 2 || a == 4 || a == 16; }
int levelsOf(int arity) { return arity == 2 ? 1 : arity == 4 ? 2 : 4; }

}  // namespace

// ---------------------------------------------------------------------------
// GraphAdjacency — validation + packed direction slots
// ---------------------------------------------------------------------------

GraphAdjacency::GraphAdjacency(const GraphSpec& spec) {
  const int n = spec.numNodes;
  DIVA_CHECK_MSG(n >= 1 && n <= kMaxGraphNodes,
                 "graph '" << spec.name << "': node count must be in [1, "
                           << kMaxGraphNodes << "] (got " << n << ")");
  numNodes = n;
  struct Nbr {
    NodeId to;
    double weight;
    double latency;
    bool operator<(const Nbr& o) const { return to < o.to; }
  };
  std::vector<std::vector<Nbr>> nbrs(static_cast<std::size_t>(n));
  for (const GraphSpec::Edge& e : spec.edges) {
    DIVA_CHECK_MSG(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                   "graph '" << spec.name << "': edge " << e.u << "-" << e.v
                             << " out of range for " << n << " nodes");
    DIVA_CHECK_MSG(e.u != e.v,
                   "graph '" << spec.name << "': self-loop at node " << e.u);
    DIVA_CHECK_MSG(e.weight > 0.0, "graph '" << spec.name << "': edge " << e.u << "-"
                                             << e.v << " has non-positive weight "
                                             << e.weight);
    DIVA_CHECK_MSG(e.latency > 0.0, "graph '" << spec.name << "': edge " << e.u << "-"
                                              << e.v << " has non-positive latency "
                                              << e.latency);
    nbrs[e.u].push_back(Nbr{e.v, e.weight, e.latency});
    nbrs[e.v].push_back(Nbr{e.u, e.weight, e.latency});
  }

  degree = 0;
  for (int u = 0; u < n; ++u) {
    auto& list = nbrs[u];
    // Direction slots order neighbors by id — the deterministic numbering
    // the routing tie-breaks and the partitioner's BFS both rely on.
    std::sort(list.begin(), list.end());
    for (std::size_t i = 1; i < list.size(); ++i) {
      DIVA_CHECK_MSG(list[i].to != list[i - 1].to,
                     "graph '" << spec.name << "': duplicate edge " << u << "-"
                               << list[i].to);
    }
    degree = std::max(degree, static_cast<int>(list.size()));
  }

  adj.assign(static_cast<std::size_t>(n) * degree, -1);
  weightOfSlot.assign(static_cast<std::size_t>(n) * degree, 1.0);
  latencyOfSlot.assign(static_cast<std::size_t>(n) * degree, 1.0);
  for (int u = 0; u < n; ++u) {
    for (std::size_t i = 0; i < nbrs[u].size(); ++i) {
      adj[static_cast<std::size_t>(u) * degree + i] = nbrs[u][i].to;
      weightOfSlot[static_cast<std::size_t>(u) * degree + i] = nbrs[u][i].weight;
      latencyOfSlot[static_cast<std::size_t>(u) * degree + i] = nbrs[u][i].latency;
    }
  }
}

// ---------------------------------------------------------------------------
// GraphTopology — validation, adjacency, routing tables
// ---------------------------------------------------------------------------

GraphTopology::GraphTopology(std::shared_ptr<const GraphSpec> spec,
                             std::shared_ptr<const GraphPartitioner> partitioner)
    : spec_(std::move(spec)), partitioner_(std::move(partitioner)) {
  DIVA_CHECK_MSG(spec_ != nullptr, "GraphTopology requires a GraphSpec");
  DIVA_CHECK_MSG(spec_->numNodes >= 1 && spec_->numNodes <= kMaxNodes,
                 "graph '" << spec_->name << "': node count must be in [1, " << kMaxNodes
                           << "] (got " << spec_->numNodes << ")");
  if (!partitioner_) partitioner_ = std::make_shared<BfsBisectionPartitioner>();
  numNodes_ = spec_->numNodes;
  adj_ = GraphAdjacency(*spec_);
  buildRoutingTables();
}

void GraphTopology::buildRoutingTables() {
  const int n = numNodes_;
  const int deg = adj_.degree;
  const NodeId* adj = adj_.adj.data();
  const double* weightOf = adj_.weightOfSlot.data();
  nextDir_.assign(static_cast<std::size_t>(n) * n, -1);
  hops_.assign(static_cast<std::size_t>(n) * n, 0);

  // One deterministic Dijkstra per destination t fills column t of the
  // tables: nextDir_[s][t] is s's parent direction in the shortest-path
  // tree rooted at t. Ties (equal weighted distance) prefer fewer hops,
  // then the lowest-id neighbor, so routes are unique. Every updater of a
  // node is strictly closer to t (weights are positive), hence already
  // popped and final — so the hop counts recorded here are exactly the
  // lengths of the chains appendRoute later walks.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> hop(static_cast<std::size_t>(n));
  using QEntry = std::pair<double, NodeId>;  // pops by (distance, node id)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue;

  for (NodeId t = 0; t < n; ++t) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(hop.begin(), hop.end(), 0u);
    dist[t] = 0.0;
    queue.push({0.0, t});
    while (!queue.empty()) {
      const auto [du, u] = queue.top();
      queue.pop();
      if (du > dist[u]) continue;  // stale entry
      for (int dir = 0; dir < deg; ++dir) {
        const NodeId v = adj[static_cast<std::size_t>(u) * deg + dir];
        if (v < 0) break;  // slots are packed: the first -1 ends the list
        if (v == t) continue;
        // Relax v → u: v routes toward t through u.
        const double w = weightOf[static_cast<std::size_t>(u) * deg + dir];
        const double cand = dist[u] + w;
        const std::uint32_t candHops = hop[u] + 1;
        std::int16_t& cell = nextDir_[static_cast<std::size_t>(v) * n + t];
        const bool strictly = cand < dist[v];
        bool better = strictly;
        if (!better && cand == dist[v]) {
          if (candHops < hop[v]) {
            better = true;
          } else if (candHops == hop[v] && cell >= 0) {
            // Same weight and hops: keep the lowest-id next hop (equals
            // the lowest direction slot — neighbors are sorted by id).
            better = u < adj[static_cast<std::size_t>(v) * deg + cell];
          }
        }
        if (!better) continue;
        dist[v] = cand;
        hop[v] = candHops;
        const NodeId* vAdj = adj + static_cast<std::size_t>(v) * deg;
        int vd = 0;
        while (vAdj[vd] != u) ++vd;
        cell = static_cast<std::int16_t>(vd);
        // Tie-break-only updates keep dist[v]: an entry is already queued.
        if (strictly) queue.push({cand, v});
      }
    }
    for (NodeId s = 0; s < n; ++s) {
      // Elastic machines keep retired nodes as edgeless entries
      // (GraphSpec::allowIsolated); only the non-isolated nodes must form
      // one connected component.
      const bool exempt =
          spec_->allowIsolated &&
          (adj_.degree == 0 || adj_.neighbor(s, 0) < 0 || adj_.neighbor(t, 0) < 0);
      DIVA_CHECK_MSG(s == t || exempt || dist[s] < kInf,
                     "graph '" << spec_->name << "' is not connected (node " << s
                               << " cannot reach node " << t << ")");
      DIVA_CHECK_MSG(hop[s] <= std::numeric_limits<std::uint16_t>::max(),
                     "route longer than 65535 hops");
      hops_[static_cast<std::size_t>(s) * n + t] = static_cast<std::uint16_t>(hop[s]);
    }
  }
}

double GraphTopology::weightedDistance(NodeId a, NodeId b) const {
  double sum = 0.0;
  NodeId cur = a;
  while (cur != b) {
    const int dir = dirToward(cur, b);
    sum += adj_.weightOf(cur, dir);
    cur = neighborInDir(cur, dir);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// BFS-grown balanced bisection
// ---------------------------------------------------------------------------

void BfsBisectionPartitioner::bisect(const Topology& topo,
                                     const std::vector<NodeId>& cluster,
                                     std::vector<NodeId>& a, std::vector<NodeId>& b) const {
  const std::size_t size = cluster.size();
  DIVA_CHECK(size >= 2);
  const std::size_t target = (size + 1) / 2;

  // All scratch is keyed by cluster members, never sized by the whole
  // machine: the recursive decomposition calls bisect Θ(n) times, and
  // O(numNodes) scratch per call made decomposition quadratic — fatal at
  // the 100k-node scale the hierarchical topology exists for.
  std::unordered_set<NodeId> inCluster(size * 2);
  for (NodeId p : cluster) inCluster.insert(p);

  // Seed: the node of the cluster farthest (in cluster-restricted hops)
  // from its lowest id, ties to the lowest id. Growing from a peripheral
  // node keeps the grown half compact instead of ring-shaped.
  std::unordered_map<NodeId, int> depth(size * 2);
  std::queue<NodeId> queue;
  depth.emplace(cluster.front(), 0);
  queue.push(cluster.front());
  NodeId seed = cluster.front();
  int seedDepth = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    const int du = depth.find(u)->second;
    if (du > seedDepth || (du == seedDepth && u < seed)) {
      seed = u;
      seedDepth = du;
    }
    for (int dir = 0; dir < topo.degree(); ++dir) {
      const NodeId v = topo.neighbor(u, dir);
      if (v < 0) continue;  // generic Topology slots need not be packed
      if (!inCluster.count(v) || !depth.emplace(v, du + 1).second) continue;
      queue.push(v);
    }
  }

  // Grow half the cluster breadth-first from the seed; a disconnected
  // remainder restarts from its lowest id so every node is placed.
  std::unordered_set<NodeId> taken(size * 2);
  a.clear();
  b.clear();
  std::queue<NodeId> grow;
  grow.push(seed);
  taken.insert(seed);
  while (a.size() < target) {
    if (grow.empty()) {
      for (NodeId p : cluster) {
        if (taken.insert(p).second) {
          grow.push(p);
          break;
        }
      }
    }
    const NodeId u = grow.front();
    grow.pop();
    a.push_back(u);
    for (int dir = 0; dir < topo.degree(); ++dir) {
      const NodeId v = topo.neighbor(u, dir);
      if (v < 0) continue;  // generic Topology slots need not be packed
      if (!inCluster.count(v) || !taken.insert(v).second) continue;
      grow.push(v);
    }
  }
  std::sort(a.begin(), a.end());
  for (NodeId p : cluster) {
    if (!std::binary_search(a.begin(), a.end(), p)) b.push_back(p);
  }
}

// ---------------------------------------------------------------------------
// GraphClusterTree
// ---------------------------------------------------------------------------

GraphClusterTree::GraphClusterTree(const Topology& topo, DecompParams params,
                                   const GraphPartitioner& partitioner) {
  DIVA_CHECK_MSG(validArity(params.arity), "arity must be 2, 4 or 16");
  DIVA_CHECK_MSG(params.leafSize >= 1, "leafSize must be >= 1");
  const int n = topo.numNodes();
  nodes_.reserve(static_cast<std::size_t>(2) * n);
  // The tree covers the nodes that are attached to the network. On an
  // ordinary (connected) graph that is every node; on an elastic machine
  // retired nodes are edgeless and get no leaf — leafOf/rankOf stay -1
  // for them (docs/faults.md).
  std::vector<NodeId> all;
  all.reserve(static_cast<std::size_t>(n));
  for (NodeId p = 0; p < n; ++p) {
    bool attached = false;
    for (int dir = 0; dir < topo.degree() && !attached; ++dir)
      attached = topo.neighbor(p, dir) >= 0;
    if (attached) all.push_back(p);
  }
  if (all.empty())
    for (NodeId p = 0; p < n; ++p) all.push_back(p);  // single-node machines
  build(topo, partitioner, std::move(all), -1, -1, 0, params);
  finalize(n);
}

void GraphClusterTree::expandChildren(const Topology& topo,
                                      const GraphPartitioner& partitioner,
                                      std::vector<NodeId>&& cluster, int levels,
                                      std::vector<std::vector<NodeId>>& out) {
  if (levels == 0 || cluster.size() <= 1) {
    out.push_back(std::move(cluster));
    return;
  }
  std::vector<NodeId> a, b;
  partitioner.bisect(topo, cluster, a, b);
  DIVA_CHECK_MSG(!a.empty() && !b.empty() && a.size() + b.size() == cluster.size(),
                 "partitioner did not bisect the cluster");
  expandChildren(topo, partitioner, std::move(a), levels - 1, out);
  expandChildren(topo, partitioner, std::move(b), levels - 1, out);
}

int GraphClusterTree::build(const Topology& topo, const GraphPartitioner& partitioner,
                            std::vector<NodeId>&& cluster, int parent, int indexInParent,
                            int depth, const DecompParams& params) {
  const int self = static_cast<int>(nodes_.size());
  const int size = static_cast<int>(cluster.size());
  nodes_.push_back(Node{parent, indexInParent, {}, depth, size});
  leafProc_.push_back(size == 1 ? cluster.front() : -1);

  std::vector<std::vector<NodeId>> childClusters;
  if (size > 1) {
    if (size <= params.leafSize) {
      // ℓ-k-ary termination: one child per processor, in id order.
      childClusters.reserve(cluster.size());
      for (NodeId p : cluster) childClusters.push_back({p});
    } else {
      expandChildren(topo, partitioner, std::vector<NodeId>(cluster),
                     levelsOf(params.arity), childClusters);
    }
  }
  members_.push_back(std::move(cluster));

  int idx = 0;
  for (auto& child : childClusters) {
    const int c = build(topo, partitioner, std::move(child), self, idx++, depth + 1, params);
    nodes_[self].children.push_back(c);
  }
  return self;
}

NodeId GraphClusterTree::hostOf(int treeNode, std::uint64_t varKey, EmbeddingKind kind,
                                std::uint64_t seed) const {
  const std::vector<NodeId>& mem = members_[treeNode];
  const std::uint64_t count = mem.size();
  if (count == 1) return mem.front();

  if (kind == EmbeddingKind::Random) {
    const std::uint64_t key =
        support::hashCombine(seed, varKey, static_cast<std::uint64_t>(treeNode));
    return mem[support::hashBelow(key, count)];
  }

  // Regular embedding: the root is uniform; every other node keeps its
  // parent's relative position — the index of the parent's host within
  // the parent's member list, folded into this cluster's size. The
  // general-graph analogue of the mesh's (i mod m1, j mod m2) rule.
  const Node& nd = nodes_[treeNode];
  if (nd.parent < 0) {
    return mem[support::hashBelow(support::hashCombine(seed, varKey), count)];
  }
  const NodeId parentHost = hostOf(nd.parent, varKey, kind, seed);
  const std::vector<NodeId>& pm = members_[nd.parent];
  const std::size_t rel =
      static_cast<std::size_t>(std::lower_bound(pm.begin(), pm.end(), parentHost) -
                               pm.begin());
  return mem[rel % count];
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

GraphSpec ringGraph(int n) {
  DIVA_CHECK_MSG(n >= 1, "ring size must be positive (got " << n << ")");
  GraphSpec g;
  g.name = "ring" + std::to_string(n);
  g.numNodes = n;
  if (n == 2) {
    g.edges.push_back({0, 1, 1.0});
  } else if (n > 2) {
    for (NodeId i = 0; i < n; ++i)
      g.edges.push_back({i, static_cast<NodeId>((i + 1) % n), 1.0});
  }
  return g;
}

GraphSpec starGraph(int n) {
  DIVA_CHECK_MSG(n >= 1, "star size must be positive (got " << n << ")");
  GraphSpec g;
  g.name = "star" + std::to_string(n);
  g.numNodes = n;
  for (NodeId i = 1; i < n; ++i) g.edges.push_back({0, i, 1.0});
  return g;
}

GraphSpec fatTreeGraph(int arity, int levels) {
  DIVA_CHECK_MSG(arity >= 2, "fat tree arity must be >= 2 (got " << arity << ")");
  DIVA_CHECK_MSG(levels >= 1 && levels <= 16,
                 "fat tree levels must be in [1, 16] (got " << levels << ")");
  GraphSpec g;
  g.name = "fattree" + std::to_string(arity) + "x" + std::to_string(levels);
  std::int64_t count = 0, levelSize = 1;
  for (int d = 0; d < levels; ++d, levelSize *= arity) {
    count += levelSize;
    DIVA_CHECK_MSG(count <= kMaxGraphNodes,
                   "fat tree exceeds " << kMaxGraphNodes << " nodes");
  }
  g.numNodes = static_cast<int>(count);
  // Level d starts at offset (arity^d - 1)/(arity - 1); the link into a
  // depth-(d+1) child halves in cost per level toward the root (root
  // links are the "fat" ones).
  std::int64_t offset = 0;
  levelSize = 1;
  for (int d = 0; d + 1 < levels; ++d) {
    const std::int64_t childOffset = offset + levelSize;
    const double weight = 1.0 / static_cast<double>(1 << (levels - 2 - d));
    for (std::int64_t i = 0; i < levelSize; ++i) {
      for (int c = 0; c < arity; ++c) {
        g.edges.push_back({static_cast<NodeId>(offset + i),
                           static_cast<NodeId>(childOffset + i * arity + c), weight});
      }
    }
    offset = childOffset;
    levelSize *= arity;
  }
  return g;
}

GraphSpec randomRegularGraph(int n, int d, std::uint64_t seed) {
  DIVA_CHECK_MSG(n >= 1 && n <= kMaxGraphNodes,
                 "random regular graph: n must be in [1, " << kMaxGraphNodes
                                                           << "] (got " << n << ")");
  DIVA_CHECK_MSG(d >= 0 && d < n, "random regular graph: need 0 <= d < n (got d=" << d
                                                                                  << ", n=" << n << ")");
  DIVA_CHECK_MSG((static_cast<std::int64_t>(n) * d) % 2 == 0,
                 "random regular graph: n*d must be even");
  DIVA_CHECK_MSG(d >= 2 || n <= 2, "random regular graph: d < 2 cannot be connected");

  GraphSpec g;
  g.name = "rr" + std::to_string(n) + "d" + std::to_string(d) + "s" + std::to_string(seed);
  g.numNodes = n;
  if (n <= 1 || d == 0) return g;

  // Pairing model: shuffle the n·d stubs, pair them off, reject pairings
  // with self-loops, duplicate edges, or a disconnected result, and retry
  // with a derived seed. Deterministic for a given seed.
  const std::size_t stubCount = static_cast<std::size_t>(n) * d;
  std::vector<NodeId> stubs(stubCount);
  // Edge membership is a hash set keyed on the packed (u, v) pair — a
  // dense n×n byte table would cost O(n²) memory (10 GB at 100k nodes)
  // for the same answer. The RNG draw sequence is untouched, so graphs
  // for a given seed are identical to the dense-scratch era.
  std::unordered_set<std::uint64_t> used(stubCount * 2);
  std::vector<std::vector<NodeId>> nbrs(static_cast<std::size_t>(n));
  std::vector<char> reached(static_cast<std::size_t>(n));
  for (int attempt = 0; attempt < 10'000; ++attempt) {
    support::SplitMix64 rng(
        support::hashCombine(seed, static_cast<std::uint64_t>(attempt)));
    for (std::size_t i = 0; i < stubCount; ++i)
      stubs[i] = static_cast<NodeId>(i / static_cast<std::size_t>(d));
    for (std::size_t i = stubCount - 1; i > 0; --i)
      std::swap(stubs[i], stubs[rng.below(i + 1)]);

    used.clear();
    g.edges.clear();
    bool ok = true;
    for (std::size_t i = 0; i < stubCount; i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!used.insert((static_cast<std::uint64_t>(u) << 32) |
                       static_cast<std::uint32_t>(v))
               .second) {
        ok = false;
        break;
      }
      g.edges.push_back({u, v, 1.0});
    }
    if (!ok) continue;

    // Connectivity check over the candidate edge set.
    for (auto& list : nbrs) list.clear();
    for (const auto& e : g.edges) {
      nbrs[e.u].push_back(e.v);
      nbrs[e.v].push_back(e.u);
    }
    std::fill(reached.begin(), reached.end(), 0);
    std::vector<NodeId> stack{0};
    reached[0] = 1;
    int seen = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : nbrs[u]) {
        if (reached[v]) continue;
        reached[v] = 1;
        ++seen;
        stack.push_back(v);
      }
    }
    if (seen == n) {
      std::sort(g.edges.begin(), g.edges.end(), [](const auto& a, const auto& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
      return g;
    }
  }
  DIVA_CHECK_MSG(false, "random regular graph: no valid pairing found for n="
                            << n << ", d=" << d << ", seed=" << seed);
  return g;
}

GraphSpec gridGraph(int rows, int cols) {
  DIVA_CHECK_MSG(rows >= 1 && cols >= 1,
                 "grid graph: dimensions must be positive (got " << rows << "x" << cols
                                                                 << ")");
  DIVA_CHECK_MSG(static_cast<std::int64_t>(rows) * cols <= kMaxGraphNodes,
                 "grid graph exceeds " << kMaxGraphNodes << " nodes");
  GraphSpec g;
  g.name = "grid" + std::to_string(rows) + "x" + std::to_string(cols);
  g.numNodes = rows * cols;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const NodeId u = static_cast<NodeId>(r * cols + c);
      if (c + 1 < cols) g.edges.push_back({u, u + 1, 1.0});
      if (r + 1 < rows) g.edges.push_back({u, u + cols, 1.0});
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

GraphSpec parseGraph(const std::string& text) {
  GraphSpec g;
  g.name = "file";
  g.numNodes = -1;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  // Undirected pairs already declared, for line-numbered duplicate
  // diagnostics — GraphTopology would reject them too, but only after
  // parsing, without saying which line to fix.
  std::unordered_set<std::uint64_t> seenEdges;
  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word == "graph") {
      DIVA_CHECK_MSG(static_cast<bool>(ls >> g.name),
                     "graph file line " << lineNo << ": 'graph' needs a name");
    } else if (word == "nodes") {
      DIVA_CHECK_MSG(g.numNodes < 0,
                     "graph file line " << lineNo << ": duplicate 'nodes' line");
      DIVA_CHECK_MSG(static_cast<bool>(ls >> g.numNodes) && g.numNodes >= 1,
                     "graph file line " << lineNo << ": 'nodes' needs a positive count");
    } else if (word == "edge") {
      DIVA_CHECK_MSG(g.numNodes >= 0,
                     "graph file line " << lineNo << ": 'edge' before 'nodes'");
      GraphSpec::Edge e;
      DIVA_CHECK_MSG(static_cast<bool>(ls >> e.u >> e.v),
                     "graph file line " << lineNo << ": 'edge' needs two node ids");
      DIVA_CHECK_MSG(e.u >= 0 && e.u < g.numNodes && e.v >= 0 && e.v < g.numNodes,
                     "graph file line " << lineNo << ": edge " << e.u << "-" << e.v
                                        << " out of range for " << g.numNodes
                                        << " nodes");
      DIVA_CHECK_MSG(e.u != e.v,
                     "graph file line " << lineNo << ": self-loop at node " << e.u);
      const auto lo = static_cast<std::uint64_t>(std::min(e.u, e.v));
      const auto hi = static_cast<std::uint64_t>(std::max(e.u, e.v));
      DIVA_CHECK_MSG(seenEdges.insert((hi << 32) | lo).second,
                     "graph file line " << lineNo << ": duplicate edge " << e.u << "-"
                                        << e.v);
      std::string wtok;
      if (ls >> wtok) {
        std::istringstream ws(wtok);
        DIVA_CHECK_MSG(static_cast<bool>(ws >> e.weight) && ws.eof(),
                       "graph file line " << lineNo << ": malformed edge weight '"
                                          << wtok << "'");
      }
      if (ls >> wtok) {
        std::istringstream lt(wtok);
        DIVA_CHECK_MSG(static_cast<bool>(lt >> e.latency) && lt.eof(),
                       "graph file line " << lineNo << ": malformed edge latency '"
                                          << wtok << "'");
      }
      g.edges.push_back(e);
    } else {
      DIVA_CHECK_MSG(false, "graph file line " << lineNo << ": unknown directive '"
                                               << word << "'");
    }
    // After a directive's declared arguments, any trailing token is an
    // error (same policy as the scenario format): a stray column must
    // not silently build a different network than the file describes.
    std::string extra;
    DIVA_CHECK_MSG(!(ls >> extra), "graph file line "
                                       << lineNo << ": unexpected trailing token '"
                                       << extra << "' after '" << word << "'");
  }
  DIVA_CHECK_MSG(g.numNodes >= 0, "graph file has no 'nodes' line");
  return g;
}

GraphSpec loadGraphFile(const std::string& path) {
  std::ifstream in(path);
  DIVA_CHECK_MSG(in.good(), "cannot open graph file '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  // Parser errors carry line numbers but not the file name (parseGraph
  // also serves in-memory text); add the path so a failing multi-file
  // experiment names its culprit.
  try {
    return parseGraph(text.str());
  } catch (const support::CheckError& e) {
    throw support::CheckError(path + ": " + e.what());
  }
}

std::string formatGraph(const GraphSpec& spec) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  if (!spec.name.empty()) out << "graph " << spec.name << "\n";
  out << "nodes " << spec.numNodes << "\n";
  for (const GraphSpec::Edge& e : spec.edges) {
    out << "edge " << e.u << " " << e.v;
    // Fields are positional: a non-default latency forces the weight out.
    if (e.weight != 1.0 || e.latency != 1.0) out << " " << e.weight;
    if (e.latency != 1.0) out << " " << e.latency;
    out << "\n";
  }
  return out.str();
}

}  // namespace diva::net
