#pragma once

#include <cstdint>

namespace diva::net {

/// Timing parameters of the simulated machine, calibrated to the paper's
/// measurements of the Parsytec GCel (§3, "The hardware platform"):
///
///  * link bandwidth ≈ 1 Mbyte/s in each direction  → 1 byte/µs
///  * full bandwidth requires ≈1 Kbyte messages     → startup ≈ hundreds µs
///  * processor speed ≈ 0.29 integer adds per µs    → 3.45 µs per add
///  * link/processor speed ratio ≈ 0.86             (4 B transfer / 1 add)
///
/// Congestion results are independent of these values (the paper makes the
/// same point); they shape only the time axis.
struct CostModel {
  // --- network ---
  double bytesPerUs = 1.0;       ///< link bandwidth (both directions independent)
  double hopLatencyUs = 5.0;     ///< cut-through router latency per hop
  /// Startup costs: the paper reports that ≈1 Kbyte messages are needed
  /// to reach full bandwidth, i.e. per-message software overhead is on
  /// the order of the 1 ms it takes to stream 1 KB. We split that
  /// between sender and receiver.
  double sendOverheadUs = 500.0; ///< CPU cost of a startup at the sender
  double recvOverheadUs = 250.0; ///< CPU cost of accepting a message at the receiver
  std::uint64_t headerBytes = 32; ///< wire overhead per message; control msgs = header only

  // --- local data management machinery ---
  /// Library overhead of one shared-variable access served locally: the
  /// DIVA access path (function call, address hash, state checks) is on
  /// the order of 100 instructions — ≈350 µs on the GCel's 0.29-adds/µs
  /// processors. This constant dominates the Barnes–Hut force phase and
  /// is what makes it ≈75% local computation, as the paper reports.
  double cacheHitUs = 350.0;
  double stateLookupUs = 10.0;   ///< one protocol state-machine step on a host

  // --- application compute (charged as simulated local work) ---
  double intAddUs = 3.45;        ///< one integer add incl. loop overhead (paper's 0.29/µs)
  double keyOpUs = 3.45;         ///< one compare+move in merge/sort
  double flopUs = 3.45;          ///< one floating-point multiply-add
  double bodyForceUs = 120.0;    ///< softened interaction: ~35 flops on the T805 FPU
  double cellVisitUs = 30.0;     ///< opening test while walking the Barnes–Hut tree

  static CostModel gcel() { return CostModel{}; }

  /// A cost model with zero local compute, used to measure pure
  /// "communication time" as in the paper's matrix multiplication study.
  CostModel withoutCompute() const {
    CostModel m = *this;
    m.intAddUs = m.keyOpUs = m.flopUs = m.bodyForceUs = m.cellVisitUs = 0.0;
    return m;
  }
};

}  // namespace diva::net
