#include "net/topology.hpp"

#include <sstream>

#include "net/graph_topology.hpp"
#include "net/hier_routing.hpp"
#include "net/hypercube_topology.hpp"
#include "net/mesh_topology.hpp"
#include "net/torus_topology.hpp"

namespace diva::net {

const char* topologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::Mesh2D: return "mesh2d";
    case TopologyKind::Torus2D: return "torus2d";
    case TopologyKind::Hypercube: return "hypercube";
    case TopologyKind::Graph: return "graph";
  }
  return "?";
}

std::string TopologySpec::describe() const {
  std::ostringstream os;
  os << topologyKindName(kind);
  if (kind == TopologyKind::Hypercube) {
    os << '-' << a << 'd';
  } else if (kind == TopologyKind::Graph) {
    os << '-' << (graphSpec ? graphSpec->name : std::string("unset"));
    if (hierArity > 0) os << "-hier" << hierArity;
  } else {
    os << '-' << a << 'x' << b;
  }
  return os.str();
}

void ClusterTree::finalize(int numProcs) {
  DIVA_CHECK(!nodes_.empty() && leafProc_.size() == nodes_.size());
  leafOfProc_.assign(numProcs, -1);
  rankOfProc_.assign(numProcs, -1);
  leafOrder_.clear();
  leafOrder_.reserve(static_cast<std::size_t>(numProcs));
  maxDepth_ = 0;
  // Left-to-right DFS fixes the canonical leaf order independently of the
  // order in which a builder happened to append nodes.
  std::vector<int> stack{root()};
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    maxDepth_ = std::max(maxDepth_, nodes_[n].depth);
    if (nodes_[n].isLeaf()) {
      const NodeId p = leafProc_[n];
      DIVA_CHECK_MSG(p >= 0 && p < numProcs, "leaf without a processor");
      DIVA_CHECK_MSG(leafOfProc_[p] < 0, "processor " << p << " has two leaves");
      leafOfProc_[p] = n;
      leafOrder_.push_back(n);
      continue;
    }
    for (auto it = nodes_[n].children.rbegin(); it != nodes_[n].children.rend(); ++it)
      stack.push_back(*it);
  }
  // Leaves cover each processor at most once. A tree over an elastic
  // (reconfigured) machine covers only the *member* processors — retired
  // ids keep leafOf/rankOf = -1 — so coverage may be partial, but never
  // empty and never larger than the processor set.
  DIVA_CHECK_MSG(!leafOrder_.empty() &&
                     static_cast<int>(leafOrder_.size()) <= numProcs,
                 "decomposition leaves do not fit the processor set");
  for (int w = 0; w < static_cast<int>(leafOrder_.size()); ++w)
    rankOfProc_[procOfLeaf(leafOrder_[w])] = w;
}

int ClusterTree::childToward(int treeNode, NodeId p) const {
  int cur = leafOf(p);
  while (cur >= 0) {
    const int par = nodes_[cur].parent;
    if (par == treeNode) return cur;
    cur = par;
  }
  return -1;
}

std::unique_ptr<Topology> makeTopology(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::Mesh2D:
      DIVA_CHECK_MSG(spec.a >= 1 && spec.b >= 1,
                     "mesh2d sides must be positive (got " << spec.a << "x" << spec.b
                                                           << ")");
      return std::make_unique<MeshTopology>(spec.a, spec.b);
    case TopologyKind::Torus2D:
      DIVA_CHECK_MSG(spec.a >= 1 && spec.b >= 1,
                     "torus2d sides must be positive (got " << spec.a << "x" << spec.b
                                                            << ")");
      return std::make_unique<TorusTopology>(spec.a, spec.b);
    case TopologyKind::Hypercube:
      DIVA_CHECK_MSG(spec.a >= 0 && spec.a <= 20,
                     "hypercube dimension must be in [0, 20] (got " << spec.a << ")");
      return std::make_unique<HypercubeTopology>(spec.a);
    case TopologyKind::Graph:
      DIVA_CHECK_MSG(spec.graphSpec != nullptr, "graph topology spec without a graph");
      if (spec.hierArity > 0)
        return std::make_unique<HierGraphTopology>(spec.graphSpec, spec.hierArity);
      return std::make_unique<GraphTopology>(spec.graphSpec);
  }
  DIVA_CHECK_MSG(false, "unknown topology kind");
  return nullptr;
}

std::vector<NodeId> canonicalLeafOrder(const Topology& topo) {
  const auto tree = topo.decompose(DecompParams{2, 1});
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(topo.numNodes()));
  for (int leaf : tree->leafOrder()) order.push_back(tree->procOfLeaf(leaf));
  return order;
}

std::vector<Hop> routeOf(const Topology& topo, NodeId from, NodeId to) {
  RouteVec buf;
  topo.appendRoute(from, to, buf);
  return std::vector<Hop>(buf.begin(), buf.end());
}

}  // namespace diva::net
