#include "net/network.hpp"

namespace diva::net {

namespace {
std::uint64_t handlerKey(NodeId node, Channel channel) {
  return (static_cast<std::uint64_t>(node) << 32) | channel;
}
}  // namespace

struct Network::Flight {
  Message msg;
  std::vector<mesh::Hop> path;
  std::size_t idx = 0;
  sim::Time headReady = 0;  ///< when the head is ready to enter path[idx]
};

Network::Network(sim::Engine& engine, const mesh::Mesh& mesh, CostModel cost,
                 mesh::LinkStats& stats)
    : engine_(&engine), mesh_(&mesh), cost_(cost), stats_(&stats) {
  cpuFreeAt_.assign(static_cast<std::size_t>(mesh.numNodes()), sim::kTimeZero);
  linkFreeAt_.assign(static_cast<std::size_t>(mesh.numLinkSlots()), sim::kTimeZero);
}

void Network::setHandler(NodeId node, Channel channel, Handler handler) {
  handlers_[handlerKey(node, channel)] = std::move(handler);
}

sim::Time Network::postInternal(Message&& msg) {
  DIVA_CHECK(msg.src >= 0 && msg.src < mesh_->numNodes());
  DIVA_CHECK(msg.dst >= 0 && msg.dst < mesh_->numNodes());
  ++messagesSent_;

  if (msg.src == msg.dst) {
    // Local "message": a function call on the host processor. No startup,
    // no link traffic; costs one state-machine step.
    const sim::Time done = reserveCpu(msg.src, cost_.stateLookupUs);
    auto* boxed = new Message(std::move(msg));
    engine_->scheduleAt(done, [this, boxed] {
      Message m = std::move(*boxed);
      delete boxed;
      dispatchOrEnqueue(std::move(m));
    });
    return done;
  }

  const sim::Time injected = reserveCpu(msg.src, cost_.sendOverheadUs);
  auto* f = new Flight{std::move(msg), {}, 0, injected};
  mesh::routeDimensionOrder(*mesh_, f->msg.src, f->msg.dst, f->path);
  engine_->scheduleAt(injected, [this, f] { hop(f); });
  return injected;
}

void Network::hop(Flight* f) {
  const mesh::Hop& h = f->path[f->idx];
  sim::Time& linkFree = linkFreeAt_[h.link];
  const sim::Time start = std::max(f->headReady, linkFree);
  const std::uint64_t wire = f->msg.payloadBytes + cost_.headerBytes;
  const double streamTime = static_cast<double>(wire) / cost_.bytesPerUs;
  linkFree = start + streamTime;
  stats_->record(h.link, wire);

  if (f->idx + 1 == f->path.size()) {
    // Last link: the message is fully delivered when its tail arrives.
    const sim::Time arrival = start + streamTime;
    engine_->scheduleAt(arrival, [this, f] {
      Message m = std::move(f->msg);
      const sim::Time t = engine_->now();
      delete f;
      deliver(std::move(m), t);
    });
  } else {
    ++f->idx;
    f->headReady = start + cost_.hopLatencyUs;
    engine_->scheduleAt(f->headReady, [this, f] { hop(f); });
  }
}

void Network::deliver(Message&& msg, sim::Time /*arrival*/) {
  // Accepting the message costs receive overhead on the destination CPU.
  const sim::Time handleAt = reserveCpu(msg.dst, cost_.recvOverheadUs);
  auto* boxed = new Message(std::move(msg));
  engine_->scheduleAt(handleAt, [this, boxed] {
    Message m = std::move(*boxed);
    delete boxed;
    dispatchOrEnqueue(std::move(m));
  });
}

void Network::dispatchOrEnqueue(Message&& msg) {
  const auto it = handlers_.find(handlerKey(msg.dst, msg.channel));
  if (it != handlers_.end()) {
    it->second(std::move(msg));
    return;
  }
  Mailbox& box = mailboxes_[MailKey{msg.dst, msg.channel}];
  box.queue.push_back(std::move(msg));
  if (!box.waiters.empty()) {
    auto h = box.waiters.front();
    box.waiters.pop_front();
    engine_->resumeAt(engine_->now(), h);
  }
}

sim::Task<Message> Network::recv(NodeId node, Channel channel) {
  Mailbox& box = mailboxes_[MailKey{node, channel}];
  while (box.queue.empty()) {
    struct WaitAwaiter {
      Mailbox* box;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { box->waiters.push_back(h); }
      void await_resume() const noexcept {}
    };
    co_await WaitAwaiter{&box};
  }
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  co_return msg;
}

}  // namespace diva::net
