#include "net/network.hpp"

#include <algorithm>

namespace diva::net {

namespace {
/// Channels are small dense integers by construction (the library reserves
/// the first 16, applications hand out consecutive values above that); the
/// dense per-(channel, node) dispatch tables rely on it.
constexpr Channel kMaxChannels = 1u << 16;
}  // namespace

Network::Network(sim::Engine& engine, const Topology& topology, CostModel cost,
                 mesh::LinkStats& stats)
    : engine_(&engine),
      topo_(&topology),
      cost_(cost),
      stats_(&stats),
      numNodes_(static_cast<std::size_t>(topology.numNodes())) {
  cpuFreeAt_.assign(numNodes_, sim::kTimeZero);
  linkFreeAt_.assign(static_cast<std::size_t>(topology.numLinkSlots()), sim::kTimeZero);
  linkUsPerByte_.resize(linkFreeAt_.size());
  linkHopLatencyUs_.resize(linkFreeAt_.size());
  for (int l = 0; l < topology.numLinkSlots(); ++l) {
    linkUsPerByte_[static_cast<std::size_t>(l)] = topology.linkWeight(l) / cost_.bytesPerUs;
    linkHopLatencyUs_[static_cast<std::size_t>(l)] =
        topology.linkLatency(l) * cost_.hopLatencyUs;
  }
  linkAlive_.assign(linkFreeAt_.size(), 1);
  nodeAlive_.assign(numNodes_, 1);
  liveNodes_ = static_cast<int>(numNodes_);
  // The library protocol channels exist on every machine; size for them up
  // front so the common dispatch never grows mid-run.
  handlers_.resize(static_cast<std::size_t>(kFirstAppChannel) * numNodes_);
  handlerChannels_ = kFirstAppChannel;
  mailboxes_.resize(static_cast<std::size_t>(kFirstAppChannel) * numNodes_);
  mailboxChannels_ = kFirstAppChannel;
}

void Network::setHandler(NodeId node, Channel channel, Handler handler) {
  DIVA_CHECK(node >= 0 && static_cast<std::size_t>(node) < numNodes_);
  DIVA_CHECK_MSG(channel < kMaxChannels, "channel out of dense-table range");
  if (channel >= handlerChannels_) {
    // Growing the table moves every registered handler; a handler that is
    // currently executing must not be moved out from under itself (the
    // map-based design this replaced was reference-stable). Registering
    // on already-covered channels from inside a handler stays legal.
    DIVA_CHECK_MSG(dispatchDepth_ == 0,
                   "cannot register a new channel from inside a handler");
    handlerChannels_ = channel + 1;
    handlers_.resize(static_cast<std::size_t>(handlerChannels_) * numNodes_);
  }
  handlers_[slotOf(node, channel)] = std::move(handler);
}

std::size_t Network::mailboxSlot(NodeId node, Channel channel) {
  DIVA_CHECK(node >= 0 && static_cast<std::size_t>(node) < numNodes_);
  DIVA_CHECK_MSG(channel < kMaxChannels, "channel out of dense-table range");
  if (channel >= mailboxChannels_) {
    mailboxChannels_ = channel + 1;
    mailboxes_.resize(static_cast<std::size_t>(mailboxChannels_) * numNodes_);
  }
  return slotOf(node, channel);
}

sim::Time Network::postInternal(Message&& msg) {
  DIVA_CHECK(msg.src >= 0 && static_cast<std::size_t>(msg.src) < numNodes_);
  DIVA_CHECK(msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < numNodes_);
  ++messagesSent_;

  if (msg.src == msg.dst) {
    // Local "message": a function call on the host processor. No startup,
    // no link traffic; costs one state-machine step.
    const sim::Time done = reserveCpu(msg.src, cost_.stateLookupUs);
    if (done == engine_->now() && dispatchDepth_ == 0) {
      // Zero-cost state step on an idle CPU (cost models with
      // stateLookupUs == 0): the dispatch is due at the current instant,
      // so deliver inline — no pooled box, no queue round-trip. Only
      // from outside a handler: a local post *from* a handler takes the
      // queued path so zero-cost relay chains drain iteratively instead
      // of recursing one stack frame per message.
      dispatchOrEnqueue(std::move(msg));
      return done;
    }
    Message* boxed = messagePool_.acquire();
    *boxed = std::move(msg);
    engine_->scheduleAt(done, [this, boxed] {
      Message m = std::move(*boxed);
      messagePool_.release(boxed);
      dispatchOrEnqueue(std::move(m));
    });
    return done;
  }

  const sim::Time injected = reserveCpu(msg.src, cost_.sendOverheadUs);
  Flight* f = flightPool_.acquire();
  f->msg = std::move(msg);
  f->path.clear();  // recycled flights keep their (possibly spilled) capacity
  f->idx = 0;
  f->wire = f->msg.payloadBytes + cost_.headerBytes;
  f->headReady = injected;
  topo_->appendRoute(f->msg.src, f->msg.dst, f->path);
  if (injected == engine_->now()) {
    // The head is ready now (cost models with sendOverheadUs == 0 and an
    // idle CPU): fuse the injection event into the first hop instead of
    // a scheduleAt(now, …) round-trip through the queue.
    hop(f);
  } else {
    engine_->scheduleAt(injected, [this, f] { hop(f); });
  }
  return injected;
}

void Network::hop(Flight* f) {
  const Hop& h = f->path[f->idx];
  if (!linkAlive_[static_cast<std::size_t>(h.link)]) [[unlikely]] {
    rerouteOrPark(f);
    return;
  }
  sim::Time& linkFree = linkFreeAt_[h.link];
#if defined(__GNUC__) || defined(__clang__)
  // The next hop event fires microseconds of simulated time later but
  // often nanoseconds of host time later: warm its link state now, while
  // this flight's path entry is already in hand.
  if (f->idx + 1 < f->path.size()) {
    const Hop& nh = f->path[f->idx + 1];
    __builtin_prefetch(&linkFreeAt_[nh.link]);
    __builtin_prefetch(&linkUsPerByte_[nh.link]);
    __builtin_prefetch(&linkHopLatencyUs_[nh.link]);
  }
#endif
  const sim::Time start = std::max(f->headReady, linkFree);
  const std::uint64_t wire = f->wire;
  const double streamTime = static_cast<double>(wire) * linkUsPerByte_[h.link];
  linkFree = start + streamTime;
  stats_->record(h.link, wire);

  if (f->idx + 1 == f->path.size()) {
    // Last link: the message is fully delivered when its tail arrives.
    // Accepting it then costs receive overhead on the destination CPU;
    // the flight carries the message through both events, so delivery
    // adds no pool traffic beyond the flight itself.
    const sim::Time arrival = start + streamTime;
    engine_->scheduleAt(arrival, [this, f] {
      const sim::Time handleAt = reserveCpu(f->msg.dst, cost_.recvOverheadUs);
      engine_->scheduleAt(handleAt, [this, f] {
        Message m = std::move(f->msg);
        flightPool_.release(f);
        dispatchOrEnqueue(std::move(m));
      });
    });
  } else {
    ++f->idx;
    f->headReady = start + linkHopLatencyUs_[h.link];
    engine_->scheduleAt(f->headReady, [this, f] { hop(f); });
  }
}

int Network::linkSlotToward(NodeId from, NodeId to) const {
  if (from < 0 || static_cast<std::size_t>(from) >= numNodes_) return -1;
  const int deg = topo_->degree();
  for (int dir = 0; dir < deg; ++dir)
    if (topo_->neighbor(from, dir) == to) return topo_->linkIndex(from, dir);
  return -1;
}

bool Network::linkBetweenUp(NodeId u, NodeId v) const {
  const int slot = linkSlotToward(u, v);
  return slot >= 0 && linkAlive_[static_cast<std::size_t>(slot)] != 0;
}

void Network::setNodeUp(NodeId n, bool up) {
  DIVA_CHECK(n >= 0 && static_cast<std::size_t>(n) < numNodes_);
  const std::uint8_t want = up ? 1 : 0;
  if (nodeAlive_[static_cast<std::size_t>(n)] == want) return;
  nodeAlive_[static_cast<std::size_t>(n)] = want;
  liveNodes_ += up ? 1 : -1;
  DIVA_CHECK_MSG(liveNodes_ > 0, "crashing node " << n << " would kill the whole machine");
  for (const LivenessListener& fn : livenessListeners_)
    if (fn) fn(n, up);
}

void Network::setLinkUp(NodeId u, NodeId v, bool up) {
  const int uv = linkSlotToward(u, v);
  const int vu = linkSlotToward(v, u);
  DIVA_CHECK_MSG(uv >= 0 && vu >= 0,
                 "setLinkUp: nodes " << u << " and " << v << " are not adjacent");
  const std::uint8_t want = up ? 1 : 0;
  if (linkAlive_[static_cast<std::size_t>(uv)] == want &&
      linkAlive_[static_cast<std::size_t>(vu)] == want)
    return;
  linkAlive_[static_cast<std::size_t>(uv)] = want;
  linkAlive_[static_cast<std::size_t>(vu)] = want;
  if (up) retryParked();
}

void Network::degradeLink(NodeId u, NodeId v, double weightMul, double latencyMul) {
  DIVA_CHECK_MSG(weightMul > 0.0 && latencyMul > 0.0,
                 "degradeLink: multipliers must be positive");
  const int uv = linkSlotToward(u, v);
  const int vu = linkSlotToward(v, u);
  DIVA_CHECK_MSG(uv >= 0 && vu >= 0,
                 "degradeLink: nodes " << u << " and " << v << " are not adjacent");
  for (const int slot : {uv, vu}) {
    linkUsPerByte_[static_cast<std::size_t>(slot)] =
        topo_->linkWeight(slot) / cost_.bytesPerUs * weightMul;
    linkHopLatencyUs_[static_cast<std::size_t>(slot)] =
        topo_->linkLatency(slot) * cost_.hopLatencyUs * latencyMul;
  }
}

int Network::addLivenessListener(LivenessListener fn) {
  livenessListeners_.push_back(std::move(fn));
  return static_cast<int>(livenessListeners_.size()) - 1;
}

void Network::removeLivenessListener(int token) {
  DIVA_CHECK(token >= 0 && static_cast<std::size_t>(token) < livenessListeners_.size());
  livenessListeners_[static_cast<std::size_t>(token)] = nullptr;
}

void Network::rerouteOrPark(Flight* f) {
  // BFS from the flight's current node over live links only, expanding
  // neighbor slots in direction order — fully deterministic. O(P·degree)
  // per reroute, which only ever runs while links are down.
  const NodeId cur = flightAt(f);
  const NodeId dst = f->msg.dst;
  const int deg = topo_->degree();
  bfsPrevNode_.assign(numNodes_, -1);
  bfsPrevLink_.assign(numNodes_, -1);
  bfsQueue_.clear();
  bfsPrevNode_[static_cast<std::size_t>(cur)] = cur;
  bfsQueue_.push_back(cur);
  bool found = false;
  for (std::size_t head = 0; head < bfsQueue_.size() && !found; ++head) {
    const NodeId n = bfsQueue_[head];
    for (int dir = 0; dir < deg && !found; ++dir) {
      const NodeId nb = topo_->neighbor(n, dir);
      if (nb < 0 || bfsPrevNode_[static_cast<std::size_t>(nb)] != -1) continue;
      const int link = topo_->linkIndex(n, dir);
      if (!linkAlive_[static_cast<std::size_t>(link)]) continue;
      bfsPrevNode_[static_cast<std::size_t>(nb)] = n;
      bfsPrevLink_[static_cast<std::size_t>(nb)] = link;
      bfsQueue_.push_back(nb);
      found = nb == dst;
    }
  }
  if (!found) {
    // No live path: park. Lossless semantics — the flight resumes from
    // this exact node when a heal reconnects it (a plan that partitions
    // the machine forever simply strands the messages that need the cut).
    ++parkedFlights_;
    limbo_.push_back(f);
    return;
  }
  // Rewrite the rest of the route in place: keep the hops already
  // crossed (they position `cur`), splice the detour in reverse from dst.
  ++reroutedFlights_;
  f->path.truncate(f->idx);
  const std::size_t spliceAt = f->path.size();
  for (NodeId n = dst; n != cur; n = bfsPrevNode_[static_cast<std::size_t>(n)])
    f->path.push_back(Hop{bfsPrevLink_[static_cast<std::size_t>(n)], n});
  std::reverse(f->path.begin() + spliceAt, f->path.end());
  hop(f);  // the spliced next link is live; link state is static within an event
}

void Network::retryParked() {
  if (limbo_.empty()) return;
  std::vector<Flight*> parked;
  parked.swap(limbo_);
  const sim::Time now = engine_->now();
  for (Flight* f : parked) {
    f->headReady = std::max(f->headReady, now);
    rerouteOrPark(f);  // re-parks into limbo_ when still unreachable
  }
}

void Network::dispatchOrEnqueue(Message&& msg) {
  if (deliveryProbe_) deliveryProbe_(engine_->now(), msg.dst, msg.channel);
  if (msg.channel < handlerChannels_) {
    Handler& h = handlers_[slotOf(msg.dst, msg.channel)];
    if (h) {
      ++dispatchDepth_;  // guards the reference against table growth
      try {
        h(std::move(msg));
      } catch (...) {
        --dispatchDepth_;
        throw;
      }
      --dispatchDepth_;
      return;
    }
  }
  Mailbox& box = mailboxes_[mailboxSlot(msg.dst, msg.channel)];
  box.queue.push_back(std::move(msg));
  if (!box.waiters.empty()) {
    engine_->resumeAt(engine_->now(), box.waiters.take_front());
  }
}

sim::Task<Message> Network::recv(NodeId node, Channel channel) {
  // Plain function, not a coroutine: validates (node, channel) and
  // resolves the slot eagerly — a coroutine body would defer the check
  // (and its CheckError) until first resume inside the event loop.
  return recvOnSlot(*this, mailboxSlot(node, channel));
}

sim::Task<Message> Network::recvOnSlot(Network& net, std::size_t slot) {
  // The Network first parameter routes this coroutine's frame into the
  // network-owned frame pool (see sim/task.hpp): mailbox-heavy loops call
  // recv once per message, and after warm-up those frames recycle instead
  // of hitting the heap.
  //
  // Hold the slot index, not a Mailbox reference: the dense table may be
  // resized by other channels appearing while this coroutine is suspended
  // (indices survive growth, references do not).
  while (net.mailboxes_[slot].queue.empty()) {
    struct WaitAwaiter {
      Network* net;
      std::size_t slot;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        net->mailboxes_[slot].waiters.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await WaitAwaiter{&net, slot};
  }
  co_return net.mailboxes_[slot].queue.take_front();
}

}  // namespace diva::net
