#include "net/network.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace diva::net {

namespace {
/// Channels are small dense integers by construction (the library reserves
/// the first 16, applications hand out consecutive values above that); the
/// dense per-(channel, node) dispatch tables rely on it.
constexpr Channel kMaxChannels = 1u << 16;

/// Error-message suffix for scripted reconfigurations: run-time validation
/// failures point back at the scenario line that scheduled the event.
std::string atLine(int line) {
  return line > 0 ? " (scenario line " + std::to_string(line) + ")" : std::string();
}

/// Directed endpoint pair as a map key (node ids are 31-bit).
std::uint64_t pairKey(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

/// Re-stride a dense channel-major table (slot = channel * stride + node)
/// for a larger node stride; new nodes' slots are value-initialized.
template <typename T>
void restrideTable(std::vector<T>& table, std::size_t oldN, std::size_t newN,
                   Channel channels) {
  std::vector<T> grown(static_cast<std::size_t>(channels) * newN);
  for (Channel c = 0; c < channels; ++c)
    for (std::size_t n = 0; n < oldN; ++n)
      grown[static_cast<std::size_t>(c) * newN + n] =
          std::move(table[static_cast<std::size_t>(c) * oldN + n]);
  table = std::move(grown);
}
}  // namespace

Network::Network(sim::Engine& engine, const Topology& topology, CostModel cost,
                 mesh::LinkStats& stats)
    : engine_(&engine),
      topo_(&topology),
      cost_(cost),
      stats_(&stats),
      numNodes_(static_cast<std::size_t>(topology.numNodes())) {
  cpuFreeAt_.assign(numNodes_, sim::kTimeZero);
  linkFreeAt_.assign(static_cast<std::size_t>(topology.numLinkSlots()), sim::kTimeZero);
  linkUsPerByte_.resize(linkFreeAt_.size());
  linkHopLatencyUs_.resize(linkFreeAt_.size());
  for (int l = 0; l < topology.numLinkSlots(); ++l) {
    linkUsPerByte_[static_cast<std::size_t>(l)] = topology.linkWeight(l) / cost_.bytesPerUs;
    linkHopLatencyUs_[static_cast<std::size_t>(l)] =
        topology.linkLatency(l) * cost_.hopLatencyUs;
  }
  linkAlive_.assign(linkFreeAt_.size(), 1);
  nodeAlive_.assign(numNodes_, 1);
  liveNodes_ = static_cast<int>(numNodes_);
  nodeMember_.assign(numNodes_, 1);
  members_.resize(numNodes_);
  for (std::size_t n = 0; n < numNodes_; ++n) members_[n] = static_cast<NodeId>(n);
  // The library protocol channels exist on every machine; size for them up
  // front so the common dispatch never grows mid-run.
  handlers_.resize(static_cast<std::size_t>(kFirstAppChannel) * numNodes_);
  handlerChannels_ = kFirstAppChannel;
  mailboxes_.resize(static_cast<std::size_t>(kFirstAppChannel) * numNodes_);
  mailboxChannels_ = kFirstAppChannel;
}

void Network::setHandler(NodeId node, Channel channel, Handler handler) {
  DIVA_CHECK(node >= 0 && static_cast<std::size_t>(node) < numNodes_);
  DIVA_CHECK_MSG(channel < kMaxChannels, "channel out of dense-table range");
  if (channel >= handlerChannels_) {
    // Growing the table moves every registered handler; a handler that is
    // currently executing must not be moved out from under itself (the
    // map-based design this replaced was reference-stable). Registering
    // on already-covered channels from inside a handler stays legal.
    DIVA_CHECK_MSG(dispatchDepth_ == 0,
                   "cannot register a new channel from inside a handler");
    handlerChannels_ = channel + 1;
    handlers_.resize(static_cast<std::size_t>(handlerChannels_) * numNodes_);
  }
  handlers_[slotOf(node, channel)] = std::move(handler);
}

std::size_t Network::mailboxSlot(NodeId node, Channel channel) {
  DIVA_CHECK(node >= 0 && static_cast<std::size_t>(node) < numNodes_);
  DIVA_CHECK_MSG(channel < kMaxChannels, "channel out of dense-table range");
  if (channel >= mailboxChannels_) {
    mailboxChannels_ = channel + 1;
    mailboxes_.resize(static_cast<std::size_t>(mailboxChannels_) * numNodes_);
  }
  return slotOf(node, channel);
}

sim::Time Network::postInternal(Message&& msg) {
  DIVA_CHECK(msg.src >= 0 && static_cast<std::size_t>(msg.src) < numNodes_);
  DIVA_CHECK(msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < numNodes_);
  ++messagesSent_;

  if (msg.src == msg.dst) {
    // Local "message": a function call on the host processor. No startup,
    // no link traffic; costs one state-machine step.
    const sim::Time done = reserveCpu(msg.src, cost_.stateLookupUs);
    if (done == engine_->now() && dispatchDepth_ == 0) {
      // Zero-cost state step on an idle CPU (cost models with
      // stateLookupUs == 0): the dispatch is due at the current instant,
      // so deliver inline — no pooled box, no queue round-trip. Only
      // from outside a handler: a local post *from* a handler takes the
      // queued path so zero-cost relay chains drain iteratively instead
      // of recursing one stack frame per message.
      dispatchOrEnqueue(std::move(msg));
      return done;
    }
    Message* boxed = messagePool_.acquire();
    *boxed = std::move(msg);
    engine_->scheduleAt(done, [this, boxed] {
      Message m = std::move(*boxed);
      messagePool_.release(boxed);
      dispatchOrEnqueue(std::move(m));
    });
    return done;
  }

  const sim::Time injected = reserveCpu(msg.src, cost_.sendOverheadUs);
  Flight* f = flightPool_.acquire();
  f->msg = std::move(msg);
  f->path.clear();  // recycled flights keep their (possibly spilled) capacity
  f->idx = 0;
  f->wire = f->msg.payloadBytes + cost_.headerBytes;
  f->epoch = topoEpoch_;
  f->headReady = injected;
  topo_->appendRoute(f->msg.src, f->msg.dst, f->path);
  if (injected == engine_->now()) {
    // The head is ready now (cost models with sendOverheadUs == 0 and an
    // idle CPU): fuse the injection event into the first hop instead of
    // a scheduleAt(now, …) round-trip through the queue.
    hop(f);
  } else {
    engine_->scheduleAt(injected, [this, f] { hop(f); });
  }
  return injected;
}

void Network::hop(Flight* f) {
  if (f->epoch != topoEpoch_) [[unlikely]] {
    // The machine was reconfigured while this flight was in transit: its
    // remaining hops may reference links that no longer exist (or whose
    // slots were renumbered). Recompute the rest of the route on the
    // installed shape before touching any link table.
    rerouteOrPark(f);
    return;
  }
  const Hop& h = f->path[f->idx];
  if (!linkAlive_[static_cast<std::size_t>(h.link)]) [[unlikely]] {
    rerouteOrPark(f);
    return;
  }
  sim::Time& linkFree = linkFreeAt_[h.link];
#if defined(__GNUC__) || defined(__clang__)
  // The next hop event fires microseconds of simulated time later but
  // often nanoseconds of host time later: warm its link state now, while
  // this flight's path entry is already in hand.
  if (f->idx + 1 < f->path.size()) {
    const Hop& nh = f->path[f->idx + 1];
    __builtin_prefetch(&linkFreeAt_[nh.link]);
    __builtin_prefetch(&linkUsPerByte_[nh.link]);
    __builtin_prefetch(&linkHopLatencyUs_[nh.link]);
  }
#endif
  const sim::Time start = std::max(f->headReady, linkFree);
  const std::uint64_t wire = f->wire;
  const double streamTime = static_cast<double>(wire) * linkUsPerByte_[h.link];
  linkFree = start + streamTime;
  stats_->record(h.link, wire);

  if (f->idx + 1 == f->path.size()) {
    // Last link: the message is fully delivered when its tail arrives.
    // Accepting it then costs receive overhead on the destination CPU;
    // the flight carries the message through both events, so delivery
    // adds no pool traffic beyond the flight itself.
    const sim::Time arrival = start + streamTime;
    engine_->scheduleAt(arrival, [this, f] {
      const sim::Time handleAt = reserveCpu(f->msg.dst, cost_.recvOverheadUs);
      engine_->scheduleAt(handleAt, [this, f] {
        Message m = std::move(f->msg);
        flightPool_.release(f);
        dispatchOrEnqueue(std::move(m));
      });
    });
  } else {
    ++f->idx;
    f->headReady = start + linkHopLatencyUs_[h.link];
    engine_->scheduleAt(f->headReady, [this, f] { hop(f); });
  }
}

int Network::linkSlotToward(NodeId from, NodeId to) const {
  if (from < 0 || static_cast<std::size_t>(from) >= numNodes_) return -1;
  const int deg = topo_->degree();
  for (int dir = 0; dir < deg; ++dir)
    if (topo_->neighbor(from, dir) == to) return topo_->linkIndex(from, dir);
  return -1;
}

bool Network::linkBetweenUp(NodeId u, NodeId v) const {
  const int slot = linkSlotToward(u, v);
  return slot >= 0 && linkAlive_[static_cast<std::size_t>(slot)] != 0;
}

void Network::setNodeUp(NodeId n, bool up) {
  DIVA_CHECK(n >= 0 && static_cast<std::size_t>(n) < numNodes_);
  const std::uint8_t want = up ? 1 : 0;
  if (nodeAlive_[static_cast<std::size_t>(n)] == want) return;
  nodeAlive_[static_cast<std::size_t>(n)] = want;
  liveNodes_ += up ? 1 : -1;
  DIVA_CHECK_MSG(liveNodes_ > 0, "crashing node " << n << " would kill the whole machine");
  if (tracer_) tracer_->instant(obs::kCatFault, n, up ? "node-up" : "node-down");
  for (const LivenessListener& fn : livenessListeners_)
    if (fn) fn(n, up);
}

void Network::setLinkUp(NodeId u, NodeId v, bool up) {
  const int uv = linkSlotToward(u, v);
  const int vu = linkSlotToward(v, u);
  DIVA_CHECK_MSG(uv >= 0 && vu >= 0,
                 "setLinkUp: nodes " << u << " and " << v << " are not adjacent");
  const std::uint8_t want = up ? 1 : 0;
  if (linkAlive_[static_cast<std::size_t>(uv)] == want &&
      linkAlive_[static_cast<std::size_t>(vu)] == want)
    return;
  linkAlive_[static_cast<std::size_t>(uv)] = want;
  linkAlive_[static_cast<std::size_t>(vu)] = want;
  if (tracer_) tracer_->instant(obs::kCatFault, u, up ? "link-up" : "link-down", v);
  if (up) retryParked();
}

void Network::degradeLink(NodeId u, NodeId v, double weightMul, double latencyMul) {
  DIVA_CHECK_MSG(weightMul > 0.0 && latencyMul > 0.0,
                 "degradeLink: multipliers must be positive");
  const int uv = linkSlotToward(u, v);
  const int vu = linkSlotToward(v, u);
  DIVA_CHECK_MSG(uv >= 0 && vu >= 0,
                 "degradeLink: nodes " << u << " and " << v << " are not adjacent");
  for (const int slot : {uv, vu}) {
    linkUsPerByte_[static_cast<std::size_t>(slot)] =
        topo_->linkWeight(slot) / cost_.bytesPerUs * weightMul;
    linkHopLatencyUs_[static_cast<std::size_t>(slot)] =
        topo_->linkLatency(slot) * cost_.hopLatencyUs * latencyMul;
  }
  if (tracer_) tracer_->instant(obs::kCatFault, u, "degrade-link", v);
}

int Network::addLivenessListener(LivenessListener fn) {
  livenessListeners_.push_back(std::move(fn));
  return static_cast<int>(livenessListeners_.size()) - 1;
}

void Network::removeLivenessListener(int token) {
  DIVA_CHECK(token >= 0 && static_cast<std::size_t>(token) < livenessListeners_.size());
  livenessListeners_[static_cast<std::size_t>(token)] = nullptr;
}

void Network::rerouteOrPark(Flight* f) {
  // BFS from the flight's current node over live links only, expanding
  // neighbor slots in direction order — fully deterministic. O(P·degree)
  // per reroute, which only ever runs while links are down.
  const NodeId cur = flightAt(f);
  const NodeId dst = f->msg.dst;
  f->epoch = topoEpoch_;  // the detour below is computed on the installed shape
  const int deg = topo_->degree();
  bfsPrevNode_.assign(numNodes_, -1);
  bfsPrevLink_.assign(numNodes_, -1);
  bfsQueue_.clear();
  bfsPrevNode_[static_cast<std::size_t>(cur)] = cur;
  bfsQueue_.push_back(cur);
  bool found = false;
  for (std::size_t head = 0; head < bfsQueue_.size() && !found; ++head) {
    const NodeId n = bfsQueue_[head];
    for (int dir = 0; dir < deg && !found; ++dir) {
      const NodeId nb = topo_->neighbor(n, dir);
      if (nb < 0 || bfsPrevNode_[static_cast<std::size_t>(nb)] != -1) continue;
      const int link = topo_->linkIndex(n, dir);
      if (!linkAlive_[static_cast<std::size_t>(link)]) continue;
      bfsPrevNode_[static_cast<std::size_t>(nb)] = n;
      bfsPrevLink_[static_cast<std::size_t>(nb)] = link;
      bfsQueue_.push_back(nb);
      found = nb == dst;
    }
  }
  if (!found) {
    // No live path: park. Lossless semantics — the flight resumes from
    // this exact node when a heal reconnects it (a plan that partitions
    // the machine forever simply strands the messages that need the cut).
    ++parkedFlights_;
    if (tracer_) tracer_->instant(obs::kCatNet, cur, "park", dst);
    limbo_.push_back(f);
    return;
  }
  // Rewrite the rest of the route in place: keep the hops already
  // crossed (they position `cur`), splice the detour in reverse from dst.
  ++reroutedFlights_;
  if (tracer_) tracer_->instant(obs::kCatNet, cur, "detour", dst);
  f->path.truncate(f->idx);
  const std::size_t spliceAt = f->path.size();
  for (NodeId n = dst; n != cur; n = bfsPrevNode_[static_cast<std::size_t>(n)])
    f->path.push_back(Hop{bfsPrevLink_[static_cast<std::size_t>(n)], n});
  std::reverse(f->path.begin() + spliceAt, f->path.end());
  hop(f);  // the spliced next link is live; link state is static within an event
}

void Network::retryParked() {
  if (limbo_.empty()) return;
  std::vector<Flight*> parked;
  parked.swap(limbo_);
  const sim::Time now = engine_->now();
  for (Flight* f : parked) {
    f->headReady = std::max(f->headReady, now);
    rerouteOrPark(f);  // re-parks into limbo_ when still unreachable
  }
}

void Network::dispatchOrEnqueue(Message&& msg) {
  if (deliveryProbe_) deliveryProbe_(engine_->now(), msg.dst, msg.channel);
  if (msg.channel < handlerChannels_) {
    Handler& h = handlers_[slotOf(msg.dst, msg.channel)];
    if (h) {
      ++dispatchDepth_;  // guards the reference against table growth
      try {
        h(std::move(msg));
      } catch (...) {
        --dispatchDepth_;
        throw;
      }
      --dispatchDepth_;
      return;
    }
  }
  Mailbox& box = mailboxes_[mailboxSlot(msg.dst, msg.channel)];
  box.queue.push_back(std::move(msg));
  if (!box.waiters.empty()) {
    engine_->resumeAt(engine_->now(), box.waiters.take_front());
  }
}

sim::Task<Message> Network::recv(NodeId node, Channel channel) {
  // Plain function, not a coroutine: validates (node, channel) and grows
  // the mailbox table eagerly — a coroutine body would defer the check
  // (and its CheckError) until first resume inside the event loop.
  mailboxSlot(node, channel);
  return recvOn(*this, node, channel);
}

sim::Task<Message> Network::recvOn(Network& net, NodeId node, Channel channel) {
  // The Network first parameter routes this coroutine's frame into the
  // network-owned frame pool (see sim/task.hpp): mailbox-heavy loops call
  // recv once per message, and after warm-up those frames recycle instead
  // of hitting the heap.
  //
  // Hold (node, channel) and recompute the dense slot at every touch, not
  // a Mailbox reference or a cached slot index: the table may be resized
  // by other channels appearing — or re-strided by the machine growing —
  // while this coroutine is suspended. The Mailbox (queue and this
  // coroutine's waiter registration) moves as a unit, so recomputing the
  // one multiply-add re-finds it wherever it landed.
  while (net.mailboxes_[net.slotOf(node, channel)].queue.empty()) {
    struct WaitAwaiter {
      Network* net;
      NodeId node;
      Channel channel;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        net->mailboxes_[net->slotOf(node, channel)].waiters.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    co_await WaitAwaiter{&net, node, channel};
  }
  co_return net.mailboxes_[net.slotOf(node, channel)].queue.take_front();
}

// ---------------------------------------------------------------------------
// Structural reconfiguration (docs/faults.md "Reconfiguration")
// ---------------------------------------------------------------------------

void Network::ensureElastic(int line) {
  if (elastic_) return;
  const GraphSpec* g = topo_->graph();
  DIVA_CHECK_MSG(g != nullptr,
                 "structural reconfiguration requires a graph-backed topology; '"
                     << topo_->name() << "' cannot grow or shrink" << atLine(line));
  currentSpec_ = *g;
  currentSpec_.allowIsolated = true;
  elastic_ = true;
}

bool Network::membersConnectedWithout(NodeId dropNode, NodeId dropU,
                                      NodeId dropV) const {
  // BFS over currentSpec_'s edges (member↔member by construction — a
  // retiring node's edges were moved out) minus the dropped element.
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(currentSpec_.numNodes));
  for (const GraphSpec::Edge& e : currentSpec_.edges) {
    if (e.u == dropNode || e.v == dropNode) continue;
    if ((e.u == dropU && e.v == dropV) || (e.u == dropV && e.v == dropU)) continue;
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
  }
  NodeId start = -1;
  std::size_t want = 0;
  for (NodeId m : members_)
    if (m != dropNode) {
      if (start < 0) start = m;
      ++want;
    }
  if (want <= 1) return true;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(currentSpec_.numNodes), 0);
  std::vector<NodeId> queue{start};
  seen[static_cast<std::size_t>(start)] = 1;
  std::size_t reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head)
    for (NodeId nb : adj[static_cast<std::size_t>(queue[head])])
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = 1;
        ++reached;
        queue.push_back(nb);
      }
  return reached == want;
}

NodeId Network::addNode(NodeId anchor, double weight, double latency, int line) {
  ensureElastic(line);
  DIVA_CHECK_MSG(nodeMember(anchor), "add-node: anchor " << anchor
                                                         << " is not a member node"
                                                         << atLine(line));
  DIVA_CHECK_MSG(weight > 0.0 && latency > 0.0,
                 "add-node: edge weight and latency must be positive" << atLine(line));
  const NodeId id = currentSpec_.numNodes++;
  currentSpec_.edges.push_back(GraphSpec::Edge{anchor, id, weight, latency});
  nodeMember_.push_back(1);
  members_.push_back(id);
  scheduleReconfigNotify();
  return id;
}

void Network::removeNode(NodeId n, int line) {
  ensureElastic(line);
  DIVA_CHECK_MSG(nodeMember(n),
                 "remove-node: node " << n << " is not a member node" << atLine(line));
  DIVA_CHECK_MSG(members_.size() > 1, "remove-node: removing node "
                                          << n << " would empty the machine"
                                          << atLine(line));
  DIVA_CHECK_MSG(membersConnectedWithout(n, -1, -1),
                 "remove-node: removing node " << n << " would disconnect the machine"
                                               << atLine(line));
  // Membership (and with it the strategies' management state) changes now;
  // the node's links stay installed until commitReconfig() so in-flight
  // messages addressed to it still arrive.
  auto& edges = currentSpec_.edges;
  for (auto it = edges.begin(); it != edges.end();) {
    if (it->u == n || it->v == n) {
      retainedEdges_.push_back(*it);
      it = edges.erase(it);
    } else {
      ++it;
    }
  }
  nodeMember_[static_cast<std::size_t>(n)] = 0;
  members_.erase(std::find(members_.begin(), members_.end(), n));
  retiring_.push_back(n);
  scheduleReconfigNotify();
}

void Network::addLink(NodeId u, NodeId v, double weight, double latency, int line) {
  ensureElastic(line);
  DIVA_CHECK_MSG(nodeMember(u) && nodeMember(v) && u != v,
                 "add-link: endpoints " << u << " and " << v
                                        << " must be distinct member nodes"
                                        << atLine(line));
  DIVA_CHECK_MSG(weight > 0.0 && latency > 0.0,
                 "add-link: edge weight and latency must be positive" << atLine(line));
  for (const GraphSpec::Edge& e : currentSpec_.edges)
    DIVA_CHECK_MSG(!((e.u == u && e.v == v) || (e.u == v && e.v == u)),
                   "add-link: nodes " << u << " and " << v << " are already adjacent"
                                      << atLine(line));
  currentSpec_.edges.push_back(GraphSpec::Edge{u, v, weight, latency});
  scheduleReconfigNotify();
}

void Network::removeLink(NodeId u, NodeId v, int line) {
  ensureElastic(line);
  DIVA_CHECK_MSG(nodeMember(u) && nodeMember(v),
                 "remove-link: endpoints " << u << " and " << v
                                           << " must be member nodes" << atLine(line));
  auto& edges = currentSpec_.edges;
  auto it = std::find_if(edges.begin(), edges.end(), [&](const GraphSpec::Edge& e) {
    return (e.u == u && e.v == v) || (e.u == v && e.v == u);
  });
  DIVA_CHECK_MSG(it != edges.end(), "remove-link: nodes "
                                        << u << " and " << v << " are not adjacent"
                                        << atLine(line));
  DIVA_CHECK_MSG(membersConnectedWithout(-1, u, v),
                 "remove-link: cutting " << u << "—" << v
                                         << " would disconnect the machine"
                                         << atLine(line));
  edges.erase(it);
  scheduleReconfigNotify();
}

void Network::scheduleReconfigNotify() {
  if (notifyScheduled_) return;
  notifyScheduled_ = true;
  // One zero-delay event per instant: the queue is FIFO within a time, so
  // this fires after every structural event already scheduled at the
  // current instant — a grow-by-8 script triggers one rebuild and one
  // listener (decompose + migration) batch, not eight.
  engine_->scheduleAt(engine_->now(), [this] { deliverReconfig(); });
}

void Network::deliverReconfig() {
  notifyScheduled_ = false;
  // Routing during the handoff window uses the *transition* shape: the
  // logical target plus retiring nodes' retained edges.
  if (retainedEdges_.empty()) {
    targetTopo_.reset();  // transition == target
    installTopology(topo_->withGraph(currentSpec_));
  } else {
    GraphSpec transition = currentSpec_;
    transition.edges.insert(transition.edges.end(), retainedEdges_.begin(),
                            retainedEdges_.end());
    std::unique_ptr<Topology> target = topo_->withGraph(currentSpec_);
    installTopology(topo_->withGraph(std::move(transition)));
    targetTopo_ = std::move(target);
  }
  ++reconfigEpoch_;
  if (tracer_ && tracer_->on(obs::kCatReconfig)) {
    // Epoch span: delivery of the new shape to the quiescent commit. An
    // add-only epoch has no handoff window — it is complete at delivery.
    tracer_->beginAsync(obs::kCatReconfig, obs::Tracer::kMachineTrack, "epoch",
                        reconfigEpoch_);
    if (retainedEdges_.empty())
      tracer_->endAsync(obs::kCatReconfig, obs::Tracer::kMachineTrack, "epoch",
                        reconfigEpoch_);
    else
      openEpochSpans_.push_back(reconfigEpoch_);
  }
  for (const ReconfigListener& fn : reconfigListeners_)
    if (fn) fn();
}

void Network::commitReconfig() {
  DIVA_CHECK_MSG(!notifyScheduled_,
                 "commitReconfig before the reconfiguration epoch was delivered");
  if (retainedEdges_.empty()) return;
  DIVA_CHECK(targetTopo_ != nullptr);
  if (tracer_) {
    for (const std::int64_t id : openEpochSpans_)
      tracer_->endAsync(obs::kCatReconfig, obs::Tracer::kMachineTrack, "epoch", id);
  }
  openEpochSpans_.clear();
  retainedEdges_.clear();
  retiring_.clear();
  // Install the very topology object strategies decomposed at the epoch —
  // their new trees must stay valid, and a tree must not outlive the
  // topology that built it.
  installTopology(std::move(targetTopo_));
}

void Network::installTopology(std::unique_ptr<Topology> built) {
  DIVA_CHECK_MSG(built != nullptr, "topology rebuild failed");
  DIVA_CHECK_MSG(dispatchDepth_ == 0,
                 "cannot reconfigure the machine from inside a handler");
  const Topology* old = topo_;
  const std::size_t oldN = numNodes_;
  const int oldSlots = old->numLinkSlots();
  const int newSlots = built->numLinkSlots();

  // Link identity across the swap is the directed endpoint pair: carry
  // FIFO backlog (linkFreeAt_), liveness and degrade multipliers for
  // surviving links; fresh links start nominal, free and alive.
  std::unordered_map<std::uint64_t, int> newSlotOfPair;
  newSlotOfPair.reserve(static_cast<std::size_t>(newSlots));
  for (NodeId n = 0; n < built->numNodes(); ++n)
    for (int dir = 0; dir < built->degree(); ++dir) {
      const NodeId nb = built->neighbor(n, dir);
      if (nb >= 0) newSlotOfPair.emplace(pairKey(n, nb), built->linkIndex(n, dir));
    }
  std::vector<int> oldToNew(static_cast<std::size_t>(oldSlots), -1);
  for (NodeId n = 0; n < static_cast<NodeId>(oldN); ++n)
    for (int dir = 0; dir < old->degree(); ++dir) {
      const NodeId nb = old->neighbor(n, dir);
      if (nb < 0) continue;
      const auto it = newSlotOfPair.find(pairKey(n, nb));
      if (it != newSlotOfPair.end())
        oldToNew[static_cast<std::size_t>(old->linkIndex(n, dir))] = it->second;
    }
  std::vector<sim::Time> freeAt(static_cast<std::size_t>(newSlots), sim::kTimeZero);
  std::vector<double> usPerByte(static_cast<std::size_t>(newSlots));
  std::vector<double> hopLatency(static_cast<std::size_t>(newSlots));
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(newSlots), 1);
  for (int l = 0; l < newSlots; ++l) {
    usPerByte[static_cast<std::size_t>(l)] = built->linkWeight(l) / cost_.bytesPerUs;
    hopLatency[static_cast<std::size_t>(l)] =
        built->linkLatency(l) * cost_.hopLatencyUs;
  }
  for (int l = 0; l < oldSlots; ++l) {
    const int nl = oldToNew[static_cast<std::size_t>(l)];
    if (nl < 0) continue;
    freeAt[static_cast<std::size_t>(nl)] = linkFreeAt_[static_cast<std::size_t>(l)];
    usPerByte[static_cast<std::size_t>(nl)] =
        linkUsPerByte_[static_cast<std::size_t>(l)];  // keeps degrade multipliers
    hopLatency[static_cast<std::size_t>(nl)] =
        linkHopLatencyUs_[static_cast<std::size_t>(l)];
    alive[static_cast<std::size_t>(nl)] = linkAlive_[static_cast<std::size_t>(l)];
  }
  linkFreeAt_ = std::move(freeAt);
  linkUsPerByte_ = std::move(usPerByte);
  linkHopLatencyUs_ = std::move(hopLatency);
  linkAlive_ = std::move(alive);
  stats_->remap(oldToNew, newSlots);

  const std::size_t newN = static_cast<std::size_t>(built->numNodes());
  if (newN != oldN) {
    DIVA_CHECK(newN > oldN);  // ids are append-only; removal only retires
    cpuFreeAt_.resize(newN, sim::kTimeZero);
    nodeAlive_.resize(newN, 1);
    liveNodes_ += static_cast<int>(newN - oldN);
    // Dense dispatch slots are channel * numNodes + node: a larger node
    // stride moves every Mailbox/Handler. Safe here — no handler is
    // executing, and suspended recv coroutines re-derive their slot from
    // (node, channel) at every touch.
    restrideTable(handlers_, oldN, newN, handlerChannels_);
    restrideTable(mailboxes_, oldN, newN, mailboxChannels_);
  }
  topo_ = built.get();
  ownedTopos_.push_back(std::move(built));
  numNodes_ = newN;
  ++topoEpoch_;
  retryParked();  // new links may reconnect parked flights
}

int Network::addReconfigListener(ReconfigListener fn) {
  reconfigListeners_.push_back(std::move(fn));
  return static_cast<int>(reconfigListeners_.size()) - 1;
}

void Network::removeReconfigListener(int token) {
  DIVA_CHECK(token >= 0 && static_cast<std::size_t>(token) < reconfigListeners_.size());
  reconfigListeners_[static_cast<std::size_t>(token)] = nullptr;
}

}  // namespace diva::net
