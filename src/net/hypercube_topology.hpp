#pragma once

#include <memory>
#include <vector>

#include "net/topology.hpp"

namespace diva::net {

/// Cluster tree of a hypercube: subcube decomposition. Splitting always
/// fixes the highest free dimension, so every cluster is a contiguous
/// range of node ids [base, base + 2^freeDims) and the canonical leaf
/// order is the numeric node order. ℓ-ary trees fix log2(ℓ) dimensions
/// per level; the ℓ-k-ary variants terminate at subcubes of ≤ k nodes
/// with one child per processor, exactly mirroring the mesh decomposition.
class HypercubeClusterTree final : public ClusterTree {
 public:
  HypercubeClusterTree(int dims, DecompParams params);

  NodeId hostOf(int treeNode, std::uint64_t varKey, EmbeddingKind kind,
                std::uint64_t seed) const override;

 private:
  struct Cube {
    NodeId base = 0;
    int freeDims = 0;  ///< cluster = ids [base, base + 2^freeDims)
  };

  int build(const Cube& cube, int parent, int indexInParent, int depth,
            const DecompParams& params);
  static void expandChildren(const Cube& cube, int levels, std::vector<Cube>& out);

  int dims_;
  std::vector<Cube> cubes_;  ///< parallel to nodes_
};

/// d-dimensional hypercube (2^d nodes, node ids are coordinate bit
/// strings). Direction slot i is the link flipping bit i. Routing is
/// e-cube (dimension-order): correct differing bits from dimension 0
/// upward — the deterministic shortest path, one bit flip per hop.
class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(int dims);

  int dims() const { return dims_; }

  TopologyKind kind() const override { return TopologyKind::Hypercube; }
  TopologySpec spec() const override { return TopologySpec::hypercube(dims_); }
  int numNodes() const override { return 1 << dims_; }
  int degree() const override { return dims_; }

  NodeId neighbor(NodeId n, int dir) const override {
    if (dir < 0 || dir >= dims_) return -1;
    return n ^ (NodeId{1} << dir);
  }

  NodeId nextHop(NodeId from, NodeId to) const override;
  int distance(NodeId a, NodeId b) const override;
  void appendRoute(NodeId from, NodeId to, RouteVec& out) const override;

  std::unique_ptr<ClusterTree> decompose(DecompParams params) const override {
    return std::make_unique<HypercubeClusterTree>(dims_, params);
  }

 private:
  int dims_;
};

}  // namespace diva::net
