#pragma once

#include <memory>
#include <vector>

#include "net/graph_topology.hpp"

namespace diva::net {

/// Hierarchical (landmark-ball) routing for general graphs — the sparse
/// alternative to GraphTopology's dense all-pairs tables. Dense tables
/// are O(n²) memory and startup, which caps machines at a few thousand
/// nodes; this topology stores O(n·depth)-ish routing state and scales to
/// `kMaxGraphNodes` (the 100k-node scenarios in scenarios/).
///
/// Scheme (docs/routing.md has the full story and the measured stretch):
/// an internal cluster tree of arity `routingArity` decomposes the graph
/// (the same recursive bisection strategies use). Every tree node C gets
///  - a *landmark* ℓ_C: a pseudo-center of C's cluster (double-BFS
///    midpoint over the cluster-restricted subgraph; the single member at
///    leaves),
///  - a *ball*: the nodes popped by a deterministic Dijkstra around ℓ_C,
///    each remembering its first-hop direction toward ℓ_C, HARD-capped
///    at max(kBallMinEntries, kBallEntryFactor × |C|) entries (on
///    expanders ball population grows exponentially with radius, so any
///    reach-based rule degenerates to Θ(n) per ball), and
///  - a *spine path*: the shortest path ℓ_parent(C) → ℓ_C, whose nodes
///    are injected into C's ball with along-path directions (prefix
///    directions win on overlap). The root's ball is the full
///    shortest-path tree.
///
/// A message to `dst` carries (implicitly, recomputed per hop) the
/// ancestor chain of dst's leaf. At node x the router picks the deepest
/// chain cluster whose ball contains x and hops toward its landmark.
/// Liveness: spine directions strictly decrease the along-path distance
/// to ℓ_C and hand over to the Dijkstra prefix at latest at ℓ_C itself;
/// prefix directions strictly decrease the true distance and never leave
/// the prefix (pop-order persistence). And since the injected spine
/// starts at ℓ_parent(C), arriving at a landmark always reveals the
/// next-deeper chain ball. The pair (chain depth, distance-to-landmark)
/// therefore decreases lexicographically every hop. Routes are *not*
/// shortest paths — the differential suite (tests/hier_routing_test.cpp)
/// bounds the measured stretch against the dense Dijkstra oracle.
///
/// The Topology contract holds: appendRoute/nextHop/distance agree with
/// each other, routes are deterministic and allocation-free; only the
/// "routes are shortest" guarantee of the closed-form shapes is relaxed.
class HierGraphTopology final : public Topology {
 public:
  /// Validates the spec and builds landmarks + balls; throws CheckError
  /// on invalid specs or a disconnected graph. `routingArity` ∈ {2,4,16}
  /// is the internal tree's arity (16 = shallow chains, the default); it
  /// is independent of the arity strategies later pass to decompose().
  explicit HierGraphTopology(std::shared_ptr<const GraphSpec> spec, int routingArity = 16,
                             std::shared_ptr<const GraphPartitioner> partitioner = nullptr);
  explicit HierGraphTopology(GraphSpec spec, int routingArity = 16,
                             std::shared_ptr<const GraphPartitioner> partitioner = nullptr)
      : HierGraphTopology(std::make_shared<const GraphSpec>(std::move(spec)), routingArity,
                          std::move(partitioner)) {}

  /// Ball sizing: a hard cap of kBallEntryFactor × |cluster| entries
  /// (≥ kBallMinEntries) per ball. Memory is Θ(n · kBallEntryFactor ·
  /// depth + n · kBallMinEntries / leafSize) in total; raising the
  /// constants buys stretch on small graphs at a linear memory cost.
  static constexpr int kBallEntryFactor = 12;
  static constexpr int kBallMinEntries = 256;
  /// Spine paths for internally disconnected clusters: up to this many
  /// graph nodes they come from an exact early-exit Dijkstra (the
  /// differential-corpus regime, where stretch is measured against the
  /// dense oracle); beyond it, from the root-SPT tree path through the
  /// LCA — O(path length) instead of a Θ(n)-pop search per child, which
  /// is what keeps 100k-node construction near-linear.
  static constexpr int kExactSpineMaxNodes = 4096;
  /// Ancestor chains are walked on the per-message hot path from a fixed
  /// stack buffer; 64 levels covers a 2-ary tree over kMaxGraphNodes.
  static constexpr int kMaxChainDepth = 64;

  TopologyKind kind() const override { return TopologyKind::Graph; }
  TopologySpec spec() const override;
  int numNodes() const override { return adj_.numNodes; }
  int degree() const override { return adj_.degree; }

  NodeId neighbor(NodeId n, int dir) const override {
    if (dir < 0 || dir >= adj_.degree) return -1;
    return adj_.neighbor(n, dir);
  }

  NodeId nextHop(NodeId from, NodeId to) const override;

  /// Hop count of the deterministic *hierarchical* route — consistent
  /// with appendRoute, ≥ the shortest-path distance. Computed by walking
  /// the route (tests/analysis; not a hot-path query).
  int distance(NodeId a, NodeId b) const override;

  void appendRoute(NodeId from, NodeId to, RouteVec& out) const override;

  double linkWeight(int link) const override { return adj_.weightOfSlot[link]; }
  double linkLatency(int link) const override { return adj_.latencyOfSlot[link]; }

  std::unique_ptr<ClusterTree> decompose(DecompParams params) const override {
    return std::make_unique<GraphClusterTree>(*this, params, *partitioner_);
  }

  const GraphSpec& graphSpec() const { return *spec_; }
  int routingArity() const { return routingArity_; }

  // Structural reconfiguration (docs/faults.md): the Network edits a copy
  // of the current graph and asks for a rebuilt topology of the same kind.
  const GraphSpec* graph() const override { return spec_.get(); }
  std::unique_ptr<Topology> withGraph(GraphSpec g) const override {
    return std::make_unique<HierGraphTopology>(std::move(g), routingArity_, partitioner_);
  }

  // -- Introspection for the differential tests, benches and docs --------

  /// The internal routing tree (distinct from any decompose() result).
  const GraphClusterTree& routingTree() const { return *tree_; }
  NodeId landmarkOf(int treeNode) const { return landmark_[treeNode]; }
  std::size_t ballSize(int treeNode) const {
    return static_cast<std::size_t>(ballBegin_[treeNode + 1] - ballBegin_[treeNode]);
  }
  bool ballContains(int treeNode, NodeId node) const { return findDir(treeNode, node) >= -1; }
  /// Total ball entries across all tree nodes — the sparse-state size the
  /// memory-vs-n table in docs/routing.md reports.
  std::size_t totalBallEntries() const { return ball_.size(); }
  /// Approximate bytes of routing state (balls + offsets + landmarks).
  std::size_t routingBytes() const;

 private:
  struct BallEntry {
    NodeId node;
    std::int16_t dir;  ///< first-hop direction toward the landmark; -1 at it
  };

  void buildLandmarks();
  void buildBalls();
  /// One cluster-restricted Dijkstra per internal tree node, extracting
  /// each child's shortest ℓ_parent → ℓ_child path into `spine`; an
  /// internally disconnected cluster falls back to the root-SPT tree
  /// path through the LCA (any simple path keeps routing live).
  void buildSpinePaths(std::vector<std::vector<NodeId>>& spine,
                       const std::vector<NodeId>& sptParent,
                       const std::vector<std::uint32_t>& sptDepth);
  /// Bounded deterministic Dijkstra around `lm` appending pop-order
  /// entries to ball_. A non-null [clusterBegin, clusterEnd) (sorted)
  /// restricts the search to those nodes; `stopAt` ≥ 0 ends the search
  /// right after that node pops.
  void growBall(NodeId lm, std::size_t entryCap, const NodeId* clusterBegin,
                const NodeId* clusterEnd, NodeId stopAt);
  /// Reads the last search's scratch: the src→dst path, both inclusive.
  std::vector<NodeId> backtrackPath(NodeId src, NodeId dst) const;
  /// Direction stored for `node` in `treeNode`'s ball, -1 at the landmark
  /// itself, -2 when the node is outside the ball.
  int findDir(int treeNode, NodeId node) const;
  /// Fills `chain` deepest-first with the ancestors of dst's leaf;
  /// returns the chain length.
  int chainOf(NodeId dst, int* chain) const;
  int dirTowardChain(NodeId cur, const int* chain, int chainLen) const;

  std::shared_ptr<const GraphSpec> spec_;
  std::shared_ptr<const GraphPartitioner> partitioner_;
  int routingArity_;
  GraphAdjacency adj_;
  std::unique_ptr<GraphClusterTree> tree_;
  std::vector<NodeId> landmark_;        ///< per tree node
  std::vector<BallEntry> ball_;         ///< all balls, each sorted by node id
  std::vector<std::uint64_t> ballBegin_;  ///< per tree node; [i, i+1) slices ball_

  // Dijkstra scratch, versioned so per-ball reset is O(1) not O(n).
  std::vector<double> dist_;
  std::vector<std::uint32_t> hop_;
  std::vector<std::int16_t> dirToLm_;
  std::vector<std::uint32_t> ver_;
  std::uint32_t epoch_ = 0;
};

}  // namespace diva::net
