#include "net/fault.hpp"

#include "net/network.hpp"
#include "support/check.hpp"

namespace diva::net {

const char* faultKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::LinkDown: return "link-down";
    case FaultEvent::Kind::LinkUp: return "link-up";
    case FaultEvent::Kind::NodeDown: return "node-down";
    case FaultEvent::Kind::NodeUp: return "node-up";
    case FaultEvent::Kind::Degrade: return "degrade";
    case FaultEvent::Kind::AddNode: return "add-node";
    case FaultEvent::Kind::RemoveNode: return "remove-node";
    case FaultEvent::Kind::AddLink: return "add-link";
    case FaultEvent::Kind::RemoveLink: return "remove-link";
  }
  return "?";
}

void applyFault(Network& net, const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultEvent::Kind::LinkDown: net.setLinkUp(ev.a, ev.b, false); return;
    case FaultEvent::Kind::LinkUp: net.setLinkUp(ev.a, ev.b, true); return;
    case FaultEvent::Kind::NodeDown: net.setNodeUp(ev.a, false); return;
    case FaultEvent::Kind::NodeUp: net.setNodeUp(ev.a, true); return;
    case FaultEvent::Kind::Degrade:
      net.degradeLink(ev.a, ev.b, ev.weightMul, ev.latencyMul);
      return;
    case FaultEvent::Kind::AddNode:
      net.addNode(ev.a, ev.weightMul, ev.latencyMul, ev.line);
      return;
    case FaultEvent::Kind::RemoveNode: net.removeNode(ev.a, ev.line); return;
    case FaultEvent::Kind::AddLink:
      net.addLink(ev.a, ev.b, ev.weightMul, ev.latencyMul, ev.line);
      return;
    case FaultEvent::Kind::RemoveLink: net.removeLink(ev.a, ev.b, ev.line); return;
  }
  DIVA_CHECK_MSG(false, "unknown fault kind");
}

void scheduleFaultPlan(sim::Engine& engine, Network& net, const FaultPlan& plan,
                       sim::Time base) {
  for (const FaultEvent& ev : plan) {
    DIVA_CHECK_MSG(ev.offsetUs >= 0.0, "fault '" << faultKindName(ev.kind)
                                                 << "' has negative offset "
                                                 << ev.offsetUs);
    engine.scheduleAt(base + ev.offsetUs, [&net, ev] { applyFault(net, ev); });
  }
}

}  // namespace diva::net
