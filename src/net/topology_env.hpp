#pragma once

#include <string>

#include "net/topology.hpp"

namespace diva::net {

/// Build a TopologySpec from a human-readable shape name over a
/// rows×cols processor arrangement (P = rows·cols):
///
///   mesh2d | torus2d    — the 2-D grids (any rows×cols)
///   hypercube           — P must be a power of two
///   ring | star         — generated graphs on P nodes
///   random-regular      — random 3-connected-style 4-regular graph on P
///                         nodes (seed 1, the benches' shape)
///   graph:<path>        — arbitrary graph loaded from a graph file; its
///                         node count comes from the file, not rows·cols
///   hier-<graph name>   — any graph shape above under hierarchical
///                         landmark-ball routing (arity-16 routing tree;
///                         docs/routing.md), e.g. hier-random-regular or
///                         hier-graph:<path> — sparse routing state that
///                         scales past the dense 4096-node table cap
///
/// Callers whose application is grid-structured pass requireGrid = true
/// and get a fail-fast CheckError on non-grid names. Throws CheckError on
/// unknown names and impossible sizes.
TopologySpec topologyByName(const std::string& name, int rows, int cols,
                            bool requireGrid = false);

/// `topologyByName` on the DIVA_TOPOLOGY environment variable — the one
/// shape knob shared by the figure benches, the examples and the scenario
/// runner. When the variable is unset/empty, `defaultName` decides (a
/// scenario's `topology` directive lands here); when that is empty too,
/// "mesh2d".
TopologySpec topologyFromEnv(int rows, int cols, bool requireGrid = false,
                             const std::string& defaultName = "");

}  // namespace diva::net
