#pragma once

#include <string>

#include "net/topology.hpp"

namespace diva::net {

/// Build a TopologySpec from a human-readable shape name over a
/// rows×cols processor arrangement (P = rows·cols):
///
///   mesh2d | torus2d    — the 2-D grids (any rows×cols)
///   hypercube           — P must be a power of two
///   ring | star         — generated graphs on P nodes
///   random-regular      — random 3-connected-style 4-regular graph on P
///                         nodes (seed 1, the benches' shape)
///   graph:<path>        — arbitrary graph loaded from a graph file; its
///                         node count comes from the file, not rows·cols
///
/// Callers whose application is grid-structured pass requireGrid = true
/// and get a fail-fast CheckError on non-grid names. Throws CheckError on
/// unknown names and impossible sizes.
TopologySpec topologyByName(const std::string& name, int rows, int cols,
                            bool requireGrid = false);

/// `topologyByName` on the DIVA_TOPOLOGY environment variable (default
/// "mesh2d" when unset/empty) — the one shape knob shared by the figure
/// benches, the examples and the scenario runner.
TopologySpec topologyFromEnv(int rows, int cols, bool requireGrid = false);

}  // namespace diva::net
