#include "net/hier_routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

namespace diva::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

HierGraphTopology::HierGraphTopology(std::shared_ptr<const GraphSpec> spec,
                                     int routingArity,
                                     std::shared_ptr<const GraphPartitioner> partitioner)
    : spec_(std::move(spec)),
      partitioner_(std::move(partitioner)),
      routingArity_(routingArity) {
  DIVA_CHECK_MSG(spec_ != nullptr, "HierGraphTopology requires a GraphSpec");
  DIVA_CHECK_MSG(routingArity_ == 2 || routingArity_ == 4 || routingArity_ == 16,
                 "hierarchical routing arity must be 2, 4 or 16 (got " << routingArity_
                                                                       << ")");
  if (!partitioner_) partitioner_ = std::make_shared<BfsBisectionPartitioner>();
  adj_ = GraphAdjacency(*spec_);
  // The routing tree sees this topology through the base interface, which
  // only needs the adjacency built above — routing state comes after.
  tree_ = std::make_unique<GraphClusterTree>(*this, DecompParams{routingArity_, 1},
                                             *partitioner_);
  DIVA_CHECK_MSG(tree_->maxDepth() + 1 <= kMaxChainDepth,
                 "routing tree deeper than " << kMaxChainDepth << " levels");
  buildLandmarks();
  buildBalls();
}

TopologySpec HierGraphTopology::spec() const {
  return TopologySpec::hierGraph(spec_, routingArity_);
}

// ---------------------------------------------------------------------------
// Landmarks: double-BFS pseudo-center of each cluster
// ---------------------------------------------------------------------------

void HierGraphTopology::buildLandmarks() {
  const int tn = tree_->numNodes();
  landmark_.assign(static_cast<std::size_t>(tn), -1);
  // Cluster-local scratch (same O(|cluster|) discipline as the
  // partitioner): maps instead of machine-sized arrays.
  std::unordered_map<NodeId, int> depth;
  std::unordered_map<NodeId, NodeId> parent;
  std::queue<NodeId> q;
  for (int i = 0; i < tn; ++i) {
    const std::vector<NodeId>& mem = tree_->members(i);
    if (mem.size() == 1) {
      landmark_[i] = mem.front();
      continue;
    }
    auto inCluster = [&](NodeId v) {
      return std::binary_search(mem.begin(), mem.end(), v);
    };
    // BFS over the cluster-restricted subgraph; returns the farthest
    // reached node (ties to the lowest id).
    auto bfs = [&](NodeId src, bool trackParent) {
      depth.clear();
      parent.clear();
      depth.emplace(src, 0);
      q.push(src);
      NodeId far = src;
      int farD = 0;
      while (!q.empty()) {
        const NodeId u = q.front();
        q.pop();
        const int du = depth.find(u)->second;
        if (du > farD || (du == farD && u < far)) {
          far = u;
          farD = du;
        }
        for (int dir = 0; dir < adj_.degree; ++dir) {
          const NodeId v = adj_.neighbor(u, dir);
          if (v < 0) break;  // GraphAdjacency slots are packed
          if (!inCluster(v) || !depth.emplace(v, du + 1).second) continue;
          if (trackParent) parent.emplace(v, u);
          q.push(v);
        }
      }
      return far;
    };
    const NodeId u = bfs(mem.front(), false);
    if (depth.size() != mem.size()) {
      // The cluster is internally disconnected (its halves only meet
      // outside it) — no center exists; fall back to the lowest id.
      landmark_[i] = mem.front();
      continue;
    }
    NodeId w = bfs(u, true);
    // Walk halfway back along the u–w path: the midpoint of (an
    // approximation of) the cluster diameter, i.e. a pseudo-center.
    for (int step = depth.find(w)->second / 2; step > 0; --step)
      w = parent.find(w)->second;
    landmark_[i] = w;
  }
}

// ---------------------------------------------------------------------------
// Balls: bounded deterministic Dijkstra around each landmark
// ---------------------------------------------------------------------------

void HierGraphTopology::growBall(NodeId lm, std::size_t entryCap, const NodeId* clusterBegin,
                                 const NodeId* clusterEnd, NodeId stopAt) {
  const int deg = adj_.degree;
  const NodeId* adj = adj_.adj.data();
  const double* weightOf = adj_.weightOfSlot.data();
  ++epoch_;
  auto touch = [&](NodeId v) {
    if (ver_[v] != epoch_) {
      ver_[v] = epoch_;
      dist_[v] = kInf;
      hop_[v] = 0;
      dirToLm_[v] = -1;
    }
  };
  auto inScope = [&](NodeId v) {
    return clusterBegin == nullptr || std::binary_search(clusterBegin, clusterEnd, v);
  };

  using QEntry = std::pair<double, NodeId>;  // pops by (distance, node id)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> queue;
  touch(lm);
  dist_[lm] = 0.0;
  queue.push({0.0, lm});

  const std::size_t firstEntry = ball_.size();
  while (!queue.empty()) {
    const auto [du, u] = queue.top();
    queue.pop();
    if (du > dist_[u]) continue;  // stale entry
    // The ball is a prefix of the deterministic pop order, so every
    // node's next hop toward the landmark (its parent, popped strictly
    // earlier) is also in the ball — the persistence property routing
    // relies on. The cap is HARD: on expanders ball population grows
    // exponentially with radius, so reachability of anything outside the
    // prefix is the spine paths' job (buildBalls), never the prefix's.
    if (ball_.size() - firstEntry >= entryCap) break;
    ball_.push_back(BallEntry{u, dirToLm_[u]});
    if (u == stopAt) break;
    for (int dir = 0; dir < deg; ++dir) {
      const NodeId v = adj[static_cast<std::size_t>(u) * deg + dir];
      if (v < 0) break;
      if (v == lm || !inScope(v)) continue;
      touch(v);
      // Same deterministic tie-breaking as the dense tables: strictly
      // shorter, else fewer hops, else the lowest-id next hop.
      const double cand = dist_[u] + weightOf[static_cast<std::size_t>(u) * deg + dir];
      const std::uint32_t candHops = hop_[u] + 1;
      const bool strictly = cand < dist_[v];
      bool better = strictly;
      if (!better && cand == dist_[v]) {
        if (candHops < hop_[v]) {
          better = true;
        } else if (candHops == hop_[v] && dirToLm_[v] >= 0) {
          better = u < adj[static_cast<std::size_t>(v) * deg + dirToLm_[v]];
        }
      }
      if (!better) continue;
      dist_[v] = cand;
      hop_[v] = candHops;
      const NodeId* vAdj = adj + static_cast<std::size_t>(v) * deg;
      int vd = 0;
      while (vAdj[vd] != u) ++vd;
      dirToLm_[v] = static_cast<std::int16_t>(vd);
      if (strictly) queue.push({cand, v});
    }
  }
}

std::vector<NodeId> HierGraphTopology::backtrackPath(NodeId src, NodeId dst) const {
  // dirToLm_ holds, for every node the last search touched, the first-hop
  // direction toward that search's source; walking it from dst yields the
  // dst→src path, reversed here to src→dst.
  std::vector<NodeId> path;
  for (NodeId v = dst; v != src; v = adj_.neighbor(v, dirToLm_[v])) path.push_back(v);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

void HierGraphTopology::buildSpinePaths(std::vector<std::vector<NodeId>>& spine,
                                        const std::vector<NodeId>& sptParent,
                                        const std::vector<std::uint32_t>& sptDepth) {
  // One cluster-restricted Dijkstra per internal tree node, from its
  // landmark: extracts, for each child C, the shortest path
  // landmark(parent) → landmark(C). Restricting the search to the
  // parent's cluster keeps the total work O(Σ|cluster|) = O(n · depth).
  // A cluster whose halves only meet outside it (internally
  // disconnected — common for the leftover half of a BFS bisection on
  // expanders) falls back to the unique root-SPT tree path via the LCA:
  // O(path length), never a graph search — a per-child whole-graph
  // search here is what made construction quadratic at 100k nodes.
  const int tn = tree_->numNodes();
  std::vector<std::vector<std::int32_t>> kids(static_cast<std::size_t>(tn));
  for (int i = 0; i < tn; ++i)
    if (tree_->parent(i) >= 0) kids[static_cast<std::size_t>(tree_->parent(i))].push_back(i);

  auto lcaPath = [&](NodeId a, NodeId b) {
    std::vector<NodeId> up, down;
    NodeId x = a, y = b;
    while (sptDepth[x] > sptDepth[y]) up.push_back(x), x = sptParent[x];
    while (sptDepth[y] > sptDepth[x]) down.push_back(y), y = sptParent[y];
    while (x != y) {
      up.push_back(x), x = sptParent[x];
      down.push_back(y), y = sptParent[y];
    }
    up.push_back(x);  // the LCA
    up.insert(up.end(), down.rbegin(), down.rend());
    return up;
  };

  const bool exactFallback = adj_.numNodes <= kExactSpineMaxNodes;
  const std::size_t unbounded = std::numeric_limits<std::size_t>::max();
  std::vector<std::int32_t> missing;
  for (int p = 0; p < tn; ++p) {
    if (kids[static_cast<std::size_t>(p)].empty()) continue;
    const std::vector<NodeId>& mem = tree_->members(p);
    // A throwaway prefix: we only want the scratch arrays (dist/dir)
    // filled for the whole cluster, not ball entries.
    const std::size_t mark = ball_.size();
    growBall(landmark_[p], unbounded, mem.data(), mem.data() + mem.size(), -1);
    ball_.resize(mark);
    // Snapshot every reached child before any fallback search clobbers
    // this cluster's scratch.
    missing.clear();
    for (std::int32_t c : kids[static_cast<std::size_t>(p)]) {
      const NodeId target = landmark_[c];
      if (ver_[target] == epoch_ && dist_[target] < kInf)
        spine[static_cast<std::size_t>(c)] = backtrackPath(landmark_[p], target);
      else
        missing.push_back(c);
    }
    for (std::int32_t c : missing) {
      const NodeId target = landmark_[c];
      if (exactFallback) {
        growBall(landmark_[p], unbounded, nullptr, nullptr, target);
        ball_.resize(mark);
        DIVA_CHECK_MSG(ver_[target] == epoch_ && dist_[target] < kInf,
                       "no path from landmark " << landmark_[p] << " to landmark "
                                                << target << " — graph '" << spec_->name
                                                << "' is not connected");
        spine[static_cast<std::size_t>(c)] = backtrackPath(landmark_[p], target);
      } else {
        spine[static_cast<std::size_t>(c)] = lcaPath(landmark_[p], target);
      }
    }
  }
}

void HierGraphTopology::buildBalls() {
  const int n = adj_.numNodes;
  const int tn = tree_->numNodes();
  dist_.assign(static_cast<std::size_t>(n), kInf);
  hop_.assign(static_cast<std::size_t>(n), 0);
  dirToLm_.assign(static_cast<std::size_t>(n), -1);
  ver_.assign(static_cast<std::size_t>(n), 0);

  ball_.clear();
  ballBegin_.assign(static_cast<std::size_t>(tn) + 1, 0);

  // Root first (tree node 0): the full shortest-path tree, doubling as
  // the connectivity check and as the LCA structure spine fallbacks use.
  DIVA_CHECK_MSG(tree_->parent(0) < 0, "routing tree root is not node 0");
  const std::size_t unbounded = std::numeric_limits<std::size_t>::max();
  growBall(landmark_[0], unbounded, nullptr, nullptr, -1);
  // A reconfigured (allowIsolated) spec keeps retired, edgeless ids in the
  // node range; connectivity is required only of the attached nodes.
  std::size_t attached = static_cast<std::size_t>(n);
  if (spec_->allowIsolated) {
    attached = 0;
    for (NodeId v = 0; v < n; ++v)
      if (adj_.degree > 0 && adj_.neighbor(v, 0) >= 0) ++attached;
    if (attached == 0) attached = static_cast<std::size_t>(n);  // edgeless machine
  }
  DIVA_CHECK_MSG(ball_.size() == attached,
                 "graph '" << spec_->name << "' is not connected (root ball reached "
                           << ball_.size() << " of " << attached << " nodes)");
  std::vector<NodeId> sptParent(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> sptDepth(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    sptParent[v] = dirToLm_[v] < 0 ? v : adj_.neighbor(v, dirToLm_[v]);
    sptDepth[v] = hop_[v];
  }
  std::sort(ball_.begin(), ball_.end(),
            [](const BallEntry& a, const BallEntry& b) { return a.node < b.node; });
  ballBegin_[1] = ball_.size();

  // Spine paths next (they clobber the same scratch the balls use).
  std::vector<std::vector<NodeId>> spine(static_cast<std::size_t>(tn));
  buildSpinePaths(spine, sptParent, sptDepth);
  sptParent = {};
  sptDepth = {};

  for (int i = 1; i < tn; ++i) {
    const NodeId lm = landmark_[i];
    const std::size_t cap = static_cast<std::size_t>(std::max(
        kBallMinEntries, kBallEntryFactor * static_cast<int>(tree_->members(i).size())));
    const std::size_t first = ball_.size();
    growBall(lm, cap, nullptr, nullptr, -1);
    std::sort(ball_.begin() + static_cast<std::ptrdiff_t>(first), ball_.end(),
              [](const BallEntry& a, const BallEntry& b) { return a.node < b.node; });
    // Inject the spine path (parent's landmark → lm): nodes not already
    // in the prefix get the along-path direction toward lm. This is what
    // restores ball(C) ∋ landmark(parent(C)) — the invariant the chain
    // induction needs — without the prefix having to reach that far.
    const std::vector<NodeId>& path = spine[static_cast<std::size_t>(i)];
    const std::size_t sorted = ball_.size();
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      const NodeId v = path[j];
      const NodeId next = path[j + 1];
      const auto* b = ball_.data() + first;
      const auto* e = ball_.data() + sorted;
      const auto* it = std::lower_bound(
          b, e, v, [](const BallEntry& a, NodeId x) { return a.node < x; });
      if (it != e && it->node == v) continue;  // prefix direction wins
      const NodeId* vAdj = adj_.adj.data() + static_cast<std::size_t>(v) * adj_.degree;
      int vd = 0;
      while (vAdj[vd] != next) ++vd;
      ball_.push_back(BallEntry{v, static_cast<std::int16_t>(vd)});
    }
    std::sort(ball_.begin() + static_cast<std::ptrdiff_t>(first), ball_.end(),
              [](const BallEntry& a, const BallEntry& b) { return a.node < b.node; });
    ballBegin_[i + 1] = ball_.size();
  }
  // The per-ball Dijkstra scratch is construction-only state.
  dist_ = {};
  hop_ = {};
  dirToLm_ = {};
  ver_ = {};
}

std::size_t HierGraphTopology::routingBytes() const {
  return ball_.size() * sizeof(BallEntry) + ballBegin_.size() * sizeof(std::uint64_t) +
         landmark_.size() * sizeof(NodeId);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

int HierGraphTopology::findDir(int treeNode, NodeId node) const {
  const BallEntry* first = ball_.data() + ballBegin_[treeNode];
  const BallEntry* last = ball_.data() + ballBegin_[treeNode + 1];
  const BallEntry* it = std::lower_bound(
      first, last, node, [](const BallEntry& e, NodeId n) { return e.node < n; });
  if (it == last || it->node != node) return -2;
  return it->dir;
}

int HierGraphTopology::chainOf(NodeId dst, int* chain) const {
  int len = 0;
  for (int t = tree_->leafOf(dst); t >= 0; t = tree_->parent(t)) chain[len++] = t;
  DIVA_CHECK_MSG(len > 0,
                 "hierarchical route to node " << dst << ", which has left the machine");
  return len;
}

int HierGraphTopology::dirTowardChain(NodeId cur, const int* chain, int chainLen) const {
  // Deepest chain cluster whose ball holds `cur` wins; a -1 hit (cur *is*
  // that landmark) keeps scanning — some deeper ball is guaranteed to
  // contain a landmark node before its own level is reached.
  for (int i = 0; i < chainLen; ++i) {
    const int dir = findDir(chain[i], cur);
    if (dir >= 0) return dir;
  }
  DIVA_CHECK_MSG(false, "hierarchical routing found no visible ball at node " << cur);
  return -1;
}

NodeId HierGraphTopology::nextHop(NodeId from, NodeId to) const {
  if (from == to) return from;
  int chain[kMaxChainDepth];
  const int chainLen = chainOf(to, chain);
  return adj_.neighbor(from, dirTowardChain(from, chain, chainLen));
}

void HierGraphTopology::appendRoute(NodeId from, NodeId to, RouteVec& out) const {
  if (from == to) return;
  int chain[kMaxChainDepth];
  const int chainLen = chainOf(to, chain);
  NodeId cur = from;
  // The (chain depth, distance-to-landmark) potential proves termination;
  // the budget turns a potential-violating bug into a crisp failure
  // instead of an unbounded route buffer.
  int budget = 8 * adj_.numNodes + 16;
  while (cur != to) {
    const int dir = dirTowardChain(cur, chain, chainLen);
    const NodeId next = adj_.neighbor(cur, dir);
    out.push_back(Hop{linkIndex(cur, dir), next});
    cur = next;
    DIVA_CHECK_MSG(--budget >= 0,
                   "hierarchical route " << from << "→" << to << " did not converge");
  }
}

int HierGraphTopology::distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  int chain[kMaxChainDepth];
  const int chainLen = chainOf(b, chain);
  NodeId cur = a;
  int hops = 0;
  int budget = 8 * adj_.numNodes + 16;
  while (cur != b) {
    cur = adj_.neighbor(cur, dirTowardChain(cur, chain, chainLen));
    ++hops;
    DIVA_CHECK_MSG(--budget >= 0,
                   "hierarchical route " << a << "→" << b << " did not converge");
  }
  return hops;
}

}  // namespace diva::net
