#pragma once

#include "net/mesh_topology.hpp"

namespace diva::net {

/// 2-D torus: the mesh with wraparound links. Same node numbering, same
/// four directed-link slots per node, same hierarchical decomposition and
/// embeddings (clusters are contiguous rectangles of the underlying grid;
/// the decomposition deliberately ignores the wrap edges, which only
/// shorten routes). Routing is dimension-order like the mesh, but each
/// dimension independently wraps in whichever direction is shorter (ties
/// break toward East/South, keeping routes deterministic).
class TorusTopology final : public MeshTopology {
 public:
  TorusTopology(int rows, int cols) : MeshTopology(rows, cols) {}

  TopologyKind kind() const override { return TopologyKind::Torus2D; }
  TopologySpec spec() const override {
    return TopologySpec::torus2d(grid_.rows(), grid_.cols());
  }

  NodeId neighbor(NodeId n, int dir) const override {
    const int rows = grid_.rows(), cols = grid_.cols();
    const mesh::Coord c = grid_.coordOf(n);
    NodeId nb = -1;
    switch (dir) {
      case mesh::Mesh::East: nb = grid_.nodeAt(c.row, (c.col + 1) % cols); break;
      case mesh::Mesh::West: nb = grid_.nodeAt(c.row, (c.col + cols - 1) % cols); break;
      case mesh::Mesh::South: nb = grid_.nodeAt((c.row + 1) % rows, c.col); break;
      case mesh::Mesh::North: nb = grid_.nodeAt((c.row + rows - 1) % rows, c.col); break;
      default: return -1;
    }
    return nb == n ? -1 : nb;  // a size-1 ring has no wrap link, not a self-loop
  }

  NodeId nextHop(NodeId from, NodeId to) const override;
  int distance(NodeId a, NodeId b) const override;
  void appendRoute(NodeId from, NodeId to, RouteVec& out) const override;
};

}  // namespace diva::net
