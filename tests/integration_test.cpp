// Cross-module integration and stress tests: concurrent mixed workloads
// over locks + barriers + data, determinism of entire application runs,
// and strategy-independence of application results.

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/barneshut/barneshut.hpp"
#include "apps/bitonic/bitonic.hpp"
#include "apps/matmul/matmul.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "support/rng.hpp"

namespace diva {
namespace {

using sim::Task;

// ---------------------------------------------------------------------------
// Concurrency stress: random lock-protected read-modify-write traffic
// ---------------------------------------------------------------------------

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, LockProtectedCountersStayConsistent) {
  const std::uint64_t seed = GetParam();
  for (const auto& rc :
       {RuntimeConfig::accessTree(4, 1, seed), RuntimeConfig::accessTree(2, 1, seed),
        RuntimeConfig::accessTree(2, 4, seed), RuntimeConfig::fixedHome(seed)}) {
    Machine m(4, 8);
    Runtime rt(m, rc);

    constexpr int kVars = 6;
    constexpr int kOpsPerProc = 8;
    std::vector<VarId> vars;
    for (int i = 0; i < kVars; ++i)
      vars.push_back(rt.createVarFree(static_cast<NodeId>(i * 5 % 32),
                                      makeValue<std::int64_t>(0), /*withLock=*/true));

    std::vector<int> increments(kVars, 0);
    for (NodeId p = 0; p < 32; ++p) {
      sim::spawn([](Machine& mm, Runtime& r, NodeId self, std::uint64_t sd,
                    std::vector<VarId>& vs, std::vector<int>& counts) -> Task<> {
        support::SplitMix64 rng(support::hashCombine(sd, static_cast<std::uint64_t>(self)));
        for (int op = 0; op < kOpsPerProc; ++op) {
          const int which = static_cast<int>(rng.below(kVars));
          co_await mm.net.compute(self, rng.uniform(0.0, 500.0));
          co_await r.lock(self, vs[which]);
          const auto v = valueAs<std::int64_t>(co_await r.read(self, vs[which]));
          co_await r.write(self, vs[which], makeValue<std::int64_t>(v + 1));
          ++counts[which];
          co_await r.unlock(self, vs[which]);
        }
        co_await r.barrier(self);
      }(m, rt, p, seed, vars, increments));
    }
    m.run();
    rt.checkAllInvariants();
    for (int i = 0; i < kVars; ++i)
      EXPECT_EQ(valueAs<std::int64_t>(rt.peek(vars[i])), increments[i])
          << "lost update on var " << i << " seed " << seed;
  }
}

TEST_P(StressTest, ConcurrentReadersWithSingleWriterStayCoherent) {
  // One writer updates a variable (read-before-write) between barriers;
  // many concurrent readers spread copies. Everything must quiesce into
  // a valid state after every round.
  const std::uint64_t seed = GetParam();
  Machine m(4, 4);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1, seed));
  const VarId x = rt.createVarFree(7, makeValue<std::int64_t>(0));
  constexpr int kRounds = 10;

  std::vector<std::int64_t> observed(16, -1);
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Machine& mm, Runtime& r, NodeId self, std::uint64_t sd, VarId v,
                  std::vector<std::int64_t>& out) -> Task<> {
      support::SplitMix64 rng(support::hashCombine(sd, 7777ull + self));
      for (int round = 0; round < kRounds; ++round) {
        if (self == round % 16) {
          const auto cur = valueAs<std::int64_t>(co_await r.read(self, v));
          co_await r.write(self, v, makeValue<std::int64_t>(cur + 1));
        } else {
          co_await mm.net.compute(self, rng.uniform(0.0, 200.0));
          out[self] = valueAs<std::int64_t>(co_await r.read(self, v));
        }
        co_await r.barrier(self);
      }
    }(m, rt, p, seed, x, observed));
  }
  m.run();
  rt.checkAllInvariants();
  EXPECT_EQ(valueAs<std::int64_t>(rt.peek(x)), kRounds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Values(1u, 2u, 3u, 42u, 777u));

// ---------------------------------------------------------------------------
// Whole-application determinism and strategy independence
// ---------------------------------------------------------------------------

TEST(Determinism, MatmulRunIsBitReproducible) {
  auto once = [] {
    Machine m(4, 4);
    Runtime rt(m, RuntimeConfig::accessTree(4));
    apps::matmul::Config cfg;
    cfg.blockInts = 64;
    const auto r = apps::matmul::runDiva(m, rt, cfg);
    return std::tuple{r.timeUs, r.congestionBytes, r.totalBytes,
                      m.engine.eventsProcessed()};
  };
  EXPECT_EQ(once(), once());
}

TEST(Determinism, BarnesHutRunIsBitReproducible) {
  auto once = [] {
    Machine m(4, 4);
    Runtime rt(m, RuntimeConfig::accessTree(4));
    apps::barneshut::Config cfg;
    cfg.numBodies = 300;
    cfg.steps = 2;
    cfg.warmupSteps = 0;
    const auto r = apps::barneshut::run(m, rt, cfg);
    return std::tuple{r.timeUs, r.congestionMessages, r.finalBodies[17].pos.x,
                      m.engine.eventsProcessed()};
  };
  EXPECT_EQ(once(), once());
}

TEST(StrategyIndependence, ApplicationsComputeIdenticalResults) {
  // The data management strategy must never change what is computed —
  // only how data moves. Bitonic: identical sorted keys; Barnes-Hut:
  // identical body states.
  apps::bitonic::Config bcfg;
  bcfg.keysPerProc = 64;
  std::vector<std::uint32_t> keysRef;
  apps::barneshut::Config ncfg;
  ncfg.numBodies = 400;
  ncfg.steps = 2;
  ncfg.warmupSteps = 0;
  std::vector<apps::barneshut::BodyData> bodiesRef;

  for (const auto& rc : {RuntimeConfig::accessTree(4), RuntimeConfig::accessTree(16),
                         RuntimeConfig::fixedHome()}) {
    {
      Machine m(4, 4);
      Runtime rt(m, rc);
      const auto r = apps::bitonic::runDiva(m, rt, bcfg);
      if (keysRef.empty()) keysRef = r.keys;
      EXPECT_EQ(r.keys, keysRef);
    }
    {
      Machine m(4, 4);
      Runtime rt(m, rc);
      const auto r = apps::barneshut::run(m, rt, ncfg);
      if (bodiesRef.empty()) bodiesRef = r.finalBodies;
      ASSERT_EQ(r.finalBodies.size(), bodiesRef.size());
      for (std::size_t i = 0; i < bodiesRef.size(); ++i) {
        EXPECT_EQ(r.finalBodies[i].pos, bodiesRef[i].pos);
        EXPECT_EQ(r.finalBodies[i].vel, bodiesRef[i].vel);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cost model plumbing
// ---------------------------------------------------------------------------

TEST(CostModel, BandwidthChangesTimeNotCongestionShape) {
  apps::matmul::Config cfg;
  cfg.blockInts = 256;
  net::CostModel fast = net::CostModel::gcel();
  fast.bytesPerUs = 100.0;

  Machine slow(4, 4);
  Runtime rtS(slow, RuntimeConfig::accessTree(4));
  const auto rs = apps::matmul::runDiva(slow, rtS, cfg);

  Machine quick(4, 4, fast);
  Runtime rtQ(quick, RuntimeConfig::accessTree(4));
  const auto rq = apps::matmul::runDiva(quick, rtQ, cfg);

  EXPECT_LT(rq.timeUs, rs.timeUs);
}

TEST(CostModel, StartupCostDominatesSmallMessages) {
  // With header-only traffic, halving the bandwidth changes little, but
  // doubling the startup cost nearly doubles the barrier time.
  auto barrierTime = [](net::CostModel cm) {
    Machine m(8, 8, cm);
    Runtime rt(m, RuntimeConfig::accessTree(4));
    for (NodeId p = 0; p < 64; ++p)
      sim::spawn([](Runtime& r, NodeId n) -> Task<> { co_await r.barrier(n); }(rt, p));
    return m.run();
  };
  net::CostModel base = net::CostModel::gcel();
  net::CostModel slowLinks = base;
  slowLinks.bytesPerUs = 0.5;
  net::CostModel slowCpu = base;
  slowCpu.sendOverheadUs *= 2;
  slowCpu.recvOverheadUs *= 2;

  const double tBase = barrierTime(base);
  EXPECT_LT(barrierTime(slowLinks) / tBase, 1.3);
  EXPECT_GT(barrierTime(slowCpu) / tBase, 1.5);
}

}  // namespace
}  // namespace diva
