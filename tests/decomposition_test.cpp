// Tests for the hierarchical mesh decomposition and the access-tree
// embeddings (paper §2, Figure 1).

#include <gtest/gtest.h>

#include <set>

#include "mesh/decomposition.hpp"
#include "mesh/embedding.hpp"
#include "net/mesh_topology.hpp"

namespace diva::mesh {
namespace {

using Params = Decomposition::Params;

TEST(Decomposition, PaperFigure1_M4x3) {
  // The paper's example: M(4,3) under the 2-ary decomposition. Level 1
  // splits the 4-row side into two 2x3 submeshes.
  Mesh m(4, 3);
  Decomposition d(m, Params{2, 1});
  const auto& root = d.node(d.root());
  EXPECT_EQ(root.box, (Submesh{0, 0, 4, 3}));
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(d.node(root.children[0]).box, (Submesh{0, 0, 2, 3}));
  EXPECT_EQ(d.node(root.children[1]).box, (Submesh{2, 0, 2, 3}));
  // Level 2 splits each 2x3 along the 3-column side: 2x2 and 2x1.
  const auto& c0 = d.node(root.children[0]);
  ASSERT_EQ(c0.children.size(), 2u);
  EXPECT_EQ(d.node(c0.children[0]).box, (Submesh{0, 0, 2, 2}));
  EXPECT_EQ(d.node(c0.children[1]).box, (Submesh{0, 2, 2, 1}));
}

struct ShapeCase {
  int rows, cols, arity, leafSize;
};

class DecompositionProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(DecompositionProperty, PartitionInvariants) {
  const auto [rows, cols, arity, leafSize] = GetParam();
  Mesh m(rows, cols);
  Decomposition d(m, Params{arity, leafSize});

  int leaves = 0;
  for (int i = 0; i < d.numNodes(); ++i) {
    const auto& n = d.node(i);
    EXPECT_GT(n.box.size(), 0);
    if (n.isLeaf()) {
      EXPECT_EQ(n.box.size(), 1);
      ++leaves;
      continue;
    }
    // Children tile the parent exactly (disjoint cover).
    int covered = 0;
    for (int c : n.children) {
      const auto& cb = d.node(c).box;
      covered += cb.size();
      EXPECT_GE(cb.row0, n.box.row0);
      EXPECT_GE(cb.col0, n.box.col0);
      EXPECT_LE(cb.row0 + cb.rows, n.box.row0 + n.box.rows);
      EXPECT_LE(cb.col0 + cb.cols, n.box.col0 + n.box.cols);
      EXPECT_EQ(d.node(c).parent, i);
    }
    EXPECT_EQ(covered, n.box.size());
    // Arity bound: at most `arity` children, except k-terminated nodes
    // which have exactly box.size() (≤ leafSize) children.
    if (n.box.size() <= leafSize) {
      EXPECT_EQ(static_cast<int>(n.children.size()), n.box.size());
    } else {
      EXPECT_LE(static_cast<int>(n.children.size()), arity);
      EXPECT_GE(static_cast<int>(n.children.size()), 2);
    }
  }
  EXPECT_EQ(leaves, m.numNodes());

  // Every processor has a distinct leaf and leafOrder is a permutation.
  std::set<NodeId> seen;
  for (int w = 0; w < m.numNodes(); ++w) {
    const NodeId p = d.procOfRank(w);
    EXPECT_TRUE(seen.insert(p).second);
    EXPECT_EQ(d.rankOf(p), w);
    EXPECT_EQ(d.leafOf(p), d.leafOrder()[w]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionProperty,
    ::testing::Values(ShapeCase{4, 4, 2, 1}, ShapeCase{4, 4, 4, 1},
                      ShapeCase{8, 8, 16, 1}, ShapeCase{16, 16, 4, 1},
                      ShapeCase{4, 3, 2, 1}, ShapeCase{1, 7, 2, 1},
                      ShapeCase{5, 9, 4, 1}, ShapeCase{8, 8, 2, 4},
                      ShapeCase{8, 8, 4, 16}, ShapeCase{16, 16, 4, 8},
                      ShapeCase{8, 16, 4, 1}, ShapeCase{32, 32, 4, 1}));

TEST(Decomposition, FourAryIsTwoArySkippingLevels) {
  Mesh m(8, 8);
  Decomposition d2(m, Params{2, 1});
  Decomposition d4(m, Params{4, 1});
  // Every 4-ary node's box appears at an even depth of the 2-ary tree.
  std::set<std::tuple<int, int, int, int>> evenBoxes;
  for (int i = 0; i < d2.numNodes(); ++i) {
    if (d2.depthOf(i) % 2 == 0) {
      const auto& b = d2.node(i).box;
      evenBoxes.insert({b.row0, b.col0, b.rows, b.cols});
    }
  }
  for (int i = 0; i < d4.numNodes(); ++i) {
    const auto& b = d4.node(i).box;
    EXPECT_TRUE(evenBoxes.contains(std::tuple{b.row0, b.col0, b.rows, b.cols}))
        << "4-ary box not on an even 2-ary level";
  }
}

TEST(Decomposition, LeafSizeTerminationGivesPerProcessorChildren) {
  Mesh m(8, 8);
  Decomposition d(m, Params{2, 4});
  for (int i = 0; i < d.numNodes(); ++i) {
    const auto& n = d.node(i);
    if (n.box.size() > 1 && n.box.size() <= 4) {
      ASSERT_EQ(n.children.size(), static_cast<std::size_t>(n.box.size()));
      for (int c : n.children) EXPECT_TRUE(d.node(c).isLeaf());
    }
  }
}

TEST(Decomposition, FullMeshLeafSizeIsPary) {
  // k = P gives the root P children — the paper's P-ary tree remark.
  Mesh m(4, 4);
  Decomposition d(m, Params{4, 16});
  EXPECT_EQ(d.node(d.root()).children.size(), 16u);
  EXPECT_EQ(d.maxDepth(), 1);
}

TEST(CanonicalLeafOrder, IsAPermutationAndLocal) {
  Mesh m(8, 8);
  const auto order = net::canonicalLeafOrder(net::MeshTopology(8, 8));
  std::set<NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 64u);
  // Locality: consecutive ranks are close in the mesh (within the 2-ary
  // decomposition, rank neighbours share a small submesh). The first and
  // second half occupy disjoint halves of the mesh.
  for (int w = 0; w + 1 < 64; ++w)
    EXPECT_LE(m.distance(order[w], order[w + 1]), 8);
}

class EmbeddingProperty : public ::testing::TestWithParam<EmbeddingKind> {};

TEST_P(EmbeddingProperty, HostsLieInTheirSubmesh) {
  Mesh m(8, 8);
  Decomposition d(m, Params{4, 1});
  Embedding e(d, GetParam(), 42);
  for (std::uint64_t x : {1ull, 2ull, 99ull, 12345ull}) {
    for (int n = 0; n < d.numNodes(); ++n) {
      const NodeId h = e.hostOf(n, x);
      EXPECT_TRUE(d.node(n).box.contains(m.coordOf(h)))
          << "tree node " << n << " hosted outside its submesh";
    }
    // Leaves host their own processor.
    for (NodeId p = 0; p < m.numNodes(); ++p)
      EXPECT_EQ(e.hostOf(d.leafOf(p), x), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EmbeddingProperty,
                         ::testing::Values(EmbeddingKind::Regular,
                                           EmbeddingKind::Random));

TEST(Embedding, DifferentVariablesGetDifferentRoots) {
  Mesh m(16, 16);
  Decomposition d(m, Params{4, 1});
  Embedding e(d, EmbeddingKind::Regular, 7);
  std::set<NodeId> roots;
  for (std::uint64_t x = 0; x < 64; ++x) roots.insert(e.hostOf(d.root(), x));
  // 64 draws over 256 processors: expect substantial spread.
  EXPECT_GT(roots.size(), 32u);
}

TEST(Embedding, RegularEmbeddingIsParentRelative) {
  // The child of a node hosted at relative position (i, j) sits at
  // (i mod m1, j mod m2) of the child box (paper §2, "practical
  // improvements").
  Mesh m(8, 8);
  Decomposition d(m, Params{2, 1});
  Embedding e(d, EmbeddingKind::Regular, 3);
  for (std::uint64_t x = 1; x < 16; ++x) {
    for (int n = 0; n < d.numNodes(); ++n) {
      const auto& nd = d.node(n);
      if (nd.parent < 0) continue;
      const auto& pb = d.node(nd.parent).box;
      const Coord pc = m.coordOf(e.hostOf(nd.parent, x));
      const Coord cc = m.coordOf(e.hostOf(n, x));
      EXPECT_EQ(cc.row - nd.box.row0, (pc.row - pb.row0) % nd.box.rows);
      EXPECT_EQ(cc.col - nd.box.col0, (pc.col - pb.col0) % nd.box.cols);
    }
  }
}

TEST(Embedding, DeterministicAcrossInstances) {
  Mesh m(8, 8);
  Decomposition d(m, Params{4, 1});
  Embedding a(d, EmbeddingKind::Random, 11);
  Embedding b(d, EmbeddingKind::Random, 11);
  for (int n = 0; n < d.numNodes(); ++n)
    EXPECT_EQ(a.hostOf(n, 5), b.hostOf(n, 5));
  Embedding c(d, EmbeddingKind::Random, 12);
  int differs = 0;
  for (int n = 0; n < d.numNodes(); ++n)
    differs += a.hostOf(n, 5) != c.hostOf(n, 5);
  EXPECT_GT(differs, 0);
}

}  // namespace
}  // namespace diva::mesh
