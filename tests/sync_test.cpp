// Tests for the synchronization services: decomposition-tree barriers and
// distributed locks (Raymond token passing / centralized manager).

#include <gtest/gtest.h>

#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "support/rng.hpp"

namespace diva {
namespace {

using sim::Task;

class SyncTest : public ::testing::TestWithParam<RuntimeConfig> {};

TEST_P(SyncTest, BarrierSeparatesPhases) {
  Machine m(4, 4);
  Runtime rt(m, GetParam());
  // Every processor increments a per-phase counter; the barrier must make
  // phase-1 increments strictly after all phase-0 increments.
  int phase0 = 0, phase1 = 0;
  bool orderViolated = false;
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Machine& mm, Runtime& r, NodeId n, int& c0, int& c1,
                  bool& bad) -> Task<> {
      co_await mm.net.compute(n, static_cast<double>(n) * 50.0);  // stagger
      ++c0;
      co_await r.barrier(n);
      if (c0 != 16) bad = true;  // someone hadn't arrived yet
      ++c1;
      co_await r.barrier(n);
      if (c1 != 16) bad = true;
    }(m, rt, p, phase0, phase1, orderViolated));
  }
  m.engine.run();
  EXPECT_EQ(phase0, 16);
  EXPECT_EQ(phase1, 16);
  EXPECT_FALSE(orderViolated);
  EXPECT_EQ(m.stats.ops.barriers, 32u);
}

TEST_P(SyncTest, RepeatedBarriersStayCoherent) {
  Machine m(4, 8);
  Runtime rt(m, GetParam());
  constexpr int kRounds = 20;
  std::vector<int> counter(kRounds, 0);
  bool bad = false;
  for (NodeId p = 0; p < 32; ++p) {
    sim::spawn([](Machine& mm, Runtime& r, NodeId n, std::vector<int>& c,
                  bool& violated) -> Task<> {
      support::SplitMix64 rng(static_cast<std::uint64_t>(n) + 1);
      for (int round = 0; round < kRounds; ++round) {
        co_await mm.net.compute(n, rng.uniform(0.0, 300.0));
        ++c[round];
        co_await r.barrier(n);
        if (c[round] != 32) violated = true;
      }
    }(m, rt, p, counter, bad));
  }
  m.engine.run();
  EXPECT_FALSE(bad);
  for (int round = 0; round < kRounds; ++round) EXPECT_EQ(counter[round], 32);
}

TEST_P(SyncTest, BarrierOnSingleNodeMeshIsTrivial) {
  Machine m(1, 1);
  Runtime rt(m, GetParam());
  bool done = false;
  sim::spawn([](Runtime& r, bool& d) -> Task<> {
    co_await r.barrier(0);
    co_await r.barrier(0);
    d = true;
  }(rt, done));
  m.engine.run();
  EXPECT_TRUE(done);
}

TEST_P(SyncTest, LockProvidesMutualExclusion) {
  Machine m(4, 4);
  Runtime rt(m, GetParam());
  const VarId lk = rt.createVarFree(0, makeValue<int>(0), /*withLock=*/true);
  int inside = 0, maxInside = 0, entries = 0;
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Machine& mm, Runtime& r, NodeId n, VarId l, int& in, int& peak,
                  int& count) -> Task<> {
      for (int round = 0; round < 3; ++round) {
        co_await r.lock(n, l);
        ++in;
        peak = std::max(peak, in);
        ++count;
        co_await mm.net.compute(n, 100.0);  // critical section work
        --in;
        co_await r.unlock(n, l);
      }
    }(m, rt, p, lk, inside, maxInside, entries));
  }
  m.engine.run();
  EXPECT_EQ(maxInside, 1) << "two processors were in the critical section";
  EXPECT_EQ(entries, 48);
  EXPECT_EQ(inside, 0);
}

TEST_P(SyncTest, LockGuardsReadModifyWrite) {
  // The Barnes-Hut tree-building pattern: lock, read, modify, write,
  // unlock. The final value must equal the number of increments.
  Machine m(4, 4);
  Runtime rt(m, GetParam());
  const VarId x = rt.createVarFree(3, makeValue<std::int64_t>(0), /*withLock=*/true);
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Runtime& r, NodeId n, VarId v) -> Task<> {
      for (int round = 0; round < 2; ++round) {
        co_await r.lock(n, v);
        const auto cur = valueAs<std::int64_t>(co_await r.read(n, v));
        co_await r.write(n, v, makeValue<std::int64_t>(cur + 1));
        co_await r.unlock(n, v);
      }
    }(rt, p, x));
  }
  m.engine.run();
  EXPECT_EQ(valueAs<std::int64_t>(rt.peek(x)), 32);
  rt.checkAllInvariants();
}

TEST_P(SyncTest, UncontendedRelockIsCheap) {
  // Re-acquiring a lock whose token is already local must not produce
  // network traffic (Raymond's key property; trivially true centralized?
  // no — the central manager always pays the round trip, which is the
  // point of the comparison).
  Machine m(4, 4);
  Runtime rt(m, GetParam());
  const VarId lk = rt.createVarFree(7, makeValue<int>(0), /*withLock=*/true);
  sim::spawn([](Runtime& r, VarId l) -> Task<> {
    co_await r.lock(7, l);
    co_await r.unlock(7, l);
  }(rt, lk));
  m.engine.run();
  const auto wire = m.stats.links.totalMessages();
  sim::spawn([](Runtime& r, VarId l) -> Task<> {
    co_await r.lock(7, l);
    co_await r.unlock(7, l);
  }(rt, lk));
  m.engine.run();
  if (GetParam().kind == StrategyKind::AccessTree) {
    EXPECT_EQ(m.stats.links.totalMessages(), wire)
        << "token was local; no network traffic expected";
  } else {
    EXPECT_GE(m.stats.links.totalMessages(), wire)
        << "central manager round trip (zero only if the home is local)";
  }
}

TEST_P(SyncTest, ManyLocksIndependent) {
  Machine m(4, 4);
  Runtime rt(m, GetParam());
  std::vector<VarId> locks;
  for (int i = 0; i < 8; ++i)
    locks.push_back(rt.createVarFree(static_cast<NodeId>(i), makeValue<int>(0), true));
  std::vector<int> acquired(8, 0);
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Runtime& r, NodeId n, std::vector<VarId>& ls,
                  std::vector<int>& acq) -> Task<> {
      support::SplitMix64 rng(static_cast<std::uint64_t>(n) * 31 + 7);
      for (int round = 0; round < 4; ++round) {
        const int which = static_cast<int>(rng.below(8));
        co_await r.lock(n, ls[which]);
        ++acq[which];
        co_await r.unlock(n, ls[which]);
      }
    }(rt, p, locks, acquired));
  }
  m.engine.run();
  int total = 0;
  for (int a : acquired) total += a;
  EXPECT_EQ(total, 64);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SyncTest,
                         ::testing::Values(RuntimeConfig::accessTree(4, 1),
                                           RuntimeConfig::accessTree(2, 1),
                                           RuntimeConfig::fixedHome()),
                         [](const auto& info) {
                           return info.param.kind == StrategyKind::FixedHome
                                      ? std::string("fixedHome")
                                      : "accessTree" + std::to_string(info.param.arity);
                         });

TEST(TreeLock, TokenTravelsTowardContention) {
  // Raymond locality: two neighbours ping-ponging a lock must stop
  // involving the far-away creator after the first transfer.
  Machine m(8, 8);
  Runtime rt(m, RuntimeConfig::accessTree(2, 1));
  const NodeId far = m.mesh().nodeAt(7, 7);
  const VarId lk = rt.createVarFree(far, makeValue<int>(0), true);
  const NodeId a = m.mesh().nodeAt(0, 0), b = m.mesh().nodeAt(0, 1);
  // First acquisition drags the token across the mesh.
  sim::spawn([](Runtime& r, NodeId n, VarId l) -> Task<> {
    co_await r.lock(n, l);
    co_await r.unlock(n, l);
  }(rt, a, lk));
  m.engine.run();
  const auto baseline = m.stats.links.totalBytes();
  // Subsequent ping-pong between the two neighbours stays local.
  for (int i = 0; i < 4; ++i) {
    for (NodeId n : {b, a}) {
      sim::spawn([](Runtime& r, NodeId nn, VarId l) -> Task<> {
        co_await r.lock(nn, l);
        co_await r.unlock(nn, l);
      }(rt, n, lk));
      m.engine.run();
    }
  }
  const auto pingpong = m.stats.links.totalBytes() - baseline;
  EXPECT_LT(pingpong, baseline * 4) << "token should stay near the contenders";
}

}  // namespace
}  // namespace diva
