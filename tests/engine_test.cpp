// Unit tests for the discrete-event simulation kernel: event ordering,
// coroutine task semantics, conditions and one-shot futures.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace diva::sim {
namespace {

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.scheduleAt(30.0, [&] { order.push_back(3); });
  e.scheduleAt(10.0, [&] { order.push_back(1); });
  e.scheduleAt(20.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 30.0);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.scheduleAt(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsScheduledInsideEventsRun) {
  Engine e;
  int depth = 0;
  e.scheduleAt(1.0, [&] {
    e.scheduleAfter(1.0, [&] {
      ++depth;
      e.scheduleAfter(1.0, [&] { ++depth; });
    });
  });
  e.run();
  EXPECT_EQ(depth, 2);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, FifoAmongEqualsAcrossMixedSchedule) {
  // Same-time events must fire in scheduling order even when they are
  // interleaved with events at other times, scheduled from inside events,
  // and separated by many pops of the shared timestamp.
  Engine e;
  std::vector<int> order;
  e.scheduleAt(50.0, [&] { order.push_back(100); });
  for (int i = 0; i < 8; ++i) {
    e.scheduleAt(10.0, [&order, i] { order.push_back(i); });
    e.scheduleAt(90.0, [&order, i] { order.push_back(200 + i); });
  }
  e.scheduleAt(10.0, [&] {
    // Runs at t=10 after the first eight; schedules more at the same time.
    for (int i = 8; i < 12; ++i) e.scheduleAt(10.0, [&order, i] { order.push_back(i); });
  });
  e.run();
  std::vector<int> expect;
  for (int i = 0; i < 12; ++i) expect.push_back(i);
  expect.push_back(100);
  for (int i = 0; i < 8; ++i) expect.push_back(200 + i);
  EXPECT_EQ(order, expect);
}

TEST(Engine, NegativeZeroTimeNormalizes) {
  Engine e;
  double seen = -1.0;
  e.scheduleAt(-0.0, [&] { seen = e.now(); });
  e.scheduleAt(0.0, [&] {});
  e.run();
  EXPECT_DOUBLE_EQ(seen, 0.0);
  EXPECT_FALSE(std::signbit(e.now()));
}

TEST(Engine, MillionEventChurnIsAccountedAndDeterministic) {
  // Steady-state churn at working depth: a population of self-
  // rescheduling events with pseudo-random deltas. Guards the exact event
  // count (every scheduled event fires exactly once) and that two
  // identical runs land on identical clocks.
  struct Churn {
    Engine* e;
    std::uint64_t* budget;
    std::uint64_t rng;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      const std::uint64_t next = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      e->scheduleAfter(static_cast<double>(next % 97), Churn{e, budget, next});
    }
  };
  auto runOnce = [] {
    Engine e;
    std::uint64_t budget = 1'000'000 - 512;
    for (std::uint64_t i = 0; i < 512; ++i) {
      e.scheduleAt(static_cast<double>(i % 17), Churn{&e, &budget, i});
    }
    e.run();
    EXPECT_EQ(budget, 0u);
    EXPECT_EQ(e.eventsProcessed(), 1'000'000u);
    EXPECT_TRUE(e.idle());
    EXPECT_EQ(e.pendingEvents(), 0u);
    return e.now();
  };
  const double a = runOnce();
  const double b = runOnce();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Engine, LargeCapturesStillWork) {
  // Captures beyond EventFn's 48-byte inline buffer take the heap
  // fallback; semantics must be identical.
  Engine e;
  std::array<std::uint64_t, 16> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i + 1;
  std::uint64_t sum = 0;
  e.scheduleAt(1.0, [big, &sum] {
    for (const auto v : big) sum += v;
  });
  e.run();
  EXPECT_EQ(sum, 136u);
}

TEST(Engine, DestroyedWithPendingEventsReclaimsCaptures) {
  // Captures owning resources must be destroyed when the engine dies with
  // events still queued (the shared_ptr use-count proves it).
  auto token = std::make_shared<int>(7);
  {
    Engine e;
    e.scheduleAt(10.0, [token] {});
    e.scheduleAt(20.0, [token] {});
    EXPECT_EQ(token.use_count(), 3);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Engine, PastEventsClampToNow) {
  Engine e;
  double seen = -1.0;
  e.scheduleAt(10.0, [&] {
    e.scheduleAt(5.0, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(Engine, EventCountIsTracked) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.scheduleAt(i, [] {});
  e.run();
  EXPECT_EQ(e.eventsProcessed(), 7u);
}

TEST(Task, DelayAdvancesTime) {
  Engine e;
  double t1 = -1, t2 = -1;
  spawn([](Engine& eng, double& a, double& b) -> Task<> {
    co_await eng.delay(100.0);
    a = eng.now();
    co_await eng.delay(50.0);
    b = eng.now();
  }(e, t1, t2));
  e.run();
  EXPECT_DOUBLE_EQ(t1, 100.0);
  EXPECT_DOUBLE_EQ(t2, 150.0);
}

TEST(Task, NestedTasksReturnValues) {
  Engine e;
  int result = 0;
  auto inner = [](Engine& eng) -> Task<int> {
    co_await eng.delay(10.0);
    co_return 42;
  };
  spawn([](Engine& eng, auto innerFn, int& out) -> Task<> {
    const int a = co_await innerFn(eng);
    const int b = co_await innerFn(eng);
    out = a + b;
  }(e, inner, result));
  e.run();
  EXPECT_EQ(result, 84);
  EXPECT_DOUBLE_EQ(e.now(), 20.0);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    spawn([](Engine& eng, std::vector<int>& ord, int id) -> Task<> {
      co_await eng.delay(10.0 * (8 - id));  // reverse completion order
      ord.push_back(id);
    }(e, order, i));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(Condition, NotifyAllWakesEveryWaiter) {
  Engine e;
  Condition cond(e);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    spawn([](Condition& c, int& n) -> Task<> {
      co_await c.wait();
      ++n;
    }(cond, woke));
  }
  e.scheduleAt(10.0, [&] { cond.notifyAll(); });
  e.run();
  EXPECT_EQ(woke, 5);
}

TEST(Condition, NotifyOneWakesOneWaiter) {
  Engine e;
  Condition cond(e);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([](Condition& c, int& n) -> Task<> {
      co_await c.wait();
      ++n;
    }(cond, woke));
  }
  e.scheduleAt(1.0, [&] { cond.notifyOne(); });
  e.run();
  EXPECT_EQ(woke, 1);
  EXPECT_EQ(cond.numWaiters(), 2u);
  // Drain the remaining waiters: abandoned detached coroutines would leak
  // their frames, and the full suite must stay clean under LSan.
  cond.notifyAll();
  e.run();
  EXPECT_EQ(woke, 3);
}

TEST(OneShot, ResolveBeforeWaitIsImmediate) {
  Engine e;
  OneShot<int> shot(e);
  shot.resolve(7);
  int got = 0;
  spawn([](OneShot<int>& s, int& out) -> Task<> { out = co_await s.wait(); }(shot, got));
  e.run();
  EXPECT_EQ(got, 7);
}

TEST(OneShot, ResolveAfterWaitResumes) {
  Engine e;
  OneShot<int> shot(e);
  int got = 0;
  double when = -1;
  spawn([](Engine& eng, OneShot<int>& s, int& out, double& t) -> Task<> {
    out = co_await s.wait();
    t = eng.now();
  }(e, shot, got, when));
  e.scheduleAt(33.0, [&] { shot.resolve(5); });
  e.run();
  EXPECT_EQ(got, 5);
  EXPECT_DOUBLE_EQ(when, 33.0);
}

TEST(OneShot, DoubleResolveThrows) {
  Engine e;
  OneShot<int> shot(e);
  shot.resolve(1);
  EXPECT_THROW(shot.resolve(2), support::CheckError);
}

TEST(Determinism, SameScheduleSameEventCount) {
  auto runOnce = [] {
    Engine e;
    for (int i = 0; i < 100; ++i) {
      spawn([](Engine& eng, int id) -> Task<> {
        co_await eng.delay(static_cast<double>(id % 7));
        co_await eng.delay(static_cast<double>(id % 3));
      }(e, i));
    }
    e.run();
    return std::pair{e.eventsProcessed(), e.now()};
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace diva::sim
