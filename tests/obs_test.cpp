// Observability subsystem (src/obs/): tracer determinism and category
// filtering, the pure-observer contract (tracing ON leaves the golden
// delivery-trace hash untouched), sampler interval accounting, and the
// registry's JSON rendering that --report-json and registerReport share.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/topology_env.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"
#include "support/check.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using workload::PhaseSpec;
using workload::WorkloadSpec;

// --------------------------------------------------------------------------
// Categories
// --------------------------------------------------------------------------

TEST(ObsCategories, ParseNamesAndAll) {
  EXPECT_EQ(obs::parseCategories("txn"), obs::kCatTxn);
  EXPECT_EQ(obs::parseCategories("txn,fault"), obs::kCatTxn | obs::kCatFault);
  EXPECT_EQ(obs::parseCategories("migration,reconfig,repair"),
            obs::kCatMigration | obs::kCatReconfig | obs::kCatRepair);
  EXPECT_EQ(obs::parseCategories("all"), obs::kCatAll);
  EXPECT_THROW(obs::parseCategories("bogus"), support::CheckError);
  EXPECT_THROW(obs::parseCategories("txn,,fault"), support::CheckError);
}

TEST(ObsCategories, NamesRoundTripThroughBits) {
  for (int bit = 0; bit < obs::kNumCats; ++bit) {
    EXPECT_EQ(obs::parseCategories(obs::catName(bit)), obs::Cat{1u} << bit);
  }
}

// --------------------------------------------------------------------------
// Tracer on the committed elastic scenario (reconfig epochs, per-variable
// migrations, phase extents — the ISSUE's acceptance shape)
// --------------------------------------------------------------------------

WorkloadSpec elasticSpec() {
  return workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) +
                                    "/elastic.scenario");
}

/// The shape scenario_runner resolves for `topology random-regular` at 16
/// procs (gridShape(16) → 4×4).
net::TopologySpec elasticTopo() {
  return net::topologyByName("random-regular", 4, 4, /*requireGrid=*/false);
}

std::string tracedElasticJson(obs::Cat mask, obs::Tracer* keep = nullptr) {
  obs::Tracer local;
  obs::Tracer& tracer = keep != nullptr ? *keep : local;
  workload::RunOptions opts;
  opts.tracer = &tracer;
  opts.traceMask = mask;
  (void)workload::runOn(elasticTopo(), RuntimeConfig::accessTree(4), elasticSpec(),
                        opts);
  return tracer.toChromeJson();
}

TEST(ObsTracer, TracedElasticRunIsByteDeterministic) {
  obs::Tracer tracer;
  const std::string a = tracedElasticJson(obs::kCatAll, &tracer);
  const std::string b = tracedElasticJson(obs::kCatAll);
  EXPECT_GT(tracer.numRecords(), 0u);
  EXPECT_EQ(a, b) << "same run, different trace bytes";
  // The acceptance shape: reconfiguration epoch spans on the machine
  // track, per-variable migration handoffs, phase extents.
  EXPECT_GT(tracer.numRecords(obs::kCatReconfig), 0u);
  EXPECT_GT(tracer.numRecords(obs::kCatMigration), 0u);
  EXPECT_GT(tracer.numRecords(obs::kCatPhase), 0u);
  EXPECT_NE(a.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"migrate\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"phase:rewire\""), std::string::npos);
}

TEST(ObsTracer, CategoryMaskBoundsRecordingAtTheSource) {
  obs::Tracer tracer;
  (void)tracedElasticJson(obs::kCatMigration | obs::kCatReconfig, &tracer);
  EXPECT_GT(tracer.numRecords(obs::kCatMigration), 0u);
  EXPECT_GT(tracer.numRecords(obs::kCatReconfig), 0u);
  EXPECT_EQ(tracer.numRecords(obs::kCatMigration) +
                tracer.numRecords(obs::kCatReconfig),
            tracer.numRecords())
      << "a disabled category still recorded";
  EXPECT_EQ(tracer.numRecords(obs::kCatTxn), 0u);
  EXPECT_EQ(tracer.numRecords(obs::kCatServe), 0u);
}

// --------------------------------------------------------------------------
// Pure-observer contract: tracing ON must not move the simulated model.
// Same harness as the determinism suite's hotspot golden; same committed
// hash, now with every category recording.
// --------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(ObsTracer, TracingOnLeavesTheGoldenDeliveryHashUnchanged) {
  const WorkloadSpec wl = workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) +
                                                     "/hotspot.scenario");
  const net::TopologySpec spec = net::TopologySpec::mesh2d(8, 8);
  Machine m(spec);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1, wl.seed).on(spec));
  std::uint64_t hash = 14695981039346656037ull;
  m.net.setDeliveryProbe([&hash](sim::Time t, NodeId node, net::Channel ch) {
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t));
    hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    hash = fnv1a(hash, static_cast<std::uint64_t>(ch));
  });
  obs::Tracer tracer;
  tracer.enable(m.engine);
  workload::RunOptions opts;
  opts.tracer = &tracer;
  (void)workload::run(m, rt, wl, opts);
  EXPECT_GT(tracer.numRecords(), 0u);
  // The committed golden from the determinism suite — tracing is a pure
  // observer, so the simulated model must be bit-identical.
  EXPECT_EQ(hash, 0x22c46d1f015b5bc6ull)
      << "tracing perturbed the simulated model: 0x" << std::hex << hash;
}

// --------------------------------------------------------------------------
// Chrome JSON structure
// --------------------------------------------------------------------------

TEST(ObsTracer, ChromeJsonCarriesTrackMetadataAndBalancedSpans) {
  sim::Engine e;
  obs::Tracer t;
  t.enable(e);
  t.begin(obs::kCatTxn, 0, "read", 7);
  e.scheduleAt(3.5, [&t] { t.end(obs::kCatTxn, 0); });
  e.scheduleAt(5.0, [&t] {
    t.instant(obs::kCatFault, 2, "node-down");
    t.beginAsync(obs::kCatMigration, 1, "migrate", 42);
  });
  e.scheduleAt(9.0, [&t] { t.endAsync(obs::kCatMigration, 2, "migrate", 42); });
  e.run();
  const std::string json = t.toChromeJson();
  EXPECT_EQ(json, t.toChromeJson());
  // Per-track thread metadata (track n → tid n+1) and every phase type.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  obs::Tracer t;  // never enabled
  t.begin(obs::kCatTxn, 0, "read");
  t.end(obs::kCatTxn, 0);
  t.instant(obs::kCatFault, 1, "x");
  t.beginAsync(obs::kCatMigration, 0, "m", 1);
  t.endAsync(obs::kCatMigration, 0, "m", 1);
  EXPECT_EQ(t.numRecords(), 0u);
  // Only the constant process metadata; no event records.
  EXPECT_EQ(t.toChromeJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
            "\"args\":{\"name\":\"diva\"}}\n]}\n");
}

// --------------------------------------------------------------------------
// Sampler interval accounting
// --------------------------------------------------------------------------

TEST(ObsSampler, SamplesAreBoundariesPlusFloorOfSpanOverInterval) {
  sim::Engine e;
  obs::Sampler s;
  s.configure(e, 100.0);
  s.registry().value("x", 7.0);
  s.phaseBegin(0);
  e.scheduleAt(1050.5, [] {});  // the phase's last model event
  e.run();
  s.phaseEnd();
  // Boundary at t=0, interior ticks at 100..1000 (floor(1050.5/100) = 10;
  // the tick at 1100 finds the queue drained and stops the chain), and
  // the end boundary: 12 samples, one row each (one metric, no machine).
  EXPECT_EQ(s.samplesTaken(), 12u);
  EXPECT_EQ(s.numRows(), 12u);
}

TEST(ObsSampler, PhaseScopedRowsKeepTheirPhaseIndex) {
  sim::Engine e;
  obs::Sampler s;
  s.configure(e, 50.0);
  s.registry().value("x", 1.0);
  for (int p = 0; p < 2; ++p) {
    s.phaseBegin(p);
    e.scheduleAt(e.now() + 120.0, [] {});
    e.run();
    s.phaseEnd();
  }
  // Per phase: begin boundary + interior ticks at +50,+100 + end = 4.
  EXPECT_EQ(s.samplesTaken(), 8u);
  std::ostringstream csv;
  s.writeCsv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.compare(0, 26, "time_us,phase,metric,value"), 0);
  EXPECT_NE(text.find(",0,x,1"), std::string::npos);
  EXPECT_NE(text.find(",1,x,1"), std::string::npos);
}

TEST(ObsSampler, WorkloadRunEmitsPerLinkCongestionRows) {
  WorkloadSpec spec;
  spec.name = "tiny";
  spec.numObjects = 8;
  spec.objectBytes = 64;
  spec.seed = 7;
  spec.phases.push_back(PhaseSpec{"only", 6, 0.5, 0.0, 0, 50.0, true, {}});
  obs::Sampler sampler;
  workload::RunOptions opts;
  opts.sampler = &sampler;
  opts.sampleIntervalUs = 200.0;
  (void)workload::runOn(net::TopologySpec::mesh2d(2, 2), RuntimeConfig::accessTree(4),
                        spec, opts);
  EXPECT_GE(sampler.samplesTaken(), 2u);  // at least the two boundaries
  std::ostringstream csv;
  sampler.writeCsv(csv);
  const std::string text = csv.str();
  // Directed per-link heatmap rows named by endpoints, plus the standard
  // machine gauges.
  EXPECT_NE(text.find("link/0>1/messages"), std::string::npos);
  EXPECT_NE(text.find("link/3>2/messages"), std::string::npos);
  EXPECT_NE(text.find("ops/reads"), std::string::npos);
  EXPECT_NE(text.find("net/availability"), std::string::npos);
  EXPECT_NE(text.find("engine/queue_ring_events"), std::string::npos);
}

// --------------------------------------------------------------------------
// Registry JSON and the unified report rendering
// --------------------------------------------------------------------------

TEST(ObsRegistry, JsonFoldsPathsAndIndexRunsIntoArrays) {
  obs::MetricsRegistry reg;
  reg.text("run/name", "x\"y");
  reg.value("run/n", 3.0);
  reg.value("phase/0/a", 1.0);
  reg.value("phase/1/a", 2.5);
  reg.value("top", 4.0);
  EXPECT_EQ(reg.toJson(),
            "{\"run\":{\"name\":\"x\\\"y\",\"n\":3},"
            "\"phase\":[{\"a\":1},{\"a\":2.5}],\"top\":4}");
  EXPECT_EQ(obs::MetricsRegistry{}.toJson(), "{}");
}

TEST(ObsRegistry, MarkTruncateScopesPhaseLifetimeEntries) {
  obs::MetricsRegistry reg;
  reg.value("a", 1.0);
  const std::size_t mark = reg.mark();
  int inFlight = 3;
  reg.gauge("serve/in_flight", [&inFlight] { return double(inFlight); });
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.numberAt(1), 3.0);
  reg.truncate(mark);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsReport, JsonSharesTheTextReportsSourceOfTruth) {
  WorkloadSpec spec;
  spec.name = "tiny";
  spec.numObjects = 8;
  spec.objectBytes = 64;
  spec.seed = 7;
  spec.phases.push_back(PhaseSpec{"only", 4, 0.5, 0.0, 0, 0.0, true, {}});
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(2, 2), RuntimeConfig::accessTree(4), spec);
  const std::string json = workload::reportJson(r);
  EXPECT_EQ(json, workload::reportJson(r)) << "report JSON not deterministic";
  // Spot checks against the report the text table renders from.
  EXPECT_NE(json.find("\"run\":{\"workload\":\"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"4-ary access tree\""), std::string::npos);
  EXPECT_NE(json.find("\"injected\":" + std::to_string(r.injected)), std::string::npos);
  EXPECT_NE(json.find("\"phase\":[{\"name\":\"only\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\":" + std::to_string(r.phases[0].reads)),
            std::string::npos);
  // Closed-loop run: no serve subobject anywhere.
  EXPECT_EQ(json.find("\"serve\""), std::string::npos);
}

}  // namespace
}  // namespace diva
