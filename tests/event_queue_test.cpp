// Dedicated coverage for the calendar-style event queue behind
// sim::Engine (sim/event_queue.hpp): a randomized differential test
// against a std::priority_queue oracle, and targeted FIFO-among-equals
// checks across the queue's tier boundaries (bucket ring, sorted front
// tier, overflow heap).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <queue>
#include <tuple>
#include <vector>

#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace diva::sim {
namespace {

// ---------------------------------------------------------------------------
// Differential test: the engine vs a (time, sequence) priority queue
// ---------------------------------------------------------------------------

/// Reference implementation of the engine's documented ordering: strict
/// (time, insertion order). Same clamp-to-now semantics as Engine.
class OracleEngine {
 public:
  void scheduleAt(double t, int id) {
    if (t <= now_) t = now_;
    heap_.push(Entry{t, seq_++, id});
  }

  /// Drains the queue; calls `fire(id)` for every event in order. The
  /// callback may schedule more events via scheduleAt.
  template <typename F>
  void run(F&& fire) {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      heap_.pop();
      now_ = e.time;
      fire(e.id);
    }
  }

  double now() const { return now_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    int id;
    bool operator>(const Entry& o) const {
      return std::tie(time, seq) > std::tie(o.time, o.seq);
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

/// The shared scenario: event `id` fires at some time and deterministically
/// schedules children whose deltas mix the schedule shapes the tiers are
/// built for — dense quantized near-future times (bucket ring), re-entrant
/// zero deltas (sorted front tier), far-future spikes (overflow), and
/// repeated exact timestamps (FIFO groups). Both engines run the same
/// generator, so any divergence in firing order or clocks is a queue bug.
struct Scenario {
  std::uint64_t seed;
  int maxEvents;

  /// Children of `id` as (delta, childId) pairs, derived purely from the
  /// scenario seed and `id`.
  template <typename Schedule>
  void expand(int id, int& nextId, Schedule&& schedule) const {
    support::SplitMix64 rng(support::hashCombine(seed, static_cast<std::uint64_t>(id)));
    const int kids = static_cast<int>(rng.below(3));  // 0..2 children
    for (int k = 0; k < kids; ++k) {
      if (nextId >= maxEvents) return;
      double delta = 0.0;
      switch (rng.below(8)) {
        case 0: delta = 0.0; break;                                    // re-entrant at now
        case 1: delta = 5.0; break;                                    // the quantum
        case 2: delta = 5.0 * static_cast<double>(1 + rng.below(4)); break;
        case 3: delta = 2500.0 + static_cast<double>(rng.below(5)) * 250.0; break;
        case 4: delta = 40000.0; break;                                // deep overflow
        case 5: delta = 0.25 * static_cast<double>(rng.below(40)); break;  // sub-quantum
        default: delta = static_cast<double>(rng.below(97)); break;    // dense integers
      }
      schedule(delta, nextId++);
    }
  }
};

TEST(EventQueue, MatchesPriorityQueueOracleOnMixedSchedules) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 99991ull}) {
    const Scenario sc{seed, 20000};

    // Real engine run.
    std::vector<std::pair<int, double>> realLog;
    double realEnd = 0.0;
    {
      Engine e;
      int nextId = 1000;
      // Fire closure: records, then expands children (shared generator).
      struct Fire {
        Engine* e;
        const Scenario* sc;
        std::vector<std::pair<int, double>>* log;
        int* nextId;
        int id;
        void operator()() const {
          log->emplace_back(id, e->now());
          sc->expand(id, *nextId, [&](double delta, int child) {
            e->scheduleAfter(delta, Fire{e, sc, log, nextId, child});
          });
        }
      };
      for (int i = 0; i < 64; ++i) {
        e.scheduleAt(static_cast<double>(i % 13), Fire{&e, &sc, &realLog, &nextId, i});
      }
      realEnd = e.run();
    }

    // Oracle run of the same scenario.
    std::vector<std::pair<int, double>> oracleLog;
    double oracleEnd = 0.0;
    {
      OracleEngine e;
      int nextId = 1000;
      for (int i = 0; i < 64; ++i) e.scheduleAt(static_cast<double>(i % 13), i);
      e.run([&](int id) {
        oracleLog.emplace_back(id, e.now());
        sc.expand(id, nextId, [&](double delta, int child) {
          e.scheduleAt(e.now() + delta, child);
        });
      });
      oracleEnd = e.now();
    }

    ASSERT_EQ(realLog.size(), oracleLog.size()) << "seed " << seed;
    for (std::size_t i = 0; i < realLog.size(); ++i) {
      ASSERT_EQ(realLog[i].first, oracleLog[i].first)
          << "firing order diverged at event " << i << " (seed " << seed << ")";
      ASSERT_EQ(realLog[i].second, oracleLog[i].second)
          << "clock diverged at event " << i << " (seed " << seed << ")";
    }
    EXPECT_EQ(realEnd, oracleEnd) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// FIFO-among-equals across tier boundaries
// ---------------------------------------------------------------------------

/// Drives the engine past calibration with a dense schedule so the bucket
/// ring is active, then returns the calibrated width (sanity-checked so
/// the boundary tests below know which tier a given delta lands in).
double activateRing(Engine& e) {
  int fired = 0;
  for (int i = 0; i < 400; ++i) {
    e.scheduleAt(static_cast<double>(i % 40), [&fired] { ++fired; });
  }
  e.run();
  const double w = e.queueStats().bucketWidthUs;
  EXPECT_GT(w, 0.0) << "ring failed to calibrate";
  return w;
}

TEST(EventQueue, FifoPreservedWhenOverflowMigratesIntoRing) {
  Engine e;
  const double w = activateRing(e);
  // The window covers 512 buckets; pick a target far beyond it so the
  // first event provably enters the overflow tier.
  const double horizon = w * 512.0;
  const double target = e.now() + horizon * 4.0 + 1000.0;
  ASSERT_LT(e.now() + horizon, target);

  std::vector<int> order;
  // A: scheduled while `target` is beyond the window -> overflow tier.
  e.scheduleAt(target, [&] { order.push_back(0); });
  // Stepping stones walk now() forward so the window slides over `target`
  // (each step stays inside the then-current window).
  const int steps = 12;
  for (int i = 1; i <= steps; ++i) {
    const double at = e.now() + (target - 1.0 - e.now()) * i / steps;
    const int idx = i;
    e.scheduleAt(at, [&order, &e, target, idx, steps] {
      if (idx == steps) {
        // B: same absolute timestamp, scheduled after the window slid
        // (the time now lives in the ring or front tier). FIFO demands
        // it fires after A.
        e.scheduleAt(target, [&order] { order.push_back(1); });
      }
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0) << "overflow-tier event must keep its FIFO slot";
  EXPECT_EQ(order[1], 1);
  EXPECT_GT(e.queueStats().overflowPushes, 0u) << "scenario never hit the overflow tier";
  EXPECT_GT(e.queueStats().migratedEvents, 0u) << "scenario never migrated";
}

TEST(EventQueue, FifoPreservedAcrossBucketRedistribution) {
  Engine e;
  const double w = activateRing(e);
  // Interleaved same-time pushes at a time a few buckets ahead (ring
  // tier), plus same-time pushes issued from an event in the preceding
  // bucket-or-same-bucket region (front tier after redistribution).
  const double target = e.now() + 4.0 * w + w * 0.5;
  std::vector<int> order;
  e.scheduleAt(target, [&] { order.push_back(0); });
  e.scheduleAt(target + w, [&] { order.push_back(100); });  // decoy, later bucket
  e.scheduleAt(target, [&] { order.push_back(1); });
  e.scheduleAt(target - 0.25 * w, [&] {
    // Runs just before `target`; by now target's bucket is either being
    // drained (front tier) or still in the ring — both must append.
    e.scheduleAt(target, [&order] { order.push_back(2); });
  });
  e.scheduleAt(target, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 2, 100}));
}

TEST(EventQueue, ReentrantSchedulingAtNowStaysFifoAfterCalibration) {
  Engine e;
  activateRing(e);
  std::vector<int> order;
  const double t = e.now() + 17.0;
  e.scheduleAt(t, [&] {
    order.push_back(0);
    e.scheduleAt(t, [&order] { order.push_back(2); });  // behind the pending group
  });
  e.scheduleAt(t, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, JumpOverEmptyWindowKeepsOrder) {
  // Sparse far-apart events after calibration: the ring repeatedly runs
  // dry and the window jumps to the overflow minimum.
  Engine e;
  activateRing(e);
  std::vector<double> times;
  double t = e.now();
  for (int i = 0; i < 40; ++i) {
    t += 1e5 + 13.0 * i;  // far beyond any plausible window
    e.scheduleAt(t, [&times, &e] { times.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(times.size(), 40u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LT(times[i - 1], times[i]);
  EXPECT_EQ(e.now(), t);
}

TEST(EventQueue, InfiniteTimestampsFireLastInFifoOrder) {
  // t = +infinity is a legal timestamp (a zero-bandwidth cost model
  // yields infinite stream times): it must sort after every finite time
  // and stay FIFO among equals, and must not poison the window-jump
  // arithmetic once the ring is active.
  Engine e;
  activateRing(e);
  std::vector<int> order;
  const double inf = std::numeric_limits<double>::infinity();
  e.scheduleAt(inf, [&] { order.push_back(99); });
  e.scheduleAt(e.now() + 5.0, [&] { order.push_back(1); });
  e.scheduleAt(inf, [&] { order.push_back(100); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 99, 100}));
  EXPECT_EQ(e.now(), inf);
}

TEST(EventQueue, StatsExposeTierTraffic) {
  Engine e;
  activateRing(e);
  const auto& before = e.queueStats();
  EXPECT_GT(before.bucketWidthUs, 0.0);
  // A dense burst after calibration rides the ring: total pushes grow,
  // sorted pushes stay (nearly) flat.
  const auto sortedBefore = before.sortedPushes;
  const auto ringBefore = before.ringPushes;
  for (int i = 0; i < 256; ++i) {
    e.scheduleAfter(1.0 + static_cast<double>(i % 7), [] {});
  }
  e.run();
  const auto after = e.queueStats();
  EXPECT_GE(after.ringPushes, ringBefore + 200);
  EXPECT_LE(after.sortedPushes, sortedBefore + 56);
}

}  // namespace
}  // namespace diva::sim
