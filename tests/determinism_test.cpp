// Golden event-trace regression: a seeded end-to-end run (access-tree
// strategy + barriers, on a mesh and on a graph topology) hashes its
// message-delivery trace (time, node, channel) and compares against a
// committed golden value. A queue rewrite that silently reorders the
// simulated model — even while every self-consistency test still passes —
// changes this hash.
//
// The hash depends only on IEEE double arithmetic evaluated in program
// order (the cost model uses +, *, max), so it is stable across -O levels
// and toolchains on the same FP semantics (x86-64 SSE2, no FMA
// contraction). If a new platform ever legitimately disagrees, regenerate
// the goldens from the values these tests print on failure.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/graph_topology.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using sim::Task;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

/// Runs the reference workload on `spec` and returns the delivery-trace
/// hash: every processor does seeded compute/read/write rounds separated
/// by barriers, so the trace covers the data-management protocol, the
/// barrier service and the full message pipeline.
std::uint64_t traceHash(const net::TopologySpec& spec) {
  Machine m(spec);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1, /*seed=*/42).on(spec));
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  m.net.setDeliveryProbe([&hash](sim::Time t, NodeId node, net::Channel ch) {
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t));
    hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    hash = fnv1a(hash, static_cast<std::uint64_t>(ch));
  });

  const NodeId procs = static_cast<NodeId>(m.numProcs());
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(rt.createVarFree(static_cast<NodeId>((i * 7 + 3) % procs),
                                    makeValue<std::int64_t>(i)));
  }
  for (NodeId p = 0; p < procs; ++p) {
    sim::spawn([](Machine& mm, Runtime& r, NodeId self, std::vector<VarId>& vs) -> Task<> {
      const NodeId procs = static_cast<NodeId>(mm.numProcs());
      support::SplitMix64 rng(support::hashCombine(99, static_cast<std::uint64_t>(self)));
      for (int round = 0; round < 4; ++round) {
        co_await mm.net.compute(self, rng.uniform(0.0, 300.0));
        const VarId v = vs[rng.below(vs.size())];
        // Exactly one writer per round (concurrent writes to a variable
        // are illegal without a lock); everyone else reads concurrently.
        if (self == (round * 5 + 1) % procs) {
          const auto cur = valueAs<std::int64_t>(co_await r.read(self, v));
          co_await r.write(self, v, makeValue<std::int64_t>(cur + self));
        } else {
          (void)co_await r.read(self, v);
        }
        co_await r.barrier(self);
      }
    }(m, rt, p, vars));
  }
  m.run();
  rt.checkAllInvariants();
  return hash;
}

TEST(DeterminismGolden, MeshEventTraceMatchesCommittedHash) {
  const std::uint64_t h = traceHash(net::TopologySpec::mesh2d(4, 4));
  // Committed golden (see file header for when to regenerate).
  const std::uint64_t kGolden = 0x2d6da8c3dd1d75dcull;
  EXPECT_EQ(h, kGolden) << "mesh trace hash changed: 0x" << std::hex << h
                        << " — the simulated model is no longer identical";
}

TEST(DeterminismGolden, GraphEventTraceMatchesCommittedHash) {
  const std::uint64_t h =
      traceHash(net::TopologySpec::graph(net::randomRegularGraph(16, 3, 7)));
  const std::uint64_t kGolden = 0x6abc3cd75895995aull;
  EXPECT_EQ(h, kGolden) << "graph trace hash changed: 0x" << std::hex << h
                        << " — the simulated model is no longer identical";
}

/// Delivery-trace hash of the committed hotspot scenario under the 4-ary
/// access tree: pins the whole workload pipeline — scenario parser, split
/// streams, Zipf sampler (integral exponent: exact arithmetic), driver,
/// strategy, locks, barriers. Editing scenarios/hotspot.scenario or any
/// generator implies regenerating this golden deliberately.
std::uint64_t scenarioTraceHash(const net::TopologySpec& spec, const char* file) {
  const workload::WorkloadSpec wl =
      workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) + "/" + file);
  Machine m(spec);
  RuntimeConfig rc = RuntimeConfig::accessTree(4, 1, wl.seed).on(spec);
  Runtime rt(m, rc);
  std::uint64_t hash = 14695981039346656037ull;
  m.net.setDeliveryProbe([&hash](sim::Time t, NodeId node, net::Channel ch) {
    hash = fnv1a(hash, std::bit_cast<std::uint64_t>(t));
    hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    hash = fnv1a(hash, static_cast<std::uint64_t>(ch));
  });
  (void)workload::run(m, rt, wl);
  rt.checkAllInvariants();
  return hash;
}

TEST(DeterminismGolden, HotspotScenarioTraceMatchesCommittedHash) {
  const std::uint64_t h =
      scenarioTraceHash(net::TopologySpec::mesh2d(8, 8), "hotspot.scenario");
  const std::uint64_t kGolden = 0x22c46d1f015b5bc6ull;
  EXPECT_EQ(h, kGolden) << "hotspot scenario trace hash changed: 0x" << std::hex << h
                        << " — workload generation or the simulated model moved";
}

TEST(DeterminismGolden, OpenLoopScenarioTraceMatchesCommittedHash) {
  // Pins the open-loop serving pipeline on top of everything the hotspot
  // golden covers: Poisson/burst arrival generation (portableLog — IEEE
  // arithmetic only), trace-file replay, queue-bound shedding and the
  // scheduled-arrival driver. Editing scenarios/openloop.scenario or
  // scenarios/sample.trace implies regenerating this golden deliberately.
  const std::uint64_t h =
      scenarioTraceHash(net::TopologySpec::mesh2d(8, 8), "openloop.scenario");
  const std::uint64_t kGolden = 0x56f64c3f9578eeeeull;
  EXPECT_EQ(h, kGolden) << "openloop scenario trace hash changed: 0x" << std::hex << h
                        << " — arrival generation or the serving driver moved";
}

TEST(DeterminismGolden, TraceHashIsRunToRunStable) {
  // Guards the harness itself: two runs in one process must agree (no
  // address-dependent or allocation-order-dependent inputs leak in).
  const auto spec = net::TopologySpec::mesh2d(4, 4);
  EXPECT_EQ(traceHash(spec), traceHash(spec));
}

}  // namespace
}  // namespace diva
