// Tests for the pluggable topology layer: routing validity across every
// topology (link-sequence correctness, hop count == distance, torus
// wraparound direction, hypercube bit flips), decomposition/embedding
// sanity, fail-fast construction, and end-to-end strategy runs on every
// network shape.

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <numeric>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/hypercube_topology.hpp"
#include "net/mesh_topology.hpp"
#include "net/topology.hpp"
#include "net/torus_topology.hpp"
#include "support/rng.hpp"

namespace diva {
namespace {

using net::NodeId;
using net::TopologySpec;

std::vector<TopologySpec> allShapes() {
  return {TopologySpec::mesh2d(4, 5),  TopologySpec::mesh2d(1, 7),
          TopologySpec::torus2d(4, 6), TopologySpec::torus2d(5, 5),
          TopologySpec::hypercube(4),  TopologySpec::hypercube(1)};
}

/// Does processor p lie in the cluster of `treeNode`? (Climb from p's leaf.)
bool inCluster(const net::ClusterTree& tree, int treeNode, NodeId p) {
  for (int n = tree.leafOf(p); n >= 0; n = tree.parent(n))
    if (n == treeNode) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(TopologyRouting, RoutesFollowLinksAndMatchDistance) {
  for (const auto& spec : allShapes()) {
    const auto topo = net::makeTopology(spec);
    const int n = topo->numNodes();
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        const auto hops = net::routeOf(*topo, a, b);
        ASSERT_EQ(static_cast<int>(hops.size()), topo->distance(a, b))
            << spec.describe() << " " << a << "->" << b;
        NodeId cur = a;
        for (const net::Hop& h : hops) {
          // The hop's link must be a real directed link out of `cur`
          // leading exactly to the hop's target.
          const int dir = h.link - topo->linkIndex(cur, 0);
          ASSERT_GE(dir, 0) << spec.describe();
          ASSERT_LT(dir, topo->degree()) << spec.describe();
          ASSERT_EQ(topo->linkIndex(cur, dir), h.link);
          ASSERT_EQ(topo->neighbor(cur, dir), h.to)
              << spec.describe() << " " << a << "->" << b << " at node " << cur;
          cur = h.to;
        }
        ASSERT_EQ(cur, b) << spec.describe();
        // nextHop is the first node of the route (or `a` when trivial).
        ASSERT_EQ(topo->nextHop(a, b), hops.empty() ? a : hops.front().to);
      }
    }
  }
}

TEST(TopologyRouting, TorusWraparoundPicksShorterDirection) {
  const auto topo = net::makeTopology(TopologySpec::torus2d(4, 6));
  auto at = [&](int r, int c) { return static_cast<NodeId>(r * 6 + c); };

  // (0,0) -> (0,5): one hop West around the wrap, not five hops East.
  EXPECT_EQ(topo->distance(at(0, 0), at(0, 5)), 1);
  EXPECT_EQ(topo->nextHop(at(0, 0), at(0, 5)), at(0, 5));

  // (0,0) -> (3,0): one hop North around the wrap.
  EXPECT_EQ(topo->distance(at(0, 0), at(3, 0)), 1);
  EXPECT_EQ(topo->nextHop(at(0, 0), at(3, 0)), at(3, 0));

  // (0,1) -> (0,4): tie on the 6-ring (3 either way) breaks East.
  EXPECT_EQ(topo->distance(at(0, 1), at(0, 4)), 3);
  EXPECT_EQ(topo->nextHop(at(0, 1), at(0, 4)), at(0, 2));

  // A size-1 ring has no wrap link — neighbor() must not report a
  // self-loop.
  const auto ribbon = net::makeTopology(TopologySpec::torus2d(1, 7));
  EXPECT_EQ(ribbon->neighbor(3, mesh::Mesh::South), -1);
  EXPECT_EQ(ribbon->neighbor(3, mesh::Mesh::North), -1);
  EXPECT_EQ(ribbon->neighbor(6, mesh::Mesh::East), 0);  // the 7-ring wraps

  // Distances are symmetric and never exceed the mesh distance.
  const auto meshTopo = net::makeTopology(TopologySpec::mesh2d(4, 6));
  for (NodeId a = 0; a < 24; ++a) {
    for (NodeId b = 0; b < 24; ++b) {
      EXPECT_EQ(topo->distance(a, b), topo->distance(b, a));
      EXPECT_LE(topo->distance(a, b), meshTopo->distance(a, b));
    }
  }
}

TEST(TopologyRouting, HypercubeRoutesFlipOneAscendingBitPerHop) {
  const auto topo = net::makeTopology(TopologySpec::hypercube(4));
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      const auto hops = net::routeOf(*topo, a, b);
      EXPECT_EQ(static_cast<int>(hops.size()),
                std::popcount(static_cast<std::uint32_t>(a ^ b)));
      NodeId cur = a;
      int lastDim = -1;
      for (const net::Hop& h : hops) {
        const auto flipped = static_cast<std::uint32_t>(cur ^ h.to);
        ASSERT_EQ(std::popcount(flipped), 1) << a << "->" << b;
        const int dim = std::countr_zero(flipped);
        ASSERT_GT(dim, lastDim) << "e-cube order violated";  // dimensions ascend
        lastDim = dim;
        cur = h.to;
      }
      ASSERT_EQ(cur, b);
    }
  }
}

TEST(TopologyRouting, MeshMatchesLegacyDimensionOrderRouting) {
  // The topology route of the mesh must be bit-identical to the original
  // arithmetic dimension-order walk the network hot path always used.
  const mesh::Mesh grid(5, 7);
  const net::MeshTopology topo(5, 7);
  for (NodeId a = 0; a < 35; ++a) {
    for (NodeId b = 0; b < 35; ++b) {
      const auto legacy = mesh::routeOf(grid, a, b);
      const auto generic = net::routeOf(topo, a, b);
      ASSERT_EQ(legacy.size(), generic.size());
      for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(legacy[i].link, generic[i].link);
        EXPECT_EQ(legacy[i].to, generic[i].to);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Decomposition and embedding
// ---------------------------------------------------------------------------

TEST(TopologyDecomposition, TreesPartitionAndEmbedWithinClusters) {
  for (const auto& spec : allShapes()) {
    const auto topo = net::makeTopology(spec);
    const int procs = topo->numNodes();
    for (const auto& params :
         {net::DecompParams{2, 1}, net::DecompParams{4, 1}, net::DecompParams{16, 1},
          net::DecompParams{2, 4}}) {
      const auto tree = topo->decompose(params);

      // Leaf tables are mutually inverse permutations.
      ASSERT_EQ(tree->numProcs(), procs);
      for (NodeId p = 0; p < procs; ++p) {
        EXPECT_EQ(tree->procOfLeaf(tree->leafOf(p)), p);
        EXPECT_EQ(tree->procOfRank(tree->rankOf(p)), p);
      }

      // Tree structure: children sizes sum to the parent's, indexInParent
      // matches position, depths increase by one.
      for (int i = 0; i < tree->numNodes(); ++i) {
        const auto& nd = tree->node(i);
        if (nd.isLeaf()) {
          EXPECT_EQ(nd.size, 1);
          continue;
        }
        int sum = 0;
        for (std::size_t c = 0; c < nd.children.size(); ++c) {
          const auto& cd = tree->node(nd.children[c]);
          EXPECT_EQ(cd.parent, i);
          EXPECT_EQ(cd.indexInParent, static_cast<int>(c));
          EXPECT_EQ(cd.depth, nd.depth + 1);
          sum += cd.size;
        }
        EXPECT_EQ(sum, nd.size) << spec.describe();
      }

      // Embeddings host every tree node on a processor of its own cluster,
      // deterministically, for both kinds.
      for (const auto kind : {net::EmbeddingKind::Regular, net::EmbeddingKind::Random}) {
        for (std::uint64_t var : {1ull, 2ull, 99ull}) {
          for (int i = 0; i < tree->numNodes(); ++i) {
            const NodeId host = tree->hostOf(i, var, kind, 42);
            ASSERT_GE(host, 0);
            ASSERT_LT(host, procs);
            EXPECT_TRUE(inCluster(*tree, i, host))
                << spec.describe() << " node " << i << " hosted outside its cluster";
            EXPECT_EQ(host, tree->hostOf(i, var, kind, 42)) << "non-deterministic";
          }
        }
      }

      // childToward agrees with the ancestor chain.
      for (NodeId p = 0; p < procs; ++p) {
        int cur = tree->leafOf(p);
        while (tree->parent(cur) >= 0) {
          EXPECT_EQ(tree->childToward(tree->parent(cur), p), cur);
          cur = tree->parent(cur);
        }
        EXPECT_EQ(tree->childToward(tree->leafOf(p), p), -1);  // leaf has no child
      }
    }

    // Canonical leaf order is a permutation of the processors.
    auto order = net::canonicalLeafOrder(*topo);
    ASSERT_EQ(static_cast<int>(order.size()), procs);
    std::sort(order.begin(), order.end());
    for (NodeId p = 0; p < procs; ++p) EXPECT_EQ(order[p], p);
  }
}

TEST(TopologyDecomposition, MeshTreeMatchesLegacyDecomposition) {
  const net::MeshTopology topo(4, 3);
  const mesh::Mesh grid(4, 3);
  const mesh::Decomposition legacy(grid, mesh::Decomposition::Params{2, 1});
  const auto tree = topo.decompose(net::DecompParams{2, 1});
  ASSERT_EQ(tree->numNodes(), legacy.numNodes());
  for (int i = 0; i < tree->numNodes(); ++i) {
    EXPECT_EQ(tree->parent(i), legacy.parent(i));
    EXPECT_EQ(tree->depthOf(i), legacy.depthOf(i));
    EXPECT_EQ(tree->node(i).children, legacy.node(i).children);
  }
  EXPECT_EQ(tree->leafOrder(), legacy.leafOrder());
  // Hosts are computed by the very same embedding.
  const mesh::Embedding embed(legacy, mesh::EmbeddingKind::Regular, 7);
  for (int i = 0; i < tree->numNodes(); ++i)
    for (std::uint64_t var : {1ull, 5ull})
      EXPECT_EQ(tree->hostOf(i, var, net::EmbeddingKind::Regular, 7),
                embed.hostOf(i, var));
}

// ---------------------------------------------------------------------------
// Fail-fast construction and configuration validation
// ---------------------------------------------------------------------------

TEST(TopologyValidation, RejectsInvalidDimensions) {
  EXPECT_THROW((void)net::makeTopology(TopologySpec::mesh2d(0, 4)), support::CheckError);
  EXPECT_THROW((void)net::makeTopology(TopologySpec::torus2d(4, -1)),
               support::CheckError);
  EXPECT_THROW((void)net::makeTopology(TopologySpec::hypercube(-1)),
               support::CheckError);
  EXPECT_THROW((void)net::makeTopology(TopologySpec::hypercube(21)),
               support::CheckError);
  EXPECT_THROW(Machine(TopologySpec::mesh2d(0, 0)), support::CheckError);
}

TEST(TopologyValidation, RuntimeRejectsInvalidConfig) {
  Machine m(4, 4);
  EXPECT_THROW(Runtime(m, RuntimeConfig::accessTree(3, 1)), support::CheckError);
  EXPECT_THROW(Runtime(m, RuntimeConfig::accessTree(4, 0)), support::CheckError);
  EXPECT_THROW(Runtime(m, RuntimeConfig::accessTree(4, 33)), support::CheckError);
}

TEST(TopologyValidation, RuntimeRejectsMismatchedTopologySpec) {
  Machine m(TopologySpec::torus2d(4, 4));
  // Pinning the config to the machine's own shape is fine...
  Runtime ok(m, RuntimeConfig::accessTree(4, 1).on(TopologySpec::torus2d(4, 4)));
  // ...any other shape fails fast instead of silently measuring the wrong
  // machine.
  EXPECT_THROW(Runtime(m, RuntimeConfig::accessTree(4, 1).on(TopologySpec::mesh2d(4, 4))),
               support::CheckError);
  EXPECT_THROW(
      Runtime(m, RuntimeConfig::fixedHome().on(TopologySpec::torus2d(4, 8))),
      support::CheckError);
  // hypercube(0) is a constructible 1-node machine, so pinning it counts
  // as "specified" and must still trip the mismatch check.
  EXPECT_THROW(
      Runtime(m, RuntimeConfig::accessTree(4, 1).on(TopologySpec::hypercube(0))),
      support::CheckError);
}

// ---------------------------------------------------------------------------
// End-to-end: both strategies run on every topology
// ---------------------------------------------------------------------------

class TopologyEndToEnd : public ::testing::TestWithParam<TopologySpec> {};

TEST_P(TopologyEndToEnd, StrategiesRunAndInvariantsHoldAtQuiescence) {
  const TopologySpec spec = GetParam();
  for (const auto& rc :
       {RuntimeConfig::accessTree(4, 1), RuntimeConfig::accessTree(2, 2),
        RuntimeConfig::fixedHome()}) {
    Machine m(spec);
    Runtime rt(m, rc);
    const int procs = m.numProcs();

    constexpr int kVars = 4;
    constexpr int kOpsPerProc = 6;
    std::vector<VarId> vars;
    for (int i = 0; i < kVars; ++i)
      vars.push_back(rt.createVarFree(static_cast<NodeId>((i * 5) % procs),
                                      makeValue<std::int64_t>(0), /*withLock=*/true));

    std::vector<int> increments(kVars, 0);
    for (NodeId p = 0; p < procs; ++p) {
      sim::spawn([](Machine& mm, Runtime& r, NodeId self, std::vector<VarId>& vs,
                    std::vector<int>& counts) -> sim::Task<> {
        support::SplitMix64 rng(
            support::hashCombine(99, static_cast<std::uint64_t>(self)));
        for (int op = 0; op < kOpsPerProc; ++op) {
          const int which = static_cast<int>(rng.below(kVars));
          co_await mm.net.compute(self, rng.uniform(0.0, 300.0));
          co_await r.lock(self, vs[which]);
          const auto v = valueAs<std::int64_t>(co_await r.read(self, vs[which]));
          co_await r.write(self, vs[which], makeValue<std::int64_t>(v + 1));
          ++counts[which];
          co_await r.unlock(self, vs[which]);
        }
        co_await r.barrier(self);
      }(m, rt, p, vars, increments));
    }
    m.run();
    rt.checkAllInvariants();
    for (int i = 0; i < kVars; ++i)
      EXPECT_EQ(valueAs<std::int64_t>(rt.peek(vars[i])), increments[i])
          << "lost update on " << spec.describe() << " with " << rt.strategyName();
    EXPECT_GT(m.stats.links.totalMessages(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyEndToEnd,
                         ::testing::Values(TopologySpec::mesh2d(4, 4),
                                           TopologySpec::torus2d(4, 4),
                                           TopologySpec::hypercube(4)),
                         [](const auto& info) {
                           std::string s = info.param.describe();
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

}  // namespace
}  // namespace diva
