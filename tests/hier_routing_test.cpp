// Differential tests for hierarchical landmark-ball routing
// (net/hier_routing.hpp, docs/routing.md): every hierarchical route is
// checked against the dense Dijkstra oracle of GraphTopology on a seeded
// corpus of graph shapes — validity (every hop a real link, terminates
// at the destination), the documented stretch bound, determinism across
// rebuilds, and strategy-level equivalence: the same race-free operation
// sequence yields the same values on the dense and the hierarchical
// machine, with protocol invariants intact at quiescence, including
// under scripted link failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/graph_topology.hpp"
#include "net/hier_routing.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using net::GraphSpec;
using net::NodeId;
using net::TopologySpec;

/// The documented stretch bound: hierarchical hop count never exceeds
/// this multiple of the dense shortest-path hop count (docs/routing.md).
constexpr double kStretchBound = 3.0;

/// The seeded corpus: every generator family of the graph layer, sizes
/// 8–512 (the dense oracle stays affordable at 512).
std::vector<GraphSpec> corpus() {
  return {
      net::ringGraph(8),
      net::ringGraph(129),
      net::starGraph(64),
      net::gridGraph(3, 3),
      net::gridGraph(16, 17),
      net::fatTreeGraph(2, 4),
      net::fatTreeGraph(4, 4),
      net::randomRegularGraph(32, 3, 7),
      net::randomRegularGraph(512, 4, 1234),
  };
}

/// Sampled (from, to) pairs: exhaustive on small graphs, a seeded sample
/// on large ones — deterministic either way.
std::vector<std::pair<NodeId, NodeId>> samplePairs(int n, std::uint64_t seed) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (n <= 64) {
    for (NodeId a = 0; a < n; ++a)
      for (NodeId b = 0; b < n; ++b) pairs.emplace_back(a, b);
    return pairs;
  }
  support::SplitMix64 rng(seed);
  for (int i = 0; i < 4000; ++i) {
    const auto a = static_cast<NodeId>(rng.next() % static_cast<std::uint64_t>(n));
    const auto b = static_cast<NodeId>(rng.next() % static_cast<std::uint64_t>(n));
    pairs.emplace_back(a, b);
  }
  return pairs;
}

/// Walk `route` from `from`, asserting every hop is a real link of
/// `topo`; returns the endpoint.
NodeId walkRoute(const net::Topology& topo, NodeId from,
                 const std::vector<net::Hop>& route) {
  NodeId cur = from;
  for (const net::Hop& h : route) {
    const int dir = h.link - topo.linkIndex(cur, 0);
    EXPECT_GE(dir, 0);
    EXPECT_LT(dir, topo.degree());
    const NodeId next = topo.neighbor(cur, dir);
    EXPECT_GE(next, 0) << "route uses an empty link slot";
    EXPECT_EQ(next, h.to);
    cur = next;
  }
  return cur;
}

TEST(HierRouting, RoutesValidAndBoundedStretchOnCorpus) {
  double worstStretch = 1.0;
  for (const GraphSpec& g : corpus()) {
    const auto dense = net::makeTopology(TopologySpec::graph(g));
    const auto hier = net::makeTopology(TopologySpec::hierGraph(g));
    ASSERT_EQ(hier->numNodes(), dense->numNodes()) << g.name;
    for (const auto& [a, b] : samplePairs(dense->numNodes(), 99)) {
      const auto route = net::routeOf(*hier, a, b);
      ASSERT_EQ(walkRoute(*hier, a, route), b) << g.name << " " << a << "->" << b;
      ASSERT_EQ(static_cast<int>(route.size()), hier->distance(a, b)) << g.name;
      const int denseHops = dense->distance(a, b);
      if (denseHops > 0) {
        const double stretch = static_cast<double>(route.size()) / denseHops;
        worstStretch = std::max(worstStretch, stretch);
        ASSERT_LE(stretch, kStretchBound)
            << g.name << " " << a << "->" << b << ": " << route.size()
            << " hops vs dense " << denseHops;
      } else {
        ASSERT_TRUE(route.empty()) << g.name;
      }
    }
  }
  RecordProperty("worst_stretch", std::to_string(worstStretch));
  std::printf("[corpus] worst measured stretch: %.3f (bound %.1f)\n", worstStretch,
              kStretchBound);
}

TEST(HierRouting, NextHopMatchesAppendRoute) {
  for (const GraphSpec& g : corpus()) {
    const auto hier = net::makeTopology(TopologySpec::hierGraph(g));
    for (const auto& [a, b] : samplePairs(hier->numNodes(), 17)) {
      if (a == b) {
        EXPECT_EQ(hier->nextHop(a, b), a) << g.name;
        continue;
      }
      const auto route = net::routeOf(*hier, a, b);
      ASSERT_FALSE(route.empty()) << g.name;
      EXPECT_EQ(hier->nextHop(a, b), route.front().to) << g.name << " " << a << "->" << b;
    }
  }
}

TEST(HierRouting, ArityVariantsAllSatisfyTheBound) {
  const GraphSpec g = net::randomRegularGraph(96, 3, 42);
  const auto dense = net::makeTopology(TopologySpec::graph(g));
  for (int arity : {2, 4, 16}) {
    const auto hier = net::makeTopology(TopologySpec::hierGraph(g, arity));
    for (const auto& [a, b] : samplePairs(96, 3)) {
      const auto route = net::routeOf(*hier, a, b);
      ASSERT_EQ(walkRoute(*hier, a, route), b) << "arity " << arity;
      const int denseHops = dense->distance(a, b);
      if (denseHops > 0) {
        ASSERT_LE(static_cast<double>(route.size()), kStretchBound * denseHops)
            << "arity " << arity << " " << a << "->" << b;
      }
    }
  }
}

TEST(HierRouting, DeterministicAcrossRebuilds) {
  const GraphSpec g = net::randomRegularGraph(128, 4, 5);
  const net::HierGraphTopology t1(g), t2(g);
  EXPECT_EQ(t1.totalBallEntries(), t2.totalBallEntries());
  for (const auto& [a, b] : samplePairs(128, 11))
    EXPECT_EQ(net::routeOf(t1, a, b), net::routeOf(t2, a, b)) << a << "->" << b;
}

TEST(HierRouting, SparseStateIsFarSmallerThanDenseTables) {
  // The point of the scheme: dense next-hop tables are Θ(n²) while the
  // ball arena is near-linear (docs/routing.md tabulates the growth).
  // Doubling n must grow the arena far slower than the 4× of dense
  // tables, and past the kBallMinEntries floor (n ≳ 1000) the arena must
  // be well under n² outright.
  const net::HierGraphTopology small(net::randomRegularGraph(1024, 4, 1234));
  const net::HierGraphTopology big(net::randomRegularGraph(2048, 4, 1234));
  EXPECT_LT(big.totalBallEntries(), small.totalBallEntries() * 3)
      << "arena grew superlinearly: " << small.totalBallEntries() << " -> "
      << big.totalBallEntries();
  EXPECT_LT(big.totalBallEntries() * 4, 2048ull * 2048ull)
      << "ball arena " << big.totalBallEntries() << " entries";
}

TEST(HierRouting, SpecRoundTripAndDescribe) {
  const TopologySpec s = TopologySpec::hierGraph(net::ringGraph(12), 4);
  EXPECT_EQ(s.hierArity, 4);
  const auto topo = net::makeTopology(s);
  EXPECT_TRUE(topo->spec() == s);
  EXPECT_NE(topo->spec().describe().find("-hier4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Strategy-level differential runs: dense vs hierarchical machine
// ---------------------------------------------------------------------------

/// Run one read to completion (test-driver idiom of strategy_test.cpp).
std::int64_t readInt(Machine& m, Runtime& rt, NodeId p, VarId x) {
  std::int64_t out = 0;
  sim::spawn([](Runtime& r, NodeId n, VarId v, std::int64_t& o) -> sim::Task<> {
    o = valueAs<std::int64_t>(co_await r.read(n, v));
  }(rt, p, x, out));
  m.engine.run();
  return out;
}

void writeInt(Machine& m, Runtime& rt, NodeId p, VarId x, std::int64_t v) {
  sim::spawn([](Runtime& r, NodeId n, VarId var, std::int64_t val) -> sim::Task<> {
    co_await r.write(n, var, makeValue(val));
  }(rt, p, x, v));
  m.engine.run();
}

/// Drive the same seeded race-free op sequence on both machines and
/// assert every read observes the same value — routing must be invisible
/// to strategy semantics.
void runDifferential(const TopologySpec& denseSpec, const TopologySpec& hierSpec,
                     const RuntimeConfig& config, std::uint64_t seed) {
  Machine md(denseSpec), mh(hierSpec);
  Runtime rd(md, config), rh(mh, config);
  const int n = md.numProcs();
  constexpr int kVars = 6;
  std::vector<VarId> vd, vh;
  for (int i = 0; i < kVars; ++i) {
    const NodeId owner = static_cast<NodeId>((i * 7) % n);
    vd.push_back(rd.createVarFree(owner, makeValue<std::int64_t>(i)));
    vh.push_back(rh.createVarFree(owner, makeValue<std::int64_t>(i)));
  }
  support::SplitMix64 rng(seed);
  for (int op = 0; op < 200; ++op) {
    const auto p = static_cast<NodeId>(rng.next() % static_cast<std::uint64_t>(n));
    const int i = static_cast<int>(rng.next() % kVars);
    if (rng.next() % 4 == 0) {
      const auto val = static_cast<std::int64_t>(rng.next() % 100000);
      writeInt(md, rd, p, vd[i], val);
      writeInt(mh, rh, p, vh[i], val);
    } else {
      const std::int64_t a = readInt(md, rd, p, vd[i]);
      const std::int64_t b = readInt(mh, rh, p, vh[i]);
      ASSERT_EQ(a, b) << "read divergence at op " << op;
    }
  }
  rd.checkAllInvariants();
  rh.checkAllInvariants();
  for (int i = 0; i < kVars; ++i)
    EXPECT_EQ(valueAs<std::int64_t>(rd.peek(vd[i])), valueAs<std::int64_t>(rh.peek(vh[i])));
}

TEST(HierRouting, AccessTreeEquivalentToDenseRouting) {
  const GraphSpec g = net::randomRegularGraph(48, 3, 21);
  runDifferential(TopologySpec::graph(g), TopologySpec::hierGraph(g),
                  RuntimeConfig::accessTree(4, 1), 77);
}

TEST(HierRouting, FixedHomeEquivalentToDenseRouting) {
  const GraphSpec g = net::fatTreeGraph(3, 4);
  runDifferential(TopologySpec::graph(g), TopologySpec::hierGraph(g),
                  RuntimeConfig::fixedHome(), 78);
}

TEST(HierRouting, StrategiesQuiesceOnHierCorpusWorkload) {
  workload::WorkloadSpec spec;
  spec.name = "hier-quiesce";
  spec.numObjects = 16;
  spec.seed = 5;
  spec.phases.push_back({});
  spec.phases[0].rounds = 6;
  spec.phases[0].readFraction = 0.75;
  spec.phases[0].zipfS = 1.0;
  spec.validate();
  for (const GraphSpec& g :
       {net::ringGraph(33), net::gridGraph(6, 7), net::randomRegularGraph(64, 3, 9)}) {
    for (const RuntimeConfig& cfg :
         {RuntimeConfig::accessTree(4, 1), RuntimeConfig::fixedHome()}) {
      // runOn drains between phases and the runtime checks protocol
      // invariants for every live variable at quiescence.
      const workload::WorkloadReport r =
          workload::runOn(TopologySpec::hierGraph(g), cfg, spec);
      EXPECT_GT(r.injected, 0u) << g.name;
      EXPECT_EQ(r.availability, 1.0) << g.name;
    }
  }
}

TEST(HierRouting, QuiescesUnderLinkFailures) {
  // Sever and restore real edges of the graph mid-phase: the protocols
  // must stay live (detour/park machinery) and the invariants must hold
  // at quiescence on the hierarchical machine, exactly as on dense.
  const GraphSpec g = net::randomRegularGraph(48, 3, 11);
  workload::WorkloadSpec spec;
  spec.name = "hier-faults";
  spec.numObjects = 12;
  spec.seed = 13;
  spec.phases.push_back({});
  spec.phases[0].rounds = 8;
  spec.phases[0].readFraction = 0.7;
  spec.phases[0].thinkMeanUs = 40.0;
  spec.phases[0].faults = {
      {net::FaultEvent::Kind::LinkDown, 50.0, g.edges[0].u, g.edges[0].v, 1.0, 1.0},
      {net::FaultEvent::Kind::LinkDown, 80.0, g.edges[5].u, g.edges[5].v, 1.0, 1.0},
      {net::FaultEvent::Kind::LinkUp, 400.0, g.edges[0].u, g.edges[0].v, 1.0, 1.0},
      {net::FaultEvent::Kind::LinkUp, 500.0, g.edges[5].u, g.edges[5].v, 1.0, 1.0},
  };
  spec.validate();
  for (const RuntimeConfig& cfg :
       {RuntimeConfig::accessTree(4, 1), RuntimeConfig::fixedHome()}) {
    const workload::WorkloadReport r =
        workload::runOn(TopologySpec::hierGraph(g), cfg, spec);
    EXPECT_GT(r.injected, 0u);
    EXPECT_GE(r.availability, 0.99);  // link faults detour, ops don't fail
  }
}

}  // namespace
}  // namespace diva
