// Steady-state allocation accounting for the simulator hot path, via a
// counting global allocator: once the engine, pools and dispatch tables
// have grown to a workload's working set, scheduling events and moving
// messages end to end must perform zero heap allocations. Also proves the
// pending-event leak fix without a sanitizer: tearing a machine down with
// messages still in flight returns the outstanding-allocation count to
// its pre-construction level.
//
// This lives in its own test binary: replacing the global allocator must
// not perturb the rest of the suite.

#include <gtest/gtest.h>

// GCC's inliner flags the pass-through `::operator delete(p)` →
// `std::free` chain below as a mismatched pair; the pairing is correct
// (every path allocates with malloc/aligned_alloc).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "diva/machine.hpp"
#include "net/graph_topology.hpp"
#include "obs/tracer.hpp"
#include "serve/latency_histogram.hpp"
#include "sim/engine.hpp"

namespace {

std::atomic<std::uint64_t> gAllocs{0};
std::atomic<std::uint64_t> gFrees{0};

}  // namespace

// Count every allocation path the library can take (sized, aligned,
// nothrow). gtest itself allocates too, so tests only compare counts
// taken at points where no framework allocation can interleave.
void* operator new(std::size_t n) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }

void operator delete(void* p) noexcept {
  if (p != nullptr) gFrees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::align_val_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { ::operator delete(p); }

namespace diva {
namespace {

using mesh::NodeId;

std::uint64_t allocCount() { return gAllocs.load(std::memory_order_relaxed); }
std::int64_t outstanding() {
  return static_cast<std::int64_t>(gAllocs.load(std::memory_order_relaxed)) -
         static_cast<std::int64_t>(gFrees.load(std::memory_order_relaxed));
}

TEST(Alloc, EngineEventChurnIsAllocationFreeInSteadyState) {
  struct Churn {
    sim::Engine* e;
    std::uint64_t* budget;
    std::uint64_t rng;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      const std::uint64_t next = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      e->scheduleAfter(static_cast<double>(next % 97), Churn{e, budget, next});
    }
  };
  sim::Engine e;
  // Warm-up: grows the heaps, hash table and slot pool to working depth
  // (and calibrates the bucket ring).
  std::uint64_t budget = 50'000;
  for (std::uint64_t i = 0; i < 512; ++i) {
    e.scheduleAt(static_cast<double>(i % 17), Churn{&e, &budget, i});
  }
  e.run();

  // Steady state: the same churn again, at the same working depth, must
  // not allocate at all — schedule, bucket, sift, dispatch and recycle
  // included.
  budget = 100'000;
  for (std::uint64_t i = 0; i < 512; ++i) {
    e.scheduleAt(e.now() + static_cast<double>(i % 17), Churn{&e, &budget, i});
  }
  const std::uint64_t before = allocCount();
  e.run();
  EXPECT_EQ(allocCount() - before, 0u) << "event hot path allocated";
  EXPECT_EQ(e.eventsProcessed(), 50'000u + 512u + 100'000u + 512u);
}

TEST(Alloc, BothQueueTiersAreAllocationFreeInSteadyState) {
  // Like the churn above, but the delta distribution deliberately mixes
  // dense near-future times (bucket ring), re-entrant zero deltas (sorted
  // front tier) and far-future spikes well beyond the ring window
  // (overflow tier + migration), so steady state is proven across every
  // tier transition, not just the ring.
  struct Churn {
    sim::Engine* e;
    std::uint64_t* budget;
    std::uint64_t rng;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      const std::uint64_t next = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      double delta;
      switch (next % 8) {
        case 0: delta = 0.0; break;
        case 1: delta = 50'000.0 + static_cast<double>(next % 1000); break;
        default: delta = static_cast<double>(next % 97); break;
      }
      e->scheduleAfter(delta, Churn{e, budget, next});
    }
  };
  sim::Engine e;
  std::uint64_t budget = 50'000;
  for (std::uint64_t i = 0; i < 512; ++i) {
    e.scheduleAt(static_cast<double>(i % 17), Churn{&e, &budget, i});
  }
  e.run();
  const auto warm = e.queueStats();
  ASSERT_GT(warm.bucketWidthUs, 0.0) << "ring never calibrated";
  ASSERT_GT(warm.overflowPushes, 0u) << "workload never reached the overflow tier";
  ASSERT_GT(warm.migratedEvents, 0u) << "overflow events never migrated into the ring";

  budget = 100'000;
  for (std::uint64_t i = 0; i < 512; ++i) {
    e.scheduleAt(e.now() + static_cast<double>(i % 17), Churn{&e, &budget, i});
  }
  const std::uint64_t before = allocCount();
  e.run();
  EXPECT_EQ(allocCount() - before, 0u) << "two-tier churn allocated";
}

TEST(Alloc, UncalibratedSameInstantChainsStayAllocationFree) {
  // A schedule with no positive inter-event spacing never activates the
  // bucket ring; the run-array front tier must still recycle its storage
  // (O(1) memory) rather than retiring a dead run per event.
  struct Chain {
    sim::Engine* e;
    std::uint64_t* budget;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      e->scheduleAt(e->now(), Chain{e, budget});  // same instant, forever
    }
  };
  sim::Engine e;
  std::uint64_t budget = 10'000;
  e.scheduleAt(0.0, Chain{&e, &budget});
  e.run();  // warm-up
  ASSERT_EQ(e.queueStats().bucketWidthUs, 0.0) << "ring unexpectedly calibrated";
  budget = 100'000;
  e.scheduleAt(e.now(), Chain{&e, &budget});
  const std::uint64_t before = allocCount();
  e.run();
  EXPECT_EQ(allocCount() - before, 0u) << "uncalibrated same-instant chain allocated";
}

TEST(Alloc, ReservePreSizesQueueForColdBurst) {
  // Engine::reserve must pre-size everything growable — both sorted
  // heaps, the hash table, and the slot/group pools — so a known burst
  // on a *cold* engine allocates nothing at all, warm-up included.
  sim::Engine e;
  e.reserve(4096);
  int fired = 0;
  const std::uint64_t before = allocCount();
  for (int i = 0; i < 4096; ++i) {
    // All-distinct timestamps spanning quantized near times and a sparse
    // far tail: the worst case for every structure reserve() pre-sizes.
    const double t = (i % 2 == 0) ? 1.0 + 0.5 * i : 100'000.0 + 3.0 * i;
    e.scheduleAt(t, [&fired] { ++fired; });
  }
  e.run();
  EXPECT_EQ(allocCount() - before, 0u) << "reserved burst still allocated";
  EXPECT_EQ(fired, 4096);
}

// Relay churn: every node forwards each arriving message to a
// pseudo-random next node on the protocol channel — cycling through
// remote and deliberately local (src == dst) sends. Exercises remote
// flights (pooled, inline routes), local messages (pooled boxes) and
// dense handler dispatch. 8×8 keeps every route within the 16-hop inline
// capacity.
void registerRelayHandlers(Machine& m, std::uint64_t& budget) {
  const NodeId procs = static_cast<NodeId>(m.numProcs());
  for (NodeId p = 0; p < procs; ++p) {
    m.net.setHandler(p, net::kProtocolChannel, [&m, &budget, procs](net::Message&& msg) {
      if (budget == 0) return;
      --budget;
      const NodeId next = static_cast<NodeId>((msg.dst * 13 + budget % 3) % procs);
      m.net.post(net::Message{msg.dst, next, net::kProtocolChannel, 64, {}});
    });
  }
}

void injectSeedMessages(Machine& m) {
  const NodeId procs = static_cast<NodeId>(m.numProcs());
  for (NodeId p = 0; p < procs; ++p) {
    m.net.post(net::Message{p, static_cast<NodeId>((p + procs / 2) % procs),
                            net::kProtocolChannel, 64, {}});
  }
}

TEST(Alloc, MessagePipelineIsAllocationFreeInSteadyState) {
  Machine m(8, 8);
  std::uint64_t budget = 20'000;
  registerRelayHandlers(m, budget);
  injectSeedMessages(m);
  m.engine.run();  // warm-up: pools, routes, link tables
  ASSERT_EQ(budget, 0u);

  // Steady state, absorption only: messages traverse the full pipeline
  // and die in the (drained) handlers.
  injectSeedMessages(m);
  const std::uint64_t before = allocCount();
  m.engine.run();
  EXPECT_EQ(allocCount() - before, 0u) << "message hot path allocated";

  // Steady state, full relay churn at the warm working set.
  budget = 20'000;
  injectSeedMessages(m);
  const std::uint64_t before2 = allocCount();
  m.engine.run();
  EXPECT_EQ(allocCount() - before2, 0u)
      << "steady-state relay churn allocated on the message path";
  EXPECT_EQ(budget, 0u);
}

// Graph-routed message churn: the same relay workload on a 48-node ring,
// where table-driven routes reach 24 hops and so spill past the 16-hop
// inline route buffer. The spilled capacity lives in the recycled
// flights, so after warm-up even these long graph routes move messages
// end to end without touching the heap — the proof that generalizing
// routing from closed-form arithmetic to table lookup did not regress
// the allocation-free hot path.
TEST(Alloc, GraphRoutedMessageChurnIsAllocationFreeInSteadyState) {
  Machine m(net::TopologySpec::graph(net::ringGraph(48)));
  std::uint64_t budget = 20'000;
  registerRelayHandlers(m, budget);
  injectSeedMessages(m);  // p -> p + 24: the diameter route on the ring
  m.engine.run();         // warm-up: pools, spilled route buffers, link tables
  ASSERT_EQ(budget, 0u);

  budget = 20'000;
  injectSeedMessages(m);
  const std::uint64_t before = allocCount();
  m.engine.run();
  EXPECT_EQ(allocCount() - before, 0u)
      << "steady-state graph-routed churn allocated on the message path";
  EXPECT_EQ(budget, 0u);
}

// Mailbox-heavy steady state: a token circulates a ring of coroutines
// that each loop `recv` → `post`. Every recv call is a fresh coroutine,
// so without the network's frame pool this would allocate one frame per
// received message; with it, the frames recycle and the whole loop runs
// allocation-free at working depth.
TEST(Alloc, RecvCoroutineFramesRecycleInSteadyState) {
  Machine m(4, 4);
  const NodeId procs = static_cast<NodeId>(m.numProcs());

  auto spawnRing = [&](int rounds) {
    for (NodeId p = 0; p < procs; ++p) {
      sim::spawn([](Machine& mm, NodeId self, NodeId np, int n) -> sim::Task<> {
        for (int i = 0; i < n; ++i) {
          net::Message msg = co_await mm.net.recv(self, net::kFirstAppChannel);
          (void)msg;
          if (i + 1 == n && self + 1 == np) co_return;  // retire the token
          net::Message next{self, static_cast<NodeId>((self + 1) % np),
                            net::kFirstAppChannel, 32, {}};
          mm.net.post(std::move(next));
        }
      }(m, p, procs, rounds));
    }
    m.net.post(net::Message{0, 0, net::kFirstAppChannel, 32, {}});
  };

  // Warm-up: grows the frame pool to one frame per concurrently-suspended
  // recv, plus the flight/message pools and mailbox rings.
  spawnRing(8);
  m.engine.run();

  // Steady state: several thousand recv calls, zero heap traffic.
  spawnRing(128);
  const std::uint64_t before = allocCount();
  m.engine.run();
  EXPECT_EQ(allocCount() - before, 0u) << "recv coroutine frames hit the heap";
}

// A *disabled* tracer attached to the machine leaves the hot path
// allocation-free: every record call compiled into the message pipeline,
// the strategies and the workload drivers is one mask test and a return.
// This is the ISSUE-10 "observability off = bit-identical" budget half —
// the golden-hash tests pin the value half.
TEST(Alloc, DisabledTracerOnTheHotPathNeverAllocates) {
  Machine m(8, 8);
  obs::Tracer tracer;  // never enabled
  m.net.setTracer(&tracer);
  std::uint64_t budget = 20'000;
  registerRelayHandlers(m, budget);
  injectSeedMessages(m);
  m.engine.run();  // warm-up at working depth
  ASSERT_EQ(budget, 0u);

  budget = 20'000;
  injectSeedMessages(m);
  const std::uint64_t before = allocCount();
  m.engine.run();
  // Hammer the disabled record API directly too: every call must bail on
  // the mask test without touching the heap.
  for (int i = 0; i < 10'000; ++i) {
    tracer.begin(obs::kCatTxn, 0, "read", i);
    tracer.instant(obs::kCatFault, 1, "node-down", i);
    tracer.end(obs::kCatTxn, 0);
    tracer.beginAsync(obs::kCatMigration, 0, "migrate", i);
    tracer.endAsync(obs::kCatMigration, 1, "migrate", i);
  }
  EXPECT_EQ(allocCount() - before, 0u) << "disabled tracer allocated";
  EXPECT_EQ(tracer.numRecords(), 0u);
  EXPECT_EQ(budget, 0u);
}

TEST(Alloc, LatencyHistogramRecordingNeverAllocates) {
  // The serving driver records a latency per request on the simulation
  // hot path: the histogram is a flat std::array, so from construction
  // onward — recording across the whole range (underflow, every octave,
  // overflow), quantiles and merging — no heap allocation may happen.
  serve::LatencyHistogram h;
  serve::LatencyHistogram other;
  const std::uint64_t before = allocCount();
  double us = 0.0;
  for (int i = 0; i < 100000; ++i) {
    h.record(us);
    us = us * 1.25 + 0.001;  // sweeps underflow → every bucket → overflow
    if (us > 1e9) us = 0.0;
  }
  (void)h.p50();
  (void)h.p999();
  (void)h.quantile(1.0);
  other.merge(h);
  EXPECT_EQ(allocCount(), before) << "latency recording allocated";
}

TEST(Alloc, TeardownWithPendingEventsLeaksNothing) {
  const std::int64_t baseline = outstanding();
  {
    Machine m(8, 8);
    // In-flight remote messages with heap-owning bodies, local boxed
    // messages, and an oversized capture on the raw engine — all still
    // pending when the machine is destroyed.
    for (int i = 0; i < 32; ++i) {
      m.net.post(net::Message{static_cast<NodeId>(i % 64),
                              static_cast<NodeId>((i * 7 + 9) % 64),
                              net::kProtocolChannel, 4096,
                              std::vector<int>(64, i)});
    }
    m.net.post(net::Message{3, 3, net::kProtocolChannel, 0, std::vector<int>(8, 1)});
    std::array<std::uint64_t, 16> big{};
    m.engine.scheduleAt(1e9, [big] { (void)big; });

    // Drain part of the schedule so some flights are mid-route, then stop
    // the world by throwing out of an event.
    struct Stop {};
    m.engine.scheduleAt(600.0, [] { throw Stop{}; });
    EXPECT_THROW(m.engine.run(), Stop);
    EXPECT_GT(m.engine.pendingEvents(), 0u);
  }
  EXPECT_EQ(outstanding(), baseline) << "teardown with pending events leaked";
}

}  // namespace
}  // namespace diva
