// The open-loop serving subsystem (docs/serving.md): latency-histogram
// quantiles against a sorted-sample oracle, portableLog accuracy,
// arrival-schedule determinism and rate recovery, request-trace format
// round-trips and rejections, the open-loop driver's accounting
// invariants (arrived = served + dropped, SLO deadline and queue-bound
// counters), and the scenario-format serving directives.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "serve/arrival.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/trace.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using serve::ArrivalSpec;
using serve::LatencyHistogram;
using support::SplitMix64;
using workload::PhaseSpec;
using workload::WorkloadSpec;

// --------------------------------------------------------------------------
// Latency histogram
// --------------------------------------------------------------------------

TEST(Histogram, QuantilesMatchSortedSampleOracle) {
  // Log-spaced buckets with 8 sub-buckets per octave are at most 12.5%
  // wide, and quantiles report the holding bucket's upper bound: the
  // result must bracket the exact order statistic from above within one
  // bucket width.
  LatencyHistogram h;
  SplitMix64 rng(2026);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Latencies spanning several orders of magnitude, like a real mix of
    // cache hits and queued misses.
    const double us = 0.05 * std::exp(rng.uniform() * 12.0);
    samples.push_back(us);
    h.record(us);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size()))) - 1;
    const double oracle = samples[idx];
    const double got = h.quantile(q);
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(got, oracle * 1.125 + 1e-12) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), samples.front());
  EXPECT_EQ(h.quantile(1.0), samples.back());
  EXPECT_EQ(h.count(), samples.size());
}

TEST(Histogram, EmptyReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleIsEveryQuantile) {
  LatencyHistogram h;
  h.record(37.5);
  // The holding bucket's upper bound overshoots the one sample, but
  // quantiles clamp to the tracked exact max.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 37.5);
  EXPECT_EQ(h.mean(), 37.5);
}

TEST(Histogram, OverflowAndUnderflowKeepExactExtremes) {
  LatencyHistogram h;
  const double huge = LatencyHistogram::kMaxValue() * 4.0;
  h.record(0.0);  // below 2^-6 µs: underflow bucket
  h.record(huge);
  EXPECT_EQ(h.underflowCount(), 1u);
  EXPECT_EQ(h.overflowCount(), 1u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  // The overflow bucket has no bound; the quantile must fall back to the
  // exact maximum instead of saturating at the range edge.
  EXPECT_EQ(h.quantile(1.0), huge);
}

TEST(Histogram, MergeEqualsRecordingEverythingInOne) {
  LatencyHistogram a, b, all;
  SplitMix64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const double us = rng.uniform(0.01, 5000.0);
    (i % 2 == 0 ? a : b).record(us);
    all.record(us);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (const double q : {0.5, 0.9, 0.99}) EXPECT_EQ(a.quantile(q), all.quantile(q));
}

TEST(Histogram, BucketBoundsBracketTheirValues) {
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double us = 0.02 * std::exp(rng.uniform() * 20.0);
    const int idx = LatencyHistogram::indexOf(us);
    EXPECT_GE(us, LatencyHistogram::lowerBound(idx));
    EXPECT_LT(us, LatencyHistogram::upperBound(idx));
  }
}

// --------------------------------------------------------------------------
// portableLog — the libm-free ln that makes Poisson schedules bit-stable
// --------------------------------------------------------------------------

TEST(PortableLog, MatchesLibmToAFewUlp) {
  SplitMix64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    // The full range Poisson sampling exercises: uniform() ∈ [2^-53, 1].
    const double x = 1.0 - rng.uniform();
    const double got = serve::portableLog(x);
    const double want = std::log(x);
    EXPECT_NEAR(got, want, std::abs(want) * 1e-14 + 1e-15) << "x=" << x;
  }
  for (const double x : {1e-300, 1e-12, 0.5, 1.0, 2.0, 1e12, 1e299}) {
    EXPECT_NEAR(serve::portableLog(x), std::log(x), std::abs(std::log(x)) * 1e-14 + 1e-15);
  }
  EXPECT_THROW(serve::portableLog(0.0), support::CheckError);
  EXPECT_THROW(serve::portableLog(-1.0), support::CheckError);
}

// --------------------------------------------------------------------------
// Arrival schedules
// --------------------------------------------------------------------------

TEST(Arrivals, DeterministicAndStrictlyAscending) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::Poisson;
  spec.ratePerSec = 50000.0;
  const auto a = serve::generateArrivals(spec, 500, 16, 42, 1, 3);
  const auto b = serve::generateArrivals(spec, 500, 16, 42, 1, 3);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
}

TEST(Arrivals, DistinctPerNodeAndPerPhase) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::Poisson;
  spec.ratePerSec = 50000.0;
  const auto node3 = serve::generateArrivals(spec, 100, 16, 42, 1, 3);
  const auto node4 = serve::generateArrivals(spec, 100, 16, 42, 1, 4);
  const auto phase2 = serve::generateArrivals(spec, 100, 16, 42, 2, 3);
  EXPECT_NE(node3, node4);
  EXPECT_NE(node3, phase2);
}

TEST(Arrivals, PoissonRecoversTheMeanRate) {
  // One node carrying the whole aggregate rate: n exponential gaps sum to
  // ~n·mean, so the empirical rate is within a few σ (σ/mean = 1/√n).
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::Poisson;
  spec.ratePerSec = 10000.0;
  const int n = 40000;
  const auto times = serve::generateArrivals(spec, n, 1, 9, 0, 0);
  const double empiricalRate = static_cast<double>(n) / times.back() * 1e6;
  EXPECT_NEAR(empiricalRate, spec.ratePerSec, spec.ratePerSec * 0.02);
}

TEST(Arrivals, FixedIsExactRoundRobin) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::Fixed;
  spec.ratePerSec = 1e6;  // 1 µs aggregate tick
  const int procs = 8;
  for (const net::NodeId node : {0, 3, 7}) {
    const auto times = serve::generateArrivals(spec, 5, procs, 1, 0, node);
    for (int k = 0; k < 5; ++k) {
      EXPECT_DOUBLE_EQ(times[static_cast<std::size_t>(k)],
                       static_cast<double>(k * procs + node + 1));
    }
  }
}

TEST(Arrivals, BurstArrivalsLandInsideOnWindows) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::Burst;
  spec.ratePerSec = 200000.0;
  spec.burstOnUs = 50.0;
  spec.burstOffUs = 150.0;
  const auto times = serve::generateArrivals(spec, 2000, 4, 17, 0, 2);
  const double cycle = spec.burstOnUs + spec.burstOffUs;
  for (const double t : times) {
    const double inCycle = t - std::floor(t / cycle) * cycle;
    EXPECT_LE(inCycle, spec.burstOnUs + 1e-6) << "t=" << t;
  }
}

TEST(Arrivals, ValidationRejectsNonsense) {
  ArrivalSpec spec;
  spec.ratePerSec = 10.0;  // rate without a kind
  EXPECT_THROW(spec.validate("test"), support::CheckError);
  spec.kind = ArrivalSpec::Kind::Poisson;
  spec.burstOnUs = 5.0;  // windows on a non-burst kind
  EXPECT_THROW(spec.validate("test"), support::CheckError);
  spec.burstOnUs = 0.0;
  spec.ratePerSec = 0.0;
  EXPECT_THROW(spec.validate("test"), support::CheckError);
  spec.kind = ArrivalSpec::Kind::Burst;
  spec.ratePerSec = 10.0;
  EXPECT_THROW(spec.validate("test"), support::CheckError);  // no windows
  spec.burstOnUs = 5.0;
  spec.burstOffUs = 5.0;
  spec.validate("test");
}

// --------------------------------------------------------------------------
// Request-trace format
// --------------------------------------------------------------------------

TEST(TraceFormat, RoundTripsExactly) {
  serve::Trace t;
  t.name = "sample";
  t.numObjects = 6;
  t.objectBytes = 256;
  t.requests = {{0.0, 0, true, 0},
                {12.5, 3, false, 5},
                {12.5, 1, true, 2},
                {100.125, 2, true, 4}};
  EXPECT_EQ(serve::parseTrace(serve::formatTrace(t)), t);
}

TEST(TraceFormat, ParsesCommentsAndDerivesObjectCount) {
  const serve::Trace t = serve::parseTrace(
      "# header comment\n"
      "trace demo\n"
      "0 1 r 4   # inline comment\n"
      "\n"
      "5.5 0 w 9\n");
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.numObjects, 10);  // derived: max id + 1
  EXPECT_EQ(t.objectBytes, 64u);
  ASSERT_EQ(t.requests.size(), 2u);
  EXPECT_FALSE(t.requests[1].isRead);
}

TEST(TraceFormat, RejectsMalformedInput) {
  // Each entry: (text, why it must fail).
  const char* bad[] = {
      "0 1 x 4\n",              // unknown op
      "-1 1 r 4\n",             // negative time
      "5 1 r 4\n4 1 r 4\n",     // decreasing time
      "0 1 r 4 junk\n",         // trailing token
      "0 1 r\n",                // missing object
      "objects 3\n0 1 r 7\n",   // id outside declared population
      "objects 2\nobjects 2\n0 0 r 0\n",  // duplicate objects line
      "0 -2 r 4\n",             // negative node
      "0 1 r -4\n",             // negative object
      "garbage 1 r 4\n",        // unparsable time
      "trace demo\n",           // no requests at all
  };
  for (const char* text : bad) {
    EXPECT_THROW(serve::parseTrace(text), support::CheckError) << text;
  }
}

TEST(TraceFormat, LoadPrefixesErrorsWithThePath) {
  try {
    serve::loadTraceFile("/nonexistent/zzz.trace");
    FAIL() << "expected CheckError";
  } catch (const support::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("zzz.trace"), std::string::npos);
  }
}

// --------------------------------------------------------------------------
// Scenario directives for serving
// --------------------------------------------------------------------------

TEST(ScenarioServe, ArrivalDirectivesRoundTrip) {
  WorkloadSpec spec;
  spec.name = "serve";
  spec.numObjects = 8;
  PhaseSpec open;
  open.name = "poisson";
  open.rounds = 4;
  open.arrival.kind = ArrivalSpec::Kind::Poisson;
  open.arrival.ratePerSec = 12000.0;
  open.deadlineUs = 500.0;
  spec.phases.push_back(open);
  PhaseSpec burst;
  burst.name = "burst";
  burst.rounds = 2;
  burst.arrival.kind = ArrivalSpec::Kind::Burst;
  burst.arrival.ratePerSec = 30000.0;
  burst.arrival.burstOnUs = 100.0;
  burst.arrival.burstOffUs = 400.0;
  burst.queueLimit = 4;
  spec.phases.push_back(burst);
  PhaseSpec replay;
  replay.name = "replay";
  replay.tracePath = "some.trace";
  spec.phases.push_back(replay);
  EXPECT_EQ(workload::parseScenario(workload::formatScenario(spec)), spec);
}

TEST(ScenarioServe, ParsesTheServingGrammar) {
  const WorkloadSpec spec = workload::parseScenario(
      "objects 8\n"
      "phase p\n"
      "rounds 3\n"
      "arrival burst 5000 20 80\n"
      "deadline 1500\n"
      "queue 6\n");
  ASSERT_EQ(spec.phases.size(), 1u);
  const PhaseSpec& ph = spec.phases[0];
  EXPECT_EQ(ph.arrival.kind, ArrivalSpec::Kind::Burst);
  EXPECT_EQ(ph.arrival.ratePerSec, 5000.0);
  EXPECT_EQ(ph.arrival.burstOnUs, 20.0);
  EXPECT_EQ(ph.arrival.burstOffUs, 80.0);
  EXPECT_EQ(ph.deadlineUs, 1500.0);
  EXPECT_EQ(ph.queueLimit, 6);
  EXPECT_TRUE(ph.openLoop());
}

TEST(ScenarioServe, RejectsBadServingDirectives) {
  const char* bad[] = {
      // Unknown arrival kind.
      "objects 4\nphase p\narrival uniform 100\n",
      // Burst without windows.
      "objects 4\nphase p\narrival burst 100\n",
      // Arrival before any phase.
      "objects 4\narrival poisson 100\nphase p\n",
      // Think time on an open-loop phase (the schedule is the pacing).
      "objects 4\nphase p\nthink 50\narrival poisson 100\n",
      // Deadline on a closed-loop phase.
      "objects 4\nphase p\ndeadline 100\n",
      // Queue bound on a closed-loop phase.
      "objects 4\nphase p\nqueue 4\n",
      // Trace phase with generator keys.
      "objects 4\nphase p\nrounds 5\ntrace t.trace\n",
      // Trace combined with generated arrivals.
      "objects 4\nphase p\narrival poisson 100\ntrace t.trace\n",
  };
  for (const char* text : bad) {
    EXPECT_THROW(workload::parseScenario(text), support::CheckError) << text;
  }
}

// --------------------------------------------------------------------------
// Open-loop driver
// --------------------------------------------------------------------------

WorkloadSpec smallOpenLoopSpec() {
  WorkloadSpec spec;
  spec.name = "serve-test";
  spec.numObjects = 12;
  spec.objectBytes = 64;
  spec.seed = 99;
  PhaseSpec ph;
  ph.name = "open";
  ph.rounds = 8;
  ph.readFraction = 0.75;
  ph.zipfS = 1.0;
  ph.arrival.kind = ArrivalSpec::Kind::Poisson;
  ph.arrival.ratePerSec = 20000.0;
  spec.phases.push_back(ph);
  return spec;
}

TEST(OpenLoopDriver, AccountingIsConservative) {
  const WorkloadSpec spec = smallOpenLoopSpec();
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::accessTree(4, 1), spec);
  ASSERT_TRUE(r.serve.active);
  EXPECT_EQ(r.serve.arrived, 16u * 8u);  // every scheduled request arrived
  EXPECT_EQ(r.serve.served + r.serve.dropped, r.serve.arrived);
  EXPECT_EQ(r.serve.dropped, 0u);  // no queue bound, no faults
  EXPECT_LE(r.serve.late, r.serve.served);
  EXPECT_GE(r.serve.maxInFlight, 1);
  EXPECT_GT(r.serve.achievedPerSec, 0.0);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_TRUE(r.phases[0].serve.active);
  EXPECT_EQ(r.phases[0].serve.served, r.serve.served);
}

TEST(OpenLoopDriver, ClosedLoopPhasesStayInactive) {
  WorkloadSpec spec = smallOpenLoopSpec();
  spec.phases[0].arrival = {};
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::accessTree(4, 1), spec);
  EXPECT_FALSE(r.serve.active);
  EXPECT_FALSE(r.phases[0].serve.active);
  EXPECT_EQ(r.serve.arrived, 0u);
}

TEST(OpenLoopDriver, ReportIsDeterministic) {
  const WorkloadSpec spec = smallOpenLoopSpec();
  const auto topo = net::TopologySpec::mesh2d(4, 4);
  const workload::WorkloadReport a =
      workload::runOn(topo, RuntimeConfig::fixedHome(), spec);
  const workload::WorkloadReport b =
      workload::runOn(topo, RuntimeConfig::fixedHome(), spec);
  EXPECT_EQ(workload::formatReport(a), workload::formatReport(b));
}

TEST(OpenLoopDriver, TinyDeadlineMarksMissesLate) {
  WorkloadSpec spec = smallOpenLoopSpec();
  spec.phases[0].deadlineUs = 1e-9;  // any positive latency is late
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::accessTree(4, 1), spec);
  // First touches miss and cross the network, so some requests take real
  // simulated time; cache hits at the arrival instant stay on time.
  EXPECT_GT(r.serve.late, 0u);
  EXPECT_LE(r.serve.late, r.serve.served);
}

TEST(OpenLoopDriver, QueueBoundShedsUnderOverload) {
  WorkloadSpec spec = smallOpenLoopSpec();
  spec.phases[0].rounds = 32;
  spec.phases[0].arrival.ratePerSec = 5e6;  // far past saturation
  spec.phases[0].queueLimit = 1;
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::accessTree(4, 1), spec);
  EXPECT_GT(r.serve.dropped, 0u);
  EXPECT_EQ(r.serve.served + r.serve.dropped, r.serve.arrived);
}

TEST(OpenLoopDriver, TraceReplayDrivesTheRun) {
  const std::string path = testing::TempDir() + "serve_test_replay.trace";
  {
    std::ofstream out(path);
    out << "trace replay\nobjects 4 64\n";
    // 3 reads and 2 writes spread over 4 of 16 nodes.
    out << "0 0 r 1\n10 5 w 2\n20 9 r 0\n30 5 r 3\n40 12 w 1\n";
  }
  WorkloadSpec spec;
  spec.name = "replay-test";
  spec.numObjects = 4;
  spec.seed = 5;
  PhaseSpec ph;
  ph.name = "replay";
  ph.tracePath = path;
  spec.phases.push_back(ph);
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::fixedHome(), spec);
  EXPECT_EQ(r.serve.arrived, 5u);
  EXPECT_EQ(r.serve.served, 5u);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases[0].reads, 3u);
  EXPECT_EQ(r.phases[0].writes, 2u);
  std::remove(path.c_str());
}

TEST(OpenLoopDriver, OpenLoopAtBuildsSweepRungs) {
  WorkloadSpec spec;
  spec.numObjects = 8;
  PhaseSpec think;
  think.name = "closed";
  think.rounds = 4;
  think.thinkMeanUs = 100.0;
  spec.phases.push_back(think);
  PhaseSpec replay;
  replay.name = "replay";
  replay.tracePath = "x.trace";
  spec.phases.push_back(replay);
  const WorkloadSpec open = workload::openLoopAt(spec, 5000.0);
  for (const PhaseSpec& ph : open.phases) {
    EXPECT_EQ(ph.arrival.kind, ArrivalSpec::Kind::Poisson);
    EXPECT_EQ(ph.arrival.ratePerSec, 5000.0);
    EXPECT_EQ(ph.thinkMeanUs, 0.0);
    EXPECT_TRUE(ph.tracePath.empty());
  }
}

// --------------------------------------------------------------------------
// Scenario-load preflight & overflow-tail quantiles (regressions)
// --------------------------------------------------------------------------

TEST(ScenarioServe, UnreadableTraceFailsAtLoadWithItsPath) {
  // Regression: a scenario pointing at a missing trace file used to get
  // past loading and blow up mid-run with macro noise. It must now fail
  // at load time with a message naming the phase and the resolved trace
  // path — what scenario_runner prints before exiting 3.
  const std::string dir = testing::TempDir();
  const std::string path = dir + "serve_test_broken.scenario";
  {
    std::ofstream out(path);
    out << "scenario broken\nobjects 4\nphase replay\ntrace no_such_file.trace\n";
  }
  try {
    (void)workload::loadScenarioFile(path);
    FAIL() << "missing trace must fail at load";
  } catch (const support::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot open trace file"), std::string::npos) << what;
    EXPECT_NE(what.find("replay"), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_file.trace"), std::string::npos) << what;
    EXPECT_EQ(what.find("check failed"), std::string::npos)
        << "load error must read as a file problem, not an assertion: " << what;
  }
  std::remove(path.c_str());
}

TEST(ScenarioServe, TopologyDirectiveRoundTrips) {
  const WorkloadSpec spec = workload::parseScenario(
      "scenario shaped\nobjects 4\nprocs 32\ntopology hier-random-regular\n"
      "phase p\nrounds 1\n");
  EXPECT_EQ(spec.topology, "hier-random-regular");
  const WorkloadSpec again = workload::parseScenario(workload::formatScenario(spec));
  EXPECT_EQ(again, spec);
  // Multi-token shapes are rejected at validation.
  EXPECT_THROW(workload::parseScenario("objects 4\ntopology two words\nphase p\n"),
               support::CheckError);
}

TEST(Histogram, OverflowBucketQuantilesReportTheExactTail) {
  // All samples ≥ 2^26 µs land in one unbounded bucket; every quantile
  // that falls into it must report the tracked exact maximum rather than
  // the range edge.
  LatencyHistogram h;
  const double lo = LatencyHistogram::kMaxValue();
  for (int i = 0; i < 100; ++i) h.record(lo + i * 1e6);
  const double exactMax = lo + 99 * 1e6;
  for (const double q : {0.5, 0.9, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), exactMax);
  EXPECT_EQ(h.overflowCount(), 100u);
  EXPECT_EQ(h.max(), exactMax);

  // A mixed population: the median stays in range, the tail is exact.
  LatencyHistogram m;
  for (int i = 0; i < 99; ++i) m.record(10.0);
  m.record(lo * 8.0);
  EXPECT_LT(m.quantile(0.5), 16.0);
  EXPECT_EQ(m.quantile(1.0), lo * 8.0);
}

TEST(Histogram, ZeroSampleQuantileIsZeroForEveryQ) {
  const LatencyHistogram h;
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 0.0);
}

}  // namespace
}  // namespace diva
