// Shutdown-leak proof, run under AddressSanitizer + LeakSanitizer (see
// tests/CMakeLists.txt): a Machine is destroyed while messages are still
// in flight — flights mid-route with spilled-capable route buffers,
// boxed local messages, queued mailbox payloads, pending coroutine
// resumptions and an oversized event capture. In the seed, the raw
// `new Message` / `new Flight` captures queued on the engine were simply
// dropped on teardown; the pooled design reclaims them, and LSan verifies
// there is nothing left at exit.

#include <array>
#include <cstdio>
#include <vector>

#include "diva/machine.hpp"

using namespace diva;
using diva::mesh::NodeId;

namespace {
struct Stop {};
}  // namespace

int main() {
  {
    Machine m(8, 8);
    const NodeId procs = static_cast<NodeId>(m.numProcs());

    // A few relaying handlers so traffic keeps regenerating until the stop.
    for (NodeId p = 0; p < procs; p += 2) {
      m.net.setHandler(p, net::kProtocolChannel, [&m, procs](net::Message&& msg) {
        const NodeId next = static_cast<NodeId>((msg.dst * 5 + 3) % procs);
        m.net.post(net::Message{msg.dst, next, net::kProtocolChannel, 1024,
                                std::vector<int>(32, msg.dst)});
      });
    }

    for (int i = 0; i < 48; ++i) {
      m.net.post(net::Message{static_cast<NodeId>(i % 64),
                              static_cast<NodeId>((i * 11 + 5) % 64),
                              net::kProtocolChannel, 4096,
                              std::vector<int>(128, i)});
    }
    // Local (src == dst) boxed message and a mailbox-bound message with no
    // handler, both owning heap payloads.
    m.net.post(net::Message{7, 7, net::kSyncChannel, 0, std::vector<int>(16, 7)});
    m.net.post(net::Message{1, 1, net::kFirstAppChannel, 0, std::vector<int>(16, 1)});

    // Oversized capture exercises EventFn's heap fallback while pending.
    std::array<std::uint64_t, 32> big{};
    m.engine.scheduleAt(1e12, [big] { (void)big; });

    // Run partway, then abandon the simulation mid-flight.
    m.engine.scheduleAt(1500.0, [] { throw Stop{}; });
    try {
      m.engine.run();
      std::fputs("expected the stop event to throw\n", stderr);
      return 1;
    } catch (const Stop&) {
    }
    if (m.engine.pendingEvents() == 0) {
      std::fputs("expected events to still be pending\n", stderr);
      return 1;
    }
  }
  std::puts("shutdown clean");
  return 0;
}
