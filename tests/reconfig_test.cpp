// Elastic-machine tests (docs/faults.md "Reconfiguration"): live
// grow/rewire/shrink at the network layer, scenario `reconfig`
// round-trips, run-time validation against the evolving shape,
// strategy-state migration under randomized reconfiguration on several
// topologies and routing modes, trace capture round-trips, and the
// committed elastic scenario.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/fault.hpp"
#include "net/graph_topology.hpp"
#include "net/network.hpp"
#include "serve/trace.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using sim::Task;

// ---------------------------------------------------------------------------
// Network layer: structural events, membership, epochs
// ---------------------------------------------------------------------------

TEST(Reconfig, GrowRewireShrinkUpdatesMembership) {
  sim::Engine engine;
  net::GraphTopology topo(net::ringGraph(8));
  mesh::LinkStats stats(topo.numLinkSlots(), 1);
  net::Network net(engine, topo, net::CostModel::gcel(), stats);
  EXPECT_EQ(net.numMembers(), 8);
  EXPECT_EQ(net.reconfigEpoch(), 0);

  const net::NodeId a = net.addNode(0);
  const net::NodeId b = net.addNode(4);
  EXPECT_EQ(a, 8);
  EXPECT_EQ(b, 9);
  engine.run();  // deliver the (coalesced) epoch notification
  EXPECT_EQ(net.numMembers(), 10);
  EXPECT_TRUE(net.nodeMember(a));
  EXPECT_GE(net.reconfigEpoch(), 1);

  net.addLink(a, b);
  net.removeLink(0, a);  // a stays connected through b
  engine.run();
  net.commitReconfig();

  // Messages route across the new edges.
  int got = 0;
  net.setHandler(b, net::kFirstAppChannel, [&](net::Message&& m) { got = m.as<int>(); });
  net.post(net::Message{a, b, net::kFirstAppChannel, 64, 5});
  engine.run();
  EXPECT_EQ(got, 5);

  net.removeNode(a);
  net.removeNode(b);
  engine.run();
  net.commitReconfig();
  EXPECT_EQ(net.numMembers(), 8);
  EXPECT_FALSE(net.nodeMember(a));
  // Ids are never reused: the next node gets a fresh id.
  EXPECT_EQ(net.addNode(1), 10);
}

TEST(Reconfig, DisconnectingRemovalThrows) {
  sim::Engine engine;
  net::GraphTopology topo(net::gridGraph(1, 3));  // path 0-1-2: 1 is a bridge node
  mesh::LinkStats stats(topo.numLinkSlots(), 1);
  net::Network net(engine, topo, net::CostModel::gcel(), stats);
  EXPECT_THROW(net.removeNode(1), support::CheckError);
  EXPECT_THROW(net.removeLink(0, 1), support::CheckError);
  // Leaf removal is fine.
  net.removeNode(2);
  engine.run();
  EXPECT_EQ(net.numMembers(), 2);
}

// ---------------------------------------------------------------------------
// Scenario format: `reconfig` directive
// ---------------------------------------------------------------------------

TEST(ReconfigScenario, ReconfigDirectivesRoundTrip) {
  const std::string text =
      "scenario elastic-mini\n"
      "objects 8 128\n"
      "procs 8\n"
      "phase a\n"
      "rounds 2\n"
      "reconfig 100 add-node 0\n"
      "reconfig 150 add-node 1 2.5 1.5\n"
      "reconfig 200 add-link 8 9\n"
      "reconfig 300 remove-link 0 8\n"
      "reconfig 400 remove-node 8\n"
      "fault 500 node-down 2\n";
  const workload::WorkloadSpec spec = workload::parseScenario(text);
  ASSERT_EQ(spec.phases.size(), 1u);
  const net::FaultPlan& plan = spec.phases[0].faults;
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan[0].kind, net::FaultEvent::Kind::AddNode);
  EXPECT_EQ(plan[0].a, 0);
  EXPECT_EQ(plan[1].kind, net::FaultEvent::Kind::AddNode);
  EXPECT_DOUBLE_EQ(plan[1].weightMul, 2.5);   // new-edge weight
  EXPECT_DOUBLE_EQ(plan[1].latencyMul, 1.5);  // new-edge latency
  EXPECT_EQ(plan[2].kind, net::FaultEvent::Kind::AddLink);
  EXPECT_EQ(plan[2].a, 8);
  EXPECT_EQ(plan[2].b, 9);
  EXPECT_EQ(plan[3].kind, net::FaultEvent::Kind::RemoveLink);
  EXPECT_EQ(plan[4].kind, net::FaultEvent::Kind::RemoveNode);
  EXPECT_TRUE(net::isStructural(plan[0].kind));
  EXPECT_FALSE(net::isStructural(plan[5].kind));
  // Line numbers survive the parse (run-time validation points at them).
  EXPECT_EQ(plan[0].line, 6);
  EXPECT_EQ(plan[4].line, 10);
  EXPECT_EQ(workload::parseScenario(workload::formatScenario(spec)), spec);
}

TEST(ReconfigScenario, MalformedReconfigLinesRejectedWithLineNumbers) {
  auto expectThrowContaining = [](const std::string& text, const std::string& needle) {
    try {
      (void)workload::parseScenario(text);
      FAIL() << "expected CheckError for: " << text;
    } catch (const support::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  const std::string head = "objects 8\nphase a\n";
  expectThrowContaining("objects 8\nreconfig 10 add-node 1\nphase a\n",
                        "before any 'phase'");
  expectThrowContaining(head + "reconfig 10 shapeshift 1\n", "unknown reconfig kind");
  expectThrowContaining(head + "reconfig -5 add-node 1\n", "must be >= 0");
  expectThrowContaining(head + "reconfig 10 add-node 1 0 1\n", "must be positive");
  expectThrowContaining(head + "reconfig 10 remove-node 1 2\n", "trailing token");
  expectThrowContaining(head + "reconfig 10 add-link 1\n", "line 3");
}

TEST(ReconfigScenario, CommittedElasticScenarioParses) {
  const workload::WorkloadSpec spec =
      workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) + "/elastic.scenario");
  EXPECT_EQ(spec.name, "elastic");
  EXPECT_EQ(spec.procs, 16);
  int structural = 0;
  for (const auto& ph : spec.phases)
    for (const auto& ev : ph.faults) structural += net::isStructural(ev.kind) ? 1 : 0;
  EXPECT_EQ(structural, 21);  // 8 add-node + 4 add-link + 1 remove-link + 8 remove-node
}

// ---------------------------------------------------------------------------
// Run-time validation against the evolving shape
// ---------------------------------------------------------------------------

workload::WorkloadSpec tinySpecWithEvents(const std::string& events) {
  return workload::parseScenario(
      "scenario v\n"
      "objects 4\n"
      "phase a\n"
      "rounds 1\n" +
      events);
}

TEST(ReconfigWorkload, EndpointsValidatedAgainstEvolvingShape) {
  // The machine starts with 8 nodes; node 8 only exists because the
  // add-node fires first. Both the structural add-link and the
  // non-structural node-down must range-check against the grown shape.
  const workload::WorkloadSpec ok = tinySpecWithEvents(
      "reconfig 10 add-node 0\n"
      "reconfig 20 add-link 8 4\n"
      "fault 30 node-down 8\n"
      "fault 40 node-up 8\n");
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::graph(net::ringGraph(8)), RuntimeConfig::fixedHome(), ok);
  EXPECT_TRUE(r.reconfigured);
  EXPECT_TRUE(r.faulted);

  // Id 9 never exists: rejected before the run starts, naming the line.
  const workload::WorkloadSpec bad = tinySpecWithEvents(
      "reconfig 10 add-node 0\n"
      "reconfig 20 add-link 9 4\n");
  try {
    (void)workload::runOn(net::TopologySpec::graph(net::ringGraph(8)),
                          RuntimeConfig::fixedHome(), bad);
    FAIL() << "expected CheckError";
  } catch (const support::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scenario line 6"), std::string::npos) << msg;
  }
}

TEST(ReconfigWorkload, DisconnectingRemovalsRejectedWithLineNumbers) {
  for (const char* events : {"reconfig 10 remove-node 1\n", "reconfig 10 remove-link 0 1\n"}) {
    try {
      (void)workload::runOn(net::TopologySpec::graph(net::gridGraph(1, 3)),
                            RuntimeConfig::fixedHome(), tinySpecWithEvents(events));
      FAIL() << "expected CheckError for: " << events;
    } catch (const support::CheckError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("disconnect"), std::string::npos) << msg;
      EXPECT_NE(msg.find("scenario line 5"), std::string::npos) << msg;
    }
  }
}

TEST(ReconfigWorkload, NonGraphTopologyRejected) {
  try {
    (void)workload::runOn(net::TopologySpec::mesh2d(2, 2), RuntimeConfig::fixedHome(),
                          tinySpecWithEvents("reconfig 10 add-node 0\n"));
    FAIL() << "expected CheckError";
  } catch (const support::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("graph-backed"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Strategy-state migration: randomized grow/rewire/shrink property test
// ---------------------------------------------------------------------------

std::int64_t readInt(Machine& m, Runtime& rt, NodeId p, VarId x) {
  std::int64_t out = 0;
  sim::spawn([](Runtime& r, NodeId n, VarId v, std::int64_t& o) -> Task<> {
    o = valueAs<std::int64_t>(co_await r.read(n, v));
  }(rt, p, x, out));
  m.engine.run();
  return out;
}

void writeInt(Machine& m, Runtime& rt, NodeId p, VarId x, std::int64_t v) {
  sim::spawn([](Runtime& r, NodeId n, VarId var, std::int64_t val) -> Task<> {
    co_await r.write(n, var, makeValue(val));
  }(rt, p, x, v));
  m.engine.run();
}

struct ReconfigStratCase {
  RuntimeConfig config;
  const char* label;
};

class ReconfigStrategyTest : public ::testing::TestWithParam<ReconfigStratCase> {};

TEST_P(ReconfigStrategyTest, RandomizedGrowRewireShrinkQuiescence) {
  // The ISSUE's property test: on three shapes under both routing modes,
  // interleave random reads/writes with grow → rewire → shrink epochs.
  // After every epoch no object may be lost or dually owned and every
  // object must be managed by the new access tree (checkAllInvariants
  // enforces the superseded-context check); at the end every object
  // reads back its last written value on the shrunken machine.
  struct Shape {
    net::GraphSpec graph;
    const char* label;
  };
  const std::vector<Shape> shapes = {
      {net::gridGraph(4, 4), "mesh"},
      {net::ringGraph(16), "ring"},
      {net::randomRegularGraph(16, 3, 7), "rr"},
  };
  for (const Shape& shape : shapes) {
    for (const bool hier : {false, true}) {
      SCOPED_TRACE(std::string(shape.label) + (hier ? "/hier" : "/dense"));
      Machine m(hier ? net::TopologySpec::hierGraph(shape.graph, 4)
                     : net::TopologySpec::graph(shape.graph));
      Runtime rt(m, GetParam().config);
      const int base = m.numProcs();
      support::SplitMix64 rng(0xE1A5 ^ static_cast<std::uint64_t>(base) ^
                              (hier ? 0x8000u : 0u));
      std::vector<VarId> vars;
      std::vector<std::int64_t> truth;
      for (int i = 0; i < 10; ++i) {
        const NodeId owner = static_cast<NodeId>(rng.below(base));
        truth.push_back(i * 100);
        vars.push_back(rt.createVarFree(owner, makeValue(truth.back())));
      }
      auto traffic = [&](int ops, int salt) {
        for (int op = 0; op < ops; ++op) {
          const std::size_t i = rng.below(vars.size());
          const int members = m.net.numMembers();
          const NodeId p = m.net.memberAt(static_cast<int>(rng.below(members)));
          if (rng.uniform() < 0.5) {
            EXPECT_EQ(readInt(m, rt, p, vars[i]), truth[i]);
          } else {
            truth[i] = salt * 1000 + op;
            writeInt(m, rt, p, vars[i], truth[i]);
          }
        }
      };
      traffic(8, 1);

      // Grow: two nodes join at random anchors (one coalesced epoch),
      // then issue traffic themselves.
      const NodeId a1 = static_cast<NodeId>(rng.below(base));
      const NodeId a2 = static_cast<NodeId>(rng.below(base));
      const NodeId n1 = m.net.addNode(a1);
      const NodeId n2 = m.net.addNode(a2);
      m.engine.run();  // deliver the epoch before the new nodes issue
      rt.checkAllInvariants();
      truth[0] = 7777;
      writeInt(m, rt, n1, vars[0], truth[0]);
      EXPECT_EQ(readInt(m, rt, n2, vars[0]), truth[0]);
      traffic(8, 2);
      rt.completeReconfig();
      rt.checkAllInvariants();

      // Rewire: link the newcomers, drop n2's anchor edge (it stays
      // connected through n1's link).
      m.net.addLink(n1, n2);
      m.net.removeLink(a2, n2);
      m.engine.run();
      traffic(6, 3);
      rt.completeReconfig();
      rt.checkAllInvariants();

      // Shrink back: retire the newcomers one epoch at a time.
      m.net.removeNode(n2);
      m.engine.run();
      rt.checkAllInvariants();
      traffic(6, 4);
      m.net.removeNode(n1);
      m.engine.run();
      rt.completeReconfig();
      rt.checkAllInvariants();
      EXPECT_EQ(m.net.numMembers(), base);

      // Quiescence on the final shape: nothing lost.
      for (std::size_t i = 0; i < vars.size(); ++i)
        EXPECT_EQ(readInt(m, rt, 0, vars[i]), truth[i]);
      rt.checkAllInvariants();
      EXPECT_GT(m.stats.ops.migratedVars, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ReconfigStrategyTest,
    ::testing::Values(ReconfigStratCase{RuntimeConfig::accessTree(4, 1), "at4"},
                      ReconfigStratCase{RuntimeConfig::accessTree(2, 4), "at2_4"},
                      ReconfigStratCase{RuntimeConfig::fixedHome(), "fh"}),
    [](const ::testing::TestParamInfo<ReconfigStratCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Workload layer: elastic runs, metrics, trace capture round-trip
// ---------------------------------------------------------------------------

TEST(ReconfigWorkload, ElasticScenarioRunsDeterministicallyWithFullAvailability) {
  const workload::WorkloadSpec spec =
      workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) + "/elastic.scenario");
  const net::TopologySpec topo =
      net::TopologySpec::graph(net::randomRegularGraph(16, 4, 1));
  const workload::WorkloadReport r1 =
      workload::runOn(topo, RuntimeConfig::accessTree(4, 1), spec);
  EXPECT_TRUE(r1.reconfigured);
  EXPECT_EQ(r1.reconfigEpochs, 15u);  // 4 grow + 3 rewire + 8 shrink instants
  EXPECT_DOUBLE_EQ(r1.availability, 1.0);
  EXPECT_EQ(r1.failedOps, 0u);
  EXPECT_GT(r1.migratedVars, 0u);
  EXPECT_GT(r1.migrationMessages, 0u);
  const std::string text = workload::formatReport(r1);
  EXPECT_NE(text.find("reconfig"), std::string::npos);
  EXPECT_NE(text.find("vars migrated"), std::string::npos);
  // Bit-determinism, epochs included: a second run renders identically.
  const workload::WorkloadReport r2 =
      workload::runOn(topo, RuntimeConfig::accessTree(4, 1), spec);
  EXPECT_EQ(text, workload::formatReport(r2));
}

TEST(ReconfigWorkload, ReconfigFreeReportOmitsReconfigSection) {
  workload::WorkloadSpec spec;
  spec.name = "flat";
  spec.numObjects = 8;
  spec.phases.push_back(workload::PhaseSpec{"p0", 4, 0.8, 1.0, 0, 50.0, true, {}});
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::fixedHome(), spec);
  EXPECT_FALSE(r.reconfigured);
  EXPECT_EQ(r.reconfigEpochs, 0u);
  EXPECT_EQ(workload::formatReport(r).find("reconfig"), std::string::npos);
}

TEST(TraceCapture, CaptureThenReplayMatchesOpCounts) {
  workload::WorkloadSpec spec;
  spec.name = "cap";
  spec.numObjects = 8;
  spec.objectBytes = 128;
  spec.seed = 5;
  spec.phases.push_back(workload::PhaseSpec{"p0", 4, 0.5, 1.0, 0, 20.0, true, {}});

  serve::Trace captured;
  workload::RunOptions opts;
  opts.captureTrace = &captured;
  const workload::WorkloadReport live = workload::runOn(
      net::TopologySpec::mesh2d(2, 2), RuntimeConfig::fixedHome(), spec, opts);
  EXPECT_EQ(captured.name, "cap");
  EXPECT_EQ(captured.numObjects, 8);
  ASSERT_EQ(captured.requests.size(), static_cast<std::size_t>(live.servedOps));
  std::size_t capturedReads = 0;
  for (std::size_t i = 0; i < captured.requests.size(); ++i) {
    const serve::TraceRequest& req = captured.requests[i];
    EXPECT_GE(req.node, 0);
    EXPECT_LT(req.node, 4);
    EXPECT_LT(req.object, 8);
    if (i > 0) EXPECT_GE(req.timeUs, captured.requests[i - 1].timeUs);
    capturedReads += req.isRead ? 1u : 0u;
  }

  // Round-trip: the formatted capture replays as a trace phase and
  // serves the same number of operations.
  const std::string path = ::testing::TempDir() + "reconfig_capture_roundtrip.trace";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << serve::formatTrace(captured);
  }
  workload::WorkloadSpec replay;
  replay.name = "replay";
  replay.numObjects = 8;
  replay.objectBytes = 128;
  replay.seed = 5;
  workload::PhaseSpec ph;
  ph.name = "replayed";
  ph.tracePath = path;
  replay.phases.push_back(ph);
  const workload::WorkloadReport back = workload::runOn(
      net::TopologySpec::mesh2d(2, 2), RuntimeConfig::fixedHome(), replay);
  EXPECT_EQ(back.servedOps, live.servedOps);
  EXPECT_EQ(back.failedOps, 0u);
  // The replayed op mix is the captured one.
  std::uint64_t replayReads = 0;
  for (const auto& p : back.phases) replayReads += p.reads;
  EXPECT_EQ(replayReads, capturedReads);
}

}  // namespace
}  // namespace diva
