// Tests for the support utilities: hashing/RNG quality properties, the
// bench table formatter, and the check macros.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/bloom.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace diva::support {
namespace {

TEST(Rng, SplitMixIsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide
  }
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u) << "all residues should appear in 2000 draws";
}

TEST(Rng, BelowEdgeCases) {
  SplitMix64 rng(1);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIsInHalfOpenInterval) {
  SplitMix64 rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  const double r = rng.uniform(5.0, 6.0);
  EXPECT_GE(r, 5.0);
  EXPECT_LT(r, 6.0);
}

TEST(Rng, Mix64IsBijectiveOnSamples) {
  // Distinct inputs must map to distinct outputs (injectivity sample).
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Rng, HashBelowIsUniformish) {
  // Chi-square-lite: bucket counts within 3x of expectation.
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  for (std::uint64_t i = 0; i < 16000; ++i)
    ++counts[hashBelow(hashCombine(1, i), kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, 1000 / 2);
    EXPECT_LT(c, 1000 * 2);
  }
}

TEST(Rng, HashCombineIsOrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_NE(hashCombine(1, 2, 3), hashCombine(3, 2, 1));
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "bbbb"});
  t.addRow({"1", "2"});
  t.addRow({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
  // Rules at top, under header, and bottom.
  int rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("+-", 0) == 0) ++rules;
  EXPECT_EQ(rules, 3);
}

TEST(Table, HandlesShortRows) {
  Table t({"x", "y"});
  t.addRow({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Fmt, FixedPrecisionAndPercent) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmtPercent(0.444), "44%");
  EXPECT_EQ(fmtPercent(1.0), "100%");
}

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    DIVA_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(DIVA_CHECK(true));
  EXPECT_NO_THROW(DIVA_CHECK_MSG(2 + 2 == 4, "fine"));
}

// ---------------------------------------------------------------------------
// CountingBloom (support/bloom.hpp) — the subtree-copy hint substrate.
// The protocol relies on exactly one property: no false negatives, ever.
// ---------------------------------------------------------------------------

TEST(CountingBloom, NoFalseNegativesUnderAddRemoveChurn) {
  // 20k seeded add/remove operations against a reference multiset: after
  // every operation, each genuinely present key must report mayContain.
  CountingBloom f(256, 3);
  std::unordered_map<std::uint64_t, int> present;
  SplitMix64 rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next() % 64;  // small pool → removes hit
    if (!present.empty() && rng.next() % 3 == 0) {
      // Remove a present key (the pool keeps duplicates realistic).
      auto it = present.begin();
      std::advance(it, static_cast<long>(rng.next() % present.size()));
      f.remove(it->first);
      if (--it->second == 0) present.erase(it);
    } else {
      f.add(key);
      ++present[key];
    }
    for (const auto& [k, cnt] : present)
      ASSERT_TRUE(f.mayContain(k)) << "false negative for " << k << " at op " << op;
  }
  // Paired removal drains the filter completely: definite negatives return.
  for (auto& [k, cnt] : present)
    for (; cnt > 0; --cnt) f.remove(k);
  EXPECT_TRUE(f.empty());
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_FALSE(f.mayContain(k));
}

TEST(CountingBloom, FalsePositiveRateStaysUnderSeededBound) {
  // n=64 keys in m=1024 cells with k=3 hashes: the classic estimate
  // (1-e^(-kn/m))^k ≈ 0.5%. Assert a 4× slack bound on a seeded probe
  // set — deterministic, so no flakiness.
  CountingBloom f(1024, 3);
  SplitMix64 rng(7);
  std::vector<std::uint64_t> members;
  for (int i = 0; i < 64; ++i) {
    members.push_back(rng.next());
    f.add(members.back());
  }
  int falsePositives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    const std::uint64_t probe = rng.next();  // disjoint from members w.h.p.
    if (f.mayContain(probe)) ++falsePositives;
  }
  EXPECT_LT(falsePositives, probes / 50)
      << "FP rate " << (100.0 * falsePositives / probes) << "%";
}

TEST(CountingBloom, SaturationNeverManufacturesFalseNegatives) {
  // Drive one key's counters to the sticky ceiling, then remove all its
  // adds: a key added once must still be visible (saturation degrades
  // only the false-positive side).
  CountingBloom f(8, 2);  // tiny filter → guaranteed cell sharing
  const std::uint64_t hot = 1, cold = 2;
  f.add(cold);
  for (int i = 0; i < 300; ++i) f.add(hot);
  for (int i = 0; i < 300; ++i) f.remove(hot);
  EXPECT_TRUE(f.mayContain(cold));
}

TEST(CountingBloom, RemoveFromEmptyThrows) {
  CountingBloom f;
  EXPECT_THROW(f.remove(1), CheckError);
}

}  // namespace
}  // namespace diva::support
