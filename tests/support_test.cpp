// Tests for the support utilities: hashing/RNG quality properties, the
// bench table formatter, and the check macros.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace diva::support {
namespace {

TEST(Rng, SplitMixIsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide
  }
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u) << "all residues should appear in 2000 draws";
}

TEST(Rng, BelowEdgeCases) {
  SplitMix64 rng(1);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIsInHalfOpenInterval) {
  SplitMix64 rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  const double r = rng.uniform(5.0, 6.0);
  EXPECT_GE(r, 5.0);
  EXPECT_LT(r, 6.0);
}

TEST(Rng, Mix64IsBijectiveOnSamples) {
  // Distinct inputs must map to distinct outputs (injectivity sample).
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Rng, HashBelowIsUniformish) {
  // Chi-square-lite: bucket counts within 3x of expectation.
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  for (std::uint64_t i = 0; i < 16000; ++i)
    ++counts[hashBelow(hashCombine(1, i), kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, 1000 / 2);
    EXPECT_LT(c, 1000 * 2);
  }
}

TEST(Rng, HashCombineIsOrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
  EXPECT_NE(hashCombine(1, 2, 3), hashCombine(3, 2, 1));
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "bbbb"});
  t.addRow({"1", "2"});
  t.addRow({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
  // Rules at top, under header, and bottom.
  int rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("+-", 0) == 0) ++rules;
  EXPECT_EQ(rules, 3);
}

TEST(Table, HandlesShortRows) {
  Table t({"x", "y"});
  t.addRow({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Fmt, FixedPrecisionAndPercent) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmtPercent(0.444), "44%");
  EXPECT_EQ(fmtPercent(1.0), "100%");
}

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    DIVA_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(DIVA_CHECK(true));
  EXPECT_NO_THROW(DIVA_CHECK_MSG(2 + 2 == 4, "fine"));
}

}  // namespace
}  // namespace diva::support
