// Tests for the message-passing layer: delivery, contention, startup
// costs, congestion recording and mailbox semantics.

#include <gtest/gtest.h>

#include "mesh/link_stats.hpp"
#include "net/mesh_topology.hpp"
#include "net/network.hpp"
#include "sim/task.hpp"

namespace diva::net {
namespace {

struct Fixture {
  explicit Fixture(int rows = 4, int cols = 4, CostModel cm = CostModel::gcel())
      : topo(rows, cols), stats(topo.numLinkSlots(), 1), net(engine, topo, cm, stats) {}
  sim::Engine engine;
  MeshTopology topo;
  mesh::LinkStats stats;
  Network net;
};

TEST(Network, HandlerMayRebindCoveredChannelsButNotGrowTheTable) {
  Fixture f;
  bool rebound = false;
  f.net.setHandler(1, kFirstAppChannel, [&](Message&&) {
    // Re-registering on an already-covered (node, channel) mid-dispatch is
    // legal; growing the dense table with a brand-new channel is not.
    f.net.setHandler(2, kFirstAppChannel, [&](Message&&) { rebound = true; });
    EXPECT_THROW(f.net.setHandler(2, kFirstAppChannel + 100, [](Message&&) {}),
                 support::CheckError);
  });
  f.net.post(Message{0, 1, kFirstAppChannel, 64, 0});
  f.net.post(Message{0, 2, kFirstAppChannel, 64, 0});
  f.engine.run();
  EXPECT_TRUE(rebound);
}

TEST(Network, RecvRejectsOutOfRangeNode) {
  Fixture f;  // 4x4: nodes 0..15
  EXPECT_THROW(
      { auto t = f.net.recv(16, kFirstAppChannel); (void)t; },
      support::CheckError);
}

TEST(Network, HandlerReceivesMessage) {
  Fixture f;
  int got = -1;
  double when = -1;
  f.net.setHandler(5, kFirstAppChannel, [&](Message&& m) {
    got = m.as<int>();
    when = f.engine.now();
  });
  f.net.post(Message{0, 5, kFirstAppChannel, 1000, 41});
  f.engine.run();
  EXPECT_EQ(got, 41);
  // Cost lower bound: send startup + (bytes/bw) per hop pipeline + recv.
  const CostModel cm;
  EXPECT_GE(when, cm.sendOverheadUs + 1032.0 / cm.bytesPerUs + cm.recvOverheadUs);
}

TEST(Network, LocalMessagesSkipTheWire) {
  Fixture f;
  bool got = false;
  f.net.setHandler(3, kFirstAppChannel, [&](Message&&) { got = true; });
  f.net.post(Message{3, 3, kFirstAppChannel, 4096, 0});
  f.engine.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(f.stats.totalMessages(), 0u) << "local message must not touch links";
  const CostModel cm;
  EXPECT_LE(f.engine.now(), cm.stateLookupUs)
      << "local delivery costs one state-machine step";
}

TEST(Network, CongestionRecordedPerHop) {
  Fixture f;
  f.net.setHandler(3, kFirstAppChannel, [](Message&&) {});
  // 0 → 3 in row 0: three East hops.
  f.net.post(Message{0, 3, kFirstAppChannel, 968, 0});
  f.engine.run();
  EXPECT_EQ(f.stats.totalMessages(), 3u);
  EXPECT_EQ(f.stats.congestionMessages(), 1u);
  EXPECT_EQ(f.stats.totalBytes(), 3u * 1000u);  // payload + 32B header
}

TEST(Network, ContendedLinkSerializes) {
  // Two large messages crossing the same link: the second one's delivery
  // is delayed by a full transmission time.
  Fixture f;
  double t1 = -1, t2 = -1;
  int arrivals = 0;
  f.net.setHandler(1, kFirstAppChannel, [&](Message&&) {
    (arrivals++ == 0 ? t1 : t2) = f.engine.now();
  });
  // Messages from node 0 to node 1 share link 0→1. Two different source
  // coroutine posts at the same time.
  f.net.post(Message{0, 1, kFirstAppChannel, 10000, 0});
  f.net.post(Message{0, 1, kFirstAppChannel, 10000, 0});
  f.engine.run();
  ASSERT_EQ(arrivals, 2);
  const CostModel cm;
  EXPECT_GE(t2 - t1, 10000.0 / cm.bytesPerUs) << "second transfer must queue";
}

TEST(Network, CutThroughPipelinesAcrossHops) {
  // A long path should add per-hop latency, not per-hop transmission
  // time (wormhole/cut-through, not store-and-forward).
  Fixture f(1, 16);
  double when = -1;
  f.net.setHandler(15, kFirstAppChannel, [&](Message&& ) { when = f.engine.now(); });
  f.net.post(Message{0, 15, kFirstAppChannel, 20000, 0});
  f.engine.run();
  const CostModel cm;
  const double stream = 20032.0 / cm.bytesPerUs;
  const double storeAndForward = cm.sendOverheadUs + 15 * stream;
  const double cutThrough = cm.sendOverheadUs + 14 * cm.hopLatencyUs + stream +
                            cm.recvOverheadUs;
  EXPECT_NEAR(when, cutThrough, 1.0);
  EXPECT_LT(when, storeAndForward / 2);
}

TEST(Network, MailboxRecvBlocksUntilArrival) {
  Fixture f;
  int got = 0;
  sim::spawn([](Fixture& fx, int& out) -> sim::Task<> {
    Message m = co_await fx.net.recv(7, kFirstAppChannel);
    out = m.as<int>();
  }(f, got));
  f.engine.scheduleAt(100.0, [&] {
    f.net.post(Message{0, 7, kFirstAppChannel, 10, 123});
  });
  f.engine.run();
  EXPECT_EQ(got, 123);
}

TEST(Network, MailboxPreservesFifoOrder) {
  Fixture f;
  std::vector<int> got;
  sim::spawn([](Fixture& fx, std::vector<int>& out) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) {
      Message m = co_await fx.net.recv(7, kFirstAppChannel);
      out.push_back(m.as<int>());
    }
  }(f, got));
  for (int i = 0; i < 3; ++i) f.net.post(Message{0, 7, kFirstAppChannel, 10, i});
  f.engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Network, SendChargesSenderCpu) {
  Fixture f;
  f.net.setHandler(1, kFirstAppChannel, [](Message&&) {});
  double afterSend = -1;
  sim::spawn([](Fixture& fx, double& t) -> sim::Task<> {
    co_await fx.net.send(Message{0, 1, kFirstAppChannel, 0, 0});
    t = fx.engine.now();
  }(f, afterSend));
  f.engine.run();
  const CostModel cm;
  EXPECT_DOUBLE_EQ(afterSend, cm.sendOverheadUs);
}

TEST(Network, ComputeSerializesWithSends) {
  Fixture f;
  double done = -1;
  sim::spawn([](Fixture& fx, double& t) -> sim::Task<> {
    co_await fx.net.compute(0, 500.0);
    co_await fx.net.send(Message{0, 1, kFirstAppChannel, 0, 0});
    t = fx.engine.now();
  }(f, done));
  f.net.setHandler(1, kFirstAppChannel, [](Message&&) {});
  f.engine.run();
  const CostModel cm;
  EXPECT_DOUBLE_EQ(done, 500.0 + cm.sendOverheadUs);
}

TEST(Network, ReserveCpuAccumulatesWithoutBlocking) {
  Fixture f;
  f.net.reserveCpu(0, 100.0);
  f.net.reserveCpu(0, 100.0);
  EXPECT_DOUBLE_EQ(f.net.cpuFreeAt(0), 200.0);
  EXPECT_TRUE(f.engine.idle());
}

TEST(Network, ZeroOverheadCostModelTakesInlineFastPaths) {
  // With sendOverheadUs == 0 / stateLookupUs == 0 and idle CPUs, the
  // injection event fuses into the first hop and local messages dispatch
  // inline (no pooled box, no queue round-trip). Timing and delivery
  // semantics must be unchanged: the remote message still pays wire and
  // hop costs, the local one arrives at the posting instant.
  CostModel cm;
  cm.sendOverheadUs = 0.0;
  cm.recvOverheadUs = 0.0;
  cm.stateLookupUs = 0.0;
  Fixture f(1, 4, cm);
  double remoteAt = -1, localAt = -1;
  int localHops = -1;
  f.net.setHandler(2, kFirstAppChannel, [&](Message&&) { remoteAt = f.engine.now(); });
  f.net.setHandler(0, kFirstAppChannel + 1, [&](Message&&) {
    localAt = f.engine.now();
    localHops = static_cast<int>(f.stats.totalMessages());
  });
  f.net.post(Message{0, 0, kFirstAppChannel + 1, 64, 0});
  f.net.post(Message{0, 2, kFirstAppChannel, 68, 0});  // 68 + 32 header = 100 B
  f.engine.run();
  // Local: delivered inline at t = 0, before any link crossing happened.
  EXPECT_DOUBLE_EQ(localAt, 0.0);
  EXPECT_EQ(localHops, 0);
  // Remote: two links at 100 µs stream each, cut-through after 5 µs hop
  // latency: head enters link 2 at t = 5, tail arrives 5 + 100.
  EXPECT_DOUBLE_EQ(remoteAt, 105.0);
  EXPECT_EQ(f.stats.totalMessages(), 2u);
}

TEST(Network, InlineFastPathsPreserveFifoWithDefaultCosts) {
  // With the default (non-zero) cost model the fast paths must never
  // trigger: a local post still dispatches strictly after already-queued
  // same-time events, exactly as before the fuse existed.
  Fixture f;
  std::vector<int> order;
  f.net.setHandler(3, kFirstAppChannel, [&](Message&&) {
    f.engine.scheduleAt(f.engine.now() + CostModel{}.stateLookupUs,
                        [&] { order.push_back(0); });
    f.net.post(Message{3, 3, kFirstAppChannel + 1, 8, 0});
  });
  f.net.setHandler(3, kFirstAppChannel + 1, [&](Message&&) { order.push_back(1); });
  f.net.post(Message{0, 3, kFirstAppChannel, 64, 0});
  f.engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Network, BandwidthScalesDeliveryTime) {
  CostModel fast;
  fast.bytesPerUs = 10.0;
  Fixture slow(1, 2), quick(1, 2, fast);
  double tSlow = -1, tQuick = -1;
  slow.net.setHandler(1, kFirstAppChannel, [&](Message&&) { tSlow = slow.engine.now(); });
  quick.net.setHandler(1, kFirstAppChannel, [&](Message&&) { tQuick = quick.engine.now(); });
  slow.net.post(Message{0, 1, kFirstAppChannel, 100000, 0});
  quick.net.post(Message{0, 1, kFirstAppChannel, 100000, 0});
  slow.engine.run();
  quick.engine.run();
  EXPECT_GT(tSlow, tQuick * 5);
}

}  // namespace
}  // namespace diva::net
