// Fault & churn subsystem tests (docs/faults.md): link detour/park
// semantics, degraded links, fault-plan scheduling, scenario `fault`
// round-trips, protocol repair under processor crashes for both
// strategies, and workload availability accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "mesh/link_stats.hpp"
#include "net/fault.hpp"
#include "net/graph_topology.hpp"
#include "net/mesh_topology.hpp"
#include "net/network.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using sim::Task;

// ---------------------------------------------------------------------------
// Network layer: liveness, detour-or-park, degrade
// ---------------------------------------------------------------------------

struct NetFixture {
  explicit NetFixture(int rows = 4, int cols = 4)
      : topo(rows, cols),
        stats(topo.numLinkSlots(), 1),
        net(engine, topo, net::CostModel::gcel(), stats) {}
  sim::Engine engine;
  net::MeshTopology topo;
  mesh::LinkStats stats;
  net::Network net;
};

TEST(Fault, MessageDetoursAroundDeadLink) {
  NetFixture f;  // 4x4 mesh, dimension-order routes go along row 0 first
  int got = 0;
  f.net.setHandler(3, net::kFirstAppChannel, [&](net::Message&& m) {
    got = m.as<int>();
  });
  // 0→3 routes 0-1-2-3; sever the middle of that row. A live detour
  // through row 1 exists, so the message must still arrive.
  f.net.setLinkUp(1, 2, false);
  f.net.post(net::Message{0, 3, net::kFirstAppChannel, 64, 7});
  f.engine.run();
  EXPECT_EQ(got, 7);
  EXPECT_GE(f.net.reroutedFlights(), 1u);
  EXPECT_EQ(f.net.parkedFlights(), 0u);
}

TEST(Fault, FlightParksWhenCutOffAndResumesOnHeal) {
  // Ring of 4: node 2 is unreachable once both its links are dead.
  sim::Engine engine;
  net::GraphTopology topo(net::ringGraph(4));
  mesh::LinkStats stats(topo.numLinkSlots(), 1);
  net::Network net(engine, topo, net::CostModel::gcel(), stats);
  double arrived = -1.0;
  net.setHandler(2, net::kFirstAppChannel, [&](net::Message&&) {
    arrived = engine.now();
  });
  net.setLinkUp(1, 2, false);
  net.setLinkUp(2, 3, false);
  net.post(net::Message{0, 2, net::kFirstAppChannel, 64, 1});
  engine.run();
  EXPECT_LT(arrived, 0.0);  // no live path: parked, not delivered, not lost
  EXPECT_EQ(net.parkedFlights(), 1u);
  EXPECT_EQ(net.flightsInLimbo(), 1u);
  engine.scheduleAt(500.0, [&] { net.setLinkUp(1, 2, true); });
  engine.run();
  EXPECT_GE(arrived, 500.0);  // delivered after the heal, never dropped
  EXPECT_EQ(net.flightsInLimbo(), 0u);
}

TEST(Fault, DegradedLinkSlowsDeliveryAndHealsToNominal) {
  // 1×3 mesh, message 0→2, wormhole cut-through: an isolated message's
  // delivery time is send + Σ inter-hop latencies + the LAST link's
  // stream time. So the latency multiplier is observable on the first
  // link (0-1) and the bandwidth multiplier on the last link (1-2); a
  // non-final link's bandwidth only throttles subsequent traffic.
  auto deliveryTime = [](double lastWeightMul, double firstLatencyMul,
                         bool healFirst = false) {
    NetFixture f(1, 3);
    double arrived = -1.0;
    f.net.setHandler(2, net::kFirstAppChannel, [&](net::Message&&) {
      arrived = f.engine.now();
    });
    if (lastWeightMul != 1.0 || healFirst) f.net.degradeLink(1, 2, lastWeightMul, 1.0);
    if (firstLatencyMul != 1.0 || healFirst)
      f.net.degradeLink(0, 1, 1.0, firstLatencyMul);
    if (healFirst) {
      f.net.degradeLink(1, 2, 1.0, 1.0);
      f.net.degradeLink(0, 1, 1.0, 1.0);
    }
    f.net.post(net::Message{0, 2, net::kFirstAppChannel, 4096, 1});
    f.engine.run();
    return arrived;
  };
  const double nominal = deliveryTime(1.0, 1.0);
  EXPECT_GT(deliveryTime(3.0, 1.0), nominal);
  EXPECT_GT(deliveryTime(1.0, 3.0), nominal);
  // Degrading back to the nominal multipliers restores the exact rate
  // (multipliers are relative to the topology's nominal, not cumulative).
  EXPECT_DOUBLE_EQ(deliveryTime(4.0, 2.0, /*healFirst=*/true), nominal);
}

TEST(Fault, CrashedNodeStillDeliversProtocolTraffic) {
  // The always-on agent model: a crash loses application state, not the
  // router or protocol agent — messages to a dead node are delivered.
  NetFixture f;
  int got = 0;
  f.net.setHandler(5, net::kFirstAppChannel, [&](net::Message&& m) {
    got = m.as<int>();
  });
  f.net.setNodeUp(5, false);
  EXPECT_FALSE(f.net.nodeUp(5));
  EXPECT_EQ(f.net.numLiveNodes(), 15);
  f.net.post(net::Message{0, 5, net::kFirstAppChannel, 64, 9});
  f.engine.run();
  EXPECT_EQ(got, 9);
  f.net.setNodeUp(5, true);
  EXPECT_TRUE(f.net.nodeUp(5));
  EXPECT_EQ(f.net.numLiveNodes(), 16);
}

TEST(Fault, CrashingTheLastLiveNodeThrows) {
  NetFixture f(2, 2);
  f.net.setNodeUp(0, false);
  f.net.setNodeUp(1, false);
  f.net.setNodeUp(2, false);
  EXPECT_THROW(f.net.setNodeUp(3, false), support::CheckError);
}

TEST(Fault, FaultPlanFiresAtScheduledOffsets) {
  NetFixture f;
  std::vector<std::pair<double, bool>> transitions;
  f.net.addLivenessListener([&](net::NodeId n, bool up) {
    EXPECT_EQ(n, 6);
    transitions.emplace_back(f.engine.now(), up);
  });
  net::FaultPlan plan;
  net::FaultEvent down;
  down.kind = net::FaultEvent::Kind::NodeDown;
  down.offsetUs = 100.0;
  down.a = 6;
  net::FaultEvent up = down;
  up.kind = net::FaultEvent::Kind::NodeUp;
  up.offsetUs = 250.0;
  net::scheduleFaultPlan(f.engine, f.net, plan, 50.0);  // empty plan: no-op
  plan.push_back(down);
  plan.push_back(up);
  net::scheduleFaultPlan(f.engine, f.net, plan, 50.0);
  f.engine.run();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_DOUBLE_EQ(transitions[0].first, 150.0);
  EXPECT_FALSE(transitions[0].second);
  EXPECT_DOUBLE_EQ(transitions[1].first, 300.0);
  EXPECT_TRUE(transitions[1].second);
}

// ---------------------------------------------------------------------------
// Scenario format: `fault` directive
// ---------------------------------------------------------------------------

TEST(FaultScenario, FaultDirectivesRoundTrip) {
  const std::string text =
      "scenario churny\n"
      "objects 8 128\n"
      "procs 16\n"
      "phase a\n"
      "rounds 2\n"
      "fault 100 link-down 1 2\n"
      "fault 150 node-down 3\n"
      "fault 200 degrade 4 5 2.5 1.5\n"
      "fault 300 node-up 3\n"
      "fault 400 link-up 1 2\n";
  const workload::WorkloadSpec spec = workload::parseScenario(text);
  ASSERT_EQ(spec.phases.size(), 1u);
  const net::FaultPlan& faults = spec.phases[0].faults;
  ASSERT_EQ(faults.size(), 5u);
  EXPECT_EQ(faults[0].kind, net::FaultEvent::Kind::LinkDown);
  EXPECT_EQ(faults[1].kind, net::FaultEvent::Kind::NodeDown);
  EXPECT_EQ(faults[1].a, 3);
  EXPECT_EQ(faults[2].kind, net::FaultEvent::Kind::Degrade);
  EXPECT_DOUBLE_EQ(faults[2].weightMul, 2.5);
  EXPECT_DOUBLE_EQ(faults[2].latencyMul, 1.5);
  EXPECT_EQ(workload::parseScenario(workload::formatScenario(spec)), spec);
}

TEST(FaultScenario, MalformedFaultLinesRejectedWithLineNumbers) {
  auto expectThrowContaining = [](const std::string& text, const std::string& needle) {
    try {
      (void)workload::parseScenario(text);
      FAIL() << "expected CheckError for: " << text;
    } catch (const support::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  const std::string head = "objects 8\nphase a\n";
  expectThrowContaining("objects 8\nfault 10 node-down 1\nphase a\n",
                        "before any 'phase'");
  expectThrowContaining(head + "fault 10 melt 1\n", "unknown fault kind");
  expectThrowContaining(head + "fault -5 node-down 1\n", "must be >= 0");
  expectThrowContaining(head + "fault 10 degrade 1 2 0 1\n", "must be positive");
  expectThrowContaining(head + "fault 10 node-down 1 2\n", "trailing token");
  expectThrowContaining(head + "fault 10 link-down 1\n", "line 3");
}

TEST(FaultScenario, CommittedChurnScenarioParses) {
  const workload::WorkloadSpec spec =
      workload::loadScenarioFile(std::string(DIVA_SCENARIO_DIR) + "/churn.scenario");
  EXPECT_EQ(spec.name, "churn");
  EXPECT_EQ(spec.procs, 64);
  bool anyFault = false;
  for (const auto& ph : spec.phases) anyFault |= !ph.faults.empty();
  EXPECT_TRUE(anyFault);
}

TEST(FaultScenario, LoadErrorsNameTheFile) {
  try {
    (void)workload::loadScenarioFile("/dev/null");
    FAIL() << "expected CheckError";
  } catch (const support::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/null"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Protocol repair: kill-and-recover under both strategies
// ---------------------------------------------------------------------------

std::int64_t readInt(Machine& m, Runtime& rt, NodeId p, VarId x) {
  std::int64_t out = 0;
  sim::spawn([](Runtime& r, NodeId n, VarId v, std::int64_t& o) -> Task<> {
    o = valueAs<std::int64_t>(co_await r.read(n, v));
  }(rt, p, x, out));
  m.engine.run();
  return out;
}

void writeInt(Machine& m, Runtime& rt, NodeId p, VarId x, std::int64_t v) {
  sim::spawn([](Runtime& r, NodeId n, VarId var, std::int64_t val) -> Task<> {
    co_await r.write(n, var, makeValue(val));
  }(rt, p, x, v));
  m.engine.run();
}

struct FaultStratCase {
  RuntimeConfig config;
  const char* label;
};

class FaultStrategyTest : public ::testing::TestWithParam<FaultStratCase> {};

TEST_P(FaultStrategyTest, KillAndRecoverLosesNoData) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  std::vector<VarId> vars;
  for (NodeId owner = 0; owner < 16; ++owner)
    vars.push_back(
        rt.createVarFree(owner, makeValue(static_cast<std::int64_t>(owner * 10))));
  // Spread copies around — including onto the future victim, so the
  // crash is guaranteed to destroy state that repair must scrub.
  for (VarId x : vars) (void)readInt(m, rt, 3, x);
  for (VarId x : vars) (void)readInt(m, rt, 5, x);
  m.net.setNodeUp(5, false);
  m.engine.run();  // drain recovery traffic
  rt.checkAllInvariants();
  // Every value survives the crash and is readable from a live node.
  for (std::size_t i = 0; i < vars.size(); ++i)
    EXPECT_EQ(readInt(m, rt, 0, vars[i]), static_cast<std::int64_t>(i * 10));
  m.net.setNodeUp(5, true);
  m.engine.run();
  rt.checkAllInvariants();
  // The recovered node rebuilds its state through the normal protocol.
  EXPECT_EQ(readInt(m, rt, 5, vars[5]), 50);
  writeInt(m, rt, 5, vars[5], 555);
  EXPECT_EQ(readInt(m, rt, 9, vars[5]), 555);
  rt.checkAllInvariants();
  EXPECT_GT(m.stats.ops.repairedVars, 0u);
}

TEST_P(FaultStrategyTest, CrashMidOperationDefersRepairUntilQuiet) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(2, makeValue<std::int64_t>(41));
  // Launch reads from several nodes and crash the owner while they are
  // in flight: repair must wait for the variable to go quiet, then leave
  // a coherent component (nothing lost, nothing dually owned).
  for (NodeId p : {static_cast<NodeId>(6), static_cast<NodeId>(10),
                   static_cast<NodeId>(15)}) {
    sim::spawn([](Runtime& r, NodeId n, VarId v) -> Task<> {
      (void)co_await r.read(n, v);
    }(rt, p, x));
  }
  m.engine.scheduleAt(m.engine.now() + 1.0, [&] { m.net.setNodeUp(2, false); });
  m.engine.run();
  rt.checkAllInvariants();
  EXPECT_EQ(readInt(m, rt, 0, x), 41);
  m.net.setNodeUp(2, true);
  m.engine.run();
  rt.checkAllInvariants();
}

TEST_P(FaultStrategyTest, RandomizedKillAndRecoverQuiescence) {
  // The ISSUE's property test: on three shapes, interleave random
  // reads/writes with crash/recover cycles; at every quiescent point no
  // object may be lost or dually owned, and every object must read back
  // its last written value.
  const std::vector<net::TopologySpec> shapes = {
      net::TopologySpec::mesh2d(4, 4),
      net::TopologySpec::graph(net::ringGraph(16)),
      net::TopologySpec::graph(net::randomRegularGraph(16, 3, 7)),
  };
  for (const net::TopologySpec& shape : shapes) {
    Machine m(shape);
    Runtime rt(m, GetParam().config);
    const int procs = m.numProcs();
    support::SplitMix64 rng(0xFA0171ull ^ static_cast<std::uint64_t>(procs));
    std::vector<VarId> vars;
    std::vector<std::int64_t> truth;
    for (int i = 0; i < 12; ++i) {
      const NodeId owner = static_cast<NodeId>(rng.below(procs));
      truth.push_back(i * 100);
      vars.push_back(rt.createVarFree(owner, makeValue(truth.back())));
    }
    for (int round = 0; round < 6; ++round) {
      const NodeId victim = static_cast<NodeId>(rng.below(procs));
      // Random traffic before the crash.
      for (int op = 0; op < 8; ++op) {
        const std::size_t i = rng.below(vars.size());
        const NodeId p = static_cast<NodeId>(rng.below(procs));
        if (rng.uniform() < 0.5) {
          EXPECT_EQ(readInt(m, rt, p, vars[i]), truth[i]);
        } else {
          truth[i] = round * 1000 + op;
          writeInt(m, rt, p, vars[i], truth[i]);
        }
      }
      m.net.setNodeUp(victim, false);
      m.engine.run();
      rt.checkAllInvariants();
      // Traffic from live nodes while the victim is down.
      for (int op = 0; op < 4; ++op) {
        const std::size_t i = rng.below(vars.size());
        NodeId p = static_cast<NodeId>(rng.below(procs));
        if (p == victim) p = static_cast<NodeId>((p + 1) % procs);
        if (rng.uniform() < 0.5) {
          EXPECT_EQ(readInt(m, rt, p, vars[i]), truth[i]);
        } else {
          truth[i] = round * 1000 + 500 + op;
          writeInt(m, rt, p, vars[i], truth[i]);
        }
      }
      rt.checkAllInvariants();
      m.net.setNodeUp(victim, true);
      m.engine.run();
      rt.checkAllInvariants();
    }
    // Quiescence: every object intact with its last written value.
    for (std::size_t i = 0; i < vars.size(); ++i)
      EXPECT_EQ(readInt(m, rt, 0, vars[i]), truth[i]);
    rt.checkAllInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, FaultStrategyTest,
    ::testing::Values(FaultStratCase{RuntimeConfig::accessTree(4, 1), "at4"},
                      FaultStratCase{RuntimeConfig::accessTree(2, 4), "at2_4"},
                      FaultStratCase{RuntimeConfig::fixedHome(), "fh"}),
    [](const ::testing::TestParamInfo<FaultStratCase>& info) {
      return std::string(info.param.label);
    });

// ---------------------------------------------------------------------------
// Workload layer: availability accounting
// ---------------------------------------------------------------------------

workload::WorkloadSpec smallSpec() {
  workload::WorkloadSpec spec;
  spec.name = "fault-wl";
  spec.numObjects = 8;
  spec.objectBytes = 128;
  spec.seed = 11;
  spec.phases.push_back(workload::PhaseSpec{"p0", 6, 0.8, 1.0, 0, 50.0, true, {}});
  return spec;
}

TEST(FaultWorkload, FaultedRunReportsAvailabilityAndRepairs) {
  workload::WorkloadSpec spec = smallSpec();
  net::FaultEvent down;
  down.kind = net::FaultEvent::Kind::NodeDown;
  down.offsetUs = 20.0;
  down.a = 3;
  net::FaultEvent up = down;
  up.kind = net::FaultEvent::Kind::NodeUp;
  up.offsetUs = 400.0;
  spec.phases[0].faults = {down, up};
  const workload::WorkloadReport r =
      workload::runOn(net::TopologySpec::mesh2d(4, 4), RuntimeConfig::fixedHome(), spec);
  EXPECT_TRUE(r.faulted);
  // Every op either served or failed; nothing double-counted or dropped.
  EXPECT_EQ(r.servedOps + r.failedOps, 16u * 6u);
  EXPECT_GE(r.availability, 0.0);
  EXPECT_LE(r.availability, 1.0);
  const std::string text = workload::formatReport(r);
  EXPECT_NE(text.find("availability"), std::string::npos);
  EXPECT_NE(text.find("recovery"), std::string::npos);
}

TEST(FaultWorkload, FaultFreeReportOmitsAvailabilitySection) {
  const workload::WorkloadReport r = workload::runOn(
      net::TopologySpec::mesh2d(4, 4), RuntimeConfig::fixedHome(), smallSpec());
  EXPECT_FALSE(r.faulted);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  const std::string text = workload::formatReport(r);
  EXPECT_EQ(text.find("availability"), std::string::npos);
}

TEST(FaultWorkload, OutOfRangeFaultEndpointRejected) {
  workload::WorkloadSpec spec = smallSpec();
  net::FaultEvent down;
  down.kind = net::FaultEvent::Kind::NodeDown;
  down.offsetUs = 1.0;
  down.a = 99;  // machine has 16 nodes
  spec.phases[0].faults = {down};
  EXPECT_THROW(workload::runOn(net::TopologySpec::mesh2d(4, 4),
                               RuntimeConfig::fixedHome(), spec),
               support::CheckError);
}

}  // namespace
}  // namespace diva
