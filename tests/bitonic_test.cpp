// Bitonic sorting application tests: the output must be globally sorted
// for every strategy and mesh shape, and the locality/congestion shape
// claims of the paper must hold.

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/bitonic/bitonic.hpp"

namespace diva::apps::bitonic {
namespace {

void expectSorted(const std::vector<std::uint32_t>& keys, const Config& cfg, int P) {
  ASSERT_EQ(keys.size(), static_cast<std::size_t>(P) * cfg.keysPerProc);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Same multiset as the input.
  auto input = inputKeys(P, cfg);
  std::sort(input.begin(), input.end());
  EXPECT_EQ(keys, input);
}

struct Case {
  RuntimeConfig rc;
  const char* label;
};

class BitonicCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(BitonicCorrectness, SortsAcrossMeshesAndSizes) {
  struct Shape {
    int rows, cols, keys;
  };
  for (const auto& s : {Shape{2, 2, 32}, Shape{4, 4, 16}, Shape{4, 8, 8}}) {
    Machine m(s.rows, s.cols);
    Runtime rt(m, GetParam().rc);
    Config cfg;
    cfg.keysPerProc = s.keys;
    cfg.seed = 99;
    const Result r = runDiva(m, rt, cfg);
    expectSorted(r.keys, cfg, m.numProcs());
    rt.checkAllInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, BitonicCorrectness,
    ::testing::Values(Case{RuntimeConfig::accessTree(2, 1), "at2"},
                      Case{RuntimeConfig::accessTree(4, 1), "at4"},
                      Case{RuntimeConfig::accessTree(2, 4), "at2_4"},
                      Case{RuntimeConfig::fixedHome(), "fh"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(BitonicHandOptimized, Sorts) {
  for (int keys : {8, 64, 256}) {
    Machine m(4, 4);
    Config cfg;
    cfg.keysPerProc = keys;
    const Result r = runHandOptimized(m, cfg);
    expectSorted(r.keys, cfg, 16);
  }
}

TEST(BitonicHandOptimized, ZeroOnePrinciple) {
  // Sorting networks are data-oblivious: spot-check near-constant inputs
  // by seed variation (the 0-1 principle's practical cousin).
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    Machine m(4, 4);
    Config cfg;
    cfg.keysPerProc = 16;
    cfg.seed = seed;
    const Result r = runHandOptimized(m, cfg);
    EXPECT_TRUE(std::is_sorted(r.keys.begin(), r.keys.end())) << "seed " << seed;
  }
}

TEST(BitonicStrategies, AccessTreeBeatsFixedHome) {
  Config cfg;
  cfg.keysPerProc = 256;

  Machine mh(4, 4);
  const auto ho = runHandOptimized(mh, cfg);

  Machine ma(4, 4);
  Runtime rta(ma, RuntimeConfig::accessTree(2, 4));
  const auto at = runDiva(ma, rta, cfg);

  Machine mf(4, 4);
  Runtime rtf(mf, RuntimeConfig::fixedHome());
  const auto fh = runDiva(mf, rtf, cfg);

  EXPECT_LE(ho.congestionBytes, at.congestionBytes);
  EXPECT_LT(at.congestionBytes, fh.congestionBytes);
  EXPECT_LT(at.timeUs, fh.timeUs);
}

TEST(BitonicStrategies, DeterministicAcrossStrategySeeds) {
  // The sorted output must not depend on the embedding seed — only the
  // traffic does.
  Config cfg;
  cfg.keysPerProc = 32;
  std::vector<std::uint32_t> first;
  std::uint64_t firstBytes = 0;
  bool trafficDiffers = false;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Machine m(4, 4);
    Runtime rt(m, RuntimeConfig::accessTree(4, 1, seed));
    const auto r = runDiva(m, rt, cfg);
    if (first.empty()) {
      first = r.keys;
      firstBytes = r.totalBytes;
    } else {
      EXPECT_EQ(r.keys, first);
      trafficDiffers = trafficDiffers || r.totalBytes != firstBytes;
    }
  }
  EXPECT_TRUE(trafficDiffers) << "different embeddings should route differently";
}

}  // namespace
}  // namespace diva::apps::bitonic
