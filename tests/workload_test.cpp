// The synthetic-workload subsystem: generator statistics (Zipf
// frequency-rank slope, stream splitting, phase-boundary determinism),
// scenario file format round-trips, driver report invariants, and the
// strategy A/B acceptance property — the access tree beats the fixed
// home baseline on max-link congestion under a hotspot workload, on the
// mesh and on a general graph.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/graph_topology.hpp"
#include "net/topology_env.hpp"
#include "support/check.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace diva {
namespace {

using support::SplitMix64;
using workload::PhaseSpec;
using workload::WorkloadSpec;
using workload::ZipfSampler;

// --------------------------------------------------------------------------
// RNG stream splitting
// --------------------------------------------------------------------------

TEST(RngSplit, ChildStreamsAreDeterministicAndDistinct) {
  const SplitMix64 master(42);
  SplitMix64 a = master.split(1);
  SplitMix64 a2 = master.split(1);
  SplitMix64 b = master.split(2);
  EXPECT_EQ(a.next(), a2.next());  // same id → same stream
  bool anyDiff = false;
  SplitMix64 a3 = master.split(1);
  for (int i = 0; i < 16; ++i) anyDiff |= a3.next() != b.next();
  EXPECT_TRUE(anyDiff);  // different ids → different streams
}

TEST(RngSplit, SplitDoesNotAdvanceParent) {
  SplitMix64 p(7);
  SplitMix64 q(7);
  (void)p.split(123);
  (void)p.split(456);
  EXPECT_EQ(p.next(), q.next());
}

TEST(RngSplit, SplitsCommuteWithDraws) {
  // split() is a function of (state, id): drawing after splitting must
  // give the same child as splitting after copying.
  SplitMix64 p(99);
  const SplitMix64 snapshot = p;
  SplitMix64 child1 = p.split(5);
  (void)p.next();
  SplitMix64 child2 = snapshot.split(5);
  EXPECT_EQ(child1.next(), child2.next());
}

// --------------------------------------------------------------------------
// Zipf generator statistics
// --------------------------------------------------------------------------

TEST(Zipf, UniformWhenExponentZero) {
  const int n = 16;
  ZipfSampler zipf(n, 0.0);
  SplitMix64 rng(1);
  std::vector<int> count(n, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++count[zipf(rng)];
  for (int r = 0; r < n; ++r) {
    const double freq = static_cast<double>(count[r]) / draws;
    EXPECT_NEAR(freq, 1.0 / n, 0.01) << "rank " << r;
  }
}

TEST(Zipf, FrequencyRankSlopeMatchesExponent) {
  // Least-squares slope of log(freq) vs log(rank+1) over the well-sampled
  // head must recover -s for a Zipf(s) sampler.
  for (const double s : {1.0, 2.0}) {
    const int n = 64;
    ZipfSampler zipf(n, s);
    SplitMix64 rng(1234);
    std::vector<int> count(n, 0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i) ++count[zipf(rng)];
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const int head = 16;
    for (int r = 0; r < head; ++r) {
      ASSERT_GT(count[r], 100) << "rank " << r << " undersampled at s=" << s;
      const double x = std::log(static_cast<double>(r + 1));
      const double y = std::log(static_cast<double>(count[r]) / draws);
      sx += x, sy += y, sxx += x * x, sxy += x * y;
    }
    const double slope = (head * sxy - sx * sy) / (head * sxx - sx * sx);
    EXPECT_NEAR(slope, -s, 0.08) << "s=" << s;
  }
}

TEST(Zipf, SkewConcentratesOnHotRanks) {
  ZipfSampler zipf(256, 1.0);
  SplitMix64 rng(5);
  int hot = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    if (zipf(rng) < 8) ++hot;
  // With s=1, n=256: P(rank<8) = H(8)/H(256) ≈ 2.72/6.12 ≈ 0.44.
  EXPECT_GT(hot, draws * 2 / 5);
  EXPECT_LT(hot, draws / 2);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), support::CheckError);
  EXPECT_THROW(ZipfSampler(4, -0.5), support::CheckError);
  // Spec validation bounds exponents at kMaxExponent, so every accepted
  // integral exponent takes the exact-arithmetic (bit-stable) path.
  WorkloadSpec spec;
  spec.numObjects = 4;
  spec.phases.push_back(PhaseSpec{"p", 1, 1.0, ZipfSampler::kMaxExponent + 1.0, 0, 0.0,
                                  true, {}});
  EXPECT_THROW(spec.validate(), support::CheckError);
  spec.phases[0].zipfS = ZipfSampler::kMaxExponent;
  spec.validate();
  // High integral exponents degrade gracefully (deterministic rank 0).
  ZipfSampler extreme(8, ZipfSampler::kMaxExponent);
  SplitMix64 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(extreme(rng), 0);
}

// --------------------------------------------------------------------------
// Phase-boundary determinism
// --------------------------------------------------------------------------

TEST(AccessStream, PureFunctionOfSeedPhaseNode) {
  // The phase-1 stream is identical no matter what phase 0 looked like —
  // editing one phase of a scenario never changes another phase's access
  // sequence.
  SplitMix64 a = workload::accessStream(42, 1, 3);
  SplitMix64 b = workload::accessStream(42, 1, 3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());

  SplitMix64 otherPhase = workload::accessStream(42, 0, 3);
  SplitMix64 otherNode = workload::accessStream(42, 1, 4);
  SplitMix64 otherSeed = workload::accessStream(43, 1, 3);
  SplitMix64 base = workload::accessStream(42, 1, 3);
  const std::uint64_t v = base.next();
  EXPECT_NE(v, otherPhase.next());
  EXPECT_NE(v, otherNode.next());
  EXPECT_NE(v, otherSeed.next());
}

// --------------------------------------------------------------------------
// Scenario file format
// --------------------------------------------------------------------------

WorkloadSpec sampleSpec() {
  WorkloadSpec spec;
  spec.name = "roundtrip";
  spec.numObjects = 96;
  spec.objectBytes = 512;
  spec.cacheBytes = 8192;
  spec.seed = 1234567;
  spec.procs = 16;
  spec.phases.push_back(PhaseSpec{"warm", 3, 1.0, 0.0, 0, 0.0, true, {}});
  spec.phases.push_back(PhaseSpec{"hot", 9, 0.75, 1.0, 0, 250.0, true, {}});
  spec.phases.push_back(PhaseSpec{"drift", 7, 0.25, 2.0, 48, 125.5, false, {}});
  return spec;
}

TEST(Scenario, FormatParseRoundTrip) {
  const WorkloadSpec spec = sampleSpec();
  const WorkloadSpec back = workload::parseScenario(workload::formatScenario(spec));
  EXPECT_EQ(spec, back);
}

TEST(Scenario, ParsesDefaultsAndComments) {
  const WorkloadSpec spec = workload::parseScenario(
      "# a comment\n"
      "\n"
      "objects 4\n"
      "phase only\n"
      "rounds 2\n");
  EXPECT_EQ(spec.name, "file");
  EXPECT_EQ(spec.numObjects, 4);
  EXPECT_EQ(spec.objectBytes, 64u);
  EXPECT_EQ(spec.cacheBytes, 0u);
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.procs, 0);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_EQ(spec.phases[0].name, "only");
  EXPECT_EQ(spec.phases[0].rounds, 2);
  EXPECT_DOUBLE_EQ(spec.phases[0].readFraction, 1.0);
  EXPECT_TRUE(spec.phases[0].barrier);
}

TEST(Scenario, RejectsMalformedInput) {
  EXPECT_THROW(workload::parseScenario("phase p\n"), support::CheckError);  // no objects
  EXPECT_THROW(workload::parseScenario("objects 4\n"), support::CheckError);  // no phase
  EXPECT_THROW(workload::parseScenario("objects 4\nrounds 3\n"),
               support::CheckError);  // phase key before 'phase'
  EXPECT_THROW(workload::parseScenario("objects 4\nfrobnicate 1\n"),
               support::CheckError);  // unknown directive
  EXPECT_THROW(workload::parseScenario("objects 4\nphase p\nreads 1.5\n"),
               support::CheckError);  // validation: fraction out of range
  EXPECT_THROW(workload::parseScenario("objects 4\nphase p\nbarrier 2\n"),
               support::CheckError);
  EXPECT_THROW(workload::parseScenario("objects 4\nobjects 5\nphase p\n"),
               support::CheckError);  // duplicate objects
  EXPECT_THROW(workload::parseScenario("objects 4x\nphase p\n"),
               support::CheckError);  // malformed number
  // Every directive rejects trailing tokens instead of silently dropping
  // them (a one-line "rounds 5 reads 0.1" typo must not run a different
  // workload than written).
  EXPECT_THROW(workload::parseScenario("scenario two words\nobjects 4\nphase p\n"),
               support::CheckError);
  EXPECT_THROW(workload::parseScenario("objects 4\nphase hot rounds 5\n"),
               support::CheckError);
  EXPECT_THROW(workload::parseScenario("objects 4\nphase p\nrounds 5 reads 0.1\n"),
               support::CheckError);
  EXPECT_THROW(workload::parseScenario("objects 4 64 128\nphase p\n"),
               support::CheckError);
  // Unsigned fields reject negative literals (istream would wrap them).
  EXPECT_THROW(workload::parseScenario("objects 4 -1\nphase p\n"), support::CheckError);
  EXPECT_THROW(workload::parseScenario("seed -1\nobjects 4\nphase p\n"),
               support::CheckError);
}

TEST(Scenario, InlineCommentsAreAllowedEverywhere) {
  const WorkloadSpec spec = workload::parseScenario(
      "objects 4 128   # population, payload\n"
      "phase p         # the only phase\n"
      "rounds 2        # two accesses each\n");
  EXPECT_EQ(spec.numObjects, 4);
  EXPECT_EQ(spec.objectBytes, 128u);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_EQ(spec.phases[0].name, "p");
  EXPECT_EQ(spec.phases[0].rounds, 2);
}

TEST(Scenario, NamesMustBeSingleTokensToRoundTrip) {
  // A spec built in C++ with a whitespace name could never round-trip
  // through the text format; validate() rejects it up front.
  WorkloadSpec spec = sampleSpec();
  spec.name = "two words";
  EXPECT_THROW(spec.validate(), support::CheckError);
  spec = sampleSpec();
  spec.phases[0].name = "hot phase";
  EXPECT_THROW(spec.validate(), support::CheckError);
  // '#' starts a comment in the format, so it can't appear in names.
  spec = sampleSpec();
  spec.name = "a#b";
  EXPECT_THROW(spec.validate(), support::CheckError);
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

WorkloadSpec hotspotSpec() {
  WorkloadSpec spec;
  spec.name = "hotspot-test";
  spec.numObjects = 64;
  spec.objectBytes = 512;
  spec.seed = 42;
  spec.phases.push_back(PhaseSpec{"warm", 2, 1.0, 0.0, 0, 0.0, true, {}});
  spec.phases.push_back(PhaseSpec{"hot", 12, 0.9, 1.0, 0, 100.0, true, {}});
  return spec;
}

TEST(WorkloadDriver, ReportAccountsEveryAccess) {
  const WorkloadSpec spec = hotspotSpec();
  const workload::WorkloadReport r =
      workload::runOn(net::TopologySpec::mesh2d(4, 4), RuntimeConfig::accessTree(4), spec);
  ASSERT_EQ(r.phases.size(), spec.phases.size());
  EXPECT_EQ(r.procs, 16);
  for (std::size_t p = 0; p < r.phases.size(); ++p) {
    const auto& pr = r.phases[p];
    // Every processor performed exactly `rounds` accesses.
    EXPECT_EQ(pr.reads + pr.writes,
              static_cast<std::uint64_t>(spec.phases[p].rounds) * 16);
    EXPECT_GT(pr.wallUs, 0.0);
  }
  // All-read warmup phase: no writes.
  EXPECT_EQ(r.phases[0].writes, 0u);
  // The mixed phase took locks for each write.
  EXPECT_EQ(r.phases[1].locks, r.phases[1].writes);
  EXPECT_GT(r.phases[1].writes, 0u);
  EXPECT_GT(r.linkBytes, 0u);
  EXPECT_GE(r.linkMessages, r.congestionMessages);
  EXPECT_GT(r.completionUs, 0.0);
}

TEST(WorkloadDriver, SameSeedSameReportBytes) {
  const WorkloadSpec spec = hotspotSpec();
  const auto topo = net::TopologySpec::torus2d(4, 4);
  const workload::WorkloadReport a =
      workload::runOn(topo, RuntimeConfig::accessTree(4), spec);
  const workload::WorkloadReport b =
      workload::runOn(topo, RuntimeConfig::accessTree(4), spec);
  EXPECT_EQ(workload::formatReport(a), workload::formatReport(b));
}

TEST(WorkloadDriver, GrowsPastDefaultPhaseBudget) {
  WorkloadSpec spec;
  spec.name = "many-phases";
  spec.numObjects = 8;
  spec.seed = 3;
  for (int p = 0; p < Stats::kMaxPhases + 4; ++p) {
    std::string name = "p";  // two-step append sidesteps a GCC 12 -Wrestrict false positive
    name += std::to_string(p);
    spec.phases.push_back(PhaseSpec{std::move(name), 1, 0.5, 0.0, 0, 0.0, true, {}});
  }
  const workload::WorkloadReport r =
      workload::runOn(net::TopologySpec::mesh2d(2, 2), RuntimeConfig::fixedHome(), spec);
  ASSERT_EQ(r.phases.size(), spec.phases.size());
  for (const auto& pr : r.phases) EXPECT_EQ(pr.reads + pr.writes, 4u);
}

TEST(WorkloadDriver, ValidatesSpec) {
  WorkloadSpec spec;  // no phases
  spec.numObjects = 4;
  EXPECT_THROW(workload::runOn(net::TopologySpec::mesh2d(2, 2),
                               RuntimeConfig::fixedHome(), spec),
               support::CheckError);
  spec.phases.push_back(PhaseSpec{"p", 1, 2.0, 0.0, 0, 0.0, true, {}});  // bad fraction
  EXPECT_THROW(spec.validate(), support::CheckError);
}

// --------------------------------------------------------------------------
// The A/B acceptance property (ISSUE 5): on the committed hotspot
// scenario, the access tree runs at lower max-link congestion than the
// fixed home baseline — on the mesh and on a GraphTopology shape. The
// hierarchy needs depth to spread load, so this is a 64-processor
// property (at 16 processors the tree is too shallow and the effect
// vanishes — scenarios/hotspot.scenario pins procs 64).
// --------------------------------------------------------------------------

void expectAccessTreeWinsCongestion(const net::TopologySpec& topo) {
  const WorkloadSpec spec = workload::loadScenarioFile(
      std::string(DIVA_SCENARIO_DIR) + "/hotspot.scenario");
  ASSERT_EQ(spec.procs, 64);
  const workload::WorkloadReport at =
      workload::runOn(topo, RuntimeConfig::accessTree(4), spec);
  const workload::WorkloadReport fh =
      workload::runOn(topo, RuntimeConfig::fixedHome(), spec);
  EXPECT_LT(at.congestionBytes, fh.congestionBytes) << "on " << topo.describe();
  EXPECT_LT(at.congestionMessages, fh.congestionMessages) << "on " << topo.describe();
}

TEST(WorkloadAB, AccessTreeBeatsFixedHomeOnMeshHotspot) {
  expectAccessTreeWinsCongestion(net::TopologySpec::mesh2d(8, 8));
}

TEST(WorkloadAB, AccessTreeBeatsFixedHomeOnGraphHotspot) {
  expectAccessTreeWinsCongestion(net::TopologySpec::graph(net::ringGraph(64)));
}

// --------------------------------------------------------------------------
// topologyByName (shared by scenario_runner, examples and benches)
// --------------------------------------------------------------------------

TEST(TopologyEnv, NamesResolveToSpecs) {
  EXPECT_EQ(net::topologyByName("mesh2d", 4, 4, true),
            net::TopologySpec::mesh2d(4, 4));
  EXPECT_EQ(net::topologyByName("torus2d", 2, 8, true),
            net::TopologySpec::torus2d(2, 8));
  EXPECT_EQ(net::topologyByName("hypercube", 4, 4, false),
            net::TopologySpec::hypercube(4));
  EXPECT_EQ(net::topologyByName("ring", 4, 4, false).graphSpec->numNodes, 16);
  EXPECT_EQ(net::topologyByName("star", 3, 3, false).graphSpec->numNodes, 9);
  EXPECT_EQ(net::topologyByName("random-regular", 4, 4, false).graphSpec->numNodes, 16);
  EXPECT_THROW(net::topologyByName("ring", 4, 4, /*requireGrid=*/true),
               support::CheckError);
  EXPECT_THROW(net::topologyByName("nonsense", 4, 4, false), support::CheckError);
  EXPECT_THROW(net::topologyByName("hypercube", 3, 5, false), support::CheckError);
}

}  // namespace
}  // namespace diva
