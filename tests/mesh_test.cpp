// Unit and property tests for the mesh topology, dimension-order routing
// and link statistics.

#include <gtest/gtest.h>

#include "mesh/link_stats.hpp"
#include "mesh/mesh.hpp"
#include "mesh/route.hpp"

namespace diva::mesh {
namespace {

TEST(Mesh, RowMajorNumbering) {
  Mesh m(4, 8);
  EXPECT_EQ(m.numNodes(), 32);
  EXPECT_EQ(m.nodeAt(0, 0), 0);
  EXPECT_EQ(m.nodeAt(0, 7), 7);
  EXPECT_EQ(m.nodeAt(1, 0), 8);
  EXPECT_EQ(m.nodeAt(3, 7), 31);
  EXPECT_EQ(m.coordOf(17).row, 2);
  EXPECT_EQ(m.coordOf(17).col, 1);
}

TEST(Mesh, NeighborsRespectBoundaries) {
  Mesh m(3, 3);
  const NodeId corner = m.nodeAt(0, 0);
  EXPECT_TRUE(m.hasNeighbor(corner, Mesh::East));
  EXPECT_TRUE(m.hasNeighbor(corner, Mesh::South));
  EXPECT_FALSE(m.hasNeighbor(corner, Mesh::West));
  EXPECT_FALSE(m.hasNeighbor(corner, Mesh::North));
  const NodeId center = m.nodeAt(1, 1);
  for (int d = 0; d < Mesh::kDirs; ++d)
    EXPECT_TRUE(m.hasNeighbor(center, static_cast<Mesh::Dir>(d)));
  EXPECT_EQ(m.neighbor(center, Mesh::East), m.nodeAt(1, 2));
  EXPECT_EQ(m.neighbor(center, Mesh::North), m.nodeAt(0, 1));
}

TEST(Route, EmptyForSelf) {
  Mesh m(4, 4);
  EXPECT_TRUE(routeOf(m, 5, 5).empty());
}

TEST(Route, ColumnsFirstThenRows) {
  Mesh m(4, 4);
  // From (0,0) to (2,3): expect 3 East hops then 2 South hops.
  const auto hops = routeOf(m, m.nodeAt(0, 0), m.nodeAt(2, 3));
  ASSERT_EQ(hops.size(), 5u);
  EXPECT_EQ(hops[0].to, m.nodeAt(0, 1));
  EXPECT_EQ(hops[1].to, m.nodeAt(0, 2));
  EXPECT_EQ(hops[2].to, m.nodeAt(0, 3));
  EXPECT_EQ(hops[3].to, m.nodeAt(1, 3));
  EXPECT_EQ(hops[4].to, m.nodeAt(2, 3));
}

class RouteProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RouteProperty, AllPairsShortestAndXY) {
  const auto [rows, cols] = GetParam();
  Mesh m(rows, cols);
  for (NodeId a = 0; a < m.numNodes(); ++a) {
    for (NodeId b = 0; b < m.numNodes(); ++b) {
      const auto hops = routeOf(m, a, b);
      // Shortest: hop count equals Manhattan distance.
      EXPECT_EQ(static_cast<int>(hops.size()), m.distance(a, b));
      // Dimension order: no column movement after the first row movement.
      bool sawRow = false;
      NodeId cur = a;
      for (const Hop& h : hops) {
        const bool rowMove = m.coordOf(h.to).row != m.coordOf(cur).row;
        if (rowMove) sawRow = true;
        if (sawRow) EXPECT_NE(m.coordOf(h.to).row, m.coordOf(cur).row);
        // Links must connect adjacent nodes.
        EXPECT_EQ(m.distance(cur, h.to), 1);
        cur = h.to;
      }
      if (!hops.empty()) EXPECT_EQ(cur, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RouteProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 8},
                                           std::pair{8, 1}, std::pair{4, 4},
                                           std::pair{3, 5}, std::pair{8, 8}));

TEST(LinkStats, CongestionIsMaxTotalIsSum) {
  Mesh m(2, 2);
  LinkStats s(m.numLinkSlots(), 2);
  const int l0 = m.linkIndex(0, Mesh::East);
  const int l1 = m.linkIndex(0, Mesh::South);
  s.record(l0, 100);
  s.record(l0, 100);
  s.record(l1, 50);
  EXPECT_EQ(s.congestionMessages(), 2u);
  EXPECT_EQ(s.congestionBytes(), 200u);
  EXPECT_EQ(s.totalMessages(), 3u);
  EXPECT_EQ(s.totalBytes(), 250u);
}

TEST(LinkStats, PhasesAreScoped) {
  Mesh m(2, 2);
  LinkStats s(m.numLinkSlots(), 3);
  const int l = m.linkIndex(0, Mesh::East);
  s.setPhase(0);
  s.record(l, 10);
  s.setPhase(2);
  s.record(l, 30);
  s.record(l, 30);
  EXPECT_EQ(s.congestionBytes(0), 10u);
  EXPECT_EQ(s.congestionBytes(2), 60u);
  EXPECT_EQ(s.congestionBytes(1), 0u);
  EXPECT_EQ(s.congestionBytes(), 70u);  // all phases
  EXPECT_EQ(s.congestionMessages(2), 2u);
}

TEST(LinkStats, ResetClearsEverything) {
  Mesh m(2, 2);
  LinkStats s(m.numLinkSlots(), 2);
  s.record(0, 5);
  s.reset();
  EXPECT_EQ(s.totalBytes(), 0u);
  EXPECT_EQ(s.congestionMessages(), 0u);
}

}  // namespace
}  // namespace diva::mesh
