// Barnes–Hut tests: physics correctness of the reference simulator
// (octree invariants, force accuracy vs direct summation) and bit-exact
// agreement of the distributed DIVA runs with the reference.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/barneshut/barneshut.hpp"
#include "apps/barneshut/octree.hpp"
#include "apps/barneshut/plummer.hpp"

namespace diva::apps::barneshut {
namespace {

TEST(Plummer, GeneratesCentredEqualMassBodies) {
  const auto bodies = plummerModel(2000, 7);
  ASSERT_EQ(bodies.size(), 2000u);
  Vec3 cm{}, mom{};
  double mass = 0;
  for (const auto& b : bodies) {
    EXPECT_DOUBLE_EQ(b.mass, 1.0 / 2000);
    cm += b.pos * b.mass;
    mom += b.vel * b.mass;
    mass += b.mass;
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_NEAR(cm.norm(), 0.0, 1e-12);
  EXPECT_NEAR(mom.norm(), 0.0, 1e-12);
  // Half-mass radius of a Plummer sphere ≈ 0.77 in virial units.
  std::vector<double> radii;
  for (const auto& b : bodies) radii.push_back(b.pos.norm());
  std::nth_element(radii.begin(), radii.begin() + 1000, radii.end());
  EXPECT_NEAR(radii[1000], 0.77, 0.15);
}

TEST(Plummer, DeterministicPerSeed) {
  const auto a = plummerModel(100, 3);
  const auto b = plummerModel(100, 3);
  const auto c = plummerModel(100, 4);
  EXPECT_EQ(a[50].pos, b[50].pos);
  EXPECT_NE(a[50].pos, c[50].pos);
}

TEST(BoundingCube, ContainsAllBodies) {
  const auto bodies = plummerModel(500, 1);
  const Cube c = boundingCube(bodies);
  for (const auto& b : bodies) {
    EXPECT_LE(std::abs(b.pos.x - c.center.x), c.halfSize);
    EXPECT_LE(std::abs(b.pos.y - c.center.y), c.halfSize);
    EXPECT_LE(std::abs(b.pos.z - c.center.z), c.halfSize);
  }
}

TEST(ReferenceSimulator, TreeMassEqualsTotalMass) {
  ReferenceSimulator sim(plummerModel(1000, 2), SimParams{});
  sim.step();
  EXPECT_GT(sim.numCells(), 100);
  EXPECT_GT(sim.maxDepth(), 3);
  // Work accounting: total work is the sum of per-body interaction
  // counts, each at least 1.
  EXPECT_GE(sim.totalWork(), 1000.0);
}

TEST(ReferenceSimulator, ForcesApproximateDirectSummation) {
  SimParams prm;
  prm.theta = 0.5;  // tighter opening → better accuracy
  ReferenceSimulator sim(plummerModel(800, 5), prm);
  sim.step();
  const auto direct = sim.directAccelerations();
  const auto& tree = sim.lastAccelerations();
  double relErrSum = 0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const double d = direct[i].norm();
    if (d < 1e-9) continue;
    relErrSum += (tree[i] - direct[i]).norm() / d;
  }
  const double meanRelErr = relErrSum / static_cast<double>(direct.size());
  EXPECT_LT(meanRelErr, 0.08) << "monopole Barnes-Hut at θ=0.5 stays below ~8%";
}

TEST(ReferenceSimulator, TighterThetaIsMoreAccurate) {
  auto meanErr = [](double theta) {
    SimParams prm;
    prm.theta = theta;
    ReferenceSimulator sim(plummerModel(500, 5), prm);
    sim.step();
    const auto direct = sim.directAccelerations();
    const auto& tree = sim.lastAccelerations();
    double s = 0;
    for (std::size_t i = 0; i < direct.size(); ++i)
      s += (tree[i] - direct[i]).norm() / std::max(direct[i].norm(), 1e-9);
    return s / static_cast<double>(direct.size());
  };
  EXPECT_LT(meanErr(0.3), meanErr(0.9));
}

TEST(ReferenceSimulator, LooserThetaIsLessAccurateButFaster) {
  // totalWork() lags one step (costzones uses the previous step's
  // interaction counts), so run two steps before comparing.
  auto run = [](double theta) {
    SimParams prm;
    prm.theta = theta;
    ReferenceSimulator sim(plummerModel(600, 9), prm);
    sim.step();
    sim.step();
    return sim.totalWork();
  };
  EXPECT_GT(run(0.3), run(1.0)) << "tighter θ must do more interactions";
}

TEST(ReferenceSimulator, EnergyDriftIsSmall) {
  // Leapfrog on a softened Plummer sphere: total energy should drift
  // only slightly over a few steps.
  SimParams prm;
  prm.theta = 0.7;
  auto bodies = plummerModel(400, 11);
  ReferenceSimulator sim(bodies, prm);
  auto energy = [&](const std::vector<BodyData>& bs) {
    double kin = 0, pot = 0;
    for (const auto& b : bs) kin += 0.5 * b.mass * b.vel.norm2();
    for (std::size_t i = 0; i < bs.size(); ++i)
      for (std::size_t j = i + 1; j < bs.size(); ++j) {
        const double d = std::sqrt((bs[i].pos - bs[j].pos).norm2() +
                                   prm.eps * prm.eps);
        pot -= bs[i].mass * bs[j].mass / d;
      }
    return kin + pot;
  };
  const double e0 = energy(sim.bodies());
  for (int s = 0; s < 5; ++s) sim.step();
  const double e1 = energy(sim.bodies());
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 0.05);
}

// ---------------------------------------------------------------------------
// Distributed vs reference
// ---------------------------------------------------------------------------

struct Case {
  RuntimeConfig rc;
  const char* label;
};

class DistributedBarnesHut : public ::testing::TestWithParam<Case> {};

TEST_P(DistributedBarnesHut, BitExactAgainstReference) {
  Config cfg;
  cfg.numBodies = 600;
  cfg.steps = 3;
  cfg.warmupSteps = 1;
  cfg.seed = 13;

  Machine m(4, 4);
  Runtime rt(m, GetParam().rc);
  const Result r = run(m, rt, cfg);
  rt.checkAllInvariants();

  ReferenceSimulator ref(plummerModel(cfg.numBodies, cfg.seed), cfg.params);
  for (int s = 0; s < cfg.steps; ++s) ref.step();

  ASSERT_EQ(r.finalBodies.size(), ref.bodies().size());
  for (std::size_t i = 0; i < ref.bodies().size(); ++i) {
    EXPECT_EQ(r.finalBodies[i].pos, ref.bodies()[i].pos) << "body " << i;
    EXPECT_EQ(r.finalBodies[i].vel, ref.bodies()[i].vel) << "body " << i;
    EXPECT_EQ(r.finalBodies[i].work, ref.bodies()[i].work) << "body " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, DistributedBarnesHut,
    ::testing::Values(Case{RuntimeConfig::accessTree(4, 1), "at4"},
                      Case{RuntimeConfig::accessTree(2, 1), "at2"},
                      Case{RuntimeConfig::accessTree(16, 1), "at16"},
                      Case{RuntimeConfig::accessTree(4, 16), "at4_16"},
                      Case{RuntimeConfig::fixedHome(), "fh"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(DistributedBarnesHutStats, HighCacheHitRateAndPhaseAccounting) {
  Config cfg;
  cfg.numBodies = 800;
  cfg.steps = 3;
  cfg.warmupSteps = 1;

  Machine m(4, 4);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1));
  const Result r = run(m, rt, cfg);

  // Paper: "cache hit ratios of about 99%" in the force phase.
  EXPECT_GT(static_cast<double>(r.readHits) / static_cast<double>(r.reads), 0.90);
  // The force phase dominates.
  double wallSum = 0;
  for (int ph = 0; ph < kNumPhases; ++ph) wallSum += r.phaseWallUs[ph];
  EXPECT_GT(r.phaseWallUs[kForce], 0.3 * wallSum);
  EXPECT_GT(r.phaseComputeUs[kForce], 0.0);
  EXPECT_GT(r.cellsCreated, 0u);
}

TEST(DistributedBarnesHutStats, AccessTreeBeatsFixedHomeOnCongestion) {
  Config cfg;
  cfg.numBodies = 600;
  cfg.steps = 2;
  cfg.warmupSteps = 0;

  Machine ma(4, 4);
  Runtime rta(ma, RuntimeConfig::accessTree(4, 1));
  const auto at = run(ma, rta, cfg);

  Machine mf(4, 4);
  Runtime rtf(mf, RuntimeConfig::fixedHome());
  const auto fh = run(mf, rtf, cfg);

  EXPECT_LT(at.congestionMessages, fh.congestionMessages);
  // At 4×4 the paper's own numbers put the two strategies nearly level on
  // time (Figure 4 analogue: 2.77 vs 2.79); the separation grows with the
  // network. Here we only require the access tree not to lose noticeably;
  // the benches demonstrate the large-mesh win.
  EXPECT_LT(at.timeUs, fh.timeUs * 1.15);
}

}  // namespace
}  // namespace diva::apps::barneshut
