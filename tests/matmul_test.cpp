// Matrix multiplication application tests: numerical correctness against
// a serial reference for every strategy, plus the paper's structural
// claims about congestion (hand-optimized optimality, access tree vs
// fixed home ordering).

#include <gtest/gtest.h>

#include "apps/matmul/matmul.hpp"

namespace diva::apps::matmul {
namespace {

struct Case {
  RuntimeConfig rc;
  const char* label;
};

class MatmulCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(MatmulCorrectness, MatchesSerialSquare) {
  for (int meshSide : {2, 4}) {
    for (int blockInts : {16, 64}) {
      Machine m(meshSide, meshSide);
      Runtime rt(m, GetParam().rc);
      Config cfg;
      cfg.blockInts = blockInts;
      cfg.realCompute = true;
      const Result r = runDiva(m, rt, cfg);
      const int n = matrixSide(meshSide, blockInts);
      const auto expect = serialSquare(inputMatrix(meshSide, cfg), n);
      ASSERT_EQ(r.matrix, expect) << "mesh " << meshSide << " block " << blockInts;
      rt.checkAllInvariants();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, MatmulCorrectness,
    ::testing::Values(Case{RuntimeConfig::accessTree(2, 1), "at2"},
                      Case{RuntimeConfig::accessTree(4, 1), "at4"},
                      Case{RuntimeConfig::accessTree(16, 1), "at16"},
                      Case{RuntimeConfig::accessTree(2, 4), "at2_4"},
                      Case{RuntimeConfig::accessTree(4, 16), "at4_16"},
                      Case{RuntimeConfig::fixedHome(), "fh"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(MatmulHandOptimized, MatchesSerialSquare) {
  for (int meshSide : {2, 4}) {
    Machine m(meshSide, meshSide);
    Config cfg;
    cfg.blockInts = 16;
    cfg.realCompute = true;
    const Result r = runHandOptimized(m, cfg);
    const int n = matrixSide(meshSide, cfg.blockInts);
    EXPECT_EQ(r.matrix, serialSquare(inputMatrix(meshSide, cfg), n));
  }
}

TEST(MatmulHandOptimized, CongestionIsMinimal) {
  // Paper: the hand-optimized strategy's congestion is m·√P entries (the
  // most loaded link carries √P blocks, one per row/column origin).
  Machine m(8, 8);
  Config cfg;
  cfg.blockInts = 256;
  const Result r = runHandOptimized(m, cfg);
  const std::uint64_t blockBytes = 256 * 4 + 32;  // payload + header
  // Row relays: the link into column c from the west carries c blocks;
  // max over a row is (√P-1) blocks each way.
  EXPECT_EQ(r.congestionBytes, 7 * blockBytes);
}

TEST(MatmulStrategies, CongestionOrderingMatchesPaper) {
  // At 8×8 with the paper's Figure 4 parameters (4096-entry blocks,
  // communication time only) the ordering must show: handopt < access
  // tree < fixed home, on both congestion and time.
  Config cfg;
  cfg.blockInts = 4096;
  const auto cm = net::CostModel::gcel().withoutCompute();

  Machine mh(8, 8, cm);
  const auto ho = runHandOptimized(mh, cfg);

  Machine ma(8, 8, cm);
  Runtime rta(ma, RuntimeConfig::accessTree(4, 1));
  const auto at = runDiva(ma, rta, cfg);

  Machine mf(8, 8, cm);
  Runtime rtf(mf, RuntimeConfig::fixedHome());
  const auto fh = runDiva(mf, rtf, cfg);

  EXPECT_LT(ho.congestionBytes, at.congestionBytes);
  EXPECT_LT(at.congestionBytes, fh.congestionBytes);
  EXPECT_LT(ho.timeUs, at.timeUs);
  EXPECT_LT(at.timeUs, fh.timeUs);
  // Congestion ratio shapes (paper: ≈5.5 for AT, ≈12 for FH at 8×8; we
  // accept generous brackets — the point is the separation).
  const double atRatio = static_cast<double>(at.congestionBytes) / ho.congestionBytes;
  const double fhRatio = static_cast<double>(fh.congestionBytes) / ho.congestionBytes;
  EXPECT_GT(atRatio, 2.0);
  EXPECT_LT(atRatio, 8.0);
  EXPECT_GT(fhRatio, 7.0);
}

TEST(MatmulStrategies, CommunicationTimeModeRemovesCompute) {
  Config cfg;
  cfg.blockInts = 256;
  Machine full(4, 4);
  Runtime rtFull(full, RuntimeConfig::accessTree(4, 1));
  const auto withCompute = runDiva(full, rtFull, cfg);

  Machine comm(4, 4, net::CostModel::gcel().withoutCompute());
  Runtime rtComm(comm, RuntimeConfig::accessTree(4, 1));
  const auto commOnly = runDiva(comm, rtComm, cfg);

  EXPECT_LT(commOnly.timeUs, withCompute.timeUs);
  // Congestion depends (mildly) on the access interleaving that the time
  // model produces — a genuine property of dynamic caching — but the
  // totals must stay in the same ballpark.
  const double ratio = static_cast<double>(commOnly.congestionBytes) /
                       static_cast<double>(withCompute.congestionBytes);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(MatmulStrategies, WritePhaseSendsOnlyControlTraffic) {
  // The read phase moves ~2√P blocks per processor; the write phase only
  // invalidations. Total traffic must therefore be dominated by payload
  // bytes ~ #blockTransfers × blockBytes.
  Machine m(4, 4);
  Runtime rt(m, RuntimeConfig::accessTree(4, 1));
  Config cfg;
  cfg.blockInts = 1024;
  const auto r = runDiva(m, rt, cfg);
  EXPECT_GT(r.totalBytes, 16u * 8u * 4096u) << "read phase block traffic missing";
  rt.checkAllInvariants();
}

}  // namespace
}  // namespace diva::apps::matmul
