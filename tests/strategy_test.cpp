// Protocol correctness tests for both data management strategies:
// coherence, copy placement, invalidation completeness, and the access
// tree's structural invariants, driven by deterministic and randomized
// (but race-free) operation sequences.

#include <gtest/gtest.h>

#include <vector>

#include "diva/fixed_home_strategy.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "support/rng.hpp"

namespace diva {
namespace {

using sim::Task;

/// Run one read on `p` to completion and return the raw value.
Value readVar(Machine& m, Runtime& rt, NodeId p, VarId x) {
  Value out;
  sim::spawn([](Runtime& r, NodeId n, VarId v, Value& o) -> Task<> {
    o = co_await r.read(n, v);
  }(rt, p, x, out));
  m.engine.run();
  return out;
}

/// Run one read on `p` to completion and return the observed int64.
std::int64_t readInt(Machine& m, Runtime& rt, NodeId p, VarId x) {
  return valueAs<std::int64_t>(readVar(m, rt, p, x));
}

void writeInt(Machine& m, Runtime& rt, NodeId p, VarId x, std::int64_t v) {
  sim::spawn([](Runtime& r, NodeId n, VarId var, std::int64_t val) -> Task<> {
    co_await r.write(n, var, makeValue(val));
  }(rt, p, x, v));
  m.engine.run();
}

struct StratCase {
  RuntimeConfig config;
  const char* label;
};

std::vector<StratCase> allStrategies() {
  return {
      {RuntimeConfig::accessTree(2, 1), "at2"},
      {RuntimeConfig::accessTree(4, 1), "at4"},
      {RuntimeConfig::accessTree(16, 1), "at16"},
      {RuntimeConfig::accessTree(2, 4), "at2_4"},
      {RuntimeConfig::accessTree(4, 16), "at4_16"},
      {RuntimeConfig::fixedHome(), "fh"},
  };
}

class StrategyTest : public ::testing::TestWithParam<StratCase> {};

TEST_P(StrategyTest, ReadReturnsInitialValue) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(5, makeValue<std::int64_t>(1234));
  EXPECT_EQ(readInt(m, rt, 10, x), 1234);
  rt.checkAllInvariants();
}

TEST_P(StrategyTest, OwnerReadIsLocalAndFree) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(3, makeValue<std::int64_t>(7));
  EXPECT_EQ(readInt(m, rt, 3, x), 7);
  EXPECT_EQ(m.stats.links.totalMessages(), 0u) << "owner read must not use the network";
  EXPECT_EQ(m.stats.ops.readHits, 1u);
}

TEST_P(StrategyTest, WriteThenReadEverywhereSeesNewValue) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(0, makeValue<std::int64_t>(1));
  // Spread copies across several readers.
  for (NodeId p : {5, 10, 15, 12}) EXPECT_EQ(readInt(m, rt, p, x), 1);
  rt.checkAllInvariants();
  // Writer updates (after reading, as in all paper applications).
  EXPECT_EQ(readInt(m, rt, 7, x), 1);
  writeInt(m, rt, 7, x, 2);
  rt.checkAllInvariants();
  for (NodeId p = 0; p < m.numProcs(); ++p)
    EXPECT_EQ(readInt(m, rt, p, x), 2) << "stale copy at processor " << p;
  rt.checkAllInvariants();
}

TEST_P(StrategyTest, WriteInvalidatesAllCopies) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(0, makeValue<std::int64_t>(10));
  for (NodeId p = 0; p < 16; ++p) readInt(m, rt, p, x);
  const std::uint64_t invalBefore = m.stats.ops.invalidations;
  writeInt(m, rt, 0, x, 11);
  EXPECT_GT(m.stats.ops.invalidations, invalBefore);
  rt.checkAllInvariants();
  // After invalidation only the write path holds copies; count caches.
  int holders = 0;
  for (NodeId p = 0; p < 16; ++p)
    if (rt.cacheOf(p).peek(x)) ++holders;
  EXPECT_LT(holders, 16);
  EXPECT_EQ(valueAs<std::int64_t>(rt.peek(x)), 11);
}

TEST_P(StrategyTest, RepeatedReadsHitTheCache) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(0, makeValue<std::int64_t>(3));
  readInt(m, rt, 9, x);
  const auto msgsAfterFirst = m.net.messagesSent();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(readInt(m, rt, 9, x), 3);
  EXPECT_EQ(m.net.messagesSent(), msgsAfterFirst) << "repeat reads must be local";
  EXPECT_EQ(m.stats.ops.readHits, 5u);
}

TEST_P(StrategyTest, WriteAfterReadIsLocalDataMovement) {
  // Read-before-write (the paper's pattern): the write moves no payload,
  // only control traffic (invalidations).
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(0, makeRawValue(4096));
  readVar(m, rt, 9, x);
  const std::uint64_t bytesAfterRead = m.stats.links.totalBytes();
  sim::spawn([](Runtime& r, NodeId n, VarId var) -> Task<> {
    co_await r.write(n, var, makeRawValue(4096));
  }(rt, 9, x));
  m.engine.run();
  const std::uint64_t writeBytes = m.stats.links.totalBytes() - bytesAfterRead;
  // Control messages only: far less than one payload worth of traffic.
  EXPECT_LT(writeBytes, 2048u) << "write after read should not move the payload";
  rt.checkAllInvariants();
}

TEST_P(StrategyTest, RandomRaceFreeOpSequencePreservesInvariants) {
  // Property test: arbitrary sequential reads/writes from random nodes
  // must keep every structural invariant and always observe the last
  // written value.
  const auto& param = GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Machine m(4, 8);
    RuntimeConfig cfg = param.config;
    cfg.seed = seed;
    Runtime rt(m, cfg);
    support::SplitMix64 rng(seed * 977);

    constexpr int kVars = 5;
    std::vector<VarId> vars;
    std::vector<std::int64_t> expect(kVars);
    for (int i = 0; i < kVars; ++i) {
      expect[i] = i;
      vars.push_back(rt.createVarFree(
          static_cast<NodeId>(rng.below(32)), makeValue<std::int64_t>(expect[i])));
    }
    for (int op = 0; op < 120; ++op) {
      const int v = static_cast<int>(rng.below(kVars));
      const NodeId p = static_cast<NodeId>(rng.below(32));
      if (rng.below(3) == 0) {
        // Paper pattern: read before write.
        EXPECT_EQ(readInt(m, rt, p, vars[v]), expect[v]);
        expect[v] = op * 1000 + v;
        writeInt(m, rt, p, vars[v], expect[v]);
      } else {
        EXPECT_EQ(readInt(m, rt, p, vars[v]), expect[v])
            << "wrong value for var " << v << " at op " << op << " seed " << seed;
      }
      rt.checkAllInvariants();
    }
  }
}

TEST_P(StrategyTest, ConcurrentReadersAllSucceed) {
  // All 16 processors read the same variable simultaneously — the
  // paper's root-cell hotspot. Everyone must see the value and the
  // system must quiesce with valid invariants.
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(6, makeValue<std::int64_t>(777));
  std::vector<std::int64_t> got(16, -1);
  for (NodeId p = 0; p < 16; ++p) {
    sim::spawn([](Runtime& r, NodeId n, VarId v, std::int64_t& o) -> Task<> {
      o = valueAs<std::int64_t>(co_await r.read(n, v));
    }(rt, p, x, got[p]));
  }
  m.engine.run();
  for (NodeId p = 0; p < 16; ++p) EXPECT_EQ(got[p], 777);
  rt.checkAllInvariants();
}

TEST_P(StrategyTest, MeasuredVariableCreationWorks) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  VarId x = kInvalidVar;
  sim::spawn([](Runtime& r, VarId& out) -> Task<> {
    out = co_await r.createVar(9, makeValue<std::int64_t>(55));
  }(rt, x));
  m.engine.run();
  ASSERT_NE(x, kInvalidVar);
  rt.checkAllInvariants();
  EXPECT_EQ(readInt(m, rt, 2, x), 55);
  rt.checkAllInvariants();
}

TEST_P(StrategyTest, DestroyVarReleasesState) {
  Machine m(4, 4);
  Runtime rt(m, GetParam().config);
  const VarId x = rt.createVarFree(0, makeRawValue(128));
  for (NodeId p = 0; p < 16; ++p) readVar(m, rt, p, x);
  rt.destroyVarFree(x);
  for (NodeId p = 0; p < 16; ++p)
    EXPECT_EQ(rt.cacheOf(p).peek(x), nullptr) << "stale cache entry at " << p;
  EXPECT_EQ(rt.numLiveVars(), 0u);
}

TEST_P(StrategyTest, DeterministicAcrossRuns) {
  auto runOnce = [&](std::uint64_t seed) {
    Machine m(4, 4);
    RuntimeConfig cfg = GetParam().config;
    cfg.seed = seed;
    Runtime rt(m, cfg);
    const VarId x = rt.createVarFree(0, makeValue<std::int64_t>(1));
    for (NodeId p = 0; p < 16; ++p) readInt(m, rt, p, x);
    writeInt(m, rt, 0, x, 2);
    return std::tuple{m.engine.now(), m.stats.links.totalBytes(),
                      m.stats.links.congestionBytes(), m.net.messagesSent()};
  };
  EXPECT_EQ(runOnce(7), runOnce(7));
  // Different seeds relocate homes/embeddings: at least one of several
  // seeds must produce a different traffic pattern.
  const auto base = runOnce(7);
  bool anyDiffers = false;
  for (std::uint64_t s : {8ull, 9ull, 10ull, 11ull})
    anyDiffers = anyDiffers || runOnce(s) != base;
  EXPECT_TRUE(anyDiffers);
}

INSTANTIATE_TEST_SUITE_P(All, StrategyTest, ::testing::ValuesIn(allStrategies()),
                         [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Access-tree-specific behaviour
// ---------------------------------------------------------------------------

TEST(AccessTree, ReadDepositsCopiesAlongTheTreePath) {
  // After a read, the reader's whole root path region can serve later
  // readers: a second reader in the same submesh must generate strictly
  // less traffic than the first.
  Machine m(8, 8);
  Runtime rt(m, RuntimeConfig::accessTree(2, 1));
  const VarId x = rt.createVarFree(m.mesh().nodeAt(7, 7), makeRawValue(4096));
  readVar(m, rt, m.mesh().nodeAt(0, 0), x);
  const auto afterFirst = m.stats.links.totalBytes();
  readVar(m, rt, m.mesh().nodeAt(0, 1), x);  // same small submesh
  const auto second = m.stats.links.totalBytes() - afterFirst;
  EXPECT_LT(second, afterFirst / 2) << "nearby reader should be served locally";
  rt.checkAllInvariants();
}

TEST(AccessTree, FlatterTreesUseFewerMessagesButMoreTraffic) {
  // The startup/congestion trade-off that motivates the ℓ-k-ary
  // variants: 16-ary trees send fewer messages (fewer intermediate
  // stops) than 2-ary trees for the same access pattern.
  auto traffic = [](int arity) {
    Machine m(8, 8);
    Runtime rt(m, RuntimeConfig::accessTree(arity, 1));
    const VarId x = rt.createVarFree(0, makeRawValue(4096));
    for (NodeId p = 0; p < 64; ++p) readVar(m, rt, p, x);
    return std::pair{m.net.messagesSent(), m.stats.links.totalBytes()};
  };
  const auto t2 = traffic(2);
  const auto t16 = traffic(16);
  EXPECT_GT(t2.first, t16.first) << "2-ary should need more startups";
}

TEST(AccessTree, EmbeddingKindChangesHostsNotSemantics) {
  for (auto kind : {mesh::EmbeddingKind::Regular, mesh::EmbeddingKind::Random}) {
    Machine m(4, 4);
    RuntimeConfig cfg = RuntimeConfig::accessTree(4, 1);
    cfg.embedding = kind;
    Runtime rt(m, cfg);
    const VarId x = rt.createVarFree(0, makeValue<std::int64_t>(5));
    EXPECT_EQ(readInt(m, rt, 15, x), 5);
    writeInt(m, rt, 15, x, 6);
    EXPECT_EQ(readInt(m, rt, 3, x), 6);
    rt.checkAllInvariants();
  }
}

// ---------------------------------------------------------------------------
// Fixed-home-specific behaviour
// ---------------------------------------------------------------------------

TEST(FixedHome, HomeSerializesAllRequests) {
  // Every miss goes through the home: P readers of one variable push all
  // traffic through one processor — the bottleneck the paper measures in
  // the Barnes-Hut tree-building phase.
  Machine m(8, 8);
  Runtime rt(m, RuntimeConfig::fixedHome());
  auto* fh = dynamic_cast<FixedHomeStrategy*>(&rt.strategy());
  ASSERT_NE(fh, nullptr);
  const VarId x = rt.createVarFree(0, makeRawValue(1024));
  for (NodeId p = 0; p < 64; ++p) readVar(m, rt, p, x);
  rt.checkAllInvariants();
  // The home must appear on almost every data path: its outgoing links
  // carry far more than the average link.
  const NodeId home = fh->homeOf(x);
  std::uint64_t homeOut = 0;
  for (int d = 0; d < mesh::Mesh::kDirs; ++d)
    homeOut += m.stats.links.linkBytes(m.mesh().linkIndex(home, static_cast<mesh::Mesh::Dir>(d)));
  EXPECT_GT(homeOut, m.stats.links.totalBytes() / 16);
}

TEST(FixedHome, OwnershipMovesToWriterThenBackOnRead) {
  Machine m(4, 4);
  Runtime rt(m, RuntimeConfig::fixedHome());
  const VarId x = rt.createVarFree(1, makeValue<std::int64_t>(1));
  // Processor 2 reads then writes: becomes owner; subsequent writes are
  // free (no messages).
  readInt(m, rt, 2, x);
  writeInt(m, rt, 2, x, 2);
  const auto msgs = m.net.messagesSent();
  writeInt(m, rt, 2, x, 3);
  writeInt(m, rt, 2, x, 4);
  EXPECT_EQ(m.net.messagesSent(), msgs) << "owner writes must be local";
  // A read by someone else moves ownership back to the home.
  EXPECT_EQ(readInt(m, rt, 9, x), 4);
  writeInt(m, rt, 2, x, 5);  // no longer owner: needs the home again
  EXPECT_GT(m.net.messagesSent(), msgs);
  rt.checkAllInvariants();
  EXPECT_EQ(readInt(m, rt, 9, x), 5);
}

}  // namespace
}  // namespace diva
