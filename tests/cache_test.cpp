// Tests for the per-processor memory module (LRU bookkeeping) and for
// strategy-driven replacement under bounded capacity.

#include <gtest/gtest.h>

#include "diva/cache.hpp"
#include "diva/machine.hpp"
#include "diva/runtime.hpp"

namespace diva {
namespace {

using sim::Task;

TEST(NodeCache, PutTouchErase) {
  NodeCache c(1000);
  c.put(1, makeRawValue(100));
  c.put(2, makeRawValue(200));
  EXPECT_EQ(c.usedBytes(), 300u);
  EXPECT_NE(c.peek(1), nullptr);
  EXPECT_EQ(c.peek(3), nullptr);
  c.erase(1);
  EXPECT_EQ(c.usedBytes(), 200u);
  EXPECT_EQ(c.peek(1), nullptr);
  EXPECT_EQ(c.numEntries(), 1u);
}

TEST(NodeCache, UpdateReplacesBytes) {
  NodeCache c(1000);
  c.put(1, makeRawValue(100));
  c.put(1, makeRawValue(400));
  EXPECT_EQ(c.usedBytes(), 400u);
  EXPECT_EQ(c.numEntries(), 1u);
}

TEST(NodeCache, LruOrderFollowsTouches) {
  NodeCache c(~0ull);
  c.put(1, makeRawValue(1));
  c.put(2, makeRawValue(1));
  c.put(3, makeRawValue(1));
  c.touch(1);  // order now: 2, 3, 1
  std::vector<VarId> order;
  c.scanLru([&](VarId v, NodeCache::Entry&) {
    order.push_back(v);
    return false;
  });
  EXPECT_EQ(order, (std::vector<VarId>{2, 3, 1}));
}

TEST(NodeCache, OverCapacityDetection) {
  NodeCache c(250);
  c.put(1, makeRawValue(100));
  EXPECT_FALSE(c.overCapacity());
  c.put(2, makeRawValue(200));
  EXPECT_TRUE(c.overCapacity());
}

TEST(NodeCache, ScanStopsWhenHandled) {
  NodeCache c(~0ull);
  for (VarId v = 1; v <= 5; ++v) c.put(v, makeRawValue(1));
  int visited = 0;
  const bool handled = c.scanLru([&](VarId v, NodeCache::Entry&) {
    ++visited;
    return v == 3;
  });
  EXPECT_TRUE(handled);
  EXPECT_EQ(visited, 3);
}

// ---------------------------------------------------------------------------
// Bounded-memory replacement through the strategies
// ---------------------------------------------------------------------------

Value readOnce(Machine& m, Runtime& rt, NodeId p, VarId x) {
  Value out;
  sim::spawn([](Runtime& r, NodeId n, VarId v, Value& o) -> Task<> {
    o = co_await r.read(n, v);
  }(rt, p, x, out));
  m.engine.run();
  return out;
}

class ReplacementTest : public ::testing::TestWithParam<RuntimeConfig> {};

TEST_P(ReplacementTest, EvictionKeepsSystemCorrect) {
  // A reader with a tiny memory module streams through many variables:
  // replacement must kick in, and every later re-read must still return
  // the right data with valid invariants.
  Machine m(4, 4);
  RuntimeConfig cfg = GetParam();
  cfg.cacheCapacityBytes = 3 * 1100;  // room for ~3 copies of 1 KB
  Runtime rt(m, cfg);

  std::vector<VarId> vars;
  for (int i = 0; i < 12; ++i) {
    auto buf = std::make_shared<Bytes>(1024);
    (*buf)[0] = static_cast<std::byte>(i);
    vars.push_back(rt.createVarFree(15, Value(buf)));
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 12; ++i) {
      const Value v = readOnce(m, rt, 0, vars[i]);
      ASSERT_TRUE(v);
      EXPECT_EQ((*v)[0], static_cast<std::byte>(i));
    }
  }
  EXPECT_GT(m.stats.ops.evictions, 0u) << "capacity pressure must evict";
  rt.checkAllInvariants();
  // Reader's module must be near its capacity bound, not 12 KB.
  EXPECT_LE(rt.cacheOf(0).usedBytes(), cfg.cacheCapacityBytes + 1100);
}

TEST_P(ReplacementTest, LastCopyIsNeverEvicted) {
  Machine m(4, 4);
  RuntimeConfig cfg = GetParam();
  cfg.cacheCapacityBytes = 512;  // smaller than one variable
  Runtime rt(m, cfg);
  const VarId x = rt.createVarFree(5, makeRawValue(1024));
  // The owner's module is over capacity, but the sole copy must survive.
  EXPECT_NE(rt.cacheOf(5).peek(x), nullptr);
  const Value v = readOnce(m, rt, 5, x);
  EXPECT_TRUE(v);
  rt.checkAllInvariants();
  EXPECT_EQ(rt.peek(x)->size(), 1024u);
}

TEST(Replacement, OwnedCopyIsNeverEvictedUnderPressure) {
  // Fixed home: the owner's entry is the authoritative copy. Stream many
  // foreign variables through the owner's over-committed module — the
  // owned entries must all survive the pressure, and eviction must still
  // reclaim the non-authoritative ones.
  Machine m(4, 4);
  RuntimeConfig cfg = RuntimeConfig::fixedHome();
  cfg.cacheCapacityBytes = 2 * 1100;
  Runtime rt(m, cfg);

  std::vector<VarId> owned;
  for (int i = 0; i < 4; ++i)
    owned.push_back(rt.createVarFree(0, makeRawValue(1024)));
  std::vector<VarId> foreign;
  for (int i = 0; i < 10; ++i)
    foreign.push_back(rt.createVarFree(9, makeRawValue(1024)));
  for (VarId x : foreign) (void)readOnce(m, rt, 0, x);

  for (VarId x : owned) {
    const NodeCache::Entry* e = rt.cacheOf(0).peek(x);
    ASSERT_NE(e, nullptr) << "authoritative copy of " << x << " was evicted";
    EXPECT_TRUE(e->owned);
  }
  EXPECT_GT(m.stats.ops.evictions, 0u) << "foreign copies must have been reclaimed";
  rt.checkAllInvariants();
}

TEST(Replacement, TryEvictRefusesOwnedAndPinnedEntries) {
  Machine m(4, 4);
  Runtime rt(m, RuntimeConfig::fixedHome());  // unlimited cache: no pressure
  const VarId x = rt.createVarFree(5, makeRawValue(64));
  // The creator owns the data: its entry is authoritative and refused.
  EXPECT_FALSE(rt.strategy().tryEvict(5, x)) << "owner entry must be refused";

  // A remote read migrates ownership to the home (the ownership scheme's
  // read rule): the old owner keeps a now-plain copy that IS evictable,
  // while a pinned entry stays refused regardless.
  (void)readOnce(m, rt, 2, x);
  ASSERT_NE(rt.cacheOf(2).peek(x), nullptr);
  rt.cacheOf(2).peek(x)->pinned = true;
  EXPECT_FALSE(rt.strategy().tryEvict(2, x)) << "pinned entry must be refused";
  rt.cacheOf(2).peek(x)->pinned = false;
  EXPECT_TRUE(rt.strategy().tryEvict(5, x)) << "ceded copy is evictable";
  rt.checkAllInvariants();
  EXPECT_EQ(rt.peek(x)->size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ReplacementTest,
                         ::testing::Values(RuntimeConfig::accessTree(4, 1),
                                           RuntimeConfig::accessTree(2, 1),
                                           RuntimeConfig::fixedHome()),
                         [](const auto& info) {
                           return info.param.kind == StrategyKind::FixedHome
                                      ? std::string("fixedHome")
                                      : "accessTree" + std::to_string(info.param.arity);
                         });

}  // namespace
}  // namespace diva
