// Tests for the general-graph topology: table-driven routing validity
// (route follows real links, hop count == distance, weighted routes pick
// the cheaper path), the partition-based ClusterTree on non-uniform
// clusters, the generators, the text file format, and end-to-end strategy
// runs on irregular instances (ring, star, random-regular).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"
#include "net/graph_topology.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"

namespace diva {
namespace {

using net::GraphSpec;
using net::NodeId;
using net::TopologySpec;

std::vector<GraphSpec> irregularInstances() {
  return {net::ringGraph(7),  net::ringGraph(2),          net::starGraph(9),
          net::starGraph(1),  net::randomRegularGraph(16, 3, 7),
          net::fatTreeGraph(2, 4), net::fatTreeGraph(3, 3)};
}

/// Does processor p lie in the cluster of `treeNode`? (Climb from p's leaf.)
bool inCluster(const net::ClusterTree& tree, int treeNode, NodeId p) {
  for (int n = tree.leafOf(p); n >= 0; n = tree.parent(n))
    if (n == treeNode) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(GraphTopologyRouting, RoutesFollowLinksAndMatchDistance) {
  for (const auto& g : irregularInstances()) {
    const auto topo = net::makeTopology(TopologySpec::graph(g));
    const int n = topo->numNodes();
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        const auto hops = net::routeOf(*topo, a, b);
        ASSERT_EQ(static_cast<int>(hops.size()), topo->distance(a, b))
            << g.name << " " << a << "->" << b;
        NodeId cur = a;
        for (const net::Hop& h : hops) {
          const int dir = h.link - topo->linkIndex(cur, 0);
          ASSERT_GE(dir, 0) << g.name;
          ASSERT_LT(dir, topo->degree()) << g.name;
          ASSERT_EQ(topo->linkIndex(cur, dir), h.link);
          ASSERT_EQ(topo->neighbor(cur, dir), h.to)
              << g.name << " " << a << "->" << b << " at node " << cur;
          cur = h.to;
        }
        ASSERT_EQ(cur, b) << g.name;
        ASSERT_EQ(topo->nextHop(a, b), hops.empty() ? a : hops.front().to);
      }
    }
  }
}

TEST(GraphTopologyRouting, UnitWeightRoutesAreShortestPaths) {
  // On unit weights the table-driven route must be a true shortest path:
  // distances obey the triangle inequality through every neighbor, and on
  // the ring they match closed-form ring distance.
  const auto ring = net::makeTopology(TopologySpec::graph(net::ringGraph(11)));
  for (NodeId a = 0; a < 11; ++a) {
    for (NodeId b = 0; b < 11; ++b) {
      const int fwd = (b - a + 11) % 11;
      EXPECT_EQ(ring->distance(a, b), std::min(fwd, 11 - fwd));
      EXPECT_EQ(ring->distance(a, b), ring->distance(b, a));
    }
  }

  const auto star = net::makeTopology(TopologySpec::graph(net::starGraph(8)));
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b)
      EXPECT_EQ(star->distance(a, b), a == b ? 0 : (a == 0 || b == 0) ? 1 : 2);
}

TEST(GraphTopologyRouting, RoutesAreNextHopConsistentAndDeterministic) {
  const GraphSpec g = net::randomRegularGraph(24, 3, 99);
  const net::GraphTopology topo(g);
  const net::GraphTopology again(g);
  for (NodeId a = 0; a < 24; ++a) {
    for (NodeId b = 0; b < 24; ++b) {
      // Following nextHop step by step reproduces appendRoute's hops.
      const auto hops = net::routeOf(topo, a, b);
      NodeId cur = a;
      for (const net::Hop& h : hops) {
        EXPECT_EQ(topo.nextHop(cur, b), h.to);
        // Suffix property: the rest of the route is the route of the rest.
        EXPECT_EQ(topo.distance(h.to, b), topo.distance(cur, b) - 1);
        cur = h.to;
      }
      // Construction is deterministic: a second build routes identically.
      EXPECT_EQ(again.nextHop(a, b), topo.nextHop(a, b));
    }
  }
}

TEST(GraphTopologyRouting, WeightedRoutingPrefersCheaperPath) {
  // Square 0-1-2-3 with a heavy direct edge 0-3: the weighted route
  // 0→3 must detour 0→1... no — 0-1,1-2,2-3 cost 3×1, direct 0-3 costs 5
  // via its weight, so the 3-hop detour wins and distance() reports its
  // hop count.
  GraphSpec g;
  g.name = "weighted-square";
  g.numNodes = 4;
  g.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {0, 3, 5.0}};
  const net::GraphTopology topo(g);

  EXPECT_EQ(topo.distance(0, 3), 3);
  EXPECT_DOUBLE_EQ(topo.weightedDistance(0, 3), 3.0);
  const auto hops = net::routeOf(topo, 0, 3);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].to, 1);
  EXPECT_EQ(hops[1].to, 2);
  EXPECT_EQ(hops[2].to, 3);

  // The heavy edge is still a link (slot weights exposed to the network).
  bool foundHeavy = false;
  for (int dir = 0; dir < topo.degree(); ++dir) {
    if (topo.neighbor(0, dir) == 3) {
      EXPECT_DOUBLE_EQ(topo.linkWeight(topo.linkIndex(0, dir)), 5.0);
      foundHeavy = true;
    }
  }
  EXPECT_TRUE(foundHeavy);

  // Equal-weight ties break toward fewer hops, then lower node id.
  GraphSpec tie;
  tie.name = "tie-diamond";
  tie.numNodes = 4;
  tie.edges = {{0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0}};
  const net::GraphTopology diamond(tie);
  EXPECT_EQ(diamond.nextHop(0, 3), 1);  // both 2-hop paths weigh 2; id 1 < 2
}

TEST(GraphTopologyRouting, FatTreeWeightsDecreaseTowardRoot) {
  const GraphSpec g = net::fatTreeGraph(2, 3);  // 7 nodes: 1 + 2 + 4
  const net::GraphTopology topo(g);
  ASSERT_EQ(topo.numNodes(), 7);
  // Root links (0-1, 0-2) weigh 0.5; leaf links weigh 1.0.
  for (int dir = 0; dir < topo.degree(); ++dir) {
    if (topo.neighbor(0, dir) >= 0) {
      EXPECT_DOUBLE_EQ(topo.linkWeight(topo.linkIndex(0, dir)), 0.5);
    }
    if (topo.neighbor(3, dir) >= 0) {
      EXPECT_DOUBLE_EQ(topo.linkWeight(topo.linkIndex(3, dir)), 1.0);
    }
  }
  // Leaf-to-leaf routes go through the tree (unique paths).
  EXPECT_EQ(topo.distance(3, 6), 4);
  EXPECT_DOUBLE_EQ(topo.weightedDistance(3, 6), 1.0 + 0.5 + 0.5 + 1.0);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(GraphTopologyValidation, RejectsMalformedGraphs) {
  auto make = [](GraphSpec g) { (void)net::GraphTopology(std::move(g)); };
  GraphSpec g;
  g.numNodes = 3;

  g.edges = {{0, 3, 1.0}};  // node out of range
  EXPECT_THROW(make(g), support::CheckError);
  g.edges = {{1, 1, 1.0}};  // self-loop
  EXPECT_THROW(make(g), support::CheckError);
  g.edges = {{0, 1, 1.0}, {1, 0, 2.0}};  // duplicate edge
  EXPECT_THROW(make(g), support::CheckError);
  g.edges = {{0, 1, 0.0}, {1, 2, 1.0}};  // non-positive weight
  EXPECT_THROW(make(g), support::CheckError);
  g.edges = {{0, 1, 1.0}};  // node 2 unreachable
  EXPECT_THROW(make(g), support::CheckError);
  g.edges = {{0, 1, 1.0}, {1, 2, 1.0}};  // valid
  EXPECT_NO_THROW(make(g));

  EXPECT_THROW((void)net::makeTopology(TopologySpec{net::TopologyKind::Graph, 0, 0, nullptr}),
               support::CheckError);
}

TEST(GraphTopologyValidation, SpecEqualityIsStructural) {
  const TopologySpec a = TopologySpec::graph(net::ringGraph(6));
  const TopologySpec b = TopologySpec::graph(net::ringGraph(6));  // distinct object
  const TopologySpec c = TopologySpec::graph(net::ringGraph(7));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == TopologySpec::mesh2d(2, 3));
  EXPECT_TRUE(a.specified());
  EXPECT_EQ(a.describe(), "graph-ring6");

  // Runtime pinning uses this equality: identical regenerated graph is
  // accepted, a different instance fails fast.
  Machine m(a);
  Runtime ok(m, RuntimeConfig::accessTree(4, 1).on(b));
  EXPECT_THROW(Runtime(m, RuntimeConfig::accessTree(4, 1).on(c)), support::CheckError);
  EXPECT_THROW((void)m.mesh(), support::CheckError);  // no grid coordinates
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(GraphGenerators, ShapesAreAsAdvertised) {
  const GraphSpec ring = net::ringGraph(9);
  EXPECT_EQ(ring.numNodes, 9);
  EXPECT_EQ(ring.edges.size(), 9u);

  const GraphSpec star = net::starGraph(12);
  EXPECT_EQ(star.numNodes, 12);
  EXPECT_EQ(star.edges.size(), 11u);
  const net::GraphTopology starTopo(star);
  EXPECT_EQ(starTopo.degree(), 11);  // the hub's degree sets the slot count

  const GraphSpec rr = net::randomRegularGraph(20, 4, 3);
  EXPECT_EQ(rr.numNodes, 20);
  EXPECT_EQ(rr.edges.size(), 40u);  // n*d/2
  std::vector<int> deg(20, 0);
  for (const auto& e : rr.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (int u = 0; u < 20; ++u) EXPECT_EQ(deg[u], 4) << "node " << u;

  // Deterministic per seed, different across seeds (with overwhelming
  // probability for this size).
  EXPECT_EQ(net::randomRegularGraph(20, 4, 3), rr);
  EXPECT_FALSE(net::randomRegularGraph(20, 4, 4) == rr);

  EXPECT_THROW((void)net::randomRegularGraph(5, 3, 1), support::CheckError);  // n*d odd
  EXPECT_THROW((void)net::randomRegularGraph(4, 1, 1), support::CheckError);  // d < 2
  EXPECT_THROW((void)net::ringGraph(0), support::CheckError);
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

TEST(GraphFile, ParsesAndRoundTrips) {
  const std::string text =
      "# a commented example\n"
      "graph demo\n"
      "nodes 4\n"
      "\n"
      "edge 0 1\n"
      "edge 1 2 0.5\n"
      "edge 2 3\n"
      "edge 3 0 2\n";
  const GraphSpec g = net::parseGraph(text);
  EXPECT_EQ(g.name, "demo");
  EXPECT_EQ(g.numNodes, 4);
  ASSERT_EQ(g.edges.size(), 4u);
  EXPECT_DOUBLE_EQ(g.edges[1].weight, 0.5);
  EXPECT_DOUBLE_EQ(g.edges[0].weight, 1.0);

  // Round trip through the serializer, and through a file on disk.
  EXPECT_EQ(net::parseGraph(net::formatGraph(g)), g);
  const std::string path = ::testing::TempDir() + "graph_topology_test.graph";
  {
    std::ofstream out(path);
    out << net::formatGraph(g);
  }
  EXPECT_EQ(net::loadGraphFile(path), g);

  // A parsed graph drives a real machine.
  Machine m(TopologySpec::graph(g));
  EXPECT_EQ(m.numProcs(), 4);

  EXPECT_THROW((void)net::parseGraph("edge 0 1\n"), support::CheckError);  // edge first
  EXPECT_THROW((void)net::parseGraph("nodes\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("nodes 2\nnodes 2\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("nodes 2\nlink 0 1\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("nodes 2\nedge 0 1 fast\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("nodes 2\nedge 0 1 0.5x\n"), support::CheckError);
  // Stray columns after weight+latency are errors, not silently dropped.
  EXPECT_THROW((void)net::parseGraph("nodes 2\nedge 0 1 0.5 2 9\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("nodes 2 3\nedge 0 1\n"), support::CheckError);
  EXPECT_THROW((void)net::parseGraph("graph lonely\n"), support::CheckError);
  EXPECT_THROW((void)net::loadGraphFile("/nonexistent/graph.txt"), support::CheckError);
}

TEST(GraphFile, StructuralErrorsCarryLineNumbers) {
  // Self-loops, duplicate and out-of-range edges are rejected at parse
  // time naming the offending line — not later by GraphTopology with no
  // file context. Round-trip of a valid graph is unaffected.
  auto expectThrowContaining = [](const std::string& text, const std::string& needle) {
    try {
      (void)net::parseGraph(text);
      FAIL() << "expected CheckError for: " << text;
    } catch (const support::CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  expectThrowContaining("nodes 3\nedge 1 1\n", "line 2: self-loop at node 1");
  expectThrowContaining("nodes 3\nedge 0 1\nedge 1 0\n", "line 3: duplicate edge 1-0");
  expectThrowContaining("nodes 3\nedge 0 1\n\nedge 0 1 2.0\n",
                        "line 4: duplicate edge 0-1");
  expectThrowContaining("nodes 3\nedge 0 3\n", "line 2: edge 0-3 out of range");
  const GraphSpec g = net::parseGraph("nodes 3\nedge 0 1\nedge 1 2\nedge 2 0\n");
  EXPECT_EQ(net::parseGraph(net::formatGraph(g)), g);
}

TEST(GraphFile, LoadErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "bad_selfloop.graph";
  {
    std::ofstream out(path);
    out << "nodes 2\nedge 1 1\n";
  }
  try {
    (void)net::loadGraphFile(path);
    FAIL() << "expected CheckError";
  } catch (const support::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Decomposition on non-uniform partitions
// ---------------------------------------------------------------------------

TEST(GraphDecomposition, TreesPartitionEmbedAndStayBalanced) {
  for (const auto& g : irregularInstances()) {
    const net::GraphTopology topo(g);
    const int procs = topo.numNodes();
    for (const auto& params :
         {net::DecompParams{2, 1}, net::DecompParams{4, 1}, net::DecompParams{16, 1},
          net::DecompParams{2, 4}, net::DecompParams{4, 3}}) {
      const auto tree = topo.decompose(params);

      // Every processor sits in exactly one leaf cluster, and the leaf
      // tables are mutually inverse permutations.
      ASSERT_EQ(tree->numProcs(), procs);
      std::set<NodeId> leafProcs;
      for (int i = 0; i < tree->numNodes(); ++i) {
        if (!tree->node(i).isLeaf()) continue;
        EXPECT_TRUE(leafProcs.insert(tree->procOfLeaf(i)).second)
            << g.name << ": processor in two leaves";
      }
      EXPECT_EQ(static_cast<int>(leafProcs.size()), procs) << g.name;
      for (NodeId p = 0; p < procs; ++p) {
        EXPECT_EQ(tree->procOfLeaf(tree->leafOf(p)), p);
        EXPECT_EQ(tree->procOfRank(tree->rankOf(p)), p);
      }

      // Structure: children sizes sum to the parent's (clusters need not
      // be uniform — that's the point of the graph tree), depths step by
      // one, indexInParent matches.
      for (int i = 0; i < tree->numNodes(); ++i) {
        const auto& nd = tree->node(i);
        if (nd.isLeaf()) {
          EXPECT_EQ(nd.size, 1);
          continue;
        }
        int sum = 0;
        for (std::size_t c = 0; c < nd.children.size(); ++c) {
          const auto& cd = tree->node(nd.children[c]);
          EXPECT_EQ(cd.parent, i);
          EXPECT_EQ(cd.indexInParent, static_cast<int>(c));
          EXPECT_EQ(cd.depth, nd.depth + 1);
          sum += cd.size;
        }
        EXPECT_EQ(sum, nd.size) << g.name;
      }

      // childToward agrees with the ancestor chain even when sibling
      // clusters have different sizes.
      for (NodeId p = 0; p < procs; ++p) {
        int cur = tree->leafOf(p);
        while (tree->parent(cur) >= 0) {
          EXPECT_EQ(tree->childToward(tree->parent(cur), p), cur);
          cur = tree->parent(cur);
        }
        EXPECT_EQ(tree->childToward(tree->leafOf(p), p), -1);
      }

      // Embeddings host every tree node inside its own cluster,
      // deterministically, for both kinds.
      for (const auto kind : {net::EmbeddingKind::Regular, net::EmbeddingKind::Random}) {
        for (std::uint64_t var : {1ull, 2ull, 99ull}) {
          for (int i = 0; i < tree->numNodes(); ++i) {
            const NodeId host = tree->hostOf(i, var, kind, 42);
            ASSERT_GE(host, 0);
            ASSERT_LT(host, procs);
            EXPECT_TRUE(inCluster(*tree, i, host))
                << g.name << " node " << i << " hosted outside its cluster";
            EXPECT_EQ(host, tree->hostOf(i, var, kind, 42)) << "non-deterministic";
          }
        }
      }
    }

    // Canonical leaf order is a permutation of the processors.
    auto order = net::canonicalLeafOrder(topo);
    ASSERT_EQ(static_cast<int>(order.size()), procs);
    std::sort(order.begin(), order.end());
    for (NodeId p = 0; p < procs; ++p) EXPECT_EQ(order[p], p);
  }
}

TEST(GraphDecomposition, BfsBisectionIsBalancedToWithinOneNode) {
  const net::GraphTopology topo(net::randomRegularGraph(30, 3, 5));
  const net::BfsBisectionPartitioner part;
  std::vector<NodeId> cluster(30);
  for (NodeId p = 0; p < 30; ++p) cluster[p] = p;
  std::vector<NodeId> a, b;
  part.bisect(topo, cluster, a, b);
  EXPECT_EQ(a.size(), 15u);
  EXPECT_EQ(b.size(), 15u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  std::vector<NodeId> merged;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(merged));
  EXPECT_EQ(merged, cluster);

  // Odd split: the larger half is the grown one, by exactly one node.
  std::vector<NodeId> odd(cluster.begin(), cluster.begin() + 7);
  part.bisect(topo, odd, a, b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 3u);

  // The 2-ary tree reflects the balance at every level.
  const auto tree = topo.decompose(net::DecompParams{2, 1});
  for (int i = 0; i < tree->numNodes(); ++i) {
    const auto& nd = tree->node(i);
    if (nd.children.size() == 2) {
      const int sa = tree->node(nd.children[0]).size;
      const int sb = tree->node(nd.children[1]).size;
      EXPECT_LE(std::abs(sa - sb), 1) << "unbalanced bisection at node " << i;
    }
  }
}

TEST(GraphDecomposition, CustomPartitionerIsPluggable) {
  // A deliberately naive partitioner: split the sorted cluster down the
  // middle by id. Verifies decompose() honors the injected strategy.
  class SplitByIdPartitioner final : public net::GraphPartitioner {
   public:
    void bisect(const net::Topology&, const std::vector<NodeId>& cluster,
                std::vector<NodeId>& a, std::vector<NodeId>& b) const override {
      const std::size_t half = (cluster.size() + 1) / 2;
      a.assign(cluster.begin(), cluster.begin() + half);
      b.assign(cluster.begin() + half, cluster.end());
    }
  };

  const net::GraphTopology topo(net::ringGraph(8),
                                std::make_shared<SplitByIdPartitioner>());
  const auto tree = topo.decompose(net::DecompParams{2, 1});
  // With the id-splitter, rank order is id order.
  for (NodeId p = 0; p < 8; ++p) EXPECT_EQ(tree->rankOf(p), p);
}

// ---------------------------------------------------------------------------
// End-to-end: strategies on irregular machines
// ---------------------------------------------------------------------------

class GraphTopologyEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphTopologyEndToEnd, StrategiesRunAndInvariantsHoldAtQuiescence) {
  const std::string which = GetParam();
  GraphSpec g;
  if (which == "ring") g = net::ringGraph(12);
  if (which == "star") g = net::starGraph(10);
  if (which == "random_regular") g = net::randomRegularGraph(16, 3, 11);
  const TopologySpec spec = TopologySpec::graph(std::move(g));

  for (const auto& rc :
       {RuntimeConfig::accessTree(4, 1), RuntimeConfig::accessTree(2, 2),
        RuntimeConfig::fixedHome()}) {
    Machine m(spec);
    Runtime rt(m, rc);
    const int procs = m.numProcs();

    constexpr int kVars = 4;
    constexpr int kOpsPerProc = 6;
    std::vector<VarId> vars;
    for (int i = 0; i < kVars; ++i)
      vars.push_back(rt.createVarFree(static_cast<NodeId>((i * 5) % procs),
                                      makeValue<std::int64_t>(0), /*withLock=*/true));

    std::vector<int> increments(kVars, 0);
    for (NodeId p = 0; p < procs; ++p) {
      sim::spawn([](Machine& mm, Runtime& r, NodeId self, std::vector<VarId>& vs,
                    std::vector<int>& counts) -> sim::Task<> {
        support::SplitMix64 rng(
            support::hashCombine(7, static_cast<std::uint64_t>(self)));
        for (int op = 0; op < kOpsPerProc; ++op) {
          const int which = static_cast<int>(rng.below(kVars));
          co_await mm.net.compute(self, rng.uniform(0.0, 300.0));
          co_await r.lock(self, vs[which]);
          const auto v = valueAs<std::int64_t>(co_await r.read(self, vs[which]));
          co_await r.write(self, vs[which], makeValue<std::int64_t>(v + 1));
          ++counts[which];
          co_await r.unlock(self, vs[which]);
        }
        co_await r.barrier(self);
      }(m, rt, p, vars, increments));
    }
    m.run();
    rt.checkAllInvariants();
    for (int i = 0; i < kVars; ++i)
      EXPECT_EQ(valueAs<std::int64_t>(rt.peek(vars[i])), increments[i])
          << "lost update on " << spec.describe() << " with " << rt.strategyName();
    EXPECT_GT(m.stats.links.totalMessages(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(IrregularShapes, GraphTopologyEndToEnd,
                         ::testing::Values("ring", "star", "random_regular"),
                         [](const auto& info) { return std::string(info.param); });

// Heterogeneous link weights shift simulated time, not correctness: the
// same workload on a weighted vs unit-weight ring finishes later when the
// links are slower, and congestion accounting is unaffected.
TEST(GraphTopologyEndToEnd, LinkWeightsScaleSimulatedTime) {
  auto run = [](double weight) {
    GraphSpec g = net::ringGraph(8);
    for (auto& e : g.edges) e.weight = weight;
    g.name = "ring8w";
    Machine m(TopologySpec::graph(std::move(g)));
    for (NodeId p = 0; p < 8; ++p) {
      m.net.post(net::Message{p, static_cast<NodeId>((p + 4) % 8),
                              net::kProtocolChannel, 4096, {}});
    }
    const sim::Time t = m.run();
    return std::pair<sim::Time, std::uint64_t>(t, m.stats.links.totalBytes());
  };
  const auto [fastT, fastBytes] = run(1.0);
  const auto [slowT, slowBytes] = run(4.0);
  EXPECT_GT(slowT, fastT);
  EXPECT_EQ(fastBytes, slowBytes);  // congestion metric is time-independent
}

TEST(GraphTopologyEndToEnd, LinkLatenciesScaleSimulatedTimeOnly) {
  // Per-link hop latency (the heterogeneity term next to the bandwidth
  // weight) slows multi-hop messages down but never changes routes or
  // traffic counts.
  auto run = [](double latency) {
    GraphSpec g = net::ringGraph(8);
    for (auto& e : g.edges) e.latency = latency;
    g.name = "ring8l";
    Machine m(TopologySpec::graph(std::move(g)));
    // One uncontended 4-hop message: its delivery time shows the per-hop
    // head latency directly (under contention the link FIFO dominates).
    m.net.post(net::Message{0, 4, net::kProtocolChannel, 4096, {}});
    const sim::Time t = m.run();
    return std::tuple<sim::Time, std::uint64_t, std::uint64_t>(
        t, m.stats.links.totalBytes(), m.stats.links.totalMessages());
  };
  const auto [fastT, fastBytes, fastMsgs] = run(1.0);
  const auto [slowT, slowBytes, slowMsgs] = run(6.0);
  // 3 non-final hops × (6−1) × hopLatencyUs(5) = 75 µs slower.
  EXPECT_DOUBLE_EQ(slowT - fastT, 75.0);
  EXPECT_EQ(fastBytes, slowBytes);
  EXPECT_EQ(fastMsgs, slowMsgs);

  // Routing ignores latency: only weights pick paths.
  GraphSpec g = net::ringGraph(6);
  g.edges[0].latency = 50.0;  // edge 0-1 stays on the shortest route
  const net::GraphTopology topo{g};
  EXPECT_EQ(topo.nextHop(0, 2), 1);
  EXPECT_EQ(topo.distance(0, 2), 2);
  // linkLatency surfaces the per-slot term; other topologies default 1.0.
  bool sawHetero = false;
  for (int l = 0; l < topo.numLinkSlots(); ++l) sawHetero |= topo.linkLatency(l) == 50.0;
  EXPECT_TRUE(sawHetero);
  Machine mesh(TopologySpec::mesh2d(2, 2));
  for (int l = 0; l < mesh.topo().numLinkSlots(); ++l)
    EXPECT_DOUBLE_EQ(mesh.topo().linkLatency(l), 1.0);
}

TEST(GraphFile, LatencyFieldRoundTrips) {
  const std::string text =
      "graph hetero\n"
      "nodes 3\n"
      "edge 0 1 0.5 3\n"   // weight 0.5, latency 3
      "edge 1 2 1 2.5\n"   // default weight spelled out, latency 2.5
      "edge 0 2\n";
  const GraphSpec g = net::parseGraph(text);
  ASSERT_EQ(g.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(g.edges[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(g.edges[0].latency, 3.0);
  EXPECT_DOUBLE_EQ(g.edges[1].weight, 1.0);
  EXPECT_DOUBLE_EQ(g.edges[1].latency, 2.5);
  EXPECT_DOUBLE_EQ(g.edges[2].latency, 1.0);
  // Serializer emits the latency (and the weight it forces out) and the
  // parser reads them back structurally equal.
  EXPECT_EQ(net::parseGraph(net::formatGraph(g)), g);

  EXPECT_THROW((void)net::parseGraph("nodes 2\nedge 0 1 1 slow\n"), support::CheckError);
  // Non-positive latency parses (the format is syntax-only) but is
  // rejected when the topology is built, like non-positive weights.
  EXPECT_THROW(net::GraphTopology(net::parseGraph("nodes 2\nedge 0 1 1 -2\n")),
               support::CheckError);
}

}  // namespace
}  // namespace diva
