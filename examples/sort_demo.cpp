// Bitonic sorting demo (paper §3.2): sorts 64×512 random keys on 64
// nodes with every strategy and shows how the 2-ary tree's match with
// the sorting circuit's locality plays out. DIVA_TOPOLOGY selects the
// machine shape (mesh2d default).
//
//   $ ./example_sort_demo
//   $ DIVA_TOPOLOGY=torus2d ./example_sort_demo

#include <algorithm>
#include <cstdio>

#include "apps/bitonic/bitonic.hpp"
#include "net/topology_env.hpp"

using namespace diva;
namespace bs = diva::apps::bitonic;

int main() {
  const int side = 8;
  bs::Config cfg;
  cfg.keysPerProc = 512;
  const net::TopologySpec shape = net::topologyFromEnv(side, side);

  std::printf("bitonic sorting of %d keys on %s (%d keys/processor)\n\n",
              side * side * cfg.keysPerProc, shape.describe().c_str(),
              cfg.keysPerProc);
  std::printf("%-22s %12s %16s %10s\n", "strategy", "time [ms]", "congestion [KB]",
              "sorted?");

  Machine mh(shape);
  const auto ho = bs::runHandOptimized(mh, cfg);
  std::printf("%-22s %12.1f %16.1f %10s\n", "hand-optimized", ho.timeUs / 1e3,
              ho.congestionBytes / 1e3,
              std::is_sorted(ho.keys.begin(), ho.keys.end()) ? "yes" : "NO");

  struct Entry {
    RuntimeConfig rc;
    const char* name;
  };
  for (const auto& e : {Entry{RuntimeConfig::accessTree(2), "2-ary access tree"},
                        Entry{RuntimeConfig::accessTree(2, 4), "2-4-ary access tree"},
                        Entry{RuntimeConfig::accessTree(4), "4-ary access tree"},
                        Entry{RuntimeConfig::fixedHome(), "fixed home"}}) {
    Machine m(shape);
    Runtime rt(m, e.rc);
    const auto r = bs::runDiva(m, rt, cfg);
    const bool ok = std::is_sorted(r.keys.begin(), r.keys.end());
    std::printf("%-22s %12.1f %16.1f %10s\n", e.name, r.timeUs / 1e3,
                r.congestionBytes / 1e3, ok ? "yes" : "NO");
    if (!ok) return 1;
  }
  return 0;
}
