// Matrix multiplication demo: runs the paper's first benchmark (§3.1) on
// an 8×8 mesh with real arithmetic, comparing all data management
// strategies against the hand-optimized message passing baseline, and
// verifies every result against a serial reference.
//
//   $ ./example_matmul_demo

#include <cstdio>

#include "apps/matmul/matmul.hpp"

using namespace diva;
namespace mm = diva::apps::matmul;

int main() {
  const int side = 8;
  mm::Config cfg;
  cfg.blockInts = 256;
  cfg.realCompute = true;  // actually multiply, so we can verify

  const auto expect =
      mm::serialSquare(mm::inputMatrix(side, cfg), mm::matrixSide(side, cfg.blockInts));

  std::printf("matrix squaring on an %dx%d mesh, %d-entry blocks (n=%d)\n\n", side,
              side, cfg.blockInts, mm::matrixSide(side, cfg.blockInts));
  std::printf("%-22s %12s %16s %10s\n", "strategy", "time [ms]", "congestion [KB]",
              "correct?");

  Machine mh(side, side);
  const auto ho = mm::runHandOptimized(mh, cfg);
  std::printf("%-22s %12.1f %16.1f %10s\n", "hand-optimized", ho.timeUs / 1e3,
              ho.congestionBytes / 1e3, ho.matrix == expect ? "yes" : "NO");

  struct Entry {
    RuntimeConfig rc;
    const char* name;
  };
  for (const auto& e : {Entry{RuntimeConfig::accessTree(2), "2-ary access tree"},
                        Entry{RuntimeConfig::accessTree(4), "4-ary access tree"},
                        Entry{RuntimeConfig::accessTree(16), "16-ary access tree"},
                        Entry{RuntimeConfig::fixedHome(), "fixed home"}}) {
    Machine m(side, side);
    Runtime rt(m, e.rc);
    const auto r = mm::runDiva(m, rt, cfg);
    std::printf("%-22s %12.1f %16.1f %10s\n", e.name, r.timeUs / 1e3,
                r.congestionBytes / 1e3, r.matrix == expect ? "yes" : "NO");
    if (r.matrix != expect) return 1;
  }
  if (ho.matrix != expect) return 1;
  std::printf("\nall strategies computed the same (correct) matrix square.\n");
  return 0;
}
