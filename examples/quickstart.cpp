// Quickstart: the smallest complete DIVA program.
//
// We build a 4×4 simulated mesh, create a global variable with the 4-ary
// access tree strategy, and run a handful of node programs that read and
// update it through the fully transparent read/write API. At the end we
// print what the data management layer did under the hood.
//
//   $ ./example_quickstart

#include <cstdio>

#include "diva/machine.hpp"
#include "diva/runtime.hpp"

using namespace diva;

int main() {
  // A 4×4 mesh of single-CPU nodes with the paper's GCel cost model.
  Machine machine(4, 4);
  Runtime diva(machine, RuntimeConfig::accessTree(/*arity=*/4));

  // One shared counter, initially owned by processor 0 (setup is free).
  const VarId counter = diva.createVarFree(0, makeValue<std::int64_t>(0),
                                           /*withLock=*/true);

  // Every processor increments the counter once, under the lock, then
  // waits at a barrier and reads the final value.
  for (NodeId p = 0; p < machine.numProcs(); ++p) {
    sim::spawn([](Machine& m, Runtime& rt, NodeId self, VarId x) -> sim::Task<> {
      co_await rt.lock(self, x);
      const auto v = valueAs<std::int64_t>(co_await rt.read(self, x));
      co_await rt.write(self, x, makeValue<std::int64_t>(v + 1));
      co_await rt.unlock(self, x);

      co_await rt.barrier(self);
      const auto finalValue = valueAs<std::int64_t>(co_await rt.read(self, x));
      if (self == 0)
        std::printf("processor %d sees the final value %lld at t=%.1f ms\n",
                    self, static_cast<long long>(finalValue),
                    m.engine.now() / 1000.0);
    }(machine, diva, p, counter));
  }

  const sim::Time end = machine.run();

  std::printf("\nsimulated time     : %.2f ms\n", end / 1000.0);
  std::printf("strategy           : %s\n", diva.strategyName().c_str());
  std::printf("reads / hits       : %llu / %llu\n",
              static_cast<unsigned long long>(machine.stats.ops.reads),
              static_cast<unsigned long long>(machine.stats.ops.readHits));
  std::printf("writes             : %llu\n",
              static_cast<unsigned long long>(machine.stats.ops.writes));
  std::printf("invalidations      : %llu\n",
              static_cast<unsigned long long>(machine.stats.ops.invalidations));
  std::printf("network messages   : %llu\n",
              static_cast<unsigned long long>(machine.net.messagesSent()));
  std::printf("congestion (bytes) : %llu on the busiest link\n",
              static_cast<unsigned long long>(machine.stats.links.congestionBytes()));

  // Verify: 16 increments happened.
  diva.checkAllInvariants();
  return valueAs<std::int64_t>(diva.peek(counter)) == machine.numProcs() ? 0 : 1;
}
