// Congestion heat map: visualizes the paper's central claim. We run the
// matrix-multiplication read phase under the fixed home strategy and the
// 4-ary access tree on a 16×16 mesh and print per-node ASCII heat maps of
// link traffic. The fixed home strategy concentrates traffic around the
// random homes; the access tree spreads it across the hierarchy.
//
//   $ ./example_congestion_map

#include <cstdio>

#include "apps/matmul/matmul.hpp"

using namespace diva;
namespace mm = diva::apps::matmul;

namespace {

void printHeatMap(Machine& m, const char* title) {
  // Aggregate the four outgoing links of every node.
  const int rows = m.mesh().rows(), cols = m.mesh().cols();
  std::vector<std::uint64_t> load(static_cast<std::size_t>(rows) * cols, 0);
  std::uint64_t peak = 1;
  for (NodeId n = 0; n < m.mesh().numNodes(); ++n) {
    std::uint64_t sum = 0;
    for (int d = 0; d < mesh::Mesh::kDirs; ++d)
      sum += m.stats.links.linkBytes(m.mesh().linkIndex(n, static_cast<mesh::Mesh::Dir>(d)));
    load[static_cast<std::size_t>(n)] = sum;
    peak = std::max(peak, sum);
  }
  static const char shades[] = " .:-=+*#%@";
  std::printf("%s (peak node traffic: %.0f KB)\n", title, peak / 1e3);
  for (int r = 0; r < rows; ++r) {
    std::printf("    ");
    for (int c = 0; c < cols; ++c) {
      const double frac =
          static_cast<double>(load[static_cast<std::size_t>(r * cols + c)]) / peak;
      std::printf("%c", shades[static_cast<int>(frac * 9.0)]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const int side = 16;
  mm::Config cfg;
  cfg.blockInts = 1024;

  for (const bool fixedHome : {true, false}) {
    Machine m(side, side, net::CostModel::gcel().withoutCompute());
    Runtime rt(m, fixedHome ? RuntimeConfig::fixedHome() : RuntimeConfig::accessTree(4));
    (void)mm::runDiva(m, rt, cfg);
    char title[128];
    std::snprintf(title, sizeof title,
                  "matmul link traffic, %s  (congestion %.0f KB / total %.1f MB)",
                  rt.strategyName().c_str(), m.stats.links.congestionBytes() / 1e3,
                  m.stats.links.totalBytes() / 1e6);
    printHeatMap(m, title);
  }
  std::printf("darker = more bytes through that node's outgoing links.\n");
  std::printf("the fixed home strategy shows hot spots at random home nodes;\n");
  std::printf("the access tree spreads load along the decomposition hierarchy.\n");
  return 0;
}
