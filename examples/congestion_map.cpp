// Congestion map: visualizes the paper's central claim on any topology.
// We run a read-mostly Zipf hotspot workload (the synthetic-workload
// subsystem, src/workload/) under the fixed home strategy and the 4-ary
// access tree and show where the traffic went. The fixed home strategy
// concentrates traffic around the hot objects' random homes; the access
// tree spreads it across the decomposition hierarchy.
//
//   $ ./example_congestion_map                          # 16×16 mesh
//   $ DIVA_TOPOLOGY=torus2d ./example_congestion_map    # 16×16 torus
//   $ DIVA_TOPOLOGY=random-regular ./example_congestion_map
//
// Grid shapes print an ASCII heat map of per-node outgoing-link bytes;
// non-grid shapes print the most-loaded nodes as a bar list.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "net/topology_env.hpp"
#include "workload/workload.hpp"

using namespace diva;

namespace {

/// Per-node traffic: bytes through every outgoing link slot of the node.
std::vector<std::uint64_t> nodeLoads(Machine& m) {
  const net::Topology& topo = m.topo();
  std::vector<std::uint64_t> load(static_cast<std::size_t>(topo.numNodes()), 0);
  for (NodeId n = 0; n < topo.numNodes(); ++n)
    for (int d = 0; d < topo.degree(); ++d)
      load[static_cast<std::size_t>(n)] += m.stats.links.linkBytes(topo.linkIndex(n, d));
  return load;
}

void printLoads(Machine& m, const char* title) {
  const std::vector<std::uint64_t> load = nodeLoads(m);
  const std::uint64_t peak = std::max<std::uint64_t>(
      1, *std::max_element(load.begin(), load.end()));
  std::printf("%s (peak node traffic: %.0f KB)\n", title, peak / 1e3);

  const net::TopologySpec spec = m.topo().spec();
  const bool grid =
      spec.kind == net::TopologyKind::Mesh2D || spec.kind == net::TopologyKind::Torus2D;
  if (grid) {
    static const char shades[] = " .:-=+*#%@";
    const int rows = spec.a, cols = spec.b;
    for (int r = 0; r < rows; ++r) {
      std::printf("    ");
      for (int c = 0; c < cols; ++c) {
        const double frac =
            static_cast<double>(load[static_cast<std::size_t>(r * cols + c)]) / peak;
        std::printf("%c", shades[static_cast<int>(frac * 9.0)]);
      }
      std::printf("\n");
    }
  } else {
    // No 2-D embedding to draw: list the ten most-loaded nodes instead.
    std::vector<NodeId> order(load.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) { return load[a] > load[b]; });
    for (std::size_t i = 0; i < order.size() && i < 10; ++i) {
      const NodeId n = order[i];
      const int bar = static_cast<int>(load[n] * 40 / peak);
      std::printf("    node %3d %7.0f KB |%.*s\n", n, load[n] / 1e3, bar,
                  "########################################");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A read-mostly Zipf hotspot over 128 objects — communication only (no
  // application compute), like the paper's matmul congestion study.
  workload::WorkloadSpec spec;
  spec.name = "hotspot-map";
  spec.numObjects = 128;
  spec.objectBytes = 1024;
  spec.seed = 42;
  spec.phases.push_back(
      workload::PhaseSpec{"hot", /*rounds=*/24, /*readFraction=*/0.9,
                          /*zipfS=*/1.0, /*hotShift=*/0, /*thinkMeanUs=*/0.0,
                          /*barrier=*/true});

  const net::TopologySpec shape = net::topologyFromEnv(16, 16);
  for (const bool fixedHome : {true, false}) {
    Machine m(shape, net::CostModel::gcel().withoutCompute());
    Runtime rt(m, fixedHome ? RuntimeConfig::fixedHome(spec.seed)
                            : RuntimeConfig::accessTree(4, 1, spec.seed));
    const workload::WorkloadReport rep = workload::run(m, rt, spec);
    char title[160];
    std::snprintf(title, sizeof title,
                  "hotspot link traffic, %s on %s  (congestion %.0f KB / total %.1f MB)",
                  rep.strategy.c_str(), rep.topology.c_str(),
                  rep.congestionBytes / 1e3, rep.linkBytes / 1e6);
    printLoads(m, title);
  }
  std::printf("darker / longer bar = more bytes through that node's outgoing links.\n");
  std::printf("the fixed home strategy shows hot spots at the hot objects' homes;\n");
  std::printf("the access tree spreads load along the decomposition hierarchy.\n");
  return 0;
}
