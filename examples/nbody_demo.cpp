// Barnes–Hut demo (paper §3.3): a small N-body simulation on 64 nodes
// with per-phase statistics, verified bit-for-bit against the sequential
// reference simulator. DIVA_TOPOLOGY selects the machine shape (mesh2d
// default; torus2d, hypercube, ring, star, random-regular, graph:<file>).
//
//   $ ./example_nbody_demo
//   $ DIVA_TOPOLOGY=hypercube ./example_nbody_demo

#include <cstdio>

#include "apps/barneshut/barneshut.hpp"
#include "apps/barneshut/plummer.hpp"
#include "net/topology_env.hpp"

using namespace diva;
namespace bh = diva::apps::barneshut;

int main() {
  bh::Config cfg;
  cfg.numBodies = 2000;
  cfg.steps = 4;
  cfg.warmupSteps = 1;

  Machine machine(net::topologyFromEnv(8, 8));
  Runtime rt(machine, RuntimeConfig::accessTree(4));
  std::printf("Barnes-Hut, %d bodies, %d steps on %s (%s)\n\n",
              cfg.numBodies, cfg.steps, machine.topo().name().c_str(),
              rt.strategyName().c_str());

  const auto r = bh::run(machine, rt, cfg);

  std::printf("%-20s %12s %18s %14s\n", "phase", "time [s]", "congestion [msgs]",
              "compute [s]");
  for (int ph = 0; ph < bh::kNumPhases; ++ph) {
    std::printf("%-20s %12.2f %18llu %14.2f\n", bh::phaseName(ph),
                r.phaseWallUs[ph] / 1e6,
                static_cast<unsigned long long>(r.phaseCongestionMessages[ph]),
                r.phaseComputeUs[ph] / 64 / 1e6);
  }
  std::printf("\ntotal measured time : %.2f s\n", r.timeUs / 1e6);
  std::printf("cells created       : %llu\n",
              static_cast<unsigned long long>(r.cellsCreated));
  std::printf("cache hit rate      : %.1f%%\n", 100.0 * r.readHits / r.reads);

  // Verify against the sequential reference: positions must match bit
  // for bit (the distributed run evaluates the same floating point
  // operations in the same order).
  bh::ReferenceSimulator ref(bh::plummerModel(cfg.numBodies, cfg.seed), cfg.params);
  for (int s = 0; s < cfg.steps; ++s) ref.step();
  for (std::size_t i = 0; i < ref.bodies().size(); ++i) {
    if (!(r.finalBodies[i].pos == ref.bodies()[i].pos)) {
      std::printf("MISMATCH at body %zu\n", i);
      return 1;
    }
  }
  std::printf("verified            : positions bit-identical to the sequential reference\n");
  return 0;
}
