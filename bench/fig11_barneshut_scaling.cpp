// Figure 11: Barnes–Hut scaling — the number of processors grows from 64
// to 512 (8×8, 8×16, 16×16, 16×32 meshes) with N = 200·P bodies, fixed
// home vs the 4-8-ary access tree. Paper: congestion is determined mainly
// by the largest mesh side; the access tree's advantage grows with the
// machine — its execution time falls to ≈49% of the fixed home's at 512
// processors, its communication time (execution minus force-phase local
// compute) to ≈33%.
//
// Parameterized over TopologySpec via DIVA_TOPOLOGY (Barnes–Hut runs on
// any shape; non-grid shapes are built over rows·cols processors).

#include <cstdio>

#include "bh_sweep.hpp"

using namespace diva;
using namespace diva::bench;
namespace bh = diva::apps::barneshut;

int main() {
  struct Shape {
    int rows, cols;
  };
  std::vector<Shape> shapes;
  switch (scale()) {
    case Scale::Quick: shapes = {{8, 8}, {8, 16}}; break;
    case Scale::Default: shapes = {{8, 8}, {8, 16}, {16, 16}}; break;
    case Scale::Full: shapes = {{8, 8}, {8, 16}, {16, 16}, {16, 32}}; break;
  }

  std::printf("Figure 11 — Barnes-Hut scaling, N = 200 * P\n");
  std::printf("(paper AT/FH: execution 52%%/49%%..., communication down to 33%%)\n\n");
  support::Table table({"mesh", "P", "bodies", "strategy", "congestion [10^3 msgs]",
                        "time [s]", "force compute [s]", "AT/FH time", "AT/FH comm"});

  double lastAtOverFh = 0;
  net::TopologySpec lastTopo = topoForShape(shapes.back().rows, shapes.back().cols);
  for (const auto& s : shapes) {
    const int P = s.rows * s.cols;
    const int bodies = 200 * P;
    auto cfg = bhConfig(bodies);

    double fhTime = 0, fhComm = 0;
    const net::TopologySpec topo = topoForShape(s.rows, s.cols);
    for (const auto& spec : {fixedHome(), accessTree(4, 8)}) {
      Machine m(topo);
      Runtime rt(m, spec.config.on(topo));
      const auto r = apps::barneshut::run(m, rt, cfg);
      const double compute = r.phaseComputeUs[bh::kForce] / P;
      const double comm = r.timeUs - compute;
      std::string atFh, atFhComm;
      if (spec.config.kind == StrategyKind::FixedHome) {
        fhTime = r.timeUs;
        fhComm = comm;
      } else {
        atFh = support::fmtPercent(r.timeUs / fhTime);
        atFhComm = support::fmtPercent(comm / fhComm);
        lastAtOverFh = r.timeUs / fhTime;
      }
      table.addRow({std::to_string(s.rows) + "x" + std::to_string(s.cols),
                    std::to_string(P), std::to_string(bodies), spec.name,
                    support::fmt(r.congestionMessages / 1e3, 0),
                    support::fmt(r.timeUs / 1e6, 0), support::fmt(compute / 1e6, 0),
                    atFh, atFhComm});
    }
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-8-ary access tree vs fixed
  // home execution time at the largest machine of the sweep (the paper's
  // advantage-grows-with-the-machine claim).
  printDatapoint("fig11_barneshut_scaling", lastTopo, lastAtOverFh);
  return 0;
}
