// Figure 6: bitonic sorting on a 16×16 mesh — congestion and execution
// time ratios vs keys per processor, for the fixed home and 2-4-ary
// access tree strategies relative to the hand-optimized exchange. Paper:
// access tree congestion ratio ≈ 2.7–3.0, fixed home ≈ 7–8; execution
// time closely tracks congestion.
//
// Parameterized over TopologySpec: bitonic assigns wires by decomposition
// leaf order, so DIVA_TOPOLOGY may select any shape (torus2d, hypercube,
// ring, star, random-regular) besides the default mesh.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace bs = diva::apps::bitonic;

int main() {
  const int side = 16;
  std::vector<int> keyCounts;
  switch (scale()) {
    case Scale::Quick: keyCounts = {256, 1024}; break;
    default: keyCounts = {256, 1024, 4096, 16384}; break;
  }

  const net::TopologySpec topo = topoForSide(side);
  std::printf("Figure 6 — bitonic sorting on %s\n", topo.describe().c_str());
  std::printf("ratios relative to the hand-optimized message passing strategy\n\n");
  support::Table table({"keys/proc", "strategy", "congestion ratio", "exec time ratio",
                        "congestion [KB]", "time [s]"});

  double lastAtOverFh = 0.0;
  for (const int keys : keyCounts) {
    bs::Config cfg;
    cfg.keysPerProc = keys;

    Machine mh(topo);
    const auto ho = bs::runHandOptimized(mh, cfg);
    table.addRow({std::to_string(keys), "hand-optimized", "1.00", "1.00",
                  support::fmt(ho.congestionBytes / 1e3, 0),
                  support::fmt(ho.timeUs / 1e6, 2)});

    double atTimeUs = 0.0;
    for (const auto& spec : {accessTree(2, 4), fixedHome()}) {
      Machine m(topo);
      Runtime rt(m, spec.config.on(topo));
      const auto r = bs::runDiva(m, rt, cfg);
      table.addRow({std::to_string(keys), spec.name,
                    ratioCell(static_cast<double>(r.congestionBytes),
                              static_cast<double>(ho.congestionBytes)),
                    ratioCell(r.timeUs, ho.timeUs),
                    support::fmt(r.congestionBytes / 1e3, 0),
                    support::fmt(r.timeUs / 1e6, 2)});
      if (spec.config.kind == StrategyKind::AccessTree)
        atTimeUs = r.timeUs;
      else
        lastAtOverFh = atTimeUs / r.timeUs;
    }
  }
  table.print();
  // Largest-keys execution-time ratio, recorded in BENCH_engine.json next
  // to the fig07 scaling point (paper: time tracks congestion, access
  // tree well ahead of fixed home).
  printDatapoint("fig06_bitonic_keys", topo, lastAtOverFh);
  return 0;
}
