// Figure 9: congestion and execution time of the Barnes–Hut tree-building
// phase on a 16×16 mesh. Paper shape: the fixed home strategy shows a
// large congestion/time offset (the home of the root cell must deliver a
// copy to each processor one by one, and the same bottleneck hits the
// other top-level cells), while the access trees distribute the hot
// cells via multicast trees.

#include <cstdio>

#include "bh_sweep.hpp"

using namespace diva;
using namespace diva::bench;
namespace bh = diva::apps::barneshut;

int main() {
  std::printf("Figure 9 — Barnes-Hut tree-building phase (16x16 mesh)\n\n");
  const auto points = runBhSweep();

  support::Table table({"bodies", "strategy", "congestion [10^4 msgs]", "time [min]",
                        "share of total time"});
  for (const auto& p : points) {
    double wallSum = 0;
    for (int ph = 0; ph < bh::kNumPhases; ++ph) wallSum += p.result.phaseWallUs[ph];
    table.addRow(
        {std::to_string(p.bodies), p.strat.name,
         support::fmt(p.result.phaseCongestionMessages[bh::kTreeBuild] / 1e4, 2),
         support::fmt(p.result.phaseWallUs[bh::kTreeBuild] / 60e6, 2),
         support::fmtPercent(p.result.phaseWallUs[bh::kTreeBuild] / wallSum)});
  }
  table.print();
  return 0;
}
