// Figure 9: congestion and execution time of the Barnes–Hut tree-building
// phase on a 16×16 mesh. Paper shape: the fixed home strategy shows a
// large congestion/time offset (the home of the root cell must deliver a
// copy to each processor one by one, and the same bottleneck hits the
// other top-level cells), while the access trees distribute the hot
// cells via multicast trees.

#include <cstdio>

#include "bh_sweep.hpp"

using namespace diva;
using namespace diva::bench;
namespace bh = diva::apps::barneshut;

int main() {
  std::printf("Figure 9 — Barnes-Hut tree-building phase (16x16 mesh)\n\n");
  const auto points = runBhSweep();

  support::Table table({"bodies", "strategy", "congestion [10^4 msgs]", "time [min]",
                        "share of total time"});
  for (const auto& p : points) {
    double wallSum = 0;
    for (int ph = 0; ph < bh::kNumPhases; ++ph) wallSum += p.result.phaseWallUs[ph];
    table.addRow(
        {std::to_string(p.bodies), p.strat.name,
         support::fmt(p.result.phaseCongestionMessages[bh::kTreeBuild] / 1e4, 2),
         support::fmt(p.result.phaseWallUs[bh::kTreeBuild] / 60e6, 2),
         support::fmtPercent(p.result.phaseWallUs[bh::kTreeBuild] / wallSum)});
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home tree-building wall time at the largest body count — the phase
  // where the paper's multicast-vs-home-bottleneck gap is widest.
  double fhWall = 0, at4Wall = 0;
  const int maxBodies = points.back().bodies;
  for (const auto& p : points) {
    if (p.bodies != maxBodies) continue;
    if (p.strat.config.kind == StrategyKind::FixedHome)
      fhWall = p.result.phaseWallUs[bh::kTreeBuild];
    if (p.strat.config.kind == StrategyKind::AccessTree &&
        p.strat.config.arity == 4 && p.strat.config.leafSize == 1)
      at4Wall = p.result.phaseWallUs[bh::kTreeBuild];
  }
  printDatapoint("fig09_barneshut_treebuild", topoForShape(16, 16), at4Wall / fhWall);
  return 0;
}
