// Figure 10: congestion and execution time of the Barnes–Hut force
// computation phase (summed over the measured steps) on a 16×16 mesh,
// including the time spent in local computations. Paper shape: the force
// phase dominates the execution time; the access trees win through their
// ability to distribute copies into exactly the submeshes that need
// them; with the 4-ary tree only ≈25% of the phase is communication
// (≈33% for the fixed home strategy).

#include <cstdio>

#include "bh_sweep.hpp"

using namespace diva;
using namespace diva::bench;
namespace bh = diva::apps::barneshut;

int main() {
  std::printf("Figure 10 — Barnes-Hut force computation phase (16x16 mesh)\n\n");
  const auto points = runBhSweep();

  support::Table table({"bodies", "strategy", "congestion [10^4 msgs]", "time [min]",
                        "local compute [min]", "communication share"});
  for (const auto& p : points) {
    const double wall = p.result.phaseWallUs[bh::kForce];
    // Average per-processor compute time in this phase.
    const double computePerProc = p.result.phaseComputeUs[bh::kForce] / 256.0;
    table.addRow({std::to_string(p.bodies), p.strat.name,
                  support::fmt(p.result.phaseCongestionMessages[bh::kForce] / 1e4, 2),
                  support::fmt(wall / 60e6, 2),
                  support::fmt(computePerProc / 60e6, 2),
                  support::fmtPercent(1.0 - computePerProc / wall)});
  }
  table.print();

  // Headline ratio for BENCH_engine.json: 4-ary access tree vs fixed
  // home force-phase wall time at the largest body count — the phase
  // that dominates total execution time in the paper.
  double fhWall = 0, at4Wall = 0;
  const int maxBodies = points.back().bodies;
  for (const auto& p : points) {
    if (p.bodies != maxBodies) continue;
    if (p.strat.config.kind == StrategyKind::FixedHome)
      fhWall = p.result.phaseWallUs[bh::kForce];
    if (p.strat.config.kind == StrategyKind::AccessTree &&
        p.strat.config.arity == 4 && p.strat.config.leafSize == 1)
      at4Wall = p.result.phaseWallUs[bh::kForce];
  }
  printDatapoint("fig10_barneshut_force", topoForShape(16, 16), at4Wall / fhWall);
  return 0;
}
