// Ablation (paper §2, "practical improvements"): the theoretical fully
// random embedding vs the practical parent-relative ("regular")
// embedding of access tree nodes. The paper argues the regular embedding
// shortens expected tree-edge routes without observable downsides; this
// bench quantifies that on matrix multiplication and bitonic sorting.

#include <cstdio>

#include "bench_common.hpp"

using namespace diva;
using namespace diva::bench;
namespace mm = diva::apps::matmul;
namespace bs = diva::apps::bitonic;

int main() {
  const int side = scale() == Scale::Quick ? 8 : 16;
  const net::TopologySpec topo = topoForSide(side, /*requireGrid=*/true);

  std::printf("Ablation — random vs regular access tree embedding (%dx%d mesh)\n\n",
              side, side);
  support::Table table({"application", "embedding", "congestion [KB]", "time [s]",
                        "total traffic [MB]"});

  double regularTime = 0, randomTime = 0;
  for (const auto kind : {mesh::EmbeddingKind::Regular, mesh::EmbeddingKind::Random}) {
    const char* name = kind == mesh::EmbeddingKind::Regular ? "regular" : "random";
    RuntimeConfig rc = RuntimeConfig::accessTree(4, 1);
    rc.embedding = kind;
    double& timeSum = kind == mesh::EmbeddingKind::Regular ? regularTime : randomTime;

    {
      mm::Config cfg;
      cfg.blockInts = 1024;
      Machine m(topo, net::CostModel::gcel().withoutCompute());
      Runtime rt(m, rc.on(topo));
      const auto r = mm::runDiva(m, rt, cfg);
      timeSum += r.timeUs;
      table.addRow({"matmul", name, support::fmt(r.congestionBytes / 1e3, 0),
                    support::fmt(r.timeUs / 1e6, 2),
                    support::fmt(r.totalBytes / 1e6, 1)});
    }
    {
      bs::Config cfg;
      cfg.keysPerProc = 1024;
      Machine m(topo);
      Runtime rt(m, rc.on(topo));
      const auto r = bs::runDiva(m, rt, cfg);
      timeSum += r.timeUs;
      table.addRow({"bitonic", name, support::fmt(r.congestionBytes / 1e3, 0),
                    support::fmt(r.timeUs / 1e6, 2),
                    support::fmt(r.totalBytes / 1e6, 1)});
    }
  }
  table.print();

  // Headline ratio for BENCH_engine.json: theoretical random embedding vs
  // the practical regular embedding, both apps' times summed — there is
  // no fixed-home leg here, so the datapoint carries its own field name.
  printDatapoint("abl_embedding", topo, "random_regular_time",
                 randomTime / regularTime);
  return 0;
}
